// Command benchgate compares two `go test -bench` output files and fails
// when any figure benchmark's best-of value regressed by more than
// -max-ratio. It is the hard backstop behind the advisory benchstat step
// in CI: benchstat's statistics are the right tool for humans, but noisy
// shared runners need a forgiving, deterministic pass/fail line.
//
// The gated value defaults to host time (ns/op); -metric selects any other
// unit the benchmarks report, e.g. the simulated p99 op latency the figure
// benchmarks emit with telemetry enabled:
//
//	benchgate -baseline bench/baseline.txt -current bench-current.txt -max-ratio 2.0
//	benchgate -baseline bench/baseline.txt -current bench-current.txt \
//	    -metric p99cycles -max-ratio 1.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "baseline `go test -bench` output")
	current := flag.String("current", "", "current `go test -bench` output")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when current/baseline exceeds this")
	prefix := flag.String("prefix", "BenchmarkFig", "only gate benchmarks whose name has this prefix")
	metric := flag.String("metric", "ns/op", "benchmark unit to gate on, e.g. ns/op or p99cycles")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := parseBench(*baseline, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cur, err := parseBench(*current, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	failed := false
	compared := 0
	for name, b := range base {
		if !strings.HasPrefix(name, *prefix) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: %s missing from current run\n", name)
			failed = true
			continue
		}
		compared++
		ratio := c / b
		status := "ok"
		if ratio > *maxRatio {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %12.0f -> %12.0f %s  %.2fx  %s\n", name, b, c, *metric, ratio, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no %q benchmarks reporting %s to compare\n", *prefix, *metric)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: %s regression beyond %.1fx\n", *metric, *maxRatio)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.1fx of %s baseline\n", compared, *maxRatio, *metric)
}

// parseBench extracts the best (minimum) value of the given unit per
// benchmark from a `go test -bench` output file, stripping the -N
// GOMAXPROCS suffix so baselines recorded on different core counts still
// line up. Benchmarks that do not report the unit are omitted.
func parseBench(path, unit string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == unit {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					break
				}
				if b, ok := best[name]; !ok || v < b {
					best[name] = v
				}
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return best, nil
}
