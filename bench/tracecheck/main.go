// Command tracecheck validates a Chrome/Perfetto trace-event JSON file as
// produced by memtag-bench -trace-out, memtag-stress -trace-out, or a
// memtag-serve flight-recorder dump. It is the CI backstop for the
// exporters: a trace that fails here would render wrong (or not at all) in
// ui.perfetto.dev.
//
// Checks:
//   - the file is a JSON object with a non-empty traceEvents array
//   - every event carries a phase, a name (metadata/spans/instants), and
//     non-negative pid/tid/ts
//   - per (pid, tid) track, timestamps are non-decreasing in file order
//   - duration events (ph=X) have a non-negative dur
//   - every flow start (ph=s) has a matching finish (ph=f) with the same
//     id, and vice versa
//   - async begin/end events (ph=b/e) pair up per (cat, id): no end
//     without an open begin, and nothing left open at EOF
//   - request-span flow finishes (cat=req, ph=f) land on a track that has
//     a thread_name metadata entry — i.e. the flow arrow resolves into a
//     named machine track, not a dangling (pid, tid)
//   - with -require-spans N, each file must contain at least N request
//     spans (ph=b, cat=req)
//
// Usage:
//
//	tracecheck [-require-spans N] trace.json [more.json ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	ID   *int64   `json:"id"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

var requireSpans = flag.Int("require-spans", 0,
	"fail unless each file contains at least N request spans (ph=b, cat=req)")

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require-spans N] trace.json [more.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}

	type track struct{ pid, tid int }
	// First pass: collect named tracks, so flow-target checks don't depend
	// on metadata preceding the flow in file order.
	named := map[track]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			named[track{ev.Pid, ev.Tid}] = true
		}
	}

	type asyncKey struct {
		cat string
		id  int64
	}
	lastTs := map[track]float64{}
	phases := map[string]int{}
	flowStart := map[int64]int{}
	flowEnd := map[int64]int{}
	asyncOpen := map[asyncKey]int{}
	reqSpans := 0
	for i, ev := range tf.TraceEvents {
		if ev.Ph == "" {
			return fmt.Errorf("event %d: missing phase", i)
		}
		phases[ev.Ph]++
		if ev.Name == "" {
			return fmt.Errorf("event %d (ph=%s): missing name", i, ev.Ph)
		}
		if ev.Pid < 0 || ev.Tid < 0 {
			return fmt.Errorf("event %d (%s): negative pid/tid %d/%d", i, ev.Name, ev.Pid, ev.Tid)
		}
		switch ev.Ph {
		case "M": // metadata carries no timestamp
			continue
		case "s", "f":
			if ev.ID == nil {
				return fmt.Errorf("event %d (%s, ph=%s): flow event without id", i, ev.Name, ev.Ph)
			}
			if ev.Ph == "s" {
				flowStart[*ev.ID]++
			} else {
				flowEnd[*ev.ID]++
				if ev.Cat == "req" && !named[track{ev.Pid, ev.Tid}] {
					return fmt.Errorf("event %d (%s): request flow finish lands on unnamed track pid=%d tid=%d",
						i, ev.Name, ev.Pid, ev.Tid)
				}
			}
		case "b", "e":
			if ev.ID == nil {
				return fmt.Errorf("event %d (%s, ph=%s): async event without id", i, ev.Name, ev.Ph)
			}
			k := asyncKey{ev.Cat, *ev.ID}
			if ev.Ph == "b" {
				asyncOpen[k]++
				if ev.Cat == "req" {
					reqSpans++
				}
			} else {
				if asyncOpen[k] == 0 {
					return fmt.Errorf("event %d (%s): async end with no open begin (cat=%q id=%d)",
						i, ev.Name, ev.Cat, *ev.ID)
				}
				asyncOpen[k]--
			}
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return fmt.Errorf("event %d (%s, ph=%s): missing or negative ts", i, ev.Name, ev.Ph)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("event %d (%s): duration event without non-negative dur", i, ev.Name)
		}
		tr := track{ev.Pid, ev.Tid}
		if prev, ok := lastTs[tr]; ok && *ev.Ts < prev {
			return fmt.Errorf("event %d (%s, ph=%s): ts %v precedes %v on track pid=%d tid=%d",
				i, ev.Name, ev.Ph, *ev.Ts, prev, ev.Pid, ev.Tid)
		}
		lastTs[tr] = *ev.Ts
	}
	if phases["M"] == 0 {
		return fmt.Errorf("no track metadata (ph=M) events")
	}
	for id, n := range flowStart {
		if flowEnd[id] != n {
			return fmt.Errorf("flow id %d: %d starts but %d finishes", id, n, flowEnd[id])
		}
	}
	for id, n := range flowEnd {
		if flowStart[id] != n {
			return fmt.Errorf("flow id %d: %d finishes but %d starts", id, n, flowStart[id])
		}
	}
	for k, n := range asyncOpen {
		if n != 0 {
			return fmt.Errorf("async span cat=%q id=%d: %d begin(s) never ended", k.cat, k.id, n)
		}
	}
	if *requireSpans > 0 && reqSpans < *requireSpans {
		return fmt.Errorf("found %d request spans, want at least %d", reqSpans, *requireSpans)
	}
	fmt.Printf("tracecheck: %s ok — %d events on %d tracks (spans=%d asyncs=%d instants=%d flows=%d reqSpans=%d)\n",
		path, len(tf.TraceEvents), len(lastTs), phases["X"], phases["b"], phases["i"], phases["s"], reqSpans)
	return nil
}
