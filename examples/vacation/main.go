// Vacation runs the STAMP Vacation travel-reservation benchmark (the
// paper's Figure 8 workload) on the simulated machine, comparing baseline
// NOrec with tagged NOrec and verifying the reservation system's
// conservation invariants afterwards.
//
//	go run ./examples/vacation                 # small tables, quick
//	go run ./examples/vacation -r 4096 -t 128  # larger run
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/vacation"
)

func main() {
	relations := flag.Int("r", 1024, "table size (-r)")
	transactions := flag.Int("t", 64, "transactions per client (-t)")
	clients := flag.Int("c", 4, "concurrent clients (simulated cores)")
	flag.Parse()

	p := vacation.PaperParams() // -n4 -q60 -u90
	p.Relations = *relations
	p.Transactions = *transactions

	fmt.Printf("STAMP Vacation: -n%d -q%d -u%d -r%d -t%d, %d clients\n\n",
		p.QueriesPerTx, p.PercentQuery, p.PercentUser, p.Relations, p.Transactions, *clients)
	fmt.Printf("%-8s %14s %10s %12s %12s\n", "variant", "Ktx/s (sim)", "miss %", "aborts/tx", "energy/tx")

	for _, v := range []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"norec", stm.NewNOrec},
		{"tagged", stm.NewTagged},
	} {
		cfg := machine.DefaultConfig(*clients)
		cfg.MemBytes = 256 << 20
		cfg.MaxTags = 256 // transactional read sets span many lines
		m := machine.New(cfg)
		tm := v.mk(m)
		mgr := vacation.NewManager(m, tm)
		vacation.Populate(mgr, m.Thread(0), p, 1)

		m.BeginEpoch()
		before := m.Snapshot()
		var wg sync.WaitGroup
		for w := 0; w < *clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := m.Thread(w).(*machine.Thread)
				th.SetActive(true)
				defer th.SetActive(false)
				vacation.Client(mgr, th, p, int64(100+w))
			}(w)
		}
		wg.Wait()
		after := m.Snapshot()

		if ok, detail := mgr.CheckTables(m.Thread(0)); !ok {
			fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION (%s): %s\n", v.name, detail)
			os.Exit(1)
		}

		tx := float64(*clients * p.Transactions)
		cycles := after.MaxCycles - before.MaxCycles
		fmt.Printf("%-8s %14.1f %10.2f %12.3f %12.1f\n",
			v.name,
			tx/(float64(cycles)/cfg.ClockHz)/1e3,
			100*float64(after.Misses()-before.Misses())/float64(after.Accesses()-before.Accesses()),
			float64(tm.Aborts.Load())/tx,
			(after.Energy-before.Energy)/tx)
	}
	fmt.Println("\nconservation invariants verified (capacity and reservation lists consistent)")
}
