// Concurrentset compares the paper's ordered-set designs side by side on
// the same workload: the Harris-Michael lock-free list, the VAS-based and
// hand-over-hand-tagged lists (Algorithms 1-2), the LLX/SCX (a,b)-tree and
// its HoH-tagged fast variant (Algorithms 3-5), printing throughput and
// coherence behaviour for each.
package main

import (
	"fmt"

	"repro/internal/abtree"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	const cores = 8
	structures := []struct {
		name     string
		keyRange uint64
		build    func(core.Memory) intset.Set
	}{
		{"harris list", 512, func(m core.Memory) intset.Set { return list.NewHarris(m) }},
		{"vas list", 512, func(m core.Memory) intset.Set { return list.NewVAS(m) }},
		{"hoh list", 512, func(m core.Memory) intset.Set { return list.NewHoH(m) }},
		{"llx/scx tree", 8192, func(m core.Memory) intset.Set { return abtree.NewLLX(m, 4, 8) }},
		{"hoh-tag tree", 8192, func(m core.Memory) intset.Set { return abtree.NewHoH(m, 4, 8) }},
		{"llx chromatic", 8192, func(m core.Memory) intset.Set { return chromatic.NewLLX(m) }},
		{"hoh chromatic", 8192, func(m core.Memory) intset.Set { return chromatic.NewHoH(m) }},
	}

	fmt.Printf("%-14s %12s %10s %12s %14s\n", "structure", "Mops/s", "miss %", "inval/op", "energy/op")
	for _, st := range structures {
		cfg := machine.DefaultConfig(cores)
		cfg.MemBytes = 256 << 20
		m := machine.New(cfg)
		s := st.build(m)

		wl := workload.Config{
			Threads: cores, KeyRange: st.keyRange, PrefillSize: int(st.keyRange / 2),
			OpsPerThread: 300, Mix: workload.Update3535, Seed: 7,
		}
		workload.Prefill(m, s, wl)
		before := m.Snapshot()
		counts := workload.Run(m, s, wl)
		after := m.Snapshot()

		cycles := after.MaxCycles - before.MaxCycles
		ops := float64(counts.Ops)
		fmt.Printf("%-14s %12.3f %10.2f %12.2f %14.1f\n",
			st.name,
			ops/(float64(cycles)/cfg.ClockHz)/1e6,
			100*float64(after.Misses()-before.Misses())/float64(after.Accesses()-before.Accesses()),
			float64(after.InvalidationsSent-before.InvalidationsSent)/ops,
			(after.Energy-before.Energy)/ops)
	}
}
