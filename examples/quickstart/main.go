// Quickstart: create a simulated multicore machine, tag memory, and use
// the three MemTags primitives (Validate, VAS, IAS) directly — the
// mechanism from "Memory Tagging: Minimalist Synchronization for Scalable
// Concurrent Data Structures" (SPAA 2020).
package main

import (
	"fmt"

	"repro/internal/machine"
)

func main() {
	// A 2-core machine with the paper's cache configuration.
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	alice, bob := m.Thread(0), m.Thread(1)

	// Simulated memory is word-addressed; allocations are line-aligned.
	counter := m.Alloc(1)
	flag := m.Alloc(1)
	alice.Store(counter, 100)

	// 1. Tag + Validate: watch a location without writing.
	bob.AddTag(counter, 8)
	v := bob.Load(counter)
	fmt.Printf("bob read %d; Validate() = %v\n", v, bob.Validate())

	alice.Store(counter, 101) // invalidates bob's tagged line
	fmt.Printf("after alice's store, bob.Validate() = %v (detected locally)\n", bob.Validate())
	bob.ClearTagSet()

	// 2. VAS: atomic update conditioned on the whole tag set.
	bob.AddTag(counter, 8)
	v = bob.Load(counter)
	if bob.VAS(counter, v+1) {
		fmt.Printf("bob VAS'd the counter to %d\n", bob.Load(counter))
	}
	bob.ClearTagSet()

	// 3. IAS: update + transient marking. Alice tags the counter; bob's
	// IAS invalidates her tag at commit time, so she knows to restart.
	alice.ClearTagSet()
	alice.AddTag(counter, 8)
	bob.AddTag(counter, 8)
	if bob.IAS(flag, 1) {
		fmt.Printf("bob IAS'd the flag; alice.Validate() = %v, bob.Validate() = %v\n",
			alice.Validate(), bob.Validate())
	}
	alice.ClearTagSet()
	bob.ClearTagSet()

	// Every event was priced by the machine's cost model.
	s := m.Snapshot()
	fmt.Printf("\nsimulated: %d loads, %d stores, %d tag adds, %d validations, %d invalidation messages\n",
		s.Loads, s.Stores, s.TagAdds, s.Validates, s.InvalidationsSent)
	fmt.Printf("cycles (slowest core): %d, energy: %.0f units\n", s.MaxCycles, s.Energy)
}
