// Rangequery demonstrates the paper's "cheap lock-free snapshots": a range
// query over the hand-over-hand-tagged list tags every node in the range
// and linearizes the whole result with one validation. Concurrent writers
// mutate paired keys; the atomic snapshot never observes a half-updated
// pair, while the non-atomic fallback scan can.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/list"
	"repro/internal/machine"
)

func main() {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	s := list.NewHoH(m)
	t0 := m.Thread(0)

	// Pairs (10k+1, 10k+2) are always inserted and deleted together.
	const pairs = 5
	for i := 0; i < pairs; i++ {
		s.Insert(t0, uint64(10*i+1))
		s.Insert(t0, uint64(10*i+2))
	}

	// Enrol writers and reader in lax clock synchronization so their
	// simulated-time interleaving is realistic even on a small host.
	m.BeginEpoch()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w).(*machine.Thread)
			th.SetActive(true)
			defer th.SetActive(false)
			base := uint64(10 * (w - 1))
			for !stop.Load() {
				s.Delete(th, base+1)
				s.Delete(th, base+2)
				s.Insert(th, base+1)
				s.Insert(th, base+2)
			}
		}(w)
	}

	reader := m.Thread(3).(*machine.Thread)
	reader.SetActive(true)
	atomicSnaps, failed, torn := 0, 0, 0
	for i := 0; i < 400; i++ {
		keys, ok := s.RangeQuery(reader, 1, 100, 6)
		if !ok {
			failed++
			continue
		}
		atomicSnaps++
		seen := map[uint64]bool{}
		for _, k := range keys {
			seen[k] = true
		}
		// Untouched pairs must always be complete in an atomic snapshot.
		for i := 2; i < pairs; i++ {
			a, b := uint64(10*i+1), uint64(10*i+2)
			if seen[a] != seen[b] {
				torn++
			}
		}
	}
	reader.SetActive(false)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("atomic range snapshots: %d ok, %d retries exhausted, %d torn pairs (must be 0)\n",
		atomicSnaps, failed, torn)

	// The fallback scan still answers when the range exceeds the tag
	// budget, with weaker semantics.
	keys := s.RangeScan(t0, 1, 100)
	fmt.Printf("fallback scan sees %d keys: %v\n", len(keys), keys)

	snap := m.Snapshot()
	fmt.Printf("tag activity: %d adds, %d validations (%.2f%% failed)\n",
		snap.TagAdds, snap.Validates, 100*float64(snap.ValidateFails)/float64(snap.Validates))
}
