// Stmbank runs a classic bank-transfer workload over the NOrec software
// transactional memory and its tagged variant (Section 5.2 of the paper),
// verifying money conservation and comparing abort rates and coherence
// behaviour. Tagged NOrec validates its read set with one local tag check
// and acquires the global lock by invalidate-and-swap.
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
)

const (
	cores      = 8
	accounts   = 32
	initial    = 1000
	transfers  = 200
	transferSz = 25
)

func main() {
	for _, variant := range []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"NOrec ", stm.NewNOrec},
		{"Tagged", stm.NewTagged},
	} {
		cfg := machine.DefaultConfig(cores)
		cfg.MemBytes = 16 << 20
		m := machine.New(cfg)
		tm := variant.mk(m)

		// Open the accounts.
		addrs := make([]core.Addr, accounts)
		t0 := m.Thread(0)
		for i := range addrs {
			addrs[i] = m.Alloc(1)
			t0.Store(addrs[i], initial)
		}

		m.BeginEpoch()
		before := m.Snapshot()
		var wg sync.WaitGroup
		for w := 0; w < cores; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := m.Thread(w).(*machine.Thread)
				th.SetActive(true)
				defer th.SetActive(false)
				for i := 0; i < transfers; i++ {
					src := (w*31 + i*17) % accounts
					dst := (w*13 + i*7 + 1) % accounts
					if src == dst {
						dst = (dst + 1) % accounts
					}
					tm.Run(th, func(tx *stm.Tx) {
						s := tx.Read(addrs[src])
						d := tx.Read(addrs[dst])
						tx.Write(addrs[src], s-transferSz)
						tx.Write(addrs[dst], d+transferSz)
					})
				}
			}(w)
		}
		wg.Wait()
		after := m.Snapshot()

		var sum uint64
		for _, a := range addrs {
			sum += t0.Load(a)
		}
		tx := float64(cores * transfers)
		cycles := after.MaxCycles - before.MaxCycles
		fmt.Printf("%s: %4d tx, balance %d (want %d), %.1f Ktx/s, %.2f aborts/tx, %.2f validations/tx (%.1f%% failed)\n",
			variant.name, cores*transfers, sum, accounts*initial,
			tx/(float64(cycles)/cfg.ClockHz)/1e3,
			float64(tm.Aborts.Load())/tx,
			float64(after.Validates-before.Validates)/tx,
			100*float64(after.ValidateFails-before.ValidateFails)/float64(max(1, after.Validates-before.Validates)))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
