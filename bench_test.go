package repro

// Benchmark harness: one benchmark per paper figure (Figures 2 and 4-8;
// Figures 1 and 3 are diagrams), plus micro-benchmarks of the primitives
// and ablations of the design choices called out in DESIGN.md.
//
// Each figure benchmark executes its experiment at a reduced scale per
// iteration and reports the headline simulated metrics via ReportMetric:
//
//	simMops        simulated throughput at the largest thread count,
//	               for the tagged variant
//	speedup        tagged variant vs software baseline at that count
//	missPct        tagged variant's L1 miss rate
//	p99cycles      tagged variant's simulated p99 op latency (telemetry is
//	               enabled on every figure benchmark, so its recording cost
//	               is part of the gated host time)
//
// Run `go run ./cmd/memtag-bench -full` for the paper-scale sweeps.

import (
	"bufio"
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/intset"
	"repro/internal/kcas"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/serve"
	"repro/internal/vtags"
	"repro/internal/workload"
)

// benchScale keeps per-iteration cost low; memtag-bench -full is the
// paper-scale path.
func benchScale() harness.Scale {
	return harness.Scale{Threads: []int{1, 8, 32}, OpsPerThread: 120, Trials: 1}
}

func benchSetExperiment(b *testing.B, e *harness.SetExperiment, tagged, baseline string) {
	b.Helper()
	// Fan experiment cells over the host CPUs; results are identical to a
	// serial run (see internal/harness/parallel.go).
	e.Workers = runtime.GOMAXPROCS(0)
	e.Telemetry = true
	top := e.Threads[len(e.Threads)-1]
	var mops, speedup, miss, p99 float64
	for i := 0; i < b.N; i++ {
		points := e.Run()
		speedup += harness.Speedup(points, tagged, baseline, top)
		for _, p := range points {
			if p.Variant == tagged && p.Threads == top {
				mops += p.ThroughputMops
				miss += p.MissRatePct
				p99 += p.OpLatP99
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(mops/n, "simMops")
	b.ReportMetric(speedup/n, "speedup")
	b.ReportMetric(miss/n, "missPct")
	b.ReportMetric(p99/n, "p99cycles")
}

// BenchmarkFig2_ListThroughput35 regenerates Figure 2: Harris vs VAS vs
// HoH lists, 35% ins / 35% del, throughput vs threads.
func BenchmarkFig2_ListThroughput35(b *testing.B) {
	benchSetExperiment(b, harness.Fig2(benchScale()), "hoh", "harris")
}

// BenchmarkFig4_List35 regenerates Figure 4 (throughput, miss rate and
// energy panels for the 35/35 list workload).
func BenchmarkFig4_List35(b *testing.B) {
	benchSetExperiment(b, harness.Fig4(benchScale()), "vas", "harris")
}

// BenchmarkFig5_List15 regenerates Figure 5 (15% ins / 15% del list).
func BenchmarkFig5_List15(b *testing.B) {
	benchSetExperiment(b, harness.Fig5(benchScale()), "hoh", "harris")
}

// BenchmarkFig6_ABTree35 regenerates Figure 6: LLX/SCX vs HoH-tagged
// (a,b)-tree at 35/35.
func BenchmarkFig6_ABTree35(b *testing.B) {
	benchSetExperiment(b, harness.Fig6(benchScale()), "hoh-tag", "llxscx")
}

// BenchmarkFig7_ABTree15 regenerates Figure 7: the 15/15 tree workload.
func BenchmarkFig7_ABTree15(b *testing.B) {
	benchSetExperiment(b, harness.Fig7(benchScale()), "hoh-tag", "llxscx")
}

// BenchmarkFigNUMA_ABTree35 runs a reduced beyond-the-paper sweep (64 and
// 128 simulated cores on 64-core sockets, both backends) and reports the
// tagged tree's metrics at 128 cores: simulated throughput, cross-socket
// traffic, and the simulated p99 op latency (numaP99cycles) that CI gates
// — a regression here means the CoreSet directory, the sharded clock, or
// the socket pricing got slower or skewed at scale.
func BenchmarkFigNUMA_ABTree35(b *testing.B) {
	var mops, hops, p99 float64
	for i := 0; i < b.N; i++ {
		e := harness.NUMASweep(true)
		e.Workers = runtime.GOMAXPROCS(0)
		e.Cores = []int{64, 128}
		e.OpsPerThread = 40
		for _, p := range e.Run() {
			if p.Backend == "machine" && p.Variant == "hoh-tag" && p.Cores == 128 {
				mops += p.ThroughputMops
				hops += p.SocketHopsPerOp
				p99 += p.OpLatP99
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(mops/n, "simMops")
	b.ReportMetric(hops/n, "hopsPerOp")
	b.ReportMetric(p99/n, "numaP99cycles")
}

// BenchmarkFig8_VacationNOrec regenerates Figure 8: STAMP Vacation on
// NOrec vs tagged NOrec (-n4 -q60 -u90, tables scaled down per iteration).
func BenchmarkFig8_VacationNOrec(b *testing.B) {
	e := harness.Fig8(true)
	e.Workers = runtime.GOMAXPROCS(0)
	e.Threads = []int{1, 4, 8}
	e.Params.Relations = 512
	e.Params.Transactions = 24
	top := e.Threads[len(e.Threads)-1]
	var ktx, speedup float64
	for i := 0; i < b.N; i++ {
		points := e.Run()
		var tagged, norec float64
		for _, p := range points {
			if p.Threads != top {
				continue
			}
			if p.Variant == "tagged" {
				tagged = p.ThroughputKtx
			} else if p.Variant == "norec" {
				norec = p.ThroughputKtx
			}
		}
		ktx += tagged
		if norec > 0 {
			speedup += tagged / norec
		}
	}
	b.ReportMetric(ktx/float64(b.N), "simKtx")
	b.ReportMetric(speedup/float64(b.N), "speedup")
}

// BenchmarkFigReclaim_Skiplist runs the reclamation extension experiment
// (VAS skip list: no reclamation vs tag-conditioned immediate vs epoch)
// and reports the immediate policy's headline metrics plus its
// retire-to-free p99 in simulated cycles (rfP99cycles) and peak footprint
// in lines — rfP99cycles is the series CI gates for reclamation-pipeline
// regressions.
func BenchmarkFigReclaim_Skiplist(b *testing.B) {
	e := harness.ReclaimExperiment(benchScale())
	e.Workers = runtime.GOMAXPROCS(0)
	e.Telemetry = true
	top := e.Threads[len(e.Threads)-1]
	var mops, speedup, p99, rf99, peak float64
	for i := 0; i < b.N; i++ {
		points := e.Run()
		speedup += harness.Speedup(points, "immediate", "none", top)
		for _, p := range points {
			if p.Variant == "immediate" && p.Threads == top {
				mops += p.ThroughputMops
				p99 += p.OpLatP99
				rf99 += p.RetireFreeP99
				peak += float64(p.PeakLiveLines)
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(mops/n, "simMops")
	b.ReportMetric(speedup/n, "speedup")
	b.ReportMetric(p99/n, "p99cycles")
	b.ReportMetric(rf99/n, "rfP99cycles")
	b.ReportMetric(peak/n, "peakLines")
}

// BenchmarkExtension_SkipList runs the skip-list extension experiment
// (CAS vs VAS; the paper claims applicability without reporting a figure).
func BenchmarkExtension_SkipList(b *testing.B) {
	sc := benchScale()
	sc.OpsPerThread = 200
	benchSetExperiment(b, harness.SkipExperiment(sc), "vas", "cas")
}

// BenchmarkExtension_BST runs the external-BST extension experiment
// (LLX/SCX vs HoH tagging on the unbalanced tree).
func BenchmarkExtension_BST(b *testing.B) {
	benchSetExperiment(b, harness.BSTExperiment(benchScale()), "hoh-tag", "llxscx")
}

// BenchmarkExtension_Chromatic runs the chromatic-tree extension
// experiment (LLX/SCX vs HoH tagging).
func BenchmarkExtension_Chromatic(b *testing.B) {
	benchSetExperiment(b, harness.ChromaticExperiment(benchScale()), "hoh-tag", "llxscx")
}

// BenchmarkExtension_StmSet compares general-purpose STM sets against the
// purpose-built HoH-tagged tree on the standard workload.
func BenchmarkExtension_StmSet(b *testing.B) {
	sc := benchScale()
	sc.Threads = []int{1, 8}
	sc.OpsPerThread = 80
	benchSetExperiment(b, harness.StmSetExperiment(sc), "tagged-set", "norec-set")
}

// --- Micro-benchmarks of the primitives -----------------------------------

func newBenchMachine(cores int) *machine.Machine {
	cfg := machine.DefaultConfig(cores)
	cfg.MemBytes = 16 << 20
	cfg.SyncWindowCycles = 0 // single-goroutine micro-benchmarks
	return machine.New(cfg)
}

// BenchmarkMicro_LoadL1Hit measures the simulator's host cost for the
// cheapest operation.
func BenchmarkMicro_LoadL1Hit(b *testing.B) {
	m := newBenchMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Store(a, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Load(a)
	}
}

// BenchmarkMicro_TagValidateCycle measures AddTag+Validate+ClearTagSet.
func BenchmarkMicro_TagValidateCycle(b *testing.B) {
	m := newBenchMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Store(a, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.AddTag(a, 8)
		th.Validate()
		th.ClearTagSet()
	}
}

// BenchmarkMicro_VAS measures an uncontended tag+load+VAS increment.
func BenchmarkMicro_VAS(b *testing.B) {
	m := newBenchMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.AddTag(a, 8)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			b.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	}
}

// BenchmarkMicro_KCAS measures k-word CAS for several widths. Every kCAS
// allocates descriptors in the simulated arena (which never recycles), so
// the machine is renewed periodically to keep the space bounded.
func BenchmarkMicro_KCAS(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "k2", 4: "k4", 8: "k8"}[k], func(b *testing.B) {
			setup := func() (*kcas.Manager, core.Thread, []core.Addr) {
				m := newBenchMachine(1)
				g := kcas.New(m)
				th := m.Thread(0)
				addrs := make([]core.Addr, k)
				for i := range addrs {
					addrs[i] = m.Alloc(1)
				}
				return g, th, addrs
			}
			g, th, addrs := setup()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%10000 == 9999 {
					b.StopTimer()
					g, th, addrs = setup()
					b.StartTimer()
				}
				entries := make([]kcas.Entry, k)
				for j, a := range addrs {
					old := g.Read(th, a)
					entries[j] = kcas.Entry{Addr: a, Old: old, New: old + 1}
				}
				if !g.KCAS(th, entries) {
					b.Fatal("uncontended kCAS failed")
				}
			}
		})
	}
}

// BenchmarkMicro_SnapshotTaggedVsDoubleCollect compares the paper's tagged
// snapshot against the software double collect on 16 quiet words.
func BenchmarkMicro_SnapshotTaggedVsDoubleCollect(b *testing.B) {
	m := newBenchMachine(1)
	g := kcas.New(m)
	th := m.Thread(0)
	addrs := make([]core.Addr, 16)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	b.Run("tagged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := g.Snapshot(th, addrs, 4); !ok {
				b.Fatal("quiet snapshot failed")
			}
		}
	})
	b.Run("doublecollect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.SnapshotDoubleCollect(th, addrs)
		}
	})
}

// BenchmarkHostOverhead measures how many *simulated* operations each
// backend completes per host second — the figure of merit for the host-time
// engineering work (see EXPERIMENTS.md, "Host-time engineering"). Each
// iteration is one mixed workload run of 4 simulated threads; simOps/hostSec
// is reported alongside the standard ns/op.
func BenchmarkHostOverhead(b *testing.B) {
	run := func(b *testing.B, mk func() (core.Memory, intset.Set)) {
		cfg := workload.Config{
			Threads: 4, KeyRange: 256, PrefillSize: 128,
			OpsPerThread: 200, Mix: workload.Update3535, Seed: 7,
		}
		mem, s := mk()
		workload.Prefill(mem, s, cfg)
		var ops uint64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			ops += workload.Run(mem, s, cfg).Ops
		}
		if sec := time.Since(start).Seconds(); sec > 0 {
			b.ReportMetric(float64(ops)/sec, "simOps/hostSec")
		}
	}
	b.Run("machine", func(b *testing.B) {
		run(b, func() (core.Memory, intset.Set) {
			cfg := machine.DefaultConfig(4)
			cfg.MemBytes = 64 << 20
			m := machine.New(cfg)
			return m, list.NewHoH(m)
		})
	})
	b.Run("vtags", func(b *testing.B) {
		run(b, func() (core.Memory, intset.Set) {
			m := newVtags(64<<20, 4)
			return m, list.NewHoH(m)
		})
	})
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblation_MaxTags sweeps the per-core tag budget above the HoH
// tree's working window (12 lines for a=4,b=8); budgets below it are
// rejected at construction. Sufficient budgets should perform identically,
// demonstrating that Max_Tags only needs to cover the D+1-node window.
func BenchmarkAblation_MaxTags(b *testing.B) {
	for _, tags := range []int{12, 16, 32} {
		b.Run(map[int]string{12: "tags12", 16: "tags16", 32: "tags32"}[tags], func(b *testing.B) {
			e := harness.Fig6(harness.Scale{Threads: []int{8}, OpsPerThread: 100, Trials: 1})
			e.Config = func(cores int) machine.Config {
				cfg := machine.DefaultConfig(cores)
				cfg.MemBytes = 256 << 20
				cfg.MaxTags = tags
				return cfg
			}
			// Only the tagged variant is sensitive to the budget.
			e.Variants = e.Variants[1:]
			var mops float64
			for i := 0; i < b.N; i++ {
				points := e.Run()
				mops += points[0].ThroughputMops
			}
			b.ReportMetric(mops/float64(b.N), "simMops")
		})
	}
}

// BenchmarkAblation_L1Size shrinks the L1 until tagged lines suffer
// capacity (spurious) evictions, probing the paper's claim that spurious
// invalidations are negligible "for reasonable data structure sizes" — and
// showing where that stops holding.
func BenchmarkAblation_L1Size(b *testing.B) {
	for _, kb := range []int{2, 8, 32} {
		b.Run(map[int]string{2: "l1_2KB", 8: "l1_8KB", 32: "l1_32KB"}[kb], func(b *testing.B) {
			e := harness.Fig6(harness.Scale{Threads: []int{8}, OpsPerThread: 100, Trials: 1})
			e.Config = func(cores int) machine.Config {
				cfg := machine.DefaultConfig(cores)
				cfg.MemBytes = 256 << 20
				cfg.L1Bytes = kb << 10
				return cfg
			}
			e.Variants = e.Variants[1:] // tagged variant only
			var spurious, fails float64
			for i := 0; i < b.N; i++ {
				points := e.Run()
				spurious += points[0].SpuriousPerMilOps
				fails += points[0].ValidateFailPct
			}
			b.ReportMetric(spurious/float64(b.N), "spurious/Mop")
			b.ReportMetric(fails/float64(b.N), "vfailPct")
		})
	}
}

// BenchmarkAblation_ValidateCost sweeps the hardware validation latency,
// quantifying how the HoH list's traversal overhead depends on it (the
// paper assumes validation is hidden in the load buffer).
func BenchmarkAblation_ValidateCost(b *testing.B) {
	for _, vc := range []uint64{0, 1, 4} {
		b.Run(map[uint64]string{0: "v0", 1: "v1", 4: "v4"}[vc], func(b *testing.B) {
			e := harness.Fig2(harness.Scale{Threads: []int{8}, OpsPerThread: 120, Trials: 1})
			e.Config = func(cores int) machine.Config {
				cfg := machine.DefaultConfig(cores)
				cfg.MemBytes = 64 << 20
				cfg.ValidateCycles = vc
				return cfg
			}
			var speedup float64
			for i := 0; i < b.N; i++ {
				speedup += harness.Speedup(e.Run(), "hoh", "harris", 8)
			}
			b.ReportMetric(speedup/float64(b.N), "speedup")
		})
	}
}

// BenchmarkAblation_SoftwareEmulation compares the versioned software
// emulation (vtags) against the hardware model in host time, the "what if
// tags were software" ablation. It reports host ns/op for the same HoH
// list workload.
func BenchmarkAblation_SoftwareEmulation(b *testing.B) {
	run := func(b *testing.B, mem core.Memory, s intset.Set) {
		cfg := workload.Config{
			Threads: 4, KeyRange: 256, PrefillSize: 128,
			OpsPerThread: 100, Mix: workload.Update3535, Seed: 1,
		}
		workload.Prefill(mem, s, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload.Run(mem, s, cfg)
		}
	}
	b.Run("machine", func(b *testing.B) {
		cfg := machine.DefaultConfig(4)
		cfg.MemBytes = 64 << 20
		m := machine.New(cfg)
		run(b, m, list.NewHoH(m))
	})
	b.Run("vtags", func(b *testing.B) {
		m := newVtags(64<<20, 4)
		run(b, m, list.NewHoH(m))
	})
}

// BenchmarkAblation_Protocol compares MESI / MESIF / MOESI pricing on the
// HoH list workload — the paper's "extension to MOESI/MESIF-style
// implementations", quantified.
func BenchmarkAblation_Protocol(b *testing.B) {
	for _, p := range []machine.Protocol{machine.MESI, machine.MESIF, machine.MOESI} {
		b.Run(p.String(), func(b *testing.B) {
			e := harness.Fig2(harness.Scale{Threads: []int{8}, OpsPerThread: 120, Trials: 1})
			e.Config = func(cores int) machine.Config {
				cfg := machine.DefaultConfig(cores)
				cfg.MemBytes = 64 << 20
				cfg.Protocol = p
				return cfg
			}
			e.Variants = e.Variants[2:] // hoh only
			var mops float64
			for i := 0; i < b.N; i++ {
				mops += e.Run()[0].ThroughputMops
			}
			b.ReportMetric(mops/float64(b.N), "simMops")
		})
	}
}

// BenchmarkAblation_FallbackThreshold measures the HLE-style fallback
// controller's trip rate sensitivity: with a hostile fast path, a lower
// threshold reaches the slow path sooner.
func BenchmarkAblation_FallbackThreshold(b *testing.B) {
	for _, thr := range []int{2, 16} {
		b.Run(map[int]string{2: "thr2", 16: "thr16"}[thr], func(b *testing.B) {
			m := newVtags(1<<20, 1)
			fb := core.NewFallback(m)
			fb.Threshold = thr
			th := m.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fb.Run(th, func() bool { return false }, func() {})
			}
		})
	}
}

// newVtags constructs the software-emulation backend.
func newVtags(bytes, threads int) core.Memory { return vtags.New(bytes, threads) }

// BenchmarkServe_Pipelined measures the served request path end to end —
// TCP, decode, STM op, encode — with one pipelined client connection per
// engine worker, and reports the service-time p99 (servedP99ns) that CI
// gates: a regression here means the protocol codec, the worker hot path,
// or the streaming telemetry got slower.
func BenchmarkServe_Pipelined(b *testing.B) {
	for _, tagged := range []bool{true, false} {
		b.Run(map[bool]string{true: "tagged", false: "norec"}[tagged], func(b *testing.B) {
			benchServe(b, tagged, false)
		})
	}
}

// BenchmarkServe_PipelinedSpans is the same served path with the flight
// recorder armed (request spans + tail sampling at the production default
// thresholds). CI gates its p99 as tracedP99ns against servedP99ns: the
// tracing tax on the hot path must stay within the 1.10x budget.
func BenchmarkServe_PipelinedSpans(b *testing.B) {
	benchServe(b, true, true)
}

func benchServe(b *testing.B, tagged, spans bool) {
	const (
		workers  = 4
		batch    = 1024
		keyRange = 4096
	)
	cfg := serve.Config{
		Addr:        "127.0.0.1:0",
		StreamEvery: 10 * time.Millisecond,
		Engine: serve.EngineConfig{
			Workers: workers, MemBytes: 256 << 20, Tagged: tagged, Relations: 256,
		},
	}
	if spans {
		cfg.Flight = serve.FlightConfig{
			Spans: true, TailLatency: time.Millisecond, TailAttempts: 4,
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}

	type cl struct {
		conn net.Conn
		bw   *bufio.Writer
		br   *bufio.Reader
	}
	clients := make([]cl, workers)
	for i := range clients {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = cl{conn, bufio.NewWriterSize(conn, 64<<10), bufio.NewReaderSize(conn, 64<<10)}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := range clients {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cli := &clients[c]
				rng := uint64(c)*0x9e3779b97f4a7c15 + uint64(i) + 1
				var buf []byte
				for j := 0; j < batch; j++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					key := rng % keyRange
					var req serve.Request
					switch j % 5 {
					case 0:
						req = serve.Request{Op: serve.CmdPut, A: key, B: rng%999 + 1}
					case 1, 2:
						req = serve.Request{Op: serve.CmdGet, A: key}
					case 3:
						req = serve.Request{Op: serve.CmdSAdd, A: key}
					default:
						req = serve.Request{Op: serve.CmdSHas, A: key}
					}
					buf = serve.AppendRequest(buf[:0], &req)
					if _, err := cli.bw.Write(buf); err != nil {
						b.Error(err)
						return
					}
				}
				if err := cli.bw.Flush(); err != nil {
					b.Error(err)
					return
				}
				for j := 0; j < batch; j++ {
					if _, err := cli.br.ReadBytes('\n'); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()

	for i := range clients {
		clients[i].conn.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	sum := srv.Summarize()
	if spans {
		b.ReportMetric(sum.P99NS, "tracedP99ns")
		if fr := srv.FlightRecorder(); fr != nil {
			recorded, _ := fr.Totals()
			b.ReportMetric(float64(recorded)/float64(b.N), "spans/iter")
		}
	} else {
		b.ReportMetric(sum.P99NS, "servedP99ns")
	}
	b.ReportMetric(float64(sum.Requests)/b.Elapsed().Seconds(), "servedReqs/s")
}
