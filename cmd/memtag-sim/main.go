// Command memtag-sim inspects the MemTags machine simulator. It has two
// modes:
//
//	memtag-sim -demo    # step-by-step walkthrough of tag/VAS/IAS semantics
//	memtag-sim          # run a mixed list workload and dump full statistics
//
// The demo narrates exactly the scenarios from the paper's Sections 3-4:
// tagging, remote invalidation, validate-and-swap failure, and the
// invalidate-and-swap "transient marking" that makes hand-over-hand tagging
// correct.
package main

import (
	"flag"
	"fmt"
	"sync"

	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	demo := flag.Bool("demo", false, "narrated walkthrough of MemTags semantics")
	trace := flag.Bool("trace", false, "print a coherence event trace of a tiny tagged scenario")
	cores := flag.Int("cores", 8, "simulated cores for the stats run")
	ops := flag.Int("ops", 400, "operations per thread for the stats run")
	flag.Parse()

	switch {
	case *demo:
		runDemo()
	case *trace:
		runTrace()
	default:
		runStats(*cores, *ops)
	}
}

// printTracer writes each event as one line, like the simulator traces the
// paper examines to attribute speedups to reduced coherence messaging.
type printTracer struct{ mu sync.Mutex }

func (p *printTracer) Trace(e machine.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	target := ""
	if e.Target >= 0 {
		target = fmt.Sprintf(" -> core%d", e.Target)
	}
	fmt.Printf("  [cyc %6d] core%d %-12s line %d%s\n", e.Cycle, e.Core, e.Kind, e.Line, target)
}

// runTrace narrates the coherence events of one HoH-list delete observed
// by a concurrent traversal.
func runTrace() {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 4 << 20
	m := machine.New(cfg)
	s := list.NewHoH(m)
	t0, t1 := m.Thread(0), m.Thread(1)
	for k := uint64(10); k <= 40; k += 10 {
		s.Insert(t0, k)
	}

	fmt.Println("— event trace: core1 searches 30 while core0 deletes 20 —")
	m.SetTracer(&printTracer{})
	fmt.Println("core1: Contains(30)")
	s.Contains(t1, 30)
	fmt.Println("core0: Delete(20)   // IAS transiently marks the removed node")
	s.Delete(t0, 20)
	fmt.Println("core1: Contains(20)")
	found := s.Contains(t1, 20)
	m.SetTracer(nil)
	fmt.Printf("result: Contains(20) = %v\n", found)
}

func runDemo() {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	t0, t1 := m.Thread(0), m.Thread(1)

	node := m.Alloc(2)
	target := m.Alloc(1)
	t0.Store(node, 42)

	fmt.Println("— MemTags walkthrough (2 simulated cores) —")
	fmt.Println("core1: AddTag(node); Load(node)")
	t1.AddTag(node, 16)
	fmt.Printf("        loaded %d, Validate() = %v (no conflict yet)\n", t1.Load(node), t1.Validate())

	fmt.Println("core0: Store(node, 43)   // invalidates core1's tagged line")
	t0.Store(node, 43)
	fmt.Printf("core1: Validate() = %v   // eviction detected locally, no coherence traffic\n", t1.Validate())
	t1.ClearTagSet()

	fmt.Println("\ncore1: retag node, attempt VAS(target, 7) with a quiet tag set")
	t1.AddTag(node, 16)
	t1.Load(node)
	fmt.Printf("        VAS = %v, target = %d\n", t1.VAS(target, 7), t1.Load(target))

	fmt.Println("core1: keep tag; core0 writes node; VAS(target, 8) must fail")
	t0.Store(node, 44)
	fmt.Printf("        VAS = %v, target still = %d (failed VAS writes nothing)\n",
		t1.VAS(target, 8), t1.Load(target))
	t1.ClearTagSet()

	fmt.Println("\n— IAS: transient marking (Figure 1's fix) —")
	fmt.Println("both cores tag the same node; core0 IASes")
	t0.ClearTagSet()
	t0.AddTag(node, 16)
	t1.AddTag(node, 16)
	fmt.Printf("core0: IAS(target, 9) = %v\n", t0.IAS(target, 9))
	fmt.Printf("core0: Validate() = %v   // issuer's tags survive\n", t0.Validate())
	fmt.Printf("core1: Validate() = %v   // remote tag invalidated: traversal restarts\n", t1.Validate())
	t0.ClearTagSet()
	t1.ClearTagSet()

	snap := m.Snapshot()
	fmt.Printf("\nevents: %d loads, %d stores, %d invalidation msgs, %d tag adds, %d validations (%d failed)\n",
		snap.Loads, snap.Stores, snap.InvalidationsSent, snap.TagAdds, snap.Validates, snap.ValidateFails)
}

func runStats(cores, ops int) {
	cfg := machine.DefaultConfig(cores)
	cfg.MemBytes = 64 << 20
	m := machine.New(cfg)
	s := list.NewHoH(m)
	wl := workload.Config{
		Threads: cores, KeyRange: 512, PrefillSize: 256,
		OpsPerThread: ops, Mix: workload.Update3535, Seed: 42,
	}
	workload.Prefill(m, s, wl)
	counts := workload.Run(m, s, wl)
	snap := m.Snapshot()

	fmt.Printf("HoH-tagged list, %d cores, %d ops (%d ins, %d del, %d hits)\n",
		cores, counts.Ops, counts.Inserts, counts.Deletes, counts.Hits)
	fmt.Printf("  simulated time   : %.3f ms (max core cycles %d)\n",
		1e3*snap.SimSeconds(cfg.ClockHz), snap.MaxCycles)
	fmt.Printf("  throughput       : %.3f Mops/s\n",
		float64(counts.Ops)/snap.SimSeconds(cfg.ClockHz)/1e6)
	fmt.Printf("  accesses         : %d (L1 %d, L2 %d, remote %d, DRAM %d)\n",
		snap.Accesses(), snap.L1Hits, snap.L2Hits, snap.RemoteFills, snap.MemFills)
	fmt.Printf("  L1 miss rate     : %.2f%%\n", 100*snap.MissRate())
	fmt.Printf("  invalidations    : %d sent / %d received\n",
		snap.InvalidationsSent, snap.InvalidationsReceived)
	fmt.Printf("  tags             : %d added, %d removed, %d overflows\n",
		snap.TagAdds, snap.TagRemoves, snap.TagOverflows)
	fmt.Printf("  validations      : %d (%d failed, %.2f%%)\n",
		snap.Validates, snap.ValidateFails, 100*float64(snap.ValidateFails)/float64(max(1, snap.Validates)))
	fmt.Printf("  VAS              : %d (%d failed)   IAS: %d (%d failed)\n",
		snap.VASAttempts, snap.VASFails, snap.IASAttempts, snap.IASFails)
	fmt.Printf("  spurious evicts  : %d (%.4f%% of validations)\n",
		snap.SpuriousEvictions, 100*float64(snap.SpuriousEvictions)/float64(max(1, snap.Validates)))
	fmt.Printf("  energy           : %.0f units (%.1f per op)\n",
		snap.Energy, snap.Energy/float64(max(1, counts.Ops)))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
