// Command memtag-bench regenerates the paper's evaluation figures
// (Section 6) on the machine simulator and prints each figure's series as
// a table: throughput, L1 miss rate and energy versus thread count for
// every data-structure variant.
//
// Usage:
//
//	memtag-bench -fig all            # every figure, quick scale
//	memtag-bench -fig 6 -full       # Figure 6 at paper scale (1-64 cores)
//	memtag-bench -fig 2 -threads 1,2,4,8,16 -ops 1000 -trials 3
//	memtag-bench -fig all -parallel 0 -json .   # fan cells over host CPUs,
//	                                            # write BENCH_fig*.json
//	memtag-bench -fig 6 -telemetry              # + latency quantiles per cell
//	memtag-bench -fig numa -cores 64,256 -sockets 4 -dist hotset -json .
//	                                            # beyond-the-paper NUMA sweep
//	memtag-bench -fig 2 -trace-out trace.json   # Perfetto trace of one cell
//	memtag-bench -fig 6 -cpuprofile cpu.pb.gz   # profile the run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

// workers is the resolved -parallel value: 1 = serial (default),
// 0 on the command line means "one worker per host CPU".
var workers = 1

// jsonDir is the directory BENCH_<name>.json files are written to;
// empty disables JSON output.
var jsonDir = ""

// telemetryOn enables per-op latency/retry telemetry and interval sampling
// on every set experiment; sampleEvery overrides the sampler interval.
var telemetryOn = false
var sampleEvery = uint64(0)

// traceOut, when set, writes a Perfetto trace of one cell (the last
// variant at the largest thread count) of each figure run; with several
// figures the last one wins, so pair it with a single -fig.
var traceOut = ""

// numaCores/numaSockets/numaDist are the resolved -cores/-sockets/-dist
// overrides for the -fig numa sweep.
var numaCores []int
var numaSockets = 0
var numaDist = workload.DistUniform

// opsOverride is the explicit -ops value (0: figure defaults).
var opsOverride = 0

func main() {
	fig := flag.String("fig", "all", "figure to run: 2, 4, 5, 6, 7, 8, skip, bst, chromatic, stmset, elision, reclaim, numa, or all")
	full := flag.Bool("full", false, "paper scale (1-64 simulated cores, more ops, 3 trials; numa adds 512 cores)")
	threads := flag.String("threads", "", "override thread counts, e.g. 1,2,4,8")
	coresFlag := flag.String("cores", "", "override the -fig numa core counts, e.g. 64,128,256,512")
	socketsFlag := flag.Int("sockets", 0, "override the -fig numa socket count (0: one socket per 64 cores)")
	dist := flag.String("dist", "uniform", "key distribution for -fig numa: uniform, zipfian or hotset")
	ops := flag.Int("ops", 0, "override operations per thread")
	trials := flag.Int("trials", 0, "override trial count")
	parallel := flag.Int("parallel", 1, "host workers for experiment cells: 1 serial, 0 one per host CPU, N a fixed pool (results identical for any value)")
	jsonOut := flag.String("json", "", "directory to write BENCH_<name>.json result files into (empty: no JSON)")
	telemetry := flag.Bool("telemetry", false, "record per-op latency/retry histograms and sampler windows (adds latency rows to tables and op_lat_*/windows fields to JSON)")
	sample := flag.Uint64("sample-every", 0, "telemetry sampler interval in backend clock units (0: harness default)")
	trace := flag.String("trace-out", "", "write a Perfetto trace-event JSON of one cell (last variant, largest thread count) to this file; use with a single -fig")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	switch {
	case *parallel == 0:
		workers = runtime.GOMAXPROCS(0)
	case *parallel > 0:
		workers = *parallel
	default:
		fmt.Fprintf(os.Stderr, "memtag-bench: bad -parallel %d\n", *parallel)
		os.Exit(2)
	}
	jsonDir = *jsonOut
	telemetryOn = *telemetry
	sampleEvery = *sample
	traceOut = *trace
	if *coresFlag != "" {
		numaCores = parseThreads(*coresFlag)
	}
	numaSockets = *socketsFlag
	var err error
	if numaDist, err = workload.ParseKeyDist(*dist); err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	sc := harness.QuickScale()
	if *full {
		sc = harness.PaperScale()
	}
	if *threads != "" {
		sc.Threads = parseThreads(*threads)
	}
	if *ops > 0 {
		sc.OpsPerThread = *ops
		opsOverride = *ops
	}
	if *trials > 0 {
		sc.Trials = *trials
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"2", "4", "5", "6", "7", "8", "skip", "bst", "chromatic", "stmset", "elision", "reclaim", "numa"}
	}
	for _, f := range figs {
		run(strings.TrimSpace(f), sc, *full)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func parseThreads(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > core.MaxCores {
			fmt.Fprintf(os.Stderr, "memtag-bench: bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func run(fig string, sc harness.Scale, full bool) {
	switch fig {
	case "2":
		runSet(harness.Fig2(sc))
	case "4":
		runSet(harness.Fig4(sc))
	case "5":
		runSet(harness.Fig5(sc))
	case "6":
		runSet(harness.Fig6(sc))
	case "7":
		runSet(harness.Fig7(sc))
	case "skip":
		runSet(harness.SkipExperiment(sc))
	case "reclaim":
		runSet(harness.ReclaimExperiment(sc))
	case "bst":
		runSet(harness.BSTExperiment(sc))
	case "stmset":
		runSet(harness.StmSetExperiment(sc))
	case "chromatic":
		runSet(harness.ChromaticExperiment(sc))
	case "elision":
		e := harness.NewElisionExperiment(!full)
		e.Workers = workers
		fmt.Printf("# %s — fallback ablation\n", e.Name)
		start := time.Now()
		points := e.Run()
		harness.PrintElision(os.Stdout, e.Title, points)
		writeJSON(e.Name, e.Title, time.Since(start), points)
		fmt.Println()
	case "numa":
		e := harness.NUMASweep(!full)
		e.Workers = workers
		if len(numaCores) > 0 {
			e.Cores = numaCores
		}
		if numaSockets > 0 {
			e.SocketsFor = func(int) int { return numaSockets }
		}
		e.Dist = numaDist
		if opsOverride > 0 {
			e.OpsPerThread = opsOverride
		}
		fmt.Printf("# %s — beyond the paper (%s keys)\n", e.Name, e.Dist)
		start := time.Now()
		points := e.Run()
		harness.PrintNUMA(os.Stdout, e.Title, points)
		writeJSON(e.Name, e.Title, time.Since(start), points)
		fmt.Println()
	case "8":
		e := harness.Fig8(!full)
		e.Workers = workers
		if len(sc.Threads) > 0 {
			e.Threads = sc.Threads
		}
		fmt.Printf("# %s — %s\n", e.Name, "Figure 8")
		start := time.Now()
		points := e.Run()
		harness.PrintVacation(os.Stdout, e.Title, points)
		writeJSON(e.Name, e.Title, time.Since(start), points)
		fmt.Println()
	default:
		fmt.Fprintf(os.Stderr, "memtag-bench: unknown figure %q\n", fig)
		os.Exit(2)
	}
}

func runSet(e *harness.SetExperiment) {
	e.Workers = workers
	e.Telemetry = telemetryOn
	e.SampleEvery = sampleEvery
	fmt.Printf("# %s — %s\n", e.Name, e.Figure)
	start := time.Now()
	points := e.Run()
	harness.PrintTable(os.Stdout, e.Title, points)
	writeJSON(e.Name, e.Title, time.Since(start), points)
	if traceOut != "" {
		writeTrace(e)
	}
	// Headline comparisons at the largest thread count.
	n := e.Threads[len(e.Threads)-1]
	base := e.Variants[0].Name
	for _, v := range e.Variants[1:] {
		if s := harness.Speedup(points, v.Name, base, n); s > 0 {
			fmt.Printf("speedup %s vs %s @%d threads: %.2fx\n", v.Name, base, n, s)
		}
	}
	fmt.Println()
}

// writeTrace re-runs one cell of the experiment — the last variant
// (conventionally the tagged one) at the largest thread count — with the
// backend tracer and per-op spans attached, and writes the Perfetto
// trace-event JSON to traceOut.
func writeTrace(e *harness.SetExperiment) {
	variant := e.Variants[len(e.Variants)-1].Name
	threads := e.Threads[len(e.Threads)-1]
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
		os.Exit(1)
	}
	if err := e.TraceCell(variant, threads, f); err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: trace: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s @%d threads; open at ui.perfetto.dev)\n", traceOut, variant, threads)
}

// benchResult is the schema of a BENCH_<name>.json file: the experiment's
// points plus enough host metadata to compare runs across machines.
// With -telemetry each point additionally carries op_lat_p50, op_lat_p99,
// op_lat_max, retries_per_op, and windows (the sampler's time series); see
// EXPERIMENTS.md, "Observability". Pool-backed variants (-fig reclaim)
// carry retire_free_p50/p99, peak_live_lines, and freelist_lines.
type benchResult struct {
	Name        string  `json:"name"`
	Title       string  `json:"title"`
	Workers     int     `json:"workers"`
	HostCPUs    int     `json:"host_cpus"`
	HostSeconds float64 `json:"host_seconds"`
	Points      any     `json:"points"`
}

func writeJSON(name, title string, elapsed time.Duration, points any) {
	if jsonDir == "" {
		return
	}
	out := benchResult{
		Name:        name,
		Title:       title,
		Workers:     workers,
		HostCPUs:    runtime.GOMAXPROCS(0),
		HostSeconds: elapsed.Seconds(),
		Points:      points,
	}
	path := filepath.Join(jsonDir, "BENCH_"+name+".json")
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "memtag-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
