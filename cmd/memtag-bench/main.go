// Command memtag-bench regenerates the paper's evaluation figures
// (Section 6) on the machine simulator and prints each figure's series as
// a table: throughput, L1 miss rate and energy versus thread count for
// every data-structure variant.
//
// Usage:
//
//	memtag-bench -fig all            # every figure, quick scale
//	memtag-bench -fig 6 -full       # Figure 6 at paper scale (1-64 cores)
//	memtag-bench -fig 2 -threads 1,2,4,8,16 -ops 1000 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 2, 4, 5, 6, 7, 8, skip, bst, chromatic, stmset, elision, or all")
	full := flag.Bool("full", false, "paper scale (1-64 simulated cores, more ops, 3 trials)")
	threads := flag.String("threads", "", "override thread counts, e.g. 1,2,4,8")
	ops := flag.Int("ops", 0, "override operations per thread")
	trials := flag.Int("trials", 0, "override trial count")
	flag.Parse()

	sc := harness.QuickScale()
	if *full {
		sc = harness.PaperScale()
	}
	if *threads != "" {
		sc.Threads = parseThreads(*threads)
	}
	if *ops > 0 {
		sc.OpsPerThread = *ops
	}
	if *trials > 0 {
		sc.Trials = *trials
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"2", "4", "5", "6", "7", "8", "skip", "bst", "chromatic", "stmset", "elision"}
	}
	for _, f := range figs {
		run(strings.TrimSpace(f), sc, *full)
	}
}

func parseThreads(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 64 {
			fmt.Fprintf(os.Stderr, "memtag-bench: bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func run(fig string, sc harness.Scale, full bool) {
	switch fig {
	case "2":
		runSet(harness.Fig2(sc))
	case "4":
		runSet(harness.Fig4(sc))
	case "5":
		runSet(harness.Fig5(sc))
	case "6":
		runSet(harness.Fig6(sc))
	case "7":
		runSet(harness.Fig7(sc))
	case "skip":
		runSet(harness.SkipExperiment(sc))
	case "bst":
		runSet(harness.BSTExperiment(sc))
	case "stmset":
		runSet(harness.StmSetExperiment(sc))
	case "chromatic":
		runSet(harness.ChromaticExperiment(sc))
	case "elision":
		e := harness.NewElisionExperiment(!full)
		fmt.Printf("# %s — fallback ablation\n", e.Name)
		harness.PrintElision(os.Stdout, e.Title, e.Run())
		fmt.Println()
	case "8":
		e := harness.Fig8(!full)
		if len(sc.Threads) > 0 {
			e.Threads = sc.Threads
		}
		fmt.Printf("# %s — %s\n", e.Name, "Figure 8")
		points := e.Run()
		harness.PrintVacation(os.Stdout, e.Title, points)
		fmt.Println()
	default:
		fmt.Fprintf(os.Stderr, "memtag-bench: unknown figure %q\n", fig)
		os.Exit(2)
	}
}

func runSet(e *harness.SetExperiment) {
	fmt.Printf("# %s — %s\n", e.Name, e.Figure)
	points := e.Run()
	harness.PrintTable(os.Stdout, e.Title, points)
	// Headline comparisons at the largest thread count.
	n := e.Threads[len(e.Threads)-1]
	base := e.Variants[0].Name
	for _, v := range e.Variants[1:] {
		if s := harness.Speedup(points, v.Name, base, n); s > 0 {
			fmt.Printf("speedup %s vs %s @%d threads: %.2fx\n", v.Name, base, n, s)
		}
	}
	fmt.Println()
}
