// Command memtag-stress runs randomized concurrent stress over every data
// structure in the repository, on either memory backend, verifying
// linearizability bookkeeping (per-key net-success counts) and each
// structure's own invariants afterwards. Intended for CI soak testing:
//
//	memtag-stress                       # one quick round over everything
//	memtag-stress -rounds 20 -threads 8 -backend machine
//	memtag-stress -structs hoh-tree,chromatic -ops 2000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/abtree"
	"repro/internal/bst"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/schedexplore"
	"repro/internal/schedfuzz"
	"repro/internal/skiplist"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/txmap"
	"repro/internal/txset"
	"repro/internal/vtags"
)

// Telemetry flags, read by the fixed-signature round runners.
var (
	telemetryOn  bool
	sampleEveryN uint64
	traceOutPath string
)

// reclaimPolicy is the -reclaim selection; policyOff disables wiring.
const policyOff reclaim.Policy = -1

var reclaimPolicy = policyOff

// telemetryBackend and tracerBackend are the observability hooks both
// memory backends expose; opClocked is the per-thread clock both backends'
// threads implement (simulated cycles on machine, logical ticks on vtags).
type telemetryBackend interface{ SetTelemetry(s *telemetry.Set) }
type tracerBackend interface{ SetTracer(tr machine.Tracer) }
type opClocked interface{ OpClock() (clock, fails uint64) }

type structDef struct {
	name  string
	build func(core.Memory) intset.Set
	check func(core.Thread, intset.Set) error
	// reclaim builds the structure with a reclamation pool of the given
	// policy wired in; nil marks structures without retire hooks (-reclaim
	// runs them unwired).
	reclaim func(core.Memory, *reclaim.Domain, reclaim.Policy) (intset.Set, *reclaim.Pool)
}

func structs() []structDef {
	treeCheck := func(th core.Thread, s intset.Set) error {
		type ck interface {
			Root() core.Addr
			Layout() (int, int)
		}
		if c, ok := s.(ck); ok {
			return abtree.CheckInvariants(th, c)
		}
		return nil
	}
	chromCheck := func(th core.Thread, s intset.Set) error {
		type ck interface {
			Root() core.Addr
			S2() core.Addr
		}
		if c, ok := s.(ck); ok {
			return chromatic.CheckInvariants(th, c)
		}
		return nil
	}
	none := func(core.Thread, intset.Set) error { return nil }
	// Reclamation builders for the structures with retire hooks; the rest
	// leave the field nil and run unwired under -reclaim.
	recVASList := func(m core.Memory, d *reclaim.Domain, pol reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := list.NewVAS(m)
		p := reclaim.NewPool(d, list.NodeWords, pol)
		s.SetReclaim(p)
		return s, p
	}
	recHoHList := func(m core.Memory, d *reclaim.Domain, pol reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := list.NewHoH(m)
		p := reclaim.NewPool(d, list.NodeWords, pol)
		s.SetReclaim(p)
		return s, p
	}
	recHoHTree := func(m core.Memory, d *reclaim.Domain, pol reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := abtree.NewHoH(m, 4, 8)
		p := reclaim.NewPool(d, s.NodeWords(), pol)
		s.SetReclaim(p)
		return s, p
	}
	recVASSkip := func(m core.Memory, d *reclaim.Domain, pol reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := skiplist.NewVAS(m)
		p := reclaim.NewPool(d, skiplist.NodeWords, pol)
		s.SetReclaim(p)
		return s, p
	}
	recTaggedSet := func(m core.Memory, d *reclaim.Domain, pol reclaim.Policy) (intset.Set, *reclaim.Pool) {
		tm := stm.NewTagged(m)
		tm.SetReclaim(d)
		s := txset.New(m, tm)
		p := reclaim.NewPool(d, txmap.NodeWords, pol)
		s.SetReclaim(p)
		return s, p
	}
	return []structDef{
		{"harris-list", func(m core.Memory) intset.Set { return list.NewHarris(m) }, none, nil},
		{"vas-list", func(m core.Memory) intset.Set { return list.NewVAS(m) }, none, recVASList},
		{"hoh-list", func(m core.Memory) intset.Set { return list.NewHoH(m) }, none, recHoHList},
		{"lock-list", func(m core.Memory) intset.Set { return list.NewLock(m) }, none, nil},
		{"elided-list", func(m core.Memory) intset.Set { return list.NewElided(m, 0) }, none, nil},
		{"llx-tree", func(m core.Memory) intset.Set { return abtree.NewLLX(m, 4, 8) }, treeCheck, nil},
		{"hoh-tree", func(m core.Memory) intset.Set { return abtree.NewHoH(m, 4, 8) }, treeCheck, recHoHTree},
		{"elided-tree", func(m core.Memory) intset.Set { return abtree.NewElided(m, 4, 8, 0) }, treeCheck, nil},
		{"llx-bst", func(m core.Memory) intset.Set { return bst.NewLLX(m) }, none, nil},
		{"hoh-bst", func(m core.Memory) intset.Set { return bst.NewHoH(m) }, none, nil},
		{"llx-chromatic", func(m core.Memory) intset.Set { return chromatic.NewLLX(m) }, chromCheck, nil},
		{"hoh-chromatic", func(m core.Memory) intset.Set { return chromatic.NewHoH(m) }, chromCheck, nil},
		{"skiplist-cas", func(m core.Memory) intset.Set { return skiplist.New(m) }, none, nil},
		{"skiplist-vas", func(m core.Memory) intset.Set { return skiplist.NewVAS(m) }, none, recVASSkip},
		{"norec-set", func(m core.Memory) intset.Set { return txset.New(m, stm.NewNOrec(m)) }, none, nil},
		{"tagged-set", func(m core.Memory) intset.Set { return txset.New(m, stm.NewTagged(m)) }, none, recTaggedSet},
	}
}

// attachDomain creates a checked reclamation domain over mem (violations
// recorded, surfaced after the round) and attaches it to the backend.
func attachDomain(mem core.Memory) *reclaim.Domain {
	d := reclaim.NewDomainFor(mem)
	d.SetChecked(true)
	d.OnViolation(func(error) {})
	if sr, ok := mem.(interface{ SetReclaim(*reclaim.Domain) }); ok {
		sr.SetReclaim(d)
	}
	return d
}

func main() {
	rounds := flag.Int("rounds", 1, "stress rounds per structure")
	threads := flag.Int("threads", 4, "concurrent threads")
	ops := flag.Int("ops", 500, "operations per thread per round")
	keyRange := flag.Uint64("range", 48, "key range (small = high contention)")
	backend := flag.String("backend", "both", "memory backend: machine, vtags, or both")
	only := flag.String("structs", "", "comma-separated structure names (default all)")
	seed := flag.Int64("seed", 1, "base random seed")
	telFlag := flag.Bool("telemetry", false,
		"record per-op latency/retry histograms during stress rounds and print a per-round summary (stress rounds only)")
	sampleFlag := flag.Uint64("sample-every", 4096,
		"telemetry sampler interval in backend clock units (cycles on machine, ops on vtags)")
	traceFlag := flag.String("trace-out", "",
		"write a Perfetto trace-event JSON of the stress round to this file (later rounds overwrite earlier ones; pair with -rounds 1 -structs <one> -backend <one>)")
	reclaimFlag := flag.String("reclaim", "",
		"wire a memory-reclamation pool into the structures with retire hooks (vas-list, hoh-list, hoh-tree, skiplist-vas, tagged-set): immediate (tag-conditioned) or epoch. The domain runs in checked mode, so any discipline violation fails the round; structures without hooks run unwired")
	linearize := flag.Bool("linearize", false,
		"record every operation and check the history with the linearizability checker, under schedule fuzzing (slower per op)")
	explore := flag.Bool("explore", false,
		"drive the cycle-level schedule explorer (machine backend only): serialize the cores, enumerate interleavings derived from -seed — including intra-operation directory-locking windows — and check every execution's history; a violation prints the schedule and machine trace, and re-running with the same -seed replays it exactly")
	exploreExecs := flag.Int("explore-execs", 8, "schedule-explorer executions per structure per round")
	exploreMode := flag.String("explore-mode", "random",
		"schedule exploration strategy: random, pct, exhaustive, or dpor (dynamic partial-order reduction — one schedule per interleaving class; use small -ops/-threads with exhaustive or dpor)")
	flag.Parse()

	if *threads < 1 {
		fmt.Fprintln(os.Stderr, "memtag-stress: -threads must be at least 1")
		os.Exit(2)
	}
	telemetryOn = *telFlag
	sampleEveryN = *sampleFlag
	traceOutPath = *traceFlag
	switch *reclaimFlag {
	case "":
	case "immediate":
		reclaimPolicy = reclaim.PolicyImmediate
	case "epoch":
		reclaimPolicy = reclaim.PolicyEpoch
	default:
		fmt.Fprintf(os.Stderr, "memtag-stress: unknown reclaim policy %q (valid: immediate, epoch)\n", *reclaimFlag)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, sd := range structs() {
		known[sd.name] = true
	}
	selected := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			if !known[n] {
				names := make([]string, 0, len(known))
				for _, sd := range structs() {
					names = append(names, sd.name)
				}
				fmt.Fprintf(os.Stderr, "memtag-stress: unknown structure %q (valid: %s)\n", n, strings.Join(names, ", "))
				os.Exit(2)
			}
			selected[n] = true
		}
	}

	backends := []string{"vtags", "machine"}
	if *backend != "both" {
		if *backend != "vtags" && *backend != "machine" {
			fmt.Fprintf(os.Stderr, "memtag-stress: unknown backend %q (valid: vtags, machine, both)\n", *backend)
			os.Exit(2)
		}
		backends = []string{*backend}
	}

	run := stressOne
	if *linearize {
		run = linearizeOne
	}
	if *explore {
		var mode schedexplore.Mode
		switch *exploreMode {
		case "random":
			mode = schedexplore.RandomWalk
		case "pct":
			mode = schedexplore.PCT
		case "exhaustive":
			mode = schedexplore.Exhaustive
		case "dpor":
			mode = schedexplore.StrategyDPOR
		default:
			fmt.Fprintf(os.Stderr, "memtag-stress: unknown explore mode %q (valid: random, pct, exhaustive, dpor)\n", *exploreMode)
			os.Exit(2)
		}
		backends = []string{"machine"} // the explorer gates simulated cores
		execs := *exploreExecs
		run = func(sd structDef, bk string, threads, ops int, keyRange uint64, seed int64) error {
			return exploreOne(sd, threads, ops, keyRange, seed, mode, execs)
		}
	}

	failures := 0
	for _, sd := range structs() {
		if len(selected) > 0 && !selected[sd.name] {
			continue
		}
		for _, bk := range backends {
			for round := 0; round < *rounds; round++ {
				if err := run(sd, bk, *threads, *ops, *keyRange, *seed+int64(round)); err != nil {
					fmt.Printf("FAIL %-14s %-8s round %d: %v\n", sd.name, bk, round, err)
					failures++
				} else {
					fmt.Printf("ok   %-14s %-8s round %d\n", sd.name, bk, round)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("all stress rounds passed")
}

func newBackend(kind string, threads int) core.Memory {
	if kind == "vtags" {
		return vtags.New(256<<20, threads)
	}
	cfg := machine.DefaultConfig(threads)
	cfg.MemBytes = 256 << 20
	cfg.MaxTags = 128
	return machine.New(cfg)
}

// linearizeOne runs one recorded round under schedule fuzzing and checks
// the operation history against the sequential set model.
func linearizeOne(sd structDef, backend string, threads, ops int, keyRange uint64, seed int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	var dom *reclaim.Domain
	var pool *reclaim.Pool
	newMem := func(t int) core.Memory {
		m := newBackend(backend, t)
		if reclaimPolicy != policyOff && sd.reclaim != nil {
			dom = attachDomain(m)
		}
		return m
	}
	build := sd.build
	if reclaimPolicy != policyOff && sd.reclaim != nil {
		build = func(mem core.Memory) intset.Set {
			s, p := sd.reclaim(mem, dom, reclaimPolicy)
			pool = p
			return s
		}
	}
	fuzz := schedfuzz.Default(seed)
	out := intset.RunLinearize(
		newMem,
		build,
		intset.LinearizeConfig{
			Threads:      threads,
			OpsPerThread: ops,
			KeyRange:     keyRange,
			Prefill:      int(keyRange / 2),
			Seed:         seed,
			Fuzz:         &fuzz,
			FlipMode:     true,
		})
	if out.Inconclusive {
		return fmt.Errorf("linearizability checker inconclusive after %d ops", out.Ops)
	}
	if !out.OK {
		return fmt.Errorf("history not linearizable:\n%s", out.Explain())
	}
	if pool != nil {
		if verr := dom.Violation(); verr != nil {
			return fmt.Errorf("reclamation guard violation: %v", verr)
		}
	}
	return nil
}

// exploreOne runs one schedule-explored round on the machine backend: the
// explorer serializes the simulated cores, enumerates interleavings — op
// boundaries plus the intra-operation directory-locking windows — with
// targeted tag evictions, and checks every execution's history. The whole
// round is a pure function of the seed, so a reported violation is
// reproduced exactly by re-running with the same flags.
func exploreOne(sd structDef, threads, ops int, keyRange uint64, seed int64, mode schedexplore.Mode, execs int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	newMachine := func(t int) *machine.Machine {
		cfg := machine.DefaultConfig(t)
		cfg.MemBytes = 256 << 20
		cfg.MaxTags = 128
		return machine.New(cfg)
	}
	res := intset.RunExplore(newMachine, sd.build, intset.ExploreConfig{
		Threads:      threads,
		OpsPerThread: ops,
		KeyRange:     keyRange,
		Prefill:      int(keyRange / 2),
		Seed:         seed,
		Mode:         mode,
		Executions:   execs,
		EvictPerMil:  100,
	})
	if res.Failure != nil {
		return fmt.Errorf("schedule explorer found a violation (replay with the same -seed %d):\n%s", seed, res.Failure)
	}
	fmt.Printf("     %-14s %-8s coverage: %d executions (%d truncated, %d sleep-blocked), %d interleaving classes, exhausted=%v\n",
		sd.name, mode, res.Executions, res.Truncated, res.SleepBlocked, res.Classes(), res.Exhausted)
	return nil
}

// stressOne runs one concurrent mixed round and verifies per-key counts,
// snapshot order, and structural invariants.
func stressOne(sd structDef, backend string, threads, ops int, keyRange uint64, seed int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	mem := newBackend(backend, threads)
	var dom *reclaim.Domain
	var pool *reclaim.Pool
	var s intset.Set
	if reclaimPolicy != policyOff && sd.reclaim != nil {
		dom = attachDomain(mem)
		s, pool = sd.reclaim(mem, dom, reclaimPolicy)
	} else {
		s = sd.build(mem)
	}

	// Observability hooks, enabled by -telemetry / -trace-out. Both
	// backends implement the same interfaces, so stress rounds exercise the
	// allocation-free recording path under real concurrency.
	var tset *telemetry.Set
	var sampler *telemetry.Sampler
	var tcol *telemetry.TraceCollector
	if telemetryOn {
		if tb, ok := mem.(telemetryBackend); ok {
			tset = telemetry.NewSet(threads)
			tb.SetTelemetry(tset)
			every := sampleEveryN
			if every == 0 {
				every = 4096
			}
			sampler = telemetry.NewSampler(threads, every, 64)
			if pool != nil {
				pool.SetTelemetry(tset)
			}
		}
	}
	if traceOutPath != "" {
		if trb, ok := mem.(tracerBackend); ok {
			tcol = telemetry.NewTraceCollector(threads)
			trb.SetTracer(machine.TraceTo(tcol))
		}
	}

	type cnt struct{ ins, del int64 }
	counts := make([][]cnt, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		counts[w] = make([]cnt, keyRange)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			var oc opClocked
			if tset != nil || tcol != nil {
				oc, _ = th.(opClocked)
			}
			var tel *telemetry.Core
			if tset != nil && oc != nil {
				tel = tset.Core(w)
				c0, f0 := oc.OpClock()
				sampler.Enroll(w, c0, f0)
			}
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			for i := 0; i < ops; i++ {
				idx := rng.Intn(int(keyRange))
				k := intset.KeyMin + uint64(idx)
				op := rng.Intn(3)
				var c0, f0 uint64
				if oc != nil {
					c0, f0 = oc.OpClock()
				}
				switch op {
				case 0:
					if s.Insert(th, k) {
						counts[w][idx].ins++
					}
				case 1:
					if s.Delete(th, k) {
						counts[w][idx].del++
					}
				default:
					s.Contains(th, k)
				}
				if oc != nil {
					c1, f1 := oc.OpClock()
					if tel != nil {
						tel.OpLatency.Observe(c1 - c0)
						tel.OpRetries.Observe(f1 - f0)
						sampler.Tick(w, c1, f1)
					}
					if tcol != nil {
						tcol.OpSpan(w, [...]string{"Insert", "Delete", "Contains"}[op], c0, c1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if tset != nil {
		tset.Flush()
		agg := tset.Merge()
		retries := 0.0
		if n := agg.OpRetries.Count(); n > 0 {
			retries = float64(agg.OpRetries.Sum()) / float64(n)
		}
		fmt.Printf("     %-14s %-8s telemetry: op latency p50=%.0f p99=%.0f max=%d, retries/op=%.3f, windows=%d\n",
			sd.name, backend, agg.OpLatency.Quantile(0.5), agg.OpLatency.Quantile(0.99),
			agg.OpLatency.Max(), retries, len(sampler.Windows()))
	}
	if tcol != nil {
		if trb, ok := mem.(tracerBackend); ok {
			trb.SetTracer(nil)
		}
		f, ferr := os.Create(traceOutPath)
		if ferr != nil {
			return ferr
		}
		if werr := tcol.WriteJSON(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Printf("     %-14s %-8s trace: wrote %s (%d events)\n", sd.name, backend, traceOutPath, tcol.Events())
	}
	if pool != nil {
		if verr := dom.Violation(); verr != nil {
			return fmt.Errorf("reclamation guard violation: %v", verr)
		}
		st := pool.Stats()
		line := fmt.Sprintf("     %-14s %-8s reclaim: retired %d freed %d reused %d, peak %d lines, free-list %d",
			sd.name, backend, st.Retired, st.Freed, st.ReusedAllocs, st.HighWaterLines, st.FreeLines)
		if tset != nil {
			if agg := tset.Merge(); agg.RetireToFree.Count() > 0 {
				line += fmt.Sprintf(", retire-free p50=%.0f p99=%.0f",
					agg.RetireToFree.Quantile(0.5), agg.RetireToFree.Quantile(0.99))
			}
		}
		fmt.Println(line)
	}

	th := mem.Thread(0)
	for idx := uint64(0); idx < keyRange; idx++ {
		var ins, del int64
		for w := 0; w < threads; w++ {
			ins += counts[w][idx].ins
			del += counts[w][idx].del
		}
		net := ins - del
		if net != 0 && net != 1 {
			return fmt.Errorf("key %d: net successes %d", intset.KeyMin+idx, net)
		}
		if got, want := s.Contains(th, intset.KeyMin+idx), net == 1; got != want {
			return fmt.Errorf("key %d: contains=%v want %v", intset.KeyMin+idx, got, want)
		}
	}
	if snap, ok := s.(intset.Snapshotter); ok {
		keys := snap.Keys(th)
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return fmt.Errorf("final enumeration unsorted")
		}
	}
	return sd.check(th, s)
}
