// Command memtag-serve exposes the tagged structures as a network service:
// a KV plane (transactional red-black map), a set plane (skiplist on the
// versioned-tag backend), and a STAMP-vacation reservation plane, all over
// one ASCII line protocol. Streaming telemetry publishes time-resolved
// ops/fails/latency windows at /metrics while traffic runs.
//
//	memtag-serve -addr :7070 -metrics :7071 -workers 8 -tm tagged
//	memtag-serve -reclaim immediate -relations 4096
//
// SIGINT/SIGTERM drain connections gracefully and print a JSON summary
// (requests, fails, p50/p99 service time) to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/reclaim"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "service listen address")
		metrics     = flag.String("metrics", "127.0.0.1:7071", "metrics HTTP listen address (empty = off)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "engine workers (backend threads)")
		memBytes    = flag.Int("mem-bytes", 1<<30, "simulated memory arena size")
		maxTags     = flag.Int("max-tags", 0, "tag-space size (0 = backend default)")
		tm          = flag.String("tm", "tagged", "transaction engine: tagged or norec")
		reclaimMode = flag.String("reclaim", "off", "reclamation: off, immediate, or epoch")
		relations   = flag.Int("relations", 1024, "vacation relations to pre-populate")
		seed        = flag.Int64("seed", 1, "populate seed")
		streamEvery = flag.Duration("stream-every", 100*time.Millisecond, "telemetry window width")
		streamDepth = flag.Int("stream-depth", 120, "telemetry windows retained per worker")
		drain       = flag.Duration("drain", 10*time.Second, "shutdown drain budget")

		spans       = flag.Bool("spans", false, "record per-request spans into the flight recorder")
		tailLatency = flag.Duration("tail-latency", time.Millisecond, "tail-sample spans at least this slow (0 = off)")
		tailRetries = flag.Int("tail-attempts", 4, "tail-sample spans burning at least this many STM attempts (0 = off)")
		flightDepth = flag.Int("flight-depth", 256, "flight-ring spans retained per worker")
		sloP99      = flag.Duration("slo-p99", 0, "p99 budget arming the auto-dump (0 = off)")
		sloWindows  = flag.Int("slo-windows", 3, "consecutive breached windows that trigger a dump")
		flightDump  = flag.String("flight-dump", "flight-dump", "post-mortem bundle directory")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof on the metrics mux")
	)
	flag.Parse()

	cfg := serve.Config{
		Addr:        *addr,
		MetricsAddr: *metrics,
		StreamEvery: *streamEvery,
		StreamDepth: *streamDepth,
		Pprof:       *pprofOn,
		Engine: serve.EngineConfig{
			Workers:   *workers,
			MemBytes:  *memBytes,
			MaxTags:   *maxTags,
			Relations: *relations,
			Seed:      *seed,
		},
	}
	if *spans {
		cfg.Flight = serve.FlightConfig{
			Spans:      true,
			Depth:      *flightDepth,
			SLOP99:     *sloP99,
			SLOWindows: *sloWindows,
			DumpDir:    *flightDump,
		}
		// Flag zero means "criterion off"; FlightConfig uses negative for
		// that (its zero value means "default").
		cfg.Flight.TailLatency = *tailLatency
		if *tailLatency == 0 {
			cfg.Flight.TailLatency = -1
		}
		cfg.Flight.TailAttempts = *tailRetries
		if *tailRetries == 0 {
			cfg.Flight.TailAttempts = -1
		}
	}
	switch *tm {
	case "tagged":
		cfg.Engine.Tagged = true
	case "norec":
	default:
		fatalf("unknown -tm %q (want tagged or norec)", *tm)
	}
	switch *reclaimMode {
	case "off":
	case "immediate":
		cfg.Engine.Reclaim = true
		cfg.Engine.ReclaimPolicy = reclaim.PolicyImmediate
	case "epoch":
		cfg.Engine.Reclaim = true
		cfg.Engine.ReclaimPolicy = reclaim.PolicyEpoch
	default:
		fatalf("unknown -reclaim %q (want off, immediate, or epoch)", *reclaimMode)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if err := srv.Start(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "memtag-serve: listening on %s (tm=%s reclaim=%s workers=%d)\n",
		srv.Addr(), *tm, *reclaimMode, *workers)
	if *metrics != "" {
		fmt.Fprintf(os.Stderr, "memtag-serve: metrics on http://%s/metrics\n", srv.MetricsAddr())
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	var s os.Signal
	for s = <-sig; s == syscall.SIGQUIT; s = <-sig {
		// SIGQUIT is the operator's black-box pull: dump the flight
		// recorder and keep serving.
		if dir, err := srv.TriggerDump("sigquit"); err != nil {
			fmt.Fprintf(os.Stderr, "memtag-serve: flight dump: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "memtag-serve: flight dump written to %s\n", dir)
		}
	}
	fmt.Fprintf(os.Stderr, "memtag-serve: %v, draining\n", s)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "memtag-serve: shutdown: %v\n", err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(srv.Summarize())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memtag-serve: "+format+"\n", args...)
	os.Exit(2)
}
