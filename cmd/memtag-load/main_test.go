package main

import (
	"bufio"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// flakyServer answers every request with "T\n" but slams the connection
// shut after kill responses, exercising the load generator's mid-run
// session-death path.
func flakyServer(t *testing.T, kill int) (addr string, served *atomic.Uint64, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served = &atomic.Uint64{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for n := 0; n < kill; n++ {
					if _, err := br.ReadBytes('\n'); err != nil {
						return
					}
					if _, err := c.Write([]byte("T\n")); err != nil {
						return
					}
					served.Add(1)
				}
				// kill responses served: die abruptly, mid-pipeline.
			}(conn)
		}
	}()
	return ln.Addr().String(), served, func() { ln.Close() }
}

// TestRunLoadSurvivesSessionDeath pins the fix for the silent-tally-drop
// bug: a connection dying mid-run must not exit the process, and the final
// report must retain the dead sessions' partial counts, record the deaths,
// and charge the in-flight requests to their op class's error column.
func TestRunLoadSurvivesSessionDeath(t *testing.T) {
	addr, served, stop := flakyServer(t, 10)
	defer stop()

	mix, err := parseMix("sadd:100")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	wcfg := workload.Config{KeyRange: 128}
	const total = 200
	cfg := &loadCfg{
		addr: addr, conns: 2, pipeline: 8,
		requests: total, deadline: time.Now().Add(30 * time.Second),
		mix: mix, keyRange: 128, resRange: 16,
		draw: workload.NewKeyDraw(&wcfg), seed: 1, distName: "uniform",
	}
	rep := runLoad(cfg)

	if rep.Deaths == 0 {
		t.Fatalf("expected session deaths against a connection-killing server, got 0 (report %+v)", rep)
	}
	if rep.Requests == 0 {
		t.Fatalf("partial tallies dropped: 0 completed requests despite %d served", served.Load())
	}
	// The abrupt close can RST away responses the server already counted,
	// so completed <= served (equality would flake).
	if rep.Requests > served.Load() {
		t.Errorf("completed requests %d > responses the server sent %d", rep.Requests, served.Load())
	}
	if rep.Errors == 0 {
		t.Errorf("in-flight requests of dead sessions not charged as errors")
	}
	if rep.Requests+rep.Errors > total {
		t.Errorf("accounted %d requests + %d errors > budget %d", rep.Requests, rep.Errors, total)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Name != "sadd" {
		t.Fatalf("expected one sadd class, got %+v", rep.Classes)
	}
	if got := rep.Classes[0].Errors; got != rep.Errors {
		t.Errorf("per-class errors %d != total errors %d", got, rep.Errors)
	}
	if rep.Classes[0].Count != rep.Requests {
		t.Errorf("per-class count %d != requests %d", rep.Classes[0].Count, rep.Requests)
	}
	if rep.TargetRPS != 0 {
		t.Errorf("closed loop should report target_rps 0, got %g", rep.TargetRPS)
	}
}

// TestRunLoadCleanRun sanity-checks the happy path against a well-behaved
// server: no deaths, no errors, all requests accounted.
func TestRunLoadCleanRun(t *testing.T) {
	addr, served, stop := flakyServer(t, 1<<30)
	defer stop()

	mix, err := parseMix("get:50,sadd:50")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	wcfg := workload.Config{KeyRange: 128}
	cfg := &loadCfg{
		addr: addr, conns: 2, pipeline: 4,
		requests: 120, deadline: time.Now().Add(30 * time.Second),
		mix: mix, keyRange: 128, resRange: 16,
		draw: workload.NewKeyDraw(&wcfg), seed: 1, distName: "uniform",
	}
	rep := runLoad(cfg)
	if rep.Deaths != 0 || rep.Errors != 0 {
		t.Fatalf("clean run reported deaths=%d errors=%d", rep.Deaths, rep.Errors)
	}
	if rep.Requests != 120 || rep.Requests != served.Load() {
		t.Fatalf("requests %d, served %d, want 120", rep.Requests, served.Load())
	}
}

func TestPromValueAndExemplar(t *testing.T) {
	text := "# TYPE memtag_requests_total counter\n" +
		"memtag_requests_total 42\n" +
		"memtag_request_duration_ns_bucket{le=\"1023\"} 7 # {trace_id=\"0000000010000001\"} 900\n" +
		"memtag_request_duration_ns_bucket{le=\"2047\"} 9 # {trace_id=\"0000000010000002\"} 1800\n"
	v, ok := promValue(text, "memtag_requests_total")
	if !ok || v != 42 {
		t.Fatalf("promValue = %v, %v; want 42, true", v, ok)
	}
	if _, ok := promValue(text, "memtag_nope_total"); ok {
		t.Fatal("promValue found a missing metric")
	}
	if id := lastExemplarID(text); id != "0000000010000002" {
		t.Fatalf("lastExemplarID = %q", id)
	}
}
