// Command memtag-load drives traffic at a memtag-serve instance and
// reports SLO statistics. It reuses the experiment suite's key
// distributions (uniform / zipfian / hotset via workload.NewKeyDraw), so a
// served run is skew-comparable with the in-process benchmarks.
//
// Closed loop (default): each connection keeps -pipeline requests in
// flight and latency is measured write-to-response. Open loop (-rate):
// sends are scheduled at a fixed aggregate rate and latency is measured
// from the *scheduled* send time, so queueing delay from a saturated
// server is charged to the server rather than silently absorbed (no
// coordinated omission).
//
//	memtag-load -addr 127.0.0.1:7070 -conns 8 -duration 10s
//	memtag-load -dist zipfian -theta 0.99 -rate 50000 -json slo.json
//	memtag-load -storm-every 2s -storm-duration 200ms -churn-every 500ms
//
// -min-rate makes the process exit nonzero if achieved throughput falls
// short — the CI smoke gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/vacation"
	"repro/internal/workload"
)

// opClass is one entry of the -mix: a wire op and its traffic share.
type opClass struct {
	name string
	op   uint8
	pct  int
}

var classTable = map[string]uint8{
	"get": serve.CmdGet, "put": serve.CmdPut, "del": serve.CmdDel,
	"sadd": serve.CmdSAdd, "srem": serve.CmdSRem, "shas": serve.CmdSHas,
	"resv": serve.CmdResv, "bill": serve.CmdBill, "cancel": serve.CmdCancel,
	"ping": serve.CmdPing,
}

func parseMix(s string) ([]opClass, error) {
	var mix []opClass
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, pctStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op:pct", part)
		}
		op, ok := classTable[name]
		if !ok {
			return nil, fmt.Errorf("mix entry %q: unknown op", part)
		}
		pct, err := strconv.Atoi(pctStr)
		if err != nil || pct <= 0 {
			return nil, fmt.Errorf("mix entry %q: bad percentage", part)
		}
		mix = append(mix, opClass{name: name, op: op, pct: pct})
		total += pct
	}
	if total != 100 {
		return nil, fmt.Errorf("mix percentages sum to %d, want 100", total)
	}
	return mix, nil
}

// classSLO is the per-op-class section of the -json report.
type classSLO struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
	MaxNS uint64  `json:"max_ns"`
}

type report struct {
	Addr      string     `json:"addr"`
	Conns     int        `json:"conns"`
	Pipeline  int        `json:"pipeline"`
	Dist      string     `json:"dist"`
	RateRPS   float64    `json:"rate_rps"`
	TargetRPS float64    `json:"target_rps,omitempty"`
	ElapsedNS int64      `json:"elapsed_ns"`
	Requests  uint64     `json:"requests"`
	Errors    uint64     `json:"errors"`
	Churns    uint64     `json:"churns"`
	Classes   []classSLO `json:"classes"`
}

type loadCfg struct {
	addr          string
	conns         int
	pipeline      int
	requests      uint64 // 0 = duration-bound
	deadline      time.Time
	rate          float64 // aggregate target rps; 0 = closed loop
	mix           []opClass
	keyRange      uint64
	resRange      uint64
	draw          func(*rand.Rand) func() uint64
	stormEvery    time.Duration
	stormDuration time.Duration
	churnEvery    time.Duration
	seed          int64

	sent     atomic.Uint64 // request-budget allocator when requests > 0
	storming atomic.Bool
}

// connStats is one connection's tally: latency histograms indexed by mix
// position, plus error/churn/completion counts. No locks — each belongs
// to a single goroutine until the final merge.
type connStats struct {
	lat    []telemetry.Histogram
	errors uint64
	churns uint64
	done   uint64
}

// budget returns how many of the `want` requests this conn may still send
// (0 ends the run). Count-bound runs claim slots from the shared counter;
// duration-bound runs check the deadline.
func (cfg *loadCfg) budget(want int) int {
	if cfg.requests > 0 {
		claimed := cfg.sent.Add(uint64(want))
		if claimed <= cfg.requests {
			return want
		}
		over := claimed - cfg.requests
		if uint64(want) <= over {
			return 0
		}
		return want - int(over)
	}
	if time.Now().After(cfg.deadline) {
		return 0
	}
	return want
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "memtag-serve address")
		conns    = flag.Int("conns", 8, "concurrent connections")
		pipeline = flag.Int("pipeline", 32, "in-flight requests per connection")
		requests = flag.Uint64("requests", 0, "stop after this many total requests (0 = use -duration)")
		duration = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		rate     = flag.Float64("rate", 0, "aggregate open-loop send rate in req/s (0 = closed loop)")
		mixFlag  = flag.String("mix", "get:40,put:25,del:10,sadd:10,srem:5,shas:5,resv:3,bill:1,cancel:1", "op mix, percentages summing to 100")
		keyRange = flag.Uint64("range", 16384, "KV/set key range")
		resRange = flag.Uint64("res-range", 1024, "reservation resource-id range")
		dist     = flag.String("dist", "uniform", "key distribution: uniform, zipfian or hotset")
		theta    = flag.Float64("theta", 0, "zipfian theta (0 = default 0.99)")
		hotKeys  = flag.Int("hot-keys", 0, "hotset: percent of keys that are hot (0 = default 10)")
		hotTraf  = flag.Int("hot-traffic", 0, "hotset: percent of traffic to hot keys (0 = default 90)")
		stormEv  = flag.Duration("storm-every", 0, "hot-key storm interval (0 = no storms)")
		stormDur = flag.Duration("storm-duration", 100*time.Millisecond, "hot-key storm length")
		churnEv  = flag.Duration("churn-every", 0, "re-dial each connection this often (0 = never)")
		jsonOut  = flag.String("json", "", "write the SLO report as JSON to this file (\"-\" = stdout)")
		minRate  = flag.Float64("min-rate", 0, "exit nonzero if achieved req/s falls below this")
		seed     = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatalf("%v", err)
	}
	kd, err := workload.ParseKeyDist(*dist)
	if err != nil {
		fatalf("%v", err)
	}
	if *conns <= 0 || *pipeline <= 0 || *keyRange == 0 {
		fatalf("-conns, -pipeline and -range must be positive")
	}
	wcfg := workload.Config{
		KeyRange:      *keyRange,
		Dist:          kd,
		ZipfTheta:     *theta,
		HotKeysPct:    *hotKeys,
		HotTrafficPct: *hotTraf,
	}
	dl := time.Now().Add(*duration)
	if *requests > 0 {
		dl = time.Now().Add(24 * time.Hour) // count-bound: the budget governs
	}
	cfg := &loadCfg{
		addr: *addr, conns: *conns, pipeline: *pipeline,
		requests: *requests, deadline: dl, rate: *rate, mix: mix,
		keyRange: *keyRange, resRange: *resRange,
		draw:       workload.NewKeyDraw(&wcfg),
		stormEvery: *stormEv, stormDuration: *stormDur,
		churnEvery: *churnEv, seed: *seed,
	}

	// Storm clock: while storming, every key draw collapses onto two
	// scorching keys, serializing the whole fleet on them.
	stopStorm := make(chan struct{})
	if cfg.stormEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.stormEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopStorm:
					return
				case <-tick.C:
					cfg.storming.Store(true)
					select {
					case <-stopStorm:
						return
					case <-time.After(cfg.stormDuration):
						cfg.storming.Store(false)
					}
				}
			}
		}()
	}

	stats := make([]connStats, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runConn(cfg, id, &stats[id])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopStorm)

	rep := report{
		Addr: cfg.addr, Conns: cfg.conns, Pipeline: cfg.pipeline,
		Dist: kd.String(), TargetRPS: cfg.rate, ElapsedNS: int64(elapsed),
	}
	merged := make([]telemetry.Histogram, len(mix))
	for i := range stats {
		rep.Errors += stats[i].errors
		rep.Churns += stats[i].churns
		rep.Requests += stats[i].done
		for j := range merged {
			merged[j].Merge(&stats[i].lat[j])
		}
	}
	rep.RateRPS = float64(rep.Requests) / elapsed.Seconds()
	for j, m := range mix {
		h := &merged[j]
		if h.Count() == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, classSLO{
			Name: m.name, Count: h.Count(),
			P50NS: h.Quantile(0.50), P95NS: h.Quantile(0.95),
			P99NS: h.Quantile(0.99), MaxNS: h.Max(),
		})
	}
	sort.Slice(rep.Classes, func(a, b int) bool { return rep.Classes[a].Count > rep.Classes[b].Count })

	fmt.Fprintf(os.Stderr, "memtag-load: %d requests in %v = %.0f req/s (%d errors, %d churns)\n",
		rep.Requests, elapsed.Round(time.Millisecond), rep.RateRPS, rep.Errors, rep.Churns)
	for _, c := range rep.Classes {
		fmt.Fprintf(os.Stderr, "  %-6s n=%-9d p50=%8.0fns p95=%8.0fns p99=%8.0fns max=%dns\n",
			c.Name, c.Count, c.P50NS, c.P95NS, c.P99NS, c.MaxNS)
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			w, err = os.Create(*jsonOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer w.Close()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fatalf("writing report: %v", err)
		}
	}
	if rep.Errors > 0 {
		fatalf("%d error responses", rep.Errors)
	}
	if *minRate > 0 && rep.RateRPS < *minRate {
		fatalf("achieved %.0f req/s < -min-rate %.0f", rep.RateRPS, *minRate)
	}
}

// session exit reasons.
const (
	exitBudget = iota // global run is over
	exitChurn         // churn boundary: re-dial and continue
)

// runConn drives one connection until the run ends, re-dialing every
// churnEvery (connection churn exercises the server's accept / register /
// unregister path under load).
func runConn(cfg *loadCfg, id int, st *connStats) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
	drawKey := cfg.draw(rng)
	st.lat = make([]telemetry.Histogram, len(cfg.mix))

	// nextReq fills req in place and returns the mix index, honouring
	// storms.
	nextReq := func(req *serve.Request) int {
		p := rng.Intn(100)
		j := 0
		for acc := cfg.mix[0].pct; p >= acc; acc += cfg.mix[j].pct {
			j++
		}
		key := drawKey()
		if cfg.storming.Load() {
			key %= 2
		}
		*req = serve.Request{Op: cfg.mix[j].op}
		switch req.Op {
		case serve.CmdGet, serve.CmdDel, serve.CmdSAdd, serve.CmdSRem, serve.CmdSHas:
			req.A = key
		case serve.CmdPut:
			req.A, req.B = key, uint64(rng.Int63n(1_000_000))+1
		case serve.CmdResv:
			req.A = key % cfg.keyRange
			req.B = uint64(rng.Intn(vacation.NumKinds))
			req.C = uint64(rng.Int63n(int64(cfg.resRange))) + 1
		case serve.CmdBill, serve.CmdCancel:
			req.A = key % cfg.keyRange
		}
		return j
	}

	for {
		conn, err := net.Dial("tcp", cfg.addr)
		if err != nil {
			fatalf("conn %d: dial: %v", id, err)
		}
		sessionEnd := cfg.deadline
		if cfg.churnEvery > 0 {
			if end := time.Now().Add(cfg.churnEvery); end.Before(sessionEnd) {
				sessionEnd = end
			}
		}
		reason := runSession(cfg, conn, sessionEnd, nextReq, st)
		conn.Close()
		if reason == exitBudget || time.Now().After(cfg.deadline) {
			return
		}
		st.churns++
	}
}

// runSession pumps requests on one dialed connection until the session
// deadline (churn boundary) or the global budget ends.
func runSession(cfg *loadCfg, conn net.Conn, sessionEnd time.Time,
	nextReq func(*serve.Request) int, st *connStats) int {

	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)
	classOf := make([]int, cfg.pipeline)
	stamp := make([]time.Time, cfg.pipeline)
	var buf []byte
	var req serve.Request

	readOne := func(i int) {
		line, err := br.ReadBytes('\n')
		if err != nil {
			fatalf("read: %v", err)
		}
		resp, err := serve.ParseResponse(line)
		if err != nil {
			fatalf("bad response %q: %v", line, err)
		}
		if resp.Kind == serve.RespErr {
			st.errors++
		}
		st.lat[classOf[i]].Observe(uint64(time.Since(stamp[i])))
		st.done++
	}

	if cfg.rate == 0 {
		// Closed loop: batches of `pipeline` in flight.
		for {
			// Session check first: budget() claims slots from the shared
			// counter, and a claimed-then-unsent batch would leak them.
			if time.Now().After(sessionEnd) {
				return exitChurn
			}
			n := cfg.budget(cfg.pipeline)
			if n == 0 {
				return exitBudget
			}
			for i := 0; i < n; i++ {
				classOf[i] = nextReq(&req)
				stamp[i] = time.Now()
				buf = serve.AppendRequest(buf[:0], &req)
				if _, err := bw.Write(buf); err != nil {
					fatalf("write: %v", err)
				}
			}
			if err := bw.Flush(); err != nil {
				fatalf("flush: %v", err)
			}
			for i := 0; i < n; i++ {
				readOne(i)
			}
		}
	}

	// Open loop: sends are paced on the schedule; a FIFO ring of scheduled
	// stamps (capacity = pipeline) backpressures when the server falls too
	// far behind.
	interval := time.Duration(float64(time.Second) * float64(cfg.conns) / cfg.rate)
	next := time.Now()
	head, tail, inflight := 0, 0, 0
	drain := func() {
		for inflight > 0 {
			readOne(head)
			head = (head + 1) % cfg.pipeline
			inflight--
		}
	}
	for {
		if time.Now().After(sessionEnd) {
			drain()
			return exitChurn
		}
		if cfg.budget(1) == 0 {
			drain()
			return exitBudget
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		for inflight >= cfg.pipeline {
			readOne(head)
			head = (head + 1) % cfg.pipeline
			inflight--
		}
		classOf[tail] = nextReq(&req)
		stamp[tail] = next // scheduled time, not send time: no coordinated omission
		buf = serve.AppendRequest(buf[:0], &req)
		if _, err := bw.Write(buf); err != nil {
			fatalf("write: %v", err)
		}
		if err := bw.Flush(); err != nil {
			fatalf("flush: %v", err)
		}
		tail = (tail + 1) % cfg.pipeline
		inflight++
		next = next.Add(interval)
		// Opportunistically drain whatever responses already arrived.
		for inflight > 0 && br.Buffered() > 0 {
			readOne(head)
			head = (head + 1) % cfg.pipeline
			inflight--
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memtag-load: "+format+"\n", args...)
	os.Exit(1)
}
