// Command memtag-load drives traffic at a memtag-serve instance and
// reports SLO statistics. It reuses the experiment suite's key
// distributions (uniform / zipfian / hotset via workload.NewKeyDraw), so a
// served run is skew-comparable with the in-process benchmarks.
//
// Closed loop (default): each connection keeps -pipeline requests in
// flight and latency is measured write-to-response. Open loop (-rate):
// sends are scheduled at a fixed aggregate rate and latency is measured
// from the *scheduled* send time, so queueing delay from a saturated
// server is charged to the server rather than silently absorbed (no
// coordinated omission).
//
//	memtag-load -addr 127.0.0.1:7070 -conns 8 -duration 10s
//	memtag-load -dist zipfian -theta 0.99 -rate 50000 -json slo.json
//	memtag-load -storm-every 2s -storm-duration 200ms -churn-every 500ms
//
// -min-rate makes the process exit nonzero if achieved throughput falls
// short — the CI smoke gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/vacation"
	"repro/internal/workload"
)

// opClass is one entry of the -mix: a wire op and its traffic share.
type opClass struct {
	name string
	op   uint8
	pct  int
}

var classTable = map[string]uint8{
	"get": serve.CmdGet, "put": serve.CmdPut, "del": serve.CmdDel,
	"sadd": serve.CmdSAdd, "srem": serve.CmdSRem, "shas": serve.CmdSHas,
	"resv": serve.CmdResv, "bill": serve.CmdBill, "cancel": serve.CmdCancel,
	"ping": serve.CmdPing,
}

func parseMix(s string) ([]opClass, error) {
	var mix []opClass
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, pctStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op:pct", part)
		}
		op, ok := classTable[name]
		if !ok {
			return nil, fmt.Errorf("mix entry %q: unknown op", part)
		}
		pct, err := strconv.Atoi(pctStr)
		if err != nil || pct <= 0 {
			return nil, fmt.Errorf("mix entry %q: bad percentage", part)
		}
		mix = append(mix, opClass{name: name, op: op, pct: pct})
		total += pct
	}
	if total != 100 {
		return nil, fmt.Errorf("mix percentages sum to %d, want 100", total)
	}
	return mix, nil
}

// classSLO is the per-op-class section of the -json report. Errors counts
// both ERR responses and requests lost in flight when a session died, so a
// partial run still accounts for every request it sent.
type classSLO struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  uint64  `json:"max_ns"`
}

// metricsReport is the -metrics-url section of the report: the scrape
// count, whether the cumulative counters stayed monotonic across scrapes,
// and the last exemplar trace ID seen in the exposition.
type metricsReport struct {
	URL          string `json:"url"`
	Scrapes      uint64 `json:"scrapes"`
	Monotonic    bool   `json:"monotonic"`
	LastExemplar string `json:"last_exemplar,omitempty"`
	Error        string `json:"error,omitempty"`
}

// report always carries both the achieved rate (RateRPS) and the target
// (TargetRPS, 0 for closed loop), and is assembled from whatever tallies
// survived — connections that died mid-run keep their partial counts.
type report struct {
	Addr      string         `json:"addr"`
	Conns     int            `json:"conns"`
	Pipeline  int            `json:"pipeline"`
	Dist      string         `json:"dist"`
	RateRPS   float64        `json:"rate_rps"`
	TargetRPS float64        `json:"target_rps"`
	ElapsedNS int64          `json:"elapsed_ns"`
	Requests  uint64         `json:"requests"`
	Errors    uint64         `json:"errors"`
	Churns    uint64         `json:"churns"`
	Deaths    uint64         `json:"deaths"`
	Classes   []classSLO     `json:"classes"`
	Metrics   *metricsReport `json:"metrics,omitempty"`
}

type loadCfg struct {
	addr          string
	conns         int
	pipeline      int
	requests      uint64 // 0 = duration-bound
	deadline      time.Time
	rate          float64 // aggregate target rps; 0 = closed loop
	mix           []opClass
	keyRange      uint64
	resRange      uint64
	draw          func(*rand.Rand) func() uint64
	stormEvery    time.Duration
	stormDuration time.Duration
	churnEvery    time.Duration
	seed          int64
	metricsURL    string
	distName      string

	sent     atomic.Uint64 // request-budget allocator when requests > 0
	storming atomic.Bool
}

// connStats is one connection's tally: latency histograms and error counts
// indexed by mix position, plus churn/death/completion counts. No locks —
// each belongs to a single goroutine until the final merge.
type connStats struct {
	lat    []telemetry.Histogram
	errs   []uint64 // per-class: ERR responses + in-flight losses
	errors uint64
	churns uint64
	deaths uint64 // sessions that died mid-run (read/write/dial failure)
	done   uint64
}

// budget returns how many of the `want` requests this conn may still send
// (0 ends the run). Count-bound runs claim slots from the shared counter;
// duration-bound runs check the deadline.
func (cfg *loadCfg) budget(want int) int {
	if cfg.requests > 0 {
		claimed := cfg.sent.Add(uint64(want))
		if claimed <= cfg.requests {
			return want
		}
		over := claimed - cfg.requests
		if uint64(want) <= over {
			return 0
		}
		return want - int(over)
	}
	if time.Now().After(cfg.deadline) {
		return 0
	}
	return want
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "memtag-serve address")
		conns    = flag.Int("conns", 8, "concurrent connections")
		pipeline = flag.Int("pipeline", 32, "in-flight requests per connection")
		requests = flag.Uint64("requests", 0, "stop after this many total requests (0 = use -duration)")
		duration = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		rate     = flag.Float64("rate", 0, "aggregate open-loop send rate in req/s (0 = closed loop)")
		mixFlag  = flag.String("mix", "get:40,put:25,del:10,sadd:10,srem:5,shas:5,resv:3,bill:1,cancel:1", "op mix, percentages summing to 100")
		keyRange = flag.Uint64("range", 16384, "KV/set key range")
		resRange = flag.Uint64("res-range", 1024, "reservation resource-id range")
		dist     = flag.String("dist", "uniform", "key distribution: uniform, zipfian or hotset")
		theta    = flag.Float64("theta", 0, "zipfian theta (0 = default 0.99)")
		hotKeys  = flag.Int("hot-keys", 0, "hotset: percent of keys that are hot (0 = default 10)")
		hotTraf  = flag.Int("hot-traffic", 0, "hotset: percent of traffic to hot keys (0 = default 90)")
		stormEv  = flag.Duration("storm-every", 0, "hot-key storm interval (0 = no storms)")
		stormDur = flag.Duration("storm-duration", 100*time.Millisecond, "hot-key storm length")
		churnEv  = flag.Duration("churn-every", 0, "re-dial each connection this often (0 = never)")
		jsonOut    = flag.String("json", "", "write the SLO report as JSON to this file (\"-\" = stdout)")
		minRate    = flag.Float64("min-rate", 0, "exit nonzero if achieved req/s falls below this")
		seed       = flag.Int64("seed", 1, "rng seed")
		metricsURL = flag.String("metrics-url", "", "scrape this Prometheus /metrics URL during the run and assert counter monotonicity")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatalf("%v", err)
	}
	kd, err := workload.ParseKeyDist(*dist)
	if err != nil {
		fatalf("%v", err)
	}
	if *conns <= 0 || *pipeline <= 0 || *keyRange == 0 {
		fatalf("-conns, -pipeline and -range must be positive")
	}
	wcfg := workload.Config{
		KeyRange:      *keyRange,
		Dist:          kd,
		ZipfTheta:     *theta,
		HotKeysPct:    *hotKeys,
		HotTrafficPct: *hotTraf,
	}
	dl := time.Now().Add(*duration)
	if *requests > 0 {
		dl = time.Now().Add(24 * time.Hour) // count-bound: the budget governs
	}
	cfg := &loadCfg{
		addr: *addr, conns: *conns, pipeline: *pipeline,
		requests: *requests, deadline: dl, rate: *rate, mix: mix,
		keyRange: *keyRange, resRange: *resRange,
		draw:       workload.NewKeyDraw(&wcfg),
		stormEvery: *stormEv, stormDuration: *stormDur,
		churnEvery: *churnEv, seed: *seed,
		metricsURL: *metricsURL, distName: kd.String(),
	}

	rep := runLoad(cfg)

	fmt.Fprintf(os.Stderr, "memtag-load: %d requests in %v = %.0f req/s (%d errors, %d churns, %d deaths)\n",
		rep.Requests, time.Duration(rep.ElapsedNS).Round(time.Millisecond), rep.RateRPS,
		rep.Errors, rep.Churns, rep.Deaths)
	for _, c := range rep.Classes {
		fmt.Fprintf(os.Stderr, "  %-6s n=%-9d p50=%8.0fns p95=%8.0fns p99=%8.0fns max=%dns\n",
			c.Name, c.Count, c.P50NS, c.P95NS, c.P99NS, c.MaxNS)
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			w, err = os.Create(*jsonOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer w.Close()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			fatalf("writing report: %v", err)
		}
	}
	if rep.Metrics != nil && rep.Metrics.Error != "" {
		fatalf("metrics scrape: %s", rep.Metrics.Error)
	}
	if rep.Metrics != nil && !rep.Metrics.Monotonic {
		fatalf("metrics counters regressed between scrapes")
	}
	if rep.Errors > 0 {
		fatalf("%d error responses", rep.Errors)
	}
	if rep.Deaths > 0 {
		fatalf("%d sessions died", rep.Deaths)
	}
	if *minRate > 0 && rep.RateRPS < *minRate {
		fatalf("achieved %.0f req/s < -min-rate %.0f", rep.RateRPS, *minRate)
	}
}

// runLoad runs the whole load: the storm clock, the optional metrics
// scraper, one goroutine per connection, and the final merge. It always
// returns a complete report — sessions that died keep their partial
// tallies, with in-flight requests charged to their op class's errors.
func runLoad(cfg *loadCfg) report {
	// Storm clock: while storming, every key draw collapses onto two
	// scorching keys, serializing the whole fleet on them.
	stopStorm := make(chan struct{})
	if cfg.stormEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.stormEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopStorm:
					return
				case <-tick.C:
					cfg.storming.Store(true)
					select {
					case <-stopStorm:
						return
					case <-time.After(cfg.stormDuration):
						cfg.storming.Store(false)
					}
				}
			}
		}()
	}

	var mrep *metricsReport
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	if cfg.metricsURL != "" {
		mrep = &metricsReport{URL: cfg.metricsURL, Monotonic: true}
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			scrapeLoop(cfg.metricsURL, mrep, stopScrape)
		}()
	}

	stats := make([]connStats, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runConn(cfg, id, &stats[id])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopStorm)
	close(stopScrape)
	scrapeWG.Wait()

	rep := report{
		Addr: cfg.addr, Conns: cfg.conns, Pipeline: cfg.pipeline,
		Dist: cfg.distName, TargetRPS: cfg.rate, ElapsedNS: int64(elapsed),
		Metrics: mrep,
	}
	merged := make([]telemetry.Histogram, len(cfg.mix))
	mergedErrs := make([]uint64, len(cfg.mix))
	for i := range stats {
		rep.Errors += stats[i].errors
		rep.Churns += stats[i].churns
		rep.Deaths += stats[i].deaths
		rep.Requests += stats[i].done
		for j := range merged {
			merged[j].Merge(&stats[i].lat[j])
			mergedErrs[j] += stats[i].errs[j]
		}
	}
	rep.RateRPS = float64(rep.Requests) / elapsed.Seconds()
	for j, m := range cfg.mix {
		h := &merged[j]
		if h.Count() == 0 && mergedErrs[j] == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, classSLO{
			Name: m.name, Count: h.Count(), Errors: mergedErrs[j],
			P50NS: h.Quantile(0.50), P95NS: h.Quantile(0.95),
			P99NS: h.Quantile(0.99), MaxNS: h.Max(),
		})
	}
	sort.Slice(rep.Classes, func(a, b int) bool { return rep.Classes[a].Count > rep.Classes[b].Count })
	return rep
}

// session exit reasons.
const (
	exitBudget = iota // global run is over
	exitChurn         // churn boundary: re-dial and continue
	exitDead          // the session died (read/write failure); tallies kept
)

// maxDialRetries bounds consecutive dial failures before a connection
// gives up for the rest of the run.
const maxDialRetries = 5

// runConn drives one connection until the run ends, re-dialing every
// churnEvery (connection churn exercises the server's accept / register /
// unregister path under load). A session that dies mid-run keeps its
// partial tallies, records a death, and re-dials; only a run-ending budget
// or repeated dial failures stop the loop.
func runConn(cfg *loadCfg, id int, st *connStats) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
	drawKey := cfg.draw(rng)
	st.lat = make([]telemetry.Histogram, len(cfg.mix))
	st.errs = make([]uint64, len(cfg.mix))

	// nextReq fills req in place and returns the mix index, honouring
	// storms.
	nextReq := func(req *serve.Request) int {
		p := rng.Intn(100)
		j := 0
		for acc := cfg.mix[0].pct; p >= acc; acc += cfg.mix[j].pct {
			j++
		}
		key := drawKey()
		if cfg.storming.Load() {
			key %= 2
		}
		*req = serve.Request{Op: cfg.mix[j].op}
		switch req.Op {
		case serve.CmdGet, serve.CmdDel, serve.CmdSAdd, serve.CmdSRem, serve.CmdSHas:
			req.A = key
		case serve.CmdPut:
			req.A, req.B = key, uint64(rng.Int63n(1_000_000))+1
		case serve.CmdResv:
			req.A = key % cfg.keyRange
			req.B = uint64(rng.Intn(vacation.NumKinds))
			req.C = uint64(rng.Int63n(int64(cfg.resRange))) + 1
		case serve.CmdBill, serve.CmdCancel:
			req.A = key % cfg.keyRange
		}
		return j
	}

	dialFails := 0
	for {
		conn, err := net.Dial("tcp", cfg.addr)
		if err != nil {
			dialFails++
			if dialFails > maxDialRetries {
				fmt.Fprintf(os.Stderr, "memtag-load: conn %d: giving up after %d dial failures: %v\n",
					id, dialFails, err)
				st.deaths++
				return
			}
			if time.Now().After(cfg.deadline) {
				return
			}
			time.Sleep(time.Duration(dialFails) * 50 * time.Millisecond)
			continue
		}
		dialFails = 0
		sessionEnd := cfg.deadline
		if cfg.churnEvery > 0 {
			if end := time.Now().Add(cfg.churnEvery); end.Before(sessionEnd) {
				sessionEnd = end
			}
		}
		reason, serr := runSession(cfg, conn, sessionEnd, nextReq, st)
		conn.Close()
		switch {
		case reason == exitDead:
			st.deaths++
			fmt.Fprintf(os.Stderr, "memtag-load: conn %d: session died: %v\n", id, serr)
			if time.Now().After(cfg.deadline) {
				return
			}
		case reason == exitBudget || time.Now().After(cfg.deadline):
			return
		default:
			st.churns++
		}
	}
}

// runSession pumps requests on one dialed connection until the session
// deadline (churn boundary), the global budget, or a connection failure
// ends it. On failure it returns exitDead with the cause — requests still
// in flight are charged to their op class's error count, and everything
// already tallied survives.
func runSession(cfg *loadCfg, conn net.Conn, sessionEnd time.Time,
	nextReq func(*serve.Request) int, st *connStats) (int, error) {

	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)
	classOf := make([]int, cfg.pipeline)
	stamp := make([]time.Time, cfg.pipeline)
	var buf []byte
	var req serve.Request

	readOne := func(i int) error {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		resp, err := serve.ParseResponse(line)
		if err != nil {
			return fmt.Errorf("bad response %q: %v", line, err)
		}
		if resp.Kind == serve.RespErr {
			st.errors++
			st.errs[classOf[i]]++
		}
		st.lat[classOf[i]].Observe(uint64(time.Since(stamp[i])))
		st.done++
		return nil
	}

	if cfg.rate == 0 {
		// Closed loop: batches of `pipeline` in flight.
		for {
			// Session check first: budget() claims slots from the shared
			// counter, and a claimed-then-unsent batch would leak them.
			if time.Now().After(sessionEnd) {
				return exitChurn, nil
			}
			n := cfg.budget(cfg.pipeline)
			if n == 0 {
				return exitBudget, nil
			}
			sent := 0
			var ferr error
			for i := 0; i < n; i++ {
				classOf[i] = nextReq(&req)
				stamp[i] = time.Now()
				buf = serve.AppendRequest(buf[:0], &req)
				if _, err := bw.Write(buf); err != nil {
					ferr = fmt.Errorf("write: %w", err)
					break
				}
				sent++
			}
			if ferr == nil {
				if err := bw.Flush(); err != nil {
					ferr = fmt.Errorf("flush: %w", err)
				}
			}
			read := 0
			for ferr == nil && read < n {
				if err := readOne(read); err != nil {
					ferr = err
					break
				}
				read++
			}
			if ferr != nil {
				// The batch died: requests written but unanswered are lost.
				for k := read; k < sent; k++ {
					st.errors++
					st.errs[classOf[k]]++
				}
				return exitDead, ferr
			}
		}
	}

	// Open loop: sends are paced on the schedule; a FIFO ring of scheduled
	// stamps (capacity = pipeline) backpressures when the server falls too
	// far behind.
	interval := time.Duration(float64(time.Second) * float64(cfg.conns) / cfg.rate)
	next := time.Now()
	head, tail, inflight := 0, 0, 0
	// die charges every in-flight request as an error and ends the session.
	die := func(err error) (int, error) {
		for ; inflight > 0; inflight-- {
			st.errors++
			st.errs[classOf[head]]++
			head = (head + 1) % cfg.pipeline
		}
		return exitDead, err
	}
	drain := func() error {
		for inflight > 0 {
			if err := readOne(head); err != nil {
				return err
			}
			head = (head + 1) % cfg.pipeline
			inflight--
		}
		return nil
	}
	for {
		if time.Now().After(sessionEnd) {
			if err := drain(); err != nil {
				return die(err)
			}
			return exitChurn, nil
		}
		if cfg.budget(1) == 0 {
			if err := drain(); err != nil {
				return die(err)
			}
			return exitBudget, nil
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		for inflight >= cfg.pipeline {
			if err := readOne(head); err != nil {
				return die(err)
			}
			head = (head + 1) % cfg.pipeline
			inflight--
		}
		classOf[tail] = nextReq(&req)
		stamp[tail] = next // scheduled time, not send time: no coordinated omission
		tail = (tail + 1) % cfg.pipeline
		inflight++
		buf = serve.AppendRequest(buf[:0], &req)
		if _, err := bw.Write(buf); err != nil {
			return die(fmt.Errorf("write: %w", err))
		}
		if err := bw.Flush(); err != nil {
			return die(fmt.Errorf("flush: %w", err))
		}
		next = next.Add(interval)
		// Opportunistically drain whatever responses already arrived.
		for inflight > 0 && br.Buffered() > 0 {
			if err := readOne(head); err != nil {
				return die(err)
			}
			head = (head + 1) % cfg.pipeline
			inflight--
		}
	}
}

// scrapeLoop polls the server's Prometheus exposition for the run's
// duration, asserting the cumulative request counter never regresses
// between scrapes and capturing the last exemplar trace ID it sees. One
// final scrape runs at stop, so even a short run records at least one.
func scrapeLoop(url string, rep *metricsReport, stop <-chan struct{}) {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	var lastRequests float64
	scrape := func() {
		hreq, err := http.NewRequest("GET", url, nil)
		if err != nil {
			rep.Error = err.Error()
			return
		}
		hreq.Header.Set("Accept", "text/plain")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			rep.Error = err.Error()
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rep.Error = err.Error()
			return
		}
		if resp.StatusCode != http.StatusOK {
			rep.Error = fmt.Sprintf("scrape status %d", resp.StatusCode)
			return
		}
		text := string(body)
		v, ok := promValue(text, "memtag_requests_total")
		if !ok {
			rep.Error = "memtag_requests_total missing from exposition"
			return
		}
		rep.Scrapes++
		if v < lastRequests {
			rep.Monotonic = false
		}
		lastRequests = v
		if ex := lastExemplarID(text); ex != "" {
			rep.LastExemplar = ex
		}
	}
	for {
		select {
		case <-stop:
			scrape()
			return
		case <-t.C:
			scrape()
		}
	}
}

// promValue finds an unlabelled sample line ("name value") in a Prometheus
// text exposition.
func promValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// lastExemplarID extracts the trace ID of the last exemplar in the
// exposition (`... # {trace_id="<id>"} <value>`).
func lastExemplarID(text string) string {
	const marker = `# {trace_id="`
	i := strings.LastIndex(text, marker)
	if i < 0 {
		return ""
	}
	rest := text[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memtag-load: "+format+"\n", args...)
	os.Exit(1)
}
