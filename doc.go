// Package repro reproduces "Memory Tagging: Minimalist Synchronization for
// Scalable Concurrent Data Structures" (Alistarh, Brown, Singhal; SPAA
// 2020) as a Go library.
//
// The repository contains a multicore cache simulator with MESI-style
// directory coherence (internal/machine) implementing the paper's MemTags
// primitives — AddTag, RemoveTag, Validate, validate-and-swap (VAS) and
// invalidate-and-swap (IAS) — at the L1 level; every data structure the
// paper evaluates (Harris-Michael, VAS-based and hand-over-hand-tagged
// linked lists; LLX/SCX and HoH-tagged (a,b)-trees; NOrec and tagged NOrec
// STM with the STAMP Vacation workload; tagged kCAS; skip lists; range
// queries); and a harness that regenerates every figure of the paper's
// evaluation (cmd/memtag-bench, bench_test.go).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
