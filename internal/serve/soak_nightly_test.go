//go:build soak

package serve

import "testing"

// Nightly-scale soak: ten million served requests through the immediate
// reclamation path. Run with `go test -tags soak -run ServeSoakNightly
// -timeout 30m ./internal/serve/`.
func TestServeSoakNightly(t *testing.T) {
	if testing.Short() {
		t.Skip("nightly soak is not a -short test")
	}
	runServeSoak(t, 10_000_000)
}
