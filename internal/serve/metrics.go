package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// metricsPayload is the /metrics JSON document: cumulative totals that are
// valid at any instant, plus the time-resolved windows merged across
// workers from the streaming telemetry rings. Scrapes run mid-traffic;
// nothing here touches the quiescence-only telemetry.Set.
type metricsPayload struct {
	UptimeNS      int64                    `json:"uptime_ns"`
	Workers       int                      `json:"workers"`
	Requests      uint64                   `json:"requests"`
	Errors        uint64                   `json:"errors"`
	ConnsAccepted uint64                   `json:"conns_accepted"`
	ConnsActive   int64                    `json:"conns_active"`
	Ops           uint64                   `json:"ops"`
	Fails         uint64                   `json:"fails"`
	SpansRecorded uint64                   `json:"spans_recorded"`
	SpansKept     uint64                   `json:"spans_kept"`
	FlightDumps   uint64                   `json:"flight_dumps"`
	WindowNS      uint64                   `json:"window_ns"`
	StreamRetries int                      `json:"stream_retries"`
	Windows       []telemetry.StreamWindow `json:"windows"`
}

func (s *Server) metricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// Go runtime defaults (memstats, cmdline) — a private mux rather than
	// expvar.Publish keeps multiple in-process servers (tests) from
	// fighting over the global registry.
	mux.Handle("/debug/vars", expvar.Handler())
	if s.cfg.Pprof {
		// Profiling surface, opt-in only: with Pprof off these paths 404
		// (and a test pins that absence).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serveMetrics negotiates the exposition: Prometheus text when asked for
// (Accept: text/plain / openmetrics, or ?format=prometheus), the original
// JSON document otherwise — existing JSON consumers see no change.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.servePrometheus(w)
		return
	}
	windows, retries := s.stream.ReadMergedWindows()
	ops, fails := s.stream.Totals()
	p := metricsPayload{
		UptimeNS:      int64(time.Since(s.start)),
		Workers:       len(s.eng.workers),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		ConnsAccepted: s.accepted.Load(),
		ConnsActive:   s.active.Load(),
		Ops:           ops,
		Fails:         fails,
		FlightDumps:   s.dumps.Load(),
		WindowNS:      s.stream.Every(),
		StreamRetries: retries,
		Windows:       windows,
	}
	if s.flight != nil {
		p.SpansRecorded, p.SpansKept = s.flight.Totals()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(&p)
}

func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

// servePrometheus writes the Prometheus text exposition: cumulative
// counters (every source monotonic atomics, so successive scrapes never
// regress), the request-latency histogram with power-of-two le buckets,
// and — when the flight recorder is armed — OpenMetrics-style exemplars on
// the buckets holding each worker's most recent tail-sampled span, carrying
// that request's trace ID. That ID is the join key into a flight-recorder
// dump's trace.json.
func (s *Server) servePrometheus(w http.ResponseWriter) {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	gauge("memtag_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())
	gauge("memtag_workers", "Engine worker count.", float64(len(s.eng.workers)))
	counter("memtag_requests_total", "Requests decoded (including errored ones).",
		s.requests.Load())
	counter("memtag_errors_total", "Requests answered with a protocol error.",
		s.errors.Load())
	counter("memtag_conns_accepted_total", "Connections accepted.", s.accepted.Load())
	gauge("memtag_conns_active", "Connections currently open.", float64(s.active.Load()))
	ops, fails := s.stream.Totals()
	counter("memtag_ops_total", "Backend operations completed.", ops)
	counter("memtag_fails_total", "Backend validation/commit failures burned.", fails)

	st := s.eng.Stats()
	counter("memtag_stm_commits_total", "STM transactions committed (both TMs).",
		st.KV.Commits+st.Res.Commits)
	counter("memtag_stm_aborts_total", "STM attempt aborts (both TMs).",
		st.KV.Aborts+st.Res.Aborts)
	counter("memtag_stm_tag_aborts_total", "STM aborts from failed tag validation.",
		st.KV.TagAborts+st.Res.TagAborts)
	counter("memtag_tag_overflows_total", "Tag-set overflows (attempts degraded to value-based mode).",
		st.TagOverflows)
	counter("memtag_tag_evictions_total", "Tagged lines evicted under readers.",
		st.TagEvictions)

	if s.flight != nil {
		recorded, kept := s.flight.Totals()
		counter("memtag_spans_recorded_total", "Request spans published into the flight recorder.",
			recorded)
		counter("memtag_spans_kept_total", "Request spans tail-sampled (latency/retries/overflow/error).",
			kept)
		counter("memtag_flight_dumps_total", "Post-mortem flight-recorder bundles written.",
			s.dumps.Load())
	}

	s.promLatencyHistogram(&b)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// promLatencyHistogram renders the cumulative service-time histogram.
// Buckets are the telemetry layer's power-of-two buckets: le = 2^b - 1
// inclusive upper bounds, cumulative counts from the stream's monotonic
// per-core atomics.
func (s *Server) promLatencyHistogram(b *strings.Builder) {
	const name = "memtag_request_duration_ns"
	var buckets [telemetry.NumBuckets]uint64
	count, sum := s.stream.CumulativeLatency(&buckets)

	// One exemplar per flight core: worker's most recent tail-sampled
	// span, attached to the bucket its latency lands in. When several
	// workers' exemplars share a bucket the slowest wins.
	type exemplar struct {
		id, lat uint64
	}
	var ex map[int]exemplar
	if s.flight != nil {
		for i := 0; i < s.flight.NumCores(); i++ {
			id, lat, ok := s.flight.Exemplar(i)
			if !ok {
				continue
			}
			if ex == nil {
				ex = make(map[int]exemplar)
			}
			bkt := telemetry.BucketIndex(lat)
			if cur, have := ex[bkt]; !have || lat > cur.lat {
				ex[bkt] = exemplar{id: id, lat: lat}
			}
		}
	}

	fmt.Fprintf(b, "# HELP %s Request service time (host ns), power-of-two buckets.\n", name)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum uint64
	for i := 0; i < telemetry.NumBuckets; i++ {
		cum += buckets[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d", name, telemetry.BucketUpper(i), cum)
		if e, ok := ex[i]; ok {
			fmt.Fprintf(b, " # {trace_id=\"%s\"} %d", traceID(e.id), e.lat)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(b, "%s_sum %d\n", name, sum)
	fmt.Fprintf(b, "%s_count %d\n", name, count)
}
