package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// metricsPayload is the /metrics JSON document: cumulative totals that are
// valid at any instant, plus the time-resolved windows merged across
// workers from the streaming telemetry rings. Scrapes run mid-traffic;
// nothing here touches the quiescence-only telemetry.Set.
type metricsPayload struct {
	UptimeNS      int64                    `json:"uptime_ns"`
	Workers       int                      `json:"workers"`
	Requests      uint64                   `json:"requests"`
	Errors        uint64                   `json:"errors"`
	ConnsAccepted uint64                   `json:"conns_accepted"`
	ConnsActive   int64                    `json:"conns_active"`
	Ops           uint64                   `json:"ops"`
	Fails         uint64                   `json:"fails"`
	WindowNS      uint64                   `json:"window_ns"`
	StreamRetries int                      `json:"stream_retries"`
	Windows       []telemetry.StreamWindow `json:"windows"`
}

func (s *Server) metricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// Go runtime defaults (memstats, cmdline) — a private mux rather than
	// expvar.Publish keeps multiple in-process servers (tests) from
	// fighting over the global registry.
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	windows, retries := s.stream.ReadMergedWindows()
	ops, fails := s.stream.Totals()
	p := metricsPayload{
		UptimeNS:      int64(time.Since(s.start)),
		Workers:       len(s.eng.workers),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		ConnsAccepted: s.accepted.Load(),
		ConnsActive:   s.active.Load(),
		Ops:           ops,
		Fails:         fails,
		WindowNS:      s.stream.Every(),
		StreamRetries: retries,
		Windows:       windows,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(&p)
}
