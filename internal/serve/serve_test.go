package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/linearizability"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Engine.Workers == 0 {
		cfg.Engine.Workers = 4
	}
	if cfg.Engine.MemBytes == 0 {
		cfg.Engine.MemBytes = 64 << 20
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return srv
}

// testClient is one unpipelined request/response wire client.
type testClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
}

func dialClient(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return &testClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (c *testClient) close() { c.conn.Close() }

func (c *testClient) do(req Request) Response {
	c.buf = AppendRequest(c.buf[:0], &req)
	if _, err := c.conn.Write(c.buf); err != nil {
		c.t.Fatalf("write: %v", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	resp, err := ParseResponse(line)
	if err != nil {
		c.t.Fatalf("bad response %q: %v", line, err)
	}
	return resp
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestServeRoundTrip(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{Workers: 2, Tagged: true, Relations: 8}})
	defer shutdown(t, srv)
	c := dialClient(t, srv.Addr().String())
	defer c.close()

	if r := c.do(Request{Op: CmdPing}); r.Kind != RespPong {
		t.Fatalf("PING = %+v", r)
	}
	if r := c.do(Request{Op: CmdGet, A: 5}); r.Kind != RespNF {
		t.Fatalf("GET missing = %+v", r)
	}
	if r := c.do(Request{Op: CmdPut, A: 5, B: 70}); r.Kind != RespTrue {
		t.Fatalf("PUT new = %+v", r)
	}
	if r := c.do(Request{Op: CmdPut, A: 5, B: 71}); r.Kind != RespFalse {
		t.Fatalf("PUT existing = %+v", r)
	}
	if r := c.do(Request{Op: CmdGet, A: 5}); r.Kind != RespOK || r.Val != 71 {
		t.Fatalf("GET = %+v, want OK 71", r)
	}
	if r := c.do(Request{Op: CmdDel, A: 5}); r.Kind != RespTrue {
		t.Fatalf("DEL = %+v", r)
	}
	if r := c.do(Request{Op: CmdSAdd, A: 9}); r.Kind != RespTrue {
		t.Fatalf("SADD = %+v", r)
	}
	if r := c.do(Request{Op: CmdSHas, A: 9}); r.Kind != RespTrue {
		t.Fatalf("SHAS = %+v", r)
	}
	if r := c.do(Request{Op: CmdSRem, A: 9}); r.Kind != RespTrue {
		t.Fatalf("SREM = %+v", r)
	}
	// Reservation plane: populate created resources 1..8 with capacity.
	if r := c.do(Request{Op: CmdQPrice, A: 0, B: 3}); r.Kind != RespOK || !r.HasVal {
		t.Fatalf("QPRICE = %+v", r)
	}
	r := c.do(Request{Op: CmdResv, A: 1, B: 0, C: 3})
	if r.Kind != RespOK || !r.HasVal {
		t.Fatalf("RESV = %+v", r)
	}
	price := r.Val
	if r := c.do(Request{Op: CmdBill, A: 1}); r.Kind != RespOK || r.Val != price {
		t.Fatalf("BILL = %+v, want OK %d", r, price)
	}
	if r := c.do(Request{Op: CmdCancel, A: 1}); r.Kind != RespTrue {
		t.Fatalf("CANCEL = %+v", r)
	}
	if r := c.do(Request{Op: CmdBill, A: 1}); r.Kind != RespNF {
		t.Fatalf("BILL after cancel = %+v", r)
	}
	// Malformed request answers ERR and keeps the connection.
	if _, err := c.conn.Write([]byte("BOGUS 1\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil || line[0] != 'E' {
		t.Fatalf("bogus request answered %q (%v)", line, err)
	}
	if r := c.do(Request{Op: CmdPing}); r.Kind != RespPong {
		t.Fatalf("PING after ERR = %+v", r)
	}
}

// TestServeE2EWireHistory is the end-to-end satellite: concurrent clients
// drive mixed KV + set + reservation traffic over real TCP, recording KV
// and set operations at the wire (invocation when the request is written,
// response when the reply is read) and reservation transactions
// server-side as history.OpTx footprints. The served history must be
// linearizable at the wire (Wing-Gong over the KV and set models) and the
// reservation history strictly serializable with intact table invariants.
func TestServeE2EWireHistory(t *testing.T) {
	const (
		clients    = 6
		opsPerConn = 400
		workers    = 4
		kvKeys     = 24
		relations  = 64
	)
	recTx := history.NewRecorder(workers+1, 4096)
	srv := startServer(t, Config{
		Engine: EngineConfig{
			Workers:   workers,
			Tagged:    true,
			Relations: relations,
			Seed:      1,
			RecordTx:  recTx,
		},
		StreamEvery: 5 * time.Millisecond,
	})
	recWire := history.NewRecorder(clients, clients*opsPerConn)

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c := dialClient(t, srv.Addr().String())
			defer c.close()
			sh := recWire.Shard(cl)
			rng := rand.New(rand.NewSource(int64(cl)*997 + 13))
			for i := 0; i < opsPerConn; i++ {
				k := uint64(rng.Intn(kvKeys)) + 1
				switch draw := rng.Intn(100); {
				case draw < 20: // PUT
					v := uint64(rng.Intn(999)) + 1
					idx := sh.Begin(CmdPut, k, v)
					r := c.do(Request{Op: CmdPut, A: k, B: v})
					sh.End(idx, r.Kind == RespTrue, 0)
				case draw < 30: // DEL
					idx := sh.Begin(CmdDel, k, 0)
					r := c.do(Request{Op: CmdDel, A: k})
					sh.End(idx, r.Kind == RespTrue, 0)
				case draw < 50: // GET
					idx := sh.Begin(CmdGet, k, 0)
					r := c.do(Request{Op: CmdGet, A: k})
					sh.End(idx, r.Kind == RespOK, r.Val)
				case draw < 62: // SADD
					idx := sh.Begin(CmdSAdd, k, 0)
					r := c.do(Request{Op: CmdSAdd, A: k})
					sh.End(idx, r.Kind == RespTrue, 0)
				case draw < 70: // SREM
					idx := sh.Begin(CmdSRem, k, 0)
					r := c.do(Request{Op: CmdSRem, A: k})
					sh.End(idx, r.Kind == RespTrue, 0)
				case draw < 80: // SHAS
					idx := sh.Begin(CmdSHas, k, 0)
					r := c.do(Request{Op: CmdSHas, A: k})
					sh.End(idx, r.Kind == RespTrue, 0)
				case draw < 90: // RESV (recorded server-side as OpTx)
					cust := uint64(rng.Intn(8)) + 1
					kind := uint64(rng.Intn(3))
					id := uint64(rng.Intn(relations)) + 1
					c.do(Request{Op: CmdResv, A: cust, B: kind, C: id})
				case draw < 95: // BILL
					c.do(Request{Op: CmdBill, A: uint64(rng.Intn(8)) + 1})
				default: // CANCEL
					c.do(Request{Op: CmdCancel, A: uint64(rng.Intn(8)) + 1})
				}
			}
		}(cl)
	}
	wg.Wait()
	shutdown(t, srv)

	// Split the wire history into its two planes and check each against
	// its model, partitioned by key.
	var kvEvents, setEvents []history.Event
	for _, e := range recWire.Events() {
		switch e.Op {
		case CmdGet, CmdPut, CmdDel:
			kvEvents = append(kvEvents, e)
		case CmdSAdd, CmdSRem, CmdSHas:
			setEvents = append(setEvents, e)
		}
	}
	if len(kvEvents) == 0 || len(setEvents) == 0 {
		t.Fatal("vacuous e2e: a plane recorded no events")
	}
	if out := linearizability.CheckPartitioned(KVWireModel(), kvEvents); !out.OK {
		t.Fatalf("served KV history not linearizable:\n%s", out.Explain())
	}
	if out := linearizability.CheckPartitioned(SetWireModel(), setEvents); !out.OK {
		t.Fatalf("served set history not linearizable:\n%s", out.Explain())
	}

	// Reservation plane: strict serializability of the recorded OpTx
	// footprints (populate + init included) and table conservation.
	txCount := 0
	for _, e := range recTx.Events() {
		if e.Op == history.OpTx {
			txCount++
		}
	}
	if txCount <= relations*4 {
		t.Fatalf("vacuous e2e: only %d recorded transactions (populate alone is %d)", txCount, relations*4)
	}
	if out := (linearizability.SerializableMapModel{}).Check(recTx); !out.OK {
		t.Fatalf("served reservation history not strictly serializable:\n%s", out.Explain())
	}
	if ok, detail := srv.Engine().CheckTables(); !ok {
		t.Fatalf("reservation tables corrupt after served traffic: %s", detail)
	}
}

// TestServeMetricsMidRun scrapes /metrics while traffic is flowing and
// checks the streamed windows and monotonic totals.
func TestServeMetricsMidRun(t *testing.T) {
	srv := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		Engine:      EngineConfig{Workers: 2, Tagged: true, Relations: 8},
		StreamEvery: 2 * time.Millisecond,
	})
	defer shutdown(t, srv)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := dialClient(t, srv.Addr().String())
		defer c.close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.do(Request{Op: CmdPut, A: uint64(i%50 + 1), B: uint64(i + 1)})
			c.do(Request{Op: CmdGet, A: uint64(i%50 + 1)})
		}
	}()

	scrape := func() metricsPayload {
		resp, err := http.Get("http://" + srv.MetricsAddr().String() + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		var p metricsPayload
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatalf("decode /metrics: %v", err)
		}
		return p
	}

	deadline := time.Now().Add(5 * time.Second)
	var first metricsPayload
	for {
		first = scrape()
		if len(first.Windows) > 0 && first.Ops > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no mid-run windows appeared: %+v", first)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	second := scrape()
	if second.Ops < first.Ops {
		t.Fatalf("streamed ops regressed mid-run: %d then %d", first.Ops, second.Ops)
	}
	for _, w := range second.Windows {
		if w.End != w.Start+second.WindowNS {
			t.Fatalf("window [%d,%d) width != %d", w.Start, w.End, second.WindowNS)
		}
		if w.Ops > 0 && (w.P99 < w.P50 || float64(w.Max) < w.P99*0.5) {
			t.Fatalf("window quantiles implausible: %+v", w)
		}
	}
	close(stop)
	wg.Wait()
	if resp, err := http.Get("http://" + srv.MetricsAddr().String() + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

// TestServePipelinedBatch drives a deep pipelined batch on one connection
// and checks every response arrives in order.
func TestServePipelinedBatch(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{Workers: 2, Tagged: true}})
	defer shutdown(t, srv)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 500
	var out []byte
	for i := 0; i < n; i++ {
		req := Request{Op: CmdPut, A: uint64(i + 1), B: uint64(i + 1)}
		out = AppendRequest(out, &req)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if line[0] != 'T' {
			t.Fatalf("response %d = %q, want T (distinct fresh keys)", i, line)
		}
	}
	sum := srv.Summarize()
	if sum.Requests < n {
		t.Fatalf("requests counter = %d, want >= %d", sum.Requests, n)
	}
}

func TestServeShutdownRejectsNewConns(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{Workers: 1, Tagged: true}})
	c := dialClient(t, srv.Addr().String())
	if r := c.do(Request{Op: CmdPing}); r.Kind != RespPong {
		t.Fatalf("PING = %+v", r)
	}
	shutdown(t, srv)
	// The open connection is drained and closed...
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.br.ReadByte(); err == nil {
		t.Fatal("connection still open after shutdown")
	}
	c.close()
	// ...and new connections are refused.
	if conn, err := net.DialTimeout("tcp", srv.Addr().String(), 500*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}
