package serve

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/linearizability"
)

// Wire-level sequential specifications: the e2e test records request
// invocation / response receipt at the client (real-time order at the
// wire, not inside the structure) and checks the served history against
// these with linearizability.CheckPartitioned.

// KVWireModel is the per-key register semantics of GET/PUT/DEL as served:
// state is the key's value, 0 = absent (the protocol rejects PUT 0, so
// the encoding is unambiguous).
//
//	PUT (Arg=v): OK reports "newly inserted", state becomes v either way.
//	GET: OK reports presence; Out must equal the state when present.
//	DEL: OK reports presence; state becomes absent.
func KVWireModel() linearizability.Model {
	return linearizability.Model{
		Name: "kv-wire",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case CmdPut:
				return e.Arg, e.OK == (s == 0)
			case CmdGet:
				if !e.OK {
					return s, s == 0
				}
				return s, s != 0 && e.Out == s
			case CmdDel:
				return 0, e.OK == (s != 0)
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			switch e.Op {
			case CmdPut:
				return fmt.Sprintf("w%d PUT(%d,%d) = %v [inv %d, ret %d]", e.Worker, e.Key, e.Arg, e.OK, e.Inv, e.Ret)
			case CmdGet:
				return fmt.Sprintf("w%d GET(%d) = (%v,%d) [inv %d, ret %d]", e.Worker, e.Key, e.OK, e.Out, e.Inv, e.Ret)
			default:
				return fmt.Sprintf("w%d DEL(%d) = %v [inv %d, ret %d]", e.Worker, e.Key, e.OK, e.Inv, e.Ret)
			}
		},
	}
}

// SetWireModel is the set semantics of SADD/SREM/SHAS as served: state is
// one membership bit per key (partitioned checking).
func SetWireModel() linearizability.Model {
	return linearizability.Model{
		Name: "set-wire",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case CmdSAdd:
				return 1, e.OK == (s == 0)
			case CmdSRem:
				return 0, e.OK == (s == 1)
			case CmdSHas:
				return s, e.OK == (s == 1)
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			name := map[uint8]string{CmdSAdd: "SADD", CmdSRem: "SREM", CmdSHas: "SHAS"}[e.Op]
			return fmt.Sprintf("w%d %s(%d) = %v [inv %d, ret %d]", e.Worker, name, e.Key, e.OK, e.Inv, e.Ret)
		},
	}
}
