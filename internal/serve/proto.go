// Package serve is the network-facing layer over the tagged structures: a
// line-oriented TCP protocol exposing a transactional key-value plane
// (txmap over tagged NOrec), a set plane (VAS skiplist), and the STAMP
// Vacation reservation engine (vacation.Manager), plus an HTTP endpoint
// streaming mid-run telemetry windows (telemetry.Stream).
//
// The protocol is deliberately minimal — one ASCII line per request, one
// per response — so the hot path (decode → structure op → encode) stays
// allocation-free and the wire format is trivial to drive from tests and
// the memtag-load generator:
//
//	GET k            → OK v | NF          KV lookup
//	PUT k v          → T | F              KV upsert (T = newly inserted); v must be > 0
//	DEL k            → T | F              KV delete
//	SADD k           → T | F              set insert
//	SREM k           → T | F              set delete
//	SHAS k           → T | F              set membership
//	RESV c kind id   → OK price | F       reserve one unit for customer c
//	                                      (customer auto-created, as in STAMP)
//	BILL c           → OK bill | NF       customer's total bill
//	CANCEL c         → T | F              delete customer, releasing capacity
//	ADDCUST c        → T | F              add customer
//	ADDRES kind id n p → OK               add n units of capacity at price p
//	DELRES kind id n → T | F              remove n unreserved units
//	QPRICE kind id   → OK price | NF      price if free capacity remains
//	PING             → PONG
//
// Malformed requests get "ERR <reason>" and the connection stays open.
package serve

import "fmt"

// Wire op codes. They double as history.Event op codes when tests record
// served traffic, so they start above the structure-level codes
// (history.OpInsert..OpTx occupy 0..8).
const (
	CmdGet uint8 = 16 + iota
	CmdPut
	CmdDel
	CmdSAdd
	CmdSRem
	CmdSHas
	CmdResv
	CmdBill
	CmdCancel
	CmdAddCust
	CmdAddRes
	CmdDelRes
	CmdQPrice
	CmdPing
)

// Request is one decoded wire request. A..D are the positional numeric
// arguments (meaning depends on Op).
type Request struct {
	Op         uint8
	A, B, C, D uint64
}

// Response kinds, as returned by ParseResponse (client side).
const (
	RespOK    = 'O' // OK, possibly with a value
	RespTrue  = 'T'
	RespFalse = 'F'
	RespNF    = 'N' // not found
	RespPong  = 'P'
	RespErr   = 'E'
)

// Response is one decoded wire response.
type Response struct {
	Kind   byte
	Val    uint64 // for RespOK with a value
	HasVal bool
}

// errMalformed values are returned by ParseRequest; they are static so the
// parse path does not allocate.
var (
	errEmpty    = fmt.Errorf("serve: empty request")
	errUnknown  = fmt.Errorf("serve: unknown command")
	errArgCount = fmt.Errorf("serve: wrong argument count")
	errBadNum   = fmt.Errorf("serve: malformed number")
	errBadKind  = fmt.Errorf("serve: resource kind out of range")
	errZeroVal  = fmt.Errorf("serve: PUT value must be > 0")
)

// CmdName renders a wire op code for traces and logs ("?" for an unknown
// code, including 0 — the span op of a request that failed to parse).
func CmdName(op uint8) string {
	switch op {
	case CmdGet:
		return "GET"
	case CmdPut:
		return "PUT"
	case CmdDel:
		return "DEL"
	case CmdSAdd:
		return "SADD"
	case CmdSRem:
		return "SREM"
	case CmdSHas:
		return "SHAS"
	case CmdResv:
		return "RESV"
	case CmdBill:
		return "BILL"
	case CmdCancel:
		return "CANCEL"
	case CmdAddCust:
		return "ADDCUST"
	case CmdAddRes:
		return "ADDRES"
	case CmdDelRes:
		return "DELRES"
	case CmdQPrice:
		return "QPRICE"
	case CmdPing:
		return "PING"
	}
	return "?"
}

// nArgs is the positional argument count per command.
func nArgs(op uint8) int {
	switch op {
	case CmdPing:
		return 0
	case CmdGet, CmdDel, CmdSAdd, CmdSRem, CmdSHas, CmdBill, CmdCancel, CmdAddCust:
		return 1
	case CmdPut, CmdQPrice:
		return 2
	case CmdResv, CmdDelRes:
		return 3
	case CmdAddRes:
		return 4
	}
	return -1
}

// parseUint is strconv.ParseUint(string(b), 10, 64) without the string
// conversion, so request decode does not allocate.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if v > (1<<64-1)/10 {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v < uint64(c-'0') {
			return 0, false
		}
	}
	return v, true
}

// matchCmd maps a command token to its op code (allocation-free; commands
// are uppercase ASCII).
func matchCmd(tok []byte) (uint8, bool) {
	switch len(tok) {
	case 3:
		switch {
		case tok[0] == 'G' && tok[1] == 'E' && tok[2] == 'T':
			return CmdGet, true
		case tok[0] == 'P' && tok[1] == 'U' && tok[2] == 'T':
			return CmdPut, true
		case tok[0] == 'D' && tok[1] == 'E' && tok[2] == 'L':
			return CmdDel, true
		}
	case 4:
		switch {
		case tok[0] == 'S' && tok[1] == 'A' && tok[2] == 'D' && tok[3] == 'D':
			return CmdSAdd, true
		case tok[0] == 'S' && tok[1] == 'R' && tok[2] == 'E' && tok[3] == 'M':
			return CmdSRem, true
		case tok[0] == 'S' && tok[1] == 'H' && tok[2] == 'A' && tok[3] == 'S':
			return CmdSHas, true
		case tok[0] == 'R' && tok[1] == 'E' && tok[2] == 'S' && tok[3] == 'V':
			return CmdResv, true
		case tok[0] == 'B' && tok[1] == 'I' && tok[2] == 'L' && tok[3] == 'L':
			return CmdBill, true
		case tok[0] == 'P' && tok[1] == 'I' && tok[2] == 'N' && tok[3] == 'G':
			return CmdPing, true
		}
	case 6:
		switch {
		case tok[0] == 'C' && string(tok) == "CANCEL":
			return CmdCancel, true
		case tok[0] == 'A' && string(tok) == "ADDRES":
			return CmdAddRes, true
		case tok[0] == 'D' && string(tok) == "DELRES":
			return CmdDelRes, true
		case tok[0] == 'Q' && string(tok) == "QPRICE":
			return CmdQPrice, true
		}
	case 7:
		if tok[0] == 'A' && string(tok) == "ADDCUST" {
			return CmdAddCust, true
		}
	}
	return 0, false
}

// ParseRequest decodes one request line (as returned by bufio.ReadSlice,
// trailing '\n' included or not). Allocation-free.
func ParseRequest(line []byte) (Request, error) {
	// Trim trailing \n / \r\n.
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	if len(line) == 0 {
		return Request{}, errEmpty
	}
	// Split off the command token.
	sp := -1
	for i, c := range line {
		if c == ' ' {
			sp = i
			break
		}
	}
	var tok, rest []byte
	if sp < 0 {
		tok, rest = line, nil
	} else {
		tok, rest = line[:sp], line[sp+1:]
	}
	op, ok := matchCmd(tok)
	if !ok {
		return Request{}, errUnknown
	}
	var req Request
	req.Op = op
	want := nArgs(op)
	args := [...]*uint64{&req.A, &req.B, &req.C, &req.D}
	got := 0
	for len(rest) > 0 {
		sp = -1
		for i, c := range rest {
			if c == ' ' {
				sp = i
				break
			}
		}
		var f []byte
		if sp < 0 {
			f, rest = rest, nil
		} else {
			f, rest = rest[:sp], rest[sp+1:]
		}
		if got >= want {
			return Request{}, errArgCount
		}
		v, ok := parseUint(f)
		if !ok {
			return Request{}, errBadNum
		}
		*args[got] = v
		got++
	}
	if got != want {
		return Request{}, errArgCount
	}
	return req, nil
}

// ParseResponse decodes one response line (client side: tests and the
// load generator).
func ParseResponse(line []byte) (Response, error) {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	if len(line) == 0 {
		return Response{}, errEmpty
	}
	switch line[0] {
	case 'O':
		r := Response{Kind: RespOK}
		if len(line) > 3 && line[1] == 'K' && line[2] == ' ' {
			v, ok := parseUint(line[3:])
			if !ok {
				return Response{}, errBadNum
			}
			r.Val, r.HasVal = v, true
		}
		return r, nil
	case 'T':
		return Response{Kind: RespTrue}, nil
	case 'F':
		return Response{Kind: RespFalse}, nil
	case 'N':
		return Response{Kind: RespNF}, nil
	case 'P':
		return Response{Kind: RespPong}, nil
	case 'E':
		return Response{Kind: RespErr}, nil
	}
	return Response{}, errUnknown
}

// Response encoders: append-style so the per-connection output buffer is
// reused without allocation.

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// AppendRequest encodes req as a wire line (client side).
func AppendRequest(b []byte, req *Request) []byte {
	switch req.Op {
	case CmdGet:
		b = append(b, "GET "...)
	case CmdPut:
		b = append(b, "PUT "...)
	case CmdDel:
		b = append(b, "DEL "...)
	case CmdSAdd:
		b = append(b, "SADD "...)
	case CmdSRem:
		b = append(b, "SREM "...)
	case CmdSHas:
		b = append(b, "SHAS "...)
	case CmdResv:
		b = append(b, "RESV "...)
	case CmdBill:
		b = append(b, "BILL "...)
	case CmdCancel:
		b = append(b, "CANCEL "...)
	case CmdAddCust:
		b = append(b, "ADDCUST "...)
	case CmdAddRes:
		b = append(b, "ADDRES "...)
	case CmdDelRes:
		b = append(b, "DELRES "...)
	case CmdQPrice:
		b = append(b, "QPRICE "...)
	case CmdPing:
		return append(b, "PING\n"...)
	}
	args := [...]uint64{req.A, req.B, req.C, req.D}
	for i := 0; i < nArgs(req.Op); i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		b = appendUint(b, args[i])
	}
	return append(b, '\n')
}

func appendOK(b []byte) []byte            { return append(b, "OK\n"...) }
func appendOKVal(b []byte, v uint64) []byte {
	b = append(b, "OK "...)
	b = appendUint(b, v)
	return append(b, '\n')
}
func appendBool(b []byte, ok bool) []byte {
	if ok {
		return append(b, "T\n"...)
	}
	return append(b, "F\n"...)
}
func appendNF(b []byte) []byte   { return append(b, "NF\n"...) }
func appendPong(b []byte) []byte { return append(b, "PONG\n"...) }
func appendErr(b []byte, err error) []byte {
	b = append(b, "ERR "...)
	b = append(b, err.Error()...)
	return append(b, '\n')
}
