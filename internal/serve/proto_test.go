package serve

import (
	"bytes"
	"testing"
)

func TestParseRequestRoundTrip(t *testing.T) {
	cases := []struct {
		line string
		want Request
	}{
		{"GET 5\n", Request{Op: CmdGet, A: 5}},
		{"PUT 5 77\n", Request{Op: CmdPut, A: 5, B: 77}},
		{"DEL 18446744073709551615\n", Request{Op: CmdDel, A: ^uint64(0)}},
		{"SADD 9\r\n", Request{Op: CmdSAdd, A: 9}},
		{"SREM 9\n", Request{Op: CmdSRem, A: 9}},
		{"SHAS 0\n", Request{Op: CmdSHas, A: 0}},
		{"RESV 3 1 42\n", Request{Op: CmdResv, A: 3, B: 1, C: 42}},
		{"BILL 3\n", Request{Op: CmdBill, A: 3}},
		{"CANCEL 3\n", Request{Op: CmdCancel, A: 3}},
		{"ADDCUST 12\n", Request{Op: CmdAddCust, A: 12}},
		{"ADDRES 2 7 100 60\n", Request{Op: CmdAddRes, A: 2, B: 7, C: 100, D: 60}},
		{"DELRES 2 7 100\n", Request{Op: CmdDelRes, A: 2, B: 7, C: 100}},
		{"QPRICE 0 7\n", Request{Op: CmdQPrice, A: 0, B: 7}},
		{"PING\n", Request{Op: CmdPing}},
	}
	for _, c := range cases {
		got, err := ParseRequest([]byte(c.line))
		if err != nil {
			t.Fatalf("ParseRequest(%q): %v", c.line, err)
		}
		if got != c.want {
			t.Fatalf("ParseRequest(%q) = %+v, want %+v", c.line, got, c.want)
		}
		// AppendRequest must re-encode to a line ParseRequest accepts
		// identically (the \r\n case normalizes to \n).
		enc := AppendRequest(nil, &got)
		back, err := ParseRequest(enc)
		if err != nil || back != c.want {
			t.Fatalf("re-encode of %q = %q parsed to %+v (%v)", c.line, enc, back, err)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	for _, line := range []string{
		"\n", "NOPE 1\n", "GET\n", "GET 1 2\n", "GET x\n", "PUT 1\n",
		"ADDRES 1 2 3\n", "GET 99999999999999999999999\n", "get 1\n",
	} {
		if _, err := ParseRequest([]byte(line)); err == nil {
			t.Fatalf("ParseRequest(%q) succeeded, want error", line)
		}
	}
}

func TestParseResponse(t *testing.T) {
	cases := []struct {
		line string
		want Response
	}{
		{"OK\n", Response{Kind: RespOK}},
		{"OK 42\n", Response{Kind: RespOK, Val: 42, HasVal: true}},
		{"T\n", Response{Kind: RespTrue}},
		{"F\n", Response{Kind: RespFalse}},
		{"NF\n", Response{Kind: RespNF}},
		{"PONG\n", Response{Kind: RespPong}},
		{"ERR serve: unknown command\n", Response{Kind: RespErr}},
	}
	for _, c := range cases {
		got, err := ParseResponse([]byte(c.line))
		if err != nil || got != c.want {
			t.Fatalf("ParseResponse(%q) = %+v (%v), want %+v", c.line, got, err, c.want)
		}
	}
}

func TestAppendEncoders(t *testing.T) {
	if got := appendOKVal(nil, 0); !bytes.Equal(got, []byte("OK 0\n")) {
		t.Fatalf("appendOKVal(0) = %q", got)
	}
	if got := appendUint(nil, 18446744073709551615); string(got) != "18446744073709551615" {
		t.Fatalf("appendUint(max) = %q", got)
	}
}
