package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/reclaim"
)

// Soak: millions of served requests with immediate reclamation while a
// scraper streams /metrics, then a leak audit — goroutine count and open
// file descriptors must return to their pre-server baseline after
// Shutdown, streamed totals must be monotonic and account for every
// request, and the reclaim pools' high-water footprint must stay bounded
// by the live key range (i.e. freed nodes really are reused, not leaked).

func countFDs(t *testing.T) (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Logf("fd audit unavailable: %v", err)
		return 0, false
	}
	return len(ents), true
}

func runServeSoak(t *testing.T, total int) {
	const (
		conns    = 4
		batch    = 256
		keyRange = 4096
	)
	total -= total % (conns * batch)

	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	baseFDs, fdOK := countFDs(t)

	srv := startServer(t, Config{
		MetricsAddr: "127.0.0.1:0",
		StreamEvery: 5 * time.Millisecond,
		Engine: EngineConfig{
			Workers:       4,
			MemBytes:      256 << 20,
			Tagged:        true,
			Reclaim:       true,
			ReclaimPolicy: reclaim.PolicyImmediate,
		},
	})
	addr := srv.Addr().String()
	metricsURL := fmt.Sprintf("http://%s/metrics", srv.MetricsAddr())

	// Traffic: pipelined batches of a delete-heavy KV/set mix over a small
	// key range, so nodes churn through the immediate-reclaim pools.
	var sent, errResponses atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("conn %d: dial: %v", id, err)
				return
			}
			defer conn.Close()
			bw := bufio.NewWriterSize(conn, 32<<10)
			br := bufio.NewReaderSize(conn, 32<<10)
			rng := uint64(id)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 { // splitmix64
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			var buf []byte
			for done := 0; done < total/conns; done += batch {
				for i := 0; i < batch; i++ {
					r := next()
					key := r % keyRange
					var req Request
					switch {
					case r>>32%100 < 30:
						req = Request{Op: CmdPut, A: key, B: r%1000 + 1}
					case r>>32%100 < 50:
						req = Request{Op: CmdDel, A: key}
					case r>>32%100 < 70:
						req = Request{Op: CmdGet, A: key}
					case r>>32%100 < 85:
						req = Request{Op: CmdSAdd, A: key}
					case r>>32%100 < 95:
						req = Request{Op: CmdSRem, A: key}
					default:
						req = Request{Op: CmdSHas, A: key}
					}
					buf = AppendRequest(buf[:0], &req)
					if _, err := bw.Write(buf); err != nil {
						t.Errorf("conn %d: write: %v", id, err)
						return
					}
				}
				if err := bw.Flush(); err != nil {
					t.Errorf("conn %d: flush: %v", id, err)
					return
				}
				for i := 0; i < batch; i++ {
					line, err := br.ReadBytes('\n')
					if err != nil {
						t.Errorf("conn %d: read: %v", id, err)
						return
					}
					resp, err := ParseResponse(line)
					if err != nil {
						t.Errorf("conn %d: bad response %q: %v", id, line, err)
						return
					}
					if resp.Kind == RespErr {
						errResponses.Add(1)
					}
				}
				sent.Add(batch)
			}
		}(c)
	}

	// Scraper: streamed totals must be monotonic while traffic is live.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	var scrapes, lastOps atomic.Uint64
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := httpc.Get(metricsURL)
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			var p metricsPayload
			err = json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
			if err != nil {
				t.Errorf("scrape decode: %v", err)
				return
			}
			if prev := lastOps.Load(); p.Ops < prev {
				t.Errorf("streamed ops went backwards: %d -> %d", prev, p.Ops)
				return
			}
			lastOps.Store(p.Ops)
			scrapes.Add(1)
		}
	}()

	wg.Wait()
	close(scrapeStop)
	<-scrapeDone
	tr.CloseIdleConnections()

	if got := sent.Load(); int(got) != total {
		t.Fatalf("clients completed %d/%d requests", got, total)
	}
	if n := errResponses.Load(); n != 0 {
		t.Fatalf("%d ERR responses in soak traffic", n)
	}
	if scrapes.Load() == 0 {
		t.Fatal("scraper never completed a mid-run /metrics read")
	}

	kvStats, setStats := srv.Engine().PoolStats()
	shutdown(t, srv)

	// Every request ticks the stream exactly once; Shutdown flushes the
	// live windows, so the cumulative totals must account for all of them.
	if ops, _ := srv.Stream().Totals(); int(ops) != total {
		t.Errorf("streamed ops = %d, want %d", ops, total)
	}
	sum := srv.Summarize()
	if int(sum.Requests) != total {
		t.Errorf("Summary.Requests = %d, want %d", sum.Requests, total)
	}
	if sum.P99NS == 0 || sum.MaxNS == 0 {
		t.Errorf("degenerate latency summary: %+v", sum)
	}

	// Reclaim audit: with immediate reclamation over a keyRange-bounded
	// working set, the pools' peak footprint must be proportional to the
	// key range, not to the millions of inserts served.
	if kvStats.Freed == 0 || setStats.Freed == 0 {
		t.Errorf("soak never exercised reclamation: kv=%+v set=%+v", kvStats, setStats)
	}
	const lineBound = 16 * keyRange
	if kvStats.HighWaterLines > lineBound {
		t.Errorf("kv pool high water %d lines exceeds %d: %+v", kvStats.HighWaterLines, lineBound, kvStats)
	}
	if setStats.HighWaterLines > 4*lineBound {
		t.Errorf("set pool high water %d lines exceeds %d: %+v", setStats.HighWaterLines, 4*lineBound, setStats)
	}
	t.Logf("soak: %d requests, %d scrapes, kv high water %d lines (freed %d), set high water %d lines (freed %d), p99=%.0fns",
		total, scrapes.Load(), kvStats.HighWaterLines, kvStats.Freed, setStats.HighWaterLines, setStats.Freed, sum.P99NS)

	// Leak audit: everything the server and clients spawned must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		g := runtime.NumGoroutine()
		fds, ok := countFDs(t)
		if !fdOK {
			ok = false
		}
		if g <= baseGoroutines+1 && (!ok || fds <= baseFDs+1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after shutdown: goroutines %d (base %d), fds %d (base %d)",
				g, baseGoroutines, fds, baseFDs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeSoak(t *testing.T) {
	total := 1_000_000
	if testing.Short() {
		total = 150_000
	}
	runServeSoak(t, total)
}
