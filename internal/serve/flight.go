package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/telemetry"
)

// FlightConfig arms request-scoped tracing and the black-box flight
// recorder on the served path. With Spans off everything here is inert and
// the hot path is byte-for-byte the untraced one.
type FlightConfig struct {
	// Spans turns on per-request span recording: alloc-free, always-on
	// once armed, published into a per-worker flight ring.
	Spans bool

	// TailLatency is the tail-sampling latency threshold — spans at least
	// this slow are marked kept. 0 means the 1ms default; negative
	// disables the latency criterion.
	TailLatency time.Duration
	// TailAttempts marks spans that burned at least this many STM
	// attempts. 0 means the default of 4; negative disables.
	TailAttempts int

	// Depth is the per-worker flight-ring capacity in spans (default 256).
	Depth int

	// SLOP99 arms the auto-dump: when a merged telemetry window's p99
	// exceeds this budget for SLOWindows consecutive non-empty windows,
	// the server writes a post-mortem bundle to DumpDir. 0 disables the
	// monitor (manual TriggerDump still works).
	SLOP99 time.Duration
	// SLOWindows is the consecutive breached-window count that triggers
	// the auto-dump (default 3).
	SLOWindows int

	// DumpDir receives the post-mortem bundle — trace.json (request spans
	// as Perfetto trace events), windows.json (merged telemetry windows),
	// stats.json (engine counters + dump reason + exemplars). Default
	// "flight-dump".
	DumpDir string
}

func (c *FlightConfig) setDefaults() {
	if c.TailLatency == 0 {
		c.TailLatency = time.Millisecond
	}
	if c.TailAttempts == 0 {
		c.TailAttempts = 4
	}
	if c.Depth <= 0 {
		c.Depth = 256
	}
	if c.SLOWindows <= 0 {
		c.SLOWindows = 3
	}
	if c.DumpDir == "" {
		c.DumpDir = "flight-dump"
	}
}

// tailPolicy renders the config into the recorder's sampling policy.
func (c *FlightConfig) tailPolicy() telemetry.TailPolicy {
	var p telemetry.TailPolicy
	if c.TailLatency > 0 {
		p.LatencyNS = uint64(c.TailLatency.Nanoseconds())
	}
	if c.TailAttempts > 0 {
		p.Attempts = uint32(c.TailAttempts)
	}
	return p
}

// autoDumpMinGap spaces monitor-triggered dumps so a sustained breach does
// not rewrite the bundle every window.
const autoDumpMinGap = 5 * time.Second

// sloMonitor watches the merged telemetry windows and triggers a
// post-mortem dump after SLOWindows consecutive non-empty windows whose
// p99 exceeds the SLOP99 budget.
func (s *Server) sloMonitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.StreamEvery)
	defer t.Stop()
	budget := float64(s.cfg.Flight.SLOP99.Nanoseconds())
	streak := 0
	var lastSeen uint64
	seen := false
	var lastDump time.Time
	for {
		select {
		case <-s.monStop:
			return
		case <-t.C:
		}
		windows, _ := s.stream.ReadMergedWindows()
		for i := range windows {
			w := &windows[i]
			if w.Ops == 0 || (seen && w.Start <= lastSeen) {
				continue
			}
			seen, lastSeen = true, w.Start
			if w.P99 > budget {
				streak++
			} else {
				streak = 0
			}
			if streak >= s.cfg.Flight.SLOWindows {
				streak = 0
				if lastDump.IsZero() || time.Since(lastDump) >= autoDumpMinGap {
					lastDump = time.Now()
					s.TriggerDump("slo-breach")
				}
			}
		}
	}
}

// DumpExemplar links one worker's most recent tail-sampled span into the
// dump: its request/trace ID (the span ID, also the Prometheus exemplar)
// and end-to-end latency.
type DumpExemplar struct {
	Worker    int    `json:"worker"`
	TraceID   string `json:"trace_id"`
	LatencyNS uint64 `json:"latency_ns"`
}

// DumpStats is the stats.json document of a post-mortem bundle.
type DumpStats struct {
	Reason           string         `json:"reason"`
	UptimeNS         int64          `json:"uptime_ns"`
	Workers          int            `json:"workers"`
	Requests         uint64         `json:"requests"`
	Errors           uint64         `json:"errors"`
	ConnsAccepted    uint64         `json:"conns_accepted"`
	Ops              uint64         `json:"ops"`
	Fails            uint64         `json:"fails"`
	SpansRecorded    uint64         `json:"spans_recorded"`
	SpansKept        uint64         `json:"spans_kept"`
	Dumps            uint64         `json:"dumps"`
	Engine           EngineStats    `json:"engine"`
	ReclaimViolation string         `json:"reclaim_violation,omitempty"`
	Exemplars        []DumpExemplar `json:"exemplars,omitempty"`
}

// windowsDump is the windows.json document: the merged telemetry windows
// at dump time, same shape as the JSON /metrics windows section.
type windowsDump struct {
	WindowNS      uint64                   `json:"window_ns"`
	StreamRetries int                      `json:"stream_retries"`
	Windows       []telemetry.StreamWindow `json:"windows"`
}

// TriggerDump writes a post-mortem bundle (trace.json, windows.json,
// stats.json) into the flight dump directory and returns that directory.
// Safe mid-run from any goroutine — the flight rings, stream rings, and
// engine counters all read under seqlocks or as atomics — and serialized
// against concurrent dumps. Errors if spans are not armed.
func (s *Server) TriggerDump(reason string) (string, error) {
	if s.flight == nil {
		return "", fmt.Errorf("serve: flight recorder not armed (Config.Flight.Spans)")
	}
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()

	dir := s.cfg.Flight.DumpDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	spans := s.flight.Snapshot()
	tf, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return "", err
	}
	if err := telemetry.WriteSpanTrace(tf, spans, CmdName, len(s.eng.workers)); err != nil {
		tf.Close()
		return "", err
	}
	if err := tf.Close(); err != nil {
		return "", err
	}

	windows, retries := s.stream.ReadMergedWindows()
	if err := writeJSONFile(filepath.Join(dir, "windows.json"), &windowsDump{
		WindowNS:      s.stream.Every(),
		StreamRetries: retries,
		Windows:       windows,
	}); err != nil {
		return "", err
	}

	s.dumps.Add(1)
	if err := writeJSONFile(filepath.Join(dir, "stats.json"), s.dumpStats(reason)); err != nil {
		return "", err
	}
	return dir, nil
}

// dumpStats assembles the stats.json document. Caller holds dumpMu (the
// dump counter must already include this dump).
func (s *Server) dumpStats(reason string) *DumpStats {
	ops, fails := s.stream.Totals()
	recorded, kept := s.flight.Totals()
	st := &DumpStats{
		Reason:        reason,
		UptimeNS:      int64(time.Since(s.start)),
		Workers:       len(s.eng.workers),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		ConnsAccepted: s.accepted.Load(),
		Ops:           ops,
		Fails:         fails,
		SpansRecorded: recorded,
		SpansKept:     kept,
		Dumps:         s.dumps.Load(),
		Engine:        s.eng.Stats(),
	}
	if msg := s.vioMsg.Load(); msg != nil {
		st.ReclaimViolation = *msg
	}
	for i := 0; i < s.flight.NumCores(); i++ {
		if id, lat, ok := s.flight.Exemplar(i); ok {
			st.Exemplars = append(st.Exemplars, DumpExemplar{
				Worker: i, TraceID: traceID(id), LatencyNS: lat,
			})
		}
	}
	return st
}

// traceID renders a span/request ID the way the Prometheus exemplars do,
// so the dump and the exposition join on the same string.
func traceID(id uint64) string { return fmt.Sprintf("%016x", id) }

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
