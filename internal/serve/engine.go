package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/reclaim"
	"repro/internal/skiplist"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/txmap"
	"repro/internal/vacation"
	"repro/internal/vtags"
)

// opClocked is the backend thread's logical clock (vtags: ticks + failure
// count), diffed around each request for the telemetry fails column.
type opClocked interface{ OpClock() (clock, fails uint64) }

// Engine owns the storage planes and the worker pool. Connections are
// bound to workers round-robin; each worker owns one backend thread, and
// a mutex serializes the requests of the connections sharing it (the
// mutex also provides the happens-before edge the thread handle's
// single-goroutine contract needs).
type Engine struct {
	mem *vtags.Memory

	kvTM  *stm.TM
	resTM *stm.TM
	kv    *txmap.Map
	set   *skiplist.List
	res   *vacation.Manager

	dom     *reclaim.Domain
	kvPool  *reclaim.Pool
	setPool *reclaim.Pool

	workers []*Worker
}

// Worker is one engine lane: a backend thread plus everything needed to
// execute requests on it without allocating — argument slots written
// before entering the STM and closures bound to those slots once at
// construction.
type Worker struct {
	id  int
	eng *Engine

	mu sync.Mutex // serializes this worker's connections
	th core.Thread
	oc opClocked // nil if the backend thread has no op clock

	// Argument/result slots for the preallocated closures.
	key, val, out uint64
	ok            bool
	cust, kind    uint64
	resID, num    uint64
	price         uint64

	getFn, putFn, delFn func(tx *stm.Tx)
	resvFn, billFn      func(tx *stm.Tx)
	cancelFn, addCustFn func(tx *stm.Tx)
	addResFn, delResFn  func(tx *stm.Tx)
	qpriceFn            func(tx *stm.Tx)

	// txShard, when recording is on, receives one history.OpTx event per
	// reservation transaction (footprints captured server-side; KV/set
	// ops are recorded at the wire by the client).
	txShard *history.Shard

	// lat collects this worker's service-time histogram (host ns), read
	// at quiescence for the final summary; the Stream carries the mid-run
	// view.
	lat telemetry.Histogram

	// sr, when spans are armed, records this worker's request spans.
	// Single-writer under mu, like lat.
	sr *telemetry.SpanRecorder
}

// EngineConfig selects the engine's storage configuration.
type EngineConfig struct {
	Workers  int
	MemBytes int
	MaxTags  int  // 0 = backend default
	Tagged   bool // tagged NOrec (true) or baseline NOrec for both TMs

	// ReclaimPolicy: PolicyImmediate or PolicyEpoch wire reclamation pools
	// under the KV and set planes; leave Reclaim false to run unreclaimed.
	Reclaim       bool
	ReclaimPolicy reclaim.Policy

	// Vacation populate: Relations > 0 pre-populates the reservation
	// tables with that many relations (STAMP's -r).
	Relations int
	Seed      int64

	// RecordTx, when non-nil, records every reservation transaction
	// (including the populate and table init) for serializability
	// checking. Needs Workers+1 shards: shard Workers holds init+populate.
	RecordTx *history.Recorder
}

// newEngine builds the storage planes and worker pool. The populate runs
// on worker 0's thread before any traffic.
func newEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("serve: need at least 1 worker")
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 1 << 30
	}
	var opts []vtags.Option
	if cfg.MaxTags > 0 {
		opts = append(opts, vtags.WithMaxTags(cfg.MaxTags))
	}
	e := &Engine{mem: vtags.New(cfg.MemBytes, cfg.Workers, opts...)}

	newTM := stm.NewNOrec
	if cfg.Tagged {
		newTM = stm.NewTagged
	}
	e.kvTM = newTM(e.mem)
	e.resTM = newTM(e.mem)
	e.kvTM.Prepare(cfg.Workers)
	e.resTM.Prepare(cfg.Workers)

	if cfg.Reclaim {
		e.dom = reclaim.NewDomainFor(e.mem)
		e.mem.SetReclaim(e.dom)
		e.kvTM.SetReclaim(e.dom)
		e.resTM.SetReclaim(e.dom)
	}

	e.kv = txmap.New(e.mem)
	e.set = skiplist.NewVAS(e.mem)
	if cfg.Reclaim {
		e.kvPool = reclaim.NewPool(e.dom, txmap.NodeWords, cfg.ReclaimPolicy)
		e.kv.SetReclaim(e.kvPool)
		e.setPool = reclaim.NewPool(e.dom, skiplist.NodeWords, cfg.ReclaimPolicy)
		e.set.SetReclaim(e.setPool)
	}

	if cfg.RecordTx != nil {
		e.res = vacation.NewRecordedManager(e.mem, e.resTM, cfg.RecordTx.Shard(cfg.Workers))
	} else {
		e.res = vacation.NewManager(e.mem, e.resTM)
	}
	if cfg.Relations > 0 {
		p := vacation.Params{Relations: cfg.Relations}
		th0 := e.mem.Thread(0)
		if cfg.RecordTx != nil {
			vacation.RecordedPopulate(e.res, th0, cfg.RecordTx.Shard(cfg.Workers), p, cfg.Seed)
		} else {
			vacation.Populate(e.res, th0, p, cfg.Seed)
		}
	}

	e.workers = make([]*Worker, cfg.Workers)
	for i := range e.workers {
		w := &Worker{id: i, eng: e, th: e.mem.Thread(i)}
		w.oc, _ = w.th.(opClocked)
		if cfg.RecordTx != nil {
			w.txShard = cfg.RecordTx.Shard(i)
		}
		w.bindClosures()
		e.workers[i] = w
	}
	return e, nil
}

// armSpans installs a span recorder on every worker and registers it as
// the STM attempt observer on both TMs, so request spans carry per-attempt
// records with abort causes. Quiescent only (run before traffic).
func (e *Engine) armSpans(fr *telemetry.FlightRecorder, epoch time.Time, pol telemetry.TailPolicy) {
	for _, w := range e.workers {
		w.sr = telemetry.NewSpanRecorder(fr, w.id, epoch, pol)
		e.kvTM.SetTxObserver(w.th.ID(), w.sr)
		e.resTM.SetTxObserver(w.th.ID(), w.sr)
	}
}

// TMStats is one TM's cumulative attempt counters.
type TMStats struct {
	Commits   uint64 `json:"commits"`
	Aborts    uint64 `json:"aborts"`
	TagAborts uint64 `json:"tag_aborts"`
}

// EngineStats is the engine-wide counter snapshot. Every source is an
// atomic, so it is safe to take mid-run (the flight-recorder dump and the
// metrics plane both do).
type EngineStats struct {
	KV           TMStats `json:"kv_tm"`
	Res          TMStats `json:"res_tm"`
	TagOverflows uint64  `json:"tag_overflows"`
	TagEvictions uint64  `json:"tag_evictions"`
}

// Stats snapshots the engine counters. Safe at any time.
func (e *Engine) Stats() EngineStats {
	ov, ev := e.mem.TagStats()
	return EngineStats{
		KV: TMStats{
			Commits:   e.kvTM.Commits.Load(),
			Aborts:    e.kvTM.Aborts.Load(),
			TagAborts: e.kvTM.TagAborts.Load(),
		},
		Res: TMStats{
			Commits:   e.resTM.Commits.Load(),
			Aborts:    e.resTM.Aborts.Load(),
			TagAborts: e.resTM.TagAborts.Load(),
		},
		TagOverflows: ov,
		TagEvictions: ev,
	}
}

// bindClosures builds the per-worker transaction bodies once; they read
// their arguments from the worker's slots, so executing them allocates
// nothing.
func (w *Worker) bindClosures() {
	e := w.eng
	w.getFn = func(tx *stm.Tx) { w.out, w.ok = e.kv.Get(tx, w.key) }
	w.putFn = func(tx *stm.Tx) { w.ok = e.kv.Put(tx, w.key, w.val, w.th) }
	w.delFn = func(tx *stm.Tx) { w.ok = e.kv.Delete(tx, w.key) }
	w.resvFn = func(tx *stm.Tx) {
		// STAMP's makeReservation adds the customer in the same
		// transaction; RESV mirrors that so a fresh customer can reserve.
		e.res.AddCustomer(tx, w.th, w.cust)
		w.price, w.ok = e.res.ReservePriced(tx, w.th, w.cust, int(w.kind), w.resID)
	}
	w.billFn = func(tx *stm.Tx) { w.out, w.ok = e.res.QueryCustomerBill(tx, w.cust) }
	w.cancelFn = func(tx *stm.Tx) { w.ok = e.res.DeleteCustomer(tx, w.cust) }
	w.addCustFn = func(tx *stm.Tx) { w.ok = e.res.AddCustomer(tx, w.th, w.cust) }
	w.addResFn = func(tx *stm.Tx) { e.res.AddResource(tx, w.th, int(w.kind), w.resID, w.num, w.price) }
	w.delResFn = func(tx *stm.Tx) { w.ok = e.res.DeleteResource(tx, int(w.kind), w.resID, w.num) }
	w.qpriceFn = func(tx *stm.Tx) { w.out, w.ok = e.res.QueryPrice(tx, int(w.kind), w.resID) }
}

// runRes executes a reservation transaction body: cached and
// allocation-free normally, recorded via vacation.RunTx when the engine
// is capturing serializability histories.
func (w *Worker) runRes(fn func(tx *stm.Tx)) {
	if w.txShard != nil {
		vacation.RunTx(w.eng.res, w.th, w.txShard, fn)
		return
	}
	w.eng.resTM.RunCached(w.th, fn)
}

// Exec runs one decoded request on the worker and appends the encoded
// response to out. The caller must hold w.mu. Allocation-free for the
// KV/set commands and the cached reservation path.
func (w *Worker) Exec(req *Request, out []byte) []byte {
	e := w.eng
	switch req.Op {
	case CmdGet:
		w.key = req.A
		e.kvTM.RunCached(w.th, w.getFn)
		if w.ok {
			return appendOKVal(out, w.out)
		}
		return appendNF(out)
	case CmdPut:
		if req.B == 0 {
			return appendErr(out, errZeroVal)
		}
		w.key, w.val = req.A, req.B
		e.kvTM.RunCached(w.th, w.putFn)
		return appendBool(out, w.ok)
	case CmdDel:
		w.key = req.A
		e.kvTM.RunCached(w.th, w.delFn)
		return appendBool(out, w.ok)
	case CmdSAdd:
		return appendBool(out, e.set.Insert(w.th, req.A))
	case CmdSRem:
		return appendBool(out, e.set.Delete(w.th, req.A))
	case CmdSHas:
		return appendBool(out, e.set.Contains(w.th, req.A))
	case CmdResv:
		if req.B >= vacation.NumKinds {
			return appendErr(out, errBadKind)
		}
		w.cust, w.kind, w.resID = req.A, req.B, req.C
		w.runRes(w.resvFn)
		if w.ok {
			return appendOKVal(out, w.price)
		}
		return appendBool(out, false)
	case CmdBill:
		w.cust = req.A
		w.runRes(w.billFn)
		if w.ok {
			return appendOKVal(out, w.out)
		}
		return appendNF(out)
	case CmdCancel:
		w.cust = req.A
		w.runRes(w.cancelFn)
		return appendBool(out, w.ok)
	case CmdAddCust:
		w.cust = req.A
		w.runRes(w.addCustFn)
		return appendBool(out, w.ok)
	case CmdAddRes:
		if req.A >= vacation.NumKinds {
			return appendErr(out, errBadKind)
		}
		w.kind, w.resID, w.num, w.price = req.A, req.B, req.C, req.D
		w.runRes(w.addResFn)
		return appendOK(out)
	case CmdDelRes:
		if req.A >= vacation.NumKinds {
			return appendErr(out, errBadKind)
		}
		w.kind, w.resID, w.num = req.A, req.B, req.C
		w.runRes(w.delResFn)
		return appendBool(out, w.ok)
	case CmdQPrice:
		if req.A >= vacation.NumKinds {
			return appendErr(out, errBadKind)
		}
		w.kind, w.resID = req.A, req.B
		w.runRes(w.qpriceFn)
		if w.ok {
			return appendOKVal(out, w.out)
		}
		return appendNF(out)
	case CmdPing:
		return appendPong(out)
	}
	return appendErr(out, errUnknown)
}

// CheckTables verifies the reservation engine's conservation invariants.
// Quiescent only (no traffic in flight).
func (e *Engine) CheckTables() (bool, string) {
	return e.res.CheckTables(e.mem.Thread(0))
}

// PoolStats returns the KV and set reclamation pool statistics (zero
// values when reclamation is off). Quiescent only.
func (e *Engine) PoolStats() (kv, set reclaim.Stats) {
	if e.kvPool != nil {
		kv = e.kvPool.Stats()
	}
	if e.setPool != nil {
		set = e.setPool.Stats()
	}
	return kv, set
}
