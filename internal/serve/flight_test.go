package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flightTestConfig is a small spans-armed server with the metrics plane on.
func flightTestConfig(dumpDir string) Config {
	return Config{
		MetricsAddr: "127.0.0.1:0",
		Flight: FlightConfig{
			Spans:   true,
			Depth:   64,
			DumpDir: dumpDir,
		},
		Engine: EngineConfig{Workers: 2, Tagged: true, Relations: 8},
	}
}

func httpGet(t *testing.T, url, accept string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

// TestPprofGate pins the profiling surface's default absence: /debug/pprof
// 404s unless Config.Pprof is set.
func TestPprofGate(t *testing.T) {
	srv := startServer(t, Config{MetricsAddr: "127.0.0.1:0",
		Engine: EngineConfig{Workers: 1, Tagged: true}})
	base := "http://" + srv.MetricsAddr().String()
	if code, _ := httpGet(t, base+"/debug/pprof/", ""); code != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/ = %d, want 404", code)
	}
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline", ""); code != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/cmdline = %d, want 404", code)
	}
	shutdown(t, srv)

	srv = startServer(t, Config{MetricsAddr: "127.0.0.1:0", Pprof: true,
		Engine: EngineConfig{Workers: 1, Tagged: true}})
	defer shutdown(t, srv)
	base = "http://" + srv.MetricsAddr().String()
	code, body := httpGet(t, base+"/debug/pprof/", "")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof on: GET /debug/pprof/ = %d (%q...)", code, body[:min(len(body), 60)])
	}
}

// TestPrometheusExposition covers the content negotiation and the text
// format: counters, the le-bucket histogram, monotonicity across scrapes,
// and the exemplar carrying a tail-sampled request's trace ID.
func TestPrometheusExposition(t *testing.T) {
	srv := startServer(t, flightTestConfig(t.TempDir()))
	defer shutdown(t, srv)
	c := dialClient(t, srv.Addr().String())
	defer c.close()

	for i := 0; i < 20; i++ {
		if r := c.do(Request{Op: CmdPut, A: uint64(i), B: 7}); r.Kind != RespTrue {
			t.Fatalf("PUT = %+v", r)
		}
	}
	// An ERR response (PUT value 0) makes a tail-kept span -> exemplar.
	if r := c.do(Request{Op: CmdPut, A: 1, B: 0}); r.Kind != RespErr {
		t.Fatalf("PUT 0 = %+v, want ERR", r)
	}

	base := "http://" + srv.MetricsAddr().String()

	// Default stays JSON (existing consumers), including the span totals.
	_, jsonBody := httpGet(t, base+"/metrics", "")
	var payload struct {
		Requests      uint64 `json:"requests"`
		SpansRecorded uint64 `json:"spans_recorded"`
		SpansKept     uint64 `json:"spans_kept"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &payload); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	if payload.Requests < 21 || payload.SpansRecorded < 21 || payload.SpansKept == 0 {
		t.Fatalf("JSON totals wrong: %+v", payload)
	}

	code, text := httpGet(t, base+"/metrics", "text/plain")
	if code != http.StatusOK {
		t.Fatalf("prometheus scrape = %d", code)
	}
	for _, want := range []string{
		"# TYPE memtag_requests_total counter",
		"memtag_requests_total 21",
		"memtag_errors_total 0", // wire ERR from Exec is not a protocol decode error
		"# TYPE memtag_request_duration_ns histogram",
		`memtag_request_duration_ns_bucket{le="+Inf"} 21`,
		"memtag_request_duration_ns_count 21",
		"memtag_spans_recorded_total 21",
		"# TYPE memtag_stm_commits_total counter",
		`# {trace_id="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Bucket counts are cumulative and end at _count.
	var lastBucket uint64
	prev := uint64(0)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "memtag_request_duration_ns_bucket{le=") {
			continue
		}
		fields := strings.Fields(strings.SplitN(line, "} ", 2)[1])
		var v uint64
		fmt.Sscanf(fields[0], "%d", &v)
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev, lastBucket = v, v
	}
	if lastBucket != 21 {
		t.Fatalf("final bucket = %d, want 21", lastBucket)
	}

	// More traffic, second scrape: counters are monotonic.
	for i := 0; i < 5; i++ {
		c.do(Request{Op: CmdGet, A: uint64(i)})
	}
	_, text2 := httpGet(t, base+"/metrics?format=prometheus", "")
	if !strings.Contains(text2, "memtag_requests_total 26") {
		t.Fatalf("second scrape lost requests:\n%s", text2)
	}
}

// TestFlightDumpBundle is the post-mortem end to end: traffic including an
// errored request, TriggerDump, then the bundle must contain the offending
// span, linked by the same trace ID the stats exemplars carry.
func TestFlightDumpBundle(t *testing.T) {
	dir := t.TempDir()
	srv := startServer(t, flightTestConfig(dir))
	defer shutdown(t, srv)
	c := dialClient(t, srv.Addr().String())
	defer c.close()

	for i := 0; i < 10; i++ {
		c.do(Request{Op: CmdPut, A: uint64(i), B: 5})
	}
	if r := c.do(Request{Op: CmdPut, A: 1, B: 0}); r.Kind != RespErr {
		t.Fatalf("PUT 0 = %+v, want ERR", r)
	}

	got, err := srv.TriggerDump("test-breach")
	if err != nil {
		t.Fatalf("TriggerDump: %v", err)
	}
	if got != dir {
		t.Fatalf("dump dir = %q, want %q", got, dir)
	}

	var stats DumpStats
	raw, err := os.ReadFile(filepath.Join(dir, "stats.json"))
	if err != nil {
		t.Fatalf("stats.json: %v", err)
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats.json parse: %v", err)
	}
	if stats.Reason != "test-breach" || stats.Dumps != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.SpansRecorded != 11 || stats.SpansKept == 0 {
		t.Fatalf("span totals = %d/%d, want 11 recorded, >0 kept", stats.SpansRecorded, stats.SpansKept)
	}
	if stats.Engine.KV.Commits == 0 {
		t.Fatalf("engine stats empty: %+v", stats.Engine)
	}
	if len(stats.Exemplars) == 0 {
		t.Fatal("no exemplars in stats.json despite a kept span")
	}

	var wins windowsDump
	raw, err = os.ReadFile(filepath.Join(dir, "windows.json"))
	if err != nil {
		t.Fatalf("windows.json: %v", err)
	}
	if err := json.Unmarshal(raw, &wins); err != nil {
		t.Fatalf("windows.json parse: %v", err)
	}
	if wins.WindowNS == 0 {
		t.Fatalf("windows.json window_ns = 0")
	}

	raw, err = os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatalf("trace.json: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace.json parse: %v", err)
	}
	// The exemplar's trace ID must resolve to a span begin event in the
	// trace — that is the whole point of the link.
	ids := map[string]bool{}
	sawErrSpan := false
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "b" || ev.Args == nil {
			continue
		}
		if rid, ok := ev.Args["req_id"].(float64); ok {
			ids[fmt.Sprintf("%016x", uint64(rid))] = true
		}
		if errv, ok := ev.Args["err"].(bool); ok && errv {
			sawErrSpan = true
		}
	}
	for _, ex := range stats.Exemplars {
		if !ids[ex.TraceID] {
			t.Errorf("exemplar %s not found among trace span IDs %v", ex.TraceID, ids)
		}
	}
	if !sawErrSpan {
		t.Error("the errored request's span is missing from trace.json")
	}
}

// TestSLOAutoDump arms an absurd 1ns p99 budget over one window, pushes
// traffic, and expects the monitor to write a bundle on its own.
func TestSLOAutoDump(t *testing.T) {
	dir := t.TempDir()
	cfg := flightTestConfig(dir)
	cfg.StreamEvery = 5 * time.Millisecond
	cfg.Flight.SLOP99 = 1
	cfg.Flight.SLOWindows = 1
	srv := startServer(t, cfg)
	defer shutdown(t, srv)
	c := dialClient(t, srv.Addr().String())
	defer c.close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Dumps() == 0 && time.Now().Before(deadline) {
		c.do(Request{Op: CmdPut, A: 1, B: 2})
	}
	if srv.Dumps() == 0 {
		t.Fatal("SLO monitor never dumped despite a 1ns p99 budget")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "stats.json"))
	if err != nil {
		t.Fatalf("stats.json: %v", err)
	}
	var stats DumpStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats.json parse: %v", err)
	}
	if stats.Reason != "slo-breach" {
		t.Fatalf("reason = %q, want slo-breach", stats.Reason)
	}
}

// TestScrapeDuringDrain pins satellite (c): scraping /metrics (both
// formats) while a graceful shutdown drains must not panic or tear, and
// totals stay monotonic through the final Summarize.
func TestScrapeDuringDrain(t *testing.T) {
	srv := startServer(t, flightTestConfig(t.TempDir()))
	base := "http://" + srv.MetricsAddr().String()

	// Traffic from several connections, running until their conns die at
	// shutdown.
	var tw sync.WaitGroup
	for i := 0; i < 3; i++ {
		tw.Add(1)
		go func(seed uint64) {
			defer tw.Done()
			conn := dialClient(t, srv.Addr().String())
			defer conn.close()
			var buf []byte
			for j := uint64(0); ; j++ {
				req := Request{Op: CmdPut, A: (seed*1000 + j) % 256, B: 7}
				buf = AppendRequest(buf[:0], &req)
				if _, err := conn.conn.Write(buf); err != nil {
					return
				}
				if _, err := conn.br.ReadBytes('\n'); err != nil {
					return
				}
			}
		}(uint64(i))
	}

	// Scraper: alternate JSON and Prometheus until the HTTP plane goes
	// away; every successful JSON scrape must be parseable and monotonic.
	var lastRequests atomic.Uint64
	scrapes := 0
	scrapeOnce := func() bool {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return false
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return false
		}
		var p struct {
			Requests uint64 `json:"requests"`
		}
		if err := json.Unmarshal(body, &p); err != nil {
			t.Errorf("torn JSON scrape: %v", err)
			return false
		}
		if prev := lastRequests.Load(); p.Requests < prev {
			t.Errorf("requests went backwards: %d after %d", p.Requests, prev)
		}
		lastRequests.Store(p.Requests)
		presp, err := http.Get(base + "/metrics?format=prometheus")
		if err != nil {
			return false
		}
		pbody, err := io.ReadAll(presp.Body)
		presp.Body.Close()
		if err == nil && !strings.Contains(string(pbody), "memtag_requests_total") {
			t.Errorf("prometheus scrape torn:\n%s", pbody)
		}
		scrapes++
		return true
	}
	if !scrapeOnce() {
		t.Fatal("initial scrape failed")
	}

	done := make(chan struct{})
	var sw sync.WaitGroup
	sw.Add(1)
	go func() {
		defer sw.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			scrapeOnce()
		}
	}()

	time.Sleep(50 * time.Millisecond) // let traffic and scrapes overlap
	shutdown(t, srv)                  // drains while the scraper hammers /metrics
	close(done)
	sw.Wait()
	tw.Wait()

	sum := srv.Summarize()
	if sum.Requests < lastRequests.Load() {
		t.Fatalf("Summarize lost requests: %d < last scraped %d", sum.Requests, lastRequests.Load())
	}
	if scrapes == 0 {
		t.Fatal("no successful scrapes during the run")
	}
}
