package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config describes one server.
type Config struct {
	// Addr is the TCP data-plane listen address (e.g. "127.0.0.1:7070";
	// port 0 picks a free port).
	Addr string
	// MetricsAddr is the HTTP telemetry listen address ("" disables the
	// endpoint).
	MetricsAddr string

	Engine EngineConfig

	// StreamEvery is the streaming-telemetry window width (default
	// 100ms); StreamDepth the per-core ring capacity in windows (default
	// 120, i.e. 12s of history at the default width).
	StreamEvery time.Duration
	StreamDepth int

	// Flight arms request-scoped tracing, tail-based sampling, and the
	// post-mortem flight recorder (see FlightConfig).
	Flight FlightConfig

	// Pprof exposes net/http/pprof on the private metrics mux. Off by
	// default: the profiling surface stays absent unless asked for.
	Pprof bool
}

// Server is one running memtag-serve instance.
type Server struct {
	cfg    Config
	eng    *Engine
	stream *telemetry.Stream
	start  time.Time

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	closing  atomic.Bool
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	nextConn atomic.Uint64

	requests atomic.Uint64 // requests decoded (including errored ones)
	errors   atomic.Uint64 // protocol errors answered with ERR
	accepted atomic.Uint64
	active   atomic.Int64

	// Flight-recorder plane (nil/zero when Config.Flight.Spans is off).
	flight  *telemetry.FlightRecorder
	monStop chan struct{} // stops the SLO monitor
	dumpMu  sync.Mutex    // serializes post-mortem dumps
	dumps   atomic.Uint64 // bundles written
	vioMsg  atomic.Pointer[string]
	vioOnce sync.Once
}

// flushLimit bounds the per-connection output buffer before a forced
// flush, so a deeply pipelined client cannot balloon it.
const flushLimit = 64 << 10

// New builds the engine (including the vacation populate, which runs
// before any traffic) but does not listen yet.
func New(cfg Config) (*Server, error) {
	if cfg.StreamEvery <= 0 {
		cfg.StreamEvery = 100 * time.Millisecond
	}
	if cfg.StreamDepth <= 0 {
		cfg.StreamDepth = 120
	}
	cfg.Flight.setDefaults()
	eng, err := newEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		eng:    eng,
		stream: telemetry.NewStream(cfg.Engine.Workers, uint64(cfg.StreamEvery.Nanoseconds()), cfg.StreamDepth),
		conns:  map[net.Conn]struct{}{},
	}
	if cfg.Flight.Spans {
		s.flight = telemetry.NewFlightRecorder(cfg.Engine.Workers, cfg.Flight.Depth)
		if eng.dom != nil {
			// With the flight recorder armed, a checked-mode reclaim
			// violation produces a post-mortem bundle instead of the
			// domain's default panic; the violation error is retained
			// (Domain.Violation) and lands in stats.json.
			eng.dom.OnViolation(func(err error) {
				msg := err.Error()
				s.vioMsg.CompareAndSwap(nil, &msg)
				s.vioOnce.Do(func() { s.TriggerDump("reclaim-violation") })
			})
		}
	}
	return s, nil
}

// FlightRecorder exposes the span flight recorder (nil when spans are not
// armed). Safe to read at any time.
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.flight }

// Dumps returns the number of post-mortem bundles written so far.
func (s *Server) Dumps() uint64 { return s.dumps.Load() }

// Engine exposes the storage planes for quiescent inspection (tests, the
// final CLI summary).
func (s *Server) Engine() *Engine { return s.eng }

// Stream exposes the streaming telemetry (safe to read at any time).
func (s *Server) Stream() *telemetry.Stream { return s.stream }

// Start listens and begins serving. The returned server must be stopped
// with Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.start = time.Now()
	if s.flight != nil {
		// Arm span recorders now that the epoch (s.start) exists; traffic
		// has not begun, so the quiescent-only observer install is safe.
		s.eng.armSpans(s.flight, s.start, s.cfg.Flight.tailPolicy())
		s.monStop = make(chan struct{})
		if s.cfg.Flight.SLOP99 > 0 {
			s.wg.Add(1)
			go s.sloMonitor()
		}
	}
	if s.cfg.MetricsAddr != "" {
		hl, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hl
		s.httpSrv = &http.Server{Handler: s.metricsMux()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(hl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// Shutdown closes the listener; anything else is fatal to
				// the metrics plane only.
				_ = err
			}
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the data-plane address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the HTTP address, or nil when disabled.
func (s *Server) MetricsAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.closing.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		id := s.nextConn.Add(1) - 1
		w := s.eng.workers[int(id)%len(s.eng.workers)]
		s.wg.Add(1)
		go s.handleConn(conn, w, id)
	}
}

// handleConn serves one connection bound to one worker. Responses to
// pipelined requests are batched: the output buffer flushes when no more
// input is buffered or when it crosses flushLimit.
//
// connID is the accept-time connection sequence number; with spans armed
// it seeds the request IDs: connID in the top 24 bits, a per-connection
// sequence in the low 28 — 52 bits total, so the ID survives a float64
// round-trip through JSON tooling.
func (s *Server) handleConn(conn net.Conn, w *Worker, connID uint64) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.active.Add(-1)
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	out := make([]byte, 0, 16<<10)
	armed := s.flight != nil
	spanBase := (connID & 0xFFFFFF) << 28
	var reqSeq uint64
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			// EOF, read deadline (shutdown), oversized line: flush what we
			// owe and drop the connection.
			if len(out) > 0 {
				conn.Write(out)
			}
			return
		}
		s.requests.Add(1)
		var tRead, tParse uint64
		if armed {
			tRead = uint64(time.Since(s.start))
		}
		req, perr := ParseRequest(line)
		if armed {
			tParse = uint64(time.Since(s.start))
		}
		reqID := spanBase | (reqSeq & (1<<28 - 1))
		reqSeq++
		if perr != nil {
			s.errors.Add(1)
			out = appendErr(out, perr)
			if armed {
				// A parse failure still gets a span (op 0): errored
				// requests are always tail-kept.
				w.mu.Lock()
				w.sr.Begin(reqID, 0, tRead, tParse-tRead, 0, 0)
				w.sr.End(uint64(time.Since(s.start)), true)
				w.mu.Unlock()
			}
		} else {
			t0 := time.Since(s.start)
			w.mu.Lock()
			var f0, tick uint64
			if w.oc != nil {
				tick, f0 = w.oc.OpClock()
			}
			if armed {
				tLock := uint64(time.Since(s.start))
				w.sr.Begin(reqID, req.Op, tRead, tParse-tRead, tLock-tParse, tick)
			}
			errStart := len(out)
			out = w.Exec(&req, out)
			var fails uint64
			if w.oc != nil {
				_, f1 := w.oc.OpClock()
				fails = f1 - f0
			}
			t1 := time.Since(s.start)
			d := uint64(t1 - t0)
			if armed {
				errResp := len(out) > errStart && out[errStart] == 'E'
				w.sr.End(uint64(t1), errResp)
			}
			w.lat.Observe(d)
			s.stream.Tick(w.id, uint64(t1), d, fails)
			w.mu.Unlock()
		}
		if br.Buffered() == 0 || len(out) >= flushLimit {
			if _, err := conn.Write(out); err != nil {
				return
			}
			out = out[:0]
		}
	}
}

// Shutdown stops accepting, unblocks every connection's pending read (so
// in-flight pipelined batches finish and flush), and waits for all
// connection goroutines and the HTTP plane to drain. After it returns the
// engine is quiescent: final telemetry windows are flushed and
// CheckTables/PoolStats are safe.
func (s *Server) Shutdown(ctx context.Context) error {
	if first := !s.closing.Swap(true); first && s.monStop != nil {
		close(s.monStop)
	}
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if s.httpSrv != nil {
		s.httpSrv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
	// Quiescent now: publish the partial tail windows.
	for _, w := range s.eng.workers {
		s.stream.Flush(w.id)
	}
	return nil
}

// Summary is the quiescent end-of-run report.
type Summary struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Accepted uint64  `json:"conns_accepted"`
	Ops      uint64  `json:"ops"`
	Fails    uint64  `json:"fails"`
	P50NS    float64 `json:"p50_ns"`
	P99NS    float64 `json:"p99_ns"`
	MaxNS    uint64  `json:"max_ns"`
}

// Summarize merges the per-worker service-time histograms. Quiescent only
// (call after Shutdown).
func (s *Server) Summarize() Summary {
	var h telemetry.Histogram
	for _, w := range s.eng.workers {
		h.Merge(&w.lat)
	}
	ops, fails := s.stream.Totals()
	return Summary{
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Accepted: s.accepted.Load(),
		Ops:      ops,
		Fails:    fails,
		P50NS:    h.Quantile(0.50),
		P99NS:    h.Quantile(0.99),
		MaxNS:    h.Max(),
	}
}
