package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config describes one server.
type Config struct {
	// Addr is the TCP data-plane listen address (e.g. "127.0.0.1:7070";
	// port 0 picks a free port).
	Addr string
	// MetricsAddr is the HTTP telemetry listen address ("" disables the
	// endpoint).
	MetricsAddr string

	Engine EngineConfig

	// StreamEvery is the streaming-telemetry window width (default
	// 100ms); StreamDepth the per-core ring capacity in windows (default
	// 120, i.e. 12s of history at the default width).
	StreamEvery time.Duration
	StreamDepth int
}

// Server is one running memtag-serve instance.
type Server struct {
	cfg    Config
	eng    *Engine
	stream *telemetry.Stream
	start  time.Time

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	closing  atomic.Bool
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	nextConn atomic.Uint64

	requests atomic.Uint64 // requests decoded (including errored ones)
	errors   atomic.Uint64 // protocol errors answered with ERR
	accepted atomic.Uint64
	active   atomic.Int64
}

// flushLimit bounds the per-connection output buffer before a forced
// flush, so a deeply pipelined client cannot balloon it.
const flushLimit = 64 << 10

// New builds the engine (including the vacation populate, which runs
// before any traffic) but does not listen yet.
func New(cfg Config) (*Server, error) {
	if cfg.StreamEvery <= 0 {
		cfg.StreamEvery = 100 * time.Millisecond
	}
	if cfg.StreamDepth <= 0 {
		cfg.StreamDepth = 120
	}
	eng, err := newEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		eng:    eng,
		stream: telemetry.NewStream(cfg.Engine.Workers, uint64(cfg.StreamEvery.Nanoseconds()), cfg.StreamDepth),
		conns:  map[net.Conn]struct{}{},
	}, nil
}

// Engine exposes the storage planes for quiescent inspection (tests, the
// final CLI summary).
func (s *Server) Engine() *Engine { return s.eng }

// Stream exposes the streaming telemetry (safe to read at any time).
func (s *Server) Stream() *telemetry.Stream { return s.stream }

// Start listens and begins serving. The returned server must be stopped
// with Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.start = time.Now()
	if s.cfg.MetricsAddr != "" {
		hl, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hl
		s.httpSrv = &http.Server{Handler: s.metricsMux()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(hl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// Shutdown closes the listener; anything else is fatal to
				// the metrics plane only.
				_ = err
			}
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the data-plane address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the HTTP address, or nil when disabled.
func (s *Server) MetricsAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.closing.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		id := s.nextConn.Add(1) - 1
		w := s.eng.workers[int(id)%len(s.eng.workers)]
		s.wg.Add(1)
		go s.handleConn(conn, w)
	}
}

// handleConn serves one connection bound to one worker. Responses to
// pipelined requests are batched: the output buffer flushes when no more
// input is buffered or when it crosses flushLimit.
func (s *Server) handleConn(conn net.Conn, w *Worker) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.active.Add(-1)
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	out := make([]byte, 0, 16<<10)
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			// EOF, read deadline (shutdown), oversized line: flush what we
			// owe and drop the connection.
			if len(out) > 0 {
				conn.Write(out)
			}
			return
		}
		s.requests.Add(1)
		req, perr := ParseRequest(line)
		if perr != nil {
			s.errors.Add(1)
			out = appendErr(out, perr)
		} else {
			t0 := time.Since(s.start)
			w.mu.Lock()
			var f0 uint64
			if w.oc != nil {
				_, f0 = w.oc.OpClock()
			}
			out = w.Exec(&req, out)
			var fails uint64
			if w.oc != nil {
				_, f1 := w.oc.OpClock()
				fails = f1 - f0
			}
			t1 := time.Since(s.start)
			d := uint64(t1 - t0)
			w.lat.Observe(d)
			s.stream.Tick(w.id, uint64(t1), d, fails)
			w.mu.Unlock()
		}
		if br.Buffered() == 0 || len(out) >= flushLimit {
			if _, err := conn.Write(out); err != nil {
				return
			}
			out = out[:0]
		}
	}
}

// Shutdown stops accepting, unblocks every connection's pending read (so
// in-flight pipelined batches finish and flush), and waits for all
// connection goroutines and the HTTP plane to drain. After it returns the
// engine is quiescent: final telemetry windows are flushed and
// CheckTables/PoolStats are safe.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if s.httpSrv != nil {
		s.httpSrv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
	// Quiescent now: publish the partial tail windows.
	for _, w := range s.eng.workers {
		s.stream.Flush(w.id)
	}
	return nil
}

// Summary is the quiescent end-of-run report.
type Summary struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Accepted uint64  `json:"conns_accepted"`
	Ops      uint64  `json:"ops"`
	Fails    uint64  `json:"fails"`
	P50NS    float64 `json:"p50_ns"`
	P99NS    float64 `json:"p99_ns"`
	MaxNS    uint64  `json:"max_ns"`
}

// Summarize merges the per-worker service-time histograms. Quiescent only
// (call after Shutdown).
func (s *Server) Summarize() Summary {
	var h telemetry.Histogram
	for _, w := range s.eng.workers {
		h.Merge(&w.lat)
	}
	ops, fails := s.stream.Totals()
	return Summary{
		Requests: s.requests.Load(),
		Errors:   s.errors.Load(),
		Accepted: s.accepted.Load(),
		Ops:      ops,
		Fails:    fails,
		P50NS:    h.Quantile(0.50),
		P99NS:    h.Quantile(0.99),
		MaxNS:    h.Max(),
	}
}
