package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// The serve hot path — request decode, structure op, response encode —
// must be allocation-free in steady state, with streaming telemetry
// attached and a concurrent reader scraping it. These pins are the serving
// analogue of the backend AllocsPerRun budgets.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s allocates %.1f/op, want 0", name, n)
	}
}

func TestServeHotPathAllocFree(t *testing.T) {
	eng, err := newEngine(EngineConfig{Workers: 1, MemBytes: 64 << 20, Tagged: true, Relations: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := eng.workers[0]
	out := make([]byte, 0, 4096)

	// Warm up: materialize the KV key (so PUT is an update, GET a hit),
	// the set key, and a customer with one reservation (so BILL walks a
	// stable path).
	exec := func(line string) {
		req, err := ParseRequest([]byte(line))
		if err != nil {
			t.Fatalf("warmup %q: %v", line, err)
		}
		out = w.Exec(&req, out[:0])
	}
	exec("PUT 42 7\n")
	exec("SADD 42\n")
	exec("RESV 3 0 5\n")

	hot := []struct {
		name string
		line []byte
	}{
		{"GET", []byte("GET 42\n")},
		{"PUT-update", []byte("PUT 42 8\n")},
		{"DEL-miss", []byte("DEL 9999\n")},
		{"SADD-dup", []byte("SADD 42\n")},
		{"SHAS", []byte("SHAS 42\n")},
		{"SREM-miss", []byte("SREM 9999\n")},
		{"BILL", []byte("BILL 3\n")},
		{"QPRICE", []byte("QPRICE 0 5\n")},
		{"PING", []byte("PING\n")},
	}
	for _, h := range hot {
		// One warm run lets read/write-set buffers reach steady capacity.
		req, err := ParseRequest(h.line)
		if err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
		out = w.Exec(&req, out[:0])
		assertZeroAllocs(t, "decode+exec+encode "+h.name, func() {
			r, err := ParseRequest(h.line)
			if err != nil {
				t.Fatal(err)
			}
			out = w.Exec(&r, out[:0])
		})
	}
}

// TestServeHotPathAllocFreeWithStreaming repeats the pin with the full
// telemetry spine the server loop runs — Stream.Tick per request and the
// worker latency histogram — while a concurrent reader snapshots the
// stream the whole time.
func TestServeHotPathAllocFreeWithStreaming(t *testing.T) {
	eng, err := newEngine(EngineConfig{Workers: 1, MemBytes: 64 << 20, Tagged: true})
	if err != nil {
		t.Fatal(err)
	}
	w := eng.workers[0]
	stream := telemetry.NewStream(1, 1000, 16)
	out := make([]byte, 0, 4096)
	line := []byte("PUT 42 7\n")

	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]telemetry.StreamWindow, 0, stream.Depth())
		for !stop.Load() {
			buf, _ = stream.ReadCore(0, buf)
			stream.Totals()
		}
	}()

	clock := uint64(0)
	serveOne := func() {
		r, err := ParseRequest(line)
		if err != nil {
			t.Fatal(err)
		}
		var f0 uint64
		if w.oc != nil {
			_, f0 = w.oc.OpClock()
		}
		out = w.Exec(&r, out[:0])
		var fails uint64
		if w.oc != nil {
			_, f1 := w.oc.OpClock()
			fails = f1 - f0
		}
		clock += 130 // crosses a window boundary every ~8 requests
		w.lat.Observe(130)
		stream.Tick(0, clock, 130, fails)
	}
	serveOne() // warm
	assertZeroAllocs(t, "serve+stream with reader attached", serveOne)
	stop.Store(true)
	<-readerDone
	if ops, _ := stream.Totals(); ops < 200 {
		t.Fatalf("streamed ops = %d, pin was vacuous", ops)
	}
}

// TestSpanRecordAllocFree pins the tracing hot path with sampling armed:
// span begin/end (kept and unkept), the tail-sample decision, and the
// flight-recorder publish must all be allocation-free.
func TestSpanRecordAllocFree(t *testing.T) {
	fr := telemetry.NewFlightRecorder(1, 64)
	rec := telemetry.NewSpanRecorder(fr, 0, time.Now(), telemetry.TailPolicy{LatencyNS: 1000, Attempts: 4})

	id := uint64(0)
	// Unkept path: fast span, one committed attempt.
	assertZeroAllocs(t, "span record (not kept)", func() {
		id++
		rec.Begin(id, 1, 10, 1, 1, 99)
		rec.TxAttemptStart()
		rec.TxAttemptEnd(true, false)
		if rec.End(20, false) {
			t.Fatal("fast span was kept")
		}
	})
	// Kept path: latency breach + retries + overflow, exemplar publish.
	assertZeroAllocs(t, "span record (tail-kept)", func() {
		id++
		rec.Begin(id, 1, 10, 1, 1, 99)
		for a := 0; a < 5; a++ {
			rec.TxAttemptStart()
			rec.TxTagOverflow()
			rec.TxAttemptEnd(a == 4, false)
		}
		if !rec.End(5000, false) {
			t.Fatal("slow span was not kept")
		}
	})
	if recorded, kept := fr.Totals(); recorded == 0 || kept == 0 {
		t.Fatalf("pin was vacuous: recorded=%d kept=%d", recorded, kept)
	}
}

// TestServeHotPathAllocFreeWithSpans is the full served hot path with the
// flight recorder armed: decode, span begin (with STM attempt observation
// wired into both TMs), exec, span end + flight publish, latency +
// stream tick — 0 allocs/op, while a snapshot reader runs.
func TestServeHotPathAllocFreeWithSpans(t *testing.T) {
	eng, err := newEngine(EngineConfig{Workers: 1, MemBytes: 64 << 20, Tagged: true, Relations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fr := telemetry.NewFlightRecorder(1, 64)
	eng.armSpans(fr, time.Now(), telemetry.TailPolicy{LatencyNS: 1, Attempts: 4})
	w := eng.workers[0]
	stream := telemetry.NewStream(1, 1000, 16)
	out := make([]byte, 0, 4096)
	line := []byte("PUT 42 7\n")

	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for !stop.Load() {
			fr.Snapshot()
			fr.Exemplar(0)
			fr.Totals()
		}
	}()

	clock := uint64(0)
	id := uint64(0)
	serveOne := func() {
		r, err := ParseRequest(line)
		if err != nil {
			t.Fatal(err)
		}
		var f0, tick uint64
		if w.oc != nil {
			tick, f0 = w.oc.OpClock()
		}
		id++
		w.sr.Begin(id, r.Op, clock, 1, 1, tick)
		out = w.Exec(&r, out[:0])
		var fails uint64
		if w.oc != nil {
			_, f1 := w.oc.OpClock()
			fails = f1 - f0
		}
		clock += 130
		w.sr.End(clock, false)
		w.lat.Observe(130)
		stream.Tick(0, clock, 130, fails)
	}
	serveOne() // warm
	assertZeroAllocs(t, "serve+spans+flight with snapshot reader", serveOne)
	stop.Store(true)
	<-readerDone
	if recorded, kept := fr.Totals(); recorded < 200 || kept == 0 {
		t.Fatalf("pin was vacuous: recorded=%d kept=%d (TailLatency=1 keeps everything)", recorded, kept)
	}
}
