package serve

import (
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// The serve hot path — request decode, structure op, response encode —
// must be allocation-free in steady state, with streaming telemetry
// attached and a concurrent reader scraping it. These pins are the serving
// analogue of the backend AllocsPerRun budgets.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s allocates %.1f/op, want 0", name, n)
	}
}

func TestServeHotPathAllocFree(t *testing.T) {
	eng, err := newEngine(EngineConfig{Workers: 1, MemBytes: 64 << 20, Tagged: true, Relations: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := eng.workers[0]
	out := make([]byte, 0, 4096)

	// Warm up: materialize the KV key (so PUT is an update, GET a hit),
	// the set key, and a customer with one reservation (so BILL walks a
	// stable path).
	exec := func(line string) {
		req, err := ParseRequest([]byte(line))
		if err != nil {
			t.Fatalf("warmup %q: %v", line, err)
		}
		out = w.Exec(&req, out[:0])
	}
	exec("PUT 42 7\n")
	exec("SADD 42\n")
	exec("RESV 3 0 5\n")

	hot := []struct {
		name string
		line []byte
	}{
		{"GET", []byte("GET 42\n")},
		{"PUT-update", []byte("PUT 42 8\n")},
		{"DEL-miss", []byte("DEL 9999\n")},
		{"SADD-dup", []byte("SADD 42\n")},
		{"SHAS", []byte("SHAS 42\n")},
		{"SREM-miss", []byte("SREM 9999\n")},
		{"BILL", []byte("BILL 3\n")},
		{"QPRICE", []byte("QPRICE 0 5\n")},
		{"PING", []byte("PING\n")},
	}
	for _, h := range hot {
		// One warm run lets read/write-set buffers reach steady capacity.
		req, err := ParseRequest(h.line)
		if err != nil {
			t.Fatalf("%s: %v", h.name, err)
		}
		out = w.Exec(&req, out[:0])
		assertZeroAllocs(t, "decode+exec+encode "+h.name, func() {
			r, err := ParseRequest(h.line)
			if err != nil {
				t.Fatal(err)
			}
			out = w.Exec(&r, out[:0])
		})
	}
}

// TestServeHotPathAllocFreeWithStreaming repeats the pin with the full
// telemetry spine the server loop runs — Stream.Tick per request and the
// worker latency histogram — while a concurrent reader snapshots the
// stream the whole time.
func TestServeHotPathAllocFreeWithStreaming(t *testing.T) {
	eng, err := newEngine(EngineConfig{Workers: 1, MemBytes: 64 << 20, Tagged: true})
	if err != nil {
		t.Fatal(err)
	}
	w := eng.workers[0]
	stream := telemetry.NewStream(1, 1000, 16)
	out := make([]byte, 0, 4096)
	line := []byte("PUT 42 7\n")

	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]telemetry.StreamWindow, 0, stream.Depth())
		for !stop.Load() {
			buf, _ = stream.ReadCore(0, buf)
			stream.Totals()
		}
	}()

	clock := uint64(0)
	serveOne := func() {
		r, err := ParseRequest(line)
		if err != nil {
			t.Fatal(err)
		}
		var f0 uint64
		if w.oc != nil {
			_, f0 = w.oc.OpClock()
		}
		out = w.Exec(&r, out[:0])
		var fails uint64
		if w.oc != nil {
			_, f1 := w.oc.OpClock()
			fails = f1 - f0
		}
		clock += 130 // crosses a window boundary every ~8 requests
		w.lat.Observe(130)
		stream.Tick(0, clock, 130, fails)
	}
	serveOne() // warm
	assertZeroAllocs(t, "serve+stream with reader attached", serveOne)
	stop.Store(true)
	<-readerDone
	if ops, _ := stream.Totals(); ops < 200 {
		t.Fatalf("streamed ops = %d, pin was vacuous", ops)
	}
}
