package skiplist

import "repro/internal/core"

// RangeQuery returns an atomic snapshot of the keys in [lo, hi], the
// paper's cheap lock-free snapshot applied to the skip list's
// authoritative bottom level: the traversal tags every node from the
// predecessor of lo through the end of the range *without untagging*, so
// one final validation proves the whole range was simultaneously linked.
// Marked (logically deleted) nodes are traversed but their keys are not
// reported; the validation still covers them, so a snapshot can never mix
// a node's pre-delete and post-delete states.
//
// ok is false when the range exceeds the tag budget, validation kept
// failing for maxTries attempts, or the list is the untagged CAS baseline
// (which has no snapshot mechanism) — callers then fall back to a
// non-atomic scan such as Keys.
func (s *List) RangeQuery(th core.Thread, lo, hi uint64, maxTries int) (keys []uint64, ok bool) {
	if !s.tagged {
		return nil, false
	}
	if lo > hi {
		return nil, true
	}
attempt:
	for try := 0; try < maxTries; try++ {
		keys = keys[:0]
		th.ClearTagSet()

		// Hand-over-hand prefix on the bottom level up to the predecessor
		// of lo.
		pred := s.head
		if !th.AddTag(pred, nodeBytes) {
			th.ClearTagSet()
			return nil, false
		}
		curr := core.Addr(clearMark(th.Load(nextAddr(pred, 0))))
		if !th.AddTag(curr, nodeBytes) || !th.Validate() {
			th.ClearTagSet()
			continue attempt
		}
		for keyOf(th, curr) < lo {
			succ := core.Addr(clearMark(th.Load(nextAddr(curr, 0))))
			if !th.AddTag(succ, nodeBytes) {
				th.ClearTagSet()
				return nil, false
			}
			if !th.Validate() {
				th.ClearTagSet()
				continue attempt
			}
			th.RemoveTag(pred, nodeBytes)
			pred = curr
			curr = succ
		}

		// Range body: keep every node tagged until the final validation.
		for {
			k := keyOf(th, curr)
			if k > hi || k == tailKey {
				break
			}
			nextW := th.Load(nextAddr(curr, 0))
			if !isMarked(nextW) {
				keys = append(keys, k)
			}
			succ := core.Addr(clearMark(nextW))
			if !th.AddTag(succ, nodeBytes) {
				// Tag budget exhausted: this range cannot be snapshotted.
				th.ClearTagSet()
				return nil, false
			}
			if !th.Validate() {
				th.ClearTagSet()
				continue attempt
			}
			curr = succ
		}
		// Every node from pred-of-lo through the node after the range is
		// tagged; one validation linearizes the whole snapshot.
		if th.Validate() {
			th.ClearTagSet()
			return keys, true
		}
		th.ClearTagSet()
	}
	return nil, false
}
