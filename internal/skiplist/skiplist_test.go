package skiplist

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

func forAllSkip(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, s intset.Set)) {
	backends := []struct {
		name string
		mk   func(int) core.Memory
	}{
		{"vtags", func(n int) core.Memory { return vtags.New(32<<20, n) }},
		{"machine", func(n int) core.Memory {
			cfg := machine.DefaultConfig(n)
			cfg.MemBytes = 32 << 20
			return machine.New(cfg)
		}},
	}
	variants := []struct {
		name string
		mk   func(core.Memory) intset.Set
	}{
		{"CAS", func(m core.Memory) intset.Set { return New(m) }},
		{"VAS", func(m core.Memory) intset.Set { return NewVAS(m) }},
	}
	for _, b := range backends {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, v.mk(mem))
			})
		}
	}
}

func TestSkipBasic(t *testing.T) {
	forAllSkip(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if s.Contains(th, 5) || s.Delete(th, 5) {
			t.Fatal("empty set misbehaves")
		}
		if !s.Insert(th, 5) || s.Insert(th, 5) {
			t.Fatal("insert semantics")
		}
		if !s.Contains(th, 5) {
			t.Fatal("inserted key missing")
		}
		if !s.Delete(th, 5) || s.Delete(th, 5) || s.Contains(th, 5) {
			t.Fatal("delete semantics")
		}
	})
}

func TestSkipTowerHeights(t *testing.T) {
	// heightForKey must be deterministic, in range, and roughly geometric.
	counts := make([]int, MaxLevel+1)
	for k := uint64(1); k <= 4096; k++ {
		h := heightForKey(k)
		if h != heightForKey(k) {
			t.Fatal("height not deterministic")
		}
		if h < 1 || h > MaxLevel {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	if counts[1] < 1500 || counts[1] > 2600 {
		t.Fatalf("height-1 frequency %d implausible for geometric(1/2)", counts[1])
	}
	if counts[2] < 700 || counts[2] > 1400 {
		t.Fatalf("height-2 frequency %d implausible", counts[2])
	}
}

func TestSkipSequentialEquivalence(t *testing.T) {
	forAllSkip(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 2500, 128, 21)
	})
}

func TestSkipSortedEnumeration(t *testing.T) {
	mem := vtags.New(32<<20, 1)
	s := NewVAS(mem)
	th := mem.Thread(0)
	for _, k := range []uint64{50, 10, 30, 20, 40} {
		s.Insert(th, k)
	}
	s.Delete(th, 30)
	keys := s.Keys(th)
	want := []uint64{10, 20, 40, 50}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestSkipDisjointConcurrent(t *testing.T) {
	forAllSkip(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 300)
	})
}

func TestSkipMixedConcurrent(t *testing.T) {
	forAllSkip(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 250, 32)
	})
}

func TestSkipHighContentionTinyRange(t *testing.T) {
	forAllSkip(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 150, 3)
	})
}

func TestVASVariantUsesTags(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 32 << 20
	m := machine.New(cfg)
	s := NewVAS(m)
	th := m.Thread(0)
	for k := uint64(1); k <= 30; k++ {
		s.Insert(th, k)
	}
	snap := m.Snapshot()
	if snap.VASAttempts == 0 || snap.TagAdds == 0 {
		t.Fatal("VAS skip list issued no tagged operations")
	}
}

func TestBaselineVariantUsesNoTags(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 32 << 20
	m := machine.New(cfg)
	s := New(m)
	th := m.Thread(0)
	for k := uint64(1); k <= 30; k++ {
		s.Insert(th, k)
	}
	if snap := m.Snapshot(); snap.VASAttempts != 0 || snap.TagAdds != 0 {
		t.Fatal("baseline skip list issued tagged operations")
	}
}
