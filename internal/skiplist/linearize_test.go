package skiplist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

// TestLinearizableVTags checks both skip-list flavours (CAS baseline and
// tagged VAS) under schedule fuzzing with forced spurious evictions.
func TestLinearizableVTags(t *testing.T) {
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"cas", func(m core.Memory) intset.Set { return New(m) }},
		{"vas", func(m core.Memory) intset.Set { return NewVAS(m) }},
	}
	newMem := func(threads int) core.Memory { return vtags.New(16<<20, threads) }
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				fuzz := schedfuzz.Default(seed)
				intset.CheckLinearizable(t, newMem, v.build, intset.LinearizeConfig{
					Threads:      4,
					OpsPerThread: intset.LinearizeOps(300),
					KeyRange:     16,
					Prefill:      8,
					Seed:         seed,
					Fuzz:         &fuzz,
				})
			}
		})
	}
}
