// Package skiplist implements a lock-free skip list ordered set over
// simulated memory, in the Fraser/Herlihy-Shavit style (per-level mark
// bits, bottom level authoritative), in two flavours:
//
//   - the CAS baseline, and
//   - the paper's VAS flavour (Section 1 notes tagging applies to
//     skip lists — where OPTIK-style version locks cannot): every pointer
//     swing tags the nodes it depends on and commits with
//     validate-and-swap, so contended failures are detected locally
//     instead of through coherence traffic.
//
// A mark-free hand-over-hand variant (like the tagged linked list) would
// need a deletion protocol that atomically severs a tower's incoming
// pointers on every level with one invalidation; the paper leaves that
// design open, so this package keeps marks for correctness and uses tags
// for the fast-fail acceleration, mirroring the paper's Algorithm 1.
package skiplist

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
)

// MaxLevel is the tower height cap (supports ~2^20 keys comfortably).
const MaxLevel = 12

// Node layout (words).
const (
	fKey    = 0
	fHeight = 1
	fLinked = 2 // linking handshake, see linkDone/linkHandoff
	fNext   = 3 // MaxLevel next pointers, mark bit 0 marks the node at that level
)

// fLinked states (only used under reclamation). Exactly two parties touch
// the word — the inserter and the unique deleter (bottom-mark winner) — so
// one CAS each decides which of them retires the tower.
const (
	linkBusy    uint64 = 0 // inserter may still swing upper levels
	linkDone    uint64 = 1 // inserter finished: the deleter retires
	linkHandoff uint64 = 2 // deleter found the tower mid-link: the inserter retires
)

const (
	headKey uint64 = 0
	tailKey uint64 = ^uint64(0)
)

func isMarked(w uint64) bool    { return w&1 != 0 }
func withMark(w uint64) uint64  { return w | 1 }
func clearMark(w uint64) uint64 { return w &^ 1 }

// List is a concurrent skip list set.
type List struct {
	mem    core.Memory
	head   core.Addr
	tagged bool
	pool   *reclaim.Pool
}

var _ intset.Set = (*List)(nil)

// nodeWords is the allocation size for a full-height node; shorter towers
// still allocate full height for layout uniformity (one node, one or more
// private lines, as the paper maps nodes to lines).
const nodeWords = fNext + MaxLevel

const nodeBytes = nodeWords * core.WordSize

// NodeWords is the reclamation pool object size for SetReclaim.
const NodeWords = nodeWords

// New creates an empty baseline (CAS) skip list.
func New(mem core.Memory) *List { return newList(mem, false) }

// NewVAS creates an empty tagged (VAS) skip list.
func NewVAS(mem core.Memory) *List { return newList(mem, true) }

func newList(mem core.Memory, tagged bool) *List {
	th := mem.Thread(0)
	tail := th.Alloc(nodeWords)
	th.Store(tail.Plus(fKey), tailKey)
	th.Store(tail.Plus(fHeight), MaxLevel)
	head := th.Alloc(nodeWords)
	th.Store(head.Plus(fKey), headKey)
	th.Store(head.Plus(fHeight), MaxLevel)
	for l := 0; l < MaxLevel; l++ {
		th.Store(head.Plus(fNext+l), uint64(tail))
	}
	return &List{mem: mem, head: head, tagged: tagged}
}

// Tagged reports whether this list uses VAS.
func (s *List) Tagged() bool { return s.tagged }

// SetReclaim wires a reclamation pool (object size nodeWords) to the VAS
// flavour: towers are allocated from it and the deleting thread retires a
// tower once it is unlinked at every level. The CAS baseline must not
// recycle — its plain compare-and-swap swings are ABA-vulnerable the
// moment an address can reappear — so wiring it panics. Only call while
// quiescent, before operations.
func (s *List) SetReclaim(p *reclaim.Pool) {
	if !s.tagged {
		panic("skiplist: reclamation requires the VAS flavour (CAS swings are ABA-unsafe)")
	}
	s.pool = p
}

func (s *List) enter(th core.Thread) {
	if s.pool != nil {
		s.pool.Enter(th)
	}
}

func (s *List) leave(th core.Thread) {
	if s.pool != nil {
		s.pool.Exit(th)
	}
}

func keyOf(th core.Thread, n core.Addr) uint64 { return th.Load(n.Plus(fKey)) }
func nextAddr(n core.Addr, level int) core.Addr {
	return n.Plus(fNext + level)
}

// heightForKey derives a deterministic geometric(1/2) tower height from the
// key, making runs reproducible without shared RNG state.
func heightForKey(key uint64) int {
	h := key * 0x9e3779b97f4a7c15
	h ^= h >> 32
	h = h*0xbf58476d1ce4e5b9 + 1
	lvl := 1
	for h&1 == 1 && lvl < MaxLevel {
		lvl++
		h >>= 1
	}
	return lvl
}

// swing performs one pointer change: plain CAS in the baseline; in the
// tagged flavour it tags the owning node, re-checks the expected value,
// and commits with VAS (fail-fast, Algorithm 1 style).
func (s *List) swing(th core.Thread, owner core.Addr, slot core.Addr, old, new uint64) bool {
	if !s.tagged {
		return th.CAS(slot, old, new)
	}
	th.AddTag(owner, nodeBytes)
	if th.Load(slot) != old {
		th.ClearTagSet()
		return false
	}
	ok := th.VAS(slot, new)
	th.ClearTagSet()
	return ok
}

// find locates the insertion window for key on every level, helping unlink
// marked nodes. It returns the per-level predecessors and successors and
// whether an unmarked bottom-level node holds key.
func (s *List) find(th core.Thread, key uint64, preds, succs *[MaxLevel]core.Addr) bool {
retry:
	for {
		pred := s.head
		for level := MaxLevel - 1; level >= 0; level-- {
			curr := core.Addr(clearMark(th.Load(nextAddr(pred, level))))
			for {
				nextW := th.Load(nextAddr(curr, level))
				for isMarked(nextW) {
					// curr is deleted at this level: unlink it.
					if !s.swing(th, pred, nextAddr(pred, level), uint64(curr), clearMark(nextW)) {
						continue retry
					}
					curr = core.Addr(clearMark(nextW))
					nextW = th.Load(nextAddr(curr, level))
				}
				if keyOf(th, curr) < key {
					pred = curr
					curr = core.Addr(clearMark(nextW))
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		n := succs[0]
		return keyOf(th, n) == key && !isMarked(th.Load(nextAddr(n, 0)))
	}
}

// Insert adds key, reporting whether it was absent.
func (s *List) Insert(th core.Thread, key uint64) bool {
	s.enter(th)
	defer s.leave(th)
	height := heightForKey(key)
	var preds, succs [MaxLevel]core.Addr
	for {
		if s.find(th, key, &preds, &succs) {
			return false
		}
		var node core.Addr
		if s.pool != nil {
			node = s.pool.Alloc(th)
			// A recycled tower may carry a stale linked flag; clear it
			// before the node becomes reachable.
			th.Store(node.Plus(fLinked), linkBusy)
		} else {
			node = th.Alloc(nodeWords)
		}
		th.Store(node.Plus(fKey), key)
		th.Store(node.Plus(fHeight), uint64(height))
		for l := 0; l < height; l++ {
			th.Store(nextAddr(node, l), uint64(succs[l]))
		}
		// Linearization: link the bottom level.
		if !s.swing(th, preds[0], nextAddr(preds[0], 0), uint64(succs[0]), uint64(node)) {
			if s.pool != nil {
				s.pool.FreePrivate(th, node) // never published
			}
			continue
		}
		// Best-effort upper-level linking. finishLink marks the tower safe
		// to retire: once the flag reads linkDone, no insert-side swing of
		// this node is still in flight (see the deleter's second find pass).
		for l := 1; l < height; l++ {
			for {
				nextW := th.Load(nextAddr(node, l))
				if isMarked(nextW) {
					s.finishLink(th, node)
					return true // concurrently deleted; done
				}
				if core.Addr(clearMark(nextW)) != succs[l] {
					// Refresh our own forward pointer first.
					if !th.CAS(nextAddr(node, l), nextW, uint64(succs[l])) {
						continue
					}
				}
				if s.swing(th, preds[l], nextAddr(preds[l], l), uint64(succs[l]), uint64(node)) {
					break
				}
				if s.find(th, key, &preds, &succs) == false || succs[0] != node {
					s.finishLink(th, node)
					return true // deleted while linking
				}
			}
		}
		s.finishLink(th, node)
		return true
	}
}

// finishLink publishes that this inserter will issue no further pointer
// swings for node — or, if the unique deleter already abandoned the tower
// to us (linkHandoff), severs the remaining links and retires it. Writing
// the flag is safe even though the deleter may already have retired the
// node: the inserter entered its operation before the node was published,
// so the free is held until this operation exits. Only needed under
// reclamation.
func (s *List) finishLink(th core.Thread, node core.Addr) {
	if s.pool == nil {
		return
	}
	if th.CAS(node.Plus(fLinked), linkBusy, linkDone) {
		return
	}
	// Our swings have stopped, so one more find pass severs any link made
	// after the deleter's pass, and the tower is ours to retire.
	var preds, succs [MaxLevel]core.Addr
	s.find(th, keyOf(th, node), &preds, &succs)
	s.pool.Retire(th, node)
}

// maybeRetire hands the fully-unlinked tower to the pool. The caller won
// the bottom-level mark, so it is the unique deleter; a find pass has
// already unlinked every level it could reach. The remaining hazard is an
// in-flight Insert of this very node still linking upper levels: the
// linked flag only reads linkDone after the inserter's last swing, so
// observing it and then re-running find guarantees every link has been
// severed. If the inserter is still busy, retirement is handed to it via
// linkHandoff — exactly one of the two parties wins its CAS and retires.
func (s *List) maybeRetire(th core.Thread, node core.Addr, preds, succs *[MaxLevel]core.Addr) {
	if s.pool == nil {
		return
	}
	key := keyOf(th, node)
	if int(th.Load(node.Plus(fHeight))) > 1 {
		if th.Load(node.Plus(fLinked)) != linkDone {
			if th.CAS(node.Plus(fLinked), linkBusy, linkHandoff) {
				return // the inserter will sever its links and retire
			}
			// CAS failed: the inserter just finished and will never swing
			// again — retire here like the linkDone path.
		}
		s.find(th, key, preds, succs) // sever any links made before the flag
	}
	s.pool.Retire(th, node)
}

// Delete removes key, reporting whether it was present.
func (s *List) Delete(th core.Thread, key uint64) bool {
	s.enter(th)
	defer s.leave(th)
	var preds, succs [MaxLevel]core.Addr
	if !s.find(th, key, &preds, &succs) {
		return false
	}
	node := succs[0]
	height := int(th.Load(node.Plus(fHeight)))
	// Mark the upper levels top-down.
	for l := height - 1; l >= 1; l-- {
		for {
			nextW := th.Load(nextAddr(node, l))
			if isMarked(nextW) {
				break
			}
			s.swing(th, node, nextAddr(node, l), nextW, withMark(nextW))
		}
	}
	// Marking the bottom level decides who deleted the key.
	for {
		nextW := th.Load(nextAddr(node, 0))
		if isMarked(nextW) {
			return false
		}
		if s.swing(th, node, nextAddr(node, 0), nextW, withMark(nextW)) {
			s.find(th, key, &preds, &succs) // physical unlink via helping
			s.maybeRetire(th, node, &preds, &succs)
			return true
		}
	}
}

// Contains reports whether key is present (wait-free traversal; the bottom
// level is authoritative, upper levels only steer the descent).
func (s *List) Contains(th core.Thread, key uint64) bool {
	s.enter(th)
	defer s.leave(th)
	pred := s.head
	var curr core.Addr
	for level := MaxLevel - 1; level >= 0; level-- {
		curr = core.Addr(clearMark(th.Load(nextAddr(pred, level))))
		for keyOf(th, curr) < key {
			pred = curr
			curr = core.Addr(clearMark(th.Load(nextAddr(curr, level))))
		}
	}
	return keyOf(th, curr) == key && !isMarked(th.Load(nextAddr(curr, 0)))
}

// Keys enumerates the set in order while quiescent.
func (s *List) Keys(th core.Thread) []uint64 {
	var out []uint64
	curr := core.Addr(clearMark(th.Load(nextAddr(s.head, 0))))
	for keyOf(th, curr) != tailKey {
		if !isMarked(th.Load(nextAddr(curr, 0))) {
			out = append(out, keyOf(th, curr))
		}
		curr = core.Addr(clearMark(th.Load(nextAddr(curr, 0))))
	}
	return out
}
