package skiplist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

func TestRangeQueryBasic(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := NewVAS(mem)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		s.Insert(th, k)
	}
	keys, ok := s.RangeQuery(th, 15, 45, 8)
	if !ok {
		t.Fatal("uncontended range query failed")
	}
	want := []uint64{20, 30, 40}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if th.TagCount() != 0 {
		t.Fatal("range query leaked tags")
	}
}

func TestRangeQueryEdges(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := NewVAS(mem)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30} {
		s.Insert(th, k)
	}
	if keys, ok := s.RangeQuery(th, 31, 99, 8); !ok || len(keys) != 0 {
		t.Fatalf("empty range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 50, 40, 8); !ok || len(keys) != 0 {
		t.Fatalf("inverted range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 10, 30, 8); !ok || len(keys) != 3 {
		t.Fatalf("inclusive bounds: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 1, ^uint64(0)-1, 8); !ok || len(keys) != 3 {
		t.Fatalf("full range: %v ok=%v", keys, ok)
	}
}

func TestRangeQueryBaselineAndBudget(t *testing.T) {
	// The untagged CAS baseline has no snapshot mechanism.
	mem := vtags.New(1<<20, 1)
	s := New(mem)
	th := mem.Thread(0)
	s.Insert(th, 10)
	if _, ok := s.RangeQuery(th, 1, 99, 8); ok {
		t.Fatal("untagged baseline claimed an atomic range query")
	}
	// A range exceeding the tag budget must report ok=false, not spin.
	tiny := vtags.New(1<<20, 1, vtags.WithMaxTags(4))
	s2 := NewVAS(tiny)
	th2 := tiny.Thread(0)
	for k := uint64(1); k <= 20; k++ {
		s2.Insert(th2, k)
	}
	if _, ok := s2.RangeQuery(th2, 1, 20, 4); ok {
		t.Fatal("range beyond tag budget reported atomic success")
	}
	if th2.TagCount() != 0 {
		t.Fatal("failed range query leaked tags")
	}
}

// TestSnapshotLinearizable checks histories mixing point ops with atomic
// range scans and whole-set snapshots against the whole-set sequential
// model, under schedule fuzzing with forced spurious evictions.
func TestSnapshotLinearizable(t *testing.T) {
	newMem := func(threads int) core.Memory {
		// Scans tag every node in the range; give the tag set room for the
		// whole 16-key universe plus sentinels.
		return vtags.New(16<<20, threads, vtags.WithMaxTags(64))
	}
	build := func(m core.Memory) intset.Set { return NewVAS(m) }
	for seed := int64(1); seed <= 2; seed++ {
		fuzz := schedfuzz.Default(seed)
		intset.CheckSnapshotLinearizable(t, newMem, build, intset.SnapshotConfig{
			Threads:      3,
			OpsPerThread: intset.LinearizeOps(90),
			KeyRange:     16,
			Prefill:      6,
			Seed:         seed,
			Fuzz:         &fuzz,
		})
	}
}
