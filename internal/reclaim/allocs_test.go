package reclaim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
	"repro/internal/vtags"
)

// The retire/free pipeline sits on every structure's unlink path, so its
// steady state must be host-allocation-free on both backends and under both
// policies: the pending ring and free caches are preallocated, and telemetry
// histograms update in place.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

// cycle runs one structure-op-shaped round trip: enter, alloc (recycling in
// steady state), publish, retire, exit.
func cycle(th core.Thread, p *reclaim.Pool) {
	p.Enter(th)
	a := p.Alloc(th)
	th.Store(a, 1)
	p.Retire(th, a)
	p.Exit(th)
}

func testPipelineAllocFree(t *testing.T, mem core.Memory, d *reclaim.Domain, th core.Thread) {
	t.Helper()
	for _, policy := range []reclaim.Policy{reclaim.PolicyImmediate, reclaim.PolicyEpoch} {
		p := reclaim.NewPool(d, 2, policy)
		p.SetTelemetry(telemetry.NewSet(mem.NumThreads()))
		// Warm up: preallocated rings filled, free list primed so Alloc
		// recycles from here on.
		for i := 0; i < 3*64; i++ {
			cycle(th, p)
		}
		before := p.Stats().FreshAllocs
		assertZeroAllocs(t, "enter/alloc/retire/exit ("+policy.String()+")", func() { cycle(th, p) })
		if p.Stats().FreshAllocs != before {
			t.Fatalf("%v: steady state took fresh allocations — free list starved", policy)
		}
		assertZeroAllocs(t, "Scan ("+policy.String()+")", func() { p.Scan(th) })
	}
	// Tag announce/retract via the backend, with the domain attached.
	a := mem.Alloc(core.WordsPerLine)
	th.Store(a, 1)
	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet (announced)", func() {
		if !th.AddTag(a, core.LineSize) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
}

func TestPipelineAllocFreeVtags(t *testing.T) {
	m := vtags.New(1<<20, 2)
	d := reclaim.NewDomainFor(m)
	m.SetReclaim(d)
	testPipelineAllocFree(t, m, d, m.Thread(0))
}

func TestPipelineAllocFreeMachine(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0 // single-goroutine: no lax-clock parking
	m := machine.New(cfg)
	d := reclaim.NewDomainFor(m)
	m.SetReclaim(d)
	testPipelineAllocFree(t, m, d, m.Thread(0))
}
