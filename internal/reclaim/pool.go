package reclaim

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Policy selects how a Pool decides that a retired object is free-safe.
type Policy int

const (
	// PolicyImmediate frees a retired object once every operation in
	// flight at retire time has exited and no thread announces a tag on
	// its lines. Retire also performs a tag-invalidating write so doomed
	// tags fail fast.
	PolicyImmediate Policy = iota
	// PolicyEpoch is the epoch-based-reclamation baseline: the domain era
	// only advances when all in-flight operations have observed it, and an
	// object is freed two advances after its retire.
	PolicyEpoch
)

func (p Policy) String() string {
	if p == PolicyEpoch {
		return "epoch"
	}
	return "immediate"
}

// privCap is the per-thread free cache size (objects); overflow spills to
// the shared list under a mutex.
const privCap = 64

// Pool is a free-list allocator for one object class (fixed word count) of
// one structure: Alloc hands out recycled or fresh line-aligned objects,
// Retire feeds unlinked objects into the retire -> scan -> free pipeline
// governed by the pool's Policy. All per-thread state is owned by the
// thread's driving goroutine; only the spill list takes a lock, and no
// path performs host allocation in steady state (the pending ring and
// spill list grow amortized on first use only).
type Pool struct {
	d           *Domain
	words       int
	linesPerObj int
	policy      Policy
	scanBatch   int

	pt []poolThread

	mu    sync.Mutex
	spill []core.Addr

	// Testing-only seeded faults for the DPOR use-after-free corpus: the
	// exact discipline bugs the explorer must convict.
	//
	// FaultFreeEarly frees at retire without waiting for quiescence
	// (free-before-quiescent). FaultSkipTagCheck drops the announced-tag
	// condition from the scan (tag-check skipped on recycled line).
	FaultFreeEarly    bool
	FaultSkipTagCheck bool

	tel *telemetry.Set

	retired      atomic.Uint64
	freed        atomic.Uint64
	freshAllocs  atomic.Uint64
	reusedAllocs atomic.Uint64
	freeObjs     atomic.Int64
	inUseLines   atomic.Int64
	highWater    atomic.Int64
}

type poolThread struct {
	priv      []core.Addr // LIFO free cache, cap privCap
	pending   []pendingEntry
	head      int
	sinceScan int

	_ [4]uint64 // keep neighbouring threads' state off one host cache line
}

type pendingEntry struct {
	addr  core.Addr
	stamp uint64
	clock uint64
}

// NewPool creates a pool over mem-allocated objects of the given size in
// words, attached to d's reader registry.
func NewPool(d *Domain, words int, policy Policy) *Pool {
	if words <= 0 {
		panic("reclaim: pool object size must be positive")
	}
	p := &Pool{
		d:           d,
		words:       words,
		linesPerObj: (words*core.WordSize + core.LineSize - 1) / core.LineSize,
		policy:      policy,
		scanBatch:   1,
	}
	p.pt = make([]poolThread, len(d.handles))
	for i := range p.pt {
		p.pt[i].priv = make([]core.Addr, 0, privCap)
		p.pt[i].pending = make([]pendingEntry, 0, 256)
	}
	return p
}

// Domain returns the reader registry this pool scans.
func (p *Pool) Domain() *Domain { return p.d }

// Words returns the object size this pool serves.
func (p *Pool) Words() int { return p.words }

// Policy returns the pool's reclamation policy.
func (p *Pool) Policy() Policy { return p.policy }

// SetScanBatch sets how many retires accumulate between pipeline scans
// (default 1: scan on every retire, the lowest-latency setting). Only call
// while quiescent.
func (p *Pool) SetScanBatch(n int) {
	if n < 1 {
		n = 1
	}
	p.scanBatch = n
}

// SetTelemetry attaches per-core telemetry (retire-to-free latency and
// free-list occupancy land in the retiring thread's Core). Only call while
// quiescent.
func (p *Pool) SetTelemetry(s *telemetry.Set) { p.tel = s }

// Enter brackets the start of a structure operation on th (delegates to
// the domain handle; nesting-safe).
func (p *Pool) Enter(th core.Thread) { p.d.Handle(th.ID()).Enter() }

// Exit closes the bracket opened by Enter.
func (p *Pool) Exit(th core.Thread) { p.d.Handle(th.ID()).Exit() }

// Alloc returns a line-aligned object of the pool's size: a recycled one
// when the pipeline has produced free objects, otherwise fresh from the
// backing space. Recycled objects still hold their previous (type-stable)
// contents; callers must initialise every word they later read.
func (p *Pool) Alloc(th core.Thread) core.Addr {
	pt := &p.pt[th.ID()]
	a, ok := p.take(th, pt)
	if !ok {
		// Last resort before growing the footprint: try to flush our own
		// pipeline, then take what it freed.
		p.scan(th, pt)
		a, ok = p.take(th, pt)
	}
	if ok {
		p.reusedAllocs.Add(1)
	} else {
		a = th.Alloc(p.words)
		p.freshAllocs.Add(1)
	}
	if p.d.checked {
		p.eachLine(a, func(l core.Line) { p.d.setLineState(l, lineFree, lineLive, "alloc") })
	}
	p.noteLive()
	return a
}

// noteLive accounts one more live object and updates the footprint
// high-water mark.
func (p *Pool) noteLive() {
	in := p.inUseLines.Add(int64(p.linesPerObj))
	for {
		hw := p.highWater.Load()
		if in <= hw || p.highWater.CompareAndSwap(hw, in) {
			break
		}
	}
}

// Adopt registers an object of the pool's class that was allocated outside
// it (a structure's initial nodes, built before the pool was wired) so it
// may later be retired into the pipeline like any pool allocation. Only
// call while quiescent.
func (p *Pool) Adopt(a core.Addr) {
	if p.d.checked {
		p.eachLine(a, func(l core.Line) { p.d.setLineState(l, 0, lineLive, "adopt") })
	}
	p.noteLive()
}

// take pops a free object from the thread cache, refilling from the shared
// spill list when empty.
func (p *Pool) take(th core.Thread, pt *poolThread) (core.Addr, bool) {
	if n := len(pt.priv); n > 0 {
		a := pt.priv[n-1]
		pt.priv = pt.priv[:n-1]
		p.freeObjs.Add(-1)
		return a, true
	}
	p.mu.Lock()
	n := len(p.spill)
	if n == 0 {
		p.mu.Unlock()
		return core.NilAddr, false
	}
	grab := privCap / 2
	if grab > n-1 {
		grab = n - 1
	}
	a := p.spill[n-1]
	pt.priv = append(pt.priv, p.spill[n-1-grab:n-1]...)
	p.spill = p.spill[:n-1-grab]
	p.mu.Unlock()
	p.freeObjs.Add(-1)
	return a, true
}

// Retire feeds an unlinked object into the pipeline. The caller must be
// the unique unlinker (the thread whose swing detached the object) and
// must have dropped its own tags on the object first. Under
// PolicyImmediate the retire write-invalidates the object's lines so any
// remote tag still covering them can never validate again.
func (p *Pool) Retire(th core.Thread, a core.Addr) {
	if p.d.checked {
		p.eachLine(a, func(l core.Line) { p.d.setLineState(l, lineLive, lineRetired, "retire") })
	}
	p.retired.Add(1)
	var stamp uint64
	if p.policy == PolicyImmediate {
		// Doom every outstanding tag on the object: a same-value store
		// bumps the version (vtags) / steals exclusivity (machine), so a
		// reader that tagged the object before it was unlinked fails its
		// next validation instead of trusting recycled bytes.
		for i := 0; i < p.linesPerObj; i++ {
			la := a + core.Addr(i*core.LineSize)
			th.Store(la, th.Load(la))
		}
		stamp = p.d.era.Add(1)
	} else {
		stamp = p.d.era.Load()
	}
	pt := &p.pt[th.ID()]
	clock, _ := opClock(th)
	if p.FaultFreeEarly {
		// Seeded bug: skip the pipeline and free instantly.
		p.free(th, pt, pendingEntry{addr: a, stamp: stamp, clock: clock})
		return
	}
	pt.pending = append(pt.pending, pendingEntry{addr: a, stamp: stamp, clock: clock})
	pt.sinceScan++
	if pt.sinceScan >= p.scanBatch {
		p.scan(th, pt)
	}
}

// FreePrivate returns an object that was never published (e.g. a
// speculative allocation whose linking CAS failed, or an aborted
// transaction's fresh node) straight to the free list: no reader can hold
// a reference, so no pipeline pass is needed.
func (p *Pool) FreePrivate(th core.Thread, a core.Addr) {
	if p.d.checked {
		p.eachLine(a, func(l core.Line) { p.d.setLineState(l, lineLive, lineFree, "private free") })
	}
	p.inUseLines.Add(int64(-p.linesPerObj))
	p.put(&p.pt[th.ID()], a)
}

// Scan runs one pipeline pass over the calling thread's pending retires,
// freeing every object the policy proves safe. Structures need not call
// this — Retire scans automatically — but drains and tests do. It reports
// whether the thread's pending ring is empty afterwards.
func (p *Pool) Scan(th core.Thread) bool {
	pt := &p.pt[th.ID()]
	p.scan(th, pt)
	return pt.head == len(pt.pending)
}

// scan frees the eligible prefix of the thread's pending FIFO. Stamps are
// monotone within a thread, so the era condition fails at a prefix
// boundary; an announced tag also stops the pass (conservatively FIFO:
// announcements are transient, held at most for the announcing op).
func (p *Pool) scan(th core.Thread, pt *poolThread) {
	pt.sinceScan = 0
	if pt.head == len(pt.pending) {
		return
	}
	var limit uint64
	if p.policy == PolicyImmediate {
		limit = p.d.minReservation()
	} else {
		e := p.d.tryAdvanceEpoch()
		if e < 2 {
			return
		}
		limit = e - 1 // frees stamps <= e-2, i.e. two advances old
	}
	for pt.head < len(pt.pending) {
		e := pt.pending[pt.head]
		if p.policy == PolicyImmediate {
			// An op whose reservation equals the stamp entered after the
			// retire's era bump — after the unlink — so only reservations
			// strictly below the stamp can still reach the object.
			if e.stamp > limit {
				break
			}
			if !p.FaultSkipTagCheck && p.objAnnounced(e.addr) {
				break
			}
		} else if e.stamp >= limit {
			break
		}
		p.free(th, pt, e)
		pt.head++
	}
	// Compact in place so the ring never grows past its high-water mark.
	if pt.head == len(pt.pending) {
		pt.pending = pt.pending[:0]
		pt.head = 0
	} else if pt.head > cap(pt.pending)/2 {
		n := copy(pt.pending, pt.pending[pt.head:])
		pt.pending = pt.pending[:n]
		pt.head = 0
	}
}

// tryAdvanceEpoch advances the era if every in-flight operation has
// observed the current one, returning the (possibly new) era.
func (d *Domain) tryAdvanceEpoch() uint64 {
	e := d.era.Load()
	for i := range d.handles {
		if r := d.handles[i].res.Load(); r != idle && r != e {
			return e
		}
	}
	d.era.CompareAndSwap(e, e+1)
	return d.era.Load()
}

// objAnnounced reports whether any thread announces a tag on any of the
// object's lines.
func (p *Pool) objAnnounced(a core.Addr) bool {
	for i := 0; i < p.linesPerObj; i++ {
		if p.d.announced((a + core.Addr(i*core.LineSize)).Line()) {
			return true
		}
	}
	return false
}

// free moves a proven-safe object onto the free list and records the
// retire-to-free latency in backend clock units.
func (p *Pool) free(th core.Thread, pt *poolThread, e pendingEntry) {
	if p.d.checked {
		p.eachLine(e.addr, func(l core.Line) { p.d.setLineState(l, lineRetired, lineFree, "free") })
	}
	p.freed.Add(1)
	p.inUseLines.Add(int64(-p.linesPerObj))
	occ := p.put(pt, e.addr)
	if p.tel != nil {
		c := p.tel.Core(th.ID())
		clock, _ := opClock(th)
		c.NoteRetireToFree(clock - e.clock)
		c.NoteFreeListLines(uint64(occ) * uint64(p.linesPerObj))
	}
}

// put places a free object in the thread cache or the shared spill list,
// returning the total free-object count after the insert.
func (p *Pool) put(pt *poolThread, a core.Addr) int64 {
	if len(pt.priv) < cap(pt.priv) {
		pt.priv = append(pt.priv, a)
	} else {
		p.mu.Lock()
		p.spill = append(p.spill, a)
		p.mu.Unlock()
	}
	return p.freeObjs.Add(1)
}

func (p *Pool) eachLine(a core.Addr, f func(core.Line)) {
	for i := 0; i < p.linesPerObj; i++ {
		f((a + core.Addr(i*core.LineSize)).Line())
	}
}

// opClock reads the backend's per-thread clock (simulated cycles on the
// machine backend, ticks on vtags); zero if the thread has none.
func opClock(th core.Thread) (uint64, uint64) {
	if oc, ok := th.(interface{ OpClock() (uint64, uint64) }); ok {
		return oc.OpClock()
	}
	return 0, 0
}

// Stats is a point-in-time snapshot of the pool's counters. Only exact at
// quiescence.
type Stats struct {
	// Retired/Freed count objects through the pipeline; FreshAllocs and
	// ReusedAllocs split Alloc by source.
	Retired, Freed, FreshAllocs, ReusedAllocs uint64
	// InUseLines is the current live+retired-but-unfreed footprint in
	// lines; HighWaterLines its maximum over the pool's lifetime;
	// FreeLines the current free-list occupancy; PendingObjs the objects
	// still waiting in per-thread pipelines.
	InUseLines, HighWaterLines, FreeLines int64
	PendingObjs                           int
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Retired:        p.retired.Load(),
		Freed:          p.freed.Load(),
		FreshAllocs:    p.freshAllocs.Load(),
		ReusedAllocs:   p.reusedAllocs.Load(),
		InUseLines:     p.inUseLines.Load(),
		HighWaterLines: p.highWater.Load(),
		FreeLines:      p.freeObjs.Load() * int64(p.linesPerObj),
	}
	for i := range p.pt {
		s.PendingObjs += len(p.pt[i].pending) - p.pt[i].head
	}
	return s
}
