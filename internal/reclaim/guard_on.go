//go:build memtagcheck

package reclaim

// Debug builds guard every domain: double-retire, alloc of a non-free
// line, and a successful tag validation covering a freed line all panic
// with the offending line and thread.
const memtagcheckEnabled = true
