// Package reclaim adds safe memory reclamation to the simulated address
// space: a free-list allocator over mem lines with a retire -> scan -> free
// pipeline, in two policies behind one interface.
//
// The paper's tag primitive is itself a reclamation primitive. Following
// "Efficient Hardware Primitives for Immediate Memory Reclamation in
// Optimistic Data Structures" (Singh, Brown, Spear; arXiv 2302.12958), a
// retired node is safe to recycle the moment no reader's tag set can still
// validate it: the retiring write invalidates every remote tag on the
// line, so any optimistic traversal still holding one fails its next
// validation and restarts instead of acting on recycled bytes.
//
//   - PolicyImmediate frees a retired line as soon as (a) every operation
//     that was in flight at retire time has completed — an op that starts
//     later cannot reach the unlinked node — and (b) no thread still
//     announces a tag on the line (the tag condition; conservative, since
//     the retire-time invalidation already doomed those tags). Condition
//     (a) is tracked per retire, not per global epoch, so the free lags
//     only the specific overlapping operations.
//   - PolicyEpoch is the classic epoch-based baseline: a global epoch
//     advances only once every in-flight operation has observed it, and a
//     retired line is freed two epochs later. Same interface, coarser
//     batching — the differential comparison point.
//
// Recycled lines are type-stable: a Pool serves one object class of one
// structure, so a stale reader that touches a recycled line before its
// failed validation always sees a plausible object, never a wild pointer
// (the simulated analogue of SLAB_TYPESAFE_BY_RCU). Re-tagging a recycled
// line is ABA-free on both backends — vtags versions only grow, and any
// machine write evicts remote tags.
package reclaim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// idle is the reservation value of a thread with no operation in flight.
const idle = ^uint64(0)

// Domain is the reader registry one memory's pools share: per-thread
// operation reservations (which era the running op entered at) and tag
// announcements (which lines the backend currently has tagged), plus the
// debug guard's per-line state machine. Create one Domain per Memory and
// attach it to the backend with SetReclaim so tag operations announce.
type Domain struct {
	maxTags int
	// era is the reclamation clock. PolicyImmediate bumps it on every
	// retire; PolicyEpoch advances it collectively (see pool.go).
	era     atomic.Uint64
	handles []Handle

	// checked enables the use-after-free guard: per-line allocation states
	// with violation detection on retire/free/alloc/validate. Defaults to
	// on under the memtagcheck build tag. Flip only while quiescent.
	checked bool
	// onViolation receives guard violations; the default panics (debug
	// builds want a hard stop), tests install a recorder.
	onViolation func(error)

	mu        sync.Mutex
	lineState map[core.Line]lineState
	violation error
}

type lineState uint8

const (
	lineLive lineState = iota + 1
	lineRetired
	lineFree
)

// NewDomain creates a domain for a memory with the given thread count and
// per-thread tag budget (core.Memory's NumThreads and MaxTags).
func NewDomain(threads, maxTags int) *Domain {
	d := &Domain{maxTags: maxTags, onViolation: defaultViolation, checked: memtagcheckEnabled}
	d.era.Store(1)
	d.handles = make([]Handle, threads)
	for i := range d.handles {
		h := &d.handles[i]
		h.d = d
		h.id = i
		h.res.Store(idle)
		h.ann = make([]atomic.Uint64, maxTags)
	}
	return d
}

// NewDomainFor is NewDomain sized from the memory itself.
func NewDomainFor(mem core.Memory) *Domain { return NewDomain(mem.NumThreads(), mem.MaxTags()) }

// Handle returns thread id's registry slot. All non-atomic methods on the
// returned Handle must be called from the goroutine driving that thread.
func (d *Domain) Handle(id int) *Handle {
	if id < 0 || id >= len(d.handles) {
		panic(fmt.Sprintf("reclaim: no handle for thread %d (%d threads)", id, len(d.handles)))
	}
	return &d.handles[id]
}

// NumThreads returns the number of registered handles.
func (d *Domain) NumThreads() int { return len(d.handles) }

// SetChecked turns the use-after-free guard on or off at runtime (tests);
// the memtagcheck build tag sets the default. Only call while quiescent.
func (d *Domain) SetChecked(on bool) { d.checked = on }

// OnViolation installs a guard-violation handler replacing the default
// panic; the first violation is also retained for Violation. Only call
// while quiescent.
func (d *Domain) OnViolation(f func(error)) { d.onViolation = f }

// Violation returns the first guard violation observed, or nil.
func (d *Domain) Violation() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.violation
}

func defaultViolation(err error) { panic(err) }

func (d *Domain) violate(format string, args ...any) {
	err := fmt.Errorf("reclaim: "+format, args...)
	d.mu.Lock()
	if d.violation == nil {
		d.violation = err
	}
	f := d.onViolation
	d.mu.Unlock()
	if f != nil {
		f(err)
	}
}

// setLineState transitions a line in the guard's state machine, reporting
// violations for illegal transitions. want==0 accepts any current state.
func (d *Domain) setLineState(l core.Line, want, next lineState, what string) {
	d.mu.Lock()
	if d.lineState == nil {
		d.lineState = make(map[core.Line]lineState)
	}
	cur := d.lineState[l]
	ok := want == 0 || cur == want || (cur == 0 && want == lineFree)
	d.lineState[l] = next
	d.mu.Unlock()
	if !ok {
		d.violate("%s of line %d in state %s (want %s)", what, l, cur, want)
	}
}

func (s lineState) String() string {
	switch s {
	case lineLive:
		return "live"
	case lineRetired:
		return "retired"
	case lineFree:
		return "free"
	}
	return "untracked"
}

// Handle is one thread's slot in the domain: its operation reservation and
// announced tag set. The backend updates announcements from the tag ops;
// structures bracket operations with Enter/Exit (usually via Pool).
type Handle struct {
	d  *Domain
	id int
	// res is the era the thread's current operation entered at, or idle.
	// Written by the owner, read by every scanning thread.
	res atomic.Uint64
	// depth supports nested Enter (an op helping another op's pool).
	depth int
	// ann holds the lines this thread's backend tag set currently covers,
	// encoded line+1 so zero means empty. Slots are only ever written by
	// the owner and are never compacted, so concurrent scans see a stable
	// (if conservative) view.
	ann []atomic.Uint64
}

// Enter marks the start of a structure operation: the thread publishes the
// current era so scans know which retires it may have witnessed. Nested
// calls are counted and only the outermost publishes.
func (h *Handle) Enter() {
	h.depth++
	if h.depth == 1 {
		h.res.Store(h.d.era.Load())
	}
}

// Exit marks the end of the operation begun by the matching Enter.
func (h *Handle) Exit() {
	h.depth--
	if h.depth < 0 {
		panic("reclaim: Exit without Enter")
	}
	if h.depth == 0 {
		h.res.Store(idle)
	}
}

// Announce records that the owner thread tagged line l. Called by the
// backend from AddTag.
func (h *Handle) Announce(l core.Line) {
	for i := range h.ann {
		if h.ann[i].Load() == 0 {
			h.ann[i].Store(uint64(l) + 1)
			return
		}
	}
	// The backend's tag set is bounded by maxTags, so a full table means
	// announcements leaked; fail loudly rather than silently dropping a
	// safety signal.
	panic("reclaim: tag announcement table full")
}

// Retract drops the announcement for line l, if present. Called by the
// backend from RemoveTag.
func (h *Handle) Retract(l core.Line) {
	v := uint64(l) + 1
	for i := range h.ann {
		if h.ann[i].Load() == v {
			h.ann[i].Store(0)
			return
		}
	}
}

// RetractAll drops every announcement. Called by the backend from
// ClearTagSet.
func (h *Handle) RetractAll() {
	for i := range h.ann {
		if h.ann[i].Load() != 0 {
			h.ann[i].Store(0)
		}
	}
}

// GuardActive reports whether the use-after-free guard is on, so backends
// can skip the per-tag NoteValidatedTag loop entirely in normal runs.
func (h *Handle) GuardActive() bool { return h.d.checked }

// NoteValidatedTag is the guard hook for a successful validation covering
// line l: validating a tag on a line that sits on a free list is exactly
// the use-after-free the reclaimer must never allow (a reader acted on a
// recycled line and the tags did not save it). No-op unless checked.
func (h *Handle) NoteValidatedTag(l core.Line) {
	if !h.d.checked {
		return
	}
	h.d.mu.Lock()
	st := h.d.lineState[l]
	h.d.mu.Unlock()
	if st == lineFree {
		h.d.violate("thread %d validated a tag on freed line %d", h.id, l)
	}
}

// announced reports whether any thread currently announces a tag on l.
// Conservative: a concurrent Retract may still be observed as announced.
func (d *Domain) announced(l core.Line) bool {
	v := uint64(l) + 1
	for i := range d.handles {
		h := &d.handles[i]
		for j := range h.ann {
			if h.ann[j].Load() == v {
				return true
			}
		}
	}
	return false
}

// minReservation returns the smallest era any in-flight operation entered
// at (idle if none).
func (d *Domain) minReservation() uint64 {
	min := uint64(idle)
	for i := range d.handles {
		if r := d.handles[i].res.Load(); r < min {
			min = r
		}
	}
	return min
}
