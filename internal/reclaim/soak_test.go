//go:build soak

package reclaim_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
	"repro/internal/skiplist"
	"repro/internal/stm"
	"repro/internal/telemetry"
	"repro/internal/txmap"
	"repro/internal/txset"
	"repro/internal/vtags"
)

// Long-running footprint soak (nightly, -tags soak): millions of churn
// operations against the wired structures must keep the live-line
// high-water mark within a small constant factor of the live set — the
// whole point of reclamation. Without it the footprint grows with the op
// count (every insert a fresh node): at full length roughly 2 lines per
// insert, two orders of magnitude past these bounds.
//
// The per-structure factor k absorbs reservation stalls: a host-descheduled
// goroutine parked mid-operation pins the minimum reservation, so every
// retire issued meanwhile queues until it resumes. The free list grows to
// the stall depth once and then recycles — measured high water is flat
// from 2M ops on — so the bound is a property of the concurrency level,
// not the op count.

const (
	soakThreads  = 4
	soakKeyRange = 1024
)

func soakOps() int {
	if testing.Short() {
		return 500_000
	}
	return 10_000_000
}

// runSoak churns the set and returns the pool stats and merged telemetry.
func runSoak(t *testing.T, s intset.Set, m *vtags.Memory, p *reclaim.Pool) (reclaim.Stats, *telemetry.Core) {
	t.Helper()
	tel := telemetry.NewSet(soakThreads)
	p.SetTelemetry(tel)

	th0 := m.Thread(0)
	for k := uint64(0); k < soakKeyRange; k += 2 {
		s.Insert(th0, intset.KeyMin+k)
	}

	total := soakOps()
	var wg sync.WaitGroup
	for w := 0; w < soakThreads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w)
			rng := rand.New(rand.NewSource(int64(w)*6364136223846793005 + 1))
			for i := 0; i < total/soakThreads; i++ {
				k := intset.KeyMin + uint64(rng.Intn(soakKeyRange))
				switch rng.Intn(3) {
				case 0:
					s.Insert(th, k)
				case 1:
					s.Delete(th, k)
				default:
					s.Contains(th, k)
				}
			}
		}(w)
	}
	wg.Wait()
	tel.Flush()
	return p.Stats(), tel.Merge()
}

// checkSoak asserts the bounded-footprint and telemetry invariants. k is
// the allowed multiple of the worst-case live set (every key present).
func checkSoak(t *testing.T, st reclaim.Stats, agg *telemetry.Core, linesPerObj int64, k int64) {
	t.Helper()
	liveLines := int64(soakKeyRange+soakThreads+2) * linesPerObj
	if st.HighWaterLines > k*liveLines {
		t.Fatalf("footprint unbounded: high water %d lines > %d x live set (%d lines); stats %+v",
			st.HighWaterLines, k, liveLines, st)
	}
	if st.Freed == 0 || st.ReusedAllocs == 0 {
		t.Fatalf("vacuous soak: nothing recycled (stats %+v)", st)
	}
	if agg.RetireToFree.Count() == 0 {
		t.Fatal("retire-to-free histogram empty despite frees")
	}
	if agg.RetireToFree.Count() != st.Freed {
		t.Fatalf("histogram count %d != freed %d", agg.RetireToFree.Count(), st.Freed)
	}
	t.Logf("high water %d lines (bound %d), retired %d freed %d reused %d, retire-to-free p50 %.0f p99 %.0f max %d",
		st.HighWaterLines, k*liveLines, st.Retired, st.Freed, st.ReusedAllocs,
		agg.RetireToFree.Quantile(0.5), agg.RetireToFree.Quantile(0.99), agg.RetireToFree.Max())
}

func soakSkiplist(t *testing.T, policy reclaim.Policy, k int64) {
	m := vtags.New(256<<20, soakThreads)
	d := reclaim.NewDomainFor(m)
	m.SetReclaim(d)
	s := skiplist.NewVAS(m)
	p := reclaim.NewPool(d, skiplist.NodeWords, policy)
	s.SetReclaim(p)
	st, agg := runSoak(t, s, m, p)
	linesPerObj := int64((skiplist.NodeWords*core.WordSize + core.LineSize - 1) / core.LineSize)
	checkSoak(t, st, agg, linesPerObj, k)
}

func soakTxmap(t *testing.T, policy reclaim.Policy, k int64) {
	m := vtags.New(256<<20, soakThreads)
	d := reclaim.NewDomainFor(m)
	m.SetReclaim(d)
	tm := stm.NewTagged(m)
	tm.SetReclaim(d)
	s := txset.New(m, tm)
	p := reclaim.NewPool(d, txmap.NodeWords, policy)
	s.SetReclaim(p)
	st, agg := runSoak(t, s, m, p)
	linesPerObj := int64((txmap.NodeWords*core.WordSize + core.LineSize - 1) / core.LineSize)
	checkSoak(t, st, agg, linesPerObj, k)
}

func TestSoakSkiplistImmediate(t *testing.T) { soakSkiplist(t, reclaim.PolicyImmediate, 32) }
func TestSoakSkiplistEpoch(t *testing.T)     { soakSkiplist(t, reclaim.PolicyEpoch, 64) }
func TestSoakTxmapImmediate(t *testing.T)    { soakTxmap(t, reclaim.PolicyImmediate, 16) }
func TestSoakTxmapEpoch(t *testing.T)        { soakTxmap(t, reclaim.PolicyEpoch, 64) }
