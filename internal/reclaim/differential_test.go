package reclaim_test

import (
	"testing"

	"repro/internal/abtree"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/schedfuzz"
	"repro/internal/skiplist"
	"repro/internal/stm"
	"repro/internal/txmap"
	"repro/internal/txset"
	"repro/internal/vtags"
)

// Differential reclamation check: every wired structure must produce
// linearizable histories under schedule fuzzing with no reclamation, with
// the immediate policy, and with the epoch baseline — behind the identical
// interface — and the checked-mode guard must observe zero discipline
// violations. In particular, the immediate policy must never free a line
// that a recorded reader subsequently validates (the guard flags exactly
// that), while still actually recycling memory (asserted via pool stats so
// the run cannot pass vacuously).

// reclaimTarget builds one structure with a reclamation pool wired in; the
// pool is returned for post-run stats assertions (nil when policy < 0, the
// no-reclamation control).
type reclaimTarget struct {
	name  string
	build func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool)
}

var reclaimTargets = []reclaimTarget{
	{"vas-list", func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := list.NewVAS(mem)
		p := reclaim.NewPool(d, list.NodeWords, policy)
		s.SetReclaim(p)
		return s, p
	}},
	{"hoh-list", func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := list.NewHoH(mem)
		p := reclaim.NewPool(d, list.NodeWords, policy)
		s.SetReclaim(p)
		return s, p
	}},
	{"vas-skiplist", func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := skiplist.NewVAS(mem)
		p := reclaim.NewPool(d, skiplist.NodeWords, policy)
		s.SetReclaim(p)
		return s, p
	}},
	{"hoh-abtree", func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool) {
		s := abtree.NewHoH(mem, 2, 4)
		p := reclaim.NewPool(d, s.NodeWords(), policy)
		s.SetReclaim(p)
		return s, p
	}},
	{"txset-tagged", func(mem core.Memory, d *reclaim.Domain, policy reclaim.Policy) (intset.Set, *reclaim.Pool) {
		tm := stm.NewTagged(mem)
		tm.SetReclaim(d)
		s := txset.New(mem, tm)
		p := reclaim.NewPool(d, txmap.NodeWords, policy)
		s.SetReclaim(p)
		return s, p
	}},
}

// policyNone is the control arm: structure built without any pool.
const policyNone reclaim.Policy = -1

func buildControl(tgt reclaimTarget, mem core.Memory) intset.Set {
	switch tgt.name {
	case "vas-list":
		return list.NewVAS(mem)
	case "hoh-list":
		return list.NewHoH(mem)
	case "vas-skiplist":
		return skiplist.NewVAS(mem)
	case "hoh-abtree":
		return abtree.NewHoH(mem, 2, 4)
	case "txset-tagged":
		return txset.New(mem, stm.NewTagged(mem))
	}
	panic("unknown target " + tgt.name)
}

func runDifferential(t *testing.T, tgt reclaimTarget, policy reclaim.Policy,
	newBackend func(threads int) core.Memory, attach func(core.Memory, *reclaim.Domain), seed int64) {
	t.Helper()
	var d *reclaim.Domain
	var p *reclaim.Pool
	newMem := func(threads int) core.Memory {
		m := newBackend(threads)
		if policy != policyNone {
			d = reclaim.NewDomainFor(m)
			d.SetChecked(true)
			d.OnViolation(func(error) {}) // record, fail below with context
			attach(m, d)
		}
		return m
	}
	build := func(mem core.Memory) intset.Set {
		if policy == policyNone {
			return buildControl(tgt, mem)
		}
		s, pool := tgt.build(mem, d, policy)
		p = pool
		return s
	}
	fuzz := schedfuzz.Default(seed)
	intset.CheckLinearizable(t, newMem, build, intset.LinearizeConfig{
		Threads:      4,
		OpsPerThread: intset.LinearizeOps(200),
		KeyRange:     16,
		Prefill:      8,
		Seed:         seed,
		Fuzz:         &fuzz,
	})
	if p == nil {
		return
	}
	if err := d.Violation(); err != nil {
		t.Fatalf("reclamation guard violation (seed %d): %v", seed, err)
	}
	s := p.Stats()
	if s.Retired == 0 {
		t.Fatalf("vacuous run: no objects retired (seed %d)", seed)
	}
	if policy == reclaim.PolicyImmediate && s.Freed == 0 {
		t.Fatalf("vacuous run: immediate policy freed nothing across %d retires (seed %d)", s.Retired, seed)
	}
	if s.InUseLines < 0 || s.FreeLines < 0 {
		t.Fatalf("inconsistent footprint accounting: %+v", s)
	}
}

func TestDifferentialReclaimVTags(t *testing.T) {
	newBackend := func(threads int) core.Memory { return vtags.New(16<<20, threads) }
	attach := func(m core.Memory, d *reclaim.Domain) { m.(*vtags.Memory).SetReclaim(d) }
	for _, tgt := range reclaimTargets {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			t.Parallel()
			for _, pol := range []reclaim.Policy{policyNone, reclaim.PolicyImmediate, reclaim.PolicyEpoch} {
				for seed := int64(1); seed <= 2; seed++ {
					runDifferential(t, tgt, pol, newBackend, attach, seed)
				}
			}
		})
	}
}

// TestDifferentialReclaimMachine re-runs a subset on the cycle-accurate
// backend: retire's tag-dooming stores go through the MESI directory, so
// the immediate condition is exercised against real invalidation traffic.
func TestDifferentialReclaimMachine(t *testing.T) {
	newBackend := func(seed int64) func(threads int) core.Memory {
		return func(threads int) core.Memory {
			cfg := machine.DefaultConfig(threads)
			cfg.MemBytes = 8 << 20
			schedfuzz.JitterSyncWindow(&cfg, seed)
			return machine.New(cfg)
		}
	}
	attach := func(m core.Memory, d *reclaim.Domain) { m.(*machine.Machine).SetReclaim(d) }
	for _, name := range []string{"vas-list", "hoh-abtree"} {
		for _, tgt := range reclaimTargets {
			if tgt.name != name {
				continue
			}
			tgt := tgt
			t.Run(tgt.name, func(t *testing.T) {
				t.Parallel()
				seed := int64(11)
				for _, pol := range []reclaim.Policy{reclaim.PolicyImmediate, reclaim.PolicyEpoch} {
					runDifferential(t, tgt, pol, newBackend(seed), attach, seed)
				}
			})
		}
	}
}
