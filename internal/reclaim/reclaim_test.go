package reclaim_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
	"repro/internal/vtags"
)

func newPool(t *testing.T, policy reclaim.Policy) (*vtags.Memory, *reclaim.Domain, *reclaim.Pool) {
	t.Helper()
	m := vtags.New(1<<20, 2)
	d := reclaim.NewDomainFor(m)
	m.SetReclaim(d)
	return m, d, reclaim.NewPool(d, 2, policy)
}

// A retired object must not be freed while an operation that was in flight
// at retire time is still running, and must be freed once it exits.
func TestImmediateFreeGatedOnReservation(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	th0, th1 := m.Thread(0), m.Thread(1)

	h1 := d.Handle(1)
	h1.Enter() // reader in flight before the retire

	a := p.Alloc(th0)
	th0.Store(a, 7)
	p.Retire(th0, a)
	p.Scan(th0)
	if s := p.Stats(); s.Freed != 0 {
		t.Fatalf("freed %d objects under an older in-flight reservation, want 0", s.Freed)
	}

	h1.Exit()
	if !p.Scan(th0) {
		t.Fatal("pipeline not drained after the blocking op exited")
	}
	if s := p.Stats(); s.Freed != 1 {
		t.Fatalf("freed = %d after quiescence, want 1", s.Freed)
	}
	if b := p.Alloc(th0); b != a {
		t.Fatalf("Alloc returned %v, want recycled %v", b, a)
	}
	if s := p.Stats(); s.ReusedAllocs != 1 {
		t.Fatalf("reused allocs = %d, want 1", s.ReusedAllocs)
	}
	_ = th1
}

// An operation that enters after the retire's era bump must NOT block the
// free: it cannot reach the unlinked object.
func TestImmediateLateEntrantDoesNotBlock(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	th0 := m.Thread(0)

	a := p.Alloc(th0)
	p.Retire(th0, a)

	h1 := d.Handle(1)
	h1.Enter() // enters after the retire
	defer h1.Exit()

	if !p.Scan(th0) {
		t.Fatal("late entrant starved the pipeline")
	}
	if s := p.Stats(); s.Freed != 1 {
		t.Fatalf("freed = %d, want 1", s.Freed)
	}
}

// A tag announced on the object's line (via the backend's AddTag) blocks
// the free until the tag set is cleared — the tag condition.
func TestImmediateAnnouncedTagBlocksFree(t *testing.T) {
	m, _, p := newPool(t, reclaim.PolicyImmediate)
	th0, th1 := m.Thread(0), m.Thread(1)

	a := p.Alloc(th0)
	th1.AddTag(a, core.LineSize)

	p.Retire(th0, a)
	p.Scan(th0)
	if s := p.Stats(); s.Freed != 0 {
		t.Fatalf("freed %d objects under an announced tag, want 0", s.Freed)
	}

	th1.ClearTagSet()
	if !p.Scan(th0) {
		t.Fatal("pipeline not drained after the tag was dropped")
	}
}

// The epoch baseline frees only two era advances after the retire, and a
// reader pinned at an old era stalls the advance entirely.
func TestEpochTwoAdvanceLag(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyEpoch)
	th0 := m.Thread(0)

	a := p.Alloc(th0)
	p.Retire(th0, a) // stamp = era; scan advanced era once already
	if s := p.Stats(); s.Freed != 0 {
		t.Fatalf("freed after one advance, want two-epoch lag")
	}
	if !p.Scan(th0) { // second advance: stamp is now two epochs old
		t.Fatal("pipeline not drained after two advances")
	}

	// A pinned reader blocks the advance (and hence all frees).
	b := p.Alloc(th0)
	h1 := d.Handle(1)
	h1.Enter()
	p.Retire(th0, b)
	for i := 0; i < 4; i++ {
		p.Scan(th0)
	}
	if s := p.Stats(); s.Freed != 1 {
		t.Fatalf("epoch advanced past a pinned reader (freed = %d, want 1)", s.Freed)
	}
	h1.Exit()
	p.Scan(th0)
	p.Scan(th0)
	if s := p.Stats(); s.Freed != 2 {
		t.Fatalf("freed = %d after reader exit, want 2", s.Freed)
	}
}

// recordViolations arms the checked-mode guard with a recorder instead of
// the default panic.
func recordViolations(d *reclaim.Domain) {
	d.SetChecked(true)
	d.OnViolation(func(error) {})
}

func TestGuardConvictsDoubleRetire(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	recordViolations(d)
	th0 := m.Thread(0)

	a := p.Alloc(th0)
	p.Retire(th0, a)
	if d.Violation() != nil {
		t.Fatalf("first retire flagged: %v", d.Violation())
	}
	p.Retire(th0, a)
	err := d.Violation()
	if err == nil {
		t.Fatal("double retire not flagged")
	}
	if !strings.Contains(err.Error(), "retire") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// Validating a tag on a line that sits on the free list is the
// use-after-free the reclaimer exists to prevent; the guard must flag it.
func TestGuardConvictsValidateOnFreedLine(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	recordViolations(d)
	th0, th1 := m.Thread(0), m.Thread(1)

	a := p.Alloc(th0)
	p.Retire(th0, a)
	if !p.Scan(th0) {
		t.Fatal("free-safe object not freed")
	}

	th1.AddTag(a, core.LineSize)
	if !th1.Validate() {
		t.Fatal("validation of an untouched freed line should succeed (that is the bug the guard flags)")
	}
	th1.ClearTagSet()
	err := d.Violation()
	if err == nil {
		t.Fatal("validate-on-freed-line not flagged")
	}
	if !strings.Contains(err.Error(), "freed line") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestGuardAcceptsAdoptedObjects(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	recordViolations(d)
	th0 := m.Thread(0)

	ext := th0.Alloc(2) // allocated outside the pool
	p.Adopt(ext)
	p.Retire(th0, ext)
	p.Scan(th0)
	if err := d.Violation(); err != nil {
		t.Fatalf("adopted object's retire flagged: %v", err)
	}
	if s := p.Stats(); s.Freed != 1 {
		t.Fatalf("freed = %d, want 1", s.Freed)
	}
}

func TestFreePrivateRoundTrip(t *testing.T) {
	m, d, p := newPool(t, reclaim.PolicyImmediate)
	recordViolations(d)
	th0 := m.Thread(0)

	a := p.Alloc(th0)
	p.FreePrivate(th0, a)
	if b := p.Alloc(th0); b != a {
		t.Fatalf("Alloc returned %v, want privately freed %v", b, a)
	}
	if err := d.Violation(); err != nil {
		t.Fatalf("private free flagged: %v", err)
	}
	if s := p.Stats(); s.Retired != 0 || s.ReusedAllocs != 1 {
		t.Fatalf("stats = %+v, want no retires and one reuse", s)
	}
}

// The injected faults must actually misbehave — the DPOR corpus depends on
// them reproducing the bugs deterministically.
func TestSeededFaults(t *testing.T) {
	t.Run("free-early", func(t *testing.T) {
		m, d, p := newPool(t, reclaim.PolicyImmediate)
		p.FaultFreeEarly = true
		th0 := m.Thread(0)
		d.Handle(1).Enter() // would normally block the free
		defer d.Handle(1).Exit()
		a := p.Alloc(th0)
		p.Retire(th0, a)
		if s := p.Stats(); s.Freed != 1 {
			t.Fatalf("FaultFreeEarly did not free instantly (freed = %d)", s.Freed)
		}
	})
	t.Run("skip-tag-check", func(t *testing.T) {
		m, _, p := newPool(t, reclaim.PolicyImmediate)
		p.FaultSkipTagCheck = true
		th0, th1 := m.Thread(0), m.Thread(1)
		a := p.Alloc(th0)
		th1.AddTag(a, core.LineSize)
		defer th1.ClearTagSet()
		p.Retire(th0, a)
		if s := p.Stats(); s.Freed != 1 {
			t.Fatalf("FaultSkipTagCheck still honoured the announced tag (freed = %d)", s.Freed)
		}
	})
}

func TestHighWaterTracksFootprint(t *testing.T) {
	m, _, p := newPool(t, reclaim.PolicyImmediate)
	th0 := m.Thread(0)
	objs := make([]core.Addr, 8)
	for i := range objs {
		objs[i] = p.Alloc(th0)
	}
	hw := p.Stats().HighWaterLines
	if hw < 8 {
		t.Fatalf("high water %d lines, want >= 8", hw)
	}
	for _, a := range objs {
		p.Retire(th0, a)
	}
	p.Scan(th0)
	s := p.Stats()
	if s.InUseLines != 0 {
		t.Fatalf("in-use %d lines after draining, want 0", s.InUseLines)
	}
	if s.HighWaterLines != hw {
		t.Fatalf("high water moved after frees: %d -> %d", hw, s.HighWaterLines)
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	d := reclaim.NewDomain(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Exit without Enter did not panic")
		}
	}()
	d.Handle(0).Exit()
}
