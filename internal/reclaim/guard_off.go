//go:build !memtagcheck

package reclaim

// memtagcheckEnabled selects whether domains default to the use-after-free
// guard (per-line live/retired/free state machine with panics on misuse).
// Off in normal builds: the guard takes a host mutex + map lookup per
// alloc/retire/free, which would break the 0 allocs/op timing pins' spirit
// of measuring the real hot path. Build with -tags memtagcheck to enable.
const memtagcheckEnabled = false
