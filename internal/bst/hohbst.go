package bst

import (
	"repro/internal/core"
	"repro/internal/intset"
)

// HoH is the hand-over-hand-tagged external BST: searches keep a tagged
// window of the last three nodes on the path (gp, p, l), and updates
// commit with one IAS that transiently marks the removed nodes. No
// per-node flags, marks or helping structures are needed — the minimal
// synchronization the paper advocates.
type HoH struct {
	base
}

var _ intset.Set = (*HoH)(nil)

// NewHoH creates an empty tree.
func NewHoH(mem core.Memory) *HoH {
	// Window: gp, p, l plus the next node during extension = 4 nodes.
	if mem.MaxTags() < 4 {
		panic("bst: MaxTags below the HoH tagging window (4 lines)")
	}
	return &HoH{base: newBase(mem)}
}

// locate performs the tagged descent. On return gp, p and l are tagged and
// were all in the tree at the last successful validation; the caller must
// eventually ClearTagSet. The two sentinel levels guarantee gp and p are
// valid internal nodes for every legal key.
func (t *HoH) locate(th core.Thread, key uint64) (gp, p, l core.Addr) {
	for {
		th.ClearTagSet()
		gp, p = core.NilAddr, core.NilAddr
		l = t.root
		th.AddTag(l, nodeBytes)
		if !th.Validate() {
			continue
		}
		restart := false
		for !isLeaf(th, l) {
			slot, _ := childSlot(th, l, key)
			next := core.Addr(th.Load(slot))
			th.AddTag(next, nodeBytes)
			// Validate with the window extended before dropping the
			// oldest tag (the same induction as the list and (a,b)-tree).
			if !th.Validate() {
				restart = true
				break
			}
			if !gp.IsNil() {
				th.RemoveTag(gp, nodeBytes)
			}
			gp, p, l = p, l, next
		}
		if restart {
			continue
		}
		return gp, p, l
	}
}

// Contains reports whether key is present, linearized at locate's last
// successful validation.
func (t *HoH) Contains(th core.Thread, key uint64) bool {
	_, _, l := t.locate(th, key)
	found := keyOf(th, l) == key
	th.ClearTagSet()
	return found
}

// Insert adds key, reporting whether it was absent: the leaf is replaced
// by a three-node subtree via IAS on its parent's child slot.
func (t *HoH) Insert(th core.Thread, key uint64) bool {
	for {
		_, p, l := t.locate(th, key)
		lkey := keyOf(th, l)
		if lkey == key {
			th.ClearTagSet()
			return false
		}
		slot, _ := childSlot(th, p, key)
		repl := newSubtree(th, key, lkey)
		if th.IAS(slot, uint64(repl)) {
			th.ClearTagSet()
			return true
		}
		th.ClearTagSet()
	}
}

// Delete removes key, reporting whether it was present: the parent is
// replaced by the leaf's sibling via IAS on the grandparent's child slot.
// The IAS invalidates the tagged window {gp, p, l} at every other core —
// in particular the two removed nodes p and l — so any traversal or
// update holding a tag on them fails its next validation.
func (t *HoH) Delete(th core.Thread, key uint64) bool {
	for {
		gp, p, l := t.locate(th, key)
		if keyOf(th, l) != key {
			th.ClearTagSet()
			return false
		}
		// Read the sibling through the tagged parent: if p is unchanged at
		// commit (the IAS validates it), this is still p's other child.
		var sibling core.Addr
		if core.Addr(th.Load(p.Plus(fLeft))) == l {
			sibling = core.Addr(th.Load(p.Plus(fRight)))
		} else {
			sibling = core.Addr(th.Load(p.Plus(fLeft)))
		}
		gpSlot, _ := childSlot(th, gp, key)
		if th.IAS(gpSlot, uint64(sibling)) {
			th.ClearTagSet()
			return true
		}
		th.ClearTagSet()
	}
}

// Keys enumerates the set while quiescent.
func (t *HoH) Keys(th core.Thread) []uint64 { return t.collect(th) }

// Root returns the top sentinel (for invariant checks).
func (t *HoH) Root() core.Addr { return t.root }
