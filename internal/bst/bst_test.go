package bst

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

var bstVariants = []struct {
	name string
	mk   func(core.Memory) intset.Set
}{
	{"LLX", func(m core.Memory) intset.Set { return NewLLX(m) }},
	{"HoH", func(m core.Memory) intset.Set { return NewHoH(m) }},
}

var bstBackends = []struct {
	name string
	mk   func(int) core.Memory
}{
	{"vtags", func(n int) core.Memory { return vtags.New(64<<20, n) }},
	{"machine", func(n int) core.Memory {
		cfg := machine.DefaultConfig(n)
		cfg.MemBytes = 64 << 20
		return machine.New(cfg)
	}},
}

func forAllBSTs(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, s intset.Set)) {
	for _, b := range bstBackends {
		for _, v := range bstVariants {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, v.mk(mem))
			})
		}
	}
}

// checkBST verifies search-order invariants while quiescent: every *real*
// leaf key (below the sentinel range) must lie inside the routing range
// that a search would take to reach it. Sentinel-keyed placeholder leaves
// legitimately cascade down the rightmost spine (as in Ellen et al.'s
// construction) and are exempt — searches never target them.
func checkBST(t *testing.T, th core.Thread, root core.Addr) {
	t.Helper()
	var walk func(n core.Addr, lo, hi uint64)
	walk = func(n core.Addr, lo, hi uint64) {
		k := keyOf(th, n)
		if isLeaf(th, n) {
			if k < inf1 && (k < lo || k > hi) {
				t.Fatalf("leaf key %d outside search range [%d, %d]", k, lo, hi)
			}
			return
		}
		left := core.Addr(th.Load(n.Plus(fLeft)))
		right := core.Addr(th.Load(n.Plus(fRight)))
		walk(left, lo, min(hi, k-1))
		walk(right, k, hi)
	}
	walk(root, 0, ^uint64(0))
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestBSTBasic(t *testing.T) {
	forAllBSTs(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if s.Contains(th, 7) || s.Delete(th, 7) {
			t.Fatal("empty tree misbehaves")
		}
		if !s.Insert(th, 7) || s.Insert(th, 7) {
			t.Fatal("insert semantics")
		}
		if !s.Contains(th, 7) {
			t.Fatal("inserted key missing")
		}
		if !s.Delete(th, 7) || s.Delete(th, 7) || s.Contains(th, 7) {
			t.Fatal("delete semantics")
		}
	})
}

func TestBSTGrowShrink(t *testing.T) {
	forAllBSTs(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for k := uint64(1); k <= 200; k++ {
			s.Insert(th, k*7%211+1)
		}
		for k := uint64(1); k <= 200; k++ {
			key := k*7%211 + 1
			if !s.Contains(th, key) {
				t.Fatalf("key %d lost", key)
			}
		}
		for k := uint64(1); k <= 200; k += 2 {
			s.Delete(th, k*7%211+1)
		}
		switch v := s.(type) {
		case *LLX:
			checkBST(t, th, v.Root())
		case *HoH:
			checkBST(t, th, v.Root())
		}
	})
}

func TestBSTSequentialEquivalence(t *testing.T) {
	forAllBSTs(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 3000, 128, 77)
	})
}

func TestBSTDisjointConcurrent(t *testing.T) {
	forAllBSTs(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 300)
	})
}

func TestBSTMixedConcurrent(t *testing.T) {
	forAllBSTs(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 250, 32)
	})
}

func TestBSTHighContention(t *testing.T) {
	forAllBSTs(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 200, 4)
	})
}

// TestHoHBSTDeleteInvalidatesWindow pins the synchronization rule for the
// two-node removal chain: after a delete, a thread holding tags on the
// removed parent or leaf fails validation.
func TestHoHBSTDeleteInvalidatesWindow(t *testing.T) {
	mem := vtags.New(8<<20, 2)
	s := NewHoH(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	s.Insert(t0, 10)
	s.Insert(t0, 20)

	// t1 pauses holding tags on the leaf 10 and its parent.
	gp, p, l := s.locate(t1, 10)
	_ = gp
	if keyOf(t1, l) != 10 {
		t.Fatal("locate found wrong leaf")
	}
	_ = p
	if !t1.Validate() {
		t.Fatal("window invalid before delete")
	}
	if !s.Delete(t0, 10) {
		t.Fatal("delete failed")
	}
	if t1.Validate() {
		t.Fatal("delete did not invalidate the removed window")
	}
	t1.ClearTagSet()
}

// TestBSTSentinelsSurvive: draining the tree completely must leave the
// sentinel structure intact and reusable.
func TestBSTSentinelsSurvive(t *testing.T) {
	forAllBSTs(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for round := 0; round < 3; round++ {
			for k := uint64(1); k <= 20; k++ {
				if !s.Insert(th, k) {
					t.Fatalf("round %d: insert %d failed", round, k)
				}
			}
			for k := uint64(1); k <= 20; k++ {
				if !s.Delete(th, k) {
					t.Fatalf("round %d: delete %d failed", round, k)
				}
			}
			if got := s.(intset.Snapshotter).Keys(th); len(got) != 0 {
				t.Fatalf("round %d: residue %v", round, got)
			}
		}
	})
}

// TestBSTInterVariantAgreement runs one op sequence through both variants.
func TestBSTInterVariantAgreement(t *testing.T) {
	memA := vtags.New(32<<20, 1)
	memB := vtags.New(32<<20, 1)
	llx := NewLLX(memA)
	hoh := NewHoH(memB)
	thA, thB := memA.Thread(0), memB.Thread(0)
	ref := intset.Reference{}
	for i := 0; i < 3000; i++ {
		k := uint64(i*2654435761)%97 + 1
		switch i % 3 {
		case 0:
			want := ref.Insert(k)
			if llx.Insert(thA, k) != want || hoh.Insert(thB, k) != want {
				t.Fatalf("op %d: Insert(%d) diverged", i, k)
			}
		case 1:
			want := ref.Delete(k)
			if llx.Delete(thA, k) != want || hoh.Delete(thB, k) != want {
				t.Fatalf("op %d: Delete(%d) diverged", i, k)
			}
		default:
			want := ref.Contains(k)
			if llx.Contains(thA, k) != want || hoh.Contains(thB, k) != want {
				t.Fatalf("op %d: Contains(%d) diverged", i, k)
			}
		}
	}
}
