package bst

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/llxscx"
)

// LLX is the software-baseline external BST built on LLX/SCX.
type LLX struct {
	base
	mgr *llxscx.Manager
}

var _ intset.Set = (*LLX)(nil)

// NewLLX creates an empty tree.
func NewLLX(mem core.Memory) *LLX {
	return &LLX{base: newBase(mem), mgr: llxscx.New(mem)}
}

// search walks to the leaf covering key, returning the last three nodes.
func (t *LLX) search(th core.Thread, key uint64) (gp, p, l core.Addr) {
	gp, p = core.NilAddr, core.NilAddr
	l = t.root
	for !isLeaf(th, l) {
		gp, p = p, l
		slot, _ := childSlot(th, l, key)
		l = core.Addr(th.Load(slot))
	}
	return gp, p, l
}

// snapshotNode performs LLX on an internal node, returning its info value
// and its two children as of the LLX.
func (t *LLX) snapshotNode(th core.Thread, n core.Addr) (info uint64, left, right core.Addr, ok bool) {
	snap := make([]uint64, 2)
	info, st := t.mgr.LLX(th, n, fLeft, 2, snap)
	if st != llxscx.LLXSuccess {
		return 0, 0, 0, false
	}
	return info, core.Addr(snap[0]), core.Addr(snap[1]), true
}

// llxLeaf performs LLX on a leaf (no mutable fields, but the freeze/mark
// protocol still applies to it as an SCX dependency).
func (t *LLX) llxLeaf(th core.Thread, n core.Addr) (info uint64, ok bool) {
	info, st := t.mgr.LLX(th, n, fLeft, 0, nil)
	return info, st == llxscx.LLXSuccess
}

// Contains reports whether key is present (plain sequential search; leaf
// keys are immutable).
func (t *LLX) Contains(th core.Thread, key uint64) bool {
	_, _, l := t.search(th, key)
	return keyOf(th, l) == key
}

// Insert adds key, reporting whether it was absent.
func (t *LLX) Insert(th core.Thread, key uint64) bool {
	for {
		_, p, l := t.search(th, key)
		lkey := keyOf(th, l)
		if lkey == key {
			return false
		}
		infoP, left, right, ok := t.snapshotNode(th, p)
		if !ok {
			continue
		}
		var slot core.Addr
		switch l {
		case left:
			slot = p.Plus(fLeft)
		case right:
			slot = p.Plus(fRight)
		default:
			continue // p no longer points to l
		}
		infoL, ok := t.llxLeaf(th, l)
		if !ok {
			continue
		}
		repl := newSubtree(th, key, lkey)
		if t.mgr.SCX(th,
			[]core.Addr{p, l}, []uint64{infoP, infoL}, []bool{false, true},
			slot, uint64(l), uint64(repl)) {
			return true
		}
	}
}

// Delete removes key, reporting whether it was present: the leaf's parent
// is replaced by the leaf's sibling, finalizing both removed nodes.
func (t *LLX) Delete(th core.Thread, key uint64) bool {
	for {
		gp, p, l := t.search(th, key)
		if keyOf(th, l) != key {
			return false
		}
		infoGP, gpLeft, gpRight, ok := t.snapshotNode(th, gp)
		if !ok {
			continue
		}
		var gpSlot core.Addr
		switch p {
		case gpLeft:
			gpSlot = gp.Plus(fLeft)
		case gpRight:
			gpSlot = gp.Plus(fRight)
		default:
			continue
		}
		infoP, pLeft, pRight, ok := t.snapshotNode(th, p)
		if !ok {
			continue
		}
		var sibling core.Addr
		switch l {
		case pLeft:
			sibling = pRight
		case pRight:
			sibling = pLeft
		default:
			continue
		}
		infoL, ok := t.llxLeaf(th, l)
		if !ok {
			continue
		}
		// Freezing p protects the sibling: p's child pointers cannot
		// change while the SCX is in progress, so installing the
		// snapshot's sibling is safe.
		if t.mgr.SCX(th,
			[]core.Addr{gp, p, l}, []uint64{infoGP, infoP, infoL}, []bool{false, true, true},
			gpSlot, uint64(p), uint64(sibling)) {
			return true
		}
	}
}

// Keys enumerates the set while quiescent.
func (t *LLX) Keys(th core.Thread) []uint64 { return t.collect(th) }

// Root returns the top sentinel (for invariant checks).
func (t *LLX) Root() core.Addr { return t.root }
