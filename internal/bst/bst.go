// Package bst implements the unbalanced, leaf-oriented (external) binary
// search tree — one of the applications the paper names for general
// tagging ("lists, binary search trees, balanced search trees...") — in
// the same two flavours as the (a,b)-tree:
//
//   - LLX: the software baseline in the style of Brown's LLX/SCX external
//     BST (itself the pragmatic form of Ellen et al.'s lock-free BST):
//     an insert replaces a leaf with a three-node subtree via SCX on
//     {parent, leaf}; a delete replaces the parent with the leaf's sibling
//     via SCX on {grandparent, parent, leaf}, finalizing the removed
//     nodes.
//   - HoH: hand-over-hand tagging with a three-ancestor window and a
//     single IAS per update. A delete removes the chain {parent, leaf} —
//     two nodes, changing a pointer in the leaf's grandparent — so the
//     same window argument as the (a,b)-tree applies, and the IAS's
//     transient marking of the removed nodes preserves the reachability
//     invariant.
//
// All set keys live in leaves; internal nodes hold routing keys (left
// subtree < key <= right subtree... by convention here: left < key,
// right >= key). Nodes are immutable except the two child pointers of
// internal nodes.
package bst

import (
	"repro/internal/core"
	"repro/internal/llxscx"
)

// Node layout (words). The LLX/SCX header is reserved in every node so
// both flavours are layout-identical.
const (
	fInfo   = llxscx.FInfo
	fMarked = llxscx.FMarked
	fMeta   = 2 // bit 0: leaf
	fKey    = 3
	fLeft   = 4
	fRight  = 5

	nodeWords = 6
	nodeBytes = nodeWords * core.WordSize
)

// Sentinel keys, above every legal set key (intset.KeyMax < inf1 < inf2).
const (
	inf1 uint64 = ^uint64(0) - 1
	inf2 uint64 = ^uint64(0)
)

// base carries the state shared by both flavours.
type base struct {
	mem  core.Memory
	root core.Addr // sentinel S1; S1.left = S2; the set lives under S2.left
}

// newBase builds the sentinel structure:
//
//	S1(inf2) ── left ─→ S2(inf1) ── left ─→ leaf(inf1)
//	   └─ right → leaf(inf2)        └─ right → leaf(inf1)
//
// Every reachable leaf for a legal key has both a parent and a
// grandparent, and the sentinels are never modified except S2's left
// child pointer.
func newBase(mem core.Memory) base {
	th := mem.Thread(0)
	mkLeaf := func(k uint64) core.Addr {
		n := th.Alloc(nodeWords)
		th.Store(n.Plus(fMeta), 1)
		th.Store(n.Plus(fKey), k)
		return n
	}
	mkInternal := func(k uint64, l, r core.Addr) core.Addr {
		n := th.Alloc(nodeWords)
		th.Store(n.Plus(fMeta), 0)
		th.Store(n.Plus(fKey), k)
		th.Store(n.Plus(fLeft), uint64(l))
		th.Store(n.Plus(fRight), uint64(r))
		return n
	}
	s2 := mkInternal(inf1, mkLeaf(inf1), mkLeaf(inf1))
	s1 := mkInternal(inf2, s2, mkLeaf(inf2))
	return base{mem: mem, root: s1}
}

func isLeaf(th core.Thread, n core.Addr) bool  { return th.Load(n.Plus(fMeta))&1 != 0 }
func keyOf(th core.Thread, n core.Addr) uint64 { return th.Load(n.Plus(fKey)) }

// childSlot returns the address of the child pointer the search for key
// follows from internal node n, and whether it went left.
func childSlot(th core.Thread, n core.Addr, key uint64) (slot core.Addr, left bool) {
	if key < keyOf(th, n) {
		return n.Plus(fLeft), true
	}
	return n.Plus(fRight), false
}

// newLeaf allocates a leaf holding key.
func newLeaf(th core.Thread, key uint64) core.Addr {
	n := th.Alloc(nodeWords)
	th.Store(n.Plus(fMeta), 1)
	th.Store(n.Plus(fKey), key)
	return n
}

// newSubtree builds the three-node replacement for inserting key next to a
// leaf holding lkey: a fresh internal whose routing key is the larger of
// the two, with the two leaves ordered.
func newSubtree(th core.Thread, key, lkey uint64) core.Addr {
	small, big := key, lkey
	if small > big {
		small, big = big, small
	}
	n := th.Alloc(nodeWords)
	th.Store(n.Plus(fMeta), 0)
	th.Store(n.Plus(fKey), big)
	th.Store(n.Plus(fLeft), uint64(newLeaf(th, small)))
	th.Store(n.Plus(fRight), uint64(newLeaf(th, big)))
	return n
}

// collect enumerates the set while quiescent (keys below inf1 only).
func (b *base) collect(th core.Thread) []uint64 {
	var out []uint64
	var walk func(n core.Addr)
	walk = func(n core.Addr) {
		if isLeaf(th, n) {
			if k := keyOf(th, n); k < inf1 {
				out = append(out, k)
			}
			return
		}
		walk(core.Addr(th.Load(n.Plus(fLeft))))
		walk(core.Addr(th.Load(n.Plus(fRight))))
	}
	walk(b.root)
	return out
}
