package txset

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/schedfuzz"
	"repro/internal/stm"
	"repro/internal/vtags"
)

// TestLinearizableVTags checks the STM-backed set under both baseline
// NOrec and tagged NOrec. Forced spurious evictions drive the tagged
// variant through its tag-abort and value-based-validation fallback paths.
func TestLinearizableVTags(t *testing.T) {
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"norec", func(m core.Memory) intset.Set { return New(m, stm.NewNOrec(m)) }},
		{"tagged", func(m core.Memory) intset.Set { return New(m, stm.NewTagged(m)) }},
	}
	newMem := func(threads int) core.Memory { return vtags.New(16<<20, threads) }
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				fuzz := schedfuzz.Default(seed)
				intset.CheckLinearizable(t, newMem, v.build, intset.LinearizeConfig{
					Threads:      4,
					OpsPerThread: intset.LinearizeOps(200),
					KeyRange:     16,
					Prefill:      8,
					Seed:         seed,
					Fuzz:         &fuzz,
				})
			}
		})
	}
}
