// Package txset adapts the transactional red-black map (internal/txmap)
// to the ordered-set interface, turning NOrec / tagged NOrec into a
// drop-in competitor for the hand-crafted concurrent sets. This realizes
// the classic comparison the paper's trade-off discussion implies: a
// general-purpose STM set pays validation and write-buffer overhead per
// operation, where the purpose-built tagged structures synchronize only on
// the few locations their invariants require.
package txset

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
	"repro/internal/stm"
	"repro/internal/txmap"
)

// Set is an ordered set whose every operation is one STM transaction over
// a red-black tree.
type Set struct {
	tm *stm.TM
	m  *txmap.Map
}

var _ intset.Set = (*Set)(nil)

// New creates an empty set over the given STM instance.
func New(mem core.Memory, tm *stm.TM) *Set {
	return &Set{tm: tm, m: txmap.New(mem)}
}

// TM returns the underlying STM (for abort statistics).
func (s *Set) TM() *stm.TM { return s.tm }

// SetReclaim wires a reclamation pool (object size txmap.NodeWords) into
// the underlying map. The STM must have the pool's domain attached
// (stm.TM.SetReclaim) so every transaction attempt is bracketed. Only call
// while quiescent, before operations.
func (s *Set) SetReclaim(p *reclaim.Pool) { s.m.SetReclaim(p) }

// Insert adds key, reporting whether it was absent.
func (s *Set) Insert(th core.Thread, key uint64) bool {
	var added bool
	s.tm.Run(th, func(tx *stm.Tx) {
		added = s.m.Put(tx, key, 1, th)
	})
	return added
}

// Delete removes key, reporting whether it was present.
func (s *Set) Delete(th core.Thread, key uint64) bool {
	var removed bool
	s.tm.Run(th, func(tx *stm.Tx) {
		removed = s.m.Delete(tx, key)
	})
	return removed
}

// Contains reports whether key is present.
func (s *Set) Contains(th core.Thread, key uint64) bool {
	var found bool
	s.tm.Run(th, func(tx *stm.Tx) {
		_, found = s.m.Get(tx, key)
	})
	return found
}

// Keys enumerates the set in order (one read-only transaction).
func (s *Set) Keys(th core.Thread) []uint64 {
	var keys []uint64
	s.tm.Run(th, func(tx *stm.Tx) {
		keys = keys[:0]
		s.m.ForEach(tx, func(k, _ uint64) { keys = append(keys, k) })
	})
	return keys
}
