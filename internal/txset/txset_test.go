package txset

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/vtags"
)

func forAllTxSets(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, s *Set)) {
	backends := []struct {
		name string
		mk   func(int) core.Memory
	}{
		{"vtags", func(n int) core.Memory { return vtags.New(64<<20, n) }},
		{"machine", func(n int) core.Memory {
			cfg := machine.DefaultConfig(n)
			cfg.MemBytes = 64 << 20
			cfg.MaxTags = 128
			return machine.New(cfg)
		}},
	}
	tms := []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"NOrec", stm.NewNOrec},
		{"Tagged", stm.NewTagged},
	}
	for _, b := range backends {
		for _, v := range tms {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, New(mem, v.mk(mem)))
			})
		}
	}
}

func TestTxSetSequential(t *testing.T) {
	forAllTxSets(t, 1, func(t *testing.T, mem core.Memory, s *Set) {
		intset.CheckSequential(t, mem, s, 1500, 96, 3)
	})
}

func TestTxSetConcurrentDisjoint(t *testing.T) {
	forAllTxSets(t, 4, func(t *testing.T, mem core.Memory, s *Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 150)
	})
}

func TestTxSetConcurrentMixed(t *testing.T) {
	forAllTxSets(t, 4, func(t *testing.T, mem core.Memory, s *Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 150, 24)
	})
}

func TestTxSetKeysSorted(t *testing.T) {
	mem := vtags.New(16<<20, 1)
	s := New(mem, stm.NewNOrec(mem))
	th := mem.Thread(0)
	for _, k := range []uint64{9, 1, 5, 3} {
		s.Insert(th, k)
	}
	keys := s.Keys(th)
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v", keys)
		}
	}
}
