package chromatic

import "repro/internal/core"

// The rebalancing planners. Each materializes the replacement subtree for
// one atomic step and documents its path-sum bookkeeping: for every leaf
// of the affected region, the sum of weights from above the replaced top
// to that leaf is unchanged. W denotes the (identical) prefix above the
// region.
//
// Orientation convention: the boolean arguments state whether the relevant
// node is its parent's LEFT child; mirrors are derived inside.

// planInsert replaces leaf l with a three-node subtree holding both keys.
//
//	path sums: old leaf contributes w_l. New: i(w_l-1) + leaf(1) = w_l on
//	both sides. The new internal routes on the larger key (left < key).
func planInsert(th core.Thread, l nodeC, key uint64) core.Addr {
	small, big := key, l.key
	if small > big {
		small, big = big, small
	}
	return writeNode(th, nodeC{
		w:     l.w - 1,
		key:   big,
		left:  writeNode(th, nodeC{leaf: true, w: 1, key: small}),
		right: writeNode(th, nodeC{leaf: true, w: 1, key: big}),
	})
}

// planDelete promotes the removed leaf's sibling with the parent's weight
// absorbed.
//
//	path sums through s: w_p + w_s before, w_p+w_s after. (The l-side
//	paths disappear with the key.)
func planDelete(th core.Thread, p, s nodeC) core.Addr {
	s.w = p.w + s.w
	return writeNode(th, s)
}

// planRootWeight renormalizes the root-child to weight 1. All real leaves
// are below it, so every path shifts equally — the path-sum rule compares
// only leaves against each other.
func planRootWeight(th core.Thread, x nodeC) core.Addr {
	x.w = 1
	return writeNode(th, x)
}

// planBLK is the recolouring for a red-red (x under p) with a red uncle u:
// blacken p and u, lift the deficit into gp.
//
//	sums: p-side: w_gp + 0 -> (w_gp-1) + 1; u-side: w_gp + 0 -> (w_gp-1)+1.
//	Requires w_gp >= 1 (guaranteed: the red-red at x is the topmost on the
//	path, so (p, gp) is not itself red-red).
//
// Removed nodes: gp, p, u.
func planBLK(th core.Thread, gp, p, u nodeC, pIsLeft bool) core.Addr {
	p.w = 1
	u.w = 1
	pNew := writeNode(th, p)
	uNew := writeNode(th, u)
	gp.w = gp.w - 1
	if pIsLeft {
		gp.left, gp.right = pNew, uNew
	} else {
		gp.left, gp.right = uNew, pNew
	}
	return writeNode(th, gp)
}

// planRB1 is the single rotation for a red-red with black uncle and x an
// outside grandchild: p rises to gp's place and weight; gp descends red.
//
//	(x = p.left, p = gp.left; mirror symmetric)
//	sums: x: w_gp+0+0 -> w_gp+0 ... x keeps its node (untouched);
//	      c3 (p's other child): w_gp+0+w_c3 -> w_gp+0+w_c3;
//	      u: w_gp+w_u -> w_gp+0+w_u.
//
// Removed nodes: gp, p. x is re-pointed, not replaced.
func planRB1(th core.Thread, gp, p nodeC, xAddr core.Addr, pIsLeft bool) core.Addr {
	var c3, u core.Addr
	if pIsLeft {
		c3, u = p.right, gp.right
	} else {
		c3, u = p.left, gp.left
	}
	gpDown := gp
	gpDown.w = 0
	if pIsLeft {
		gpDown.left, gpDown.right = c3, u
	} else {
		gpDown.left, gpDown.right = u, c3
	}
	gpNew := writeNode(th, gpDown)
	top := p
	top.w = gp.w
	if pIsLeft {
		top.left, top.right = xAddr, gpNew
	} else {
		top.left, top.right = gpNew, xAddr
	}
	return writeNode(th, top)
}

// planRB2 is the double rotation for a red-red with black uncle and x an
// inside grandchild: x rises to gp's place and weight; p and gp descend
// red.
//
//	(p = gp.left, x = p.right with children a, b; mirror symmetric)
//	sums: c3: w_gp+0+w_c3 -> w_gp+0+w_c3; a: w_gp+0+0+w_a -> w_gp+0+w_a;
//	      b likewise; u: w_gp+w_u -> w_gp+0+w_u.
//
// Removed nodes: gp, p, x.
func planRB2(th core.Thread, gp, p, x nodeC, pIsLeft bool) core.Addr {
	var c3, u core.Addr
	if pIsLeft {
		c3, u = p.left, gp.right
	} else {
		c3, u = p.right, gp.left
	}
	a, b := x.left, x.right
	pDown := p
	pDown.w = 0
	gpDown := gp
	gpDown.w = 0
	if pIsLeft {
		pDown.left, pDown.right = c3, a
		gpDown.left, gpDown.right = b, u
	} else {
		gpDown.left, gpDown.right = u, a
		pDown.left, pDown.right = b, c3
	}
	pNew := writeNode(th, pDown)
	gpNew := writeNode(th, gpDown)
	top := x
	top.w = gp.w
	if pIsLeft {
		top.left, top.right = pNew, gpNew
	} else {
		top.left, top.right = gpNew, pNew
	}
	return writeNode(th, top)
}

// planA1 pushes one unit of weight from both children into the parent,
// shrinking x's overweight (or eliminating it).
//
//	sums: x: w_p+w_x -> (w_p+1)+(w_x-1); s: w_p+w_s -> (w_p+1)+(w_s-1).
//	Requires w_s >= 1. s' = w_s-1 may become red under p' (w_p+1 >= 1):
//	no red-red created; p' may become overweight: the violation moves up.
//
// Removed nodes: p, x, s.
func planA1(th core.Thread, p, x, s nodeC, xIsLeft bool) core.Addr {
	x.w--
	s.w--
	xNew := writeNode(th, x)
	sNew := writeNode(th, s)
	p.w++
	if xIsLeft {
		p.left, p.right = xNew, sNew
	} else {
		p.left, p.right = sNew, xNew
	}
	return writeNode(th, p)
}

// planA2 rotates a red sibling up when its near child c is not red,
// giving x a pushable sibling for the next pass (A1).
//
//	(x = p.left, s = p.right red with s{c, d}; mirror symmetric)
//	sums: x: w_p+w_x -> w_p+0+w_x; c: w_p+0+w_c -> w_p+0+w_c;
//	      d: w_p+0+w_d -> w_p+w_d.
//	No new violations: p'(0) sits under s'(w_p >= 1) — w_p >= 1 because a
//	red p under a red s's... p red with red child s would be a red-red at
//	s, found before x on the path.
//
// Removed nodes: p, s.
func planA2(th core.Thread, p, s nodeC, xAddr core.Addr, xIsLeft bool) core.Addr {
	var c, d core.Addr
	if xIsLeft {
		c, d = s.left, s.right
	} else {
		c, d = s.right, s.left
	}
	pDown := p
	pDown.w = 0
	if xIsLeft {
		pDown.left, pDown.right = xAddr, c
	} else {
		pDown.left, pDown.right = c, xAddr
	}
	pNew := writeNode(th, pDown)
	top := s
	top.w = p.w
	if xIsLeft {
		top.left, top.right = pNew, d
	} else {
		top.left, top.right = d, pNew
	}
	return writeNode(th, top)
}

// planA3 handles a red sibling whose near child c is also red (an existing
// red-red inside the sibling): double-rotate c to the top, consuming that
// red-red and strictly shrinking x's sibling subtree.
//
//	(x = p.left, s = p.right{c{e, f}, d}; mirror symmetric)
//	sums: x: w_p+w_x -> w_p+0+w_x; e: w_p+0+0+w_e -> w_p+0+w_e;
//	      f likewise; d: w_p+0+w_d -> w_p+0+w_d.
//
// Removed nodes: p, s, c.
func planA3(th core.Thread, p, s, c nodeC, xAddr core.Addr, xIsLeft bool) core.Addr {
	var d core.Addr
	var e, f core.Addr
	if xIsLeft {
		d = s.right
		e, f = c.left, c.right
	} else {
		d = s.left
		e, f = c.right, c.left
	}
	pDown := p
	pDown.w = 0
	sDown := s
	sDown.w = 0
	if xIsLeft {
		pDown.left, pDown.right = xAddr, e
		sDown.left, sDown.right = f, d
	} else {
		pDown.left, pDown.right = e, xAddr
		sDown.left, sDown.right = d, f
	}
	pNew := writeNode(th, pDown)
	sNew := writeNode(th, sDown)
	top := c
	top.w = p.w
	if xIsLeft {
		top.left, top.right = pNew, sNew
	} else {
		top.left, top.right = sNew, pNew
	}
	return writeNode(th, top)
}

// planPUSH resolves a red-red at x when rotations are unavailable (x is an
// inside-grandchild leaf): blacken p and push the compensating weight into
// the uncle, lifting one unit out of gp.
//
//	sums: p-side: w_gp + 0 -> (w_gp-1) + 1; u-side: w_gp + w_u ->
//	(w_gp-1) + (w_u+1). Requires w_gp >= 1 (topmost red-red).
//	u' may become overweight (the violation transforms); gp' may become
//	red (a red-red may move up).
//
// Removed nodes: gp, p, u.
func planPUSH(th core.Thread, gp, p, u nodeC, pIsLeft bool) core.Addr {
	p.w = 1
	u.w = u.w + 1
	pNew := writeNode(th, p)
	uNew := writeNode(th, u)
	gp.w = gp.w - 1
	if pIsLeft {
		gp.left, gp.right = pNew, uNew
	} else {
		gp.left, gp.right = uNew, pNew
	}
	return writeNode(th, gp)
}

// planA1b absorbs x's excess by rotating its weight-1 sibling s up, when
// s's near child c is not red (c would otherwise turn red-red under the
// descending red p').
//
//	(x = p.left, s = p.right(w=1){c, d}; mirror symmetric)
//	sums: x: w_p+w_x -> (w_p+1)+0+(w_x-1); c: w_p+1+w_c -> (w_p+1)+0+w_c;
//	      d: w_p+1+w_d -> (w_p+1)+w_d.
//	d may be red: it sits under s'(w_p+1 >= 1). x' = w_x-1 >= 1: no reds
//	introduced below p'(0).
//
// Removed nodes: p, x, s (c, d reused).
func planA1b(th core.Thread, p, x, s nodeC, xIsLeft bool) core.Addr {
	var c, d core.Addr
	if xIsLeft {
		c, d = s.left, s.right
	} else {
		c, d = s.right, s.left
	}
	x.w--
	xNew := writeNode(th, x)
	pDown := p
	pDown.w = 0
	if xIsLeft {
		pDown.left, pDown.right = xNew, c
	} else {
		pDown.left, pDown.right = c, xNew
	}
	pNew := writeNode(th, pDown)
	top := s
	top.w = p.w + 1
	if xIsLeft {
		top.left, top.right = pNew, d
	} else {
		top.left, top.right = d, pNew
	}
	return writeNode(th, top)
}

// planA1c handles a weight-1 sibling whose *near* child c is red (far
// child d is not): double-rotate c to the top.
//
//	(x = p.left, s = p.right(1){c(0){e, f}, d}; mirror symmetric)
//	sums: x: w_p+w_x -> (w_p+1)+0+(w_x-1); e: w_p+1+0+w_e -> (w_p+1)+0+w_e;
//	      f: w_p+1+0+w_f -> (w_p+1)+0+w_f; d: w_p+1+w_d -> (w_p+1)+0+1+w_d...
//	d keeps its place under s'(1): w_p+1+w_d -> (w_p+1)+0... see below: s'
//	keeps weight 1 under the new red top? No: s' drops to 0 and c' rises
//	with w_p+1; d: (w_p+1)+0+w_d ✓.
//	Red-reds (e,c)/(f,c), if any, existed before and transform in place.
//	Guard: w_d >= 1 (else d would turn red-red under s'(0)).
//
// Removed nodes: p, x, s, c (e, f, d reused).
func planA1c(th core.Thread, p, x, s, c nodeC, xIsLeft bool) core.Addr {
	var d core.Addr
	var e, f core.Addr
	if xIsLeft {
		d = s.right
		e, f = c.left, c.right
	} else {
		d = s.left
		e, f = c.right, c.left
	}
	x.w--
	xNew := writeNode(th, x)
	pDown := p
	pDown.w = 0
	sDown := s
	sDown.w = 0
	if xIsLeft {
		pDown.left, pDown.right = xNew, e
		sDown.left, sDown.right = f, d
	} else {
		pDown.left, pDown.right = e, xNew
		sDown.left, sDown.right = d, f
	}
	pNew := writeNode(th, pDown)
	sNew := writeNode(th, sDown)
	top := c
	top.w = p.w + 1
	if xIsLeft {
		top.left, top.right = pNew, sNew
	} else {
		top.left, top.right = sNew, pNew
	}
	return writeNode(th, top)
}

// planA1e handles a weight-1 sibling with *both* children red: blacken the
// far child, lift s into p's position.
//
//	(x = p.left, s = p.right(1){c(0), d(0)}; mirror symmetric)
//	sums: x: w_p+w_x -> w_p+1+(w_x-1); c: w_p+1+0 -> w_p+1+0 (c reused);
//	      d: w_p+1+0 -> w_p+1 (d' carries weight 1).
//	s'(w_p) takes p's exact weight, so nothing changes above; d's red-red
//	with s (pre-existing, off path) is consumed by d'(1).
//
// Removed nodes: p, x, s, d (c reused).
func planA1e(th core.Thread, p, x, s, d nodeC, xIsLeft bool) core.Addr {
	var c core.Addr
	if xIsLeft {
		c = s.left
	} else {
		c = s.right
	}
	x.w--
	xNew := writeNode(th, x)
	d.w = 1
	dNew := writeNode(th, d)
	pDown := p
	pDown.w = 1
	if xIsLeft {
		pDown.left, pDown.right = xNew, c
	} else {
		pDown.left, pDown.right = c, xNew
	}
	pNew := writeNode(th, pDown)
	top := s
	top.w = p.w
	if xIsLeft {
		top.left, top.right = pNew, dNew
	} else {
		top.left, top.right = dNew, pNew
	}
	return writeNode(th, top)
}
