package chromatic

import (
	"repro/internal/core"
	"repro/internal/intset"
)

// HoH is the hand-over-hand-tagged chromatic tree: tagged three-ancestor
// windows for searches, one IAS per structural step (update or
// rebalancing), transiently marking every removed node.
type HoH struct {
	base
}

var _ intset.Set = (*HoH)(nil)

// NewHoH creates an empty tree.
func NewHoH(mem core.Memory) *HoH {
	// Window: gp, p, l plus the next node during extension = 4 nodes;
	// rebalancing steps tag up to 6 (PushDown: gp, p, x, s and x's two
	// children).
	if mem.MaxTags() < 7 {
		panic("chromatic: MaxTags below the HoH tagging window")
	}
	return &HoH{base: newBase(mem)}
}

// locate performs the tagged descent (same induction as bst.HoH). On
// return gp, p, l are tagged; the caller must ClearTagSet.
func (t *HoH) locate(th core.Thread, key uint64) (gp, p, l core.Addr) {
	for {
		th.ClearTagSet()
		gp, p = core.NilAddr, core.NilAddr
		l = t.root
		th.AddTag(l, nodeBytes)
		if !th.Validate() {
			continue
		}
		restart := false
		for !isLeaf(th, l) {
			next := core.Addr(th.Load(childSlot(th, l, key)))
			th.AddTag(next, nodeBytes)
			if !th.Validate() {
				restart = true
				break
			}
			if !gp.IsNil() {
				th.RemoveTag(gp, nodeBytes)
			}
			gp, p, l = p, l, next
		}
		if restart {
			continue
		}
		return gp, p, l
	}
}

// Contains reports whether key is present.
func (t *HoH) Contains(th core.Thread, key uint64) bool {
	_, _, l := t.locate(th, key)
	found := keyOf(th, l) == key
	th.ClearTagSet()
	return found
}

// Insert adds key, reporting whether it was absent, then rebalances.
func (t *HoH) Insert(th core.Thread, key uint64) bool {
	for {
		_, p, l := t.locate(th, key)
		ld := readNode(th, l)
		if ld.key == key {
			th.ClearTagSet()
			return false
		}
		repl := planInsert(th, ld, key)
		if th.IAS(childSlot(th, p, key), uint64(repl)) {
			th.ClearTagSet()
			t.cleanup(th, key)
			return true
		}
		th.ClearTagSet()
	}
}

// Delete removes key, reporting whether it was present, then rebalances.
// The IAS invalidates the window {gp, p, l} plus the absorbed sibling.
func (t *HoH) Delete(th core.Thread, key uint64) bool {
	for {
		gp, p, l := t.locate(th, key)
		if keyOf(th, l) != key {
			th.ClearTagSet()
			return false
		}
		if p == t.s2 {
			// Rotations can leave a single real leaf as the root-child;
			// deleting it empties the tree: restore the sentinel leaf.
			repl := writeNode(th, nodeC{leaf: true, w: 1, key: inf1})
			if th.IAS(childSlot(th, p, key), uint64(repl)) {
				th.ClearTagSet()
				return true
			}
			th.ClearTagSet()
			continue
		}
		pd := readNode(th, p)
		var sAddr core.Addr
		if pd.left == l {
			sAddr = pd.right
		} else {
			sAddr = pd.left
		}
		// The sibling is absorbed into a reweighted copy: it is removed
		// too, so it joins the tag set (and thus the IAS invalidation).
		th.AddTag(sAddr, nodeBytes)
		sd := readNode(th, sAddr)
		if !th.Validate() {
			th.ClearTagSet()
			continue
		}
		repl := planDelete(th, pd, sd)
		if th.IAS(childSlot(th, gp, key), uint64(repl)) {
			th.ClearTagSet()
			t.cleanup(th, key)
			return true
		}
		th.ClearTagSet()
	}
}

// cleanup repeatedly searches toward key with an untagged descent, fixing
// the topmost violation, until the path is clean (the same best-effort
// discipline as the (a,b)-tree: a fix that lands on an unreachable node is
// vacuous and the violation is rediscovered).
func (t *HoH) cleanup(th core.Thread, key uint64) {
	for {
		if t.cleanupPass(th, key) {
			return
		}
	}
}

// cleanupPass walks the path to key, returning true if it was clean.
func (t *HoH) cleanupPass(th core.Thread, key uint64) bool {
	ggp, gp, p := core.NilAddr, core.NilAddr, t.root
	x := core.Addr(th.Load(childSlot(th, p, key))) // S2
	// Descend from S2's real child.
	ggp, gp, p, x = gp, p, x, core.Addr(th.Load(childSlot(th, x, key)))
	for {
		w := weightOf(th, x)
		if w >= 2 && !t.isResidualOverweight(th, p, x) {
			if p == t.s2 {
				t.fixRootWeight(th, p, x, key)
			} else {
				t.fixOverweight(th, ggp, gp, p, x, key)
			}
			return false
		}
		if w == 0 && p != t.s2 && weightOf(th, p) == 0 {
			if gp == t.s2 {
				// A red root-child with a red child: fixing the red-red
				// would rewrite the sentinel; instead promote the
				// root-child to weight 1 (a uniform shift of every real
				// path, legal at the root).
				t.fixRootPromote(th, gp, p, key)
			} else {
				t.fixRedRed(th, ggp, gp, p, x, key)
			}
			return false
		}
		if isLeaf(th, x) {
			return true
		}
		ggp, gp, p = gp, p, x
		x = core.Addr(th.Load(childSlot(th, x, key)))
	}
}

// isResidualOverweight reports the one configuration with no
// weight-preserving local fix: an overweight node whose sibling is a red
// leaf. The sibling's path sum pins the parent's weight, so x's excess
// cannot move up; pushing it down and re-raising it cycles (for weight 2
// the push-down/push-up pair reproduces the configuration exactly), so it
// is tolerated: path sums stay equal and no path lengthens.
func (t *HoH) isResidualOverweight(th core.Thread, p, x core.Addr) bool {
	if p == t.s2 {
		return false
	}
	pd := readNode(th, p)
	s := pd.right
	if pd.left != x {
		if pd.right != x {
			return false
		}
		s = pd.left
	}
	return isLeaf(th, s) && weightOf(th, s) == 0
}

// fixRootWeight renormalizes the root-child's weight to 1.
func (t *HoH) fixRootWeight(th core.Thread, p, x core.Addr, key uint64) {
	defer th.ClearTagSet()
	th.AddTag(p, nodeBytes)
	slot := childSlot(th, p, key)
	if core.Addr(th.Load(slot)) != x {
		return
	}
	th.AddTag(x, nodeBytes)
	xd := readNode(th, x)
	if xd.w < 2 || !th.Validate() {
		return
	}
	th.IAS(slot, uint64(planRootWeight(th, xd)))
}

// fixRootPromote recolours a red root-child to weight 1 (its child is red,
// so some rebalance is required, and the sentinel above cannot rotate).
func (t *HoH) fixRootPromote(th core.Thread, s2, rc core.Addr, key uint64) {
	defer th.ClearTagSet()
	th.AddTag(s2, nodeBytes)
	slot := childSlot(th, s2, key)
	if core.Addr(th.Load(slot)) != rc {
		return
	}
	th.AddTag(rc, nodeBytes)
	rcd := readNode(th, rc)
	if rcd.w != 0 || !th.Validate() {
		return
	}
	th.IAS(slot, uint64(planRootWeight(th, rcd)))
}

// fixRedRed applies BLK / RB1 / RB2 for the topmost red-red at x.
func (t *HoH) fixRedRed(th core.Thread, ggp, gp, p, x core.Addr, key uint64) {
	defer th.ClearTagSet()
	th.AddTag(ggp, nodeBytes)
	ggpSlot := childSlot(th, ggp, key)
	if core.Addr(th.Load(ggpSlot)) != gp {
		return
	}
	th.AddTag(gp, nodeBytes)
	gpd := readNode(th, gp)
	pIsLeft := gpd.left == p
	if !pIsLeft && gpd.right != p {
		return
	}
	th.AddTag(p, nodeBytes)
	pd := readNode(th, p)
	if pd.left != x && pd.right != x {
		return
	}
	if pd.w != 0 || weightOf(th, x) != 0 || gpd.w < 1 {
		return // violation gone or not topmost anymore
	}
	uAddr := gpd.right
	if !pIsLeft {
		uAddr = gpd.left
	}
	var repl core.Addr
	if weightOf(th, uAddr) == 0 {
		// BLK: recolour; u is replaced, so tag (and invalidate) it too.
		th.AddTag(uAddr, nodeBytes)
		ud := readNode(th, uAddr)
		if !th.Validate() {
			return
		}
		repl = planBLK(th, gpd, pd, ud, pIsLeft)
	} else if (pd.left == x) == pIsLeft {
		// Outside grandchild: single rotation.
		if !th.Validate() {
			return
		}
		repl = planRB1(th, gpd, pd, x, pIsLeft)
	} else if !isLeaf(th, x) {
		// Inside grandchild: double rotation; x is replaced.
		th.AddTag(x, nodeBytes)
		xd := readNode(th, x)
		if !th.Validate() {
			return
		}
		repl = planRB2(th, gpd, pd, xd, pIsLeft)
	} else {
		// Inside grandchild leaf: no rotation material; push weight into
		// the uncle instead. u is replaced, so tag (and invalidate) it.
		th.AddTag(uAddr, nodeBytes)
		ud := readNode(th, uAddr)
		if !th.Validate() {
			return
		}
		repl = planPUSH(th, gpd, pd, ud, pIsLeft)
		if th.IAS(ggpSlot, uint64(repl)) {
			// The uncle may now be overweight — off this search path, so
			// chase it with a cleanup routed into its range.
			th.ClearTagSet()
			t.cleanup(th, sideKey(gpd.key, !pIsLeft))
		}
		return
	}
	th.IAS(ggpSlot, uint64(repl))
}

// sideKey returns a key that routes to the given side of a node with the
// given router key (left: any key < router; right: any key >= router).
func sideKey(router uint64, left bool) uint64 {
	if left {
		return router - 1
	}
	return router
}

// fixOverweight removes the overweight at x, dispatching on the sibling's
// shape so that no step creates a red-red the cleanup cannot see:
//
//	w_s >= 2, or w_s == 1 with no red child, or s a leaf  -> A1
//	w_s == 1, near child red, far child black             -> A1c
//	w_s == 1, near child black, far child red             -> A1b
//	w_s == 1, both children red                           -> A1e
//	s red internal (fix the off-path red-red first if p is red too;
//	  else rotate: near nephew black -> A2, red -> A3)
//	s red leaf: internal x -> PushDown (chasing the off-path child);
//	  leaf x -> residual (tolerated; see isResidualOverweight)
func (t *HoH) fixOverweight(th core.Thread, ggp, gp, p, x core.Addr, key uint64) {
	defer th.ClearTagSet()
	th.AddTag(gp, nodeBytes)
	gpSlot := childSlot(th, gp, key)
	if core.Addr(th.Load(gpSlot)) != p {
		return
	}
	th.AddTag(p, nodeBytes)
	pd := readNode(th, p)
	xIsLeft := pd.left == x
	if !xIsLeft && pd.right != x {
		return
	}
	if weightOf(th, x) < 2 {
		return
	}
	th.AddTag(x, nodeBytes)
	xd := readNode(th, x)
	sAddr := pd.right
	if !xIsLeft {
		sAddr = pd.left
	}
	th.AddTag(sAddr, nodeBytes)
	sd := readNode(th, sAddr)

	commit := func(repl core.Addr) {
		th.IAS(gpSlot, uint64(repl))
	}
	switch {
	case sd.w >= 2 || (sd.w == 1 && sd.leaf):
		if !th.Validate() {
			return
		}
		commit(planA1(th, pd, xd, sd, xIsLeft))
	case sd.w == 1:
		// Internal sibling of weight 1: inspect its children.
		cAddr, dAddr := sd.left, sd.right
		if !xIsLeft {
			cAddr, dAddr = sd.right, sd.left
		}
		wc, wd := weightOf(th, cAddr), weightOf(th, dAddr)
		switch {
		case wc >= 1 && wd >= 1:
			if !th.Validate() {
				return
			}
			commit(planA1(th, pd, xd, sd, xIsLeft))
		case wc == 0 && wd >= 1:
			th.AddTag(cAddr, nodeBytes)
			cd := readNode(th, cAddr)
			if !th.Validate() {
				return
			}
			commit(planA1c(th, pd, xd, sd, cd, xIsLeft))
		case wc >= 1: // wd == 0
			if !th.Validate() {
				return
			}
			commit(planA1b(th, pd, xd, sd, xIsLeft))
		default: // both red
			th.AddTag(dAddr, nodeBytes)
			dd := readNode(th, dAddr)
			if !th.Validate() {
				return
			}
			commit(planA1e(th, pd, xd, sd, dd, xIsLeft))
		}
	case !sd.leaf: // red internal sibling
		if pd.w == 0 {
			// (s, p) is an off-path red-red; rotating now would bury it.
			// Fix it first, then rediscover the overweight.
			th.ClearTagSet()
			t.fixRedRed(th, ggp, gp, p, sAddr, key)
			return
		}
		cAddr := sd.left
		if !xIsLeft {
			cAddr = sd.right
		}
		if weightOf(th, cAddr) >= 1 {
			if !th.Validate() {
				return
			}
			commit(planA2(th, pd, sd, x, xIsLeft))
		} else {
			th.RemoveTag(x, nodeBytes)
			th.AddTag(cAddr, nodeBytes)
			cd := readNode(th, cAddr)
			if !th.Validate() {
				return
			}
			commit(planA3(th, pd, sd, cd, x, xIsLeft))
		}
	default:
		// Residual: an overweight node beside a red leaf is locally
		// irreducible and tolerated (see isResidualOverweight).
	}
}

// Keys enumerates the set while quiescent.
func (t *HoH) Keys(th core.Thread) []uint64 { return t.collect(th) }

// Root returns the top sentinel (for invariant checks).
func (t *HoH) Root() core.Addr { return t.root }

// S2 returns the second sentinel (for invariant checks).
func (t *HoH) S2() core.Addr { return t.s2 }
