package chromatic

import (
	"fmt"

	"repro/internal/core"
)

// checkable is satisfied by both variants.
type checkable interface {
	Root() core.Addr
	S2() core.Addr
}

// CheckInvariants validates a quiescent tree:
//
//   - the path-sum rule: every leaf of the real subtree has the same total
//     weight from the root-child down;
//   - search order: every real leaf key lies inside the routing range that
//     reaches it;
//   - no red-red violations remain;
//   - no overweight violations remain except the documented residual
//     (an overweight leaf whose sibling is a red leaf);
//   - the height is within the red-black bound implied by the path sum.
func CheckInvariants(th core.Thread, t checkable) error {
	s2 := t.S2()
	rc := core.Addr(th.Load(s2.Plus(fLeft)))

	var pathSum uint64
	havePathSum := false
	maxDepth := 0

	var walk func(n core.Addr, parentW, sum uint64, depth int, lo, hi uint64, siblingRedLeaf bool) error
	walk = func(n core.Addr, parentW, sum uint64, depth int, lo, hi uint64, siblingRedLeaf bool) error {
		nd := readNode(th, n)
		sum += nd.w
		if depth > maxDepth {
			maxDepth = depth
		}
		if nd.w == 0 && parentW == 0 {
			return fmt.Errorf("red-red violation at %#x (depth %d)", uint64(n), depth)
		}
		if nd.w >= 2 && depth > 0 && !siblingRedLeaf {
			return fmt.Errorf("overweight violation at %#x (w=%d, leaf=%v, depth %d)",
				uint64(n), nd.w, nd.leaf, depth)
		}
		if nd.leaf {
			if nd.key < inf1 && (nd.key < lo || nd.key > hi) {
				return fmt.Errorf("leaf key %d outside search range [%d, %d]", nd.key, lo, hi)
			}
			if !havePathSum {
				pathSum = sum
				havePathSum = true
			} else if sum != pathSum {
				return fmt.Errorf("path-sum rule broken: leaf %#x sums to %d, expected %d",
					uint64(n), sum, pathSum)
			}
			return nil
		}
		lRedLeaf := isLeaf(th, nd.left) && weightOf(th, nd.left) == 0
		rRedLeaf := isLeaf(th, nd.right) && weightOf(th, nd.right) == 0
		if err := walk(nd.left, nd.w, sum, depth+1, lo, minU(hi, nd.key-1), rRedLeaf); err != nil {
			return err
		}
		return walk(nd.right, nd.w, sum, depth+1, nd.key, hi, lRedLeaf)
	}
	// The root-child is exempt from the weight rules (depth 0).
	if err := walk(rc, 1, 0, 0, 0, ^uint64(0), false); err != nil {
		return err
	}
	// Red-black height bound: with no red-red, every other node on a path
	// weighs >= 1, so depth <= 2*pathSum + 1.
	if havePathSum && uint64(maxDepth) > 2*pathSum+2 {
		return fmt.Errorf("height %d exceeds the red-black bound for path sum %d", maxDepth, pathSum)
	}
	return nil
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
