package chromatic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

var chromVariants = []struct {
	name string
	mk   func(core.Memory) intset.Set
}{
	{"LLX", func(m core.Memory) intset.Set { return NewLLX(m) }},
	{"HoH", func(m core.Memory) intset.Set { return NewHoH(m) }},
}

var chromBackends = []struct {
	name string
	mk   func(int) core.Memory
}{
	{"vtags", func(n int) core.Memory { return vtags.New(64<<20, n) }},
	{"machine", func(n int) core.Memory {
		cfg := machine.DefaultConfig(n)
		cfg.MemBytes = 64 << 20
		return machine.New(cfg)
	}},
}

func forAllChrom(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, s intset.Set)) {
	for _, b := range chromBackends {
		for _, v := range chromVariants {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, v.mk(mem))
			})
		}
	}
}

func checkTree(t *testing.T, th core.Thread, s intset.Set) {
	t.Helper()
	if c, ok := s.(checkable); ok {
		if err := CheckInvariants(th, c); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	}
}

func TestChromaticBasic(t *testing.T) {
	forAllChrom(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if s.Contains(th, 5) || s.Delete(th, 5) {
			t.Fatal("empty tree misbehaves")
		}
		if !s.Insert(th, 5) || s.Insert(th, 5) {
			t.Fatal("insert semantics")
		}
		if !s.Contains(th, 5) {
			t.Fatal("key missing")
		}
		if !s.Delete(th, 5) || s.Delete(th, 5) || s.Contains(th, 5) {
			t.Fatal("delete semantics")
		}
		checkTree(t, th, s)
	})
}

func TestChromaticAscending(t *testing.T) {
	forAllChrom(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		const n = 300
		for k := uint64(1); k <= n; k++ {
			if !s.Insert(th, k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		checkTree(t, th, s)
		for k := uint64(1); k <= n; k++ {
			if !s.Contains(th, k) {
				t.Fatalf("key %d lost", k)
			}
		}
	})
}

func TestChromaticDescendingThenDrain(t *testing.T) {
	forAllChrom(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for k := uint64(300); k >= 1; k-- {
			s.Insert(th, k)
		}
		checkTree(t, th, s)
		for k := uint64(1); k <= 300; k++ {
			if !s.Delete(th, k) {
				t.Fatalf("delete %d failed", k)
			}
		}
		checkTree(t, th, s)
		if got := s.(intset.Snapshotter).Keys(th); len(got) != 0 {
			t.Fatalf("residue: %v", got)
		}
	})
}

func TestChromaticSequentialEquivalence(t *testing.T) {
	forAllChrom(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 3000, 128, 11)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestChromaticBalanceUnderChurn(t *testing.T) {
	forAllChrom(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(400) + 1)
			if rng.Intn(2) == 0 {
				s.Insert(th, k)
			} else {
				s.Delete(th, k)
			}
			if i%500 == 499 {
				checkTree(t, th, s)
			}
		}
		checkTree(t, th, s)
	})
}

func TestChromaticDisjointConcurrent(t *testing.T) {
	forAllChrom(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 250)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestChromaticMixedConcurrent(t *testing.T) {
	forAllChrom(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 250, 48)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestChromaticHighContention(t *testing.T) {
	forAllChrom(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 150, 6)
		checkTree(t, mem.Thread(0), s)
	})
}

// TestChromaticInterVariantAgreement runs one op stream through both.
func TestChromaticInterVariantAgreement(t *testing.T) {
	memA := vtags.New(64<<20, 1)
	memB := vtags.New(64<<20, 1)
	llx := NewLLX(memA)
	hoh := NewHoH(memB)
	thA, thB := memA.Thread(0), memB.Thread(0)
	ref := intset.Reference{}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(96) + 1)
		switch rng.Intn(3) {
		case 0:
			want := ref.Insert(k)
			if llx.Insert(thA, k) != want || hoh.Insert(thB, k) != want {
				t.Fatalf("op %d: Insert(%d) diverged", i, k)
			}
		case 1:
			want := ref.Delete(k)
			if llx.Delete(thA, k) != want || hoh.Delete(thB, k) != want {
				t.Fatalf("op %d: Delete(%d) diverged", i, k)
			}
		default:
			want := ref.Contains(k)
			if llx.Contains(thA, k) != want || hoh.Contains(thB, k) != want {
				t.Fatalf("op %d: Contains(%d) diverged", i, k)
			}
		}
	}
	if err := CheckInvariants(thA, llx); err != nil {
		t.Fatalf("LLX: %v", err)
	}
	if err := CheckInvariants(thB, hoh); err != nil {
		t.Fatalf("HoH: %v", err)
	}
}

// TestChromaticHeightLogarithmic: after heavy random churn the tree height
// must stay near the red-black bound.
func TestChromaticHeightLogarithmic(t *testing.T) {
	mem := vtags.New(128<<20, 1)
	s := NewHoH(mem)
	th := mem.Thread(0)
	const n = 4096
	rng := rand.New(rand.NewSource(6))
	for _, k := range rng.Perm(n) {
		s.Insert(th, uint64(k+1))
	}
	if err := CheckInvariants(th, s); err != nil {
		t.Fatal(err)
	}
	// Measure depth of the leftmost and a few random search paths.
	depth := func(key uint64) int {
		d := 0
		x := core.Addr(th.Load(s.s2.Plus(fLeft)))
		for !isLeaf(th, x) {
			x = core.Addr(th.Load(childSlot(th, x, key)))
			d++
		}
		return d
	}
	// 2*log2(4096) = 24; allow generous slack for relaxed balance.
	for _, k := range []uint64{1, n / 2, n, 17, 1234} {
		if d := depth(k); d > 36 {
			t.Fatalf("search path to %d has depth %d (> 36): unbalanced", k, d)
		}
	}
}

// TestHoHChromaticUsesIAS pins the tagged commit path.
func TestHoHChromaticUsesIAS(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 64 << 20
	m := machine.New(cfg)
	s := NewHoH(m)
	th := m.Thread(0)
	for k := uint64(1); k <= 60; k++ {
		s.Insert(th, k)
	}
	snap := m.Snapshot()
	if snap.IASAttempts == 0 || snap.TagAdds == 0 {
		t.Fatal("HoH chromatic tree issued no tagged commits")
	}
	if snap.Stores != 0 {
		// Node initialization uses plain stores; just sanity-check the
		// counter moved.
		_ = snap
	}
}
