package chromatic

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/llxscx"
)

// LLX is the software-baseline chromatic tree built on LLX/SCX: every
// structural step freezes its dependencies, finalizes the removed nodes
// and swings one pointer — the discipline of Brown et al.'s chromatic
// tree, applied to this package's derived rule set.
type LLX struct {
	base
	mgr *llxscx.Manager
}

var _ intset.Set = (*LLX)(nil)

// NewLLX creates an empty tree.
func NewLLX(mem core.Memory) *LLX {
	return &LLX{base: newBase(mem), mgr: llxscx.New(mem)}
}

// llxNode performs LLX on n, returning its contents (children from the
// snapshot) and the info value for a later SCX.
func (t *LLX) llxNode(th core.Thread, n core.Addr) (info uint64, nd nodeC, ok bool) {
	snap := make([]uint64, 2)
	info, st := t.mgr.LLX(th, n, fLeft, 2, snap)
	if st != llxscx.LLXSuccess {
		return 0, nodeC{}, false
	}
	nd = nodeC{leaf: isLeaf(th, n), w: weightOf(th, n), key: keyOf(th, n)}
	if !nd.leaf {
		nd.left = core.Addr(snap[0])
		nd.right = core.Addr(snap[1])
	}
	return info, nd, true
}

// search walks to the leaf covering key with the last three ancestors.
func (t *LLX) search(th core.Thread, key uint64) (ggp, gp, p, l core.Addr) {
	ggp, gp, p = core.NilAddr, core.NilAddr, core.NilAddr
	l = t.root
	for !isLeaf(th, l) {
		ggp, gp, p = gp, p, l
		l = core.Addr(th.Load(childSlot(th, l, key)))
	}
	return ggp, gp, p, l
}

// Contains reports whether key is present.
func (t *LLX) Contains(th core.Thread, key uint64) bool {
	_, _, _, l := t.search(th, key)
	return keyOf(th, l) == key
}

// scx is a thin wrapper assembling the dependency arrays.
func (t *LLX) scx(th core.Thread, deps []core.Addr, infos []uint64, fin []bool, slot core.Addr, old, new core.Addr) bool {
	return t.mgr.SCX(th, deps, infos, fin, slot, uint64(old), uint64(new))
}

// Insert adds key, reporting whether it was absent, then rebalances.
func (t *LLX) Insert(th core.Thread, key uint64) bool {
	for {
		_, _, p, l := t.search(th, key)
		infoP, pd, ok := t.llxNode(th, p)
		if !ok {
			continue
		}
		if pd.left != l && pd.right != l {
			continue
		}
		infoL, ld, ok := t.llxNode(th, l)
		if !ok {
			continue
		}
		if ld.key == key {
			return false
		}
		repl := planInsert(th, ld, key)
		if t.scx(th, []core.Addr{p, l}, []uint64{infoP, infoL}, []bool{false, true},
			childSlot(th, p, key), l, repl) {
			t.cleanup(th, key)
			return true
		}
	}
}

// Delete removes key, reporting whether it was present, then rebalances.
func (t *LLX) Delete(th core.Thread, key uint64) bool {
	for {
		_, gp, p, l := t.search(th, key)
		if keyOf(th, l) != key {
			return false
		}
		if p == t.s2 {
			// A lone real leaf as root-child: restore the sentinel leaf.
			infoP, pd, ok := t.llxNode(th, p)
			if !ok || (pd.left != l && pd.right != l) {
				continue
			}
			infoL, _, ok := t.llxNode(th, l)
			if !ok {
				continue
			}
			repl := writeNode(th, nodeC{leaf: true, w: 1, key: inf1})
			if t.scx(th, []core.Addr{p, l}, []uint64{infoP, infoL}, []bool{false, true},
				childSlot(th, p, key), l, repl) {
				return true
			}
			continue
		}
		infoGP, gpd, ok := t.llxNode(th, gp)
		if !ok || (gpd.left != p && gpd.right != p) {
			continue
		}
		infoP, pd, ok := t.llxNode(th, p)
		if !ok {
			continue
		}
		var sAddr core.Addr
		switch l {
		case pd.left:
			sAddr = pd.right
		case pd.right:
			sAddr = pd.left
		default:
			continue
		}
		infoL, _, ok := t.llxNode(th, l)
		if !ok {
			continue
		}
		infoS, sd, ok := t.llxNode(th, sAddr)
		if !ok {
			continue
		}
		repl := planDelete(th, pd, sd)
		if t.scx(th,
			[]core.Addr{gp, p, l, sAddr}, []uint64{infoGP, infoP, infoL, infoS},
			[]bool{false, true, true, true},
			childSlot(th, gp, key), p, repl) {
			t.cleanup(th, key)
			return true
		}
	}
}

// cleanup mirrors the HoH rebalancer with SCX commits.
func (t *LLX) cleanup(th core.Thread, key uint64) {
	for {
		if t.cleanupPass(th, key) {
			return
		}
	}
}

func (t *LLX) cleanupPass(th core.Thread, key uint64) bool {
	ggp, gp, p := core.NilAddr, core.NilAddr, t.root
	x := core.Addr(th.Load(childSlot(th, p, key))) // S2
	ggp, gp, p, x = gp, p, x, core.Addr(th.Load(childSlot(th, x, key)))
	for {
		w := weightOf(th, x)
		if w >= 2 && !t.isResidualOverweight(th, p, x) {
			if p == t.s2 {
				t.fixRootWeight(th, p, x, key)
			} else {
				t.fixOverweight(th, ggp, gp, p, x, key)
			}
			return false
		}
		if w == 0 && p != t.s2 && weightOf(th, p) == 0 {
			if gp == t.s2 {
				t.fixRootPromote(th, gp, p, key)
			} else {
				t.fixRedRed(th, ggp, gp, p, x, key)
			}
			return false
		}
		if isLeaf(th, x) {
			return true
		}
		ggp, gp, p = gp, p, x
		x = core.Addr(th.Load(childSlot(th, x, key)))
	}
}

func (t *LLX) isResidualOverweight(th core.Thread, p, x core.Addr) bool {
	if p == t.s2 {
		return false
	}
	pd := readNode(th, p)
	s := pd.right
	if pd.left != x {
		if pd.right != x {
			return false
		}
		s = pd.left
	}
	return isLeaf(th, s) && weightOf(th, s) == 0
}

func (t *LLX) fixRootWeight(th core.Thread, p, x core.Addr, key uint64) {
	infoP, pd, ok := t.llxNode(th, p)
	if !ok || (pd.left != x && pd.right != x) {
		return
	}
	infoX, xd, ok := t.llxNode(th, x)
	if !ok || xd.w < 2 {
		return
	}
	t.scx(th, []core.Addr{p, x}, []uint64{infoP, infoX}, []bool{false, true},
		childSlot(th, p, key), x, planRootWeight(th, xd))
}

func (t *LLX) fixRootPromote(th core.Thread, s2, rc core.Addr, key uint64) {
	infoP, pd, ok := t.llxNode(th, s2)
	if !ok || (pd.left != rc && pd.right != rc) {
		return
	}
	infoX, xd, ok := t.llxNode(th, rc)
	if !ok || xd.w != 0 {
		return
	}
	t.scx(th, []core.Addr{s2, rc}, []uint64{infoP, infoX}, []bool{false, true},
		childSlot(th, s2, key), rc, planRootWeight(th, xd))
}

func (t *LLX) fixRedRed(th core.Thread, ggp, gp, p, x core.Addr, key uint64) {
	infoGGP, ggpd, ok := t.llxNode(th, ggp)
	if !ok || (ggpd.left != gp && ggpd.right != gp) {
		return
	}
	infoGP, gpd, ok := t.llxNode(th, gp)
	if !ok {
		return
	}
	pIsLeft := gpd.left == p
	if !pIsLeft && gpd.right != p {
		return
	}
	infoP, pd, ok := t.llxNode(th, p)
	if !ok || (pd.left != x && pd.right != x) {
		return
	}
	if pd.w != 0 || weightOf(th, x) != 0 || gpd.w < 1 {
		return
	}
	uAddr := gpd.right
	if !pIsLeft {
		uAddr = gpd.left
	}
	slot := childSlot(th, ggp, key)
	switch {
	case weightOf(th, uAddr) == 0:
		infoU, ud, ok := t.llxNode(th, uAddr)
		if !ok {
			return
		}
		t.scx(th, []core.Addr{ggp, gp, p, uAddr}, []uint64{infoGGP, infoGP, infoP, infoU},
			[]bool{false, true, true, true}, slot, gp, planBLK(th, gpd, pd, ud, pIsLeft))
	case (pd.left == x) == pIsLeft:
		t.scx(th, []core.Addr{ggp, gp, p}, []uint64{infoGGP, infoGP, infoP},
			[]bool{false, true, true}, slot, gp, planRB1(th, gpd, pd, x, pIsLeft))
	case !isLeaf(th, x):
		infoX, xd, ok := t.llxNode(th, x)
		if !ok {
			return
		}
		t.scx(th, []core.Addr{ggp, gp, p, x}, []uint64{infoGGP, infoGP, infoP, infoX},
			[]bool{false, true, true, true}, slot, gp, planRB2(th, gpd, pd, xd, pIsLeft))
	default:
		infoU, ud, ok := t.llxNode(th, uAddr)
		if !ok {
			return
		}
		if t.scx(th, []core.Addr{ggp, gp, p, uAddr}, []uint64{infoGGP, infoGP, infoP, infoU},
			[]bool{false, true, true, true}, slot, gp, planPUSH(th, gpd, pd, ud, pIsLeft)) {
			// The uncle may now be overweight, off this path: chase it.
			t.cleanup(th, sideKey(gpd.key, !pIsLeft))
		}
	}
}

func (t *LLX) fixOverweight(th core.Thread, ggp, gp, p, x core.Addr, key uint64) {
	infoGP, gpd, ok := t.llxNode(th, gp)
	if !ok || (gpd.left != p && gpd.right != p) {
		return
	}
	infoP, pd, ok := t.llxNode(th, p)
	if !ok {
		return
	}
	xIsLeft := pd.left == x
	if !xIsLeft && pd.right != x {
		return
	}
	infoX, xd, ok := t.llxNode(th, x)
	if !ok || xd.w < 2 {
		return
	}
	sAddr := pd.right
	if !xIsLeft {
		sAddr = pd.left
	}
	infoS, sd, ok := t.llxNode(th, sAddr)
	if !ok {
		return
	}
	slot := childSlot(th, gp, key)
	switch {
	case sd.w >= 2 || (sd.w == 1 && sd.leaf):
		t.scx(th, []core.Addr{gp, p, x, sAddr}, []uint64{infoGP, infoP, infoX, infoS},
			[]bool{false, true, true, true}, slot, p, planA1(th, pd, xd, sd, xIsLeft))
	case sd.w == 1:
		cAddr, dAddr := sd.left, sd.right
		if !xIsLeft {
			cAddr, dAddr = sd.right, sd.left
		}
		wc, wd := weightOf(th, cAddr), weightOf(th, dAddr)
		switch {
		case wc >= 1 && wd >= 1:
			t.scx(th, []core.Addr{gp, p, x, sAddr}, []uint64{infoGP, infoP, infoX, infoS},
				[]bool{false, true, true, true}, slot, p, planA1(th, pd, xd, sd, xIsLeft))
		case wc == 0 && wd >= 1:
			infoC, cd, ok := t.llxNode(th, cAddr)
			if !ok {
				return
			}
			t.scx(th, []core.Addr{gp, p, x, sAddr, cAddr},
				[]uint64{infoGP, infoP, infoX, infoS, infoC},
				[]bool{false, true, true, true, true}, slot, p,
				planA1c(th, pd, xd, sd, cd, xIsLeft))
		case wc >= 1: // wd == 0
			t.scx(th, []core.Addr{gp, p, x, sAddr}, []uint64{infoGP, infoP, infoX, infoS},
				[]bool{false, true, true, true}, slot, p, planA1b(th, pd, xd, sd, xIsLeft))
		default:
			infoD, dd, ok := t.llxNode(th, dAddr)
			if !ok {
				return
			}
			t.scx(th, []core.Addr{gp, p, x, sAddr, dAddr},
				[]uint64{infoGP, infoP, infoX, infoS, infoD},
				[]bool{false, true, true, true, true}, slot, p,
				planA1e(th, pd, xd, sd, dd, xIsLeft))
		}
	case !sd.leaf:
		if pd.w == 0 {
			// Off-path red-red (s, p): fix it first.
			t.fixRedRed(th, ggp, gp, p, sAddr, key)
			return
		}
		cAddr := sd.left
		if !xIsLeft {
			cAddr = sd.right
		}
		if weightOf(th, cAddr) >= 1 {
			t.scx(th, []core.Addr{gp, p, sAddr}, []uint64{infoGP, infoP, infoS},
				[]bool{false, true, true}, slot, p, planA2(th, pd, sd, x, xIsLeft))
		} else {
			infoC, cd, ok := t.llxNode(th, cAddr)
			if !ok {
				return
			}
			t.scx(th, []core.Addr{gp, p, sAddr, cAddr}, []uint64{infoGP, infoP, infoS, infoC},
				[]bool{false, true, true, true}, slot, p, planA3(th, pd, sd, cd, x, xIsLeft))
		}
	default:
		// Residual: an overweight node beside a red leaf is locally
		// irreducible and tolerated (see isResidualOverweight).
	}
}

// Keys enumerates the set while quiescent.
func (t *LLX) Keys(th core.Thread) []uint64 { return t.collect(th) }

// Root returns the top sentinel (for invariant checks).
func (t *LLX) Root() core.Addr { return t.root }

// S2 returns the second sentinel (for invariant checks).
func (t *LLX) S2() core.Addr { return t.s2 }
