// Package chromatic implements the relaxed-balance chromatic tree — the
// other balanced search tree the paper names ("balanced search trees
// (chromatic trees and (a,b)-trees)") — in the same two synchronization
// flavours as the (a,b)-tree and BST: an LLX/SCX software baseline and the
// paper's hand-over-hand-tagged fast variant committing with single IAS
// operations.
//
// The tree is a leaf-oriented (external) BST in which every node carries a
// weight w ("red" = 0, "black" = 1, overweight > 1). The structural
// invariant maintained by every transformation is the *path-sum rule*: all
// leaves of the real subtree (under the root sentinel's child) have the
// same total weight along their path. Balance violations are local:
//
//   - red-red: a node with w = 0 whose parent has w = 0;
//   - overweight: a non-root-child node with w >= 2.
//
// When no violations remain, weights encode a red-black tree, so the
// height is O(log n); while violations exist the height degrades
// gracefully (by the number of violations), exactly the relaxed-balance
// property chromatic trees were designed for.
//
// The rebalancing rule set here is *derived*, not copied: each rule's
// comment shows the path-sum bookkeeping proving the invariant is
// preserved, and the test suite checks path sums, violation-freedom at
// quiescence, and key order after every stress run. The rules differ in
// inessential ways from the classical Nurmi/Soisalon-Soininen catalogue
// (the paper's transformation is orthogonal to the rule set — it only
// requires that every atomic step replaces a connected region via one
// pointer swing, removing a bounded chain of nodes).
//
// Nodes are immutable except their two child pointers; every weight or key
// change replaces nodes wholesale, and each step's removed nodes are
// finalized (LLX/SCX) or IAS-invalidated (HoH), the discipline shared with
// internal/abtree and internal/bst.
package chromatic

import (
	"repro/internal/core"
	"repro/internal/llxscx"
)

// Node layout (words). The LLX/SCX header is reserved in both flavours.
const (
	fInfo   = llxscx.FInfo
	fMarked = llxscx.FMarked
	fMeta   = 2 // bit 0: leaf
	fWeight = 3
	fKey    = 4
	fLeft   = 5
	fRight  = 6

	nodeWords = 7
	nodeBytes = nodeWords * core.WordSize
)

// Sentinel keys, above every legal set key.
const (
	inf1 uint64 = ^uint64(0) - 1
	inf2 uint64 = ^uint64(0)
)

// nodeC is an in-Go copy of a node used by the planning rules.
type nodeC struct {
	leaf  bool
	w     uint64
	key   uint64
	left  core.Addr // internal only
	right core.Addr
}

// base carries the state shared by both flavours: the same two-sentinel
// scheme as internal/bst (S1(inf2) -> S2(inf1) -> real subtree), with
// sentinels at weight 1, never rebalanced.
type base struct {
	mem  core.Memory
	root core.Addr // S1
	s2   core.Addr
}

func newBase(mem core.Memory) base {
	th := mem.Thread(0)
	b := base{mem: mem}
	leafI1a := writeNode(th, nodeC{leaf: true, w: 1, key: inf1})
	leafI1b := writeNode(th, nodeC{leaf: true, w: 1, key: inf1})
	leafI2 := writeNode(th, nodeC{leaf: true, w: 1, key: inf2})
	b.s2 = writeNode(th, nodeC{w: 1, key: inf1, left: leafI1a, right: leafI1b})
	b.root = writeNode(th, nodeC{w: 1, key: inf2, left: b.s2, right: leafI2})
	return b
}

// writeNode materializes nd in simulated memory.
func writeNode(th core.Thread, nd nodeC) core.Addr {
	n := th.Alloc(nodeWords)
	meta := uint64(0)
	if nd.leaf {
		meta = 1
	}
	th.Store(n.Plus(fMeta), meta)
	th.Store(n.Plus(fWeight), nd.w)
	th.Store(n.Plus(fKey), nd.key)
	if !nd.leaf {
		th.Store(n.Plus(fLeft), uint64(nd.left))
		th.Store(n.Plus(fRight), uint64(nd.right))
	}
	return n
}

func isLeaf(th core.Thread, n core.Addr) bool     { return th.Load(n.Plus(fMeta))&1 != 0 }
func weightOf(th core.Thread, n core.Addr) uint64 { return th.Load(n.Plus(fWeight)) }
func keyOf(th core.Thread, n core.Addr) uint64    { return th.Load(n.Plus(fKey)) }

// readNode loads a full copy (children only meaningful under the caller's
// synchronization; leaf/weight/key are immutable).
func readNode(th core.Thread, n core.Addr) nodeC {
	nd := nodeC{leaf: isLeaf(th, n), w: weightOf(th, n), key: keyOf(th, n)}
	if !nd.leaf {
		nd.left = core.Addr(th.Load(n.Plus(fLeft)))
		nd.right = core.Addr(th.Load(n.Plus(fRight)))
	}
	return nd
}

// childSlot returns the child pointer slot the search for key follows.
func childSlot(th core.Thread, n core.Addr, key uint64) core.Addr {
	if key < keyOf(th, n) {
		return n.Plus(fLeft)
	}
	return n.Plus(fRight)
}

// collect enumerates the real keys while quiescent.
func (b *base) collect(th core.Thread) []uint64 {
	var out []uint64
	var walk func(n core.Addr)
	walk = func(n core.Addr) {
		if isLeaf(th, n) {
			if k := keyOf(th, n); k < inf1 {
				out = append(out, k)
			}
			return
		}
		walk(core.Addr(th.Load(n.Plus(fLeft))))
		walk(core.Addr(th.Load(n.Plus(fRight))))
	}
	walk(b.root)
	return out
}
