package chromatic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/vtags"
)

// Planner property tests: every rule must preserve the path sum to each
// reused leaf/subtree and introduce no red-red among the fresh nodes'
// immediate relations. Subtrees hanging off the transformed region are
// represented by synthetic leaves whose weights stand in for arbitrary
// subtree sums.

// mkLeaf materializes a synthetic leaf.
func mkLeaf(th core.Thread, w, key uint64) core.Addr {
	return writeNode(th, nodeC{leaf: true, w: w, key: key})
}

// pathSums walks the materialized subtree and returns key -> total weight
// below (and including) the top.
func pathSums(th core.Thread, top core.Addr) map[uint64]uint64 {
	sums := map[uint64]uint64{}
	var walk func(n core.Addr, acc uint64)
	walk = func(n core.Addr, acc uint64) {
		nd := readNode(th, n)
		acc += nd.w
		if nd.leaf {
			sums[nd.key] = acc
			return
		}
		walk(nd.left, acc)
		walk(nd.right, acc)
	}
	walk(top, 0)
	return sums
}

// checkNoFreshRedRed walks the materialized subtree checking that no node
// with weight 0 has a weight-0 parent (pre-existing violations are
// excluded by constructing conflict-free inputs).
func checkNoFreshRedRed(t *testing.T, th core.Thread, top core.Addr, topParentW uint64) {
	t.Helper()
	var walk func(n core.Addr, parentW uint64)
	walk = func(n core.Addr, parentW uint64) {
		nd := readNode(th, n)
		if nd.w == 0 && parentW == 0 {
			t.Fatalf("rule created red-red at key %d", nd.key)
		}
		if nd.leaf {
			return
		}
		walk(nd.left, nd.w)
		walk(nd.right, nd.w)
	}
	walk(top, topParentW)
}

func TestPlanInsertPathSums(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	th := mem.Thread(0)
	for _, wl := range []uint64{1, 2, 5} {
		l := nodeC{leaf: true, w: wl, key: 100}
		top := planInsert(th, l, 50)
		sums := pathSums(th, top)
		if sums[50] != wl || sums[100] != wl {
			t.Fatalf("w_l=%d: sums %v, want both %d", wl, sums, wl)
		}
	}
}

func TestPlanDeletePathSums(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	th := mem.Thread(0)
	p := nodeC{w: 2, key: 10}
	s := nodeC{leaf: true, w: 3, key: 7}
	top := readNode(th, planDelete(th, p, s))
	if !top.leaf || top.w != 5 || top.key != 7 {
		t.Fatalf("promoted sibling wrong: %+v", top)
	}
}

// ruleCase builds a random configuration, applies one rule, and verifies
// path sums relative to the original configuration.
func TestRotationRulesPreservePathSums(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	th := mem.Thread(0)
	rng := rand.New(rand.NewSource(9))

	for iter := 0; iter < 400; iter++ {
		for _, mirror := range []bool{false, true} {
			// Synthetic grandparent region: gp{p, u} with p{x/c3 or x{a,b}}.
			wgp := uint64(rng.Intn(3) + 1) // >= 1 (topmost red-red)
			wu := uint64(rng.Intn(3) + 1)  // black uncle (BLK handles red)
			wc3 := uint64(rng.Intn(3) + 1) // avoid pre-existing red-reds
			wa := uint64(rng.Intn(3) + 1)
			wb := uint64(rng.Intn(3) + 1)

			u := mkLeaf(th, wu, 1000)
			c3 := mkLeaf(th, wc3, 1001)
			a := mkLeaf(th, wa, 1002)
			b := mkLeaf(th, wb, 1003)

			// BLK: gp{p(0){x(0)...}, u(0)}; we model x and c3 as p's leaves.
			x := mkLeaf(th, 0, 1004)
			pd := nodeC{w: 0, key: 11, left: x, right: c3}
			if mirror {
				pd.left, pd.right = c3, x
			}
			gpd := nodeC{w: wgp, key: 22}
			ud := nodeC{leaf: true, w: 0, key: 1000}
			top := planBLK(th, gpd, pd, ud, !mirror)
			sums := pathSums(th, top)
			if sums[1004] != wgp+0+0 || sums[1001] != wgp+0+wc3 || sums[1000] != wgp+0 {
				t.Fatalf("BLK sums wrong: %v", sums)
			}

			// RB1: x outside.
			pd2 := nodeC{w: 0, key: 11, left: x, right: c3}
			gp2 := nodeC{w: wgp, key: 22}
			if mirror {
				pd2.left, pd2.right = c3, x
			}
			// attach u side below via planRB1's gp fields
			if mirror {
				gp2.left, gp2.right = u, core.NilAddr
			} else {
				gp2.left, gp2.right = core.NilAddr, u
			}
			top = planRB1(th, gp2, pd2, x, !mirror)
			sums = pathSums(th, top)
			if sums[1004] != wgp || sums[1001] != wgp+0+wc3 || sums[1000] != wgp+0+wu {
				t.Fatalf("RB1 sums wrong (mirror=%v): %v", mirror, sums)
			}
			checkNoFreshRedRed(t, th, top, 1)

			// RB2: x inside, internal with children a, b.
			xd := nodeC{w: 0, key: 15, left: a, right: b}
			pd3 := nodeC{w: 0, key: 11}
			gp3 := nodeC{w: wgp, key: 22}
			xAddr := writeNode(th, xd)
			if mirror {
				pd3.left, pd3.right = xAddr, c3
				gp3.left, gp3.right = u, writeNode(th, pd3)
			} else {
				pd3.left, pd3.right = c3, xAddr
				gp3.left, gp3.right = writeNode(th, pd3), u
			}
			top = planRB2(th, gp3, pd3, xd, !mirror)
			sums = pathSums(th, top)
			if sums[1001] != wgp+wc3 || sums[1002] != wgp+wa || sums[1003] != wgp+wb || sums[1000] != wgp+wu {
				t.Fatalf("RB2 sums wrong (mirror=%v): %v", mirror, sums)
			}
			checkNoFreshRedRed(t, th, top, 1)

			// PUSH: gp{p(0){x(0), c3}, u(w_u>=1)}.
			wub := wu + 1 // ensure black uncle
			pd4 := nodeC{w: 0, key: 11, left: x, right: c3}
			if mirror {
				pd4.left, pd4.right = c3, x
			}
			gp4 := nodeC{w: wgp, key: 22}
			ud4 := nodeC{leaf: true, w: wub, key: 1000}
			top = planPUSH(th, gp4, pd4, ud4, !mirror)
			sums = pathSums(th, top)
			if sums[1004] != wgp-1+1 || sums[1001] != wgp-1+1+wc3 || sums[1000] != wgp-1+wub+1 {
				t.Fatalf("PUSH sums wrong: %v", sums)
			}
		}
	}
}

func TestWeightRulesPreservePathSums(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	th := mem.Thread(0)
	rng := rand.New(rand.NewSource(10))

	for iter := 0; iter < 400; iter++ {
		for _, mirror := range []bool{false, true} {
			xIsLeft := !mirror
			wp := uint64(rng.Intn(3))
			wx := uint64(rng.Intn(3) + 2) // overweight

			x := mkLeaf(th, wx, 2000)
			xd := readNode(th, x)

			// A1 with heavy sibling.
			ws := uint64(rng.Intn(3) + 2)
			sd := nodeC{leaf: true, w: ws, key: 2001}
			pd := nodeC{w: wp, key: 33}
			top := planA1(th, pd, xd, sd, xIsLeft)
			sums := pathSums(th, top)
			if sums[2000] != wp+wx || sums[2001] != wp+ws {
				t.Fatalf("A1 sums wrong: %v", sums)
			}

			// A1b: s(1){c(w>=1), d(0)}.
			wc := uint64(rng.Intn(2) + 1)
			c := mkLeaf(th, wc, 2002)
			d := mkLeaf(th, 0, 2003)
			s1 := nodeC{w: 1, key: 44, left: c, right: d}
			if mirror {
				s1.left, s1.right = d, c
			}
			top = planA1b(th, nodeC{w: wp, key: 33}, xd, s1, xIsLeft)
			sums = pathSums(th, top)
			if sums[2000] != wp+wx || sums[2002] != wp+1+wc || sums[2003] != wp+1 {
				t.Fatalf("A1b sums wrong (mirror=%v): %v", mirror, sums)
			}

			// A1c: s(1){c(0){e, f}, d(w>=1)}.
			we := uint64(rng.Intn(2) + 1)
			wf := uint64(rng.Intn(2) + 1)
			wd := uint64(rng.Intn(2) + 1)
			e := mkLeaf(th, we, 2004)
			f := mkLeaf(th, wf, 2005)
			d2 := mkLeaf(th, wd, 2006)
			cd := nodeC{w: 0, key: 40, left: e, right: f}
			if mirror {
				cd.left, cd.right = f, e
			}
			s2 := nodeC{w: 1, key: 44, left: writeNode(th, cd), right: d2}
			if mirror {
				s2.left, s2.right = d2, s2.left
			}
			top = planA1c(th, nodeC{w: wp, key: 33}, xd, s2, cd, xIsLeft)
			sums = pathSums(th, top)
			if sums[2000] != wp+wx || sums[2004] != wp+1+we || sums[2005] != wp+1+wf || sums[2006] != wp+1+wd {
				t.Fatalf("A1c sums wrong (mirror=%v): %v", mirror, sums)
			}
			checkNoFreshRedRed(t, th, top, 1)

			// A1e: s(1){c(0), d(0)}.
			c3 := mkLeaf(th, 0, 2007)
			d3 := mkLeaf(th, 0, 2008)
			s3 := nodeC{w: 1, key: 44, left: c3, right: d3}
			if mirror {
				s3.left, s3.right = d3, c3
			}
			dd := nodeC{leaf: true, w: 0, key: 2008}
			top = planA1e(th, nodeC{w: wp, key: 33}, xd, s3, dd, xIsLeft)
			sums = pathSums(th, top)
			if sums[2000] != wp+wx || sums[2007] != wp+1 || sums[2008] != wp+1 {
				t.Fatalf("A1e sums wrong (mirror=%v): %v", mirror, sums)
			}

			// A2: s(0){c(w>=1), d}.
			c4 := mkLeaf(th, wc, 2009)
			d4 := mkLeaf(th, uint64(rng.Intn(3)), 2010)
			wd4 := readNode(th, d4).w
			s4 := nodeC{w: 0, key: 44, left: c4, right: d4}
			if mirror {
				s4.left, s4.right = d4, c4
			}
			top = planA2(th, nodeC{w: wp + 1, key: 33}, s4, x, xIsLeft)
			sums = pathSums(th, top)
			if sums[2000] != wp+1+wx || sums[2009] != wp+1+wc || sums[2010] != wp+1+wd4 {
				t.Fatalf("A2 sums wrong (mirror=%v): %v", mirror, sums)
			}

			// A3: s(0){c(0){e, f}, d}.
			e5 := mkLeaf(th, we, 2011)
			f5 := mkLeaf(th, wf, 2012)
			d5 := mkLeaf(th, wd, 2013)
			cd5 := nodeC{w: 0, key: 40, left: e5, right: f5}
			if mirror {
				cd5.left, cd5.right = f5, e5
			}
			s5 := nodeC{w: 0, key: 44, left: writeNode(th, cd5), right: d5}
			if mirror {
				s5.left, s5.right = d5, s5.left
			}
			top = planA3(th, nodeC{w: wp + 1, key: 33}, s5, cd5, x, xIsLeft)
			sums = pathSums(th, top)
			if sums[2000] != wp+1+wx || sums[2011] != wp+1+we || sums[2012] != wp+1+wf || sums[2013] != wp+1+wd {
				t.Fatalf("A3 sums wrong (mirror=%v): %v", mirror, sums)
			}
		}
	}
}
