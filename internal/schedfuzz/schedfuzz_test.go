package schedfuzz

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

func TestForcedEvictionFailsValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mem  core.Memory
	}{
		{"vtags", vtags.New(1<<20, 1)},
		{"machine", machine.New(machine.DefaultConfig(1))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Evict on every opportunity: the very next Validate after an
			// AddTag must fail.
			cfg := Config{Seed: 1, EvictPerMil: 1000}
			mem := Wrap(tc.mem, cfg)
			th := mem.Thread(0)
			a := mem.Alloc(1)
			th.Store(a, 7)
			if !th.AddTag(a, core.WordSize) {
				t.Fatal("AddTag failed")
			}
			if th.Validate() {
				t.Fatal("Validate passed despite forced eviction")
			}
			if th.VAS(a, 9) {
				t.Fatal("VAS committed despite forced eviction")
			}
			th.ClearTagSet()
			// After clearing, a fresh tag with no injected eviction
			// (TagCount is checked before injecting, but every forwarded op
			// evicts again) — so just confirm the value never changed.
			if got := th.Load(a); got != 7 {
				t.Fatalf("value changed to %d despite failed VAS", got)
			}
		})
	}
}

func TestInjectionStreamIsSeeded(t *testing.T) {
	// Two wrappers with the same seed make identical injection decisions:
	// drive a deterministic op sequence and compare eviction latch state.
	run := func(seed int64) []bool {
		mem := Wrap(vtags.New(1<<20, 1), Config{Seed: seed, EvictPerMil: 300})
		th := mem.Thread(0)
		a := mem.Alloc(1)
		res := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			th.AddTag(a, core.WordSize)
			res = append(res, th.Validate())
			th.ClearTagSet()
		}
		return res
	}
	a, b, c := run(42), run(42), run(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical injection streams (suspicious)")
	}
}

func TestSkipValidationCommitsBlindly(t *testing.T) {
	inner := vtags.New(1<<20, 2)
	mem := WrapSkipValidation(inner)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	a := mem.Alloc(1)
	t0.Store(a, 1)
	t0.AddTag(a, core.WordSize)
	t1.Store(a, 2) // conflicting write: a real VAS must now fail
	if !t0.Validate() {
		t.Fatal("broken backend's Validate should always pass")
	}
	if !t0.VAS(a, 3) {
		t.Fatal("broken backend's VAS should always commit")
	}
	if got := t0.Load(a); got != 3 {
		t.Fatalf("VAS did not store: got %d", got)
	}
	t0.ClearTagSet()
}

func TestJitterSyncWindowInRange(t *testing.T) {
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 32; seed++ {
		cfg := machine.DefaultConfig(2)
		JitterSyncWindow(&cfg, seed)
		if cfg.SyncWindowCycles < 64 || cfg.SyncWindowCycles >= 4096 {
			t.Fatalf("seed %d: window %d out of range", seed, cfg.SyncWindowCycles)
		}
		seen[cfg.SyncWindowCycles] = true
	}
	if len(seen) < 8 {
		t.Fatalf("windows barely vary across seeds: %v", seen)
	}
}

func TestModeFlipperRestsAtFast(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	fb := core.NewFallback(mem)
	stop := StartModeFlipper(mem.Thread(1), fb.ModeAddr(), 7)
	// Run a few fallback operations concurrently with the flipper.
	th := mem.Thread(0)
	slowRuns := 0
	for i := 0; i < 200; i++ {
		fb.Run(th, func() bool { return false }, func() { slowRuns++ })
	}
	stop()
	if slowRuns != 200 {
		t.Fatalf("slow path ran %d times, want 200", slowRuns)
	}
	if got := th.Load(fb.ModeAddr()); got != core.ModeFast {
		t.Fatalf("mode line rests at %d, want %d", got, core.ModeFast)
	}
}
