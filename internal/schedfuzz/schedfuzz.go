// Package schedfuzz drives the memory backends through adversarial
// interleavings so the linearizability harnesses exercise MemTags' failure
// paths — spurious tag evictions, tag-set overflow and fallback Mode-line
// transitions — rather than only the happy path.
//
// The fuzzer is a core.Memory wrapper: every forwarded memory or tag
// operation first consults a seeded per-thread RNG and may yield the
// goroutine (widening preemption windows at the exact points where the
// structures' atomicity arguments live), busy-spin (desynchronizing
// threads that would otherwise proceed in lockstep), or force a spurious
// eviction of a held tag (the advisory-tag event that pure software runs
// never produce). All decisions derive from the seed, so a failing
// schedule's injection sequence is reproducible even though goroutine
// scheduling itself is not.
//
// The package also provides StartModeFlipper, which performs randomized
// fallback-path transitions on a structure's Mode line from a spare
// thread, and WrapSkipValidation, a deliberately broken backend whose
// VAS/IAS skip validation — used to prove the checker catches real
// non-linearizable executions.
package schedfuzz

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
)

// Config tunes the injection rates. All rates are per-mille per forwarded
// operation.
type Config struct {
	// Seed derives every per-thread injection stream.
	Seed int64
	// GoschedPerMil yields the goroutine, handing the scheduler a
	// preemption point inside the structure's critical windows.
	GoschedPerMil int
	// SpinPerMil busy-spins up to MaxSpin iterations, jittering relative
	// thread progress.
	SpinPerMil int
	// MaxSpin bounds one spin injection.
	MaxSpin int
	// EvictPerMil forces a spurious eviction of a held tag (backends
	// expose ForceTagEviction; unsupported backends are left alone).
	EvictPerMil int
}

// Default returns a moderately adversarial configuration.
func Default(seed int64) Config {
	return Config{Seed: seed, GoschedPerMil: 40, SpinPerMil: 40, MaxSpin: 128, EvictPerMil: 8}
}

// Aggressive returns a configuration with wide preemption windows and
// frequent forced evictions, for short targeted runs.
func Aggressive(seed int64) Config {
	return Config{Seed: seed, GoschedPerMil: 120, SpinPerMil: 80, MaxSpin: 256, EvictPerMil: 40}
}

// forceEvictor is implemented by backend threads that can simulate a
// targeted spurious tag eviction (vtags.Thread, machine.Thread).
type forceEvictor interface {
	TaggedLine(i int) core.Line
	ForceTagEviction(l core.Line) bool
}

// spareThreader is implemented by backends with an auxiliary handle for
// harness controllers (vtags.Memory, machine.Machine).
type spareThreader interface{ SpareThread() core.Thread }

// activatable mirrors the machine backend's lax-clock enrolment.
type activatable interface{ SetActive(bool) }

// epochAligner mirrors the machine backend's epoch alignment.
type epochAligner interface{ BeginEpoch() }

// Memory wraps a backend with schedule fuzzing.
type Memory struct {
	inner   core.Memory
	cfg     Config
	threads []*Thread
}

var _ core.Memory = (*Memory)(nil)

// Wrap fuzzes every thread handle of inner according to cfg.
func Wrap(inner core.Memory, cfg Config) *Memory {
	m := &Memory{inner: inner, cfg: cfg, threads: make([]*Thread, inner.NumThreads())}
	for i := range m.threads {
		m.threads[i] = &Thread{
			inner: inner.Thread(i),
			cfg:   cfg,
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003 + 17)),
		}
	}
	return m
}

// NumThreads returns the wrapped backend's thread count.
func (m *Memory) NumThreads() int { return m.inner.NumThreads() }

// Thread returns the fuzzed handle for thread id.
func (m *Memory) Thread(id int) core.Thread { return m.threads[id] }

// Alloc forwards to the backend.
func (m *Memory) Alloc(words int) core.Addr { return m.inner.Alloc(words) }

// MaxTags forwards to the backend.
func (m *Memory) MaxTags() int { return m.inner.MaxTags() }

// SpareThread returns the backend's auxiliary controller handle, wrapped
// with this fuzzer's injections, or nil when the backend has none (e.g. a
// deliberately broken checker-test wrapper).
func (m *Memory) SpareThread() core.Thread {
	sp, ok := m.inner.(spareThreader)
	if !ok {
		return nil
	}
	return &Thread{
		inner: sp.SpareThread(),
		cfg:   m.cfg,
		rng:   rand.New(rand.NewSource(m.cfg.Seed ^ 0x5a5a5a5a)),
	}
}

// BeginEpoch forwards epoch alignment when the backend supports it.
func (m *Memory) BeginEpoch() {
	if a, ok := m.inner.(epochAligner); ok {
		a.BeginEpoch()
	}
}

// Thread is one fuzzed handle.
type Thread struct {
	inner core.Thread
	cfg   Config
	rng   *rand.Rand
	// spinSink defeats dead-code elimination of the spin loop; per-thread
	// so spinning threads do not race on (or contend for) a shared word.
	spinSink uint64
}

var _ core.Thread = (*Thread)(nil)

// inject runs at the top of every forwarded operation.
func (t *Thread) inject() {
	c := &t.cfg
	r := t.rng.Intn(1000)
	if r < c.GoschedPerMil {
		runtime.Gosched()
		return
	}
	r -= c.GoschedPerMil
	if r < c.SpinPerMil {
		n := 1
		if c.MaxSpin > 1 {
			n += t.rng.Intn(c.MaxSpin)
		}
		for i := 0; i < n; i++ {
			t.spinSink++
		}
		return
	}
	r -= c.SpinPerMil
	if r < c.EvictPerMil {
		if fe, ok := t.inner.(forceEvictor); ok {
			if n := t.inner.TagCount(); n > 0 {
				// Aim at a seeded-random held tag: any position in a
				// hand-over-hand window can be the victim, not just the
				// oldest.
				fe.ForceTagEviction(fe.TaggedLine(t.rng.Intn(n)))
			}
		}
	}
}

// sinkDump absorbs goroutine-local spin counters on exit so their spin
// loops cannot be eliminated as dead code.
var sinkDump atomic.Uint64

// ID returns the thread id.
func (t *Thread) ID() int { return t.inner.ID() }

// Alloc forwards to the backend (no injection: allocation is not a
// synchronization point in any structure).
func (t *Thread) Alloc(words int) core.Addr { return t.inner.Alloc(words) }

// Load forwards with injection.
func (t *Thread) Load(a core.Addr) uint64 { t.inject(); return t.inner.Load(a) }

// Store forwards with injection.
func (t *Thread) Store(a core.Addr, v uint64) { t.inject(); t.inner.Store(a, v) }

// CAS forwards with injection.
func (t *Thread) CAS(a core.Addr, old, new uint64) bool { t.inject(); return t.inner.CAS(a, old, new) }

// AddTag forwards with injection.
func (t *Thread) AddTag(a core.Addr, size int) bool { t.inject(); return t.inner.AddTag(a, size) }

// RemoveTag forwards with injection.
func (t *Thread) RemoveTag(a core.Addr, size int) { t.inject(); t.inner.RemoveTag(a, size) }

// Validate forwards with injection (an eviction injected here lands right
// between a structure's read phase and its commit — the paper's spurious
// failure window).
func (t *Thread) Validate() bool { t.inject(); return t.inner.Validate() }

// VAS forwards with injection.
func (t *Thread) VAS(a core.Addr, v uint64) bool { t.inject(); return t.inner.VAS(a, v) }

// IAS forwards with injection.
func (t *Thread) IAS(a core.Addr, v uint64) bool { t.inject(); return t.inner.IAS(a, v) }

// ClearTagSet forwards without injection.
func (t *Thread) ClearTagSet() { t.inner.ClearTagSet() }

// TagCount forwards without injection.
func (t *Thread) TagCount() int { return t.inner.TagCount() }

// SetActive forwards lax-clock enrolment when the backend supports it.
func (t *Thread) SetActive(on bool) {
	if a, ok := t.inner.(activatable); ok {
		a.SetActive(on)
	}
}

// JitterSyncWindow replaces cfg.SyncWindowCycles with a seeded adversarial
// value in [64, 4096): small windows force fine-grained core interleaving,
// large ones let cores race far ahead — both shake out orderings the
// default window never produces.
func JitterSyncWindow(cfg *machine.Config, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedc0de))
	cfg.SyncWindowCycles = uint64(64 + rng.Intn(4032))
}

// StartModeFlipper begins randomized fallback Mode-line transitions on th
// (which must be a spare handle no worker uses): it repeatedly registers
// and deregisters a phantom slow-path operation, invalidating every
// in-flight fast-path tag set and forcing structures through their
// fast/slow transition logic. The returned stop function blocks until the
// flipper has exited and the mode count is back to its resting value.
func StartModeFlipper(th core.Thread, mode core.Addr, seed int64) (stop func()) {
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x0ddf11b))
		var spinSink uint64
		defer func() { sinkDump.Add(spinSink) }()
		for !done.Load() {
			// Enter: one phantom slow-path op in flight.
			for {
				v := th.Load(mode)
				if th.CAS(mode, v, v+1) {
					break
				}
			}
			for i := rng.Intn(64); i > 0; i-- {
				spinSink++
			}
			runtime.Gosched()
			// Exit: undo exactly our own registration.
			for {
				v := th.Load(mode)
				if th.CAS(mode, v, v-1) {
					break
				}
			}
			for i := rng.Intn(256); i > 0; i-- {
				spinSink++
			}
			runtime.Gosched()
		}
	}()
	return func() {
		done.Store(true)
		wg.Wait()
	}
}

// skipValidationMemory is a deliberately broken backend for checker tests:
// see WrapSkipValidation.
type skipValidationMemory struct {
	core.Memory
	inner core.Memory
}

// WrapSkipValidation returns a backend whose threads treat every VAS/IAS
// as an unconditional store and every Validate as success — MemTags with
// the validation elided. Structures run on it complete and keep their
// memory safety, but their atomicity argument is gone, so concurrent runs
// produce non-linearizable histories. Tests use it to prove the checker
// (not just the structures) is doing its job.
func WrapSkipValidation(inner core.Memory) core.Memory {
	return &skipValidationMemory{Memory: inner, inner: inner}
}

func (m *skipValidationMemory) Thread(id int) core.Thread {
	return &skipValidationThread{Thread: m.inner.Thread(id)}
}

type skipValidationThread struct {
	core.Thread
}

// Validate always passes: evictions and conflicts go unnoticed.
func (t *skipValidationThread) Validate() bool { return true }

// VAS commits without validating.
func (t *skipValidationThread) VAS(a core.Addr, v uint64) bool {
	t.Thread.Store(a, v)
	return true
}

// IAS commits without validating.
func (t *skipValidationThread) IAS(a core.Addr, v uint64) bool {
	t.Thread.Store(a, v)
	return true
}
