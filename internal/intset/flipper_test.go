package intset_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// TestFlipperConsumesNoCore is the regression test for the Mode-line
// flipper's thread accounting: a FlipMode run must request exactly
// cfg.Threads handles from the backend — one per worker — with the flipper
// riding the backend's SpareThread. It used to squat on an extra simulated
// core, which skewed every per-core statistic and left one core's lax
// clock enrolled but idle.
func TestFlipperConsumesNoCore(t *testing.T) {
	build := func(m core.Memory) intset.Set { return list.NewElided(m, 4) }
	cfg := intset.LinearizeConfig{
		Threads:      3,
		OpsPerThread: 60,
		KeyRange:     16,
		Prefill:      4,
		Seed:         7,
		FlipMode:     true,
	}

	t.Run("machine", func(t *testing.T) {
		var requested []int
		newMem := func(threads int) core.Memory {
			requested = append(requested, threads)
			mcfg := machine.DefaultConfig(threads)
			mcfg.MemBytes = 8 << 20
			m := machine.New(mcfg)
			if m.NumThreads() != threads {
				t.Fatalf("NumThreads = %d, want %d", m.NumThreads(), threads)
			}
			return m
		}
		out := intset.RunLinearize(newMem, build, cfg)
		if out.Inconclusive || !out.OK {
			t.Fatalf("FlipMode run failed:\n%s", out.Explain())
		}
		if len(requested) != 1 || requested[0] != cfg.Threads {
			t.Fatalf("backend was asked for %v thread handles, want exactly [%d]: the flipper must ride the spare thread, not a core", requested, cfg.Threads)
		}
	})

	t.Run("vtags", func(t *testing.T) {
		var requested []int
		newMem := func(threads int) core.Memory {
			requested = append(requested, threads)
			return vtags.New(8<<20, threads)
		}
		out := intset.RunLinearize(newMem, build, cfg)
		if out.Inconclusive || !out.OK {
			t.Fatalf("FlipMode run failed:\n%s", out.Explain())
		}
		if len(requested) != 1 || requested[0] != cfg.Threads {
			t.Fatalf("backend was asked for %v thread handles, want exactly [%d]", requested, cfg.Threads)
		}
	})
}
