package intset

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/schedexplore"
)

// ExploreConfig describes one schedule-explored linearizability run on the
// machine backend: the cycle-level explorer (internal/schedexplore)
// serializes the simulated cores and enumerates interleavings — including
// the intra-operation directory-locking windows — while every operation is
// recorded and each execution's history is checked against the sequential
// set model.
type ExploreConfig struct {
	Threads      int
	OpsPerThread int
	KeyRange     uint64
	Prefill      int // keys inserted (and recorded) before exploration
	Seed         int64
	// Mode, Executions, WindowCycles, EvictPerMil and MaxDecisions are
	// passed through to schedexplore.Config.
	Mode         schedexplore.Mode
	Executions   int
	WindowCycles uint64
	EvictPerMil  int
	MaxDecisions int
	// MaxIters overrides the checker's per-partition search budget.
	MaxIters uint64
	// OnHistory, when non-nil, receives each execution's recorded history
	// (determinism tests compare histories across identically seeded runs).
	OnHistory func(events []history.Event)
}

// RunExplore explores schedules of one recorded workload per execution and
// checks every execution's history. newMachine must build the backend
// deterministically (same config for the same thread count).
func RunExplore(newMachine func(threads int) *machine.Machine, build func(core.Memory) Set, cfg ExploreConfig) schedexplore.Result {
	newSetup := func() schedexplore.Setup {
		m := newMachine(cfg.Threads)
		s := build(m)
		rec := history.NewRecorder(cfg.Threads, cfg.OpsPerThread+cfg.Prefill+8)
		if cfg.Prefill > 0 {
			th := m.Thread(0)
			sh := rec.Shard(0)
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
			inserted := 0
			for inserted < cfg.Prefill {
				k := KeyMin + uint64(rng.Int63n(int64(cfg.KeyRange)))
				idx := sh.Begin(history.OpInsert, k, 0)
				ok := s.Insert(th, k)
				sh.End(idx, ok, 0)
				if ok {
					inserted++
				}
			}
		}
		return schedexplore.Setup{
			Machine: m,
			Workers: cfg.Threads,
			Body: func(w int, th core.Thread) {
				sh := rec.Shard(w)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
				for i := 0; i < cfg.OpsPerThread; i++ {
					k := KeyMin + uint64(rng.Int63n(int64(cfg.KeyRange)))
					switch rng.Intn(3) {
					case 0:
						idx := sh.Begin(history.OpInsert, k, 0)
						sh.End(idx, s.Insert(th, k), 0)
					case 1:
						idx := sh.Begin(history.OpDelete, k, 0)
						sh.End(idx, s.Delete(th, k), 0)
					default:
						idx := sh.Begin(history.OpContains, k, 0)
						sh.End(idx, s.Contains(th, k), 0)
					}
				}
			},
			Check: func() error {
				if cfg.OnHistory != nil {
					cfg.OnHistory(rec.Events())
				}
				var opts []linearizability.Option
				if cfg.MaxIters > 0 {
					opts = append(opts, linearizability.WithMaxIters(cfg.MaxIters))
				}
				out := linearizability.CheckSet(rec.Events(), opts...)
				if out.Inconclusive {
					return fmt.Errorf("linearizability checker inconclusive after %d ops", out.Ops)
				}
				if !out.OK {
					return fmt.Errorf("history not linearizable:\n%s", out.Explain())
				}
				return nil
			},
		}
	}
	return schedexplore.Explore(newSetup, schedexplore.Config{
		Mode:         cfg.Mode,
		Seed:         cfg.Seed,
		Executions:   cfg.Executions,
		WindowCycles: cfg.WindowCycles,
		EvictPerMil:  cfg.EvictPerMil,
		MaxDecisions: cfg.MaxDecisions,
	})
}

// CheckExploreLinearizable runs RunExplore and fails the test on any
// failing execution, printing the counterexample schedule and machine
// trace.
func CheckExploreLinearizable(t *testing.T, newMachine func(threads int) *machine.Machine, build func(core.Memory) Set, cfg ExploreConfig) {
	t.Helper()
	res := RunExplore(newMachine, build, cfg)
	if res.Failure != nil {
		t.Fatalf("schedule explorer found a violation (mode %s):\n%s", cfg.Mode, res.Failure)
	}
	t.Logf("mode %s: %d executions (%d truncated, %d sleep-blocked), %d interleaving classes, exhausted=%v",
		cfg.Mode, res.Executions, res.Truncated, res.SleepBlocked, res.Classes(), res.Exhausted)
}
