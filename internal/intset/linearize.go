package intset

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/schedfuzz"
)

// LinearizeConfig describes one linearizability stress run: concurrent
// workers hammer a shared key range while every invocation/response is
// recorded (internal/history), optionally under schedule fuzzing
// (internal/schedfuzz), and the resulting history is checked against the
// sequential set model (internal/linearizability).
type LinearizeConfig struct {
	Threads      int
	OpsPerThread int
	KeyRange     uint64
	Prefill      int   // keys inserted (and recorded) before the parallel phase
	Seed         int64 // derives op streams, fuzz injections and the mode flipper
	// Fuzz, when non-nil, wraps the backend with schedule fuzzing.
	Fuzz *schedfuzz.Config
	// FlipMode drives randomized fallback Mode-line transitions from a
	// spare thread while the workers run, when the structure exposes a
	// Mode line (ModeAddr).
	FlipMode bool
	// MaxIters overrides the checker's per-partition search budget.
	MaxIters uint64
}

// modeAddresser is implemented by fallback-path structures (elided list,
// elided (a,b)-tree) that expose their Mode line.
type modeAddresser interface{ ModeAddr() core.Addr }

// epochAligner mirrors the machine backend's epoch alignment.
type epochAligner interface{ BeginEpoch() }

// activatable mirrors the machine backend's lax-clock enrolment.
type activatable interface{ SetActive(bool) }

// spareThreader is implemented by backends (and the schedfuzz wrapper)
// that expose an auxiliary controller handle outside the counted thread
// set; the Mode-line flipper runs on it so it does not consume a
// simulated core.
type spareThreader interface{ SpareThread() core.Thread }

// RunLinearize executes one recorded stress run and checks the history.
// newMem must allocate a backend with the requested number of thread
// handles — exactly one per worker; the Mode-line flipper, when enabled,
// runs on the backend's SpareThread and consumes no simulated core. The
// build callback constructs the structure on the (possibly fuzz-wrapped)
// memory.
func RunLinearize(newMem func(threads int) core.Memory, build func(core.Memory) Set, cfg LinearizeConfig) linearizability.Outcome {
	var mem core.Memory = newMem(cfg.Threads)
	if cfg.Fuzz != nil {
		mem = schedfuzz.Wrap(mem, *cfg.Fuzz)
	}
	s := build(mem)

	rec := history.NewRecorder(cfg.Threads, cfg.OpsPerThread+cfg.Prefill+8)

	// Prefill on thread 0, recorded like any other operations (the checker
	// must see every effect on the structure).
	if cfg.Prefill > 0 {
		th := mem.Thread(0)
		sh := rec.Shard(0)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
		inserted := 0
		for inserted < cfg.Prefill {
			k := KeyMin + uint64(rng.Int63n(int64(cfg.KeyRange)))
			idx := sh.Begin(history.OpInsert, k, 0)
			ok := s.Insert(th, k)
			sh.End(idx, ok, 0)
			if ok {
				inserted++
			}
		}
	}

	// Epoch alignment must precede the flipper: BeginEpoch rewrites every
	// thread's clock, and the flipper drives a thread handle of its own.
	if ea, ok := mem.(epochAligner); ok {
		ea.BeginEpoch()
	}

	var stopFlipper func()
	if cfg.FlipMode {
		if ma, ok := s.(modeAddresser); ok {
			if sp, ok := mem.(spareThreader); ok {
				if th := sp.SpareThread(); th != nil {
					stopFlipper = schedfuzz.StartModeFlipper(th, ma.ModeAddr(), cfg.Seed)
				}
			}
		}
	}
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	ready.Add(cfg.Threads)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			if a, ok := th.(activatable); ok {
				a.SetActive(true)
				defer a.SetActive(false)
			}
			ready.Done()
			<-start
			sh := rec.Shard(w)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
			for i := 0; i < cfg.OpsPerThread; i++ {
				k := KeyMin + uint64(rng.Int63n(int64(cfg.KeyRange)))
				switch rng.Intn(3) {
				case 0:
					idx := sh.Begin(history.OpInsert, k, 0)
					sh.End(idx, s.Insert(th, k), 0)
				case 1:
					idx := sh.Begin(history.OpDelete, k, 0)
					sh.End(idx, s.Delete(th, k), 0)
				default:
					idx := sh.Begin(history.OpContains, k, 0)
					sh.End(idx, s.Contains(th, k), 0)
				}
			}
		}(w)
	}
	ready.Wait()
	close(start)
	wg.Wait()
	if stopFlipper != nil {
		stopFlipper()
	}

	var opts []linearizability.Option
	if cfg.MaxIters > 0 {
		opts = append(opts, linearizability.WithMaxIters(cfg.MaxIters))
	}
	return linearizability.CheckSet(rec.Events(), opts...)
}

// CheckLinearizable runs RunLinearize and fails the test on a
// non-linearizable history (printing the minimal counterexample) or an
// inconclusive verdict.
func CheckLinearizable(t *testing.T, newMem func(threads int) core.Memory, build func(core.Memory) Set, cfg LinearizeConfig) {
	t.Helper()
	out := RunLinearize(newMem, build, cfg)
	if out.Inconclusive {
		t.Fatalf("linearizability verdict inconclusive (seed %d): shrink the run or raise MaxIters\n%s", cfg.Seed, out.Explain())
	}
	if !out.OK {
		t.Fatalf("seed %d: %s", cfg.Seed, out.Explain())
	}
}

// LinearizeOps scales an op count down under -short so the fuzzed suites
// stay fast in the race-enabled CI lane.
func LinearizeOps(n int) int {
	if testing.Short() {
		return n / 3
	}
	return n
}
