// Package intset defines the ordered-set interface implemented by every
// search data structure in this repository (lists, trees, skip lists), plus
// shared testing utilities: a sequential reference model and reusable
// stress harnesses.
package intset

import (
	"math/rand"

	"repro/internal/core"
)

// KeyMin and KeyMax bound the usable key range; values outside are reserved
// for sentinel nodes.
const (
	KeyMin uint64 = 1
	KeyMax uint64 = 1<<63 - 1
)

// Set is a concurrent ordered set of uint64 keys. Every operation takes the
// calling goroutine's thread handle; a handle must not be used by two
// goroutines concurrently.
type Set interface {
	// Insert adds key and reports whether it was absent.
	Insert(th core.Thread, key uint64) bool
	// Delete removes key and reports whether it was present.
	Delete(th core.Thread, key uint64) bool
	// Contains reports whether key is present.
	Contains(th core.Thread, key uint64) bool
}

// Snapshotter is implemented by sets that can enumerate their keys while
// quiescent, for test verification.
type Snapshotter interface {
	// Keys returns the set's keys in ascending order. Only valid while no
	// other thread is operating on the set.
	Keys(th core.Thread) []uint64
}

// Reference is a sequential model for equivalence checking.
type Reference map[uint64]bool

// Insert adds key, reporting whether it was absent.
func (r Reference) Insert(key uint64) bool {
	if r[key] {
		return false
	}
	r[key] = true
	return true
}

// Delete removes key, reporting whether it was present.
func (r Reference) Delete(key uint64) bool {
	if !r[key] {
		return false
	}
	delete(r, key)
	return true
}

// Contains reports membership.
func (r Reference) Contains(key uint64) bool { return r[key] }

// Prefill inserts n random distinct keys from [KeyMin, keyRange] using the
// given thread, returning the inserted keys. Deterministic in seed.
func Prefill(th core.Thread, s Set, n int, keyRange uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := KeyMin + uint64(rng.Int63n(int64(keyRange)))
		if s.Insert(th, k) {
			keys = append(keys, k)
		}
	}
	return keys
}
