package intset

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// CheckSequential runs a deterministic random op sequence against the set
// and the Reference model on one thread, failing the test on any
// divergence.
func CheckSequential(t *testing.T, mem core.Memory, s Set, ops int, keyRange uint64, seed int64) {
	t.Helper()
	th := mem.Thread(0)
	ref := Reference{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		k := KeyMin + uint64(rng.Int63n(int64(keyRange)))
		switch rng.Intn(3) {
		case 0:
			if got, want := s.Insert(th, k), ref.Insert(k); got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
		case 1:
			if got, want := s.Delete(th, k), ref.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
		default:
			if got, want := s.Contains(th, k), ref.Contains(k); got != want {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	VerifyAgainstReference(t, th, s, ref, keyRange)
}

// VerifyAgainstReference checks that membership of every key in
// [KeyMin, KeyMin+keyRange) matches the reference, and, if the set is a
// Snapshotter, that its key enumeration is sorted, duplicate-free and equal
// to the reference contents.
func VerifyAgainstReference(t *testing.T, th core.Thread, s Set, ref Reference, keyRange uint64) {
	t.Helper()
	if snap, ok := s.(Snapshotter); ok {
		keys := snap.Keys(th)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("snapshot not strictly sorted at %d: %d >= %d", i, keys[i-1], keys[i])
			}
		}
		if len(keys) != len(ref) {
			t.Fatalf("snapshot has %d keys, reference has %d", len(keys), len(ref))
		}
		for _, k := range keys {
			if !ref[k] {
				t.Fatalf("snapshot contains %d, reference does not", k)
			}
		}
	}
	for k := range ref {
		if !s.Contains(th, k) {
			t.Fatalf("reference key %d missing from set", k)
		}
	}
}

// CheckDisjointConcurrent has each thread operate on its own key range so
// the final state is exactly predictable, then verifies it.
func CheckDisjointConcurrent(t *testing.T, mem core.Memory, s Set, threads, opsPerThread int) {
	t.Helper()
	if threads > mem.NumThreads() {
		t.Fatalf("need %d threads, memory has %d", threads, mem.NumThreads())
	}
	const stride = 1 << 20
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			base := KeyMin + uint64(w)*stride
			rng := rand.New(rand.NewSource(int64(w + 1)))
			// Random inserts/deletes within the private range; a private
			// reference tracks expected membership.
			ref := Reference{}
			for i := 0; i < opsPerThread; i++ {
				k := base + uint64(rng.Intn(256))
				if rng.Intn(2) == 0 {
					if got, want := s.Insert(th, k), ref.Insert(k); got != want {
						t.Errorf("thread %d: Insert(%d) = %v, want %v", w, k, got, want)
						return
					}
				} else {
					if got, want := s.Delete(th, k), ref.Delete(k); got != want {
						t.Errorf("thread %d: Delete(%d) = %v, want %v", w, k, got, want)
						return
					}
				}
			}
			for k := range ref {
				if !s.Contains(th, k) {
					t.Errorf("thread %d: key %d lost", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// CheckMixedConcurrent hammers a small shared key range from all threads,
// counting successful inserts/deletes per key, then verifies that final
// membership equals the net count (which must be 0 or 1 per key).
func CheckMixedConcurrent(t *testing.T, mem core.Memory, s Set, threads, opsPerThread int, keyRange uint64) {
	t.Helper()
	type coun struct{ ins, del int64 }
	counts := make([][]coun, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		counts[w] = make([]coun, keyRange)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerThread; i++ {
				idx := rng.Intn(int(keyRange))
				k := KeyMin + uint64(idx)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(th, k) {
						counts[w][idx].ins++
					}
				case 1:
					if s.Delete(th, k) {
						counts[w][idx].del++
					}
				default:
					s.Contains(th, k)
				}
			}
		}(w)
	}
	wg.Wait()

	th := mem.Thread(0)
	for idx := uint64(0); idx < keyRange; idx++ {
		var ins, del int64
		for w := 0; w < threads; w++ {
			ins += counts[w][idx].ins
			del += counts[w][idx].del
		}
		net := ins - del
		if net != 0 && net != 1 {
			t.Fatalf("key %d: net successful inserts %d (ins=%d del=%d) — success reporting broken", KeyMin+idx, net, ins, del)
		}
		if got, want := s.Contains(th, KeyMin+idx), net == 1; got != want {
			t.Fatalf("key %d: Contains = %v, want %v (ins=%d del=%d)", KeyMin+idx, got, want, ins, del)
		}
	}
	if snap, ok := s.(Snapshotter); ok {
		keys := snap.Keys(th)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("final snapshot unsorted/duplicated at %d", i)
			}
		}
	}
}
