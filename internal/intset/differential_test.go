package intset_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/abtree"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/skiplist"
	"repro/internal/vtags"
)

// opResult is one operation's observable outcome.
type opResult struct {
	Op  int
	Key uint64
	OK  bool
}

// runSequence drives one seeded single-thread operation sequence and
// returns every observable result plus the final snapshot.
func runSequence(mem core.Memory, s intset.Set, seed int64, ops int) ([]opResult, []uint64) {
	th := mem.Thread(0)
	if a, ok := th.(interface{ SetActive(bool) }); ok {
		a.SetActive(true)
		defer a.SetActive(false)
	}
	rng := rand.New(rand.NewSource(seed))
	results := make([]opResult, 0, ops)
	for i := 0; i < ops; i++ {
		k := intset.KeyMin + uint64(rng.Int63n(48))
		op := rng.Intn(3)
		var ok bool
		switch op {
		case 0:
			ok = s.Insert(th, k)
		case 1:
			ok = s.Delete(th, k)
		default:
			ok = s.Contains(th, k)
		}
		results = append(results, opResult{Op: op, Key: k, OK: ok})
	}
	var keys []uint64
	if snap, ok := s.(intset.Snapshotter); ok {
		keys = snap.Keys(th)
	}
	return results, keys
}

// TestBackendDifferential feeds identical seeded single-thread operation
// sequences through the versioned-emulation backend and the cycle-level
// machine backend and requires bit-identical results: same per-operation
// booleans, same final key set. Logical structure behavior must not depend
// on which backend simulates the memory — caches, coherence and tag
// plumbing may differ in cost only, never in outcome.
func TestBackendDifferential(t *testing.T) {
	structures := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"list-harris", func(m core.Memory) intset.Set { return list.NewHarris(m) }},
		{"list-vas", func(m core.Memory) intset.Set { return list.NewVAS(m) }},
		{"list-hoh", func(m core.Memory) intset.Set { return list.NewHoH(m) }},
		{"skiplist-cas", func(m core.Memory) intset.Set { return skiplist.New(m) }},
		{"skiplist-vas", func(m core.Memory) intset.Set { return skiplist.NewVAS(m) }},
		{"abtree-llx", func(m core.Memory) intset.Set { return abtree.NewLLX(m, 4, 8) }},
		{"abtree-hoh", func(m core.Memory) intset.Set { return abtree.NewHoH(m, 4, 8) }},
	}
	const ops = 400
	for _, st := range structures {
		st := st
		t.Run(st.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				vm := vtags.New(8<<20, 1)
				vRes, vKeys := runSequence(vm, st.build(vm), seed, ops)

				cfg := machine.DefaultConfig(1)
				cfg.MemBytes = 8 << 20
				mm := machine.New(cfg)
				mRes, mKeys := runSequence(mm, st.build(mm), seed, ops)

				if !reflect.DeepEqual(vRes, mRes) {
					for i := range vRes {
						if vRes[i] != mRes[i] {
							t.Fatalf("seed %d: backends diverged at op %d: vtags %+v, machine %+v",
								seed, i, vRes[i], mRes[i])
						}
					}
				}
				if !reflect.DeepEqual(vKeys, mKeys) {
					t.Fatalf("seed %d: final key sets differ:\nvtags:   %v\nmachine: %v",
						seed, vKeys, mKeys)
				}
			}
		})
	}
}
