package intset

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/schedfuzz"
)

// RangeQuerier is a Set with an atomic range scan: RangeQuery returns the
// keys in [lo, hi] as of a single linearization point, or ok=false when it
// gave up (tag budget exceeded, maxTries validation failures). Implemented
// by the tagged list, skip list and HoH (a,b)-tree.
type RangeQuerier interface {
	Set
	RangeQuery(th core.Thread, lo, hi uint64, maxTries int) (keys []uint64, ok bool)
}

// SnapshotConfig describes one snapshot-linearizability stress run: workers
// mix point operations with atomic range scans and whole-set snapshots, and
// the combined history is checked against the whole-set sequential model
// (linearizability.SnapshotSetModel). Scans do not commute with point
// operations, so the check is single-partition — keep runs small.
type SnapshotConfig struct {
	Threads      int
	OpsPerThread int
	// KeyRange bounds the key universe [KeyMin, KeyMin+KeyRange-1]; the
	// whole-set model needs KeyRange <= 64.
	KeyRange uint64
	Prefill  int
	Seed     int64
	// ScanPerMil is the per-mil probability that an op is a scan (half
	// random ranges, half whole-set snapshots). 0 picks a default of 250.
	ScanPerMil int
	// ScanTries is the RangeQuery retry budget. 0 picks a default of 64.
	ScanTries int
	// Fuzz, when non-nil, wraps the backend with schedule fuzzing.
	Fuzz *schedfuzz.Config
	// MaxIters overrides the checker's search budget.
	MaxIters uint64
}

// maskOf encodes a scan result as the membership bitmask the snapshot model
// compares against its state.
func maskOf(keys []uint64) uint64 {
	var m uint64
	for _, k := range keys {
		m |= uint64(1) << (k - KeyMin)
	}
	return m
}

// RunSnapshotLinearize executes one recorded run mixing point ops with
// atomic scans and checks the history against SnapshotSetModel. newMem and
// build follow the RunLinearize contract; build's result must implement
// RangeQuerier.
func RunSnapshotLinearize(newMem func(threads int) core.Memory, build func(core.Memory) Set, cfg SnapshotConfig) linearizability.Outcome {
	if cfg.KeyRange < 1 || cfg.KeyRange > 64 {
		panic("intset: SnapshotConfig.KeyRange must be in [1, 64]")
	}
	scanPerMil := cfg.ScanPerMil
	if scanPerMil == 0 {
		scanPerMil = 250
	}
	scanTries := cfg.ScanTries
	if scanTries == 0 {
		scanTries = 64
	}

	var mem core.Memory = newMem(cfg.Threads)
	if cfg.Fuzz != nil {
		mem = schedfuzz.Wrap(mem, *cfg.Fuzz)
	}
	s := build(mem).(RangeQuerier)

	rec := history.NewRecorder(cfg.Threads, cfg.OpsPerThread+cfg.Prefill+8)

	if cfg.Prefill > 0 {
		th := mem.Thread(0)
		sh := rec.Shard(0)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
		inserted := 0
		for inserted < cfg.Prefill {
			off := uint64(rng.Int63n(int64(cfg.KeyRange)))
			idx := sh.Begin(history.OpInsert, off, 0)
			ok := s.Insert(th, KeyMin+off)
			sh.End(idx, ok, 0)
			if ok {
				inserted++
			}
		}
	}

	if ea, ok := mem.(epochAligner); ok {
		ea.BeginEpoch()
	}

	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	ready.Add(cfg.Threads)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			if a, ok := th.(activatable); ok {
				a.SetActive(true)
				defer a.SetActive(false)
			}
			ready.Done()
			<-start
			sh := rec.Shard(w)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
			for i := 0; i < cfg.OpsPerThread; i++ {
				if rng.Intn(1000) < scanPerMil {
					if rng.Intn(2) == 0 {
						// Whole-set snapshot.
						idx := sh.Begin(history.OpKeys, 0, cfg.KeyRange-1)
						keys, ok := s.RangeQuery(th, KeyMin, KeyMin+cfg.KeyRange-1, scanTries)
						sh.End(idx, ok, maskOf(keys))
					} else {
						lo := uint64(rng.Int63n(int64(cfg.KeyRange)))
						hi := lo + uint64(rng.Int63n(int64(cfg.KeyRange-lo)))
						idx := sh.Begin(history.OpRange, lo, hi)
						keys, ok := s.RangeQuery(th, KeyMin+lo, KeyMin+hi, scanTries)
						sh.End(idx, ok, maskOf(keys))
					}
					continue
				}
				off := uint64(rng.Int63n(int64(cfg.KeyRange)))
				k := KeyMin + off
				switch rng.Intn(3) {
				case 0:
					idx := sh.Begin(history.OpInsert, off, 0)
					sh.End(idx, s.Insert(th, k), 0)
				case 1:
					idx := sh.Begin(history.OpDelete, off, 0)
					sh.End(idx, s.Delete(th, k), 0)
				default:
					idx := sh.Begin(history.OpContains, off, 0)
					sh.End(idx, s.Contains(th, k), 0)
				}
			}
		}(w)
	}
	ready.Wait()
	close(start)
	wg.Wait()

	opts := []linearizability.Option{}
	if cfg.MaxIters > 0 {
		opts = append(opts, linearizability.WithMaxIters(cfg.MaxIters))
	}
	return linearizability.Check(linearizability.SnapshotSetModel(cfg.KeyRange), rec.Events(), opts...)
}

// CheckSnapshotLinearizable runs RunSnapshotLinearize and fails the test on
// a non-linearizable history or an inconclusive verdict.
func CheckSnapshotLinearizable(t *testing.T, newMem func(threads int) core.Memory, build func(core.Memory) Set, cfg SnapshotConfig) {
	t.Helper()
	out := RunSnapshotLinearize(newMem, build, cfg)
	if out.Inconclusive {
		t.Fatalf("snapshot linearizability verdict inconclusive (seed %d): shrink the run or raise MaxIters\n%s", cfg.Seed, out.Explain())
	}
	if !out.OK {
		t.Fatalf("seed %d: %s", cfg.Seed, out.Explain())
	}
}
