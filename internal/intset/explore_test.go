package intset_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/schedexplore"
)

// TestExploreDeterministicFromSeed is the end-to-end determinism
// guarantee: two explorations from the same seed must produce identical
// machine traces (per-execution digests) AND identical linearizability
// histories, event for event — the property that makes a counterexample's
// seed and choice sequence a complete bug report.
func TestExploreDeterministicFromSeed(t *testing.T) {
	newMachine := func(threads int) *machine.Machine {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 8 << 20
		return machine.New(cfg)
	}
	build := func(m core.Memory) intset.Set { return list.NewHoH(m) }
	run := func() ([][]history.Event, []uint64) {
		var hists [][]history.Event
		res := intset.RunExplore(newMachine, build, intset.ExploreConfig{
			Threads:      3,
			OpsPerThread: 10,
			KeyRange:     8,
			Prefill:      4,
			Seed:         33,
			Mode:         schedexplore.RandomWalk,
			Executions:   4,
			EvictPerMil:  150,
			OnHistory: func(events []history.Event) {
				hists = append(hists, append([]history.Event(nil), events...))
			},
		})
		if res.Failure != nil {
			t.Fatalf("unexpected violation:\n%s", res.Failure)
		}
		if len(res.TraceHashes) != 4 || len(hists) != 4 {
			t.Fatalf("got %d trace digests and %d histories, want 4 each", len(res.TraceHashes), len(hists))
		}
		return hists, res.TraceHashes
	}
	hists1, traces1 := run()
	hists2, traces2 := run()
	if !reflect.DeepEqual(traces1, traces2) {
		t.Fatalf("same seed produced different machine traces:\n%v\n%v", traces1, traces2)
	}
	if !reflect.DeepEqual(hists1, hists2) {
		t.Fatal("same seed produced different linearizability histories")
	}
}
