package intset_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// withWatchdog fails the test if fn does not finish within the deadline —
// the failure mode of interest for starved tag budgets is livelock, which
// would otherwise hang the suite. fn runs on its own goroutine, so it must
// report failures via t.Error, not t.Fatal.
func withWatchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("watchdog: run did not finish within %v (livelock under tag starvation?)", d)
	}
}

// TestOverflowStarvedTagBudget runs tag-hungry structures on backends with
// MaxTags squeezed to the documented minimum and checks that operations
// still complete correctly: tags are advisory, so overflow must degrade to
// retry or fallback, never to a wrong answer or a livelock.
//
// The minima are part of each structure's contract: the VAS list tags
// pred+curr during unlink helping, so it needs 2; the elided list's guard
// overflows on its 3rd tag at MaxTags 2 and bounces to the Harris slow
// path, which needs none.
func TestOverflowStarvedTagBudget(t *testing.T) {
	cases := []struct {
		name    string
		maxTags int
		build   func(core.Memory) intset.Set
	}{
		{"vas-list-2", 2, func(m core.Memory) intset.Set { return list.NewVAS(m) }},
		{"elided-list-2", 2, func(m core.Memory) intset.Set { return list.NewElided(m, 4) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			mem := vtags.New(1<<20, 4, vtags.WithMaxTags(c.maxTags))
			s := c.build(mem)
			withWatchdog(t, 30*time.Second, func() {
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						th := mem.Thread(w)
						for i := 0; i < 300; i++ {
							k := intset.KeyMin + uint64((i*7+w)%16)
							s.Insert(th, k)
							s.Contains(th, k)
							s.Delete(th, k)
						}
					}()
				}
				wg.Wait()
			})
			if keys := s.(intset.Snapshotter).Keys(mem.Thread(0)); len(keys) != 0 {
				t.Errorf("every insert was paired with a delete, yet keys remain: %v", keys)
			}
		})
	}
}

// TestOverflowHoHRefusesStarvedBudget pins the documented contract that
// hand-over-hand structures refuse construction below their tagging
// window instead of livelocking at runtime.
func TestOverflowHoHRefusesStarvedBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHoH accepted MaxTags 2, below its 3-line window")
		}
	}()
	list.NewHoH(vtags.New(1<<20, 1, vtags.WithMaxTags(2)))
}

// TestOverflowValidateFailsAfterEviction checks the failure latch on both
// backends: once a tagged line leaves the tag set — forced directly on
// vtags, via genuine L1 capacity pressure on the machine — Validate and
// VAS must fail until ClearTagSet resets the thread.
func TestOverflowValidateFailsAfterEviction(t *testing.T) {
	t.Run("vtags-forced", func(t *testing.T) {
		mem := vtags.New(1<<20, 1)
		th := mem.Thread(0)
		a := mem.Alloc(1)
		if !th.AddTag(a, core.WordSize) || !th.Validate() {
			t.Fatal("tag+validate must succeed before eviction")
		}
		if !th.(*vtags.Thread).ForceTagEviction(a.Line()) {
			t.Fatal("ForceTagEviction must report true for a held tag")
		}
		if th.Validate() {
			t.Fatal("Validate succeeded after forced eviction")
		}
		if th.VAS(a, 1) {
			t.Fatal("VAS succeeded after forced eviction")
		}
		th.ClearTagSet()
		if !th.AddTag(a, core.WordSize) || !th.Validate() {
			t.Fatal("ClearTagSet must reset the failure latch")
		}
	})

	t.Run("machine-capacity", func(t *testing.T) {
		cfg := machine.DefaultConfig(1)
		cfg.MemBytes = 1 << 20
		cfg.L1Bytes = 2 << 10 // 32 lines
		cfg.L1Ways = 2
		cfg.L2Bytes = 8 << 10
		mem := machine.New(cfg)
		th := mem.Thread(0)
		tagged := mem.Alloc(1)
		if !th.AddTag(tagged, core.WordSize) {
			t.Fatal("AddTag failed on a fresh thread")
		}
		// Touch far more distinct lines than the L1 holds; the tagged
		// line must eventually fall victim to capacity replacement.
		for i := 0; i < 4096; i++ {
			th.Load(mem.Alloc(1))
		}
		if th.Validate() {
			t.Fatal("Validate succeeded after the tagged line was evicted by capacity pressure")
		}
		th.ClearTagSet()
		if !th.AddTag(tagged, core.WordSize) {
			t.Fatal("ClearTagSet must reset the failure latch")
		}
	})
}
