package intset

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vtags"
)

func TestReferenceModel(t *testing.T) {
	r := Reference{}
	if !r.Insert(1) || r.Insert(1) {
		t.Fatal("insert semantics")
	}
	if !r.Contains(1) || r.Contains(2) {
		t.Fatal("contains semantics")
	}
	if !r.Delete(1) || r.Delete(1) || r.Contains(1) {
		t.Fatal("delete semantics")
	}
}

// trivialSet is a map-backed Set for harness self-tests.
type trivialSet struct{ m map[uint64]bool }

func (s *trivialSet) Insert(_ core.Thread, k uint64) bool {
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}
func (s *trivialSet) Delete(_ core.Thread, k uint64) bool {
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}
func (s *trivialSet) Contains(_ core.Thread, k uint64) bool { return s.m[k] }

func TestPrefillDistinctAndSized(t *testing.T) {
	mem := vtags.New(1<<16, 1)
	s := &trivialSet{m: map[uint64]bool{}}
	keys := Prefill(mem.Thread(0), s, 50, 1000, 7)
	if len(keys) != 50 || len(s.m) != 50 {
		t.Fatalf("prefill produced %d keys, set has %d", len(keys), len(s.m))
	}
	for _, k := range keys {
		if k < KeyMin || k > KeyMin+1000 {
			t.Fatalf("key %d outside range", k)
		}
	}
}

func TestPrefillDeterministic(t *testing.T) {
	mem := vtags.New(1<<16, 1)
	a := Prefill(mem.Thread(0), &trivialSet{m: map[uint64]bool{}}, 20, 100, 3)
	b := Prefill(mem.Thread(0), &trivialSet{m: map[uint64]bool{}}, 20, 100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prefill not deterministic in seed")
		}
	}
}

func TestCheckSequentialPassesOnCorrectSet(t *testing.T) {
	mem := vtags.New(1<<16, 1)
	CheckSequential(t, mem, &trivialSet{m: map[uint64]bool{}}, 500, 32, 1)
}

// lockedSet wraps trivialSet with a mutex so the concurrent harnesses can
// be exercised in-package.
type lockedSet struct {
	mu sync.Mutex
	m  map[uint64]bool
}

func (s *lockedSet) Insert(_ core.Thread, k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[k] {
		return false
	}
	s.m[k] = true
	return true
}

func (s *lockedSet) Delete(_ core.Thread, k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.m[k] {
		return false
	}
	delete(s.m, k)
	return true
}

func (s *lockedSet) Contains(_ core.Thread, k uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *lockedSet) Keys(_ core.Thread) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint64, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestCheckDisjointConcurrentHarness(t *testing.T) {
	mem := vtags.New(1<<20, 4)
	CheckDisjointConcurrent(t, mem, &lockedSet{m: map[uint64]bool{}}, 4, 200)
}

func TestCheckMixedConcurrentHarness(t *testing.T) {
	mem := vtags.New(1<<20, 4)
	CheckMixedConcurrent(t, mem, &lockedSet{m: map[uint64]bool{}}, 4, 200, 16)
}

func TestVerifyAgainstReferenceSnapshotter(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := &lockedSet{m: map[uint64]bool{}}
	ref := Reference{}
	for _, k := range []uint64{5, 9, 2} {
		s.Insert(mem.Thread(0), k)
		ref.Insert(k)
	}
	VerifyAgainstReference(t, mem.Thread(0), s, ref, 16)
}
