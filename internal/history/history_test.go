package history

import (
	"sync"
	"testing"
)

func TestTimestampsOrderOperations(t *testing.T) {
	r := NewRecorder(1, 4)
	sh := r.Shard(0)
	i1 := sh.Begin(OpInsert, 7, 0)
	sh.End(i1, true, 0)
	i2 := sh.Begin(OpContains, 7, 0)
	sh.End(i2, true, 0)

	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	a, b := evs[0], evs[1]
	if a.Pending() || b.Pending() {
		t.Fatalf("completed events reported pending: %+v %+v", a, b)
	}
	if !(a.Inv < a.Ret && a.Ret < b.Inv && b.Inv < b.Ret) {
		t.Fatalf("timestamps not ordered: %+v %+v", a, b)
	}
	if a.Op != OpInsert || a.Key != 7 || !a.OK {
		t.Fatalf("event fields wrong: %+v", a)
	}
}

func TestPendingEvent(t *testing.T) {
	r := NewRecorder(1, 1)
	sh := r.Shard(0)
	sh.Begin(OpDelete, 3, 0)
	evs := r.Events()
	if len(evs) != 1 || !evs[0].Pending() {
		t.Fatalf("expected one pending event, got %+v", evs)
	}
}

func TestConcurrentShardsDisjointTimestamps(t *testing.T) {
	const workers, ops = 8, 200
	r := NewRecorder(workers, ops)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.Shard(w)
			for i := 0; i < ops; i++ {
				idx := sh.Begin(OpInsert, uint64(i), 0)
				sh.End(idx, true, 0)
			}
		}(w)
	}
	wg.Wait()

	evs := r.Events()
	if len(evs) != workers*ops {
		t.Fatalf("got %d events, want %d", len(evs), workers*ops)
	}
	seen := make(map[uint64]bool, 2*len(evs))
	for _, e := range evs {
		if e.Inv >= e.Ret {
			t.Fatalf("event inverted: %+v", e)
		}
		if seen[e.Inv] || seen[e.Ret] {
			t.Fatalf("duplicate timestamp in %+v", e)
		}
		seen[e.Inv] = true
		seen[e.Ret] = true
	}
}
