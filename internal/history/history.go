// Package history records concurrent operation histories — invocation and
// response events with logical timestamps — for linearizability checking.
//
// A Recorder is shared by all workers of one test run; each worker owns a
// Shard and brackets every operation with Begin/End. Timestamps come from a
// single atomic counter, so the recorded partial order is exactly the
// real-time order the checker needs: operation A happens-before operation B
// iff A's response timestamp precedes B's invocation timestamp. The
// per-operation cost is one atomic increment on each side plus an append
// into a preallocated per-worker slice, so recording perturbs the
// interleavings under test as little as possible.
package history

import "sync/atomic"

// Conventional operation codes. The Op field is caller-defined; these
// constants are the codes the stock linearizability models (set, register,
// counter) interpret. Harnesses with bespoke semantics may use their own
// codes with their own models.
const (
	// OpInsert / OpDelete / OpContains are the ordered-set operations
	// (Key = set key, OK = operation result).
	OpInsert uint8 = iota
	OpDelete
	OpContains
	// OpRead is a register/counter read (Out = value observed).
	OpRead
	// OpCAS is a compare-and-swap-style update (Arg/Out/OK meaning is
	// model-specific; see linearizability.RegisterModel).
	OpCAS
	// OpIncGet is a fetch-and-increment (Out = value before the increment).
	OpIncGet
	// OpRange is an atomic range scan over set keys (Key = low bound,
	// Arg = high bound, Out = observed membership encoded by the model,
	// OK = whether a snapshot was obtained at all).
	OpRange
	// OpKeys is an atomic whole-set snapshot (Out = observed membership
	// encoded by the model, OK as for OpRange).
	OpKeys
	// OpTx is one whole transaction: Key indexes the transaction's
	// footprint (read/write sets with values) in the recording shard —
	// fetch it with Recorder.TxOf. Arg counts the aborted attempts before
	// the commit; OK reports whether the transaction committed. Checked by
	// linearizability.SerializableMapModel.
	OpTx
)

// pending marks an event whose response has not been recorded.
const pending = ^uint64(0)

// Event is one completed (or still-pending) operation.
type Event struct {
	// Worker is the recording shard's index.
	Worker int32
	// Op is the caller-defined operation code.
	Op uint8
	// Key is the operation's partition key (set key, register index, ...).
	Key uint64
	// Arg is an optional input argument beyond the key.
	Arg uint64
	// Out is an optional output value.
	Out uint64
	// OK is the operation's boolean result.
	OK bool
	// Inv and Ret are the logical invocation/response timestamps. Ret is
	// math.MaxUint64 while the operation is pending.
	Inv, Ret uint64
}

// Pending reports whether the event has no recorded response. A pending
// operation may or may not have taken effect; checkers must allow both.
func (e *Event) Pending() bool { return e.Ret == pending }

// TxAccess is one entry of a transaction's footprint: an address and the
// value observed there (read set) or installed there (write set).
type TxAccess struct {
	Addr, Val uint64
}

// TxData is the footprint of one recorded transaction: the read and write
// sets of the attempt that committed. Reads exclude addresses the
// transaction wrote first (those observe the transaction's own buffered
// value and constrain nothing externally).
type TxData struct {
	Reads  []TxAccess
	Writes []TxAccess
}

// Recorder collects events from concurrent workers.
type Recorder struct {
	clock  atomic.Uint64
	shards []Shard
}

// NewRecorder creates a recorder with one shard per worker, each sized for
// capacityHint events (0 picks a small default).
func NewRecorder(workers, capacityHint int) *Recorder {
	if capacityHint <= 0 {
		capacityHint = 64
	}
	r := &Recorder{shards: make([]Shard, workers)}
	for i := range r.shards {
		r.shards[i].rec = r
		r.shards[i].worker = int32(i)
		r.shards[i].events = make([]Event, 0, capacityHint)
	}
	return r
}

// Shard returns worker w's shard. Each shard must be used by at most one
// goroutine at a time.
func (r *Recorder) Shard(w int) *Shard { return &r.shards[w] }

// NumShards returns the number of worker shards.
func (r *Recorder) NumShards() int { return len(r.shards) }

// Events gathers every recorded event. Only valid once all workers have
// stopped recording.
func (r *Recorder) Events() []Event {
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].events)
	}
	all := make([]Event, 0, n)
	for i := range r.shards {
		all = append(all, r.shards[i].events...)
	}
	return all
}

// TxOf returns the footprint of a recorded OpTx event. Only valid once
// the recording shard has stopped appending.
func (r *Recorder) TxOf(e *Event) *TxData {
	return &r.shards[e.Worker].txs[e.Key]
}

// Shard is one worker's event log.
type Shard struct {
	rec    *Recorder
	worker int32
	events []Event
	txs    []TxData
}

// Begin records an operation invocation and returns its index for End.
func (s *Shard) Begin(op uint8, key, arg uint64) int {
	s.events = append(s.events, Event{
		Worker: s.worker,
		Op:     op,
		Key:    key,
		Arg:    arg,
		Inv:    s.rec.clock.Add(1),
		Ret:    pending,
	})
	return len(s.events) - 1
}

// End records the response of the operation Begin returned idx for.
func (s *Shard) End(idx int, ok bool, out uint64) {
	e := &s.events[idx]
	e.OK = ok
	e.Out = out
	e.Ret = s.rec.clock.Add(1)
}

// BeginTx records a transaction invocation (an OpTx event backed by a
// fresh footprint) and returns its index for TxRead/TxWrite/SetArg/End.
func (s *Shard) BeginTx() int {
	s.txs = append(s.txs, TxData{})
	return s.Begin(OpTx, uint64(len(s.txs)-1), 0)
}

// TxRead appends (addr, observed value) to the transaction's read set.
func (s *Shard) TxRead(idx int, addr, val uint64) {
	t := &s.txs[s.events[idx].Key]
	t.Reads = append(t.Reads, TxAccess{Addr: addr, Val: val})
}

// TxWrite appends (addr, installed value) to the transaction's write set.
func (s *Shard) TxWrite(idx int, addr, val uint64) {
	t := &s.txs[s.events[idx].Key]
	t.Writes = append(t.Writes, TxAccess{Addr: addr, Val: val})
}

// SetArg rewrites the Arg of a recorded operation. Some attributes — e.g.
// which internal path an operation committed through — are only known once
// the operation returns, but the invocation timestamp must still come from
// Begin; record those by Begin/SetArg/End.
func (s *Shard) SetArg(idx int, arg uint64) { s.events[idx].Arg = arg }

// Len returns the number of events recorded in this shard.
func (s *Shard) Len() int { return len(s.events) }
