package core

import "math/bits"

// MaxCores is the largest number of simulated cores any backend supports.
// The paper's Graphite evaluation stops at 64 flat cores; the simulator
// scales past it (sharded hot state, two-level topology), with CoreSet as
// the directory's sharer/tagger representation. 512 keeps the set at eight
// words — small enough to embed by value in every directory entry, large
// enough for the NUMA sweeps.
const MaxCores = 512

const coreSetWords = MaxCores / 64

// CoreSet is a fixed-capacity bitset over core ids [0, MaxCores). It is a
// plain value type with no synchronization: directory entries mutate it
// under their per-line mutex, debug APIs return copies. The zero value is
// the empty set.
type CoreSet [coreSetWords]uint64

// Contains reports whether core c is in the set.
func (s *CoreSet) Contains(c int) bool {
	return s[uint(c)>>6]&(1<<(uint(c)&63)) != 0
}

// Add inserts core c.
func (s *CoreSet) Add(c int) {
	s[uint(c)>>6] |= 1 << (uint(c) & 63)
}

// Remove deletes core c.
func (s *CoreSet) Remove(c int) {
	s[uint(c)>>6] &^= 1 << (uint(c) & 63)
}

// Clear empties the set.
func (s *CoreSet) Clear() {
	*s = CoreSet{}
}

// Only resets the set to contain exactly core c (the "sharers = 1<<me"
// idiom of exclusive ownership).
func (s *CoreSet) Only(c int) {
	*s = CoreSet{}
	s.Add(c)
}

// Empty reports whether no core is in the set.
func (s *CoreSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of cores in the set (population count).
func (s *CoreSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Next returns the smallest member >= from, or -1 when there is none.
// Iterate with:
//
//	for c := s.Next(0); c >= 0; c = s.Next(c + 1)
func (s *CoreSet) Next(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= MaxCores {
		return -1
	}
	wi := uint(from) >> 6
	w := s[wi] >> (uint(from) & 63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < coreSetWords; wi++ {
		if s[wi] != 0 {
			return int(wi)<<6 + bits.TrailingZeros64(s[wi])
		}
	}
	return -1
}

// Intersects reports whether the two sets share any core.
func (s *CoreSet) Intersects(o *CoreSet) bool {
	for i, w := range s {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether o is a subset of s.
func (s *CoreSet) ContainsAll(o *CoreSet) bool {
	for i, w := range o {
		if w&^s[i] != 0 {
			return false
		}
	}
	return true
}
