package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vtags"
)

func TestFallbackFastPathCommit(t *testing.T) {
	m := vtags.New(1<<16, 1)
	fb := core.NewFallback(m)
	th := m.Thread(0)

	calls := 0
	fastTaken := fb.Run(th, func() bool {
		calls++
		return true
	}, func() { t.Fatal("slow path should not run") })
	if !fastTaken || calls != 1 {
		t.Fatalf("fastTaken=%v calls=%d", fastTaken, calls)
	}
	if th.TagCount() != 0 {
		t.Fatal("tag set not cleared after Run")
	}
}

func TestFallbackTripsToSlowPath(t *testing.T) {
	m := vtags.New(1<<16, 1)
	fb := core.NewFallback(m)
	fb.Threshold = 3
	th := m.Thread(0)

	fastCalls, slowCalls := 0, 0
	fastTaken := fb.Run(th, func() bool {
		fastCalls++
		return false
	}, func() { slowCalls++ })
	if fastTaken {
		t.Fatal("reported fast commit after persistent failure")
	}
	if fastCalls != 3 || slowCalls != 1 {
		t.Fatalf("fastCalls=%d slowCalls=%d, want 3/1", fastCalls, slowCalls)
	}
	// The slow count must return to zero afterwards.
	if th.Load(fb.ModeAddr()) != core.ModeFast {
		t.Fatal("slow count not restored to zero")
	}
}

func TestFallbackSlowModeAbortsFastPath(t *testing.T) {
	m := vtags.New(1<<16, 2)
	fb := core.NewFallback(m)
	t0, t1 := m.Thread(0), m.Thread(1)

	fb.EnterSlow(t0)
	if fb.BeginFast(t1) {
		t.Fatal("BeginFast succeeded with a slow op in flight")
	}
	t1.ClearTagSet()
	fb.ExitSlow(t0)
	if !fb.BeginFast(t1) {
		t.Fatal("BeginFast failed with no slow ops in flight")
	}
	t1.ClearTagSet()
}

// TestFallbackCountsNestedSlowOps pins the counting semantics: the fast
// path stays disabled until EVERY slow operation has exited, not merely
// the first one (critical when the slow path is a multi-step protocol like
// LLX/SCX).
func TestFallbackCountsNestedSlowOps(t *testing.T) {
	m := vtags.New(1<<16, 3)
	fb := core.NewFallback(m)
	t0, t1, t2 := m.Thread(0), m.Thread(1), m.Thread(2)

	fb.EnterSlow(t0)
	fb.EnterSlow(t1)
	fb.ExitSlow(t0) // one slow op still in flight (t1's)
	if fb.BeginFast(t2) {
		t.Fatal("fast path enabled while a slow op is still in flight")
	}
	t2.ClearTagSet()
	fb.ExitSlow(t1)
	if !fb.BeginFast(t2) {
		t.Fatal("fast path still disabled after all slow ops exited")
	}
	t2.ClearTagSet()
}

// TestExitSlowWithoutEnterPanics guards the protocol against unbalanced
// usage.
func TestExitSlowWithoutEnterPanics(t *testing.T) {
	m := vtags.New(1<<16, 1)
	fb := core.NewFallback(m)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced ExitSlow did not panic")
		}
	}()
	fb.ExitSlow(m.Thread(0))
}

func TestFallbackModeChangeInvalidatesInFlightFastPath(t *testing.T) {
	m := vtags.New(1<<16, 2)
	fb := core.NewFallback(m)
	t0, t1 := m.Thread(0), m.Thread(1)

	target := m.Alloc(1)
	if !fb.BeginFast(t1) {
		t.Fatal("BeginFast failed")
	}
	// Concurrent switch to SLOW writes the mode line, which is in t1's tag
	// set, so t1's commit must fail.
	fb.EnterSlow(t0)
	if t1.VAS(target, 1) {
		t.Fatal("fast-path VAS committed after mode switch")
	}
	t1.ClearTagSet()
}

func TestFallbackDefaultThreshold(t *testing.T) {
	m := vtags.New(1<<16, 1)
	fb := core.NewFallback(m)
	fb.Threshold = 0 // misconfigured: Run must still terminate
	th := m.Thread(0)
	fastCalls := 0
	fb.Run(th, func() bool { fastCalls++; return false }, func() {})
	if fastCalls != core.DefaultFallbackThreshold {
		t.Fatalf("fastCalls=%d, want default threshold %d", fastCalls, core.DefaultFallbackThreshold)
	}
}
