package core

// The paper's fall-back path (Section 3) allocates a separate Mode line;
// fast-path operations include the line in their tag set so that a mode
// change invalidates every in-flight fast-path attempt.
//
// This implementation generalizes the FAST/SLOW flag into a count of
// in-flight slow-path operations. The distinction matters when the slow
// path is itself a multi-step protocol (LLX/SCX): a fast-path commit is
// only safe while *no* slow operation is in flight, not merely after the
// last one flipped the flag back. With a plain flag, thread A could reset
// the mode to FAST while thread B's SCX is still freezing nodes, and a
// fast-path IAS could slip into the middle of B's atomic step. With a
// count, BeginFast only passes at zero, and every entry/exit writes the
// Mode line, invalidating it in every fast-path tag set.
const (
	// ModeFast is the Mode value with no slow-path operations in flight.
	ModeFast uint64 = 0
)

// DefaultFallbackThreshold is the number of consecutive failed fast-path
// attempts after which Fallback switches to the slow path.
const DefaultFallbackThreshold = 16

// Fallback implements the paper's HLE-style fallback protocol around a
// tagged fast path. A Fallback is shared by all threads of one data
// structure; it owns one Mode word in simulated memory holding the number
// of in-flight slow-path operations.
type Fallback struct {
	mem  Memory
	mode Addr
	// Threshold is the number of consecutive fast-path failures after
	// which Run switches to the slow path.
	Threshold int
}

// NewFallback allocates the Mode line (initially FAST / zero) and returns
// the controller.
func NewFallback(mem Memory) *Fallback {
	f := &Fallback{mem: mem, mode: mem.Alloc(1), Threshold: DefaultFallbackThreshold}
	mem.Thread(0).Store(f.mode, ModeFast)
	return f
}

// ModeAddr returns the address of the Mode word, for tests and guards.
func (f *Fallback) ModeAddr() Addr { return f.mode }

// BeginFast tags the Mode line and reports whether the fast path may be
// attempted (no slow operation in flight). The Mode line stays tagged so
// the attempt's final VAS/IAS validates it: any slow-path entry in the
// meantime fails the commit.
func (f *Fallback) BeginFast(t Thread) bool {
	if !t.AddTag(f.mode, WordSize) {
		return false
	}
	return t.Load(f.mode) == ModeFast
}

// EnterSlow registers one slow-path operation (incrementing the count).
// The write invalidates the Mode line at every core that tagged it,
// aborting all in-flight fast-path attempts.
func (f *Fallback) EnterSlow(t Thread) {
	for {
		v := t.Load(f.mode)
		if t.CAS(f.mode, v, v+1) {
			return
		}
	}
}

// ExitSlow deregisters one slow-path operation. Once the count returns to
// zero, fast-path attempts pass BeginFast again (the paper resets the mode
// "after some pre-defined period"; counting makes the reset exact).
func (f *Fallback) ExitSlow(t Thread) {
	for {
		v := t.Load(f.mode)
		if v == 0 {
			panic("core: ExitSlow without matching EnterSlow")
		}
		if t.CAS(f.mode, v, v-1) {
			return
		}
	}
}

// Run executes one operation: it tries fast up to Threshold times while
// the mode permits, and otherwise runs slow. fast reports whether the
// attempt committed; it must leave the tag set cleared when it returns
// false. slow must always complete the operation.
//
// Run returns true if the fast path committed, false if the slow path was
// taken — useful for measuring fallback trip rates.
func (f *Fallback) Run(t Thread, fast func() bool, slow func()) bool {
	threshold := f.Threshold
	if threshold <= 0 {
		threshold = DefaultFallbackThreshold
	}
	for attempt := 0; attempt < threshold; attempt++ {
		if !f.BeginFast(t) {
			t.ClearTagSet()
			break
		}
		if fast() {
			t.ClearTagSet()
			return true
		}
		t.ClearTagSet()
	}
	f.EnterSlow(t)
	slow()
	f.ExitSlow(t)
	return false
}
