package core

import (
	"testing"
	"testing/quick"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		a    Addr
		line Line
	}{
		{0, 0},
		{8, 0},
		{63, 0},
		{64, 1},
		{127, 1},
		{128, 2},
		{64 * 1000, 1000},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("Addr(%d).Line() = %d, want %d", c.a, got, c.line)
		}
	}
}

func TestAddrWordOffsetPlus(t *testing.T) {
	a := Addr(128)
	if a.Word() != 16 {
		t.Errorf("Word() = %d, want 16", a.Word())
	}
	if a.Offset() != 0 {
		t.Errorf("Offset() = %d, want 0", a.Offset())
	}
	b := a.Plus(3)
	if b != 152 {
		t.Errorf("Plus(3) = %d, want 152", b)
	}
	if b.Offset() != 24 {
		t.Errorf("Offset() = %d, want 24", b.Offset())
	}
	if !NilAddr.IsNil() || a.IsNil() {
		t.Error("IsNil misbehaves")
	}
}

func TestLinesSpannedSingle(t *testing.T) {
	lines := LinesSpanned(Addr(64), 64)
	if len(lines) != 1 || lines[0] != 1 {
		t.Fatalf("LinesSpanned(64, 64) = %v, want [1]", lines)
	}
}

func TestLinesSpannedCrossing(t *testing.T) {
	// 16 bytes starting 8 bytes before a line boundary spans two lines.
	lines := LinesSpanned(Addr(120), 16)
	if len(lines) != 2 || lines[0] != 1 || lines[1] != 2 {
		t.Fatalf("LinesSpanned(120, 16) = %v, want [1 2]", lines)
	}
}

func TestLinesSpannedZeroAndNegative(t *testing.T) {
	if got := LinesSpanned(Addr(64), 0); got != nil {
		t.Errorf("size 0: got %v, want nil", got)
	}
	if got := LinesSpanned(Addr(64), -8); got != nil {
		t.Errorf("negative size: got %v, want nil", got)
	}
}

func TestLinesSpannedLarge(t *testing.T) {
	// A 5-line object starting mid-line spans 6 lines.
	lines := LinesSpanned(Addr(96), 5*LineSize)
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6 (%v)", len(lines), lines)
	}
	for i, l := range lines {
		if l != Line(1+i) {
			t.Fatalf("lines[%d] = %d, want %d", i, l, 1+i)
		}
	}
}

// Property: LinesSpanned is contiguous, starts at a.Line(), and covers
// exactly ceil((offset+size)/LineSize) lines.
func TestLinesSpannedProperty(t *testing.T) {
	f := func(rawAddr uint32, rawSize uint16) bool {
		a := Addr(rawAddr) &^ (WordSize - 1) // word-align
		size := int(rawSize%2048) + 1
		lines := LinesSpanned(a, size)
		if len(lines) == 0 {
			return false
		}
		if lines[0] != a.Line() {
			return false
		}
		want := int((uint64(a)+uint64(size)-1)/LineSize - uint64(a)/LineSize + 1)
		if len(lines) != want {
			return false
		}
		for i := 1; i < len(lines); i++ {
			if lines[i] != lines[i-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
