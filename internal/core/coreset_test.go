package core

import (
	"math/rand"
	"testing"
)

// TestCoreSetVsOracle drives a CoreSet and a map-based oracle with the same
// random operation sequence and checks every query against the oracle after
// each mutation.
func TestCoreSetVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s CoreSet
	oracle := map[int]bool{}

	check := func(step int) {
		t.Helper()
		if got, want := s.Count(), len(oracle); got != want {
			t.Fatalf("step %d: Count = %d, oracle has %d", step, got, want)
		}
		if got, want := s.Empty(), len(oracle) == 0; got != want {
			t.Fatalf("step %d: Empty = %v, oracle %v", step, got, want)
		}
		// Membership, spot-checked at random plus all oracle members.
		for i := 0; i < 16; i++ {
			c := rng.Intn(MaxCores)
			if got, want := s.Contains(c), oracle[c]; got != want {
				t.Fatalf("step %d: Contains(%d) = %v, oracle %v", step, c, got, want)
			}
		}
		// Full iteration must enumerate exactly the oracle's members in
		// ascending order.
		prev := -1
		n := 0
		for c := s.Next(0); c >= 0; c = s.Next(c + 1) {
			if c <= prev {
				t.Fatalf("step %d: Next not ascending: %d after %d", step, c, prev)
			}
			if !oracle[c] {
				t.Fatalf("step %d: iteration yielded %d not in oracle", step, c)
			}
			prev = c
			n++
		}
		if n != len(oracle) {
			t.Fatalf("step %d: iteration yielded %d members, oracle has %d", step, n, len(oracle))
		}
	}

	for step := 0; step < 4000; step++ {
		c := rng.Intn(MaxCores)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			s.Add(c)
			oracle[c] = true
		case 4, 5, 6:
			s.Remove(c)
			delete(oracle, c)
		case 7:
			s.Only(c)
			oracle = map[int]bool{c: true}
		case 8:
			if rng.Intn(8) == 0 { // rare: full clears reset the state space
				s.Clear()
				oracle = map[int]bool{}
			}
		default:
			// Intersects / ContainsAll against a random second set.
			var o CoreSet
			oo := map[int]bool{}
			for i, n := 0, rng.Intn(8); i < n; i++ {
				x := rng.Intn(MaxCores)
				o.Add(x)
				oo[x] = true
			}
			wantInter := false
			for x := range oo {
				if oracle[x] {
					wantInter = true
					break
				}
			}
			if got := s.Intersects(&o); got != wantInter {
				t.Fatalf("step %d: Intersects = %v, oracle %v", step, got, wantInter)
			}
			wantSub := true
			for x := range oo {
				if !oracle[x] {
					wantSub = false
					break
				}
			}
			if got := s.ContainsAll(&o); got != wantSub {
				t.Fatalf("step %d: ContainsAll = %v, oracle %v", step, got, wantSub)
			}
		}
		if step%7 == 0 {
			check(step)
		}
	}
	check(-1)
}

// TestCoreSetBoundaries exercises the word boundaries explicitly: bits 63,
// 64, 127, 128 and the last core.
func TestCoreSetBoundaries(t *testing.T) {
	var s CoreSet
	for _, c := range []int{0, 63, 64, 127, 128, 255, 256, 511} {
		if s.Contains(c) {
			t.Fatalf("empty set contains %d", c)
		}
		s.Add(c)
		if !s.Contains(c) {
			t.Fatalf("Contains(%d) false after Add", c)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if got := s.Next(65); got != 127 {
		t.Fatalf("Next(65) = %d, want 127", got)
	}
	if got := s.Next(512); got != -1 {
		t.Fatalf("Next(512) = %d, want -1", got)
	}
	if got := s.Next(-5); got != 0 {
		t.Fatalf("Next(-5) = %d, want 0", got)
	}
	s.Remove(511)
	if got := s.Next(257); got != -1 {
		t.Fatalf("Next(257) = %d after removing 511, want -1", got)
	}
	s.Only(300)
	if s.Count() != 1 || !s.Contains(300) {
		t.Fatalf("Only(300) left %v", s)
	}
}
