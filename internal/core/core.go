// Package core defines the memory-tagging (MemTags) programming model from
// "Memory Tagging: Minimalist Synchronization for Scalable Concurrent Data
// Structures" (Alistarh, Brown, Singhal; SPAA 2020).
//
// The package is deliberately small: it contains the address model for the
// simulated, cache-line-granular address space, the Memory/Thread interfaces
// through which every data structure in this repository issues loads, stores
// and tag operations, and the HLE-style fallback controller that pairs a
// tagged fast path with a software slow path.
//
// Two backends implement the interfaces:
//
//   - internal/machine: a multicore cache simulator with a MESI-style
//     directory, private L1/L2 models, and a cycle/energy cost model. Tags
//     live at the L1 level exactly as the paper proposes, including spurious
//     evictions and tag-set overflow.
//   - internal/vtags: a fast software emulation based on per-line version
//     numbers, used for large-scale stress testing and as an ablation.
//
// Data structures written against core.Thread run unchanged on either.
package core

// Fundamental sizes of the simulated machine. These mirror the paper's
// Graphite configuration: 64-byte cache lines, 8-byte words.
const (
	// WordSize is the size in bytes of one simulated memory word. All
	// loads and stores operate on whole words.
	WordSize = 8
	// LineSize is the size in bytes of one cache line, the granularity of
	// coherence and of tagging.
	LineSize = 64
	// WordsPerLine is the number of words in one cache line.
	WordsPerLine = LineSize / WordSize
)

// Addr is a byte address in the simulated address space. All accesses must
// be word-aligned. Address 0 is never allocated and serves as the nil
// pointer for simulated data structures.
type Addr uint64

// NilAddr is the simulated null pointer.
const NilAddr Addr = 0

// Line identifies one cache line of the simulated address space.
type Line uint64

// Line returns the cache line containing the address.
func (a Addr) Line() Line { return Line(a / LineSize) }

// Word returns the word index of the address within the whole space.
func (a Addr) Word() uint64 { return uint64(a) / WordSize }

// Offset returns the byte offset of the address within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) % LineSize }

// Plus returns the address advanced by n words.
func (a Addr) Plus(n int) Addr { return a + Addr(n*WordSize) }

// IsNil reports whether the address is the simulated null pointer.
func (a Addr) IsNil() bool { return a == NilAddr }

// LineSpan returns the inclusive range [first, last] of lines touched by
// the byte range [a, a+size), and reports whether the range is non-empty.
// It is the allocation-free form of LinesSpanned, used on the simulator
// hot path: lines in a span are always contiguous, so backends iterate
// `for l := first; l <= last; l++` instead of materializing a slice.
func LineSpan(a Addr, size int) (first, last Line, ok bool) {
	if size <= 0 {
		return 0, 0, false
	}
	return a.Line(), (a + Addr(size) - 1).Line(), true
}

// LinesSpanned returns the set of lines touched by the byte range
// [a, a+size). It is what AddTag uses to derive the lines backing an
// object, per the paper's AddTag(&node, size) semantics. It allocates the
// returned slice; hot paths should use LineSpan instead.
func LinesSpanned(a Addr, size int) []Line {
	first, last, ok := LineSpan(a, size)
	if !ok {
		return nil
	}
	lines := make([]Line, 0, last-first+1)
	for l := first; l <= last; l++ {
		lines = append(lines, l)
	}
	return lines
}

// Memory is a shared simulated address space with memory tagging. A Memory
// is created with a fixed number of threads (simulated cores); each OS-level
// worker goroutine must use its own Thread handle.
type Memory interface {
	// NumThreads returns the number of thread handles (simulated cores).
	NumThreads() int
	// Thread returns the handle for thread id in [0, NumThreads()).
	// The handle must only ever be used from a single goroutine at a time.
	Thread(id int) Thread
	// Alloc allocates the given number of words, aligned to a cache-line
	// boundary so that distinct objects never share a line (the paper maps
	// each node to a unique cache line to avoid false sharing). It is safe
	// to call from any goroutine. It panics if the space is exhausted.
	Alloc(words int) Addr
	// MaxTags returns the per-thread tag budget (the hardware Max_Tags
	// constant). Data structures whose tagging window exceeds it cannot
	// make progress on the fast path and must refuse construction.
	MaxTags() int
}

// Thread is a per-core handle through which a single goroutine issues
// memory and tag operations. The tag set is per-thread state, exactly as
// MemTags are per-core state in hardware.
type Thread interface {
	// ID returns the thread (simulated core) id.
	ID() int

	// Load reads the word at a.
	Load(a Addr) uint64
	// Store writes v to the word at a, invalidating remote copies of the
	// line (and therefore evicting remote tags on it).
	Store(a Addr, v uint64)
	// CAS atomically compares the word at a with old and, if equal, writes
	// new. It reports whether the swap happened.
	CAS(a Addr, old, new uint64) bool

	// AddTag tags every cache line backing the byte range [a, a+size).
	// It reports false if the tag set would exceed MaxTags, in which case
	// the line is not tagged and all subsequent validations fail until
	// ClearTagSet is called (graceful overflow handling, per the paper).
	// Tagging an already-tagged line is a no-op that reports true.
	AddTag(a Addr, size int) bool
	// RemoveTag untags every cache line backing [a, a+size). Lines in the
	// range that are not tagged are ignored. An eviction that was already
	// recorded is NOT forgotten: validation still fails until ClearTagSet.
	RemoveTag(a Addr, size int)
	// Validate reports whether no currently- or previously-tagged line has
	// been invalidated or evicted since it was tagged (and the tag set
	// never overflowed). The tag set is retained across validations so
	// that hand-over-hand tagging can validate repeatedly.
	Validate() bool
	// VAS (validate-and-swap) atomically validates the tag set and, on
	// success, stores v at a. It reports whether the swap happened.
	VAS(a Addr, v uint64) bool
	// IAS (invalidate-and-swap) atomically validates the tag set,
	// invalidates every tagged line at all other cores (transient
	// marking), and stores v at a. It reports whether the swap happened.
	IAS(a Addr, v uint64) bool
	// ClearTagSet empties the tag set and resets eviction/overflow state.
	ClearTagSet()
	// TagCount returns the number of currently tagged lines.
	TagCount() int

	// Alloc allocates words from the shared space, line-aligned. It is a
	// convenience equivalent to Memory.Alloc and may use a per-thread
	// arena internally.
	Alloc(words int) Addr
}
