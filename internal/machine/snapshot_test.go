package machine

import (
	"testing"

	"repro/internal/telemetry"
)

// TestSnapshotAtQuiescentPoints exercises the documented contract under
// the race detector: snapshotting (and telemetry merging) between phases
// of a contended multi-core workload is race-free, and the per-phase
// counters only advance. CI's -race lane runs this; the memtagcheck lane
// additionally proves a *non*-quiescent snapshot panics (guard_test.go).
func TestSnapshotAtQuiescentPoints(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	set := telemetry.NewSet(m.NumThreads())
	m.SetTelemetry(set)

	runContendedWorkload(m, 200)
	s1 := m.Snapshot()
	set.Flush()
	n1 := set.Merge().TagOccupancy.Count()

	m.BeginEpoch()
	runContendedWorkload(m, 200)
	s2 := m.Snapshot()
	set.Flush()
	n2 := set.Merge().TagOccupancy.Count()

	if s2.TagAdds <= s1.TagAdds || s2.Validates <= s1.Validates {
		t.Fatalf("phase 2 counters did not advance: %+v -> %+v", s1.TagAdds, s2.TagAdds)
	}
	if n2 <= n1 {
		t.Fatalf("telemetry did not advance across phases: %d -> %d", n1, n2)
	}
	if got, want := n2, s2.TagAdds; got != want {
		t.Fatalf("occupancy count %d != TagAdds %d after two phases", got, want)
	}
}
