//go:build memtagcheck

package machine

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// blockingGate parks the first core that reaches a scheduling point:
// entered closes when the core is mid-operation (the quiescence guard has
// already counted it), release lets it finish. Deterministic by
// construction — no sleeps.
type blockingGate struct {
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func newBlockingGate() *blockingGate {
	return &blockingGate{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *blockingGate) Step(core int, point GatePoint, cycles uint64) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
}

// TestSnapshotGuardPanicsMidOperation pins the memtagcheck guard: a
// Snapshot taken while a core is inside a memory operation must panic. The
// gate parks the core after the guard's increment (issuing happens before
// throttle, which reports the gate point), so the mid-operation state is
// reached deterministically.
func TestSnapshotGuardPanicsMidOperation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	g := newBlockingGate()
	m.SetGate(g)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine)

	done := make(chan struct{})
	go func() {
		defer close(done)
		th.SetActive(true)
		th.Load(a)
		th.SetActive(false)
	}()
	<-g.entered

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Snapshot did not panic while a core was mid-operation")
			}
		}()
		m.Snapshot()
	}()

	close(g.release)
	<-done

	// Quiescent now: the same call must succeed.
	if s := m.Snapshot(); s.Loads != 1 {
		t.Fatalf("post-quiescence snapshot: Loads = %d, want 1", s.Loads)
	}
}
