package machine

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// runContendedWorkload drives every core through a mix of tag/validate/
// commit operations on a small shared line set, returning after all cores
// quiesce. Contention is the point: remote invalidations must evict tags
// so the failure paths (and their telemetry) actually execute.
func runContendedWorkload(m *Machine, opsPerCore int) {
	shared := m.Alloc(core.WordsPerLine * 4)
	// Enroll every core before any worker starts: the lax clock then parks
	// an early starter until the others run, so the cores genuinely overlap
	// (a worker that enrolled itself could finish before its peers launch).
	for _, th := range m.threads {
		th.SetActive(true)
	}
	var wg sync.WaitGroup
	for i := 0; i < m.NumThreads(); i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := m.threads[id]
			defer th.SetActive(false)
			for n := 0; n < opsPerCore; n++ {
				a := shared + core.Addr((n%4)*core.LineSize)
				b := shared + core.Addr(((n+1)%4)*core.LineSize)
				th.AddTag(a, core.LineSize)
				th.AddTag(b, core.LineSize)
				v := th.Load(a)
				th.Validate()
				switch n % 3 {
				case 0:
					th.VAS(b, v+1)
				case 1:
					th.IAS(b, v+1)
				default:
					th.Store(b, v)
				}
				th.ClearTagSet()
			}
		}(i)
	}
	wg.Wait()
}

// TestStatsAccountingInvariants pins the cross-counter identities a
// coherent simulator must satisfy after a contended run, and that the
// telemetry histograms agree with the Stats counters: occupancy is
// observed once per tag insert, and each streak histogram's sum equals the
// backend failure counter (the streak encoding's invariant).
func TestStatsAccountingInvariants(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	set := telemetry.NewSet(m.NumThreads())
	m.SetTelemetry(set)

	runContendedWorkload(m, 500)

	s := m.Snapshot()
	set.Flush()
	agg := set.Merge()

	if got, want := s.Accesses(), s.L1Hits+s.L2Hits+s.RemoteFills+s.MemFills; got != want {
		t.Errorf("Accesses() = %d, want L1+L2+Remote+Mem = %d", got, want)
	}
	if s.Accesses() < s.Loads+s.Stores+s.CASes {
		t.Errorf("accesses %d < architectural ops %d", s.Accesses(), s.Loads+s.Stores+s.CASes)
	}
	if s.InvalidationsSent != s.InvalidationsReceived {
		t.Errorf("invalidations sent %d != received %d", s.InvalidationsSent, s.InvalidationsReceived)
	}
	if s.InvalidationsSent == 0 {
		t.Error("workload generated no invalidations; contention assumptions broken")
	}

	if got, want := agg.TagOccupancy.Count(), s.TagAdds; got != want {
		t.Errorf("TagOccupancy count = %d, want TagAdds = %d", got, want)
	}
	if max := agg.TagOccupancy.Max(); max > uint64(cfg.MaxTags) {
		t.Errorf("TagOccupancy max = %d exceeds MaxTags = %d", max, cfg.MaxTags)
	}
	if got, want := agg.ValidateStreak.Sum(), s.ValidateFails; got != want {
		t.Errorf("ValidateStreak sum = %d, want ValidateFails = %d", got, want)
	}
	if got, want := agg.VASStreak.Sum(), s.VASFails; got != want {
		t.Errorf("VASStreak sum = %d, want VASFails = %d", got, want)
	}
	if got, want := agg.IASStreak.Sum(), s.IASFails; got != want {
		t.Errorf("IASStreak sum = %d, want IASFails = %d", got, want)
	}
	if s.ValidateFails == 0 && s.VASFails == 0 && s.IASFails == 0 {
		t.Error("workload produced no failures; streak invariants tested vacuously")
	}
}

// TestSetTelemetryDetach checks nil detaches the recorders: further ops
// must not touch the old set.
func TestSetTelemetryDetach(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0
	m := New(cfg)
	set := telemetry.NewSet(1)
	m.SetTelemetry(set)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine)
	th.AddTag(a, core.LineSize)
	th.ClearTagSet()
	if set.Core(0).TagOccupancy.Count() != 1 {
		t.Fatal("telemetry not recording while attached")
	}
	m.SetTelemetry(nil)
	th.AddTag(a, core.LineSize)
	th.ClearTagSet()
	if set.Core(0).TagOccupancy.Count() != 1 {
		t.Fatal("telemetry still recording after detach")
	}
}

// TestOpClock checks the per-op clock pair: cycles advance across an
// operation and the failure count sums the three failure counters.
func TestOpClock(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0
	m := New(cfg)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine)

	c0, f0 := th.OpClock()
	th.Store(a, 1)
	c1, f1 := th.OpClock()
	if c1 <= c0 {
		t.Fatalf("clock did not advance: %d -> %d", c0, c1)
	}
	if f1 != f0 {
		t.Fatalf("failure count moved without a failure: %d -> %d", f0, f1)
	}
	// Force a validation failure via overflow and confirm it is counted.
	for i := 0; i <= cfg.MaxTags; i++ {
		th.AddTag(m.Alloc(core.WordsPerLine), core.LineSize)
	}
	th.Validate()
	_, f2 := th.OpClock()
	if f2 != f1+1 {
		t.Fatalf("failure count = %d, want %d", f2, f1+1)
	}
	th.ClearTagSet()
}
