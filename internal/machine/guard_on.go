//go:build memtagcheck

package machine

// debugGuard enables the Snapshot quiescence guard: every memory/tag
// operation bumps Machine.issuing for its duration and Snapshot panics if
// any core is mid-operation. Build with -tags memtagcheck to turn races
// between stat aggregation and running cores into hard failures instead of
// silently torn snapshots.
const debugGuard = true
