package machine

import (
	"sync"
	"testing"
)

// recordingTracer captures events for assertions.
type recordingTracer struct {
	mu     sync.Mutex
	counts map[EventKind]int
}

func newRecordingTracer() *recordingTracer {
	return &recordingTracer{counts: map[EventKind]int{}}
}

func (r *recordingTracer) Trace(e Event) {
	r.mu.Lock()
	r.counts[e.Kind]++
	r.mu.Unlock()
}

func (r *recordingTracer) count(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[k]
}

func TestTracerSeesCoherenceStory(t *testing.T) {
	m := testMachine(2)
	tr := newRecordingTracer()
	m.SetTracer(tr)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)

	t0.Store(a, 1) // MemFill
	t1.AddTag(a, 8)
	t1.Load(a)
	t1.Validate()  // ValidateOK
	t0.Store(a, 2) // Invalidation + TagEvicted at core 1
	t1.Validate()  // ValidateFail
	t1.ClearTagSet()
	t1.AddTag(a, 8)
	t1.Load(a)
	if !t1.VAS(a, 3) { // CommitVAS
		t.Fatal("VAS failed")
	}
	t1.ClearTagSet()

	wants := map[EventKind]int{
		EvMemFill:      1,
		EvTagAdd:       2,
		EvValidateOK:   1,
		EvValidateFail: 1,
		EvTagEvicted:   1,
		EvCommitVAS:    1,
	}
	for k, min := range wants {
		if got := tr.count(k); got < min {
			t.Errorf("%v: %d events, want >= %d", k, got, min)
		}
	}
	if tr.count(EvInvalidation) == 0 {
		t.Error("no invalidation events recorded")
	}

	// Removing the tracer stops delivery.
	m.SetTracer(nil)
	before := tr.count(EvL1Hit)
	t0.Load(a)
	if tr.count(EvL1Hit) != before {
		t.Error("events delivered after tracer removal")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EvL1Hit; k <= EvCommitIAS; k++ {
		if k.String() == "Unknown" {
			t.Fatalf("event kind %d unnamed", k)
		}
	}
	if EventKind(99).String() != "Unknown" {
		t.Fatal("out-of-range kind not Unknown")
	}
}
