package machine

import (
	"fmt"

	"repro/internal/core"
)

// SpareThread returns an auxiliary agent that is not a simulated core: an
// uncached, uncounted participant in the coherence protocol, in the way a
// DMA engine or a management processor sits on a real interconnect. Its
// loads and stores are coherent — a store invalidates every cached copy of
// the line, evicting any tags on it, exactly like a core's write — but the
// agent caches nothing, accrues no cycles or energy, does not appear in
// NumThreads, and does not participate in lax-clock synchronization or
// schedule gating. Harness controllers (the fallback Mode-line flipper)
// use it so driving a Mode line does not consume a simulated core.
//
// Tag operations are meaningless for an agent with no L1 and panic.
func (m *Machine) SpareThread() core.Thread { return &ghost{m: m} }

type ghost struct{ m *Machine }

var _ core.Thread = (*ghost)(nil)

// ID returns -1: the ghost is not a core.
func (g *ghost) ID() int { return -1 }

// Alloc allocates line-aligned words from the shared space.
func (g *ghost) Alloc(words int) core.Addr { return g.m.space.Alloc(words) }

// Load reads the word at a. The directory lock orders the read against
// core writes; no sharer bit is taken because nothing is cached.
func (g *ghost) Load(a core.Addr) uint64 {
	d := g.m.dirAt(a.Line())
	d.mu.Lock()
	v := g.m.space.Read(a)
	d.mu.Unlock()
	return v
}

// Store writes v at a, invalidating every cached copy of the line.
func (g *ghost) Store(a core.Addr, v uint64) {
	l := a.Line()
	d := g.m.dirAt(l)
	d.mu.Lock()
	g.invalidateAllLocked(d, l)
	g.m.space.Write(a, v)
	d.mu.Unlock()
}

// CAS compares-and-swaps the word at a. Like hardware CAS it acquires the
// line exclusively (here: invalidates all cached copies) whether or not
// the comparison succeeds.
func (g *ghost) CAS(a core.Addr, old, new uint64) bool {
	l := a.Line()
	d := g.m.dirAt(l)
	d.mu.Lock()
	g.invalidateAllLocked(d, l)
	ok := g.m.space.Read(a) == old
	if ok {
		g.m.space.Write(a, new)
	}
	d.mu.Unlock()
	return ok
}

// invalidateAllLocked removes every core from the line's sharers, evicting
// their tags on it. The caller holds d.mu. Messages are attributed to core
// -1 in the trace; no core is charged (the agent is outside the cost
// model).
func (g *ghost) invalidateAllLocked(d *dirEntry, l core.Line) {
	for c := d.sharers.Next(0); c >= 0; c = d.sharers.Next(c + 1) {
		other := g.m.threads[c]
		if d.taggers.Contains(c) {
			d.taggers.Remove(c)
			other.evicted.Store(true)
			other.stats.RemoteTagEvictions.Add(1)
			g.emit(EvTagEvicted, c, l)
		}
		other.stats.InvalidationsReceived.Add(1)
		g.emit(EvInvalidation, c, l)
	}
	d.sharers.Clear()
	d.owner = -1
}

// emit delivers an event attributed to the ghost agent (core -1, cycle 0).
func (g *ghost) emit(kind EventKind, target int, line core.Line) {
	tr := g.m.tracer
	if tr == nil {
		return
	}
	tr.Trace(Event{Kind: kind, Core: -1, Target: target, Line: uint64(line)})
}

// AddTag is unsupported: the ghost has no L1 for tags to live in.
func (g *ghost) AddTag(core.Addr, int) bool { panic(ghostNoTags("AddTag")) }

// RemoveTag is unsupported.
func (g *ghost) RemoveTag(core.Addr, int) { panic(ghostNoTags("RemoveTag")) }

// Validate is unsupported.
func (g *ghost) Validate() bool { panic(ghostNoTags("Validate")) }

// VAS is unsupported.
func (g *ghost) VAS(core.Addr, uint64) bool { panic(ghostNoTags("VAS")) }

// IAS is unsupported.
func (g *ghost) IAS(core.Addr, uint64) bool { panic(ghostNoTags("IAS")) }

// ClearTagSet is a no-op: the tag set is always empty.
func (g *ghost) ClearTagSet() {}

// TagCount is always zero.
func (g *ghost) TagCount() int { return 0 }

func ghostNoTags(op string) string {
	return fmt.Sprintf("machine: %s on a SpareThread ghost agent (no cache, no tags)", op)
}
