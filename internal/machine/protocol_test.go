package machine

import "testing"

func protoMachine(p Protocol, cores int) *Machine {
	cfg := DefaultConfig(cores)
	cfg.MemBytes = 1 << 20
	cfg.Protocol = p
	return New(cfg)
}

// TestProtocolCleanSharing: a second reader of a clean line is served
// cache-to-cache under MESIF/MOESI but from memory under strict MESI.
func TestProtocolCleanSharing(t *testing.T) {
	for _, p := range []Protocol{MESIF, MESI, MOESI} {
		m := protoMachine(p, 3)
		a := m.Alloc(1)
		m.Thread(0).Load(a) // memory fill, now clean in core 0
		m.Thread(1).Load(a) // owner? no — E state...
		// Core 0's first load leaves it exclusive-clean (owner set by
		// write path only in this model; reads leave owner -1), so core
		// 1's miss sees a clean sharer.
		before := m.CoreStatsOf(2).MemFills
		beforeRemote := m.CoreStatsOf(2).RemoteFills
		m.Thread(2).Load(a)
		cs := m.CoreStatsOf(2)
		switch p {
		case MESI:
			if cs.MemFills != before+1 {
				t.Errorf("%v: clean miss not served from memory", p)
			}
		default:
			if cs.RemoteFills != beforeRemote+1 {
				t.Errorf("%v: clean miss not served cache-to-cache", p)
			}
		}
	}
}

// TestProtocolDirtyDowngrade: reading a line another core modified causes
// a writeback under MESI/MESIF but not under MOESI (Owned state).
func TestProtocolDirtyDowngrade(t *testing.T) {
	for _, p := range []Protocol{MESIF, MESI, MOESI} {
		m := protoMachine(p, 2)
		a := m.Alloc(1)
		m.Thread(0).Store(a, 1) // dirty in core 0
		wbBefore := m.CoreStatsOf(1).Writebacks
		m.Thread(1).Load(a) // downgrade the owner
		got := m.CoreStatsOf(1).Writebacks - wbBefore
		want := uint64(1)
		if p == MOESI {
			want = 0
		}
		if got != want {
			t.Errorf("%v: downgrade writebacks = %d, want %d", p, got, want)
		}
	}
}

// TestProtocolSemanticsIdentical: tagging behaves the same under all
// protocols (only pricing differs).
func TestProtocolSemanticsIdentical(t *testing.T) {
	for _, p := range []Protocol{MESIF, MESI, MOESI} {
		m := protoMachine(p, 2)
		t0, t1 := m.Thread(0), m.Thread(1)
		a := m.Alloc(1)
		t1.AddTag(a, 8)
		if !t1.Validate() {
			t.Fatalf("%v: fresh tag invalid", p)
		}
		t0.Store(a, 1)
		if t1.Validate() {
			t.Fatalf("%v: invalidation missed", p)
		}
		t1.ClearTagSet()
	}
}

func TestProtocolString(t *testing.T) {
	if MESIF.String() != "MESIF" || MESI.String() != "MESI" || MOESI.String() != "MOESI" {
		t.Fatal("protocol names wrong")
	}
}
