package machine

import (
	"testing"

	"repro/internal/core"
)

// stepRecorder is a fake Gate recording every scheduling point reported.
type stepRecorder struct {
	steps []GatePoint
}

func (r *stepRecorder) Step(core int, p GatePoint, cycles uint64) {
	r.steps = append(r.steps, p)
}

// TestRemoveTagReportsGateOp pins the fix for a gap in the scheduling
// surface: RemoveTag is a memory/tag operation like any other, so it must
// report a GateOp boundary. Without it, an AddTag…RemoveTag sequence runs
// atomically under the schedule explorer and every interleaving where a
// remote write lands between them — the window that decides whether the
// eviction latch is set — is unreachable.
func TestRemoveTagReportsGateOp(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine)
	th.AddTag(a, core.LineSize)

	rec := &stepRecorder{}
	m.SetGate(rec)
	th.SetActive(true)
	defer func() {
		th.SetActive(false)
		m.SetGate(nil)
	}()

	th.RemoveTag(a, core.LineSize)
	if len(rec.steps) != 1 || rec.steps[0] != GateOp {
		t.Fatalf("RemoveTag reported %v, want exactly one GateOp", rec.steps)
	}
}

// TestRemoveTagChargesCycles audits the cost model: RemoveTag charges
// TagOpCycles per removed line, and nothing for lines it does not hold.
func TestRemoveTagChargesCycles(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0
	m := New(cfg)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine * 3)
	if !th.AddTag(a, 3*core.LineSize) {
		t.Fatal("AddTag failed")
	}

	before := th.stats.Cycles
	th.RemoveTag(a, 2*core.LineSize) // removes 2 of the 3 tagged lines
	if got, want := th.stats.Cycles-before, 2*cfg.TagOpCycles; got != want {
		t.Fatalf("RemoveTag of 2 lines charged %d cycles, want %d", got, want)
	}
	if th.TagCount() != 1 {
		t.Fatalf("TagCount = %d, want 1", th.TagCount())
	}

	before = th.stats.Cycles
	th.RemoveTag(a, 2*core.LineSize) // no longer tagged: free
	if got := th.stats.Cycles - before; got != 0 {
		t.Fatalf("RemoveTag of untagged lines charged %d cycles, want 0", got)
	}
}
