package machine

import (
	"testing"

	"repro/internal/core"
)

// TestForceTagEvictionPerLine pins the targeted-eviction contract on the
// machine backend, mid hand-over-hand: evicting a line the core no longer
// tags is a no-op reporting false, evicting a held tag latches invalidation
// and counts as a spurious eviction, and ClearTagSet resets the latch.
func TestForceTagEvictionPerLine(t *testing.T) {
	m := New(DefaultConfig(1))
	th := m.Thread(0).(*Thread)
	a, b, c := m.Alloc(1), m.Alloc(1), m.Alloc(1)

	// Hand-over-hand window {a, b}: slide past a, as a traversal does.
	if !th.AddTag(a, core.WordSize) || !th.AddTag(b, core.WordSize) {
		t.Fatal("AddTag failed on a fresh thread")
	}
	seen := map[core.Line]bool{}
	for i := 0; i < th.TagCount(); i++ {
		seen[th.TaggedLine(i)] = true
	}
	if !seen[a.Line()] || !seen[b.Line()] {
		t.Fatalf("TaggedLine missed a held tag: %v", seen)
	}
	th.RemoveTag(a, core.WordSize)

	before := m.CoreStatsOf(0).SpuriousEvictions
	if th.ForceTagEviction(c.Line()) {
		t.Fatal("evicting a never-tagged line reported true")
	}
	if th.ForceTagEviction(a.Line()) {
		t.Fatal("evicting a line the window slid past reported true")
	}
	if !th.Validate() {
		t.Fatal("no-op evictions invalidated the window")
	}
	if m.CoreStatsOf(0).SpuriousEvictions != before {
		t.Fatal("no-op evictions were counted as spurious")
	}

	if !th.ForceTagEviction(b.Line()) {
		t.Fatal("evicting a held tag reported false")
	}
	if th.Validate() {
		t.Fatal("Validate succeeded after targeted eviction")
	}
	if m.CoreStatsOf(0).SpuriousEvictions != before+1 {
		t.Fatal("targeted eviction was not counted as spurious")
	}
	th.ClearTagSet()
	if !th.AddTag(b, core.WordSize) || !th.Validate() {
		t.Fatal("eviction latch survived ClearTagSet")
	}
}

// TestSpareThreadGhost pins the ghost agent's coherence semantics: its
// stores and CASes invalidate every cached copy — evicting tags like a
// core's write — while the agent itself is uncached, uncounted and
// forbidden from tagging.
func TestSpareThreadGhost(t *testing.T) {
	m := New(DefaultConfig(2))
	if m.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d, want 2 (the ghost must not be counted)", m.NumThreads())
	}
	th := m.Thread(0).(*Thread)
	sp := m.SpareThread()
	a := m.Alloc(1)

	th.Store(a, 7)
	if v := sp.Load(a); v != 7 {
		t.Fatalf("ghost Load = %d, want 7", v)
	}
	if !th.AddTag(a, core.WordSize) || !th.Validate() {
		t.Fatal("tag+validate must succeed before the ghost writes")
	}
	sp.Store(a, 8)
	if th.Validate() {
		t.Fatal("ghost store did not evict the core's tag")
	}
	if sharers, _, taggers := m.DebugLine(a.Line()); !sharers.Empty() || !taggers.Empty() {
		t.Fatalf("ghost store left sharers=%v taggers=%v", sharers, taggers)
	}
	if v := th.Load(a); v != 8 {
		t.Fatalf("core read %d after ghost store, want 8", v)
	}

	th.ClearTagSet()
	if !sp.CAS(a, 8, 9) || sp.CAS(a, 8, 10) {
		t.Fatal("ghost CAS semantics wrong")
	}
	if v := th.Load(a); v != 9 {
		t.Fatalf("core read %d after ghost CAS, want 9", v)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ghost AddTag did not panic")
		}
	}()
	sp.AddTag(a, core.WordSize)
}
