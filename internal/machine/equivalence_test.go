package machine_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// TestBackendEquivalence runs identical random single-threaded operation
// sequences against the machine and the vtags emulation. Functional
// results (loaded values, CAS outcomes, committed VAS/IAS effects) must
// agree exactly. Validation outcomes may diverge only in one direction:
// the machine may fail where vtags succeeds (spurious evictions exist only
// in hardware), never the reverse — and with a working set far below L1
// capacity even that should not occur.
func TestBackendEquivalence(t *testing.T) {
	const words = 32
	for seed := int64(0); seed < 20; seed++ {
		cfg := machine.DefaultConfig(1)
		cfg.MemBytes = 1 << 20
		hw := machine.New(cfg)
		sw := vtags.New(1<<20, 1)
		hwT, swT := hw.Thread(0), sw.Thread(0)

		hwA := make([]core.Addr, words)
		swA := make([]core.Addr, words)
		for i := 0; i < words; i++ {
			hwA[i] = hw.Alloc(1)
			swA[i] = sw.Alloc(1)
		}

		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 400; op++ {
			i := rng.Intn(words)
			v := uint64(rng.Intn(1000))
			switch rng.Intn(8) {
			case 0, 1:
				hwT.Store(hwA[i], v)
				swT.Store(swA[i], v)
			case 2:
				a := hwT.Load(hwA[i])
				b := swT.Load(swA[i])
				if a != b {
					t.Fatalf("seed %d op %d: Load diverged: %d vs %d", seed, op, a, b)
				}
			case 3:
				old := uint64(rng.Intn(1000))
				a := hwT.CAS(hwA[i], old, v)
				b := swT.CAS(swA[i], old, v)
				if a != b {
					t.Fatalf("seed %d op %d: CAS diverged: %v vs %v", seed, op, a, b)
				}
			case 4:
				hwT.AddTag(hwA[i], 8)
				swT.AddTag(swA[i], 8)
			case 5:
				hwT.RemoveTag(hwA[i], 8)
				swT.RemoveTag(swA[i], 8)
			case 6:
				a := hwT.Validate()
				b := swT.Validate()
				if a && !b {
					t.Fatalf("seed %d op %d: machine validated where vtags refused", seed, op)
				}
				if a != b {
					// Spurious hardware failure: resynchronize both sides.
					hwT.ClearTagSet()
					swT.ClearTagSet()
				}
			default:
				a := hwT.VAS(hwA[i], v)
				b := swT.VAS(swA[i], v)
				if a && !b {
					t.Fatalf("seed %d op %d: machine VAS committed where vtags failed", seed, op)
				}
				if a != b {
					hwT.ClearTagSet()
					swT.ClearTagSet()
					// Align values: vtags committed, machine did not.
					hwT.Store(hwA[i], v)
				}
			}
		}
		// Final memory images must agree.
		for i := 0; i < words; i++ {
			if a, b := hwT.Load(hwA[i]), swT.Load(swA[i]); a != b {
				t.Fatalf("seed %d: final word %d diverged: %d vs %d", seed, i, a, b)
			}
		}
	}
}

// TestOwnWriteSemanticsAgree pins the subtle rule both backends must share:
// a thread's own store does not evict its own tag, and VAS on a tagged
// target keeps the tag valid.
func TestOwnWriteSemanticsAgree(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	backends := []core.Memory{machine.New(cfg), vtags.New(1<<20, 1)}
	for i, mem := range backends {
		th := mem.Thread(0)
		a := mem.Alloc(1)
		th.AddTag(a, 8)
		th.Store(a, 1)
		if !th.Validate() {
			t.Fatalf("backend %d: own store evicted own tag", i)
		}
		if !th.VAS(a, 2) || !th.Validate() {
			t.Fatalf("backend %d: VAS on own tagged target broke the tag", i)
		}
		th.ClearTagSet()
	}
}
