package machine

import "repro/internal/telemetry"

// SetTelemetry attaches (or with nil detaches) per-core telemetry
// recorders: core i writes histograms into s.Core(i) from its own
// goroutine, following the same single-writer discipline as CoreStats.
// Only call while quiescent. The set must have at least NumThreads cores.
func (m *Machine) SetTelemetry(s *telemetry.Set) {
	if s != nil && s.NumCores() < len(m.threads) {
		panic("machine: telemetry set smaller than core count")
	}
	for i, t := range m.threads {
		if s == nil {
			t.tel = nil
		} else {
			t.tel = s.Core(i)
		}
	}
}

// OpClock returns this core's backend clock (simulated cycles) and its
// cumulative validation/commit failure count, the two inputs per-op
// telemetry needs: latency is the cycle delta across an operation, and
// retries the failure delta. Single-writer — call from the goroutine
// driving this core (or at quiescence).
func (t *Thread) OpClock() (clock, fails uint64) {
	return t.stats.Cycles, t.stats.ValidateFails + t.stats.VASFails + t.stats.IASFails
}
