package machine

import (
	"repro/internal/core"
)

// Load reads the word at a, performing the MESI read transaction for its
// line.
func (t *Thread) Load(a core.Addr) uint64 {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	t.stats.Loads++
	t.charge(t.m.cfg.ComputeCycles, 0)
	l := a.Line()
	d := t.m.dirAt(l)
	d.mu.Lock()
	t.touchLineLocked(l, d, false)
	v := t.m.space.Read(a)
	d.mu.Unlock()
	t.drainEvictions()
	return v
}

// Store writes v at a, invalidating all remote copies of the line (which
// evicts remote tags on it).
func (t *Thread) Store(a core.Addr, v uint64) {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	t.stats.Stores++
	t.charge(t.m.cfg.ComputeCycles, 0)
	l := a.Line()
	d := t.m.dirAt(l)
	d.mu.Lock()
	t.touchLineLocked(l, d, true)
	t.m.space.Write(a, v)
	d.mu.Unlock()
	t.drainEvictions()
}

// CAS atomically compares-and-swaps the word at a. Like hardware CAS, it
// acquires the line exclusively whether or not the comparison succeeds.
func (t *Thread) CAS(a core.Addr, old, new uint64) bool {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	cfg := &t.m.cfg
	t.stats.CASes++
	t.charge(cfg.ComputeCycles, 0)
	l := a.Line()
	d := t.m.dirAt(l)
	d.mu.Lock()
	t.touchLineLocked(l, d, true)
	t.charge(cfg.CASExtraCycles, 0)
	ok := t.m.space.Read(a) == old
	if ok {
		t.m.space.Write(a, new)
	}
	d.mu.Unlock()
	t.drainEvictions()
	return ok
}

// hasTag reports whether line l is in the tag set.
func (t *Thread) hasTag(l core.Line) bool {
	for _, tl := range t.tags {
		if tl == l {
			return true
		}
	}
	return false
}

// AddTag tags every line of [a, a+size): each line is brought into the
// local hierarchy (transition-to-tagged, then tagged once the fill is
// served) and recorded in both the per-core tag set and the line's
// directory tagger mask. Exceeding MaxTags sets the overflow condition and
// reports false; all validations then fail until ClearTagSet.
func (t *Thread) AddTag(a core.Addr, size int) bool {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	cfg := &t.m.cfg
	first, last, ok := core.LineSpan(a, size)
	if !ok {
		return true
	}
	for l := first; l <= last; l++ {
		if l > first {
			// A multi-line tag acquisition is not one coherence transaction:
			// remote cores can act between the per-line directory lock
			// acquisitions. Expose that window to the schedule explorer.
			t.gateInternal()
		}
		if t.hasTag(l) {
			continue
		}
		if len(t.tags) >= cfg.MaxTags {
			t.overflow = true
			t.stats.TagOverflows++
			return false
		}
		d := t.m.dirAt(l)
		d.mu.Lock()
		t.touchForTagLocked(l, d)
		d.taggers.Add(t.id)
		d.mu.Unlock()
		t.tags = append(t.tags, l)
		if t.rec != nil {
			t.rec.Announce(l)
		}
		t.stats.TagAdds++
		if t.tel != nil {
			t.tel.NoteTagOccupancy(len(t.tags))
		}
		t.emit(EvTagAdd, -1, l)
		t.charge(cfg.TagOpCycles, 0)
		t.drainEvictions()
	}
	return true
}

// RemoveTag untags every line of [a, a+size) that is currently tagged. A
// previously recorded eviction is not forgotten.
//
// RemoveTag throttles like every other memory/tag operation: it
// participates in lax clock synchronization and reports a GateOp point to
// the schedule explorer, so explored schedules can interleave remote
// effects at tag-release boundaries (the window between a traversal's last
// access and its tag release is where a remote write decides whether the
// eviction latch is set).
func (t *Thread) RemoveTag(a core.Addr, size int) {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	cfg := &t.m.cfg
	first, last, ok := core.LineSpan(a, size)
	if !ok {
		return
	}
	for l := first; l <= last; l++ {
		idx := -1
		for i, tl := range t.tags {
			if tl == l {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		t.recAccess(l, false)
		d := t.m.dirAt(l)
		d.mu.Lock()
		d.taggers.Remove(t.id)
		d.mu.Unlock()
		t.tags = append(t.tags[:idx], t.tags[idx+1:]...)
		if t.rec != nil {
			t.rec.Retract(l)
		}
		t.stats.TagRemoves++
		t.charge(cfg.TagOpCycles, 0)
		t.emit(EvTagRemove, -1, l)
	}
}

// Validate reports whether no tagged line has been invalidated or evicted
// since tagging, and the tag set never overflowed. It is purely local: no
// coherence traffic is generated (the key property of MemTags). The tag set
// is retained so hand-over-hand traversals can validate repeatedly.
func (t *Thread) Validate() bool {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	t.recTagSetReads()
	t.stats.Validates++
	t.charge(t.m.cfg.ValidateCycles, 0)
	if t.overflow || t.evicted.Load() {
		t.stats.ValidateFails++
		if t.tel != nil {
			t.tel.NoteValidate(false)
		}
		t.emit(EvValidateFail, -1, 0)
		return false
	}
	t.noteValidatedTags()
	if t.tel != nil {
		t.tel.NoteValidate(true)
	}
	t.emit(EvValidateOK, -1, 0)
	return true
}

// TagCount returns the number of currently tagged lines.
func (t *Thread) TagCount() int { return len(t.tags) }

// ClearTagSet empties the tag set and resets eviction/overflow state.
func (t *Thread) ClearTagSet() {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	for _, l := range t.tags {
		d := t.m.dirAt(l)
		d.mu.Lock()
		d.taggers.Remove(t.id)
		d.mu.Unlock()
	}
	t.tags = t.tags[:0]
	t.overflow = false
	t.evicted.Store(false)
	if t.rec != nil {
		t.rec.RetractAll()
	}
}

// buildLockSet fills t.lockSet with the sorted, deduplicated union of the
// tag set and the target line. The lock set is bounded by MaxTags+1, so a
// closure-free insertion sort over the reused buffer beats sort.Slice
// (whose interface conversion and comparator closure allocate on every
// commit attempt).
func (t *Thread) buildLockSet(target core.Line) {
	t.lockSet = t.lockSet[:0]
	t.lockSet = append(t.lockSet, t.tags...)
	if !t.hasTag(target) {
		t.lockSet = append(t.lockSet, target)
	}
	insertionSortLines(t.lockSet)
}

// insertionSortLines sorts a small line slice in place without allocating.
func insertionSortLines(s []core.Line) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// VAS validates the tag set and, on success, stores v at a — atomically.
// Atomicity comes from holding the directory locks of every tagged line
// plus the target while checking and committing, the software analogue of
// the paper's "pause coherence requests during validation".
func (t *Thread) VAS(a core.Addr, v uint64) bool {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	t.stats.VASAttempts++
	return t.commit(a, v, false)
}

// IAS validates the tag set, invalidates every tagged line at all other
// cores (transient marking: their future validations on those lines fail),
// and stores v at a — atomically.
func (t *Thread) IAS(a core.Addr, v uint64) bool {
	if debugGuard {
		t.m.issuing.Add(1)
		defer t.m.issuing.Add(-1)
	}
	t.throttle()
	t.stats.IASAttempts++
	return t.commit(a, v, true)
}

func (t *Thread) commit(a core.Addr, v uint64, invalidateTags bool) bool {
	cfg := &t.m.cfg
	target := a.Line()
	t.buildLockSet(target)
	// The window between computing the lock set and acquiring the directory
	// locks is where another core's commit or invalidation can slip in;
	// expose it to the schedule explorer (no locks held yet).
	t.gateInternal()
	// The commit segment's outcome is decided by remote writes to any
	// tagged line (they set the eviction latch the validation reads).
	t.recTagSetReads()
	for _, l := range t.lockSet {
		t.m.dirAt(l).mu.Lock()
	}
	t.charge(cfg.ValidateCycles, 0)
	if t.overflow || t.evicted.Load() {
		for i := len(t.lockSet) - 1; i >= 0; i-- {
			t.m.dirAt(t.lockSet[i]).mu.Unlock()
		}
		if invalidateTags {
			t.stats.IASFails++
			if t.tel != nil {
				t.tel.NoteIAS(false)
			}
			t.emit(EvIASFail, -1, target)
		} else {
			t.stats.VASFails++
			if t.tel != nil {
				t.tel.NoteVAS(false)
			}
			t.emit(EvVASFail, -1, target)
		}
		return false
	}
	t.noteValidatedTags()
	if invalidateTags {
		// Elevate every tagged line to exclusive at this core, evicting all
		// remote copies (and thus remote tags): the transient marking.
		for _, l := range t.tags {
			if l == target {
				continue // handled below with the write
			}
			t.recAccess(l, true)
			d := t.m.dirAt(l)
			t.invalidateOthersLocked(d, l)
		}
	}
	// Acquire the target exclusively and perform the single-word update.
	d := t.m.dirAt(target)
	t.touchLineLocked(target, d, true)
	t.m.space.Write(a, v)
	for i := len(t.lockSet) - 1; i >= 0; i-- {
		t.m.dirAt(t.lockSet[i]).mu.Unlock()
	}
	t.drainEvictions()
	if invalidateTags {
		if t.tel != nil {
			t.tel.NoteIAS(true)
		}
		t.emit(EvCommitIAS, -1, target)
	} else {
		if t.tel != nil {
			t.tel.NoteVAS(true)
		}
		t.emit(EvCommitVAS, -1, target)
	}
	return true
}
