package machine

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestScaleSmoke128 drives a 128-core, 2-socket machine — past the paper's
// 64-core ceiling — through a mixed workload and checks the directory
// invariants and snapshot sanity. This is the tier-1 guard that the
// CoreSet directory, the sharded clock, and the per-core arenas behave at
// multi-word-mask scale.
func TestScaleSmoke128(t *testing.T) {
	const cores, opsPer, words = 128, 120, 96
	cfg := NUMAConfig(cores, 2)
	cfg.MemBytes = 16 << 20
	m := New(cfg)
	m.BeginEpoch()

	addrs := make([]core.Addr, words)
	lines := make([]uint64, words)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
		lines[i] = uint64(addrs[i].Line())
	}
	var wg sync.WaitGroup
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.threads[w]
			th.SetActive(true)
			defer th.SetActive(false)
			for i := 0; i < opsPer; i++ {
				a := addrs[(w*13+i)%words]
				switch i % 5 {
				case 0:
					th.Load(a)
				case 1:
					th.Store(a, uint64(w))
				case 2:
					th.CAS(a, uint64(w), uint64(i))
				case 3:
					th.AddTag(a, 8)
					th.Validate()
				default:
					th.VAS(a, uint64(i))
					th.ClearTagSet()
				}
			}
			th.ClearTagSet()
		}(w)
	}
	wg.Wait()

	checkDirectoryInvariants(t, m, lines)
	s := m.Snapshot()
	if s.Loads == 0 || s.Stores == 0 || s.MaxCycles == 0 {
		t.Fatalf("implausible snapshot at 128 cores: %+v", s)
	}
	if s.SocketHops == 0 {
		t.Fatal("two sockets sharing hot lines produced no cross-socket hops")
	}
}

// TestScaleSmoke256 is the CI scale lane's short 256-core point: four
// sockets, a brief shared workload, invariants intact.
func TestScaleSmoke256(t *testing.T) {
	const cores, opsPer, words = 256, 40, 64
	cfg := NUMAConfig(cores, 4)
	cfg.MemBytes = 32 << 20
	m := New(cfg)
	m.BeginEpoch()

	addrs := make([]core.Addr, words)
	lines := make([]uint64, words)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
		lines[i] = uint64(addrs[i].Line())
	}
	var wg sync.WaitGroup
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.threads[w]
			th.SetActive(true)
			defer th.SetActive(false)
			for i := 0; i < opsPer; i++ {
				a := addrs[(w*7+i)%words]
				if i%3 == 0 {
					th.Store(a, uint64(w))
				} else {
					th.Load(a)
				}
			}
		}(w)
	}
	wg.Wait()
	checkDirectoryInvariants(t, m, lines)
	if got := m.Snapshot().Loads; got == 0 {
		t.Fatal("no loads recorded at 256 cores")
	}
}

// TestThrottleBoundsSkewAcrossShards mirrors TestThrottleBoundsSkew with
// the two active cores in *different* clock shards (ids 0 and 95 on a
// 96-core machine), exercising the per-shard minima fold: the skew bound
// must hold across shard boundaries, not just within one.
func TestThrottleBoundsSkewAcrossShards(t *testing.T) {
	cfg := DefaultConfig(96)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 500
	m := New(cfg)
	m.BeginEpoch()

	t0, t1 := m.threads[0], m.threads[95]
	if t0.cshard == t1.cshard {
		t.Fatal("test premise broken: cores 0 and 95 share a clock shard")
	}
	a, b := m.Alloc(1), m.Alloc(1)
	var maxSkew uint64
	var mu sync.Mutex
	record := func(self, other *Thread) {
		mu.Lock()
		mine, theirs := self.pubCycles.Load(), other.pubCycles.Load()
		if mine > theirs && mine-theirs > maxSkew {
			maxSkew = mine - theirs
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	ready.Add(2)
	run := func(self, other *Thread, addr core.Addr, ops int) {
		defer wg.Done()
		self.SetActive(true)
		defer self.SetActive(false)
		ready.Done()
		<-start
		for i := 0; i < ops; i++ {
			self.Load(addr)
			record(self, other)
		}
	}
	wg.Add(2)
	go run(t0, t1, a, 3000)
	go run(t1, t0, b, 3000)
	ready.Wait()
	close(start)
	wg.Wait()

	limit := cfg.SyncWindowCycles + 300
	if maxSkew > limit {
		t.Fatalf("max observed cross-shard skew %d exceeds window-based limit %d", maxSkew, limit)
	}
}

// TestClockSyncEnrolWithdrawRace multiplexes 256 simulated cores onto 4
// host CPUs and has every core repeatedly enrol, run a burst of throttled
// ops, and withdraw — racing SetActive against throttle/wakeParked on
// every other core. Run under -race in CI; without the detector it is a
// liveness check (a lost wakeup or a stale shard minimum that parks the
// true laggard would hang it past the deadline).
func TestClockSyncEnrolWithdrawRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const cores, rounds, burst = 256, 12, 25
	cfg := DefaultConfig(cores)
	cfg.MemBytes = 16 << 20
	cfg.SyncWindowCycles = 400 // tight: maximal parking pressure
	m := New(cfg)
	m.BeginEpoch()

	words := make([]core.Addr, 48)
	for i := range words {
		words[i] = m.Alloc(1)
	}
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < cores; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := m.threads[w]
				rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
				for r := 0; r < rounds; r++ {
					th.SetActive(true)
					for i := 0; i < burst; i++ {
						a := words[rng.Intn(len(words))]
						if i%4 == 0 {
							th.Store(a, uint64(i))
						} else {
							th.Load(a)
						}
					}
					th.SetActive(false)
				}
			}(w)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-timeAfter(120):
		t.Fatal("enrol/withdraw race stress did not complete (lost wakeup or stale-minimum deadlock)")
	}
}

// TestSocketPricing checks the two-level cost model directly: a
// cache-to-cache fill from another socket pays the hop, one from the same
// socket does not, and a cross-socket invalidation round charges hops to
// the writer.
func TestSocketPricing(t *testing.T) {
	cfg := NUMAConfig(4, 2) // sockets: {0,1} and {2,3}
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	t0, t1, t2 := m.threads[0], m.threads[1], m.threads[2]

	// Pick a line homed on socket 0 so DRAM hops stay out of the picture
	// for the cores under test.
	a := m.Alloc(1)
	for uint64(a.Line())%2 != 0 {
		a = m.Alloc(1)
	}

	t0.Store(a, 1) // t0 becomes owner (DRAM fill, home socket 0: no hop)
	if t0.stats.SocketHops != 0 {
		t.Fatalf("t0 paid %d hops filling a locally homed line", t0.stats.SocketHops)
	}
	t1.Load(a) // forwarded from t0, same socket: no hop
	if t1.stats.SocketHops != 0 {
		t.Fatalf("t1 paid %d hops on a same-socket forward", t1.stats.SocketHops)
	}
	t2.Load(a) // clean MESIF forward from socket 0 to socket 1: one hop
	if t2.stats.SocketHops == 0 {
		t.Fatal("t2 paid no hop on a cross-socket forward")
	}
	hopsBefore := t2.stats.SocketHops
	t2.Store(a, 2) // invalidates t0 and t1 across the socket boundary
	crossInvHops := t2.stats.SocketHops - hopsBefore
	if crossInvHops < 2 {
		t.Fatalf("cross-socket invalidation of two sharers charged %d hops, want >= 2", crossInvHops)
	}

	// The same sharing pattern on a flat machine must charge no hops.
	flat := New(DefaultConfig(4))
	f0, f2 := flat.threads[0], flat.threads[2]
	b := flat.Alloc(1)
	f0.Store(b, 1)
	f2.Load(b)
	f2.Store(b, 2)
	if f0.stats.SocketHops != 0 || f2.stats.SocketHops != 0 {
		t.Fatal("flat machine charged socket hops")
	}
}
