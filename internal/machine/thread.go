package machine

import (
	"sync"
	"sync/atomic"

	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
)

// Thread is one simulated core. All methods must be called from a single
// goroutine; cross-core effects (invalidations, tag evictions) are applied
// by other cores under the relevant directory locks.
type Thread struct {
	m   *Machine
	id  int
	bit uint64

	l1 *cachemodel.Cache
	l2 *cachemodel.Cache

	// tags holds the currently tagged lines in insertion order. Bounded by
	// Config.MaxTags, so linear scans are cheap.
	tags []core.Line
	// evicted is set when any tagged line of this core is invalidated by a
	// remote write or displaced from L1 (the paper's "evicted set" is
	// non-empty). Remote cores set it under the line's directory lock.
	evicted atomic.Bool
	// overflow is set when AddTag exceeded MaxTags; only this goroutine
	// touches it.
	overflow bool

	stats CoreStats
	// tel, when non-nil, receives backend-side telemetry (tag occupancy,
	// failure streaks) from this goroutine only. See Machine.SetTelemetry.
	tel *telemetry.Core
	// rec, when non-nil, is this core's reclamation-domain handle; tag
	// operations mirror the tag set into it. See Machine.SetReclaim.
	rec *reclaim.Handle

	// pendingEvicts holds L2 victims whose directory bits must be cleared
	// after the current access releases its directory lock (lock-order
	// discipline: at most one directory entry is locked at a time outside
	// VAS/IAS commits).
	pendingEvicts []core.Line
	// segAcc is the shared-access log of the current inter-gate segment,
	// recorded only while a schedule-explorer gate is installed (see
	// recAccess / TakeSegmentAccesses in sync.go).
	segAcc []Access
	// lockSet is scratch for the sorted line set locked by VAS/IAS.
	lockSet []core.Line

	// Lax clock synchronization state (see sync.go).
	active    atomic.Bool
	pubCycles atomic.Uint64
	lastBcast uint64
	// parked is set (under parkMu) while this core sleeps on parkCond
	// waiting for the slowest active core to catch up. Wakers read it
	// lock-free to skip cores that are running.
	parked   atomic.Bool
	parkMu   sync.Mutex
	parkCond *sync.Cond
}

var _ core.Thread = (*Thread)(nil)

func newThread(m *Machine, id int) *Thread {
	t := &Thread{
		m:   m,
		id:  id,
		bit: 1 << uint(id),
		l1:  cachemodel.New(m.cfg.L1Bytes, m.cfg.L1Ways),
		l2:  cachemodel.New(m.cfg.L2Bytes, m.cfg.L2Ways),
		// The tag set is bounded by MaxTags and the VAS/IAS lock set by
		// MaxTags+1; sizing the reused buffers up front keeps every
		// memory/tag operation allocation-free.
		tags:          make([]core.Line, 0, m.cfg.MaxTags),
		lockSet:       make([]core.Line, 0, m.cfg.MaxTags+1),
		pendingEvicts: make([]core.Line, 0, 4),
	}
	t.parkCond = sync.NewCond(&t.parkMu)
	return t
}

// ID returns the simulated core id.
func (t *Thread) ID() int { return t.id }

// Alloc allocates line-aligned words from the shared space. Under a
// schedule-explorer gate the allocation is recorded against the shared
// allocator pseudo-resource: bump allocation is order-sensitive, so two
// allocating segments must never be treated as independent.
func (t *Thread) Alloc(words int) core.Addr {
	t.recAccess(AllocLine, true)
	return t.m.space.Alloc(words)
}

func (t *Thread) charge(cycles uint64, energy float64) {
	t.stats.Cycles += cycles
	t.stats.Energy += energy
}

// sendInvalidationLocked removes core c from the line's sharers, evicting
// any tag c holds on it. The caller holds d.mu and charges message costs.
func (t *Thread) sendInvalidationLocked(d *dirEntry, c int, l core.Line) {
	cbit := uint64(1) << uint(c)
	d.sharers &^= cbit
	if int(d.owner) == c {
		d.owner = -1
	}
	other := t.m.threads[c]
	if d.taggers&cbit != 0 {
		d.taggers &^= cbit
		other.evicted.Store(true)
		other.stats.RemoteTagEvictions.Add(1)
		t.emit(EvTagEvicted, c, l)
	}
	other.stats.InvalidationsReceived.Add(1)
	t.stats.InvalidationsSent++
	t.charge(t.m.cfg.InvMsgCycles, t.m.cfg.EnergyInvMsg)
	t.emit(EvInvalidation, c, l)
}

// chargeInvRound prices one invalidation round's base latency; the
// messages themselves fan out in parallel, so sendInvalidationLocked only
// adds a small per-sharer increment.
func (t *Thread) chargeInvRound(hadSharers bool) {
	if hadSharers {
		t.charge(t.m.cfg.InvBaseCycles, 0)
	}
}

// invalidateOthersLocked makes this core the exclusive owner of the line,
// invalidating every other sharer. The caller holds d.mu.
func (t *Thread) invalidateOthersLocked(d *dirEntry, l core.Line) {
	others := d.sharers &^ t.bit
	t.chargeInvRound(others != 0)
	for others != 0 {
		c := trailingCore(others)
		others &^= 1 << uint(c)
		t.sendInvalidationLocked(d, c, l)
	}
	d.sharers = t.bit
	d.owner = int8(t.id)
}

func trailingCore(mask uint64) int {
	// mask is non-zero.
	n := 0
	for mask&1 == 0 {
		mask >>= 1
		n++
	}
	return n
}

// fillLocal inserts line l into the private hierarchy models, recording L2
// victims for deferred directory cleanup and evicting tags displaced from
// L1 (spurious eviction). Safe to call with or without directory locks
// held: it touches only this core's state.
func (t *Thread) fillLocal(l core.Line) {
	if v, evicted := t.l2.Insert(l); evicted {
		// Inclusive hierarchy: an L2 victim must leave L1 too.
		if t.l1.Remove(v) {
			t.tagEvictSelf(v)
		}
		if v != l {
			t.pendingEvicts = append(t.pendingEvicts, v)
		}
	}
	if v, evicted := t.l1.Insert(l); evicted {
		// Victim stays resident in L2, but tags live at L1: displacing a
		// tagged line from L1 evicts the tag (spurious eviction).
		t.tagEvictSelf(v)
		_ = v
	}
}

// tagEvictSelf marks a capacity eviction of one of this core's own tagged
// lines, if l is tagged.
func (t *Thread) tagEvictSelf(l core.Line) {
	for _, tl := range t.tags {
		if tl == l {
			t.evicted.Store(true)
			t.stats.SpuriousEvictions++
			t.emit(EvTagEvicted, -1, l)
			return
		}
	}
}

// ForceTagEviction simulates a spurious capacity eviction of the named
// line, for adversarial harnesses (internal/schedfuzz, internal/
// schedexplore) that want eviction pressure aimed at a specific tag — say,
// one node of a hand-over-hand window — beyond what the cache geometry
// produces naturally. It follows the same path as a real displacement: the
// evicted latch is set and validation fails until ClearTagSet. A line that
// is not currently tagged is left alone (a window that already slid past
// it is unaffected) and false is reported.
func (t *Thread) ForceTagEviction(l core.Line) bool {
	if !t.hasTag(l) {
		return false
	}
	t.evicted.Store(true)
	t.stats.SpuriousEvictions++
	t.emit(EvTagEvicted, -1, l)
	return true
}

// TaggedLine returns the i'th tagged line in insertion order, so harnesses
// can aim ForceTagEviction at a held tag. i must be < TagCount().
func (t *Thread) TaggedLine(i int) core.Line { return t.tags[i] }

// drainEvictions clears directory presence for lines displaced from L2.
// Called with no directory locks held.
func (t *Thread) drainEvictions() {
	for len(t.pendingEvicts) > 0 {
		l := t.pendingEvicts[len(t.pendingEvicts)-1]
		t.pendingEvicts = t.pendingEvicts[:len(t.pendingEvicts)-1]
		d := t.m.dirAt(l)
		d.mu.Lock()
		if d.sharers&t.bit != 0 {
			d.sharers &^= t.bit
			if int(d.owner) == t.id {
				d.owner = -1
				t.stats.Writebacks++
			}
		}
		if d.taggers&t.bit != 0 {
			// The local tag check already failed validation; just keep the
			// directory consistent.
			d.taggers &^= t.bit
		}
		d.mu.Unlock()
	}
}

// touchLineLocked performs the coherence transaction for one access to line
// l and charges its cost. The caller holds d.mu.
func (t *Thread) touchLineLocked(l core.Line, d *dirEntry, write bool) {
	t.recAccess(l, write)
	cfg := &t.m.cfg
	present := d.sharers&t.bit != 0

	if write {
		if int(d.owner) == t.id {
			t.chargeLocalHit(l)
			return
		}
		// Need exclusivity: invalidate every other sharer.
		othersHadIt := d.sharers&^t.bit != 0
		t.invalidateOthersLocked(d, l)
		if present {
			// Upgrade from Shared: data already local.
			t.chargeLocalHit(l)
		} else if othersHadIt {
			// Write miss served by a remote cache (plus the invalidations
			// already charged).
			t.stats.RemoteFills++
			t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
			t.emit(EvRemoteFill, -1, l)
			t.fillLocal(l)
		} else {
			t.stats.MemFills++
			t.charge(cfg.MemCycles, cfg.EnergyMem)
			t.emit(EvMemFill, -1, l)
			t.fillLocal(l)
		}
		return
	}

	// Read.
	if present {
		t.chargeLocalHit(l)
		return
	}
	if d.owner >= 0 {
		// The modified/exclusive owner forwards the line and downgrades.
		// Under MESI/MESIF the downgrade writes the dirty data back; under
		// MOESI the owner moves to Owned and the writeback is deferred to
		// eviction (modeled as: no downgrade writeback).
		d.owner = -1
		t.stats.RemoteFills++
		t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
		if cfg.Protocol != MOESI {
			t.stats.Writebacks++
			t.charge(cfg.WritebackCycles, cfg.EnergyWriteback)
		}
	} else if d.sharers != 0 && cfg.Protocol != MESI {
		// Clean cache-to-cache transfer from the Forward-state sharer
		// (MESIF) or the Owned sharer (MOESI).
		t.stats.RemoteFills++
		t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
	} else {
		// Strict MESI serves clean lines from memory.
		t.stats.MemFills++
		t.charge(cfg.MemCycles, cfg.EnergyMem)
	}
	d.sharers |= t.bit
	t.fillLocal(l)
}

// touchForTagLocked performs the coherence transaction for AddTag: the tag
// is load-buffer metadata that rides on the line, so tagging a line that is
// already in L1 is free (the paper implements tags "by adding extra state
// to each core's load buffer"). A line that is not resident is fetched like
// a normal read (the transition-to-tagged state serves the miss), and that
// fill is charged.
func (t *Thread) touchForTagLocked(l core.Line, d *dirEntry) {
	t.recAccess(l, false)
	cfg := &t.m.cfg
	if d.sharers&t.bit != 0 {
		if t.l1.Lookup(l) {
			return // resident in L1: tagging is free
		}
		// Present only in L2: the tagging access promotes it.
		t.l2.Lookup(l)
		t.stats.L2Hits++
		t.charge(cfg.L2HitCycles, cfg.EnergyL2)
		t.fillLocal(l)
		return
	}
	if d.owner >= 0 {
		d.owner = -1
		t.stats.RemoteFills++
		t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
		if cfg.Protocol != MOESI {
			t.stats.Writebacks++
			t.charge(cfg.WritebackCycles, cfg.EnergyWriteback)
		}
	} else if d.sharers != 0 && cfg.Protocol != MESI {
		t.stats.RemoteFills++
		t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
	} else {
		t.stats.MemFills++
		t.charge(cfg.MemCycles, cfg.EnergyMem)
	}
	d.sharers |= t.bit
	t.fillLocal(l)
}

// chargeLocalHit prices an access whose data is already somewhere in the
// local hierarchy, determining the level from the cache models.
func (t *Thread) chargeLocalHit(l core.Line) {
	cfg := &t.m.cfg
	if t.l1.Lookup(l) {
		t.stats.L1Hits++
		t.charge(cfg.L1HitCycles, cfg.EnergyL1)
		t.emit(EvL1Hit, -1, l)
		return
	}
	// By inclusion the line is in L2 (or the model lost it to staleness;
	// either way price it as an L2 hit and promote to L1).
	t.l2.Lookup(l)
	t.stats.L2Hits++
	t.charge(cfg.L2HitCycles, cfg.EnergyL2)
	t.emit(EvL2Hit, -1, l)
	t.fillLocal(l)
}
