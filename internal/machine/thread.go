package machine

import (
	"sync"
	"sync/atomic"

	"repro/internal/cachemodel"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
)

// Thread is one simulated core. All methods must be called from a single
// goroutine; cross-core effects (invalidations, tag evictions) are applied
// by other cores under the relevant directory locks.
type Thread struct {
	m  *Machine
	id int
	// socket is the core's socket under the two-level topology (0 when
	// flat); cshard is its lax-clock shard index (see sync.go).
	socket int
	cshard int
	// arena is the core's private allocation extent over the shared space;
	// the Alloc fast path touches no shared state.
	arena *mem.Arena

	l1 *cachemodel.Cache
	l2 *cachemodel.Cache

	// tags holds the currently tagged lines in insertion order. Bounded by
	// Config.MaxTags, so linear scans are cheap.
	tags []core.Line
	// evicted is set when any tagged line of this core is invalidated by a
	// remote write or displaced from L1 (the paper's "evicted set" is
	// non-empty). Remote cores set it under the line's directory lock.
	evicted atomic.Bool
	// overflow is set when AddTag exceeded MaxTags; only this goroutine
	// touches it.
	overflow bool

	stats CoreStats
	// tel, when non-nil, receives backend-side telemetry (tag occupancy,
	// failure streaks) from this goroutine only. See Machine.SetTelemetry.
	tel *telemetry.Core
	// rec, when non-nil, is this core's reclamation-domain handle; tag
	// operations mirror the tag set into it. See Machine.SetReclaim.
	rec *reclaim.Handle

	// pendingEvicts holds L2 victims whose directory bits must be cleared
	// after the current access releases its directory lock (lock-order
	// discipline: at most one directory entry is locked at a time outside
	// VAS/IAS commits).
	pendingEvicts []core.Line
	// segAcc is the shared-access log of the current inter-gate segment,
	// recorded only while a schedule-explorer gate is installed (see
	// recAccess / TakeSegmentAccesses in sync.go).
	segAcc []Access
	// lockSet is scratch for the sorted line set locked by VAS/IAS.
	lockSet []core.Line

	// Lax clock synchronization state (see sync.go).
	active    atomic.Bool
	pubCycles atomic.Uint64
	lastBcast uint64
	// parked is set (under parkMu) while this core sleeps on parkCond
	// waiting for the slowest active core to catch up. Wakers read it
	// lock-free to skip cores that are running.
	parked   atomic.Bool
	parkMu   sync.Mutex
	parkCond *sync.Cond
}

var _ core.Thread = (*Thread)(nil)

func newThread(m *Machine, id int) *Thread {
	t := &Thread{
		m:      m,
		id:     id,
		socket: m.socketOf(id),
		cshard: id / clockShardCores,
		arena:  mem.NewArena(m.space),
		l1:     cachemodel.New(m.cfg.L1Bytes, m.cfg.L1Ways),
		l2:     cachemodel.New(m.cfg.L2Bytes, m.cfg.L2Ways),
		// The tag set is bounded by MaxTags and the VAS/IAS lock set by
		// MaxTags+1; sizing the reused buffers up front keeps every
		// memory/tag operation allocation-free.
		tags:          make([]core.Line, 0, m.cfg.MaxTags),
		lockSet:       make([]core.Line, 0, m.cfg.MaxTags+1),
		pendingEvicts: make([]core.Line, 0, 4),
	}
	t.parkCond = sync.NewCond(&t.parkMu)
	return t
}

// ID returns the simulated core id.
func (t *Thread) ID() int { return t.id }

// Alloc allocates line-aligned words from this core's private arena over
// the shared space (extent refills are the only shared-cursor touches).
// Under a schedule-explorer gate the allocation is recorded against the
// shared allocator pseudo-resource: bump allocation is order-sensitive, so
// two allocating segments must never be treated as independent.
func (t *Thread) Alloc(words int) core.Addr {
	t.recAccess(AllocLine, true)
	return t.arena.Alloc(words)
}

func (t *Thread) charge(cycles uint64, energy float64) {
	t.stats.Cycles += cycles
	t.stats.Energy += energy
}

// sendInvalidationLocked removes core c from the line's sharers, evicting
// any tag c holds on it. The caller holds d.mu and charges message costs.
// Under a two-level topology a message to a core on another socket pays
// the socket hop on top of the per-sharer fan-out cost.
func (t *Thread) sendInvalidationLocked(d *dirEntry, c int, l core.Line) {
	d.sharers.Remove(c)
	if int(d.owner) == c {
		d.owner = -1
	}
	other := t.m.threads[c]
	if d.taggers.Contains(c) {
		d.taggers.Remove(c)
		other.evicted.Store(true)
		other.stats.RemoteTagEvictions.Add(1)
		t.emit(EvTagEvicted, c, l)
	}
	other.stats.InvalidationsReceived.Add(1)
	t.stats.InvalidationsSent++
	t.charge(t.m.cfg.InvMsgCycles, t.m.cfg.EnergyInvMsg)
	if t.m.sockets > 1 && other.socket != t.socket {
		t.chargeSocketHop()
	}
	t.emit(EvInvalidation, c, l)
}

// chargeSocketHop prices one cross-socket message or transfer.
func (t *Thread) chargeSocketHop() {
	t.stats.SocketHops++
	t.charge(t.m.cfg.SocketHopCycles, t.m.cfg.EnergySocketHop)
}

// chargeRemoteFill prices a miss served cache-to-cache. sameSocket reports
// whether a cache on this core's socket could serve it; a fill from
// another socket pays the hop.
func (t *Thread) chargeRemoteFill(sameSocket bool) {
	cfg := &t.m.cfg
	t.stats.RemoteFills++
	t.charge(cfg.RemoteCycles, cfg.EnergyRemote)
	if t.m.sockets > 1 && !sameSocket {
		t.chargeSocketHop()
	}
}

// chargeMemFill prices a miss served by DRAM; a line homed on a remote
// socket's memory controller pays the memory hop.
func (t *Thread) chargeMemFill(l core.Line) {
	cfg := &t.m.cfg
	t.stats.MemFills++
	t.charge(cfg.MemCycles, cfg.EnergyMem)
	if t.m.sockets > 1 && t.m.homeSocket(l) != t.socket {
		t.stats.SocketHops++
		t.charge(cfg.MemHopCycles, cfg.EnergySocketHop)
	}
}

// sharerOnMySocket reports whether any core of set other than this one is
// on this core's socket (i.e. could serve a fill without a hop). The set
// is passed by value: the local copy is mutated, never the directory's.
func (t *Thread) sharerOnMySocket(set core.CoreSet) bool {
	if t.m.sockets == 1 {
		return true
	}
	set.Remove(t.id)
	return set.Intersects(&t.m.sockMask[t.socket])
}

// chargeInvRound prices one invalidation round's base latency; the
// messages themselves fan out in parallel, so sendInvalidationLocked only
// adds a small per-sharer increment.
func (t *Thread) chargeInvRound(hadSharers bool) {
	if hadSharers {
		t.charge(t.m.cfg.InvBaseCycles, 0)
	}
}

// invalidateOthersLocked makes this core the exclusive owner of the line,
// invalidating every other sharer. The caller holds d.mu.
func (t *Thread) invalidateOthersLocked(d *dirEntry, l core.Line) {
	others := d.sharers
	others.Remove(t.id)
	t.chargeInvRound(!others.Empty())
	for c := others.Next(0); c >= 0; c = others.Next(c + 1) {
		t.sendInvalidationLocked(d, c, l)
	}
	d.sharers.Only(t.id)
	d.owner = int16(t.id)
}

// fillLocal inserts line l into the private hierarchy models, recording L2
// victims for deferred directory cleanup and evicting tags displaced from
// L1 (spurious eviction). Safe to call with or without directory locks
// held: it touches only this core's state.
func (t *Thread) fillLocal(l core.Line) {
	if v, evicted := t.l2.Insert(l); evicted {
		// Inclusive hierarchy: an L2 victim must leave L1 too.
		if t.l1.Remove(v) {
			t.tagEvictSelf(v)
		}
		if v != l {
			t.pendingEvicts = append(t.pendingEvicts, v)
		}
	}
	if v, evicted := t.l1.Insert(l); evicted {
		// Victim stays resident in L2, but tags live at L1: displacing a
		// tagged line from L1 evicts the tag (spurious eviction).
		t.tagEvictSelf(v)
		_ = v
	}
}

// tagEvictSelf marks a capacity eviction of one of this core's own tagged
// lines, if l is tagged.
func (t *Thread) tagEvictSelf(l core.Line) {
	for _, tl := range t.tags {
		if tl == l {
			t.evicted.Store(true)
			t.stats.SpuriousEvictions++
			t.emit(EvTagEvicted, -1, l)
			return
		}
	}
}

// ForceTagEviction simulates a spurious capacity eviction of the named
// line, for adversarial harnesses (internal/schedfuzz, internal/
// schedexplore) that want eviction pressure aimed at a specific tag — say,
// one node of a hand-over-hand window — beyond what the cache geometry
// produces naturally. It follows the same path as a real displacement: the
// evicted latch is set and validation fails until ClearTagSet. A line that
// is not currently tagged is left alone (a window that already slid past
// it is unaffected) and false is reported.
func (t *Thread) ForceTagEviction(l core.Line) bool {
	if !t.hasTag(l) {
		return false
	}
	t.evicted.Store(true)
	t.stats.SpuriousEvictions++
	t.emit(EvTagEvicted, -1, l)
	return true
}

// TaggedLine returns the i'th tagged line in insertion order, so harnesses
// can aim ForceTagEviction at a held tag. i must be < TagCount().
func (t *Thread) TaggedLine(i int) core.Line { return t.tags[i] }

// drainEvictions clears directory presence for lines displaced from L2.
// Called with no directory locks held.
func (t *Thread) drainEvictions() {
	for len(t.pendingEvicts) > 0 {
		l := t.pendingEvicts[len(t.pendingEvicts)-1]
		t.pendingEvicts = t.pendingEvicts[:len(t.pendingEvicts)-1]
		d := t.m.dirAt(l)
		d.mu.Lock()
		if d.sharers.Contains(t.id) {
			d.sharers.Remove(t.id)
			if int(d.owner) == t.id {
				d.owner = -1
				t.stats.Writebacks++
			}
		}
		if d.taggers.Contains(t.id) {
			// The local tag check already failed validation; just keep the
			// directory consistent.
			d.taggers.Remove(t.id)
		}
		d.mu.Unlock()
	}
}

// touchLineLocked performs the coherence transaction for one access to line
// l and charges its cost. The caller holds d.mu.
func (t *Thread) touchLineLocked(l core.Line, d *dirEntry, write bool) {
	t.recAccess(l, write)
	cfg := &t.m.cfg
	present := d.sharers.Contains(t.id)

	if write {
		if int(d.owner) == t.id {
			t.chargeLocalHit(l)
			return
		}
		// Need exclusivity: invalidate every other sharer. Whether the fill
		// (if any) can be served on-socket is decided by the pre-invalidation
		// sharer set.
		others := d.sharers
		others.Remove(t.id)
		othersHadIt := !others.Empty()
		served := t.m.sockets == 1 || others.Intersects(&t.m.sockMask[t.socket])
		t.invalidateOthersLocked(d, l)
		if present {
			// Upgrade from Shared: data already local.
			t.chargeLocalHit(l)
		} else if othersHadIt {
			// Write miss served by a remote cache (plus the invalidations
			// already charged).
			t.chargeRemoteFill(served)
			t.emit(EvRemoteFill, -1, l)
			t.fillLocal(l)
		} else {
			t.chargeMemFill(l)
			t.emit(EvMemFill, -1, l)
			t.fillLocal(l)
		}
		return
	}

	// Read.
	if present {
		t.chargeLocalHit(l)
		return
	}
	if d.owner >= 0 {
		// The modified/exclusive owner forwards the line and downgrades.
		// Under MESI/MESIF the downgrade writes the dirty data back; under
		// MOESI the owner moves to Owned and the writeback is deferred to
		// eviction (modeled as: no downgrade writeback).
		sameSocket := t.m.sockets == 1 || t.m.threads[d.owner].socket == t.socket
		d.owner = -1
		t.chargeRemoteFill(sameSocket)
		if cfg.Protocol != MOESI {
			t.stats.Writebacks++
			t.charge(cfg.WritebackCycles, cfg.EnergyWriteback)
		}
	} else if !d.sharers.Empty() && cfg.Protocol != MESI {
		// Clean cache-to-cache transfer from the Forward-state sharer
		// (MESIF) or the Owned sharer (MOESI); served on-socket when any
		// sharer is local.
		t.chargeRemoteFill(t.sharerOnMySocket(d.sharers))
	} else {
		// Strict MESI serves clean lines from memory.
		t.chargeMemFill(l)
	}
	d.sharers.Add(t.id)
	t.fillLocal(l)
}

// touchForTagLocked performs the coherence transaction for AddTag: the tag
// is load-buffer metadata that rides on the line, so tagging a line that is
// already in L1 is free (the paper implements tags "by adding extra state
// to each core's load buffer"). A line that is not resident is fetched like
// a normal read (the transition-to-tagged state serves the miss), and that
// fill is charged.
func (t *Thread) touchForTagLocked(l core.Line, d *dirEntry) {
	t.recAccess(l, false)
	cfg := &t.m.cfg
	if d.sharers.Contains(t.id) {
		if t.l1.Lookup(l) {
			return // resident in L1: tagging is free
		}
		// Present only in L2: the tagging access promotes it.
		t.l2.Lookup(l)
		t.stats.L2Hits++
		t.charge(cfg.L2HitCycles, cfg.EnergyL2)
		t.fillLocal(l)
		return
	}
	if d.owner >= 0 {
		sameSocket := t.m.sockets == 1 || t.m.threads[d.owner].socket == t.socket
		d.owner = -1
		t.chargeRemoteFill(sameSocket)
		if cfg.Protocol != MOESI {
			t.stats.Writebacks++
			t.charge(cfg.WritebackCycles, cfg.EnergyWriteback)
		}
	} else if !d.sharers.Empty() && cfg.Protocol != MESI {
		t.chargeRemoteFill(t.sharerOnMySocket(d.sharers))
	} else {
		t.chargeMemFill(l)
	}
	d.sharers.Add(t.id)
	t.fillLocal(l)
}

// chargeLocalHit prices an access whose data is already somewhere in the
// local hierarchy, determining the level from the cache models.
func (t *Thread) chargeLocalHit(l core.Line) {
	cfg := &t.m.cfg
	if t.l1.Lookup(l) {
		t.stats.L1Hits++
		t.charge(cfg.L1HitCycles, cfg.EnergyL1)
		t.emit(EvL1Hit, -1, l)
		return
	}
	// By inclusion the line is in L2 (or the model lost it to staleness;
	// either way price it as an L2 hit and promote to L1).
	t.l2.Lookup(l)
	t.stats.L2Hits++
	t.charge(cfg.L2HitCycles, cfg.EnergyL2)
	t.emit(EvL2Hit, -1, l)
	t.fillLocal(l)
}
