package machine

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func testMachine(cores int) *Machine {
	cfg := DefaultConfig(cores)
	cfg.MemBytes = 1 << 20
	return New(cfg)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = core.MaxCores + 1 },
		func(c *Config) { c.Sockets = -1 },
		func(c *Config) { c.Sockets = 3 }, // must divide Cores (2)
		func(c *Config) { c.Sockets = 2; c.Cores = 3 },
		func(c *Config) { c.MemBytes = 0 },
		func(c *Config) { c.L1Bytes = 0 },
		func(c *Config) { c.L2Bytes = c.L1Bytes / 2 },
		func(c *Config) { c.MaxTags = 0 },
		func(c *Config) { c.ClockHz = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(2)
		mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := DefaultConfig(2)
	if err := cfg.validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestLoadStoreSingleThread(t *testing.T) {
	m := testMachine(1)
	th := m.Thread(0)
	a := m.Alloc(4)
	th.Store(a, 42)
	th.Store(a.Plus(1), 43)
	if th.Load(a) != 42 || th.Load(a.Plus(1)) != 43 {
		t.Fatal("load does not return stored values")
	}
}

func TestCAS(t *testing.T) {
	m := testMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Store(a, 5)
	if th.CAS(a, 4, 9) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if th.Load(a) != 5 {
		t.Fatal("failed CAS modified memory")
	}
	if !th.CAS(a, 5, 9) {
		t.Fatal("CAS with correct expected failed")
	}
	if th.Load(a) != 9 {
		t.Fatal("successful CAS did not write")
	}
}

func TestCoherenceVisibility(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t0.Store(a, 1)
	if t1.Load(a) != 1 {
		t.Fatal("remote store not visible")
	}
	t1.Store(a, 2)
	if t0.Load(a) != 2 {
		t.Fatal("second remote store not visible")
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t0.Store(a, 1)
	t1.Load(a) // both cores now share the line

	sharers, _, _ := m.DebugLine(a.Line())
	if sharers.Count() != 2 || !sharers.Contains(0) || !sharers.Contains(1) {
		t.Fatalf("sharers = %v, want {0,1}", sharers)
	}

	t0.Store(a, 2)
	sharers, owner, _ := m.DebugLine(a.Line())
	if sharers.Count() != 1 || !sharers.Contains(0) || owner != 0 {
		t.Fatalf("after store: sharers=%v owner=%d, want {0}/0", sharers, owner)
	}
	if m.CoreStatsOf(1).InvalidationsReceived.Load() == 0 {
		t.Fatal("core 1 received no invalidation")
	}
}

func TestValidateAfterRemoteWriteFails(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t0.Store(a, 1)

	if !t1.AddTag(a, 8) {
		t.Fatal("AddTag failed")
	}
	if !t1.Validate() {
		t.Fatal("validate should succeed with no conflicting write")
	}
	t0.Store(a, 2)
	if t1.Validate() {
		t.Fatal("validate should fail after remote write to tagged line")
	}
	t1.ClearTagSet()
	if !t1.AddTag(a, 8) || !t1.Validate() {
		t.Fatal("validate should succeed after ClearTagSet and retag")
	}
}

func TestOwnWriteDoesNotEvictOwnTag(t *testing.T) {
	m := testMachine(2)
	t0 := m.Thread(0)
	a := m.Alloc(1)
	t0.AddTag(a, 8)
	t0.Store(a, 7)
	if !t0.Validate() {
		t.Fatal("own store evicted own tag")
	}
}

func TestRemoveTagStopsTracking(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	b := m.Alloc(1)
	t1.AddTag(a, 8)
	t1.AddTag(b, 8)
	t1.RemoveTag(a, 8)
	t0.Store(a, 1) // write to the untagged line
	if !t1.Validate() {
		t.Fatal("validate failed though conflicting line was untagged")
	}
	t0.Store(b, 1)
	if t1.Validate() {
		t.Fatal("validate succeeded though tagged line was written")
	}
}

func TestEvictionLatchSurvivesRemoveTag(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t1.AddTag(a, 8)
	t0.Store(a, 1) // evicts t1's tag
	t1.RemoveTag(a, 8)
	if t1.Validate() {
		t.Fatal("recorded eviction forgotten by RemoveTag")
	}
	t1.ClearTagSet()
	if !t1.Validate() {
		t.Fatal("ClearTagSet did not reset eviction state")
	}
}

func TestVASSuccessAndFailure(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	target := m.Alloc(1)
	t0.Store(a, 1)

	t1.AddTag(a, 8)
	t1.Load(a)
	if !t1.VAS(target, 99) {
		t.Fatal("VAS failed without conflict")
	}
	if t1.Load(target) != 99 {
		t.Fatal("VAS did not write")
	}
	t1.ClearTagSet()

	t1.AddTag(a, 8)
	t0.Store(a, 2) // conflict
	if t1.VAS(target, 100) {
		t.Fatal("VAS succeeded despite evicted tag")
	}
	if t1.Load(target) != 99 {
		t.Fatal("failed VAS wrote memory")
	}
}

func TestVASOnTaggedTarget(t *testing.T) {
	m := testMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Store(a, 1)
	th.AddTag(a, 8)
	if !th.VAS(a, 2) {
		t.Fatal("VAS on own tagged target failed")
	}
	if th.Load(a) != 2 {
		t.Fatal("VAS write lost")
	}
	// Our own VAS write must not evict our own tag.
	if !th.Validate() {
		t.Fatal("own VAS evicted own tag")
	}
}

func TestIASInvalidatesRemoteTags(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	node := m.Alloc(1)
	target := m.Alloc(1)
	t0.Store(node, 1)

	// Both threads tag the same node.
	t0.AddTag(node, 8)
	t1.AddTag(node, 8)
	if !t0.Validate() || !t1.Validate() {
		t.Fatal("initial validations failed")
	}

	// t0 IASes: its own tags stay valid, t1's tag on node is invalidated.
	if !t0.IAS(target, 7) {
		t.Fatal("IAS failed")
	}
	if !t0.Validate() {
		t.Fatal("IAS evicted issuer's own tags")
	}
	if t1.Validate() {
		t.Fatal("IAS did not invalidate remote tag")
	}
	if t1.Load(target) != 7 {
		t.Fatal("IAS write not visible")
	}
}

func TestVASDoesNotInvalidateRemoteTagsOnOtherLines(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	node := m.Alloc(1)
	target := m.Alloc(1)
	t0.Store(node, 1)
	t1.Load(node)

	t0.AddTag(node, 8)
	t1.AddTag(node, 8)
	if !t0.VAS(target, 7) {
		t.Fatal("VAS failed")
	}
	// Unlike IAS, VAS only writes the target: t1's tag on node survives.
	if !t1.Validate() {
		t.Fatal("VAS invalidated a remote tag on a non-target line")
	}
}

func TestMaxTagsOverflow(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	cfg.MaxTags = 4
	m := New(cfg)
	th := m.Thread(0)
	addrs := make([]core.Addr, 5)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	for i := 0; i < 4; i++ {
		if !th.AddTag(addrs[i], 8) {
			t.Fatalf("AddTag %d failed below MaxTags", i)
		}
	}
	if th.AddTag(addrs[4], 8) {
		t.Fatal("AddTag beyond MaxTags succeeded")
	}
	if th.Validate() {
		t.Fatal("validate succeeded after overflow")
	}
	if th.VAS(addrs[0], 1) {
		t.Fatal("VAS succeeded after overflow")
	}
	th.ClearTagSet()
	if !th.AddTag(addrs[4], 8) || !th.Validate() {
		t.Fatal("overflow not reset by ClearTagSet")
	}
}

func TestMultiLineTag(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	// A 3-line object.
	obj := m.Alloc(3 * core.WordsPerLine)
	t1.AddTag(obj, 3*core.LineSize)
	if t1.TagCount() != 3 {
		t.Fatalf("TagCount = %d, want 3", t1.TagCount())
	}
	// Write to the middle line: validation must fail.
	t0.Store(obj.Plus(core.WordsPerLine+1), 5)
	if t1.Validate() {
		t.Fatal("write to middle line of tagged object not detected")
	}
}

func TestSpuriousEvictionByCapacity(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemBytes = 4 << 20
	// Tiny L1: 4 sets x 2 ways = 8 lines; big L2 so only L1 thrashes.
	cfg.L1Bytes = 8 * core.LineSize
	cfg.L1Ways = 2
	m := New(cfg)
	th := m.Thread(0)

	tagged := m.Alloc(1)
	th.AddTag(tagged, 8)
	if !th.Validate() {
		t.Fatal("fresh tag invalid")
	}
	// Thrash the L1 with conflicting lines until the tagged line is
	// displaced (every line maps somewhere in 4 sets; 200 distinct lines
	// guarantee displacement).
	for i := 0; i < 200; i++ {
		th.Load(m.Alloc(1))
	}
	if th.Validate() {
		t.Fatal("tag survived L1 thrashing (spurious eviction not modeled)")
	}
	if m.CoreStatsOf(0).SpuriousEvictions == 0 {
		t.Fatal("spurious eviction not counted")
	}
}

func TestStatsLevels(t *testing.T) {
	m := testMachine(1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Load(a) // DRAM fill
	th.Load(a) // L1 hit
	cs := m.CoreStatsOf(0)
	if cs.MemFills != 1 {
		t.Fatalf("MemFills = %d, want 1", cs.MemFills)
	}
	if cs.L1Hits != 1 {
		t.Fatalf("L1Hits = %d, want 1", cs.L1Hits)
	}
	if cs.Cycles == 0 || cs.Energy == 0 {
		t.Fatal("cycles/energy not charged")
	}
}

func TestRemoteFillCounted(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t0.Store(a, 1)
	t1.Load(a)
	if m.CoreStatsOf(1).RemoteFills != 1 {
		t.Fatalf("RemoteFills = %d, want 1", m.CoreStatsOf(1).RemoteFills)
	}
}

func TestValidateIsLocal(t *testing.T) {
	m := testMachine(2)
	t1 := m.Thread(1)
	a := m.Alloc(1)
	t1.AddTag(a, 8)
	before := m.CoreStatsOf(1).InvalidationsSent
	loads := m.CoreStatsOf(1).Loads
	for i := 0; i < 100; i++ {
		t1.Validate()
	}
	cs := m.CoreStatsOf(1)
	// The key property: validation generates no coherence traffic and no
	// memory accesses.
	if cs.InvalidationsSent != before || cs.Loads != loads {
		t.Fatal("Validate generated coherence traffic or loads")
	}
}

func TestSnapshotAggregates(t *testing.T) {
	m := testMachine(2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t0.Store(a, 1)
	t1.Load(a)
	s := m.Snapshot()
	if s.Loads != 1 || s.Stores != 1 {
		t.Fatalf("snapshot loads=%d stores=%d", s.Loads, s.Stores)
	}
	if s.Accesses() != 2 {
		t.Fatalf("Accesses = %d", s.Accesses())
	}
	if s.MaxCycles == 0 || s.TotalCycles < s.MaxCycles {
		t.Fatal("cycle aggregation wrong")
	}
	if s.MissRate() <= 0 || s.MissRate() > 1 {
		t.Fatalf("MissRate = %f", s.MissRate())
	}
}

// Concurrent atomic-increment via tag+load+VAS: the total must be exact,
// proving VAS linearizes against concurrent VAS on the same line.
func TestConcurrentVASCounter(t *testing.T) {
	const workers, perWorker = 8, 200
	m := testMachine(workers)
	ctr := m.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					th.ClearTagSet()
					th.AddTag(ctr, 8)
					v := th.Load(ctr)
					if th.VAS(ctr, v+1) {
						break
					}
				}
			}
			th.ClearTagSet()
		}(m.Thread(w))
	}
	wg.Wait()
	if got := m.Thread(0).Load(ctr); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// Same with plain CAS as a sanity check of the baseline primitive.
func TestConcurrentCASCounter(t *testing.T) {
	const workers, perWorker = 8, 200
	m := testMachine(workers)
	ctr := m.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					v := th.Load(ctr)
					if th.CAS(ctr, v, v+1) {
						break
					}
				}
			}
		}(m.Thread(w))
	}
	wg.Wait()
	if got := m.Thread(0).Load(ctr); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// IAS-based increments interleaved with plain stores on a second line:
// exercises multi-line commits under concurrency (race detector checks the
// locking discipline).
func TestConcurrentIASStress(t *testing.T) {
	const workers, perWorker = 4, 100
	m := testMachine(workers)
	ctr := m.Alloc(1)
	aux := m.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					th.ClearTagSet()
					th.AddTag(ctr, 8)
					th.AddTag(aux, 8)
					v := th.Load(ctr)
					if th.IAS(ctr, v+1) {
						break
					}
				}
			}
			th.ClearTagSet()
		}(m.Thread(w))
	}
	wg.Wait()
	if got := m.Thread(0).Load(ctr); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}
