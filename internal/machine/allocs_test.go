package machine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
)

// The simulator's hot path — every memory and tag operation on resident
// lines — must be allocation-free: experiment harnesses execute hundreds of
// millions of simulated operations per figure, and per-op garbage was a
// measured double-digit share of host time before the lock-set and
// line-span paths were de-allocated. These budgets are load-bearing: a
// regression here is a host-time regression on every benchmark.

func newAllocTestMachine(t *testing.T) (*Machine, *Thread, core.Addr) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0 // single-goroutine: no lax-clock parking
	m := New(cfg)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine * 4)
	// Warm the lines so the ops below run the resident path: word/directory
	// chunks installed, lines owned in L1.
	for i := 0; i < 4; i++ {
		th.Store(a+core.Addr(i*core.LineSize), uint64(i))
	}
	return m, th, a
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestHotPathAllocFree(t *testing.T) {
	_, th, a := newAllocTestMachine(t)

	assertZeroAllocs(t, "Load", func() { th.Load(a) })
	assertZeroAllocs(t, "Store", func() { th.Store(a, 42) })
	assertZeroAllocs(t, "CAS", func() {
		v := th.Load(a)
		th.CAS(a, v, v+1)
	})
	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "RemoveTag", func() {
		th.AddTag(a, core.LineSize)
		th.RemoveTag(a, core.LineSize)
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}

// TestHotPathAllocFreeWithTelemetry re-runs the budget with telemetry
// recording enabled: the histograms are fixed-size arrays updated in
// place, so turning observability on must not cost an allocation.
func TestHotPathAllocFreeWithTelemetry(t *testing.T) {
	m, th, a := newAllocTestMachine(t)
	m.SetTelemetry(telemetry.NewSet(m.NumThreads()))

	assertZeroAllocs(t, "Load+telemetry", func() { th.Load(a) })
	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet+telemetry", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS+telemetry", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS+telemetry", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}

// TestHotPathAllocFreeActive re-checks the core loop with lax clock
// synchronization enabled and the thread enrolled: publishing the clock and
// consulting the shared minimum must not allocate either.
func TestHotPathAllocFreeActive(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	m := New(cfg)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine)
	th.Store(a, 1)
	th.SetActive(true)
	defer th.SetActive(false)

	assertZeroAllocs(t, "Load(active)", func() { th.Load(a) })
	assertZeroAllocs(t, "VAS(active)", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
}

// TestHotPathAllocFreeWithReclaim re-runs the tag-op budget with a
// reclamation domain attached: announcing and retracting tag lines uses the
// handle's preallocated slot table, so wiring reclamation must not cost the
// hot path an allocation.
func TestHotPathAllocFreeWithReclaim(t *testing.T) {
	m, th, a := newAllocTestMachine(t)
	m.SetReclaim(reclaim.NewDomainFor(m))

	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet+reclaim", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "RemoveTag+reclaim", func() {
		th.AddTag(a, core.LineSize)
		th.RemoveTag(a, core.LineSize)
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS+reclaim", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS+reclaim", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}
