package machine

import "repro/internal/reclaim"

// SetReclaim attaches a reclamation domain: from here on each core mirrors
// its tag set into its domain handle (AddTag announces, RemoveTag and
// ClearTagSet retract), which is what lets reclaim.Pool scans see which
// retired lines a reader could still validate, and — when the domain's
// use-after-free guard is active — reports successful validations so a
// validate over a freed line is convicted. Only call while quiescent. The
// domain must have at least NumThreads handles.
func (m *Machine) SetReclaim(d *reclaim.Domain) {
	for i, t := range m.threads {
		if d == nil {
			t.rec = nil
		} else {
			t.rec = d.Handle(i)
		}
	}
}

// noteValidatedTags reports a successful validation of the whole tag set
// to the reclamation guard. No-op unless a domain is attached with its
// guard active.
func (t *Thread) noteValidatedTags() {
	if t.rec == nil || !t.rec.GuardActive() {
		return
	}
	for _, l := range t.tags {
		t.rec.NoteValidatedTag(l)
	}
}
