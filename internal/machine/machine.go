// Package machine implements the paper's hardware proposal: a multicore
// cache simulator with MESI-style directory coherence and memory tags kept
// at each core's L1, including validate-and-swap (VAS) and
// invalidate-and-swap (IAS).
//
// The simulator is functionally concurrent and timing-sampled: one real
// goroutine drives each simulated core, a per-line directory entry (with a
// mutex) is the coherence authority, and every event is priced by the
// Config cost model into per-core cycle and energy counters. The atomicity
// the paper obtains by "temporarily pausing the serving of new coherence
// requests" during validation is obtained here by locking the directory
// entries of all tagged lines (plus the VAS/IAS target) in address order.
//
// Presence in a core's cache hierarchy is authoritative in the directory's
// sharer mask; the per-core L1/L2 set-associative models decide only at
// which level an access hits and which victim a fill displaces. Remote
// invalidations therefore never touch a foreign cache model — they clear
// the directory bit, and the stale model entry is simply refilled on the
// owning core's next access.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mem"
)

// dirEntry is the coherence authority for one cache line.
type dirEntry struct {
	mu sync.Mutex
	// sharers is the set of cores holding the line anywhere in their
	// private hierarchy (L1 or L2). A core.CoreSet rather than a uint64
	// mask, so the directory scales past 64 cores.
	sharers core.CoreSet
	// owner is the core holding the line in Modified/Exclusive state, or
	// -1. Invariant: owner >= 0 implies sharers == {owner}.
	owner int16
	// taggers is the set of cores currently tagging this line.
	taggers core.CoreSet
}

// dirChunk mirrors one mem.Space chunk's worth of directory entries.
// Directory chunks are installed on first touch, like the space's word
// chunks: experiments configure large address spaces but touch few lines,
// and zeroing one directory entry per possible line dominated Machine
// construction cost.
type dirChunk [mem.ChunkLines]dirEntry

// Machine is a simulated multicore with memory tagging.
type Machine struct {
	cfg   Config
	space *mem.Space
	dir   []atomic.Pointer[dirChunk]
	// sockets/coresPerSocket realize Config.Sockets (1 when flat); sockMask
	// holds each socket's core membership, precomputed so the coherence
	// pricing can test "any sharer on my socket?" with a word-wise AND.
	sockets        int
	coresPerSocket int
	sockMask       []core.CoreSet
	threads        []*Thread
	clock          clockSync
	tracer         Tracer
	gate           Gate
	// issuing counts in-flight memory/tag operations when the memtagcheck
	// build tag enables the quiescence guard (see guard_on.go); Snapshot
	// panics when it is non-zero. In default builds the counter is never
	// touched.
	issuing atomic.Int64
}

var _ core.Memory = (*Machine)(nil)

// New creates a machine. It panics on an invalid configuration, since
// configurations are experiment constants.
func New(cfg Config) *Machine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	space := mem.NewSpace(cfg.MemBytes)
	m := &Machine{
		cfg:   cfg,
		space: space,
		dir:   make([]atomic.Pointer[dirChunk], (space.NumLines()+mem.ChunkLines-1)/mem.ChunkLines),
	}
	m.sockets = cfg.Sockets
	if m.sockets < 1 {
		m.sockets = 1
	}
	m.coresPerSocket = cfg.Cores / m.sockets
	m.sockMask = make([]core.CoreSet, m.sockets)
	for c := 0; c < cfg.Cores; c++ {
		m.sockMask[c/m.coresPerSocket].Add(c)
	}
	m.clock.shards = make([]clockShard, (cfg.Cores+clockShardCores-1)/clockShardCores)
	m.threads = make([]*Thread, cfg.Cores)
	for i := range m.threads {
		m.threads[i] = newThread(m, i)
	}
	return m
}

// socketOf returns the socket that core c belongs to. Cores are split
// contiguously: socket s owns cores [s*coresPerSocket, (s+1)*coresPerSocket).
func (m *Machine) socketOf(c int) int { return c / m.coresPerSocket }

// homeSocket returns the socket whose memory controller serves line l.
// Lines are interleaved across sockets at cache-line granularity, the
// usual default for a first-touch-free simulator.
func (m *Machine) homeSocket(l core.Line) int { return int(uint64(l) % uint64(m.sockets)) }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumThreads returns the number of simulated cores.
func (m *Machine) NumThreads() int { return len(m.threads) }

// Thread returns the handle for simulated core id.
func (m *Machine) Thread(id int) core.Thread { return m.threads[id] }

// Alloc allocates line-aligned words from the simulated space.
func (m *Machine) Alloc(words int) core.Addr { return m.space.Alloc(words) }

// MaxTags returns the per-core tag budget.
func (m *Machine) MaxTags() int { return m.cfg.MaxTags }

// AllocatedBytes reports how much simulated memory has been handed out.
func (m *Machine) AllocatedBytes() int { return m.space.AllocatedBytes() }

func (m *Machine) dirAt(l core.Line) *dirEntry {
	ci := uint64(l) / mem.ChunkLines
	if ci >= uint64(len(m.dir)) {
		panic(fmt.Sprintf("machine: line %d out of range (%d lines)", l, m.space.NumLines()))
	}
	c := m.dir[ci].Load()
	if c == nil {
		c = m.installDirChunk(ci)
	}
	return &c[uint64(l)%mem.ChunkLines]
}

// installDirChunk materializes directory chunk ci with every entry
// unowned, losing the race gracefully if another core installs it first.
func (m *Machine) installDirChunk(ci uint64) *dirChunk {
	fresh := new(dirChunk)
	for i := range fresh {
		fresh[i].owner = -1
	}
	if m.dir[ci].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return m.dir[ci].Load()
}

// DebugLine returns the directory state of a line for tests: the sharer
// set, owner core (or -1), and tagger set. The sets are copies; mutating
// them does not touch the directory.
func (m *Machine) DebugLine(l core.Line) (sharers core.CoreSet, owner int, taggers core.CoreSet) {
	d := m.dirAt(l)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sharers, int(d.owner), d.taggers
}
