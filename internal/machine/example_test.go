package machine_test

import (
	"fmt"

	"repro/internal/machine"
)

// Example demonstrates the MemTags primitives on a two-core machine: a
// tag survives unrelated activity, is invalidated by a remote write, and
// gates an atomic validate-and-swap.
func Example() {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	alice, bob := m.Thread(0), m.Thread(1)

	counter := m.Alloc(1)
	alice.Store(counter, 41)

	bob.AddTag(counter, 8)
	v := bob.Load(counter)
	fmt.Println("validate after read:", bob.Validate())

	if bob.VAS(counter, v+1) {
		fmt.Println("VAS committed:", bob.Load(counter))
	}
	bob.ClearTagSet()

	bob.AddTag(counter, 8)
	alice.Store(counter, 0) // invalidates bob's tag
	fmt.Println("validate after remote write:", bob.Validate())
	fmt.Println("VAS after conflict:", bob.VAS(counter, 99))
	bob.ClearTagSet()

	// Output:
	// validate after read: true
	// VAS committed: 42
	// validate after remote write: false
	// VAS after conflict: false
}

// ExampleMachine_Snapshot shows the event accounting every run produces.
func ExampleMachine_Snapshot() {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.Store(a, 1) // DRAM fill
	th.Load(a)     // L1 hit

	s := m.Snapshot()
	fmt.Println("loads:", s.Loads, "stores:", s.Stores)
	fmt.Println("L1 hits:", s.L1Hits, "memory fills:", s.MemFills)
	// Output:
	// loads: 1 stores: 1
	// L1 hits: 1 memory fills: 1
}
