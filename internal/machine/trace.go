package machine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Event tracing: the paper validates its claims by examining simulator
// traces ("Examination of the simulator traces confirms that this
// performance improvement comes because of reduced coherence messaging").
// A Tracer receives every coherence-relevant event; it costs nothing when
// unset.

// EventKind enumerates traced events.
type EventKind int

const (
	// EvL1Hit: an access served by the core's L1.
	EvL1Hit EventKind = iota
	// EvL2Hit: an access served by the core's L2.
	EvL2Hit
	// EvRemoteFill: a miss served by another core's cache.
	EvRemoteFill
	// EvMemFill: a miss served by simulated DRAM.
	EvMemFill
	// EvInvalidation: an invalidation message (core = sender; Target =
	// receiver).
	EvInvalidation
	// EvTagAdd: a line was tagged.
	EvTagAdd
	// EvTagRemove: a line was untagged.
	EvTagRemove
	// EvTagEvicted: a tagged line was invalidated or displaced (Target =
	// -1 for self-inflicted capacity evictions).
	EvTagEvicted
	// EvValidateOK / EvValidateFail: outcome of a validation.
	EvValidateOK
	// EvValidateFail is a failed validation.
	EvValidateFail
	// EvCommitVAS / EvCommitIAS: successful VAS/IAS commits.
	EvCommitVAS
	// EvCommitIAS is a successful IAS.
	EvCommitIAS
	// EvVASFail / EvIASFail: failed VAS/IAS commits (validation failed at
	// commit time: overflow or a recorded eviction).
	EvVASFail
	// EvIASFail is a failed IAS.
	EvIASFail
)

// String names the event kind.
func (k EventKind) String() string {
	names := [...]string{
		"L1Hit", "L2Hit", "RemoteFill", "MemFill", "Invalidation",
		"TagAdd", "TagRemove", "TagEvicted", "ValidateOK", "ValidateFail",
		"CommitVAS", "CommitIAS", "VASFail", "IASFail",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "Unknown"
}

// Event is one traced occurrence.
type Event struct {
	Kind   EventKind
	Core   int
	Target int // receiving core for invalidations/tag evictions, else -1
	Line   uint64
	Cycle  uint64 // issuing core's simulated clock
}

// String renders one event in the fixed-width form used when a harness
// prints an interleaving ("cycle 1042 core 2 TagEvicted line 17 -> 0").
func (e Event) String() string {
	s := fmt.Sprintf("cycle %6d core %2d %-12s line %d", e.Cycle, e.Core, e.Kind, e.Line)
	if e.Target >= 0 {
		s += fmt.Sprintf(" -> core %d", e.Target)
	}
	return s
}

// Tracer receives events synchronously from simulated cores. It must be
// safe for concurrent use (cores run on separate goroutines) and fast —
// it executes inside the coherence critical sections.
type Tracer interface {
	Trace(Event)
}

// SetTracer installs (or removes, with nil) the machine's tracer. Only
// call while quiescent.
func (m *Machine) SetTracer(tr Tracer) { m.tracer = tr }

// emit delivers an event if a tracer is installed. The guard is kept small
// enough to inline so that, with no tracer, hot-path call sites pay one
// predictable branch instead of a function call.
func (t *Thread) emit(kind EventKind, target int, line core.Line) {
	if t.m.tracer != nil {
		t.emitSlow(kind, target, line)
	}
}

func (t *Thread) emitSlow(kind EventKind, target int, line core.Line) {
	t.m.tracer.Trace(Event{
		Kind:   kind,
		Core:   t.id,
		Target: target,
		Line:   uint64(line),
		Cycle:  t.stats.Cycles,
	})
}

// TraceTo adapts a telemetry.TraceCollector to the machine's Tracer
// interface, feeding the Perfetto exporter: install with
// m.SetTracer(machine.TraceTo(col)).
func TraceTo(c *telemetry.TraceCollector) Tracer { return traceAdapter{c} }

type traceAdapter struct{ c *telemetry.TraceCollector }

func (a traceAdapter) Trace(e Event) {
	a.c.Add(telemetry.TraceEvent{
		Name:   e.Kind.String(),
		Core:   e.Core,
		Target: e.Target,
		Line:   e.Line,
		Cycle:  e.Cycle,
	})
}
