//go:build !memtagcheck

package machine

// debugGuard disables the Snapshot quiescence guard in default builds;
// the compiler removes every `if debugGuard` block, so the hot path pays
// nothing. See guard_on.go.
const debugGuard = false
