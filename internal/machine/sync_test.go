package machine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// timeAfter wraps time.After with seconds for readability.
func timeAfter(seconds int) <-chan time.Time {
	return time.After(time.Duration(seconds) * time.Second)
}

func TestBeginEpochAlignsClocks(t *testing.T) {
	m := testMachine(4)
	th := m.threads[0]
	a := m.Alloc(1)
	for i := 0; i < 50; i++ {
		th.Store(a, uint64(i))
	}
	if m.threads[1].stats.Cycles != 0 {
		t.Fatal("idle core accumulated cycles")
	}
	m.BeginEpoch()
	want := m.threads[0].stats.Cycles
	for i, tt := range m.threads {
		if tt.stats.Cycles != want {
			t.Fatalf("core %d cycles %d, want %d", i, tt.stats.Cycles, want)
		}
	}
}

// TestThrottleBoundsSkew checks the central property: two active cores
// doing very different amounts of work per op stay within the window while
// both run.
func TestThrottleBoundsSkew(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 500
	m := New(cfg)
	m.BeginEpoch()

	a, b := m.Alloc(1), m.Alloc(1)
	var maxSkew uint64
	var mu sync.Mutex
	record := func(self, other *Thread) {
		mu.Lock()
		mine, theirs := self.pubCycles.Load(), other.pubCycles.Load()
		if mine > theirs && mine-theirs > maxSkew {
			maxSkew = mine - theirs
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	var ready sync.WaitGroup
	start := make(chan struct{})
	ready.Add(2)
	run := func(self, other *Thread, addr core.Addr, ops int) {
		defer wg.Done()
		self.SetActive(true)
		defer self.SetActive(false)
		ready.Done()
		<-start
		for i := 0; i < ops; i++ {
			self.Load(addr)
			record(self, other)
		}
	}
	wg.Add(2)
	t0, t1 := m.threads[0], m.threads[1]
	go run(t0, t1, a, 3000)
	go run(t1, t0, b, 3000)
	ready.Wait()
	close(start)
	wg.Wait()

	// Skew may exceed the window by one op's worth of cycles, but not by
	// much more (a DRAM fill is 100+compute cycles).
	limit := cfg.SyncWindowCycles + 300
	if maxSkew > limit {
		t.Fatalf("max observed skew %d exceeds window-based limit %d", maxSkew, limit)
	}
}

// TestInactiveThreadDoesNotBlockOthers: an enrolled thread that withdraws
// must release any thread waiting on it.
func TestInactiveThreadDoesNotBlockOthers(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 100
	m := New(cfg)
	m.BeginEpoch()
	t0, t1 := m.threads[0], m.threads[1]
	a := m.Alloc(1)

	t0.SetActive(true)
	t1.SetActive(true)
	done := make(chan struct{})
	go func() {
		// t0 runs far ahead; it must stall on t1 and resume once t1
		// withdraws.
		for i := 0; i < 500; i++ {
			t0.Load(a)
		}
		t0.SetActive(false)
		close(done)
	}()
	t1.SetActive(false) // withdraw: t0 must now finish
	<-done
}

// TestThrottleDisabled: with SyncWindowCycles = 0 no stalls occur even at
// extreme skew.
func TestThrottleDisabled(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemBytes = 1 << 20
	cfg.SyncWindowCycles = 0
	m := New(cfg)
	t0 := m.threads[0]
	t0.SetActive(true)
	m.threads[1].SetActive(true) // never runs; must not block t0
	a := m.Alloc(1)
	for i := 0; i < 1000; i++ {
		t0.Load(a)
	}
	t0.SetActive(false)
	m.threads[1].SetActive(false)
}

// TestNoParkingDeadlockUnderLoad is the regression test for a lost-wakeup
// deadlock: threads that publish a clock advance and then park without
// broadcasting could form a cycle in which every thread waits for an
// advance that is already published. The fix broadcasts once on entry to
// the park path. This test drives many threads through tightly
// interleaved ops and must complete well within the deadline.
func TestNoParkingDeadlockUnderLoad(t *testing.T) {
	const cores, opsPer = 16, 3000
	cfg := DefaultConfig(cores)
	cfg.MemBytes = 8 << 20
	cfg.SyncWindowCycles = 500 // tight window: maximal parking pressure
	m := New(cfg)
	m.BeginEpoch()

	words := make([]core.Addr, 64)
	for i := range words {
		words[i] = m.Alloc(1)
	}
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		var ready sync.WaitGroup
		start := make(chan struct{})
		ready.Add(cores)
		for w := 0; w < cores; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := m.threads[w]
				th.SetActive(true)
				defer th.SetActive(false)
				ready.Done()
				<-start
				for i := 0; i < opsPer; i++ {
					a := words[(w*7+i)%len(words)]
					switch i % 4 {
					case 0:
						th.Load(a)
					case 1:
						th.Store(a, uint64(i))
					case 2:
						th.AddTag(a, 8)
						th.Validate()
					default:
						th.VAS(a, uint64(i))
						th.ClearTagSet()
					}
				}
			}(w)
		}
		ready.Wait()
		close(start)
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-timeAfter(60):
		t.Fatal("lax-sync deadlock: workload did not complete")
	}
}
