package machine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// checkDirectoryInvariants validates, while quiescent, the coherence
// authority's structural invariants for the given lines:
//
//   - owner >= 0 implies sharers == {owner} (exclusivity);
//   - every tagger is a sharer (a tag rides on a resident line);
//   - sharer sets only contain existing cores.
func checkDirectoryInvariants(t *testing.T, m *Machine, lines []uint64) {
	t.Helper()
	for _, l := range lines {
		sharers, owner, taggers := m.DebugLine(core.Line(l))
		if owner >= 0 && (sharers.Count() != 1 || !sharers.Contains(owner)) {
			t.Fatalf("line %d: owner %d but sharers %v", l, owner, sharers)
		}
		if !sharers.ContainsAll(&taggers) {
			t.Fatalf("line %d: taggers %v not a subset of sharers %v", l, taggers, sharers)
		}
		for c := sharers.Next(len(m.threads)); c >= 0; {
			t.Fatalf("line %d: sharer %d beyond core count %d", l, c, len(m.threads))
		}
	}
}

// TestDirectoryInvariantsUnderRandomOps hammers random lines from several
// cores with every operation type, then checks the directory.
func TestDirectoryInvariantsUnderRandomOps(t *testing.T) {
	const cores, words, opsPer = 6, 24, 400
	m := testMachine(cores)
	addrs := make([]core.Addr, words)
	lines := make([]uint64, words)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
		lines[i] = uint64(addrs[i].Line())
	}

	var wg sync.WaitGroup
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w)
			rng := rand.New(rand.NewSource(int64(w * 31)))
			for i := 0; i < opsPer; i++ {
				a := addrs[rng.Intn(words)]
				switch rng.Intn(10) {
				case 0, 1, 2:
					th.Load(a)
				case 3, 4:
					th.Store(a, uint64(i))
				case 5:
					th.CAS(a, uint64(rng.Intn(4)), uint64(i))
				case 6:
					th.AddTag(a, 8)
				case 7:
					th.RemoveTag(a, 8)
				case 8:
					th.Validate()
				default:
					if rng.Intn(2) == 0 {
						th.VAS(a, uint64(i))
					} else {
						th.IAS(a, uint64(i))
					}
					th.ClearTagSet()
				}
			}
			th.ClearTagSet()
		}(w)
	}
	wg.Wait()
	checkDirectoryInvariants(t, m, lines)
}
