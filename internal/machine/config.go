package machine

import "repro/internal/core"

// Protocol selects the coherence-protocol pricing model. MemTags semantics
// are identical under all three (the paper: "this mechanism can be
// extended to MOESI/MESIF-style cache coherent implementations"); what
// changes is who may serve a read miss and when dirty data is written
// back.
type Protocol int

const (
	// MESIF (the default, matching modern Intel directories): a clean
	// sharer forwards read misses cache-to-cache (F state); a dirty owner
	// forwards and writes back on downgrade.
	MESIF Protocol = iota
	// MESI (strict): clean lines are served from memory (no Forward
	// state); a dirty owner forwards and writes back on downgrade.
	MESI
	// MOESI (AMD-style): like MESIF, but a dirty owner downgrades to
	// Owned and keeps forwarding without writing back; the writeback is
	// deferred to the line's eviction.
	MOESI
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case MOESI:
		return "MOESI"
	default:
		return "MESIF"
	}
}

// Config describes the simulated multicore machine. Defaults mirror the
// paper's Graphite setup: 1 GHz in-order tiles, private 32 KB L1 and 256 KB
// inclusive L2 per core, MESI coherence, 64 B lines.
type Config struct {
	// Cores is the number of simulated cores (1..core.MaxCores; the
	// directory tracks sharers in a core.CoreSet, so the machine scales
	// past the paper's 64-core ceiling).
	Cores int
	// Sockets splits the cores contiguously across that many sockets for
	// the two-level (NUMA) cost model: cross-socket cache-to-cache
	// transfers and invalidation messages pay SocketHopCycles, and DRAM
	// fills homed on a remote socket (lines are interleaved across sockets)
	// pay MemHopCycles. 0 or 1 means a flat machine with no NUMA charges.
	// Sockets must divide Cores.
	Sockets int
	// MemBytes is the size of the simulated address space.
	MemBytes int

	// L1Bytes/L1Ways configure each core's private L1 model.
	L1Bytes int
	L1Ways  int
	// L2Bytes/L2Ways configure each core's private, inclusive L2 model.
	L2Bytes int
	L2Ways  int

	// Protocol selects the coherence pricing model (MESIF by default).
	Protocol Protocol

	// MaxTags is the system-wide bound on concurrently held tags per core.
	// Exceeding it makes tagging fail and all validations fail until
	// ClearTagSet (graceful overflow handling).
	MaxTags int

	// Latencies, in core cycles.
	L1HitCycles     uint64 // L1 load/store hit
	L2HitCycles     uint64 // L1 miss served by local L2
	RemoteCycles    uint64 // miss served by a remote cache (directory + transfer)
	MemCycles       uint64 // miss served by simulated DRAM
	InvBaseCycles   uint64 // latency of an invalidation round (acks collected in parallel)
	InvMsgCycles    uint64 // additional per-sharer fan-out cost charged to the writer
	TagOpCycles     uint64 // AddTag/RemoveTag bookkeeping beyond the access itself (the paper's proposal keeps tags in the load buffer, so the default is 0)
	ValidateCycles  uint64 // local tag-set check (no coherence traffic)
	CASExtraCycles  uint64 // extra cost of an atomic RMW over a plain store
	WritebackCycles uint64 // dirty-line writeback on downgrade (MESI/MESIF) or eviction
	SocketHopCycles uint64 // extra cost of a cross-socket cache transfer or invalidation message (Sockets > 1)
	MemHopCycles    uint64 // extra cost of a DRAM fill homed on a remote socket (Sockets > 1)
	// ComputeCycles models the non-memory instructions (compares, branches,
	// pointer arithmetic) surrounding each program load/store/CAS, as a
	// full-mode simulator like Graphite would execute. It is charged per
	// access and applies to every variant equally.
	ComputeCycles uint64

	// Energy, in arbitrary relative units (per event).
	EnergyL1        float64
	EnergyL2        float64
	EnergyRemote    float64
	EnergyMem       float64
	EnergyInvMsg    float64
	EnergyWriteback float64
	EnergySocketHop float64

	// SyncWindowCycles bounds the simulated-clock skew between active
	// cores (Graphite-style lax synchronization); 0 disables throttling.
	SyncWindowCycles uint64

	// ClockHz converts accumulated cycles into seconds for throughput.
	ClockHz float64
}

// DefaultConfig returns the paper's simulated configuration for the given
// core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:    cores,
		Sockets:  1,
		MemBytes: 64 << 20, // 64 MiB simulated space

		L1Bytes: 32 << 10,
		L1Ways:  8,
		L2Bytes: 256 << 10,
		L2Ways:  8,

		MaxTags: 32,

		L1HitCycles:     1,
		L2HitCycles:     8,
		RemoteCycles:    40,
		MemCycles:       100,
		InvBaseCycles:   20,
		InvMsgCycles:    2,
		TagOpCycles:     0,
		ValidateCycles:  1,
		CASExtraCycles:  4,
		WritebackCycles: 10,
		SocketHopCycles: 60,
		MemHopCycles:    80,
		ComputeCycles:   2,

		EnergyL1:        1,
		EnergyL2:        6,
		EnergyRemote:    35,
		EnergyMem:       120,
		EnergyInvMsg:    12,
		EnergyWriteback: 30,
		EnergySocketHop: 20,

		SyncWindowCycles: 2000,

		ClockHz: 1e9,
	}
}

// NUMAConfig returns the paper's configuration scaled out to a two-level
// topology: cores split contiguously across sockets, with cross-socket
// transfers and remote-homed DRAM fills priced by the hop fields.
func NUMAConfig(cores, sockets int) Config {
	c := DefaultConfig(cores)
	c.Sockets = sockets
	return c
}

func (c *Config) validate() error {
	switch {
	case c.Cores < 1 || c.Cores > core.MaxCores:
		return errConfig("Cores must be in [1, core.MaxCores]")
	case c.Sockets < 0 || c.Sockets > c.Cores:
		return errConfig("Sockets must be in [0, Cores]")
	case c.Sockets > 1 && c.Cores%c.Sockets != 0:
		return errConfig("Sockets must divide Cores")
	case c.MemBytes <= 0:
		return errConfig("MemBytes must be positive")
	case c.L1Bytes <= 0 || c.L1Ways <= 0:
		return errConfig("L1 geometry must be positive")
	case c.L2Bytes < c.L1Bytes || c.L2Ways <= 0:
		return errConfig("L2 must be at least as large as L1 (inclusive hierarchy)")
	case c.MaxTags <= 0:
		return errConfig("MaxTags must be positive")
	case c.ClockHz <= 0:
		return errConfig("ClockHz must be positive")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "machine: invalid config: " + string(e) }
