package machine

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Lax clock synchronization, after Graphite: worker threads that run ahead
// of the slowest active core by more than SyncWindowCycles park (in host
// time) until it catches up. This keeps the interleaving density of
// simulated cores proportional to simulated time rather than to host
// parallelism, so contention effects scale with the simulated core count
// even when the host has fewer CPUs.
//
// Ahead-threads park on a condition variable instead of spin-yielding:
// with dozens of simulated cores multiplexed onto few host CPUs, spinning
// waiters would steal exactly the host cycles the laggard needs (an
// O(cores²) tax). Two structures keep the host cost of the discipline low:
//
//   - The active-set minimum is maintained as a shared monotonic-in-practice
//     cached lower bound (clockSync.gmin) that every core reads lock-free on
//     its fast path. A core only rescans the published clocks when its own
//     clock runs past gmin+window, and one core's rescan refreshes the bound
//     for all cores — the per-op O(cores) scan of the old design is gone.
//   - The wakeup path is sharded per core: each thread parks on its own
//     condition variable, and a progressing thread signals only the cores
//     whose parked flag is set, under that core's private mutex. Distinct
//     waiter/waker pairs never serialize on a shared lock, so a 64-core
//     simulation on a many-CPU host no longer convoys on one clock mutex.
//
// Only *active* threads participate: a thread must call SetActive(true)
// before issuing measured work and SetActive(false) after (the workload
// harness does this). Inactive threads neither stall nor hold others back.

// GatePoint classifies a scheduling point reported to a Gate.
type GatePoint int

const (
	// GateOp is the boundary of a memory/tag operation — the same
	// granularity at which the op-level schedule fuzzer injects.
	GateOp GatePoint = iota
	// GateInternal is a point inside one operation, between directory-lock
	// acquisitions: after each tagged line of a multi-line AddTag, and
	// after a VAS/IAS commit computes its lock set but before it acquires
	// the directory locks. These orderings exist in the coherence protocol
	// but are unreachable from the op boundary.
	GateInternal
)

// Gate is the cycle-level scheduler hook (internal/schedexplore). When a
// gate is installed, active threads report every scheduling point to it
// instead of parking on the lax clock; Step may block the calling
// goroutine to serialize execution under an explored schedule. Step is
// always called with no directory locks held, so a parked core never
// blocks another core's coherence transactions.
type Gate interface {
	Step(core int, point GatePoint, cycles uint64)
}

// Access is one shared-resource touch attributed to the segment a core
// executes between two gate points. While a gate is installed, every
// thread records the accesses of its current segment; the controller
// drains them at the next scheduling point with TakeSegmentAccesses. The
// footprints drive the schedule explorer's independence relation (DPOR)
// and let counterexamples name the contended line directly.
//
// Write marks accesses that can change what a remote core observes:
// stores, CAS (which acquires exclusivity even on failure), the VAS/IAS
// target, and IAS's invalidation of the tagged lines. Read-class accesses
// cover loads, tagging (AddTag/RemoveTag bookkeeping), and the
// validation reads of the tag set — a Validate or commit outcome depends
// on remote writes to every tagged line, so those lines are part of the
// segment's footprint even though validation itself reads only the local
// eviction latch.
type Access struct {
	Line  core.Line
	Write bool
}

// AllocLine is the pseudo-resource recorded for shared-space allocation.
// Bump allocation is order-sensitive (two segments that both allocate
// return different addresses in different schedules), so allocating
// segments never commute: the explorer must treat any two of them as
// dependent.
const AllocLine = ^core.Line(0)

// recAccess records one shared access of the current segment. It costs a
// single predictable branch when no gate is installed.
func (t *Thread) recAccess(l core.Line, write bool) {
	if t.m.gate != nil {
		t.segAcc = append(t.segAcc, Access{Line: l, Write: write})
	}
}

// recTagSetReads records the current tag set as read-class accesses: the
// outcome of a validation (Validate, VAS, IAS) is decided by remote
// writes to any tagged line, which set this core's eviction latch.
func (t *Thread) recTagSetReads() {
	if t.m.gate == nil {
		return
	}
	for _, l := range t.tags {
		t.segAcc = append(t.segAcc, Access{Line: l})
	}
}

// TakeSegmentAccesses appends the accesses recorded since the previous
// scheduling point to dst and resets the segment log. It must only be
// called by the installed gate's controller while this core is parked at
// (or past) a scheduling point; the gate's park/grant channel operations
// order the log's writes before the controller's read.
func (t *Thread) TakeSegmentAccesses(dst []Access) []Access {
	dst = append(dst, t.segAcc...)
	t.segAcc = t.segAcc[:0]
	return dst
}

// SetGate installs (or removes, with nil) the machine's scheduler gate.
// Only call while quiescent.
func (m *Machine) SetGate(g Gate) { m.gate = g }

// clockSync is the machine-wide lax synchronization state. Per-core park
// state (the sharded wakeup path) lives on each Thread.
type clockSync struct {
	// mu serializes slow-path minimum rescans and active-set changes, so
	// a rescan's view of the active set is consistent and gmin updates
	// cannot race an enrolment that lowers the bound.
	mu sync.Mutex
	// gmin is a shared lower bound on the minimum published clock over
	// active threads, read lock-free on the throttle fast path. Published
	// clocks only advance, so a scanned minimum stays a valid lower bound
	// until an enrolment lowers it (which happens under mu).
	gmin atomic.Uint64
}

// BeginEpoch aligns every core's simulated clock to the current maximum
// (as if all cores idled at a barrier) and must be called, quiescent,
// before a measured parallel phase. Without alignment, a core that did
// setup work (e.g. prefilling) would start the phase far ahead of the
// others and the lax synchronization would serialize the epoch's start.
func (m *Machine) BeginEpoch() {
	var maxC uint64
	for _, t := range m.threads {
		if t.stats.Cycles > maxC {
			maxC = t.stats.Cycles
		}
	}
	for _, t := range m.threads {
		t.stats.Cycles = maxC
		t.pubCycles.Store(maxC)
		t.lastBcast = maxC
	}
	m.clock.gmin.Store(maxC)
}

// SetActive enrols or withdraws this thread from lax clock
// synchronization. While active, the thread's simulated clock is kept
// within Config.SyncWindowCycles of the slowest active core.
func (t *Thread) SetActive(on bool) {
	cs := &t.m.clock
	cs.mu.Lock()
	if on {
		my := t.stats.Cycles
		t.pubCycles.Store(my)
		// Enrolment can only lower the active minimum; fold the new
		// clock into the shared bound before anyone fast-paths past it.
		if my < cs.gmin.Load() {
			cs.gmin.Store(my)
		}
	}
	t.active.Store(on)
	cs.mu.Unlock()
	// Parked cores must re-evaluate: withdrawal removes this thread from
	// the minimum; enrolment can only lower it.
	t.wakeParked()
}

// throttle stalls the calling thread while it is too far ahead of the
// slowest active core. Called at the top of every memory/tag operation,
// outside all directory locks.
func (t *Thread) throttle() {
	if g := t.m.gate; g != nil {
		if t.active.Load() {
			g.Step(t.id, GateOp, t.stats.Cycles)
		}
		return
	}
	window := t.m.cfg.SyncWindowCycles
	if window == 0 || !t.active.Load() {
		return
	}
	my := t.stats.Cycles
	t.pubCycles.Store(my)
	// Progress notification: wake parked cores every half window of our
	// own advancement (they may be blocked on us being the minimum).
	if my-t.lastBcast >= window/2 {
		t.lastBcast = my
		t.wakeParked()
	}
	// Fast path: gmin is a lower bound on the active-set minimum, so
	// being within the window of gmin proves being within the window of
	// the true minimum. One lock-free load replaces the O(cores) scan.
	if my <= t.m.clock.gmin.Load()+window {
		return
	}
	t.throttleSlow(my, window)
}

// throttleSlow parks the thread until the slowest active core catches up.
func (t *Thread) throttleSlow(my, window uint64) {
	if my <= t.refreshMin()+window {
		return
	}
	// Wake every other parked core once before sleeping: this thread's own
	// clock publication may be exactly the advance a parked core that is
	// now the active minimum is waiting for, and without this hand-off the
	// last two runnable cores could park back-to-back and deadlock. A core
	// signalled here that is *not* within its window simply re-checks and
	// waits again (below) without signalling anyone — waking others on
	// every loop iteration would let two ahead-cores re-wake each other in
	// a host-time busy loop while the laggard starves.
	t.wakeParked()
	t.parkMu.Lock()
	t.parked.Store(true)
	// Re-scan after publishing the parked flag (sequentially consistent
	// atomics): a waker that advanced its clock before our flag store is
	// observed by this scan, and one that advanced after it observes the
	// flag and signals under parkMu — which it cannot acquire until Wait
	// releases it — so no wakeup is lost. scanMin starts from our own
	// clock, so the globally slowest core always breaks out immediately.
	for {
		if m := t.scanMin(); my <= m+window {
			break
		}
		t.parkCond.Wait()
	}
	t.parked.Store(false)
	t.parkMu.Unlock()
}

// refreshMin rescans the active-set minimum under the clock mutex and
// publishes it as the shared fast-path bound. Serializing rescans keeps
// them rare: one core's rescan refreshes gmin for every core.
func (t *Thread) refreshMin() uint64 {
	cs := &t.m.clock
	cs.mu.Lock()
	min := t.scanMin()
	if min > cs.gmin.Load() {
		cs.gmin.Store(min)
	}
	cs.mu.Unlock()
	return min
}

// wakeParked signals every other parked core. The parked flag is read
// lock-free; a core observed parked is signalled under its own park
// mutex, so distinct waiter/waker pairs never contend on a shared lock.
func (t *Thread) wakeParked() {
	for _, o := range t.m.threads {
		if o == t || !o.parked.Load() {
			continue
		}
		o.parkMu.Lock()
		o.parkCond.Signal()
		o.parkMu.Unlock()
	}
}

// gateInternal reports an intra-operation scheduling point to the gate,
// if one is installed. Called with no directory locks held.
func (t *Thread) gateInternal() {
	if g := t.m.gate; g != nil && t.active.Load() {
		g.Step(t.id, GateInternal, t.stats.Cycles)
	}
}

// scanMin returns the minimum published clock over active threads (or this
// thread's own clock when it is the only active one).
func (t *Thread) scanMin() uint64 {
	min := t.stats.Cycles
	for _, o := range t.m.threads {
		if o == t || !o.active.Load() {
			continue
		}
		if c := o.pubCycles.Load(); c < min {
			min = c
		}
	}
	return min
}
