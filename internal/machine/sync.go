package machine

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Lax clock synchronization, after Graphite: worker threads that run ahead
// of the slowest active core by more than SyncWindowCycles park (in host
// time) until it catches up. This keeps the interleaving density of
// simulated cores proportional to simulated time rather than to host
// parallelism, so contention effects scale with the simulated core count
// even when the host has fewer CPUs.
//
// Ahead-threads park on a condition variable instead of spin-yielding:
// with dozens of simulated cores multiplexed onto few host CPUs, spinning
// waiters would steal exactly the host cycles the laggard needs (an
// O(cores²) tax). Two structures keep the host cost of the discipline low:
//
//   - The active-set minimum is hierarchical: per-shard lower bounds (up
//     to clockShardCores cores per shard) are folded into a shared cached
//     bound (clockSync.gmin) that every core reads lock-free on its fast
//     path. A core only rescans published clocks when its own clock runs
//     past gmin+window, and that rescan touches its own shard plus the
//     fold — O(cores/shards + shards), not O(cores) — while still
//     refreshing the bound for all cores.
//   - The wakeup path is sharded per core: each thread parks on its own
//     condition variable, and a progressing thread signals only the cores
//     whose parked flag is set, under that core's private mutex. Distinct
//     waiter/waker pairs never serialize on a shared lock, and machine-wide
//     plus per-shard parked counts make the common nobody-is-parked
//     broadcast a single atomic load rather than an O(cores) flag scan.
//
// Only *active* threads participate: a thread must call SetActive(true)
// before issuing measured work and SetActive(false) after (the workload
// harness does this). Inactive threads neither stall nor hold others back.

// GatePoint classifies a scheduling point reported to a Gate.
type GatePoint int

const (
	// GateOp is the boundary of a memory/tag operation — the same
	// granularity at which the op-level schedule fuzzer injects.
	GateOp GatePoint = iota
	// GateInternal is a point inside one operation, between directory-lock
	// acquisitions: after each tagged line of a multi-line AddTag, and
	// after a VAS/IAS commit computes its lock set but before it acquires
	// the directory locks. These orderings exist in the coherence protocol
	// but are unreachable from the op boundary.
	GateInternal
)

// Gate is the cycle-level scheduler hook (internal/schedexplore). When a
// gate is installed, active threads report every scheduling point to it
// instead of parking on the lax clock; Step may block the calling
// goroutine to serialize execution under an explored schedule. Step is
// always called with no directory locks held, so a parked core never
// blocks another core's coherence transactions.
type Gate interface {
	Step(core int, point GatePoint, cycles uint64)
}

// Access is one shared-resource touch attributed to the segment a core
// executes between two gate points. While a gate is installed, every
// thread records the accesses of its current segment; the controller
// drains them at the next scheduling point with TakeSegmentAccesses. The
// footprints drive the schedule explorer's independence relation (DPOR)
// and let counterexamples name the contended line directly.
//
// Write marks accesses that can change what a remote core observes:
// stores, CAS (which acquires exclusivity even on failure), the VAS/IAS
// target, and IAS's invalidation of the tagged lines. Read-class accesses
// cover loads, tagging (AddTag/RemoveTag bookkeeping), and the
// validation reads of the tag set — a Validate or commit outcome depends
// on remote writes to every tagged line, so those lines are part of the
// segment's footprint even though validation itself reads only the local
// eviction latch.
type Access struct {
	Line  core.Line
	Write bool
}

// AllocLine is the pseudo-resource recorded for shared-space allocation.
// Bump allocation is order-sensitive (two segments that both allocate
// return different addresses in different schedules), so allocating
// segments never commute: the explorer must treat any two of them as
// dependent.
const AllocLine = ^core.Line(0)

// recAccess records one shared access of the current segment. It costs a
// single predictable branch when no gate is installed.
func (t *Thread) recAccess(l core.Line, write bool) {
	if t.m.gate != nil {
		t.segAcc = append(t.segAcc, Access{Line: l, Write: write})
	}
}

// recTagSetReads records the current tag set as read-class accesses: the
// outcome of a validation (Validate, VAS, IAS) is decided by remote
// writes to any tagged line, which set this core's eviction latch.
func (t *Thread) recTagSetReads() {
	if t.m.gate == nil {
		return
	}
	for _, l := range t.tags {
		t.segAcc = append(t.segAcc, Access{Line: l})
	}
}

// TakeSegmentAccesses appends the accesses recorded since the previous
// scheduling point to dst and resets the segment log. It must only be
// called by the installed gate's controller while this core is parked at
// (or past) a scheduling point; the gate's park/grant channel operations
// order the log's writes before the controller's read.
func (t *Thread) TakeSegmentAccesses(dst []Access) []Access {
	dst = append(dst, t.segAcc...)
	t.segAcc = t.segAcc[:0]
	return dst
}

// SetGate installs (or removes, with nil) the machine's scheduler gate.
// Only call while quiescent.
func (m *Machine) SetGate(g Gate) { m.gate = g }

// clockShardCores is the number of cores per lax-clock shard. 64 keeps a
// shard rescan at most one cache line of published clocks wide and gives a
// 512-core machine 8 shards.
const clockShardCores = 64

// clockShard holds one shard's slice of the active-minimum hierarchy.
type clockShard struct {
	// mu serializes rescans of this shard's active set; enrolment and
	// withdrawal update membership under it, so a shard rescan's view is
	// consistent without the machine-wide mutex.
	mu sync.Mutex
	// smin is a lower bound on the minimum published clock over this
	// shard's active threads (MaxUint64 when none). It goes stale-low as
	// clocks advance — always safe — and is re-tightened by shard rescans.
	smin atomic.Uint64
	// parked counts this shard's threads currently parked, so a waker can
	// skip whole shards.
	parked atomic.Int64
}

// clockSync is the machine-wide lax synchronization state, sharded so that
// no per-operation path scans all cores: the fast path reads gmin, the
// slow path rescans one shard (O(cores/shards)) and folds the per-shard
// minima. Per-core park state (the sharded wakeup path) lives on each
// Thread.
type clockSync struct {
	// mu serializes gmin updates (folds of the shard minima and enrolment
	// lowering), so a fold cannot race an enrolment into publishing a
	// bound above the true minimum.
	mu sync.Mutex
	// gmin is a shared lower bound on the minimum published clock over
	// active threads, read lock-free on the throttle fast path. Published
	// clocks only advance, so a folded minimum stays a valid lower bound
	// until an enrolment lowers it (which happens under mu).
	gmin atomic.Uint64
	// shards holds the per-shard minima and parked counts.
	shards []clockShard
	// parked counts parked threads machine-wide: the wakeParked fast-out
	// is one load when nothing is parked, instead of an O(cores) flag scan
	// on every half-window broadcast.
	parked atomic.Int64
}

// fold returns the minimum over the per-shard lower bounds. Each smin is a
// valid lower bound on its shard's active minimum, so the fold is a valid
// lower bound on the global one. The caller holds cs.mu when the result is
// published to gmin.
func (cs *clockSync) fold() uint64 {
	min := ^uint64(0)
	for i := range cs.shards {
		if s := cs.shards[i].smin.Load(); s < min {
			min = s
		}
	}
	return min
}

// BeginEpoch aligns every core's simulated clock to the current maximum
// (as if all cores idled at a barrier) and must be called, quiescent,
// before a measured parallel phase. Without alignment, a core that did
// setup work (e.g. prefilling) would start the phase far ahead of the
// others and the lax synchronization would serialize the epoch's start.
func (m *Machine) BeginEpoch() {
	var maxC uint64
	for _, t := range m.threads {
		if t.stats.Cycles > maxC {
			maxC = t.stats.Cycles
		}
	}
	for _, t := range m.threads {
		t.stats.Cycles = maxC
		t.pubCycles.Store(maxC)
		t.lastBcast = maxC
	}
	for si := range m.clock.shards {
		m.clock.shards[si].smin.Store(m.shardScan(si))
	}
	m.clock.gmin.Store(maxC)
}

// shardScan returns the minimum published clock over shard si's active
// threads, or MaxUint64 when the shard has no active thread. Callers that
// publish the result to smin must hold the shard's mutex.
func (m *Machine) shardScan(si int) uint64 {
	lo := si * clockShardCores
	hi := lo + clockShardCores
	if hi > len(m.threads) {
		hi = len(m.threads)
	}
	min := ^uint64(0)
	for _, o := range m.threads[lo:hi] {
		if !o.active.Load() {
			continue
		}
		if c := o.pubCycles.Load(); c < min {
			min = c
		}
	}
	return min
}

// SetActive enrols or withdraws this thread from lax clock
// synchronization. While active, the thread's simulated clock is kept
// within Config.SyncWindowCycles of the slowest active core.
func (t *Thread) SetActive(on bool) {
	cs := &t.m.clock
	sh := &cs.shards[t.cshard]
	sh.mu.Lock()
	if on {
		t.pubCycles.Store(t.stats.Cycles)
	}
	t.active.Store(on)
	// Membership changed: re-tighten this shard's bound exactly.
	sh.smin.Store(t.m.shardScan(t.cshard))
	sh.mu.Unlock()

	cs.mu.Lock()
	min := cs.fold()
	if on {
		// Enrolment can only lower the active minimum; fold the new clock
		// into the shared bound before anyone fast-paths past it. (The fold
		// of other shards' stale-low bounds may sit below the true minimum;
		// publishing something lower than necessary is always safe.)
		if min < cs.gmin.Load() {
			cs.gmin.Store(min)
		}
	} else if min > cs.gmin.Load() {
		// Withdrawal may raise the minimum; publish eagerly so remaining
		// cores fast-path instead of rescanning.
		cs.gmin.Store(min)
	}
	cs.mu.Unlock()
	// Parked cores must re-evaluate: withdrawal removes this thread from
	// the minimum; enrolment can only lower it.
	t.wakeParked()
}

// throttle stalls the calling thread while it is too far ahead of the
// slowest active core. Called at the top of every memory/tag operation,
// outside all directory locks.
func (t *Thread) throttle() {
	if g := t.m.gate; g != nil {
		if t.active.Load() {
			g.Step(t.id, GateOp, t.stats.Cycles)
		}
		return
	}
	window := t.m.cfg.SyncWindowCycles
	if window == 0 || !t.active.Load() {
		return
	}
	my := t.stats.Cycles
	t.pubCycles.Store(my)
	// Progress notification: wake parked cores every half window of our
	// own advancement (they may be blocked on us being the minimum), and
	// opportunistically re-tighten our shard's bound so folds stay fresh.
	if my-t.lastBcast >= window/2 {
		t.lastBcast = my
		t.refreshShardQuick()
		t.wakeParked()
	}
	// Fast path: gmin is a lower bound on the active-set minimum, so
	// being within the window of gmin proves being within the window of
	// the true minimum. One lock-free load replaces the O(cores) scan.
	// (Subtraction form: an empty active set publishes MaxUint64.)
	g := t.m.clock.gmin.Load()
	if g >= my || my-g <= window {
		return
	}
	t.throttleSlow(my, window)
}

// refreshShardQuick re-tightens this thread's shard minimum if the shard
// mutex is free; freshness is best-effort here (refreshMin does it
// unconditionally), so skipping under contention beats convoying.
func (t *Thread) refreshShardQuick() {
	sh := &t.m.clock.shards[t.cshard]
	if !sh.mu.TryLock() {
		return
	}
	sh.smin.Store(t.m.shardScan(t.cshard))
	sh.mu.Unlock()
}

// throttleSlow parks the thread until the slowest active core catches up.
func (t *Thread) throttleSlow(my, window uint64) {
	if m := t.refreshMin(); m >= my || my-m <= window {
		return
	}
	// Wake every other parked core once before sleeping: this thread's own
	// clock publication may be exactly the advance a parked core that is
	// now the active minimum is waiting for, and without this hand-off the
	// last two runnable cores could park back-to-back and deadlock. A core
	// signalled here that is *not* within its window simply re-checks and
	// waits again (below) without signalling anyone — waking others on
	// every loop iteration would let two ahead-cores re-wake each other in
	// a host-time busy loop while the laggard starves.
	t.wakeParked()
	cs := &t.m.clock
	sh := &cs.shards[t.cshard]
	t.parkMu.Lock()
	t.parked.Store(true)
	// Publish the parked counts before the re-scan (sequentially
	// consistent atomics): a waker that advanced its clock before our
	// counter increments is observed by the scan below, and one that
	// advanced after it observes a non-zero count, finds our parked flag,
	// and signals under parkMu — which it cannot acquire until Wait
	// releases it — so no wakeup is lost.
	sh.parked.Add(1)
	cs.parked.Add(1)
	// Re-scan after publishing the parked state. scanMin is the exact
	// O(cores) minimum starting from our own clock, so the globally
	// slowest core always breaks out immediately — the sharded bounds are
	// only ever performance hints, never the parking decision.
	for {
		if m := t.scanMin(); m >= my || my-m <= window {
			break
		}
		t.parkCond.Wait()
	}
	t.parked.Store(false)
	sh.parked.Add(-1)
	cs.parked.Add(-1)
	t.parkMu.Unlock()
}

// refreshMin re-tightens this thread's shard bound exactly, folds the
// per-shard bounds into a fresh global lower bound, and publishes it as
// the shared fast-path bound. The rescan is O(cores/shards + shards)
// instead of the flat design's O(cores); one core's rescan refreshes gmin
// for every core.
func (t *Thread) refreshMin() uint64 {
	cs := &t.m.clock
	sh := &cs.shards[t.cshard]
	sh.mu.Lock()
	sh.smin.Store(t.m.shardScan(t.cshard))
	sh.mu.Unlock()

	cs.mu.Lock()
	min := cs.fold()
	if min > cs.gmin.Load() {
		cs.gmin.Store(min)
	}
	cs.mu.Unlock()
	return min
}

// wakeParked signals every other parked core. The machine-wide parked
// count makes the common no-waiter case one atomic load (every core calls
// this each half window); per-shard counts skip whole shards, and a core
// observed parked is signalled under its own park mutex, so distinct
// waiter/waker pairs never contend on a shared lock.
func (t *Thread) wakeParked() {
	cs := &t.m.clock
	if cs.parked.Load() == 0 {
		return
	}
	for si := range cs.shards {
		if cs.shards[si].parked.Load() == 0 {
			continue
		}
		lo := si * clockShardCores
		hi := lo + clockShardCores
		if hi > len(t.m.threads) {
			hi = len(t.m.threads)
		}
		for _, o := range t.m.threads[lo:hi] {
			if o == t || !o.parked.Load() {
				continue
			}
			o.parkMu.Lock()
			o.parkCond.Signal()
			o.parkMu.Unlock()
		}
	}
}

// gateInternal reports an intra-operation scheduling point to the gate,
// if one is installed. Called with no directory locks held.
func (t *Thread) gateInternal() {
	if g := t.m.gate; g != nil && t.active.Load() {
		g.Step(t.id, GateInternal, t.stats.Cycles)
	}
}

// scanMin returns the minimum published clock over active threads (or this
// thread's own clock when it is the only active one).
func (t *Thread) scanMin() uint64 {
	min := t.stats.Cycles
	for _, o := range t.m.threads {
		if o == t || !o.active.Load() {
			continue
		}
		if c := o.pubCycles.Load(); c < min {
			min = c
		}
	}
	return min
}
