package machine

import (
	"sync"
)

// Lax clock synchronization, after Graphite: worker threads that run ahead
// of the slowest active core by more than SyncWindowCycles park (in host
// time) until it catches up. This keeps the interleaving density of
// simulated cores proportional to simulated time rather than to host
// parallelism, so contention effects scale with the simulated core count
// even when the host has fewer CPUs.
//
// Ahead-threads park on a condition variable instead of spin-yielding:
// with dozens of simulated cores multiplexed onto few host CPUs, spinning
// waiters would steal exactly the host cycles the laggard needs (an
// O(cores²) tax). Progressing threads broadcast every half window, so
// waiters wake a bounded number of times per window.
//
// Only *active* threads participate: a thread must call SetActive(true)
// before issuing measured work and SetActive(false) after (the workload
// harness does this). Inactive threads neither stall nor hold others back.

// GatePoint classifies a scheduling point reported to a Gate.
type GatePoint int

const (
	// GateOp is the boundary of a memory/tag operation — the same
	// granularity at which the op-level schedule fuzzer injects.
	GateOp GatePoint = iota
	// GateInternal is a point inside one operation, between directory-lock
	// acquisitions: after each tagged line of a multi-line AddTag, and
	// after a VAS/IAS commit computes its lock set but before it acquires
	// the directory locks. These orderings exist in the coherence protocol
	// but are unreachable from the op boundary.
	GateInternal
)

// Gate is the cycle-level scheduler hook (internal/schedexplore). When a
// gate is installed, active threads report every scheduling point to it
// instead of parking on the lax clock; Step may block the calling
// goroutine to serialize execution under an explored schedule. Step is
// always called with no directory locks held, so a parked core never
// blocks another core's coherence transactions.
type Gate interface {
	Step(core int, point GatePoint, cycles uint64)
}

// SetGate installs (or removes, with nil) the machine's scheduler gate.
// Only call while quiescent.
func (m *Machine) SetGate(g Gate) { m.gate = g }

type clockSync struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func (cs *clockSync) init() { cs.cond = sync.NewCond(&cs.mu) }

// BeginEpoch aligns every core's simulated clock to the current maximum
// (as if all cores idled at a barrier) and must be called, quiescent,
// before a measured parallel phase. Without alignment, a core that did
// setup work (e.g. prefilling) would start the phase far ahead of the
// others and the lax synchronization would serialize the epoch's start.
func (m *Machine) BeginEpoch() {
	var maxC uint64
	for _, t := range m.threads {
		if t.stats.Cycles > maxC {
			maxC = t.stats.Cycles
		}
	}
	for _, t := range m.threads {
		t.stats.Cycles = maxC
		t.pubCycles.Store(maxC)
		t.minCache = 0
		t.lastBcast = maxC
	}
}

// SetActive enrols or withdraws this thread from lax clock
// synchronization. While active, the thread's simulated clock is kept
// within Config.SyncWindowCycles of the slowest active core.
func (t *Thread) SetActive(on bool) {
	if on {
		t.pubCycles.Store(t.stats.Cycles)
	}
	t.active.Store(on)
	// Waiters blocked on this thread's clock must re-evaluate: withdrawal
	// removes it from the minimum; enrolment can only lower the minimum.
	t.m.clock.mu.Lock()
	t.m.clock.cond.Broadcast()
	t.m.clock.mu.Unlock()
}

// throttle stalls the calling thread while it is too far ahead of the
// slowest active core. Called at the top of every memory/tag operation,
// outside all directory locks.
func (t *Thread) throttle() {
	if g := t.m.gate; g != nil {
		if t.active.Load() {
			g.Step(t.id, GateOp, t.stats.Cycles)
		}
		return
	}
	window := t.m.cfg.SyncWindowCycles
	if window == 0 || !t.active.Load() {
		return
	}
	my := t.stats.Cycles
	t.pubCycles.Store(my)
	// Progress notification: wake waiters every half window of our own
	// advancement (they may be blocked on us being the minimum).
	if my-t.lastBcast >= window/2 {
		t.lastBcast = my
		t.m.clock.mu.Lock()
		t.m.clock.cond.Broadcast()
		t.m.clock.mu.Unlock()
	}
	// Fast path: the cached minimum only ever grows, so if we are within
	// the window of the last minimum we saw, we are within it now.
	if my <= t.minCache+window {
		return
	}
	min := t.scanMin()
	t.minCache = min
	if my <= min+window {
		return
	}
	// Park until the minimum catches up. Broadcast once first: this
	// thread's own clock publication above may be exactly what another
	// parked thread is waiting for, and without a broadcast here a cycle
	// of threads can park right after publishing and deadlock (each
	// holding the advance the next one needs).
	cs := &t.m.clock
	cs.mu.Lock()
	cs.cond.Broadcast()
	for {
		min := t.scanMin()
		t.minCache = min
		if my <= min+window {
			break
		}
		cs.cond.Wait()
	}
	cs.mu.Unlock()
}

// gateInternal reports an intra-operation scheduling point to the gate,
// if one is installed. Called with no directory locks held.
func (t *Thread) gateInternal() {
	if g := t.m.gate; g != nil && t.active.Load() {
		g.Step(t.id, GateInternal, t.stats.Cycles)
	}
}

// scanMin returns the minimum published clock over active threads (or this
// thread's own clock when it is the only active one).
func (t *Thread) scanMin() uint64 {
	min := t.stats.Cycles
	for _, o := range t.m.threads {
		if o == t || !o.active.Load() {
			continue
		}
		if c := o.pubCycles.Load(); c < min {
			min = c
		}
	}
	return min
}
