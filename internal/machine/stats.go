package machine

import (
	"fmt"
	"sync/atomic"
)

// CoreStats accumulates per-core event counts, cycles, and energy. Plain
// fields are owned by the core's goroutine; atomic fields may be bumped by
// remote cores during coherence actions. Aggregate snapshots must only be
// taken while the workload is quiescent.
type CoreStats struct {
	Loads  uint64
	Stores uint64
	CASes  uint64

	L1Hits      uint64 // accesses served by L1
	L2Hits      uint64 // accesses served by local L2
	RemoteFills uint64 // misses served by a remote cache
	MemFills    uint64 // misses served by simulated DRAM

	InvalidationsSent uint64 // invalidation messages this core caused
	Writebacks        uint64 // dirty lines displaced from this core
	SocketHops        uint64 // cross-socket messages/transfers this core paid for (Sockets > 1)

	TagAdds           uint64
	TagRemoves        uint64
	TagOverflows      uint64 // AddTag rejections due to MaxTags
	Validates         uint64
	ValidateFails     uint64
	VASAttempts       uint64
	VASFails          uint64
	IASAttempts       uint64
	IASFails          uint64
	SpuriousEvictions uint64 // own capacity evictions of tagged lines

	Cycles uint64
	Energy float64

	// Remote-bumped counters.
	InvalidationsReceived atomic.Uint64
	RemoteTagEvictions    atomic.Uint64 // this core's tags killed by remote writes
}

// Stats is an aggregate snapshot over all cores.
type Stats struct {
	Ops uint64 // caller-defined completed operations (set by harness)

	Loads, Stores, CASes uint64

	L1Hits, L2Hits, RemoteFills, MemFills uint64

	InvalidationsSent, InvalidationsReceived uint64
	Writebacks                               uint64
	SocketHops                               uint64

	TagAdds, TagRemoves, TagOverflows     uint64
	Validates, ValidateFails              uint64
	VASAttempts, VASFails                 uint64
	IASAttempts, IASFails                 uint64
	SpuriousEvictions, RemoteTagEvictions uint64

	MaxCycles   uint64 // slowest core, defines simulated wall time
	TotalCycles uint64
	Energy      float64
}

// Accesses returns the total number of cache accesses, counted at the
// level that served them. This includes the accesses performed by tag
// operations (AddTag brings lines into L1), so it can exceed
// Loads+Stores+CASes.
func (s Stats) Accesses() uint64 { return s.L1Hits + s.L2Hits + s.RemoteFills + s.MemFills }

// Misses returns the number of accesses not served by L1.
func (s Stats) Misses() uint64 { return s.L2Hits + s.RemoteFills + s.MemFills }

// MissRate returns the fraction of accesses that missed in L1.
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// SimSeconds converts the slowest core's cycles to simulated seconds.
func (s Stats) SimSeconds(clockHz float64) float64 {
	if clockHz <= 0 {
		return 0
	}
	return float64(s.MaxCycles) / clockHz
}

// Snapshot aggregates per-core stats. Only call while no core is issuing
// operations; under the memtagcheck build tag a non-quiescent call panics.
func (m *Machine) Snapshot() Stats {
	if debugGuard {
		if n := m.issuing.Load(); n != 0 {
			panic(fmt.Sprintf("machine: Snapshot while %d operation(s) in flight", n))
		}
	}
	var s Stats
	for _, t := range m.threads {
		cs := &t.stats
		s.Loads += cs.Loads
		s.Stores += cs.Stores
		s.CASes += cs.CASes
		s.L1Hits += cs.L1Hits
		s.L2Hits += cs.L2Hits
		s.RemoteFills += cs.RemoteFills
		s.MemFills += cs.MemFills
		s.InvalidationsSent += cs.InvalidationsSent
		s.InvalidationsReceived += cs.InvalidationsReceived.Load()
		s.Writebacks += cs.Writebacks
		s.SocketHops += cs.SocketHops
		s.TagAdds += cs.TagAdds
		s.TagRemoves += cs.TagRemoves
		s.TagOverflows += cs.TagOverflows
		s.Validates += cs.Validates
		s.ValidateFails += cs.ValidateFails
		s.VASAttempts += cs.VASAttempts
		s.VASFails += cs.VASFails
		s.IASAttempts += cs.IASAttempts
		s.IASFails += cs.IASFails
		s.SpuriousEvictions += cs.SpuriousEvictions
		s.RemoteTagEvictions += cs.RemoteTagEvictions.Load()
		if cs.Cycles > s.MaxCycles {
			s.MaxCycles = cs.Cycles
		}
		s.TotalCycles += cs.Cycles
		s.Energy += cs.Energy
	}
	return s
}

// CoreStatsOf returns a pointer to core id's stats for inspection in tests.
// The caller must not race with the core's goroutine.
func (m *Machine) CoreStatsOf(id int) *CoreStats { return &m.threads[id].stats }
