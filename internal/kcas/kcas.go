// Package kcas implements the practical multi-word compare-and-swap of
// Harris, Fraser and Pratt (DISC 2002) over simulated memory — descriptors,
// RDCSS and helping — plus the paper's tag-accelerated variant (Section 1,
// "General Tagging"): tagging the target set gives a cheap fail-fast
// pre-check and a lock-free multi-word snapshot, removing coherence traffic
// from the failure path.
//
// Words managed through this package must keep their top two value bits
// clear (below 1<<62): the implementation reserves bit 63 to mark KCAS
// descriptors and bit 62 to mark RDCSS descriptors stored in place of
// values during an operation.
package kcas

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/reclaim"
)

// Descriptor pointer marks.
const (
	kcasMark  uint64 = 1 << 63
	rdcssMark uint64 = 1 << 62
	// MaxValue is the largest value a kCAS-managed word may hold.
	MaxValue uint64 = rdcssMark - 1
)

// Operation status values.
const (
	stUndecided uint64 = 0
	stSucceeded uint64 = 1
	stFailed    uint64 = 2
)

// KCAS descriptor layout (words).
const (
	kStatus  = 0
	kCount   = 1
	kEntries = 2
	kEntryW  = 3 // addr, old, new
)

// RDCSS descriptor layout (words): a1 (control/status address), o1
// (expected control value), a2 (data address), o2 (expected data), n2 (new
// data).
const (
	rA1 = 0
	rO1 = 1
	rA2 = 2
	rO2 = 3
	rN2 = 4
	rW  = 5
)

func isKCAS(v uint64) bool  { return v&kcasMark != 0 }
func isRDCSS(v uint64) bool { return v&rdcssMark != 0 }

// Manager issues kCAS operations against one simulated memory.
type Manager struct {
	mem core.Memory
	// TagOverflowRetries counts TaggedKCAS calls whose target set exceeded
	// the tag budget and were retried on the bare software path. Tags are
	// advisory: overflow must degrade to the untagged kCAS, never to a
	// spurious failure.
	TagOverflowRetries atomic.Uint64

	// Descriptor reclamation (optional, SetReclaim). Both descriptor kinds
	// are retire-safe once their pointer has been removed from every shared
	// word: any thread still dereferencing one obtained the pointer before
	// that removal, hence was in flight at retire time, and the domain's
	// reservations block the free until it exits. The one chain the era
	// cannot order — a laggard helper installing an RDCSS descriptor that
	// names an already-retired KCAS descriptor's status word, read by a
	// later op — is effect-free: by free time the RDCSS pointer is gone
	// from shared memory, so the reader's commit/rollback CAS always fails.
	dom  *reclaim.Domain
	rdp  *reclaim.Pool // RDCSS descriptors (rW words)
	kdp  *reclaim.Pool // KCAS descriptors (DescriptorWords(maxK) words)
	maxK int
}

// New creates a manager.
func New(mem core.Memory) *Manager { return &Manager{mem: mem} }

// DescriptorWords returns the object size of a KCAS descriptor holding up
// to k entries — the size to give the descriptor pool passed to SetReclaim.
func DescriptorWords(k int) int { return kEntries + k*kEntryW }

// RDCSSWords is the object size of an RDCSS descriptor — the size of the
// first pool passed to SetReclaim.
const RDCSSWords = rW

// SetReclaim wires descriptor reclamation: rdcssPool serves RDCSS
// descriptors (object size rW) and kcasPool serves KCAS descriptors (object
// size DescriptorWords(maxK); operations beyond maxK entries panic). Both
// pools must share one domain, attached to the backend so operations
// announce. Only call while quiescent, before operations.
func (g *Manager) SetReclaim(rdcssPool, kcasPool *reclaim.Pool) {
	if rdcssPool.Words() != rW {
		panic("kcas: RDCSS pool object size must be rW words")
	}
	k := (kcasPool.Words() - kEntries) / kEntryW
	if k < 1 {
		panic("kcas: KCAS pool too small for one entry (size with DescriptorWords)")
	}
	if rdcssPool.Domain() != kcasPool.Domain() {
		panic("kcas: descriptor pools must share one domain")
	}
	g.dom, g.rdp, g.kdp, g.maxK = rdcssPool.Domain(), rdcssPool, kcasPool, k
}

// enter / exit bracket an operation that may dereference descriptors, so
// retired descriptors outlive every helper that could still reach them.
func (g *Manager) enter(th core.Thread) {
	if g.dom != nil {
		g.dom.Handle(th.ID()).Enter()
	}
}

func (g *Manager) exit(th core.Thread) {
	if g.dom != nil {
		g.dom.Handle(th.ID()).Exit()
	}
}

// Entry is one word of a multi-word CAS.
type Entry struct {
	Addr core.Addr
	Old  uint64
	New  uint64
}

// Read returns the logical value of a kCAS-managed word, helping any
// operation found in progress there.
func (g *Manager) Read(th core.Thread, a core.Addr) uint64 {
	g.enter(th)
	defer g.exit(th)
	for {
		v := th.Load(a)
		switch {
		case isRDCSS(v):
			g.completeRDCSS(th, core.Addr(v&^rdcssMark))
		case isKCAS(v):
			g.helpKCAS(th, core.Addr(v&^kcasMark))
		default:
			return v
		}
	}
}

// KCAS atomically replaces each entry's Old with its New iff every entry
// currently holds Old. Entries are processed in address order; duplicate
// addresses are not allowed. Values must not exceed MaxValue.
func (g *Manager) KCAS(th core.Thread, entries []Entry) bool {
	if len(entries) == 0 {
		return true
	}
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Addr < es[j].Addr })
	for i, e := range es {
		if e.Old > MaxValue || e.New > MaxValue {
			panic("kcas: value exceeds MaxValue")
		}
		if i > 0 && es[i-1].Addr == e.Addr {
			panic("kcas: duplicate address")
		}
	}
	g.enter(th)
	defer g.exit(th)
	var d core.Addr
	if g.kdp != nil {
		if len(es) > g.maxK {
			panic("kcas: entry count exceeds the reclaim pool's descriptor size")
		}
		d = g.kdp.Alloc(th)
	} else {
		d = th.Alloc(kEntries + len(es)*kEntryW)
	}
	th.Store(d.Plus(kStatus), stUndecided)
	th.Store(d.Plus(kCount), uint64(len(es)))
	for i, e := range es {
		base := kEntries + i*kEntryW
		th.Store(d.Plus(base+0), uint64(e.Addr))
		th.Store(d.Plus(base+1), e.Old)
		th.Store(d.Plus(base+2), e.New)
	}
	ok := g.helpKCAS(th, d)
	if g.kdp != nil {
		// Phase 2 removed the descriptor pointer from every entry word
		// before helpKCAS returned, so only helpers already in flight can
		// still reach d — exactly what the era condition waits out. The
		// status word is stable (decided) by now, so Retire's same-value
		// stores race with nothing.
		g.kdp.Retire(th, d)
	}
	return ok
}

// helpKCAS drives the operation at descriptor d to completion. Any thread
// may help.
func (g *Manager) helpKCAS(th core.Thread, d core.Addr) bool {
	dptr := uint64(d) | kcasMark
	n := int(th.Load(d.Plus(kCount)))

	// Phase 1: install the descriptor into every entry via RDCSS, which
	// refuses to install once the status is decided.
	if th.Load(d.Plus(kStatus)) == stUndecided {
	install:
		for i := 0; i < n; i++ {
			base := kEntries + i*kEntryW
			addr := core.Addr(th.Load(d.Plus(base + 0)))
			old := th.Load(d.Plus(base + 1))
			for {
				r := g.rdcss(th, d.Plus(kStatus), stUndecided, addr, old, dptr)
				if r == dptr {
					break // already installed (possibly by a helper)
				}
				if isKCAS(r) {
					g.helpKCAS(th, core.Addr(r&^kcasMark))
					continue
				}
				if r != old {
					th.CAS(d.Plus(kStatus), stUndecided, stFailed)
					break install
				}
				break // installed by us
			}
			if th.Load(d.Plus(kStatus)) != stUndecided {
				break
			}
		}
		th.CAS(d.Plus(kStatus), stUndecided, stSucceeded)
	}

	// Phase 2: replace the descriptor with the outcome values.
	succeeded := th.Load(d.Plus(kStatus)) == stSucceeded
	for i := 0; i < n; i++ {
		base := kEntries + i*kEntryW
		addr := core.Addr(th.Load(d.Plus(base + 0)))
		old := th.Load(d.Plus(base + 1))
		val := old
		if succeeded {
			val = th.Load(d.Plus(base + 2))
		}
		th.CAS(addr, dptr, val)
	}
	return succeeded
}

// rdcss performs the restricted double-compare single-swap: store n2 into
// a2 iff a2 holds o2 AND the word at a1 holds o1. It returns the value
// found at a2 (o2 on success; callers compare against dptr/old to decide).
func (g *Manager) rdcss(th core.Thread, a1 core.Addr, o1 uint64, a2 core.Addr, o2, n2 uint64) uint64 {
	var rd core.Addr
	if g.rdp != nil {
		rd = g.rdp.Alloc(th)
	} else {
		rd = th.Alloc(rW)
	}
	th.Store(rd.Plus(rA1), uint64(a1))
	th.Store(rd.Plus(rO1), o1)
	th.Store(rd.Plus(rA2), uint64(a2))
	th.Store(rd.Plus(rO2), o2)
	th.Store(rd.Plus(rN2), n2)
	rptr := uint64(rd) | rdcssMark
	for {
		if th.CAS(a2, o2, rptr) {
			g.completeRDCSS(th, rd)
			// completeRDCSS guarantees a2 no longer holds rptr; helpers
			// that read it earlier are in flight, so the retire pipeline
			// holds rd until they exit.
			g.retireRDCSS(th, rd)
			return o2
		}
		v := th.Load(a2)
		if isRDCSS(v) {
			g.completeRDCSS(th, core.Addr(v&^rdcssMark))
			continue
		}
		if v == o2 {
			// The CAS lost a race (another descriptor was installed and
			// resolved in between) but the word holds o2 again, e.g. after a
			// failed operation's rollback. Returning o2 here would be
			// indistinguishable from the success path above, and helpKCAS
			// would treat the entry as installed without any descriptor in
			// place — committing a k-CAS that skips this word. Retry instead,
			// so a returned value always differs from o2.
			continue
		}
		if g.rdp != nil {
			g.rdp.FreePrivate(th, rd) // never installed: no thread saw rptr
		}
		return v
	}
}

func (g *Manager) retireRDCSS(th core.Thread, rd core.Addr) {
	if g.rdp != nil {
		g.rdp.Retire(th, rd)
	}
}

// completeRDCSS resolves an installed RDCSS descriptor: commit n2 if the
// control word still holds o1, otherwise roll back to o2.
func (g *Manager) completeRDCSS(th core.Thread, rd core.Addr) {
	a1 := core.Addr(th.Load(rd.Plus(rA1)))
	o1 := th.Load(rd.Plus(rO1))
	a2 := core.Addr(th.Load(rd.Plus(rA2)))
	o2 := th.Load(rd.Plus(rO2))
	n2 := th.Load(rd.Plus(rN2))
	rptr := uint64(rd) | rdcssMark
	if th.Load(a1) == o1 {
		th.CAS(a2, rptr, n2)
	} else {
		th.CAS(a2, rptr, o2)
	}
}
