package kcas

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

func TestKCASBasic(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	a, b := mem.Alloc(1), mem.Alloc(1)
	th.Store(a, 1)
	th.Store(b, 2)

	if !g.KCAS(th, []Entry{{a, 1, 10}, {b, 2, 20}}) {
		t.Fatal("uncontended 2-CAS failed")
	}
	if g.Read(th, a) != 10 || g.Read(th, b) != 20 {
		t.Fatal("2-CAS did not write both words")
	}
	if g.KCAS(th, []Entry{{a, 1, 99}, {b, 20, 99}}) {
		t.Fatal("2-CAS with one stale expectation succeeded")
	}
	if g.Read(th, a) != 10 || g.Read(th, b) != 20 {
		t.Fatal("failed 2-CAS left residue")
	}
}

func TestKCASEmptyAndSingle(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	if !g.KCAS(th, nil) {
		t.Fatal("empty kCAS should trivially succeed")
	}
	a := mem.Alloc(1)
	if !g.KCAS(th, []Entry{{a, 0, 5}}) || g.Read(th, a) != 5 {
		t.Fatal("1-CAS failed")
	}
}

func TestKCASDuplicateAddressPanics(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	a := mem.Alloc(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate address accepted")
		}
	}()
	g.KCAS(th, []Entry{{a, 0, 1}, {a, 0, 2}})
}

func TestKCASValueRangePanics(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	a := mem.Alloc(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range value accepted")
		}
	}()
	g.KCAS(th, []Entry{{a, 0, MaxValue + 1}})
}

func TestReadHelpsInProgress(t *testing.T) {
	// After a committed kCAS, plain loads may still see descriptors briefly
	// mid-operation; Read must always return a logical value.
	mem := vtags.New(1<<20, 2)
	g := New(mem)
	th := mem.Thread(0)
	a := mem.Alloc(1)
	for i := uint64(0); i < 50; i++ {
		if !g.KCAS(th, []Entry{{a, i, i + 1}}) {
			t.Fatalf("kCAS %d failed", i)
		}
		if v := g.Read(th, a); v != i+1 {
			t.Fatalf("Read = %d, want %d", v, i+1)
		}
	}
}

// The classic torture test: concurrent k-word increments over disjoint
// random subsets; every word's final value must equal the number of
// successful operations that included it.
func TestKCASConcurrentAtomicity(t *testing.T) {
	const workers, words, per, k = 8, 16, 150, 4
	mem := vtags.New(8<<20, workers)
	g := New(mem)
	addrs := make([]core.Addr, words)
	for i := range addrs {
		addrs[i] = mem.Alloc(1)
	}
	hits := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hits[w] = make([]int64, words)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			rng := rand.New(rand.NewSource(int64(w + 77)))
			for i := 0; i < per; i++ {
				idxs := rng.Perm(words)[:k]
				for {
					entries := make([]Entry, k)
					for j, idx := range idxs {
						old := g.Read(th, addrs[idx])
						entries[j] = Entry{addrs[idx], old, old + 1}
					}
					if g.KCAS(th, entries) {
						for _, idx := range idxs {
							hits[w][idx]++
						}
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	th := mem.Thread(0)
	for i := range addrs {
		var want int64
		for w := 0; w < workers; w++ {
			want += hits[w][i]
		}
		if got := g.Read(th, addrs[i]); got != uint64(want) {
			t.Fatalf("word %d = %d, want %d", i, got, want)
		}
	}
}

func TestTaggedKCASFailsFastWithoutWrites(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	g := New(m)
	th := m.Thread(0)
	a, b := m.Alloc(1), m.Alloc(1)
	th.Store(a, 1)
	th.Store(b, 2)

	before := m.Snapshot()
	if g.TaggedKCAS(th, []Entry{{a, 99, 100}, {b, 2, 3}}) {
		t.Fatal("tagged kCAS with stale expectation succeeded")
	}
	after := m.Snapshot()
	// Fail-fast property: no stores or CASes were issued.
	if after.Stores != before.Stores || after.CASes != before.CASes {
		t.Fatal("failed tagged kCAS wrote to shared memory")
	}
	if g.Read(th, a) != 1 || g.Read(th, b) != 2 {
		t.Fatal("failed tagged kCAS changed values")
	}
	if !g.TaggedKCAS(th, []Entry{{a, 1, 100}, {b, 2, 3}}) {
		t.Fatal("valid tagged kCAS failed")
	}
	if g.Read(th, a) != 100 || g.Read(th, b) != 3 {
		t.Fatal("tagged kCAS did not commit")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	// Writers keep two words equal (move both together with 2-CAS); the
	// tagged snapshot must never observe them unequal.
	const writers = 3
	mem := vtags.New(8<<20, writers+1)
	g := New(mem)
	a, b := mem.Alloc(1), mem.Alloc(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				va := g.Read(th, a)
				vb := g.Read(th, b)
				if va == vb {
					g.KCAS(th, []Entry{{a, va, va + 1}, {b, vb, vb + 1}})
				}
			}
		}(mem.Thread(w))
	}

	th := mem.Thread(writers)
	consistent := 0
	for i := 0; i < 2000; i++ {
		if vals, ok := g.Snapshot(th, []core.Addr{a, b}, 64); ok {
			if vals[0] != vals[1] {
				close(stop)
				wg.Wait()
				t.Fatalf("snapshot observed torn pair: %v", vals)
			}
			consistent++
		}
	}
	close(stop)
	wg.Wait()
	if consistent == 0 {
		t.Fatal("no snapshot ever validated")
	}
}

func TestSnapshotDoubleCollect(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	a, b := mem.Alloc(1), mem.Alloc(1)
	th.Store(a, 7)
	th.Store(b, 9)
	vals := g.SnapshotDoubleCollect(th, []core.Addr{a, b})
	if vals[0] != 7 || vals[1] != 9 {
		t.Fatalf("double collect = %v", vals)
	}
}
