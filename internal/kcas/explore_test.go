package kcas

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/schedexplore"
)

// TestExploreLinearizableTaggedKCAS drives the tag-accelerated kCAS through
// the cycle-level schedule explorer on the machine backend: the controller
// serializes the cores, enumerates interleavings at op boundaries and the
// intra-operation gate points (per-line AddTag, pre-lock commit), and
// injects targeted tag evictions — which force the pre-check onto its
// spurious-failure path mid-operation. Every execution's history must
// linearize against the packed multi-register model.
func TestExploreLinearizableTaggedKCAS(t *testing.T) {
	const threads, opsPer = 3, 10
	seed := int64(31)
	newSetup := func() schedexplore.Setup {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 4 << 20
		m := machine.New(cfg)
		g := New(m)
		addrs := make([]core.Addr, kcasWords)
		for i := range addrs {
			addrs[i] = m.Alloc(1)
		}
		rec := history.NewRecorder(threads, opsPer)
		return schedexplore.Setup{
			Machine: m,
			Workers: threads,
			Body: func(w int, th core.Thread) {
				sh := rec.Shard(w)
				rng := rand.New(rand.NewSource(seed + int64(w)*7919 + 1))
				for n := 0; n < opsPer; n++ {
					if rng.Intn(2) == 0 {
						i := uint64(rng.Intn(kcasWords))
						idx := sh.Begin(history.OpRead, i, 0)
						v := g.Read(th, addrs[i])
						sh.End(idx, true, v)
						continue
					}
					i := rng.Intn(kcasWords)
					j := rng.Intn(kcasWords - 1)
					if j >= i {
						j++
					}
					idx := sh.Begin(history.OpCAS, uint64(i)<<8|uint64(j), 0)
					for {
						oldI, oldJ := g.Read(th, addrs[i]), g.Read(th, addrs[j])
						if g.TaggedKCAS(th, []Entry{
							{Addr: addrs[i], Old: oldI, New: oldI + 1},
							{Addr: addrs[j], Old: oldJ, New: oldJ + 1},
						}) {
							sh.End(idx, true, packPair(oldI, oldJ))
							break
						}
					}
				}
			},
			Check: func() error {
				out := linearizability.Check(kcasModel(), rec.Events())
				if out.Inconclusive {
					return fmt.Errorf("checker inconclusive after %d ops", out.Ops)
				}
				if !out.OK {
					return fmt.Errorf("history not linearizable:\n%s", out.Explain())
				}
				return nil
			},
		}
	}
	for _, mode := range []schedexplore.Mode{schedexplore.RandomWalk, schedexplore.PCT, schedexplore.StrategyDPOR} {
		res := schedexplore.Explore(newSetup, schedexplore.Config{
			Mode:         mode,
			Seed:         seed,
			Executions:   5,
			MaxDecisions: 2000,
			EvictPerMil:  100,
		})
		if res.Failure != nil {
			t.Fatalf("mode %s found a violation:\n%s", mode, res.Failure)
		}
	}
}

// TestDPORExhaustiveTaggedKCAS is the CI explore-lane workload: one
// double-increment kCAS racing an atomic register read on the shared
// pair. DPOR must exhaust the space — every Mazurkiewicz class visited,
// every execution's history linearizable against the packed
// multi-register model. (Two racing kCAS writers conflict at nearly every
// gate point, so their schedule tree is effectively the unreduced
// interleaving space; the reader opponent keeps exhaustion tractable
// while still crossing the kCAS lock/validate windows.) Retries are
// bounded because a kCAS can only fail while its opponent has operations
// left — and the reader never writes.
func TestDPORExhaustiveTaggedKCAS(t *testing.T) {
	const threads = 2
	newSetup := func() schedexplore.Setup {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 4 << 20
		m := machine.New(cfg)
		g := New(m)
		addrs := []core.Addr{m.Alloc(1), m.Alloc(1)}
		rec := history.NewRecorder(threads, 4)
		return schedexplore.Setup{
			Machine: m,
			Workers: threads,
			Body: func(w int, th core.Thread) {
				sh := rec.Shard(w)
				if w == 0 {
					idx := sh.Begin(history.OpCAS, 0<<8|1, 0)
					oldI, oldJ := g.Read(th, addrs[0]), g.Read(th, addrs[1])
					if !g.TaggedKCAS(th, []Entry{
						{Addr: addrs[0], Old: oldI, New: oldI + 1},
						{Addr: addrs[1], Old: oldJ, New: oldJ + 1},
					}) {
						// The reader opponent never writes, so the kCAS
						// cannot fail validation.
						panic("kCAS failed against a read-only opponent")
					}
					sh.End(idx, true, packPair(oldI, oldJ))
					return
				}
				for n := 0; n < 1; n++ {
					i := uint64(n % 2)
					idx := sh.Begin(history.OpRead, i, 0)
					sh.End(idx, true, g.Read(th, addrs[i]))
				}
			},
			Check: func() error {
				out := linearizability.Check(kcasModel(), rec.Events())
				if out.Inconclusive {
					return fmt.Errorf("checker inconclusive after %d ops", out.Ops)
				}
				if !out.OK {
					return fmt.Errorf("history not linearizable:\n%s", out.Explain())
				}
				return nil
			},
		}
	}
	res := schedexplore.Explore(newSetup, schedexplore.Config{
		Mode:         schedexplore.StrategyDPOR,
		Executions:   500000,
		MaxDecisions: 3000,
	})
	if res.Failure != nil {
		t.Fatalf("DPOR found a violation:\n%s", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("DPOR did not exhaust the space: %d executions (%d truncated, %d sleep-blocked)",
			res.Executions, res.Truncated, res.SleepBlocked)
	}
	t.Logf("exhausted in %d executions (%d sleep-blocked), %d interleaving classes",
		res.Executions, res.SleepBlocked, res.Classes())
}
