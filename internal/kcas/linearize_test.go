package kcas

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

// kcasWords is the number of kCAS-managed words under test. Each lives on
// its own cache line (Alloc is line-aligned) so tagging and coherence
// pressure hit distinct lines. Values stay below 1<<16 so the whole
// machine state packs into one uint64 for the checker.
const kcasWords = 4

func field(s uint64, i uint64) uint64      { return (s >> (16 * i)) & 0xffff }
func setField(s, i, v uint64) uint64       { return (s &^ (0xffff << (16 * i))) | (v&0xffff)<<(16*i) }
func packPair(a, b uint64) uint64          { return a<<16 | b&0xffff }
func unpackPair(p uint64) (uint64, uint64) { return p >> 16, p & 0xffff }

// kcasModel is a 4x16-bit multi-register machine. OpRead(Key=i, Out=v)
// requires word i to hold v. OpCAS records one committed double-increment
// kCAS: Key packs the two word indices (i<<8|j), Out packs the old values
// the committed attempt observed (oldI<<16|oldJ); the step requires both
// words to hold those values and bumps each by one.
func kcasModel() linearizability.Model {
	return linearizability.Model{
		Name: "kcas-4x16",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpRead:
				return s, field(s, e.Key) == e.Out
			case history.OpCAS:
				i, j := e.Key>>8, e.Key&0xff
				oldI, oldJ := unpackPair(e.Out)
				if field(s, i) != oldI || field(s, j) != oldJ {
					return s, false
				}
				s = setField(s, i, oldI+1)
				return setField(s, j, oldJ+1), true
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			if e.Op == history.OpRead {
				return fmt.Sprintf("read(w%d) -> %d", e.Key, e.Out)
			}
			oldI, oldJ := unpackPair(e.Out)
			return fmt.Sprintf("kcas-inc(w%d:%d->%d, w%d:%d->%d)",
				e.Key>>8, oldI, oldI+1, e.Key&0xff, oldJ, oldJ+1)
		},
	}
}

// runKCASLinearize drives threads workers over kcasWords single-line words,
// mixing snapshot-style reads with two-word increment kCAS operations
// issued through op (plain KCAS or TaggedKCAS), and checks the recorded
// history against the packed multi-register model. Failed kCAS attempts
// are retried inside one recorded operation: TaggedKCAS may fail spuriously
// under tag eviction, so a bare failure is not a checkable outcome, but the
// eventually-committed attempt is.
func runKCASLinearize(t *testing.T, seed int64, tagged bool) {
	t.Helper()
	const threads, opsPer = 4, 160
	fuzz := schedfuzz.Default(seed)
	mem := schedfuzz.Wrap(vtags.New(1<<20, threads), fuzz)
	g := New(mem)
	addrs := make([]core.Addr, kcasWords)
	for i := range addrs {
		addrs[i] = mem.Alloc(1)
	}
	rec := history.NewRecorder(threads, opsPer)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := mem.Thread(w)
			sh := rec.Shard(w)
			rng := rand.New(rand.NewSource(seed + int64(w)*7919 + 1))
			for n := 0; n < opsPer; n++ {
				if rng.Intn(2) == 0 {
					i := uint64(rng.Intn(kcasWords))
					idx := sh.Begin(history.OpRead, i, 0)
					v := g.Read(th, addrs[i])
					sh.End(idx, true, v)
					continue
				}
				i := rng.Intn(kcasWords)
				j := rng.Intn(kcasWords - 1)
				if j >= i {
					j++
				}
				idx := sh.Begin(history.OpCAS, uint64(i)<<8|uint64(j), 0)
				var oldI, oldJ uint64
				for {
					oldI, oldJ = g.Read(th, addrs[i]), g.Read(th, addrs[j])
					es := []Entry{
						{Addr: addrs[i], Old: oldI, New: oldI + 1},
						{Addr: addrs[j], Old: oldJ, New: oldJ + 1},
					}
					var ok bool
					if tagged {
						ok = g.TaggedKCAS(th, es)
					} else {
						ok = g.KCAS(th, es)
					}
					if ok {
						break
					}
				}
				sh.End(idx, true, packPair(oldI, oldJ))
			}
		}()
	}
	wg.Wait()

	out := linearizability.Check(kcasModel(), rec.Events())
	if out.Inconclusive {
		t.Fatalf("checker inconclusive after %d ops", out.Ops)
	}
	if !out.OK {
		t.Fatalf("history not linearizable:\n%s", out.Explain())
	}
}

// TestLinearizableKCAS checks the baseline software kCAS.
func TestLinearizableKCAS(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		runKCASLinearize(t, seed, false)
	}
}

// TestLinearizableTaggedKCAS checks the tag-accelerated kCAS under forced
// spurious evictions, which exercise its fail-fast (and occasionally
// spuriously failing) pre-validation path.
func TestLinearizableTaggedKCAS(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		runKCASLinearize(t, seed, true)
	}
}
