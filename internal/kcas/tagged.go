package kcas

import "repro/internal/core"

// This file implements the paper's tag-accelerated kCAS extensions:
// fail-fast pre-validation of the target set and lock-free multi-word
// snapshots ("a thread can tag the set of locations, and then validate. If
// validation succeeds, the snapshot is valid... can be extended to speed up
// kCAS implementations").

// TaggedKCAS first tags every target line and checks the expected values.
// If any word already differs, the operation fails immediately — before a
// descriptor is allocated or any shared location written, so a doomed kCAS
// generates no coherence traffic (contrast OPTIK-style version locks, which
// acquire locks before discovering failure). Only if the tagged pre-check
// validates does it run the software kCAS.
//
// Tags are advisory, so a target set that does not fit the tag budget
// (AddTag overflow) is not a failure: the pre-check is skipped and the
// operation runs on the bare software path, exactly as if the hardware had
// no tags to offer (counted in TagOverflowRetries). A validation failure —
// a real or spurious eviction — still fails fast, since retrying the
// pre-check is cheap and the caller's read of the old values may be stale.
//
// It reports whether the kCAS committed. The thread's tag set is consumed.
func (g *Manager) TaggedKCAS(th core.Thread, entries []Entry) bool {
	committed, _ := g.TaggedKCASPath(th, entries)
	return committed
}

// TaggedKCASPath is TaggedKCAS, additionally reporting whether the
// operation ran on the bare path after tag-set overflow — harnesses record
// bare-path operations distinctly in histories.
func (g *Manager) TaggedKCASPath(th core.Thread, entries []Entry) (committed, bare bool) {
	th.ClearTagSet()
	ok, overflow := true, false
	for _, e := range entries {
		if !th.AddTag(e.Addr, core.WordSize) {
			ok, overflow = false, true
			break
		}
		if g.Read(th, e.Addr) != e.Old {
			ok = false
			break
		}
	}
	if ok {
		ok = th.Validate()
	}
	th.ClearTagSet()
	if overflow {
		g.TagOverflowRetries.Add(1)
		return g.KCAS(th, entries), true
	}
	if !ok {
		return false, false // fail fast: no writes, no descriptor
	}
	return g.KCAS(th, entries), false
}

// Snapshot returns an atomic snapshot of the logical values at addrs, taken
// by tagging every line, reading all values, and validating once: if no
// tagged line was invalidated, the reads happened at a common instant (the
// validation). It retries until validation succeeds or maxTries is
// exhausted, in which case ok is false (callers fall back to a software
// snapshot, e.g. a double-collect).
func (g *Manager) Snapshot(th core.Thread, addrs []core.Addr, maxTries int) (vals []uint64, ok bool) {
	vals = make([]uint64, len(addrs))
	for try := 0; try < maxTries; try++ {
		th.ClearTagSet()
		tagged := true
		for _, a := range addrs {
			if !th.AddTag(a, core.WordSize) {
				tagged = false
				break
			}
		}
		if !tagged {
			th.ClearTagSet()
			return nil, false // tag set cannot hold the request
		}
		for i, a := range addrs {
			vals[i] = g.Read(th, a)
		}
		if th.Validate() {
			th.ClearTagSet()
			return vals, true
		}
	}
	th.ClearTagSet()
	return nil, false
}

// SnapshotDoubleCollect is the software fallback snapshot: read the set
// twice and retry until both passes agree. It is the baseline the tagged
// snapshot is measured against; unlike Snapshot it can return a snapshot
// that was never instantaneously current under concurrent ABA writes, but
// for monotonic or descriptor-protected words it is the standard technique.
func (g *Manager) SnapshotDoubleCollect(th core.Thread, addrs []core.Addr) []uint64 {
	prev := make([]uint64, len(addrs))
	curr := make([]uint64, len(addrs))
	for i, a := range addrs {
		prev[i] = g.Read(th, a)
	}
	for {
		same := true
		for i, a := range addrs {
			curr[i] = g.Read(th, a)
			if curr[i] != prev[i] {
				same = false
			}
		}
		if same {
			return curr
		}
		prev, curr = curr, prev
	}
}
