package kcas

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

// TestTaggedKCASOverflowFallsBack pins the advisory-tag contract: a target
// set that exceeds the tag budget must run on the bare software path — and
// still commit or fail on the actual values — never fail spuriously.
// Before the bare-path retry, a 2-word TaggedKCAS under MaxTags(1) could
// not ever commit.
func TestTaggedKCASOverflowFallsBack(t *testing.T) {
	mem := vtags.New(1<<20, 1, vtags.WithMaxTags(1))
	g := New(mem)
	th := mem.Thread(0)
	a, b := mem.Alloc(1), mem.Alloc(1)
	th.Store(a, 10)
	th.Store(b, 20)

	es := []Entry{{Addr: a, Old: 10, New: 11}, {Addr: b, Old: 20, New: 21}}
	committed, bare := g.TaggedKCASPath(th, es)
	if !committed || !bare {
		t.Fatalf("overflowing TaggedKCAS: committed=%v bare=%v, want true/true", committed, bare)
	}
	if n := g.TagOverflowRetries.Load(); n != 1 {
		t.Fatalf("TagOverflowRetries = %d, want 1", n)
	}
	if v := g.Read(th, a); v != 11 {
		t.Fatalf("word a = %d after bare-path commit, want 11", v)
	}
	if v := g.Read(th, b); v != 21 {
		t.Fatalf("word b = %d after bare-path commit, want 21", v)
	}

	// The bare path still compares: a stale expected value past the
	// overflow point (the pre-check never reached it) must fail the kCAS.
	stale := []Entry{{Addr: a, Old: 11, New: 12}, {Addr: b, Old: 20, New: 22}}
	committed, bare = g.TaggedKCASPath(th, stale)
	if committed || !bare {
		t.Fatalf("stale overflowing TaggedKCAS: committed=%v bare=%v, want false/true", committed, bare)
	}
	if v := g.Read(th, a); v != 11 {
		t.Fatalf("word a = %d after failed kCAS, want 11", v)
	}

	// A fitting target set stays on the tagged path.
	one := []Entry{{Addr: a, Old: 11, New: 12}}
	committed, bare = g.TaggedKCASPath(th, one)
	if !committed || bare {
		t.Fatalf("fitting TaggedKCAS: committed=%v bare=%v, want true/false", committed, bare)
	}
	if th.TagCount() != 0 {
		t.Fatal("TaggedKCAS leaked tags")
	}
}

// TestLinearizableTaggedKCASUnderTagPressure is the MaxTags-pressure
// linearizability run: with a one-line tag budget every 2-word TaggedKCAS
// overflows onto the bare path, and the recorded history — bare-path
// operations marked via Arg — must still linearize against the packed
// multi-register model.
func TestLinearizableTaggedKCASUnderTagPressure(t *testing.T) {
	const threads, opsPer = 4, 120
	seed := int64(3)
	fuzz := schedfuzz.Default(seed)
	mem := schedfuzz.Wrap(vtags.New(1<<20, threads, vtags.WithMaxTags(1)), fuzz)
	g := New(mem)
	addrs := make([]core.Addr, kcasWords)
	for i := range addrs {
		addrs[i] = mem.Alloc(1)
	}
	rec := history.NewRecorder(threads, opsPer)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := mem.Thread(w)
			sh := rec.Shard(w)
			rng := rand.New(rand.NewSource(seed + int64(w)*7919 + 1))
			for n := 0; n < opsPer; n++ {
				if rng.Intn(2) == 0 {
					i := uint64(rng.Intn(kcasWords))
					idx := sh.Begin(history.OpRead, i, 0)
					v := g.Read(th, addrs[i])
					sh.End(idx, true, v)
					continue
				}
				i := rng.Intn(kcasWords)
				j := rng.Intn(kcasWords - 1)
				if j >= i {
					j++
				}
				idx := sh.Begin(history.OpCAS, uint64(i)<<8|uint64(j), 0)
				for {
					oldI, oldJ := g.Read(th, addrs[i]), g.Read(th, addrs[j])
					committed, bare := g.TaggedKCASPath(th, []Entry{
						{Addr: addrs[i], Old: oldI, New: oldI + 1},
						{Addr: addrs[j], Old: oldJ, New: oldJ + 1},
					})
					if committed {
						if bare {
							sh.SetArg(idx, 1)
						}
						sh.End(idx, true, packPair(oldI, oldJ))
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	if g.TagOverflowRetries.Load() == 0 {
		t.Fatal("no TaggedKCAS overflowed under MaxTags(1)")
	}
	bareOps := 0
	for _, e := range rec.Events() {
		if e.Op == history.OpCAS && e.Arg == 1 {
			bareOps++
		}
	}
	if bareOps == 0 {
		t.Fatal("no bare-path commit was recorded in the history")
	}
	out := linearizability.Check(kcasModel(), rec.Events())
	if out.Inconclusive {
		t.Fatalf("checker inconclusive after %d ops", out.Ops)
	}
	if !out.OK {
		t.Fatalf("history not linearizable (%d bare-path commits):\n%s", bareOps, out.Explain())
	}
}
