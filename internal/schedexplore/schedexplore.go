// Package schedexplore is a deterministic cycle-level schedule explorer
// for the machine backend. Where internal/schedfuzz perturbs real
// goroutine scheduling at the core.Memory operation boundary, this package
// takes scheduling over entirely: it installs a machine.Gate, serializes
// the simulated cores, and decides at every scheduling point — including
// the intra-operation points between directory-lock acquisitions — which
// core advances next and for how many simulated cycles. Every directory
// lock acquisition ordering and coherence message ordering is therefore
// reachable, and every execution is a pure function of the strategy's
// seed: replaying a seed reproduces the machine trace bit for bit.
//
// Four strategies are provided: a seeded random walk, PCT-style priority
// schedules (Burckhardt et al.'s probabilistic concurrency testing: random
// priorities with d-1 random priority-change points, good at low-depth
// bugs), a bounded exhaustive mode for small configurations (stateless
// depth-first enumeration of all schedules by choice-prefix replay), and
// dynamic partial-order reduction (StrategyDPOR, Flanagan & Godefroid)
// which visits one schedule per Mazurkiewicz trace: segments between gate
// points carry the lines they touched (machine.Access footprints), the
// driver computes happens-before between them, and only schedules that
// reverse an actual race are explored — sleep sets prune the rest.
// Strategies may additionally aim targeted spurious tag evictions
// (Thread.ForceTagEviction) at the scheduled core's held tags.
//
// A failing execution is reported as a Counterexample carrying the full
// decision sequence and the machine trace of the interleaving; Replay
// re-executes a decision sequence against a fresh Setup.
package schedexplore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
)

// Mode selects the exploration strategy.
type Mode int

const (
	// RandomWalk picks uniformly among runnable cores at every decision.
	RandomWalk Mode = iota
	// PCT runs probabilistic concurrency testing: random per-core
	// priorities, the highest-priority runnable core always runs, and
	// PCTDepth-1 random decision points demote the running core.
	PCT
	// Exhaustive enumerates every schedule depth-first by replaying choice
	// prefixes. Only feasible for small worker counts and short bodies;
	// bound it with Executions and MaxDecisions.
	Exhaustive
	// StrategyDPOR is Exhaustive with dynamic partial-order reduction: it
	// enumerates one schedule per Mazurkiewicz trace (equivalence class of
	// schedules under commuting adjacent independent segments), using the
	// segment footprints recorded by the machine backend to detect races
	// and persistent/sleep sets to prune provably redundant schedules. At
	// equal coverage (Result.ClassHashes) it needs far fewer executions
	// than Exhaustive. Deterministic and seed-independent; EvictPerMil is
	// ignored.
	StrategyDPOR
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case RandomWalk:
		return "random"
	case PCT:
		return "pct"
	case Exhaustive:
		return "exhaustive"
	case StrategyDPOR:
		return "dpor"
	}
	return "unknown"
}

// Config tunes one exploration.
type Config struct {
	// Mode selects the strategy (default RandomWalk).
	Mode Mode
	// Seed derives every decision; equal seeds (with an equal Setup)
	// reproduce traces and histories bit for bit.
	Seed int64
	// Executions bounds the number of schedules tried. 0 means 16 for
	// RandomWalk/PCT and 10000 for Exhaustive and StrategyDPOR (which
	// also stop on their own once the schedule space is exhausted).
	Executions int
	// MaxDecisions bounds one execution's scheduling decisions; an
	// execution that exceeds it (a livelock-bound schedule) is released to
	// run freely and counted in Result.Truncated. Default 200000.
	MaxDecisions int
	// WindowCycles is the scheduling quantum: a granted core runs until it
	// is WindowCycles of simulated time ahead of the grant before parking
	// again. 0 parks at every scheduling point (finest interleaving).
	WindowCycles uint64
	// OpBoundaryOnly restricts scheduling to operation boundaries,
	// reproducing the granularity of the op-level fuzzer. Used by tests to
	// prove the intra-operation points reach strictly more interleavings.
	OpBoundaryOnly bool
	// EvictPerMil is the per-decision probability (per mille) that the
	// strategy forces a spurious eviction of one of the scheduled core's
	// held tags. Ignored in Exhaustive and StrategyDPOR modes.
	EvictPerMil int
	// PCTDepth is PCT's d parameter (number of priority segments);
	// default 3.
	PCTDepth int
	// PCTLength is PCT's schedule-length estimate, from which the
	// priority-change points are drawn; default 512.
	PCTLength int
	// TraceLimit bounds the machine-trace tail retained per execution for
	// counterexamples; default 2048 events.
	TraceLimit int
}

// Setup is one explorable workload instance over a fresh machine.
// Exploration re-executes from scratch, so Explore takes a Setup factory;
// the factory must build machine, structure and any prefill
// deterministically (it runs before the gate is installed).
//
// Body must perform all shared-memory effects through gated operations on
// th (every machine memory/tag op gates); in particular it must not
// allocate shared state before its first memory operation, or the
// pre-barrier concurrent phase could perturb determinism.
type Setup struct {
	Machine *machine.Machine
	Workers int
	Body    func(w int, th core.Thread)
	// Check, when non-nil, runs after all workers finish; a non-nil error
	// fails the execution and produces a Counterexample.
	Check func() error
}

// Choice is one scheduling decision: which of the runnable cores ran,
// whether one of its tags was force-evicted first, and — filled in once
// the granted core reaches its next scheduling point — the shared lines
// the granted segment touched.
type Choice struct {
	Runnable []int // sorted runnable core ids at this decision
	Pick     int   // index into Runnable of the granted core
	EvictTag int   // tag index force-evicted on the granted core, or -1
	// Point is the kind of scheduling point the granted core was parked
	// at (operation boundary or intra-operation window).
	Point machine.GatePoint
	// Accesses is the footprint of the segment the granted core executed
	// after this decision, recorded by the machine backend and drained at
	// the core's next scheduling point. It drives DPOR's independence
	// relation and lets counterexamples name the contended lines.
	Accesses []machine.Access
}

// Core returns the granted core's id.
func (ch *Choice) Core() int { return ch.Runnable[ch.Pick] }

// Counterexample is a failing execution: the decision sequence that
// reaches it and the machine trace of the interleaving.
type Counterexample struct {
	Execution int
	Seed      int64
	Choices   []Choice
	Err       error
	// Trace is the tail of the machine trace (TraceLimit events);
	// TraceDropped counts earlier events that no longer fit.
	Trace        []machine.Event
	TraceDropped int
}

// String renders the counterexample: error, decision sequence, trace.
func (cx *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution %d (seed %d): %v\n", cx.Execution, cx.Seed, cx.Err)
	fmt.Fprintf(&b, "schedule (%d decisions):\n", len(cx.Choices))
	for i, ch := range cx.Choices {
		point := "op"
		if ch.Point == machine.GateInternal {
			point = "in"
		}
		fmt.Fprintf(&b, "  [%4d] core %d of %v @%s", i, ch.Core(), ch.Runnable, point)
		if ch.EvictTag >= 0 {
			fmt.Fprintf(&b, " (evict tag %d)", ch.EvictTag)
		}
		if len(ch.Accesses) > 0 {
			b.WriteString("  ")
			b.WriteString(FormatAccesses(ch.Accesses))
		}
		b.WriteByte('\n')
	}
	b.WriteString("machine trace")
	if cx.TraceDropped > 0 {
		fmt.Fprintf(&b, " (last %d events, %d dropped)", len(cx.Trace), cx.TraceDropped)
	}
	b.WriteString(":\n")
	b.WriteString(FormatTrace(cx.Trace))
	return b.String()
}

// FormatTrace renders machine events one per line.
func FormatTrace(events []machine.Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Result summarizes one exploration.
type Result struct {
	Executions int
	Decisions  int
	Truncated  int // executions released after exceeding MaxDecisions
	// SleepBlocked counts executions StrategyDPOR abandoned early because
	// every runnable core was in the sleep set — schedules proven
	// equivalent to one already explored. They are included in Executions
	// (they did run, released un-gated) but contribute no class hash.
	SleepBlocked int
	// Exhausted reports that Exhaustive or StrategyDPOR enumerated the
	// entire schedule space (for DPOR: one schedule per Mazurkiewicz
	// trace) within the bounds, with no truncated executions.
	Exhausted bool
	// TraceHashes holds one order-sensitive digest of the full machine
	// trace per execution; equal seeds yield equal digests.
	TraceHashes []uint64
	// ClassHashes holds one Mazurkiewicz-trace-class digest (Foata normal
	// form over the segment footprints) per completed execution —
	// truncated and sleep-blocked executions are skipped. Two schedules
	// that differ only by commuting adjacent independent segments hash
	// equal, so the number of distinct values measures interleaving-class
	// coverage comparably across modes.
	ClassHashes []uint64
	// Failure is the first failing execution, or nil.
	Failure *Counterexample
}

// Classes returns the number of distinct interleaving classes covered.
func (r *Result) Classes() int {
	seen := make(map[uint64]struct{}, len(r.ClassHashes))
	for _, h := range r.ClassHashes {
		seen[h] = struct{}{}
	}
	return len(seen)
}

func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.Executions == 0 {
		if c.Mode == Exhaustive || c.Mode == StrategyDPOR {
			c.Executions = 10000
		} else {
			c.Executions = 16
		}
	}
	if c.MaxDecisions == 0 {
		c.MaxDecisions = 200000
	}
	if c.PCTDepth == 0 {
		c.PCTDepth = 3
	}
	if c.PCTLength == 0 {
		c.PCTLength = 512
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 2048
	}
	return c
}

// Explore runs up to cfg.Executions schedules of fresh Setup instances and
// reports the first failure, if any.
func Explore(newSetup func() Setup, cfg Config) Result {
	c := cfg.withDefaults()
	var res Result
	prefix := []int{}
	var drv *dporDriver
	if c.Mode == StrategyDPOR {
		drv = newDPORDriver()
	}
	for exec := 0; exec < c.Executions; exec++ {
		var strat strategy
		execSeed := c.Seed + int64(exec)*1_000_003 + 1
		switch c.Mode {
		case PCT:
			strat = newPCTStrat(rand.New(rand.NewSource(execSeed)), c)
		case Exhaustive:
			strat = &exhaustStrat{prefix: prefix}
		case StrategyDPOR:
			strat = drv.newExec()
		default:
			strat = &randomStrat{rng: rand.New(rand.NewSource(execSeed)), evictPerMil: c.EvictPerMil}
		}
		rec := runOne(newSetup(), strat, c)
		res.Executions++
		res.Decisions += len(rec.choices)
		res.TraceHashes = append(res.TraceHashes, rec.traceHash)
		if rec.truncated {
			res.Truncated++
		}
		if rec.sleepBlocked {
			res.SleepBlocked++
		}
		if !rec.truncated && !rec.sleepBlocked {
			res.ClassHashes = append(res.ClassHashes, classHash(rec.choices))
		}
		if rec.err != nil {
			res.Failure = &Counterexample{
				Execution:    exec,
				Seed:         c.Seed,
				Choices:      rec.choices,
				Err:          rec.err,
				Trace:        rec.trace,
				TraceDropped: rec.traceDropped,
			}
			return res
		}
		switch c.Mode {
		case Exhaustive:
			es := strat.(*exhaustStrat)
			prefix = nextPrefix(es.choices, es.counts)
			if prefix == nil {
				res.Exhausted = true
				return res
			}
		case StrategyDPOR:
			if drv.finish(strat.(*dporExec), rec.truncated) {
				res.Exhausted = res.Truncated == 0
				return res
			}
		}
	}
	return res
}

// Replay re-executes a recorded decision sequence (e.g. a counterexample's
// Choices) against a fresh Setup and returns the resulting trace and check
// error.
func Replay(newSetup func() Setup, choices []Choice, cfg Config) ([]machine.Event, error) {
	c := cfg.withDefaults()
	rec := runOne(newSetup(), &replayStrat{choices: choices}, c)
	return rec.trace, rec.err
}

// strategy decides, at decision number d over the sorted runnable core
// set, which core to grant (an index into runnable) and whether to first
// force-evict one of its tags (a tag index, or -1). A pick of -1 abandons
// the execution as proven redundant (DPOR sleep-set block): the remaining
// cores are released to run un-gated.
type strategy interface {
	pick(d int, runnable []int, tagCount func(coreID int) int) (pick, evictTag int)
}

// segmentObserver is implemented by strategies that consume segment
// footprints. observe(d, fp) delivers the accesses of the segment granted
// at decision d; it is called before the next pick (the granted core has
// reached its next scheduling point, or finished, by then).
type segmentObserver interface {
	observe(d int, fp []machine.Access)
}

type randomStrat struct {
	rng         *rand.Rand
	evictPerMil int
}

func (s *randomStrat) pick(_ int, runnable []int, tagCount func(int) int) (int, int) {
	i := s.rng.Intn(len(runnable))
	return i, maybeEvict(s.rng, s.evictPerMil, runnable[i], tagCount)
}

type pctStrat struct {
	rng         *rand.Rand
	evictPerMil int
	prio        map[int]int
	nextLow     int
	change      map[int]bool
}

func newPCTStrat(rng *rand.Rand, c Config) *pctStrat {
	p := &pctStrat{rng: rng, evictPerMil: c.EvictPerMil, prio: map[int]int{}, nextLow: -1, change: map[int]bool{}}
	for i := 0; i < c.PCTDepth-1; i++ {
		p.change[rng.Intn(c.PCTLength)] = true
	}
	return p
}

func (p *pctStrat) best(runnable []int) int {
	for _, w := range runnable {
		if _, ok := p.prio[w]; !ok {
			// Lazily assign a random initial priority above all demotions.
			p.prio[w] = p.rng.Intn(1 << 20)
		}
	}
	bestIdx := 0
	for i, w := range runnable {
		if p.prio[w] > p.prio[runnable[bestIdx]] {
			bestIdx = i
		}
	}
	return bestIdx
}

func (p *pctStrat) pick(d int, runnable []int, tagCount func(int) int) (int, int) {
	bestIdx := p.best(runnable)
	if p.change[d] {
		p.prio[runnable[bestIdx]] = p.nextLow
		p.nextLow--
		bestIdx = p.best(runnable)
	}
	return bestIdx, maybeEvict(p.rng, p.evictPerMil, runnable[bestIdx], tagCount)
}

type exhaustStrat struct {
	prefix  []int
	counts  []int
	choices []int
}

func (s *exhaustStrat) pick(d int, runnable []int, _ func(int) int) (int, int) {
	c := 0
	if d < len(s.prefix) {
		c = s.prefix[d]
	}
	if c >= len(runnable) {
		c = len(runnable) - 1
	}
	s.counts = append(s.counts, len(runnable))
	s.choices = append(s.choices, c)
	return c, -1
}

// nextPrefix backtracks depth-first: the deepest decision with an
// unexplored alternative is advanced; nil means the space is exhausted.
func nextPrefix(choices, counts []int) []int {
	for i := len(choices) - 1; i >= 0; i-- {
		if choices[i]+1 < counts[i] {
			np := append([]int{}, choices[:i]...)
			return append(np, choices[i]+1)
		}
	}
	return nil
}

type replayStrat struct{ choices []Choice }

func (s *replayStrat) pick(d int, runnable []int, _ func(int) int) (int, int) {
	if d >= len(s.choices) {
		return 0, -1
	}
	ch := s.choices[d]
	p := ch.Pick
	if p >= len(runnable) {
		p = len(runnable) - 1
	}
	return p, ch.EvictTag
}

func maybeEvict(rng *rand.Rand, perMil, coreID int, tagCount func(int) int) int {
	if perMil <= 0 || rng.Intn(1000) >= perMil {
		return -1
	}
	n := tagCount(coreID)
	if n == 0 {
		return -1
	}
	return rng.Intn(n)
}

// arrival is one worker reaching a scheduling point (or finishing).
type arrival struct {
	core   int
	cycles uint64
	point  machine.GatePoint
	done   bool
}

// controller is the machine.Gate that serializes the simulated cores: a
// worker reaching a scheduling point outside its granted window parks
// until the decision loop grants it. All cross-goroutine state is
// synchronized through the arrive/grant channels, so controller-side
// actions on a parked core's thread (targeted evictions, tag counts)
// happen-before the core resumes.
type controller struct {
	window   uint64
	opOnly   bool
	free     atomic.Bool // releases all gating (execution abort)
	arrive   chan arrival
	grant    []chan struct{}
	grantEnd []uint64 // written by the decision loop before granting
}

// Step implements machine.Gate.
func (c *controller) Step(coreID int, point machine.GatePoint, cycles uint64) {
	if c.free.Load() {
		return
	}
	if c.opOnly && point != machine.GateOp {
		return
	}
	if cycles < c.grantEnd[coreID] {
		return // still inside the granted window
	}
	c.arrive <- arrival{core: coreID, cycles: cycles, point: point}
	<-c.grant[coreID]
}

type execRecord struct {
	choices      []Choice
	err          error
	truncated    bool
	sleepBlocked bool
	traceHash    uint64
	trace        []machine.Event
	traceDropped int
}

func runOne(s Setup, strat strategy, cfg Config) (rec execRecord) {
	m := s.Machine
	if s.Workers < 1 || s.Workers > m.NumThreads() {
		panic(fmt.Sprintf("schedexplore: %d workers over a %d-core machine", s.Workers, m.NumThreads()))
	}
	tr := newTraceCollector(cfg.TraceLimit)
	m.SetTracer(tr)
	c := &controller{
		window:   cfg.WindowCycles,
		opOnly:   cfg.OpBoundaryOnly,
		arrive:   make(chan arrival),
		grant:    make([]chan struct{}, s.Workers),
		grantEnd: make([]uint64, s.Workers),
	}
	for i := range c.grant {
		c.grant[i] = make(chan struct{})
	}
	m.SetGate(c)

	var wg sync.WaitGroup
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w).(*machine.Thread)
			th.SetActive(true)
			// Park before Body runs a single statement: code between gate
			// points (history recording, RNG draws) is then serialized from
			// the very start, which is what makes recorded histories — not
			// just machine traces — a pure function of the seed.
			c.Step(w, machine.GateOp, 0)
			s.Body(w, th)
			th.SetActive(false)
			c.arrive <- arrival{core: w, done: true}
		}(w)
	}

	// drain attributes the segment a core just finished executing to the
	// decision that granted it (safe: the arrive-channel receive orders
	// the core's segment log writes before this read). Pre-barrier
	// segments (no decision yet) hold no accesses and are discarded.
	lastDecision := make([]int, s.Workers)
	for i := range lastDecision {
		lastDecision[i] = -1
	}
	obs, _ := strat.(segmentObserver)
	drain := func(coreID int) {
		th := m.Thread(coreID).(*machine.Thread)
		d := lastDecision[coreID]
		if d < 0 {
			th.TakeSegmentAccesses(nil)
			return
		}
		rec.choices[d].Accesses = th.TakeSegmentAccesses(rec.choices[d].Accesses)
		if obs != nil {
			obs.observe(d, rec.choices[d].Accesses)
		}
	}

	// Initial barrier: every worker parks at its first scheduling point or
	// finishes outright. From here on exactly one worker runs at a time.
	parked := make(map[int]arrival, s.Workers)
	live := s.Workers
	collect := func() {
		for len(parked) < live {
			a := <-c.arrive
			drain(a.core)
			if a.done {
				live--
			} else {
				parked[a.core] = a
			}
		}
	}
	collect()

	// release lets every core run un-gated to completion: used for
	// livelock-bound schedules (truncation) and for DPOR sleep-set blocks
	// (the rest of the execution is proven redundant).
	release := func() {
		c.free.Store(true)
		for w := range parked {
			c.grant[w] <- struct{}{}
		}
		parked = map[int]arrival{}
		for live > 0 {
			a := <-c.arrive
			if a.done {
				live--
			} else {
				c.grant[a.core] <- struct{}{}
			}
		}
	}

	tagCount := func(coreID int) int { return m.Thread(coreID).(*machine.Thread).TagCount() }
	for live > 0 {
		if len(rec.choices) >= cfg.MaxDecisions {
			// Livelock-bound schedule: release every core and let the
			// workload drain un-gated (the structures are correct under
			// real concurrency, so it terminates).
			rec.truncated = true
			release()
			break
		}
		runnable := make([]int, 0, len(parked))
		for w := range parked {
			runnable = append(runnable, w)
		}
		sort.Ints(runnable)
		pick, evict := strat.pick(len(rec.choices), runnable, tagCount)
		if pick < 0 {
			rec.sleepBlocked = true
			release()
			break
		}
		w := runnable[pick]
		a := parked[w]
		delete(parked, w)
		if evict >= 0 {
			mt := m.Thread(w).(*machine.Thread)
			if evict < mt.TagCount() {
				mt.ForceTagEviction(mt.TaggedLine(evict))
			} else {
				evict = -1
			}
		}
		rec.choices = append(rec.choices, Choice{Runnable: runnable, Pick: pick, EvictTag: evict, Point: a.point})
		lastDecision[w] = len(rec.choices) - 1
		c.grantEnd[w] = a.cycles + c.window
		c.grant[w] <- struct{}{}
		// Only w runs now; collect its next point (or its exit).
		a2 := <-c.arrive
		drain(a2.core)
		if a2.done {
			live--
		} else {
			parked[a2.core] = a2
		}
	}
	wg.Wait()
	m.SetGate(nil)
	m.SetTracer(nil)
	rec.traceHash, rec.trace, rec.traceDropped = tr.snapshot()
	if s.Check != nil {
		rec.err = s.Check()
	}
	return rec
}

// traceCollector keeps an order-sensitive digest of the whole trace plus a
// bounded tail for counterexamples.
type traceCollector struct {
	mu    sync.Mutex
	hash  uint64
	total int
	limit int
	ring  []machine.Event
	next  int
}

func newTraceCollector(limit int) *traceCollector {
	return &traceCollector{hash: 14695981039346656037, limit: limit}
}

// Trace implements machine.Tracer.
func (c *traceCollector) Trace(e machine.Event) {
	c.mu.Lock()
	h := c.hash
	for _, v := range [5]uint64{uint64(e.Kind), uint64(int64(e.Core)), uint64(int64(e.Target)), e.Line, e.Cycle} {
		h = (h ^ v) * 1099511628211
	}
	c.hash = h
	c.total++
	if len(c.ring) < c.limit {
		c.ring = append(c.ring, e)
	} else {
		c.ring[c.next] = e
		c.next = (c.next + 1) % c.limit
	}
	c.mu.Unlock()
}

func (c *traceCollector) snapshot() (hash uint64, tail []machine.Event, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tail = append(tail, c.ring[c.next:]...)
	tail = append(tail, c.ring[:c.next]...)
	return c.hash, tail, c.total - len(tail)
}
