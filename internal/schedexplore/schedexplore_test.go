package schedexplore_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/schedexplore"
)

func smallMachine(cores int) *machine.Machine {
	cfg := machine.DefaultConfig(cores)
	cfg.MemBytes = 1 << 20
	return machine.New(cfg)
}

// listSetup builds a fresh HoH list workload: each worker runs a
// deterministic op sequence and appends its results to out[w]. The
// returned factory is deterministic, as Explore requires.
func listSetup(workers, ops int, out [][]bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(workers)
		s := list.NewHoH(m)
		th0 := m.Thread(0)
		for k := uint64(1); k <= 4; k++ {
			s.Insert(th0, k)
		}
		for w := range out {
			out[w] = out[w][:0]
		}
		return schedexplore.Setup{
			Machine: m,
			Workers: workers,
			Body: func(w int, th core.Thread) {
				for i := 0; i < ops; i++ {
					k := uint64(1 + (i*3+w)%8)
					var ok bool
					switch (i + w) % 3 {
					case 0:
						ok = s.Insert(th, k)
					case 1:
						ok = s.Delete(th, k)
					default:
						ok = s.Contains(th, k)
					}
					out[w] = append(out[w], ok)
				}
			},
		}
	}
}

// TestDeterministicReplayFromSeed is the acceptance-criterion determinism
// test: the same seed must reproduce the machine trace (order-sensitive
// digest over every event) and every operation outcome bit for bit, for
// each strategy.
func TestDeterministicReplayFromSeed(t *testing.T) {
	for _, mode := range []schedexplore.Mode{schedexplore.RandomWalk, schedexplore.PCT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			run := func() ([]uint64, [][]bool) {
				out := make([][]bool, 3)
				res := schedexplore.Explore(listSetup(3, 12, out), schedexplore.Config{
					Mode:        mode,
					Seed:        42,
					Executions:  3,
					EvictPerMil: 150,
				})
				if res.Failure != nil {
					t.Fatalf("unexpected failure: %v", res.Failure)
				}
				results := make([][]bool, len(out))
				for w := range out {
					results[w] = append([]bool(nil), out[w]...)
				}
				return res.TraceHashes, results
			}
			h1, r1 := run()
			h2, r2 := run()
			if !reflect.DeepEqual(h1, h2) {
				t.Fatalf("trace digests differ between identical seeded runs:\n%v\n%v", h1, h2)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("operation outcomes differ between identical seeded runs")
			}
		})
	}
}

// probeSetup is the schedule-sensitive directory-locking probe: worker 0
// issues one AddTag spanning two lines (two directory-lock acquisitions
// with a GateInternal point between them); worker 1 takes one scheduling
// slot and observes both lines' directory tagger masks. Observing
// (tagged, untagged) requires scheduling worker 1 *inside* worker 0's
// AddTag — an interleaving that does not exist at operation granularity.
func probeSetup(obs map[[2]bool]bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		wordsPerLine := core.LineSize / core.WordSize
		a := m.Alloc(2 * wordsPerLine)
		probe := m.Alloc(1)
		l1, l2 := a.Line(), core.Addr(uint64(a)+core.LineSize).Line()
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					th.AddTag(a, 2*core.LineSize)
					return
				}
				th.Load(probe) // the scheduling slot
				_, _, t1 := m.DebugLine(l1)
				_, _, t2 := m.DebugLine(l2)
				obs[[2]bool{!t1.Empty(), !t2.Empty()}] = true
			},
		}
	}
}

// TestExplorerReachesIntraOpInterleavings is the acceptance-criterion
// regression test: exhaustive exploration at operation granularity can
// never observe worker 0's AddTag half-applied, while cycle-level
// exploration provably reaches exactly that interleaving.
func TestExplorerReachesIntraOpInterleavings(t *testing.T) {
	mid := [2]bool{true, false}

	opObs := map[[2]bool]bool{}
	res := schedexplore.Explore(probeSetup(opObs), schedexplore.Config{
		Mode:           schedexplore.Exhaustive,
		OpBoundaryOnly: true,
	})
	if res.Failure != nil {
		t.Fatalf("probe failed: %v", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("op-boundary probe space not exhausted in %d executions", res.Executions)
	}
	if opObs[mid] {
		t.Fatalf("op-boundary exploration observed a half-applied AddTag; gate granularity is broken: %v", opObs)
	}

	cycleObs := map[[2]bool]bool{}
	res = schedexplore.Explore(probeSetup(cycleObs), schedexplore.Config{
		Mode: schedexplore.Exhaustive,
	})
	if res.Failure != nil {
		t.Fatalf("probe failed: %v", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("cycle-level probe space not exhausted in %d executions", res.Executions)
	}
	if !cycleObs[mid] {
		t.Fatalf("cycle-level exhaustive exploration never observed the half-applied AddTag; observations: %v", cycleObs)
	}
	// Strict superset: everything reachable at op granularity stays
	// reachable at cycle granularity.
	for o := range opObs {
		if !cycleObs[o] {
			t.Fatalf("op-boundary observation %v unreachable at cycle level", o)
		}
	}
}

// TestCounterexampleAndReplay forces a Check failure and verifies the
// counterexample carries the schedule and trace, and that Replay
// reproduces the identical interleaving.
func TestCounterexampleAndReplay(t *testing.T) {
	sentinel := errors.New("injected failure")
	var seen []uint64
	newSetup := func() schedexplore.Setup {
		m := smallMachine(2)
		a := m.Alloc(1)
		seen = nil
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				for i := 0; i < 3; i++ {
					th.Store(a, uint64(w*10+i))
					seen = append(seen, th.Load(a))
				}
			},
			Check: func() error { return fmt.Errorf("%w: %v", sentinel, seen) },
		}
	}
	res := schedexplore.Explore(newSetup, schedexplore.Config{Seed: 7, Executions: 1})
	if res.Failure == nil {
		t.Fatal("Check error did not surface as a counterexample")
	}
	cx := res.Failure
	if !errors.Is(cx.Err, sentinel) {
		t.Fatalf("counterexample error = %v", cx.Err)
	}
	if len(cx.Choices) == 0 || len(cx.Trace) == 0 {
		t.Fatalf("counterexample missing schedule (%d choices) or trace (%d events)", len(cx.Choices), len(cx.Trace))
	}
	if s := cx.String(); !strings.Contains(s, "schedule") || !strings.Contains(s, "machine trace") {
		t.Fatalf("counterexample rendering incomplete:\n%s", s)
	}

	trace, err := schedexplore.Replay(newSetup, cx.Choices, schedexplore.Config{})
	if !errors.Is(err, sentinel) {
		t.Fatalf("replay error = %v, want the original failure", err)
	}
	if !reflect.DeepEqual(trace, cx.Trace) {
		t.Fatalf("replayed trace differs from the counterexample trace:\n%s\nvs\n%s",
			schedexplore.FormatTrace(trace), schedexplore.FormatTrace(cx.Trace))
	}
}

// TestTruncationReleasesWorkload pins the MaxDecisions escape hatch: a
// schedule cut off mid-exploration must release every core and let the
// workload drain, not deadlock.
func TestTruncationReleasesWorkload(t *testing.T) {
	out := make([][]bool, 2)
	res := schedexplore.Explore(listSetup(2, 30, out), schedexplore.Config{
		Seed:         3,
		Executions:   2,
		MaxDecisions: 5,
	})
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	if res.Truncated != 2 {
		t.Fatalf("Truncated = %d, want 2 (every execution exceeds 5 decisions)", res.Truncated)
	}
	for w, r := range out {
		if len(r) != 30 {
			t.Fatalf("worker %d completed %d/30 ops after release", w, len(r))
		}
	}
}

// TestWindowedSchedulingCompletes smokes the PCT strategy with a non-zero
// scheduling quantum: coarser windows must still drive the workload to
// completion deterministically.
func TestWindowedSchedulingCompletes(t *testing.T) {
	out := make([][]bool, 3)
	cfg := schedexplore.Config{
		Mode:         schedexplore.PCT,
		Seed:         11,
		Executions:   2,
		WindowCycles: 300,
	}
	res := schedexplore.Explore(listSetup(3, 10, out), cfg)
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	res2 := schedexplore.Explore(listSetup(3, 10, out), cfg)
	if !reflect.DeepEqual(res.TraceHashes, res2.TraceHashes) {
		t.Fatalf("windowed runs not deterministic: %v vs %v", res.TraceHashes, res2.TraceHashes)
	}
}

// removeTagSetup probes the RemoveTag scheduling boundary: worker 0 tags a
// line, immediately unttags it, and validates; worker 1 stores to that line
// in its single scheduling slot. Validate can only report false when the
// store lands *between* AddTag and RemoveTag — the store then evicts the
// held tag and the eviction latch survives the RemoveTag. If RemoveTag is
// invisible to the gate, AddTag…RemoveTag runs atomically between
// scheduling points and that outcome is unreachable.
func removeTagSetup(obs map[bool]bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		wordsPerLine := core.LineSize / core.WordSize
		a := m.Alloc(wordsPerLine)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					th.AddTag(a, core.LineSize)
					th.RemoveTag(a, core.LineSize)
					obs[th.Validate()] = true
					th.ClearTagSet()
					return
				}
				th.Store(a, 1)
			},
		}
	}
}

// TestExplorerReachesRemoveTagBoundary is the regression test for the
// missing RemoveTag throttle: exhaustive cycle-level exploration must
// reach the interleaving where a remote store separates AddTag from
// RemoveTag (Validate observes the latched eviction), and must of course
// also reach the conflict-free orders.
func TestExplorerReachesRemoveTagBoundary(t *testing.T) {
	obs := map[bool]bool{}
	res := schedexplore.Explore(removeTagSetup(obs), schedexplore.Config{
		Mode: schedexplore.Exhaustive,
	})
	if res.Failure != nil {
		t.Fatalf("probe failed: %v", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("probe space not exhausted in %d executions", res.Executions)
	}
	if !obs[true] {
		t.Fatalf("no conflict-free interleaving observed: %v", obs)
	}
	if !obs[false] {
		t.Fatalf("store never landed between AddTag and RemoveTag: the "+
			"tag-release boundary is invisible to the scheduler (observations %v)", obs)
	}
}
