package schedexplore_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/schedexplore"
)

// vasSetup is the reference intset workload for the reduction criterion:
// a VAS list (tag-validate traversals, VAS commits — retries bounded by
// the opponent's finite op count, so the schedule space is finite and
// bounded-exhaustive terminates) with one op per worker. Small enough for
// bounded-exhaustive to enumerate completely, large enough that most of
// its schedules are Mazurkiewicz-equivalent.
func vasSetup(out [][]bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		s := list.NewVAS(m)
		s.Insert(m.Thread(0), 2)
		for w := range out {
			out[w] = out[w][:0]
		}
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					out[w] = append(out[w], s.Insert(th, 1))
				} else {
					out[w] = append(out[w], s.Contains(th, 2))
				}
			},
		}
	}
}

func classSet(hashes []uint64) []uint64 {
	seen := map[uint64]struct{}{}
	for _, h := range hashes {
		seen[h] = struct{}{}
	}
	set := make([]uint64, 0, len(seen))
	for h := range seen {
		set = append(set, h)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// TestDPORReductionAtEqualCoverage is the acceptance-criterion reduction
// test: on the reference intset workload, StrategyDPOR must exhaust the
// schedule space with at least 5x fewer executions than bounded-exhaustive
// enumeration while covering the identical set of interleaving classes
// (Mazurkiewicz traces) — reduction without lost coverage.
func TestDPORReductionAtEqualCoverage(t *testing.T) {
	out := make([][]bool, 2)
	ex := schedexplore.Explore(vasSetup(out), schedexplore.Config{
		Mode:       schedexplore.Exhaustive,
		Executions: 2_000_000,
	})
	if ex.Failure != nil {
		t.Fatalf("exhaustive run failed: %v", ex.Failure)
	}
	if !ex.Exhausted {
		t.Fatalf("exhaustive did not exhaust the space in %d executions (truncated %d)", ex.Executions, ex.Truncated)
	}
	exOut := fmt.Sprint(out)

	dp := schedexplore.Explore(vasSetup(out), schedexplore.Config{
		Mode: schedexplore.StrategyDPOR,
	})
	if dp.Failure != nil {
		t.Fatalf("DPOR run failed: %v", dp.Failure)
	}
	if !dp.Exhausted {
		t.Fatalf("DPOR did not exhaust the space in %d executions (truncated %d, sleep-blocked %d)",
			dp.Executions, dp.Truncated, dp.SleepBlocked)
	}
	if fmt.Sprint(out) != exOut {
		t.Fatalf("final op outcomes differ between modes: %v vs %s", out, exOut)
	}

	exClasses, dpClasses := classSet(ex.ClassHashes), classSet(dp.ClassHashes)
	if !reflect.DeepEqual(exClasses, dpClasses) {
		t.Fatalf("interleaving-class coverage differs: exhaustive %d classes, DPOR %d classes",
			len(exClasses), len(dpClasses))
	}
	t.Logf("exhaustive: %d executions, DPOR: %d executions (%d sleep-blocked), %d classes, reduction %.1fx",
		ex.Executions, dp.Executions, dp.SleepBlocked, len(dpClasses),
		float64(ex.Executions)/float64(dp.Executions))
	if ex.Executions < 5*dp.Executions {
		t.Fatalf("reduction below 5x: exhaustive %d executions vs DPOR %d", ex.Executions, dp.Executions)
	}
}

// vasWindowSetup probes the commit TOCTOU window with program-visible
// verdicts: worker 0 tags a line and VASes a new value into it; worker 1
// stores a competing value in its one scheduling slot. The three
// distinguishable outcomes are (VAS ok, final 42) — store before the tag,
// (VAS fail, final 7) — store inside the tag-to-validate window, and
// (VAS ok, final 7) — store after the commit. A sound reducer must reach
// all three: each is a distinct Mazurkiewicz class with a distinct
// verdict.
func vasWindowSetup(obs map[[2]interface{}]bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		a := m.Alloc(1)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					th.AddTag(a, 8)
					ok := th.VAS(a, 42)
					th.ClearTagSet()
					obs[[2]interface{}{ok, th.Load(a)}] = true
					return
				}
				th.Store(a, 7)
			},
		}
	}
}

// TestDPORSoundnessProbes re-runs the PR 2/PR 3 reachability probes under
// reduction: pruning equivalence-redundant schedules must not lose any
// verdict-distinct interleaving — the store between AddTag and RemoveTag,
// and every outcome of the commit TOCTOU window.
//
// Note the half-applied-AddTag probe (probeSetup) is deliberately absent:
// its mid-state is observed through DebugLine, a side channel outside the
// machine's program semantics, and DPOR correctly identifies those
// orderings as equivalent (a remote AddTag commutes with every program-
// visible behavior of an unrelated load). TestStrategiesAgreeOnVerdicts
// pins that DPOR still reports the same verdict on it.
func TestDPORSoundnessProbes(t *testing.T) {
	rtObs := map[bool]bool{}
	res := schedexplore.Explore(removeTagSetup(rtObs), schedexplore.Config{Mode: schedexplore.StrategyDPOR})
	if res.Failure != nil {
		t.Fatalf("probe failed: %v", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("probe space not exhausted in %d executions", res.Executions)
	}
	if !rtObs[true] || !rtObs[false] {
		t.Fatalf("DPOR lost a RemoveTag-boundary outcome: %v", rtObs)
	}

	vwObs := map[[2]interface{}]bool{}
	res = schedexplore.Explore(vasWindowSetup(vwObs), schedexplore.Config{Mode: schedexplore.StrategyDPOR})
	if res.Failure != nil {
		t.Fatalf("probe failed: %v", res.Failure)
	}
	if !res.Exhausted {
		t.Fatalf("probe space not exhausted in %d executions", res.Executions)
	}
	for _, want := range [][2]interface{}{
		{true, uint64(42)}, // store before the tag; the VAS overwrites it
		{false, uint64(7)}, // store inside the tag-to-validate window
		{true, uint64(7)},  // store after the commit
	} {
		if !vwObs[want] {
			t.Fatalf("DPOR never observed outcome %v; observations: %v", want, vwObs)
		}
	}
}

// TestDPORDeterministic pins that DPOR exploration is a pure function of
// the Setup: it draws no randomness, so two runs produce identical trace
// digests, class digests, and execution counts.
func TestDPORDeterministic(t *testing.T) {
	run := func() schedexplore.Result {
		out := make([][]bool, 2)
		res := schedexplore.Explore(vasSetup(out), schedexplore.Config{Mode: schedexplore.StrategyDPOR})
		if res.Failure != nil {
			t.Fatalf("unexpected failure: %v", res.Failure)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1.TraceHashes, r2.TraceHashes) {
		t.Fatalf("trace digests differ between identical DPOR runs")
	}
	if !reflect.DeepEqual(r1.ClassHashes, r2.ClassHashes) {
		t.Fatalf("class digests differ between identical DPOR runs")
	}
	if r1.Executions != r2.Executions || r1.SleepBlocked != r2.SleepBlocked {
		t.Fatalf("execution counts differ: %+v vs %+v", r1, r2)
	}
}

// lostUpdateSetup is the differential-verdict workload: two workers each
// perform one non-atomic read-modify-write increment on a shared word.
// Schedules that separate one worker's Load from its Store lose an
// update; Check fails iff the final value is not 2. Every strategy must
// reach both verdicts' witnesses: the buggy interleaving exists, so a
// sound explorer with enough executions finds it, and the correct
// interleaving exists too.
func lostUpdateSetup() func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		a := m.Alloc(1)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				v := th.Load(a)
				th.Store(a, v+1)
			},
			Check: func() error {
				// The gate is uninstalled before Check runs, so this
				// un-gated read does not perturb the schedule.
				if v := m.Thread(0).Load(a); v != 2 {
					return fmt.Errorf("lost update: counter = %d, want 2", v)
				}
				return nil
			},
		}
	}
}

// TestStrategiesAgreeOnVerdicts is the explorer-equivalence differential
// test: random walk, PCT, bounded-exhaustive and DPOR must all convict
// the lost-update workload (each finds some failing schedule) and must
// all acquit the probe workloads (no strategy fabricates a failure).
func TestStrategiesAgreeOnVerdicts(t *testing.T) {
	modes := []schedexplore.Mode{
		schedexplore.RandomWalk, schedexplore.PCT,
		schedexplore.Exhaustive, schedexplore.StrategyDPOR,
	}
	for _, mode := range modes {
		// PCTLength is sized to the workload (a handful of decisions) so
		// PCT's priority-change points actually land inside it.
		cfg := schedexplore.Config{Mode: mode, Seed: 9, Executions: 64, PCTLength: 8}
		res := schedexplore.Explore(lostUpdateSetup(), cfg)
		if res.Failure == nil {
			t.Fatalf("%v: no strategy may miss the lost update (%d executions)", mode, res.Executions)
		}
		if !strings.Contains(res.Failure.Err.Error(), "lost update") {
			t.Fatalf("%v: unexpected failure %v", mode, res.Failure.Err)
		}
		// The counterexample replays to the same verdict.
		if _, err := schedexplore.Replay(lostUpdateSetup(), res.Failure.Choices, schedexplore.Config{}); err == nil {
			t.Fatalf("%v: counterexample schedule did not replay to a failure", mode)
		}

		obs := map[[2]bool]bool{}
		res = schedexplore.Explore(probeSetup(obs), cfg)
		if res.Failure != nil {
			t.Fatalf("%v: fabricated failure on the probe workload: %v", mode, res.Failure)
		}
	}
}

// TestCounterexampleNamesContendedLines pins the counterexample metadata:
// the schedule rendering must carry each decision's gate point and the
// contended lines of its segment footprint, so a failure names the line
// the race was on instead of leaving the reader to re-derive it from op
// indices.
func TestCounterexampleNamesContendedLines(t *testing.T) {
	res := schedexplore.Explore(lostUpdateSetup(), schedexplore.Config{
		Mode: schedexplore.StrategyDPOR,
	})
	if res.Failure == nil {
		t.Fatal("expected a lost-update counterexample")
	}
	s := res.Failure.String()
	if !strings.Contains(s, "@op") {
		t.Fatalf("counterexample does not render gate points:\n%s", s)
	}
	if !strings.Contains(s, "lines{") {
		t.Fatalf("counterexample does not render segment footprints:\n%s", s)
	}
	// The shared counter's line must appear with a write-class access.
	var line core.Line
	found := false
	for _, ch := range res.Failure.Choices {
		for _, a := range ch.Accesses {
			if a.Write && a.Line != machine.AllocLine {
				line, found = a.Line, true
			}
		}
	}
	if !found {
		t.Fatalf("no write-class access recorded in any segment:\n%s", s)
	}
	if want := fmt.Sprintf("%dw", line); !strings.Contains(s, want) {
		t.Fatalf("contended line %q not named in rendering:\n%s", want, s)
	}
}
