package schedexplore_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/schedexplore"
)

// Use-after-free corpus: each setup seeds one reclamation-discipline bug
// (reclaim.Pool's testing faults, or a broken unlink protocol) into a tiny
// unlink/traverse workload over a pool-backed node. DPOR must convict the
// seeded variant — find a schedule where the checked-mode guard or an
// invariant check observes the use-after-free — and must acquit the exact
// same workload with the guard conditions intact.
//
// The workloads are built so every racing pair is line-dependent (shared
// line, one write-class access): DPOR only reverses dependent segment
// pairs, so a race that is visible solely through host-side pool state
// would not be reliably explored.

// uafDomain wires a checked reclamation domain into m with the default
// panic handler replaced by a recorder, so a guard violation surfaces
// through Setup.Check instead of unwinding the explorer mid-schedule.
func uafDomain(m *machine.Machine) *reclaim.Domain {
	d := reclaim.NewDomainFor(m)
	d.SetChecked(true)
	d.OnViolation(func(error) {})
	m.SetReclaim(d)
	return d
}

// uafNode allocates one pool node holding 42 and publishes it in a fresh
// shared slot, returning the slot address.
func uafNode(m *machine.Machine, p *reclaim.Pool) core.Addr {
	s := m.Alloc(1)
	th0 := m.Thread(0)
	p.Enter(th0)
	x := p.Alloc(th0)
	th0.Store(x, 42)
	p.Exit(th0)
	th0.Store(s, uint64(x))
	return s
}

// uafFreeEarlySetup seeds free-before-quiescent (reclaim's FaultFreeEarly):
// the writer unlinks and retires the published node, and the fault frees it
// at retire time without waiting for the reader's bracket, so the writer's
// next allocation recycles it and overwrites 42 with 99. A reader that
// acquired the pointer before the unlink can then validate a tag added
// after the overwrite — validation proves only "unchanged since AddTag" —
// and trust the recycled value. With the fault off, the reader's bracket
// (entered before the retire's era bump) holds the free until it exits, so
// a validated read only ever sees 42.
func uafFreeEarlySetup(fault bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		d := uafDomain(m)
		p := reclaim.NewPool(d, 1, reclaim.PolicyImmediate)
		p.FaultFreeEarly = fault
		s := uafNode(m, p)
		var uaf error
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					p.Enter(th)
					x := core.Addr(th.Load(s))
					th.Store(s, 0)
					p.Retire(th, x)
					p.Exit(th)
					p.Enter(th)
					y := p.Alloc(th)
					th.Store(y, 99)
					p.Exit(th)
					return
				}
				p.Enter(th)
				if sv := th.Load(s); sv != 0 {
					x := core.Addr(sv)
					th.AddTag(x, 8)
					v := th.Load(x)
					if th.Validate() && v != 42 {
						uaf = fmt.Errorf("use-after-free: validated read observed recycled value %d", v)
					}
					th.ClearTagSet()
				}
				p.Exit(th)
			},
			Check: func() error {
				if err := d.Violation(); err != nil {
					return fmt.Errorf("use-after-free: %v", err)
				}
				return uaf
			},
		}
	}
}

// uafSkipTagCheckSetup seeds tag-check-skipped-on-recycled-line (reclaim's
// FaultSkipTagCheck): the reader tags the node inside its bracket but
// commits with VAS after exiting — the hand-over-hand pattern where a tag
// outlives the operation that added it, which the announced-tag scan
// condition exists to protect. The writer's final scan runs after both
// brackets close; with the fault on it ignores the reader's announcement
// and frees the node, so the reader's commit validates a tag on a freed
// line (the guard flags exactly that).
//
// The free is only visible through host-side pool state, which DPOR's
// dependence relation cannot see, so the race is threaded through
// simulated memory: the reader stores to a sync line when its bracket
// closes and the writer reads it before scanning (making exit-then-scan a
// reversible race), and the scan rides behind a load of the node's line so
// the free-carrying segment conflicts with the reader's commit (which
// write-accesses that line) and free-before-commit is provably explored.
// Plain loads doom no tags, so the commit's validation still passes.
func uafSkipTagCheckSetup(fault bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		d := uafDomain(m)
		p := reclaim.NewPool(d, 1, reclaim.PolicyImmediate)
		p.FaultSkipTagCheck = fault
		s := uafNode(m, p)
		sync := m.Alloc(1)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					p.Enter(th)
					x := core.Addr(th.Load(s))
					th.Store(s, 0)
					p.Retire(th, x)
					p.Exit(th)
					p.Enter(th)
					y := p.Alloc(th)
					th.Store(y, 99)
					p.Exit(th)
					th.Load(sync)
					th.Load(x)
					p.Scan(th)
					return
				}
				p.Enter(th)
				sv := th.Load(s)
				if sv == 0 {
					p.Exit(th)
					return
				}
				x := core.Addr(sv)
				th.AddTag(x, 8)
				th.Store(sync, 1)
				p.Exit(th)
				th.VAS(x, 43)
				th.ClearTagSet()
			},
			Check: func() error { return d.Violation() },
		}
	}
}

// uafDoubleRetireSetup seeds a broken unlink protocol: both workers claim
// the node with a load-then-store flag instead of a CAS, so a racy
// schedule lets both believe they performed the unlinking swing and both
// retire the same node — the double retire the guard's per-line state
// machine rejects. The guarded variant claims with CAS, making the retirer
// unique.
func uafDoubleRetireSetup(fault bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		d := uafDomain(m)
		p := reclaim.NewPool(d, 1, reclaim.PolicyImmediate)
		s := uafNode(m, p)
		x := core.Addr(m.Thread(0).Load(s))
		f := m.Alloc(1)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				p.Enter(th)
				claimed := false
				if fault {
					if th.Load(f) == 0 {
						th.Store(f, 1)
						claimed = true
					}
				} else {
					claimed = th.CAS(f, 0, 1)
				}
				if claimed {
					p.Retire(th, x)
				}
				p.Exit(th)
			},
			Check: func() error { return d.Violation() },
		}
	}
}

// TestDPORConvictsUAFCorpus: every seeded reclamation bug must be
// convicted under DPOR — partial-order reduction must not prune the
// interleaving where the recycled line is reached — and the convicting
// schedule must replay to the same verdict.
func TestDPORConvictsUAFCorpus(t *testing.T) {
	corpus := []struct {
		name    string
		setup   func() schedexplore.Setup
		wantErr string
	}{
		{"free-before-quiescent", uafFreeEarlySetup(true), "use-after-free"},
		{"tag-check-skipped", uafSkipTagCheckSetup(true), "freed line"},
		{"double-retire", uafDoubleRetireSetup(true), "retire of line"},
	}
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			res := schedexplore.Explore(c.setup, schedexplore.Config{
				Mode:         schedexplore.StrategyDPOR,
				Executions:   20000,
				MaxDecisions: 400,
			})
			if res.Failure == nil {
				t.Fatalf("DPOR pruned away the use-after-free interleaving (%d executions, %d classes)",
					res.Executions, res.Classes())
			}
			if !strings.Contains(res.Failure.Err.Error(), c.wantErr) {
				t.Fatalf("unexpected verdict: %v", res.Failure.Err)
			}
			if _, err := schedexplore.Replay(c.setup, res.Failure.Choices, schedexplore.Config{}); err == nil {
				t.Fatal("convicting schedule did not replay to a failure")
			}
			t.Logf("convicted after %d executions: %v", res.Executions, res.Failure.Err)
		})
	}
}

// TestDPORAcquitsGuardedReclaim is the corpus's negative control: with the
// discipline intact (fault off, CAS claim) the identical workloads have no
// bad interleaving, and DPOR must not fabricate one — in particular the
// checked-mode guard must stay silent in every explored schedule.
func TestDPORAcquitsGuardedReclaim(t *testing.T) {
	for _, c := range []struct {
		name  string
		setup func() schedexplore.Setup
	}{
		{"free-gated-on-quiescence", uafFreeEarlySetup(false)},
		{"tag-check-enforced", uafSkipTagCheckSetup(false)},
		{"unique-retirer", uafDoubleRetireSetup(false)},
	} {
		t.Run(c.name, func(t *testing.T) {
			res := schedexplore.Explore(c.setup, schedexplore.Config{
				Mode:         schedexplore.StrategyDPOR,
				Executions:   2000,
				MaxDecisions: 400,
			})
			if res.Failure != nil {
				t.Fatalf("fabricated failure: %v", res.Failure)
			}
		})
	}
}
