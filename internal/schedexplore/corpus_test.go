package schedexplore_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/schedexplore"
	"repro/internal/stm"
)

// validateThenStoreSetup is the classic tag-misuse bug: increment by
// Load / AddTag / Validate / Store instead of VAS. Validation proves the
// line was unchanged *up to the validation*, but the store lands outside
// the validated window, so two workers can both validate and then both
// store — a lost update the VAS instruction exists to prevent.
func validateThenStoreSetup() func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		a := m.Alloc(1)
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				for {
					v := th.Load(a)
					th.AddTag(a, 8)
					if !th.Validate() {
						// Retries are bounded: the opponent performs one
						// store, after which validation cannot fail again.
						th.ClearTagSet()
						continue
					}
					th.Store(a, v+1)
					th.ClearTagSet()
					return
				}
			},
			Check: func() error {
				if v := m.Thread(0).Load(a); v != 2 {
					return fmt.Errorf("validate-then-store lost update: counter = %d, want 2", v)
				}
				return nil
			},
		}
	}
}

// stmTornReadSetup seeds the opacity bug into the tagged NOrec read path
// (stm.TM.FaultTornRead) and runs a two-word invariant workload: the
// writer transactionally sets a=b=1; the reader transactionally reads
// both. A read spanning the writer's in-flight writeBack observes a != b,
// which no opaque STM can produce.
func stmTornReadSetup(fault bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		m := smallMachine(2)
		tm := stm.NewTagged(m)
		tm.FaultTornRead = fault
		a, b := m.Alloc(1), m.Alloc(1)
		var torn error
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					tm.Run(th, func(tx *stm.Tx) {
						tx.Write(a, 1)
						tx.Write(b, 1)
					})
					return
				}
				var va, vb uint64
				tm.Run(th, func(tx *stm.Tx) {
					va, vb = tx.Read(a), tx.Read(b)
				})
				if va != vb {
					torn = fmt.Errorf("stm torn read: observed a=%d b=%d", va, vb)
				}
			},
			// Check runs once all workers have finished, so the unguarded
			// write to torn is safe.
			Check: func() error { return torn },
		}
	}
}

// TestDPORConvictsCorpus is the reduction-soundness regression corpus:
// every known-bad scenario previous PRs' explorers could convict must
// still be convicted under DPOR — pruning Mazurkiewicz-equivalent
// schedules must not prune the buggy interleaving — and the convicting
// schedule must replay to the same verdict.
func TestDPORConvictsCorpus(t *testing.T) {
	corpus := []struct {
		name    string
		setup   func() schedexplore.Setup
		wantErr string
	}{
		{"lost-update", lostUpdateSetup(), "lost update"},
		{"validate-then-store", validateThenStoreSetup(), "lost update"},
		{"stm-torn-read", stmTornReadSetup(true), "torn read"},
	}
	for _, c := range corpus {
		t.Run(c.name, func(t *testing.T) {
			// MaxDecisions truncates DPOR branches that drive a spin loop
			// (a reader parked on the STM sequence lock, a tag-validation
			// retry): the un-truncated workloads finish in well under 400
			// decisions, and truncated branches are still popped and
			// backtracked.
			res := schedexplore.Explore(c.setup, schedexplore.Config{
				Mode:         schedexplore.StrategyDPOR,
				Executions:   20000,
				MaxDecisions: 400,
			})
			if res.Failure == nil {
				t.Fatalf("DPOR pruned away the known-bad interleaving (%d executions, %d classes)",
					res.Executions, res.Classes())
			}
			if !strings.Contains(res.Failure.Err.Error(), c.wantErr) {
				t.Fatalf("unexpected verdict: %v", res.Failure.Err)
			}
			if _, err := schedexplore.Replay(c.setup, res.Failure.Choices, schedexplore.Config{}); err == nil {
				t.Fatal("convicting schedule did not replay to a failure")
			}
			t.Logf("convicted after %d executions", res.Executions)
		})
	}
}

// TestDPORAcquitsGuardedSTM is the corpus's negative control: with the
// torn-read guard intact the identical workload has no bad interleaving,
// and DPOR must not fabricate one.
func TestDPORAcquitsGuardedSTM(t *testing.T) {
	res := schedexplore.Explore(stmTornReadSetup(false), schedexplore.Config{
		Mode:         schedexplore.StrategyDPOR,
		Executions:   2000,
		MaxDecisions: 400,
	})
	if res.Failure != nil {
		t.Fatalf("fabricated failure: %v", res.Failure)
	}
}
