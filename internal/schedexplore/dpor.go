// Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005) over
// the cycle-level explorer's decision tree.
//
// A "transition" is everything one core executes between two scheduling
// points: the machine backend records the shared lines each segment
// touched (machine.Access), and two segments are dependent iff they share
// a line with at least one write-class access. Schedules that differ only
// by commuting adjacent independent segments are Mazurkiewicz-equivalent
// — they produce identical machine states and identical verdicts — so
// exploring one schedule per equivalence class preserves every
// linearizability outcome bounded-exhaustive enumeration would find.
//
// The driver keeps a depth-first execution tree across executions. After
// each execution it computes happens-before over the executed segments
// with vector clocks, finds the reversible races (dependent, differently
// cored, not ordered through an intermediate segment), and plants
// backtrack (persistent-set) points at the pre-state of each race. Sleep
// sets carry fully-explored siblings into later branches and prune any
// execution whose every runnable core is asleep. Exploration is complete
// when no state has a pending backtrack choice.
package schedexplore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
)

// conflict reports whether two segment footprints are dependent: they
// share a line with at least one write-class access. Independent segments
// commute, so only conflicting segments distinguish schedules.
func conflict(a, b []machine.Access) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Line == y.Line && (x.Write || y.Write) {
				return true
			}
		}
	}
	return false
}

// fpHash digests one segment footprint. The recording order inside a
// segment is a pure function of the transition's code path, so an
// order-sensitive digest is stable across equivalent schedules.
func fpHash(fp []machine.Access) uint64 {
	h := uint64(14695981039346656037)
	for _, a := range fp {
		h = (h ^ uint64(a.Line)) * 1099511628211
		w := uint64(0)
		if a.Write {
			w = 1
		}
		h = (h ^ w) * 1099511628211
	}
	return h
}

// classHash digests the Mazurkiewicz trace class of a completed schedule
// via its Foata normal form: each segment's level is one more than the
// deepest earlier segment it depends on (same core, or conflicting
// footprints), and the class digest combines the (level, core,
// per-core index, eviction, footprint) of every segment with a
// commutative operation. Commuting adjacent independent segments changes
// neither levels nor per-core order, so equivalent schedules hash equal;
// inequivalent schedules differ in some segment's level or footprint.
func classHash(choices []Choice) uint64 {
	n := len(choices)
	level := make([]int, n)
	perCore := map[int]int{}
	var acc uint64
	for j := 0; j < n; j++ {
		cj := choices[j].Core()
		lv := 1
		for i := 0; i < j; i++ {
			if level[i] >= lv && (choices[i].Core() == cj || conflict(choices[i].Accesses, choices[j].Accesses)) {
				lv = level[i] + 1
			}
		}
		level[j] = lv
		k := perCore[cj]
		perCore[cj] = k + 1
		h := uint64(14695981039346656037)
		for _, v := range [4]uint64{uint64(lv), uint64(cj), uint64(k), uint64(int64(choices[j].EvictTag))} {
			h = (h ^ v) * 1099511628211
		}
		h = (h ^ fpHash(choices[j].Accesses)) * 1099511628211
		acc += h
	}
	return acc ^ uint64(n)*1099511628211
}

// FormatAccesses renders a segment footprint as the deduplicated sorted
// line set, each suffixed w (write-class) or r: "lines{3r 17w alloc:w}".
func FormatAccesses(fp []machine.Access) string {
	write := map[core.Line]bool{}
	order := []core.Line{}
	for _, a := range fp {
		if _, ok := write[a.Line]; !ok {
			order = append(order, a.Line)
		}
		write[a.Line] = write[a.Line] || a.Write
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var b strings.Builder
	b.WriteString("lines{")
	for i, l := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		if l == machine.AllocLine {
			b.WriteString("alloc:")
		} else {
			fmt.Fprintf(&b, "%d", l)
		}
		if write[l] {
			b.WriteByte('w')
		} else {
			b.WriteByte('r')
		}
	}
	b.WriteByte('}')
	return b.String()
}

// dnode is one state of the DPOR execution tree: the scheduling decision
// reached by a unique segment sequence from the initial state. Replayed
// prefixes revisit the same nodes, so backtrack/done/sleep state persists
// across executions; fully explored subtrees are deleted (the search is
// stateless below the current path).
type dnode struct {
	runnable  []int        // sorted unfinished cores at this state
	backtrack map[int]bool // persistent set: cores to explore from here
	// done maps fully explored outgoing edges to their segment footprint
	// (needed for sleep inheritance into later siblings).
	done map[int][]machine.Access
	// sleep maps cores asleep on entry to this state to the footprint of
	// their pending (already explored elsewhere) segment. Picking one
	// would reproduce an explored class.
	sleep    map[int][]machine.Access
	children map[int]*dnode
}

func newDnode(runnable []int, sleep map[int][]machine.Access) *dnode {
	return &dnode{
		runnable:  runnable,
		backtrack: map[int]bool{},
		done:      map[int][]machine.Access{},
		sleep:     sleep,
		children:  map[int]*dnode{},
	}
}

// dporDriver owns the execution tree and the replay plan; it persists
// across the executions of one Explore call.
type dporDriver struct {
	root *dnode
	// plan is the core sequence to replay from the root on the next
	// execution: the path to the deepest state with a pending backtrack
	// choice, plus that choice. Beyond the plan the strategy picks the
	// smallest non-sleeping runnable core.
	plan []int
}

func newDPORDriver() *dporDriver { return &dporDriver{} }

// dporExec is the per-execution strategy face of the driver; it records
// the path taken and the observed segment footprints for the driver's
// post-execution race analysis.
type dporExec struct {
	drv   *dporDriver
	path  []*dnode // path[d]: state at decision d
	procs []int    // granted core per decision
	fps   [][]machine.Access
}

func (drv *dporDriver) newExec() *dporExec { return &dporExec{drv: drv} }

// observe implements segmentObserver: the footprint of decision d arrives
// when the granted core reaches its next scheduling point — always before
// pick(d+1), so sleep inheritance at the next node sees it.
func (e *dporExec) observe(d int, fp []machine.Access) {
	for len(e.fps) <= d {
		e.fps = append(e.fps, nil)
	}
	e.fps[d] = fp
}

func idxOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// nodeAt returns (creating if new) the tree node for decision d of this
// execution. A new node inherits its sleep set from the parent: a core
// asleep (or fully explored) at the parent stays asleep here iff its
// pending segment is independent of the edge segment just executed.
func (e *dporExec) nodeAt(d int, runnable []int) *dnode {
	if d == 0 {
		if e.drv.root == nil {
			e.drv.root = newDnode(runnable, map[int][]machine.Access{})
		}
		return e.drv.root
	}
	parent := e.path[d-1]
	proc := e.procs[d-1]
	if child := parent.children[proc]; child != nil {
		return child
	}
	edge := e.fps[d-1]
	sleep := map[int][]machine.Access{}
	inherit := func(q int, fp []machine.Access) {
		if q != proc && idxOf(runnable, q) >= 0 && !conflict(fp, edge) {
			sleep[q] = fp
		}
	}
	for q, fp := range parent.sleep {
		inherit(q, fp)
	}
	for q, fp := range parent.done {
		inherit(q, fp)
	}
	child := newDnode(runnable, sleep)
	parent.children[proc] = child
	return child
}

// pick implements strategy: replay the plan, then take the smallest
// runnable core not in the sleep set; -1 (abandon) when all runnable
// cores are asleep — every continuation is an explored class.
func (e *dporExec) pick(d int, runnable []int, _ func(int) int) (int, int) {
	node := e.nodeAt(d, runnable)
	var proc int
	if d < len(e.drv.plan) {
		proc = e.drv.plan[d]
		if idxOf(runnable, proc) < 0 {
			panic(fmt.Sprintf("schedexplore: DPOR replay diverged at decision %d: planned core %d not runnable in %v (nondeterministic Setup)", d, proc, runnable))
		}
	} else {
		proc = -1
		for _, q := range runnable {
			if _, asleep := node.sleep[q]; !asleep {
				proc = q
				break
			}
		}
		if proc < 0 {
			return -1, -1
		}
	}
	node.backtrack[proc] = true
	e.path = append(e.path, node)
	e.procs = append(e.procs, proc)
	return idxOf(runnable, proc), -1
}

// finish runs the race analysis for the completed (or abandoned)
// execution, pops the depth-first stack, and plans the next execution.
// It reports true when the whole space has been explored.
func (drv *dporDriver) finish(e *dporExec, truncated bool) bool {
	n := len(e.procs)
	for len(e.fps) < n {
		e.fps = append(e.fps, nil)
	}
	drv.plantBacktracks(e)
	// Depth-first pop: each edge of this execution is now fully explored
	// below (its subtree was either walked or proven redundant); find the
	// deepest state that still has a pending backtrack choice.
	for d := n - 1; d >= 0; d-- {
		v := e.path[d]
		proc := e.procs[d]
		delete(v.children, proc)
		v.done[proc] = e.fps[d]
		for _, q := range v.runnable {
			_, isDone := v.done[q]
			_, asleep := v.sleep[q]
			if v.backtrack[q] && !isDone && !asleep {
				drv.plan = append(append([]int{}, e.procs[:d]...), q)
				return false
			}
		}
	}
	_ = truncated
	return true
}

// plantBacktracks finds every reversible race of the executed segment
// sequence and plants a backtrack point at the race's pre-state, per
// Flanagan & Godefroid: for a race between steps i < j, the pre-state of
// i must also try the first step of the dependency chain leading to j.
func (drv *dporDriver) plantBacktracks(e *dporExec) {
	n := len(e.procs)
	// clocks[j][p] = 1 + index of the last step of core p that
	// happens-before step j (happens-before = program order plus
	// dependence edges, transitively closed).
	clocks := make([]map[int]int, n)
	lastOf := map[int]int{} // core -> 1 + index of its last step
	for j := 0; j < n; j++ {
		cv := map[int]int{}
		if li := lastOf[e.procs[j]]; li > 0 {
			for p, v := range clocks[li-1] {
				cv[p] = v
			}
		}
		for i := 0; i < j; i++ {
			if e.procs[i] != e.procs[j] && conflict(e.fps[i], e.fps[j]) {
				for p, v := range clocks[i] {
					if v > cv[p] {
						cv[p] = v
					}
				}
			}
		}
		cv[e.procs[j]] = j + 1
		clocks[j] = cv
		lastOf[e.procs[j]] = j + 1
	}
	hb := func(i, j int) bool { return clocks[j][e.procs[i]] >= i+1 }
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if e.procs[i] == e.procs[j] || !conflict(e.fps[i], e.fps[j]) {
				continue
			}
			// The race is reversible only if i and j are not ordered
			// through an intermediate step: then running j's chain first
			// at pre(i) is a genuinely different class.
			reversible := true
			for k := i + 1; k < j && reversible; k++ {
				if hb(i, k) && hb(k, j) {
					reversible = false
				}
			}
			if !reversible {
				continue
			}
			v := e.path[i]
			// Backtrack candidate: the core of the earliest step in
			// (i, j] on j's dependency chain that is runnable at pre(i).
			cand := -1
			for m := i + 1; m <= j; m++ {
				if (m == j || hb(m, j)) && idxOf(v.runnable, e.procs[m]) >= 0 {
					cand = e.procs[m]
					break
				}
			}
			if cand >= 0 {
				v.backtrack[cand] = true
			} else {
				for _, q := range v.runnable {
					v.backtrack[q] = true
				}
			}
		}
	}
}
