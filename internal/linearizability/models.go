package linearizability

import (
	"fmt"

	"repro/internal/history"
)

// SetModel is the per-key sequential specification of an ordered set: the
// state is one bit of membership, and Insert/Delete/Contains report
// success against it. Used with CheckPartitioned (operations on distinct
// keys commute), it is the model for every intset.Set in this repository.
func SetModel() Model {
	return Model{
		Name: "set",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpInsert:
				return 1, e.OK == (s == 0)
			case history.OpDelete:
				return 0, e.OK == (s == 1)
			case history.OpContains:
				return s, e.OK == (s == 1)
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			name := [...]string{"Insert", "Delete", "Contains"}[e.Op]
			return fmt.Sprintf("w%d %s(%d) = %v  [inv %d, ret %d]", e.Worker, name, e.Key, e.OK, e.Inv, e.Ret)
		},
	}
}

// SnapshotSetModel is the whole-set sequential specification for histories
// that mix point operations with atomic range scans and Keys snapshots:
// the state is the full membership bitmask of a key universe of at most 64
// keys (Event.Key holds the key's offset in [0, keyRange)). OpRange
// (Key = low offset, Arg = high offset) and OpKeys observe Out as the
// bitmask of members in their window, which must equal the state exactly —
// a torn scan that mixes two states is rejected. Scans with OK == false
// (the structure gave up: tag-budget overflow or retries exhausted)
// observe nothing and always linearize. Point operations do not commute
// with scans, so this model is for Check (single partition); keep runs
// small.
func SnapshotSetModel(keyRange uint64) Model {
	if keyRange < 1 || keyRange > 64 {
		panic(fmt.Sprintf("linearizability: SnapshotSetModel key range %d not in [1, 64]", keyRange))
	}
	window := func(lo, hi uint64) uint64 {
		if lo > hi || lo >= keyRange {
			return 0
		}
		if hi >= keyRange {
			hi = keyRange - 1
		}
		width := hi - lo + 1
		if width >= 64 {
			return ^uint64(0)
		}
		return ((uint64(1) << width) - 1) << lo
	}
	full := window(0, keyRange-1)
	return Model{
		Name: "snapshot-set",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpInsert:
				b := uint64(1) << e.Key
				return s | b, e.OK == (s&b == 0)
			case history.OpDelete:
				b := uint64(1) << e.Key
				return s &^ b, e.OK == (s&b != 0)
			case history.OpContains:
				b := uint64(1) << e.Key
				return s, e.OK == (s&b != 0)
			case history.OpRange:
				if !e.OK {
					return s, true
				}
				return s, e.Out == s&window(e.Key, e.Arg)
			case history.OpKeys:
				if !e.OK {
					return s, true
				}
				return s, e.Out == s&full
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			switch e.Op {
			case history.OpRange:
				return fmt.Sprintf("w%d Range(%d..%d) = %#x ok=%v  [inv %d, ret %d]",
					e.Worker, e.Key, e.Arg, e.Out, e.OK, e.Inv, e.Ret)
			case history.OpKeys:
				return fmt.Sprintf("w%d Keys() = %#x ok=%v  [inv %d, ret %d]",
					e.Worker, e.Out, e.OK, e.Inv, e.Ret)
			}
			name := [...]string{"Insert", "Delete", "Contains"}[e.Op]
			return fmt.Sprintf("w%d %s(%d) = %v  [inv %d, ret %d]", e.Worker, name, e.Key, e.OK, e.Inv, e.Ret)
		},
	}
}

// RegisterModel is a single uint64 register with reads and CAS: OpRead
// must observe the current value (Out), and OpCAS (Arg = expected old,
// Out = new value) must succeed exactly when the state equals Arg. Use
// with Check (one partition) or CheckPartitioned when Key indexes
// independent registers.
func RegisterModel(init uint64) Model {
	return Model{
		Name: "register",
		Init: init,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpRead:
				return s, e.Out == s
			case history.OpCAS:
				if e.OK {
					return e.Out, s == e.Arg
				}
				return s, s != e.Arg
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			if e.Op == history.OpRead {
				return fmt.Sprintf("w%d Read(r%d) = %d  [inv %d, ret %d]", e.Worker, e.Key, e.Out, e.Inv, e.Ret)
			}
			return fmt.Sprintf("w%d CAS(r%d, %d -> %d) = %v  [inv %d, ret %d]", e.Worker, e.Key, e.Arg, e.Out, e.OK, e.Inv, e.Ret)
		},
	}
}

// CounterModel is a fetch-and-increment counter: OpIncGet returns the
// value before the increment, OpRead observes the current value. It is the
// model for the tagged-NOrec transactional counter.
func CounterModel(init uint64) Model {
	return Model{
		Name: "counter",
		Init: init,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpIncGet:
				return s + 1, e.Out == s
			case history.OpRead:
				return s, e.Out == s
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			if e.Op == history.OpIncGet {
				return fmt.Sprintf("w%d IncGet() = %d  [inv %d, ret %d]", e.Worker, e.Out, e.Inv, e.Ret)
			}
			return fmt.Sprintf("w%d Read() = %d  [inv %d, ret %d]", e.Worker, e.Out, e.Inv, e.Ret)
		},
	}
}
