package linearizability

import (
	"fmt"

	"repro/internal/history"
)

// SetModel is the per-key sequential specification of an ordered set: the
// state is one bit of membership, and Insert/Delete/Contains report
// success against it. Used with CheckPartitioned (operations on distinct
// keys commute), it is the model for every intset.Set in this repository.
func SetModel() Model {
	return Model{
		Name: "set",
		Init: 0,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpInsert:
				return 1, e.OK == (s == 0)
			case history.OpDelete:
				return 0, e.OK == (s == 1)
			case history.OpContains:
				return s, e.OK == (s == 1)
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			name := [...]string{"Insert", "Delete", "Contains"}[e.Op]
			return fmt.Sprintf("w%d %s(%d) = %v  [inv %d, ret %d]", e.Worker, name, e.Key, e.OK, e.Inv, e.Ret)
		},
	}
}

// RegisterModel is a single uint64 register with reads and CAS: OpRead
// must observe the current value (Out), and OpCAS (Arg = expected old,
// Out = new value) must succeed exactly when the state equals Arg. Use
// with Check (one partition) or CheckPartitioned when Key indexes
// independent registers.
func RegisterModel(init uint64) Model {
	return Model{
		Name: "register",
		Init: init,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpRead:
				return s, e.Out == s
			case history.OpCAS:
				if e.OK {
					return e.Out, s == e.Arg
				}
				return s, s != e.Arg
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			if e.Op == history.OpRead {
				return fmt.Sprintf("w%d Read(r%d) = %d  [inv %d, ret %d]", e.Worker, e.Key, e.Out, e.Inv, e.Ret)
			}
			return fmt.Sprintf("w%d CAS(r%d, %d -> %d) = %v  [inv %d, ret %d]", e.Worker, e.Key, e.Arg, e.Out, e.OK, e.Inv, e.Ret)
		},
	}
}

// CounterModel is a fetch-and-increment counter: OpIncGet returns the
// value before the increment, OpRead observes the current value. It is the
// model for the tagged-NOrec transactional counter.
func CounterModel(init uint64) Model {
	return Model{
		Name: "counter",
		Init: init,
		Step: func(s uint64, e *history.Event) (uint64, bool) {
			switch e.Op {
			case history.OpIncGet:
				return s + 1, e.Out == s
			case history.OpRead:
				return s, e.Out == s
			}
			return s, false
		},
		Format: func(e *history.Event) string {
			if e.Op == history.OpIncGet {
				return fmt.Sprintf("w%d IncGet() = %d  [inv %d, ret %d]", e.Worker, e.Out, e.Inv, e.Ret)
			}
			return fmt.Sprintf("w%d Read() = %d  [inv %d, ret %d]", e.Worker, e.Out, e.Inv, e.Ret)
		},
	}
}
