// Strict serializability checking for transactional histories.
//
// Where the Wing–Gong checker treats each operation against a
// single-word sequential model, transactions carry whole read and write
// sets (history.TxData). The committed transactions of a history are
// strictly serializable iff some total order — consistent with real time
// (T1 before T2 whenever T1 returned before T2 was invoked) — replays
// every transaction's read set exactly against the writes of its
// predecessors. The model is a word-addressed map, zero-initialized:
// exactly the simulated memory the STM runs over, provided the history
// also records the populating transactions.
package linearizability

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// SerializableMapModel checks that the committed transactions of a
// history admit a serial order over a zero-initialized word-addressed
// map. The zero value is ready to use.
type SerializableMapModel struct {
	// MaxIters bounds the search (0 = DefaultMaxIters); exhausting it
	// yields an inconclusive outcome instead of a hang.
	MaxIters uint64
}

// SerializeOutcome is a strict-serializability verdict.
type SerializeOutcome struct {
	// OK reports that the committed transactions are strictly
	// serializable.
	OK bool
	// Inconclusive reports an exhausted iteration budget (not-OK, but
	// distinguished so harnesses fail loudly rather than claim a bug).
	Inconclusive bool
	// Txs is the number of committed transactions checked.
	Txs int

	// Failure details (valid when !OK && !Inconclusive).
	// Best is the longest serializable prefix found, in serial order.
	Best []history.Event
	// Window lists the real-time-eligible candidates at the stuck
	// frontier; none of their read sets matches any reachable state.
	Window []history.Event
	// Mismatch describes, per Window entry, the first read that
	// contradicts the state after Best.
	Mismatch []string

	rec *history.Recorder
}

// Explain renders a human-readable counterexample (empty when OK).
func (o *SerializeOutcome) Explain() string {
	if o.OK {
		return ""
	}
	if o.Inconclusive {
		return fmt.Sprintf("serializability check inconclusive: iteration budget exhausted (%d txs)", o.Txs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "history NOT strictly serializable (%d committed txs)\n", o.Txs)
	fmt.Fprintf(&b, "longest serializable prefix (%d txs):\n", len(o.Best))
	start := 0
	if len(o.Best) > 8 {
		start = len(o.Best) - 8
		fmt.Fprintf(&b, "  ... %d earlier txs elided ...\n", start)
	}
	for i := start; i < len(o.Best); i++ {
		fmt.Fprintf(&b, "  %3d. %s\n", i+1, o.formatTx(&o.Best[i]))
	}
	fmt.Fprintf(&b, "no order explains any of the %d eligible candidate(s):\n", len(o.Window))
	for i := range o.Window {
		fmt.Fprintf(&b, "   -> %s\n      %s\n", o.formatTx(&o.Window[i]), o.Mismatch[i])
	}
	return b.String()
}

func (o *SerializeOutcome) formatTx(e *history.Event) string {
	tx := o.rec.TxOf(e)
	return fmt.Sprintf("w%d tx(reads=%d writes=%d aborts=%d) [%d,%d]",
		e.Worker, len(tx.Reads), len(tx.Writes), e.Arg, e.Inv, e.Ret)
}

// Check verifies strict serializability of the committed OpTx events in
// the recorder's history. Non-transactional events are ignored; pending
// transactions (workers stopped mid-retry) are excluded — an uncommitted
// attempt constrains nothing.
func (m SerializableMapModel) Check(rec *history.Recorder) SerializeOutcome {
	maxIters := m.MaxIters
	if maxIters == 0 {
		maxIters = DefaultMaxIters
	}
	var txs []history.Event
	for _, e := range rec.Events() {
		if e.Op == history.OpTx && e.OK && !e.Pending() {
			txs = append(txs, e)
		}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i].Inv < txs[j].Inv })
	n := len(txs)
	out := SerializeOutcome{Txs: n, rec: rec}
	if n == 0 {
		out.OK = true
		return out
	}

	// Depth-first search over serial orders with memoization on
	// (applied-set, state-digest): the map state is not a function of the
	// applied set alone (the last writer per address depends on order),
	// so the digest folds every live (addr, value) pair commutatively and
	// is maintained incrementally as writes apply and undo.
	db := map[uint64]uint64{}
	var dbHash uint64
	mix := func(addr, val uint64) uint64 {
		h := uint64(14695981039346656037)
		h = (h ^ addr) * 1099511628211
		h = (h ^ val) * 1099511628211
		return h
	}
	applied := newBitset(n)
	appliedCount := 0
	order := make([]int, 0, n)
	cache := map[uint64][]cacheEntry{}
	iters := uint64(0)

	// firstMismatch reports the first read of tx i that contradicts the
	// current state ("" when the read set matches).
	firstMismatch := func(i int) string {
		td := rec.TxOf(&txs[i])
		for _, r := range td.Reads {
			if db[r.Addr] != r.Val {
				return fmt.Sprintf("read of %#x observed %d, state has %d", r.Addr, r.Val, db[r.Addr])
			}
		}
		return ""
	}
	// eligible reports whether tx i may serialize next: every other
	// unapplied transaction's return must not precede i's invocation.
	eligible := func(i int) bool {
		for j := 0; j < n; j++ {
			if j == i || applied.get(uint64(j)) {
				continue
			}
			if txs[j].Ret < txs[i].Inv {
				return false
			}
		}
		return true
	}

	best := append([]int{}, order...)
	var search func() bool
	search = func() bool {
		if appliedCount == n {
			return true
		}
		if iters++; iters > maxIters {
			out.Inconclusive = true
			return false
		}
		if !cacheAdd(cache, applied, dbHash) {
			return false
		}
		for i := 0; i < n; i++ {
			if applied.get(uint64(i)) || !eligible(i) || firstMismatch(i) != "" {
				continue
			}
			td := rec.TxOf(&txs[i])
			// Apply the write set, remembering displaced values for undo.
			undo := make([]history.TxAccess, 0, len(td.Writes))
			for _, w := range td.Writes {
				old := db[w.Addr]
				undo = append(undo, history.TxAccess{Addr: w.Addr, Val: old})
				dbHash ^= mix(w.Addr, old) ^ mix(w.Addr, w.Val)
				db[w.Addr] = w.Val
			}
			applied.set(uint64(i))
			appliedCount++
			order = append(order, i)
			if len(order) > len(best) {
				best = append(best[:0], order...)
			}
			if search() {
				return true
			}
			order = order[:len(order)-1]
			appliedCount--
			applied.clear(uint64(i))
			for k := len(undo) - 1; k >= 0; k-- {
				w := td.Writes[k]
				dbHash ^= mix(w.Addr, db[w.Addr]) ^ mix(w.Addr, undo[k].Val)
				db[w.Addr] = undo[k].Val
			}
			if out.Inconclusive {
				return false
			}
		}
		return false
	}
	if search() {
		out.OK = true
		return out
	}
	if out.Inconclusive {
		return out
	}

	// Rebuild the best prefix's state for the counterexample window.
	for k := range db {
		delete(db, k)
	}
	applied = newBitset(n)
	for _, i := range best {
		out.Best = append(out.Best, txs[i])
		applied.set(uint64(i))
		for _, w := range rec.TxOf(&txs[i]).Writes {
			db[w.Addr] = w.Val
		}
	}
	for i := 0; i < n; i++ {
		if applied.get(uint64(i)) || !eligible(i) {
			continue
		}
		out.Window = append(out.Window, txs[i])
		mm := firstMismatch(i)
		if mm == "" {
			mm = "read set matches here but no continuation completes"
		}
		out.Mismatch = append(out.Mismatch, mm)
	}
	return out
}
