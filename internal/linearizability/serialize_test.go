package linearizability_test

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/linearizability"
)

// tx records one whole transaction into shard w: reads as (addr, observed
// value) pairs, then writes, bracketed by BeginTx/End so the invocation
// order of successive calls is the real-time order.
func tx(rec *history.Recorder, w int, reads, writes [][2]uint64) {
	s := rec.Shard(w)
	idx := s.BeginTx()
	for _, r := range reads {
		s.TxRead(idx, r[0], r[1])
	}
	for _, wr := range writes {
		s.TxWrite(idx, wr[0], wr[1])
	}
	s.End(idx, true, 0)
}

func TestSerializableHistoryAccepted(t *testing.T) {
	rec := history.NewRecorder(2, 8)
	// Zero-initialized state: a fresh read of any address sees 0.
	tx(rec, 0, [][2]uint64{{10, 0}}, [][2]uint64{{10, 1}})
	// Disjoint increments commute.
	tx(rec, 0, [][2]uint64{{10, 1}}, [][2]uint64{{10, 2}})
	tx(rec, 1, [][2]uint64{{20, 0}}, [][2]uint64{{20, 7}})
	out := linearizability.SerializableMapModel{}.Check(rec)
	if !out.OK {
		t.Fatalf("serializable history rejected:\n%s", out.Explain())
	}
	if out.Txs != 3 {
		t.Fatalf("checked %d txs, want 3", out.Txs)
	}
}

func TestLostUpdateRejected(t *testing.T) {
	rec := history.NewRecorder(2, 8)
	// Two concurrent read-modify-writes that both observed the initial
	// value: in any serial order the second must observe the first's write.
	s0, s1 := rec.Shard(0), rec.Shard(1)
	i0, i1 := s0.BeginTx(), s1.BeginTx()
	s0.TxRead(i0, 10, 0)
	s0.TxWrite(i0, 10, 1)
	s1.TxRead(i1, 10, 0)
	s1.TxWrite(i1, 10, 2)
	s0.End(i0, true, 0)
	s1.End(i1, true, 0)
	out := linearizability.SerializableMapModel{}.Check(rec)
	if out.OK || out.Inconclusive {
		t.Fatalf("lost-update history accepted (inconclusive=%v)", out.Inconclusive)
	}
	if !strings.Contains(out.Explain(), "NOT strictly serializable") {
		t.Fatalf("unexpected explanation:\n%s", out.Explain())
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	rec := history.NewRecorder(2, 8)
	// T1 returns before T2 is invoked, so T2 must serialize after T1 —
	// yet T2 read the pre-T1 value. Plain serializability would accept
	// this (T2 first); strict serializability must not.
	tx(rec, 0, nil, [][2]uint64{{10, 5}})
	tx(rec, 1, [][2]uint64{{10, 0}}, nil)
	out := linearizability.SerializableMapModel{}.Check(rec)
	if out.OK {
		t.Fatal("stale read after real-time-ordered commit accepted")
	}
	if len(out.Window) == 0 || !strings.Contains(out.Explain(), "observed 0") {
		t.Fatalf("counterexample does not name the stale read:\n%s", out.Explain())
	}
}

func TestUncommittedTxsIgnored(t *testing.T) {
	rec := history.NewRecorder(1, 8)
	s := rec.Shard(0)
	// An aborted transaction's footprint constrains nothing, however
	// inconsistent it looks.
	idx := s.BeginTx()
	s.TxRead(idx, 10, 999)
	s.End(idx, false, 0)
	// A pending transaction (worker stopped mid-attempt) likewise.
	s.BeginTx()
	out := linearizability.SerializableMapModel{}.Check(rec)
	if !out.OK || out.Txs != 0 {
		t.Fatalf("aborted/pending txs not ignored: OK=%v txs=%d", out.OK, out.Txs)
	}
}
