package linearizability

import (
	"strings"
	"testing"

	"repro/internal/history"
)

// setEv builds a completed set event with explicit timestamps.
func setEv(w int32, op uint8, key uint64, ok bool, inv, ret uint64) history.Event {
	return history.Event{Worker: w, Op: op, Key: key, OK: ok, Inv: inv, Ret: ret}
}

func TestSequentialSetHistoryAccepted(t *testing.T) {
	evs := []history.Event{
		setEv(0, history.OpInsert, 5, true, 1, 2),
		setEv(0, history.OpContains, 5, true, 3, 4),
		setEv(0, history.OpInsert, 5, false, 5, 6),
		setEv(0, history.OpDelete, 5, true, 7, 8),
		setEv(0, history.OpContains, 5, false, 9, 10),
		setEv(0, history.OpDelete, 5, false, 11, 12),
	}
	if out := CheckSet(evs); !out.OK {
		t.Fatalf("valid sequential history rejected:\n%s", out.Explain())
	}
}

func TestConcurrentReorderingAccepted(t *testing.T) {
	// The contains completes inside the insert's interval and observes the
	// key: linearizable by placing the insert first.
	evs := []history.Event{
		setEv(0, history.OpInsert, 9, true, 1, 10),
		setEv(1, history.OpContains, 9, true, 2, 3),
	}
	if out := CheckSet(evs); !out.OK {
		t.Fatalf("valid concurrent history rejected:\n%s", out.Explain())
	}
	// Same shape, but the contains misses: linearizable the other way.
	evs[1].OK = false
	if out := CheckSet(evs); !out.OK {
		t.Fatalf("valid concurrent history rejected:\n%s", out.Explain())
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Contains observes a key strictly after its only insert was deleted.
	evs := []history.Event{
		setEv(0, history.OpInsert, 3, true, 1, 2),
		setEv(0, history.OpDelete, 3, true, 3, 4),
		setEv(1, history.OpContains, 3, true, 5, 6),
	}
	out := CheckSet(evs)
	if out.OK {
		t.Fatal("stale read accepted")
	}
	if out.Inconclusive {
		t.Fatal("verdict inconclusive on a 3-op history")
	}
	if !strings.Contains(out.Explain(), "NOT linearizable") {
		t.Fatalf("unexpected explanation: %q", out.Explain())
	}
}

func TestDoubleSuccessfulInsertRejected(t *testing.T) {
	// Two overlapping inserts of the same key both report "was absent":
	// the classic lost-update signature (e.g. a skipped validation).
	evs := []history.Event{
		setEv(0, history.OpInsert, 7, true, 1, 4),
		setEv(1, history.OpInsert, 7, true, 2, 3),
	}
	if out := CheckSet(evs); out.OK {
		t.Fatal("double successful insert accepted")
	}
}

func TestLostDeleteRejected(t *testing.T) {
	// A delete reports success, yet a later (non-overlapping) contains
	// still sees the key — the "lost delete during node replacement" bug
	// class the schedule fuzzer hunts for.
	evs := []history.Event{
		setEv(0, history.OpInsert, 2, true, 1, 2),
		setEv(1, history.OpDelete, 2, true, 3, 4),
		setEv(0, history.OpContains, 2, true, 5, 6),
	}
	if out := CheckSet(evs); out.OK {
		t.Fatal("lost delete accepted")
	}
}

func TestPendingOperationBothWays(t *testing.T) {
	pendingInsert := history.Event{Worker: 0, Op: history.OpInsert, Key: 4, Inv: 1, Ret: ^uint64(0)}
	// The pending insert may have taken effect...
	evs := []history.Event{
		pendingInsert,
		setEv(1, history.OpContains, 4, true, 5, 6),
	}
	if out := CheckSet(evs); !out.OK {
		t.Fatalf("pending-insert-observed rejected:\n%s", out.Explain())
	}
	// ...or not.
	evs[1].OK = false
	if out := CheckSet(evs); !out.OK {
		t.Fatalf("pending-insert-dropped rejected:\n%s", out.Explain())
	}
}

func TestPartitioningIsolatesKeys(t *testing.T) {
	// Interleaved ops on two keys, each valid on its own.
	evs := []history.Event{
		setEv(0, history.OpInsert, 1, true, 1, 8),
		setEv(1, history.OpInsert, 2, true, 2, 3),
		setEv(1, history.OpContains, 2, true, 4, 5),
		setEv(1, history.OpDelete, 2, true, 6, 7),
		setEv(1, history.OpContains, 1, true, 9, 10),
	}
	out := CheckSet(evs)
	if !out.OK {
		t.Fatalf("valid two-key history rejected:\n%s", out.Explain())
	}
	if out.Partitions != 2 {
		t.Fatalf("got %d partitions, want 2", out.Partitions)
	}
}

func TestCounterexampleNamesCulprit(t *testing.T) {
	evs := []history.Event{
		setEv(0, history.OpInsert, 11, true, 1, 2),
		setEv(0, history.OpDelete, 11, true, 3, 4),
		setEv(1, history.OpContains, 11, true, 5, 6),
	}
	out := CheckSet(evs)
	if out.OK {
		t.Fatal("expected failure")
	}
	if out.Key != 11 {
		t.Fatalf("counterexample names key %d, want 11", out.Key)
	}
	exp := out.Explain()
	if !strings.Contains(exp, "Contains(11) = true") {
		t.Fatalf("explanation does not show the stuck op:\n%s", exp)
	}
	if len(out.Best) != 2 {
		t.Fatalf("longest prefix has %d ops, want 2:\n%s", len(out.Best), exp)
	}
}

func TestRegisterModel(t *testing.T) {
	m := RegisterModel(0)
	ev := func(w int32, op uint8, arg, out uint64, ok bool, inv, ret uint64) history.Event {
		return history.Event{Worker: w, Op: op, Arg: arg, Out: out, OK: ok, Inv: inv, Ret: ret}
	}
	valid := []history.Event{
		ev(0, history.OpCAS, 0, 1, true, 1, 2),
		ev(1, history.OpRead, 0, 1, false, 3, 4),
		ev(0, history.OpCAS, 0, 7, false, 5, 6), // state is 1, expected-old 0: must fail
		ev(1, history.OpCAS, 1, 2, true, 7, 8),
	}
	if out := Check(m, valid); !out.OK {
		t.Fatalf("valid register history rejected:\n%s", out.Explain())
	}
	invalid := []history.Event{
		ev(0, history.OpCAS, 0, 1, true, 1, 2),
		ev(1, history.OpCAS, 0, 2, true, 3, 4), // old=0 cannot succeed after state moved to 1
	}
	if out := Check(m, invalid); out.OK {
		t.Fatal("spurious CAS success accepted")
	}
}

func TestCounterModel(t *testing.T) {
	m := CounterModel(0)
	inc := func(w int32, out uint64, inv, ret uint64) history.Event {
		return history.Event{Worker: w, Op: history.OpIncGet, Out: out, Inv: inv, Ret: ret}
	}
	valid := []history.Event{inc(0, 0, 1, 4), inc(1, 1, 2, 3)}
	if out := Check(m, valid); !out.OK {
		t.Fatalf("valid counter history rejected:\n%s", out.Explain())
	}
	// Two increments both observing 0: one increment was lost.
	invalid := []history.Event{inc(0, 0, 1, 4), inc(1, 0, 2, 3)}
	if out := Check(m, invalid); out.OK {
		t.Fatal("lost increment accepted")
	}
}

func TestEmptyAndSingleHistories(t *testing.T) {
	if out := CheckSet(nil); !out.OK {
		t.Fatal("empty history rejected")
	}
	one := []history.Event{setEv(0, history.OpContains, 1, false, 1, 2)}
	if out := CheckSet(one); !out.OK {
		t.Fatal("single-op history rejected")
	}
	bad := []history.Event{setEv(0, history.OpContains, 1, true, 1, 2)}
	if out := CheckSet(bad); out.OK {
		t.Fatal("phantom contains accepted")
	}
}
