// Package linearizability decides whether a recorded concurrent operation
// history (internal/history) is linearizable with respect to a sequential
// model — the correctness bar every tagged structure in this repository
// must clear, including under spurious tag evictions and fallback-path
// transitions.
//
// The checker is the Wing & Gong search in its iterative, cached form (as
// refined by Lowe and popularized by Porcupine): walk the history's
// call/return entries in real-time order, greedily linearize any operation
// whose call precedes the first pending return and whose output the model
// accepts, and backtrack when a return is reached with no extension. A
// memoization set over (linearized-operations, model-state) pairs prunes
// re-explored configurations, and set histories are partitioned per key —
// operations on different keys commute through the model, so each key is
// checked independently, which turns 8-thread × thousands-of-ops histories
// from intractable into milliseconds.
//
// On failure the checker reports a minimal counterexample: the longest
// linearizable prefix it found, the model state it reached, and the window
// of concurrent operations none of which can be linearized next.
package linearizability

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// Model is a sequential specification with a single uint64 state (rich
// enough for the structures here: set membership per key, a register
// value, a counter, or a few packed fields).
type Model struct {
	// Name labels the model in reports.
	Name string
	// Init is the initial state.
	Init uint64
	// Step applies one event to the state, returning the successor state
	// and whether the event's recorded output is what the model expects.
	// For events whose state transition depends on their output (e.g. a
	// CAS), Step must derive the transition from the recorded output.
	Step func(state uint64, e *history.Event) (uint64, bool)
	// Format renders one event for counterexamples (optional).
	Format func(e *history.Event) string
}

// format renders e with the model's formatter or a generic fallback.
func (m *Model) format(e *history.Event) string {
	if m.Format != nil {
		return m.Format(e)
	}
	return fmt.Sprintf("w%d op%d(key=%d,arg=%d)=(%v,%d) [%d,%d]",
		e.Worker, e.Op, e.Key, e.Arg, e.OK, e.Out, e.Inv, e.Ret)
}

// DefaultMaxIters bounds the search per partition; beyond it the result is
// reported as inconclusive rather than hanging a test run.
const DefaultMaxIters = 200_000_000

// Outcome is a check's verdict.
type Outcome struct {
	// OK reports that every partition is linearizable.
	OK bool
	// Inconclusive reports that some partition exhausted the iteration
	// budget before a verdict (counts as not-OK but is distinguished so
	// harnesses can fail loudly instead of claiming a violation).
	Inconclusive bool
	// Ops and Partitions describe the checked history.
	Ops, Partitions int

	// Failure details (valid when !OK).
	Key        uint64          // partition key of the offending subhistory
	Best       []history.Event // longest linearizable prefix, in linearization order
	FinalState uint64          // model state after Best
	Window     []history.Event // concurrent candidates at the stuck frontier
	model      *Model
}

// Explain renders a human-readable counterexample (empty when OK).
func (o *Outcome) Explain() string {
	if o.OK {
		return ""
	}
	if o.Inconclusive {
		return fmt.Sprintf("linearizability check inconclusive: iteration budget exhausted (key %d, %d ops)", o.Key, o.Ops)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "history NOT linearizable (model %s, partition key %d)\n", o.model.Name, o.Key)
	fmt.Fprintf(&b, "longest linearizable prefix (%d ops), ending in state %d:\n", len(o.Best), o.FinalState)
	start := 0
	if len(o.Best) > 12 {
		start = len(o.Best) - 12
		fmt.Fprintf(&b, "  ... %d earlier ops elided ...\n", start)
	}
	for i := start; i < len(o.Best); i++ {
		fmt.Fprintf(&b, "  %3d. %s\n", i+1, o.model.format(&o.Best[i]))
	}
	fmt.Fprintf(&b, "no continuation explains any of the %d concurrent candidate(s):\n", len(o.Window))
	for i := range o.Window {
		fmt.Fprintf(&b, "   -> %s\n", o.model.format(&o.Window[i]))
	}
	return b.String()
}

// Option tunes a check.
type Option func(*options)

type options struct{ maxIters uint64 }

// WithMaxIters overrides the per-partition search budget.
func WithMaxIters(n uint64) Option { return func(o *options) { o.maxIters = n } }

// CheckSet checks a per-key ordered-set history (the common case for the
// intset harnesses) by partitioning on Key and running the set model on
// each subhistory.
func CheckSet(events []history.Event, opts ...Option) Outcome {
	return CheckPartitioned(SetModel(), events, opts...)
}

// CheckPartitioned partitions events by Key and checks each subhistory
// independently against the model. Sound whenever operations on distinct
// keys commute in the real object (true for sets and maps).
func CheckPartitioned(m Model, events []history.Event, opts ...Option) Outcome {
	o := options{maxIters: DefaultMaxIters}
	for _, fn := range opts {
		fn(&o)
	}
	parts := map[uint64][]history.Event{}
	for _, e := range events {
		parts[e.Key] = append(parts[e.Key], e)
	}
	keys := make([]uint64, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		out := checkOne(&m, parts[k], o.maxIters)
		if !out.OK {
			out.Ops = len(events)
			out.Partitions = len(parts)
			return out
		}
	}
	return Outcome{OK: true, Ops: len(events), Partitions: len(parts)}
}

// Check checks the whole history as one partition (for register/counter
// models whose operations do not commute across keys).
func Check(m Model, events []history.Event, opts ...Option) Outcome {
	o := options{maxIters: DefaultMaxIters}
	for _, fn := range opts {
		fn(&o)
	}
	out := checkOne(&m, events, o.maxIters)
	out.Ops = len(events)
	out.Partitions = 1
	return out
}

// entry is one call or return point in the doubly-linked real-time order.
// Call entries carry id >= 0; each call's matching return (nil for pending
// operations) is reachable via match.
type entry struct {
	ev         *history.Event
	id         int // operation id for calls, -1 for returns
	match      *entry
	time       uint64
	kind       uint8 // 0 = call, 1 = return
	prev, next *entry
}

// checkOne runs the cached Wing-Gong search over one partition.
func checkOne(m *Model, events []history.Event, maxIters uint64) Outcome {
	n := len(events)
	if n == 0 {
		return Outcome{OK: true}
	}
	evs := make([]history.Event, n)
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Inv < evs[j].Inv })

	// Build the call/return sequence sorted by timestamp; on equal
	// timestamps calls sort before returns, making the operations overlap
	// (the permissive reading of hand-crafted histories).
	points := make([]entry, 0, 2*n)
	for i := range evs {
		points = append(points, entry{ev: &evs[i], id: i, time: evs[i].Inv, kind: 0})
		if !evs[i].Pending() {
			points = append(points, entry{ev: &evs[i], id: -1, time: evs[i].Ret, kind: 1})
		}
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].time != points[j].time {
			return points[i].time < points[j].time
		}
		return points[i].kind < points[j].kind
	})
	// Link matches and the list (with a sentinel head).
	callOf := make(map[*history.Event]*entry, n)
	for i := range points {
		if points[i].id >= 0 {
			callOf[points[i].ev] = &points[i]
		}
	}
	for i := range points {
		if points[i].id < 0 {
			c := callOf[points[i].ev]
			c.match = &points[i]
			points[i].match = c
		}
	}
	head := &entry{id: -2}
	prev := head
	for i := range points {
		prev.next = &points[i]
		points[i].prev = prev
		prev = &points[i]
	}

	lift := func(call *entry) {
		call.prev.next = call.next
		if call.next != nil {
			call.next.prev = call.prev
		}
		if r := call.match; r != nil {
			r.prev.next = r.next
			if r.next != nil {
				r.next.prev = r.prev
			}
		}
	}
	unlift := func(call *entry) {
		if r := call.match; r != nil {
			r.prev.next = r
			if r.next != nil {
				r.next.prev = r
			}
		}
		call.prev.next = call
		if call.next != nil {
			call.next.prev = call
		}
	}

	type frame struct {
		call      *entry
		prevState uint64
	}
	var (
		stack      []frame
		state      = m.Init
		linearized = newBitset(n)
		cache      = map[uint64][]cacheEntry{}
		iters      uint64
		bestLen    = -1
		best       []history.Event
		bestState  uint64
		bestWindow []history.Event
	)
	snapshotBest := func() {
		bestLen = len(stack)
		best = best[:0]
		for _, f := range stack {
			best = append(best, *f.call.ev)
		}
		bestState = state
		bestWindow = bestWindow[:0]
		for e := head.next; e != nil; e = e.next {
			if e.id < 0 {
				break // first return bounds the candidate window
			}
			bestWindow = append(bestWindow, *e.ev)
			if len(bestWindow) >= 16 {
				break
			}
		}
	}
	snapshotBest()

	cur := head.next
	for {
		iters++
		if iters > maxIters {
			return Outcome{Inconclusive: true, Key: evs[0].Key, model: m}
		}
		if cur == nil {
			// Scanned the whole remaining list without meeting a return:
			// every completed operation is linearized (leftovers are
			// pending calls, which may legally never take effect).
			return Outcome{OK: true}
		}
		if cur.id >= 0 {
			ns, outOK := m.Step(state, cur.ev)
			if cur.ev.Pending() {
				outOK = true // a pending op's output is unconstrained
			}
			if outOK {
				linearized.set(uint64(cur.id))
				if cacheAdd(cache, linearized, ns) {
					stack = append(stack, frame{call: cur, prevState: state})
					state = ns
					lift(cur)
					if len(stack) > bestLen {
						snapshotBest()
					}
					cur = head.next
					continue
				}
				linearized.clear(uint64(cur.id))
			}
			cur = cur.next
			continue
		}
		// Hit a return: nothing before it could be linearized. Backtrack.
		if len(stack) == 0 {
			return Outcome{
				Key:        evs[0].Key,
				Best:       append([]history.Event(nil), best...),
				FinalState: bestState,
				Window:     append([]history.Event(nil), bestWindow...),
				model:      m,
			}
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = f.prevState
		linearized.clear(uint64(f.call.id))
		unlift(f.call)
		cur = f.call.next
	}
}

// bitset is a fixed-size bit vector identifying a set of linearized ops.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i uint64)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i uint64) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i uint64) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) hashWith(state uint64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	for _, w := range b {
		mix(w)
	}
	mix(state)
	return h
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

type cacheEntry struct {
	bits  bitset
	state uint64
}

// cacheAdd records (b, state), reporting true if it was not seen before.
func cacheAdd(cache map[uint64][]cacheEntry, b bitset, state uint64) bool {
	h := b.hashWith(state)
	for _, ce := range cache[h] {
		if ce.state == state && ce.bits.equal(b) {
			return false
		}
	}
	cache[h] = append(cache[h], cacheEntry{bits: append(bitset(nil), b...), state: state})
	return true
}
