package linearizability

import (
	"testing"

	"repro/internal/history"
)

// seqEvent builds a completed operation occupying [inv, inv+1] so handmade
// histories are strictly sequential.
func seqEvent(op uint8, key, arg, out uint64, ok bool, inv uint64) history.Event {
	return history.Event{Op: op, Key: key, Arg: arg, Out: out, OK: ok, Inv: inv, Ret: inv + 1}
}

func TestSnapshotSetModelAcceptsConsistentScans(t *testing.T) {
	evs := []history.Event{
		seqEvent(history.OpInsert, 3, 0, 0, true, 1),
		seqEvent(history.OpInsert, 5, 0, 0, true, 3),
		seqEvent(history.OpRange, 2, 6, 1<<3|1<<5, true, 5),
		seqEvent(history.OpDelete, 3, 0, 0, true, 7),
		seqEvent(history.OpKeys, 0, 7, 1<<5, true, 9),
		// Windowing: keys outside [4, 6] are invisible to this scan.
		seqEvent(history.OpRange, 4, 6, 1<<5, true, 11),
	}
	if out := Check(SnapshotSetModel(8), evs); !out.OK {
		t.Fatalf("consistent snapshot history rejected:\n%s", out.Explain())
	}
}

func TestSnapshotSetModelRejectsTornScan(t *testing.T) {
	// Writers keep {3, 5} moving together: 3 and 5 are inserted, then both
	// deleted. A scan claiming to have seen 5 without 3 mixes the two
	// states and must not linearize anywhere.
	evs := []history.Event{
		seqEvent(history.OpInsert, 3, 0, 0, true, 1),
		seqEvent(history.OpInsert, 5, 0, 0, true, 3),
		seqEvent(history.OpRange, 0, 7, 1<<5, true, 5),
		seqEvent(history.OpDelete, 3, 0, 0, true, 7),
		seqEvent(history.OpDelete, 5, 0, 0, true, 9),
	}
	if out := Check(SnapshotSetModel(8), evs); out.OK {
		t.Fatal("torn range scan accepted")
	}
}

func TestSnapshotSetModelIgnoresFailedScans(t *testing.T) {
	// An ok=false scan observed nothing: whatever is in Out, it linearizes.
	evs := []history.Event{
		seqEvent(history.OpInsert, 1, 0, 0, true, 1),
		seqEvent(history.OpRange, 0, 7, 0xdeadbeef, false, 3),
		seqEvent(history.OpKeys, 0, 7, 0xdeadbeef, false, 5),
		seqEvent(history.OpContains, 1, 0, 0, true, 7),
	}
	if out := Check(SnapshotSetModel(8), evs); !out.OK {
		t.Fatalf("failed scans must always linearize:\n%s", out.Explain())
	}
}
