// Package telemetry is the allocation-free metrics layer behind the
// experiment harness: power-of-two-bucket histograms, per-core single-writer
// recording structs merged at quiescence (mirroring the machine backend's
// CoreStats ownership discipline), a time-resolved interval sampler, and a
// Perfetto/Chrome trace-event exporter.
//
// The paper validates its headline claims by reading simulator traces
// ("examination of the simulator traces confirms that this performance
// improvement comes because of reduced coherence messaging"); end-of-run
// aggregates can show *that* a figure's shape reproduces but not *why*.
// This package records the distributions (per-op latency in simulated
// cycles, retries per op, tag-set occupancy, validate/VAS/IAS failure
// streaks) and the phase dynamics (per-window deltas) that the aggregates
// average away.
//
// Everything on the recording path is allocation-free and cheap enough to
// leave enabled during measured sweeps: histograms are fixed arrays,
// streaks are two words of state, and the sampler writes into buffers
// preallocated at enrolment. Only construction and export allocate.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// histBuckets is the number of histogram buckets: bucket i counts values v
// with bits.Len64(v) == i, i.e. bucket 0 holds the value 0 and bucket i>0
// holds [2^(i-1), 2^i). 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a fixed-size power-of-two-bucket histogram. Observe is
// allocation-free and costs a handful of instructions, so it can run on the
// simulator's per-operation path. A Histogram is single-writer; merge
// concurrent writers' histograms at quiescence with Merge.
type Histogram struct {
	count   uint64
	sum     uint64
	max     uint64
	min     uint64 // valid when count > 0
	buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// bucketOf returns the bucket index holding v: bits.Len64(v), i.e. bucket 0
// holds 0 and bucket b>0 holds [2^(b-1), 2^b).
func bucketOf(v uint64) int { return bits.Len64(v) }

// NumBuckets is the histogram bucket count (the size callers need for
// cumulative-bucket output arrays).
const NumBuckets = histBuckets

// BucketIndex is the exported bucketOf: the bucket index holding v. The
// Prometheus exposition uses it to place exemplars.
func BucketIndex(v uint64) int { return bucketOf(v) }

// BucketUpper returns bucket b's inclusive upper value bound (2^b - 1;
// bucket 0 holds only the value 0). The Prometheus exposition uses it as
// the le label.
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<b - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the
// observation rank is located in its bucket and the value is interpolated
// linearly across the bucket's range, clamped to the observed min/max so
// p0/p100 are exact.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min())
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.count)
	var cum float64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / float64(n)
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, float64(h.Min())), float64(h.max))
		}
		cum = next
	}
	return float64(h.max)
}

// bucketBounds returns the value range [lo, hi) covered by bucket b.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1)<<(b-1)) * 2
}

// Merge folds o into h. Merging concurrent writers' histograms is only
// meaningful at quiescence.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String renders a one-line summary ("n=1200 mean=410.2 p50=389 p99=2012
// max=4096"), for stress-harness logs.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%.0f p99=%.0f max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
	return b.String()
}
