package telemetry

// Test hooks for deterministic seqlock-failure injection: tear the most
// recently published slot of a core (leave its sequence odd, as if a
// publish parked mid-flight) and heal it again. Only the stream tests use
// these; production code never leaves a slot odd.

// StreamRetryLimit exposes the reader's per-slot retry budget.
const StreamRetryLimit = streamRetryLimit

// BeginTornPublishForTest makes core i's latest published slot appear
// mid-publish. Panics if the core has not published yet.
func (s *Stream) BeginTornPublishForTest(i int) {
	c := &s.cores[i]
	head := c.published.Load()
	if head == 0 {
		panic("telemetry: no published window to tear")
	}
	c.ring[int((head-1)%uint64(s.depth))].seq.Add(1)
}

// EndTornPublishForTest heals the slot torn by BeginTornPublishForTest.
func (s *Stream) EndTornPublishForTest(i int) {
	c := &s.cores[i]
	head := c.published.Load()
	c.ring[int((head-1)%uint64(s.depth))].seq.Add(1)
}
