package telemetry

import (
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 || h.Max() != 1000 || h.Min() != 1 {
		t.Fatalf("count/sum/max/min = %d/%d/%d/%d", h.Count(), h.Sum(), h.Max(), h.Min())
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %v, want 1000", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("p50 = %v, want within the value-3 bucket [2,4)", q)
	}
}

// TestHistogramQuantileAccuracy checks the power-of-two bucketing stays
// within one bucket (2x) of the exact quantile on a heavy-tailed sample.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	vals := make([]uint64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := uint64(rng.ExpFloat64() * 500)
		h.Observe(v)
		vals = append(vals, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		// Exact quantile by sorting a copy.
		sorted := append([]uint64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			}
		}
		exact := float64(sorted[int(q*float64(len(sorted)))-1])
		if exact == 0 {
			continue
		}
		if got < exact/2 || got > exact*2 {
			t.Errorf("q%.2f: got %v, exact %v (beyond one power-of-two bucket)", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(4)
	a.Observe(16)
	b.Observe(1)
	b.Observe(1024)
	a.Merge(&b)
	if a.Count() != 4 || a.Sum() != 1045 || a.Max() != 1024 || a.Min() != 1 {
		t.Fatalf("merged count/sum/max/min = %d/%d/%d/%d", a.Count(), a.Sum(), a.Max(), a.Min())
	}
}

func TestObserveAllocFree(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(100, func() { h.Observe(42) }); n != 0 {
		t.Fatalf("Observe: %v allocs, want 0", n)
	}
	c := NewSet(2).Core(0)
	if n := testing.AllocsPerRun(100, func() {
		c.NoteValidate(false)
		c.NoteValidate(true)
		c.NoteVAS(true)
		c.NoteTagOccupancy(3)
	}); n != 0 {
		t.Fatalf("Core notes: %v allocs, want 0", n)
	}
}

// TestStreakSumsMatchFailures pins the encoding invariant the accounting
// tests rely on: every individual failure contributes exactly 1 to the
// streak histogram's sum (after Flush).
func TestStreakSumsMatchFailures(t *testing.T) {
	var c Core
	rng := rand.New(rand.NewSource(7))
	fails := uint64(0)
	for i := 0; i < 1000; i++ {
		ok := rng.Intn(3) == 0
		if !ok {
			fails++
		}
		c.NoteValidate(ok)
	}
	c.Flush()
	if got := c.ValidateStreak.Sum(); got != fails {
		t.Fatalf("streak sum = %d, want %d failures", got, fails)
	}
	// A streak histogram's count is the number of maximal runs; each run
	// has length >= 1, so count <= sum.
	if c.ValidateStreak.Count() > c.ValidateStreak.Sum() {
		t.Fatal("more streaks than failures")
	}
}

func TestSetMerge(t *testing.T) {
	s := NewSet(3)
	s.Core(0).OpLatency.Observe(10)
	s.Core(1).OpLatency.Observe(20)
	s.Core(2).NoteVAS(false)
	s.Flush()
	agg := s.Merge()
	if agg.OpLatency.Count() != 2 || agg.VASStreak.Sum() != 1 {
		t.Fatalf("aggregate: lat count %d, vas streak sum %d", agg.OpLatency.Count(), agg.VASStreak.Sum())
	}
}

func TestSamplerWindows(t *testing.T) {
	s := NewSampler(2, 100, 16)
	s.Enroll(0, 1000, 0)
	s.Enroll(1, 1000, 5)
	// Core 0: ops at cycles 1010..1390, one per 20 cycles, no fails.
	for c := uint64(1010); c < 1400; c += 20 {
		s.Tick(0, c, 0)
	}
	// Core 1: 4 ops in the second window, 2 fails total.
	s.Tick(1, 1150, 6)
	s.Tick(1, 1160, 7)
	s.Tick(1, 1170, 7)
	s.Tick(1, 1190, 7)
	ws := s.Windows()
	if len(ws) != 4 {
		t.Fatalf("windows = %d, want 4", len(ws))
	}
	if ws[0].Ops != 5 || ws[0].Fails != 0 {
		t.Fatalf("w0 = %+v, want 5 ops 0 fails", ws[0])
	}
	if ws[1].Ops != 9 || ws[1].Fails != 2 {
		t.Fatalf("w1 = %+v, want 9 ops 2 fails", ws[1])
	}
	if ws[0].Start != 0 || ws[0].End != 100 || ws[3].End != 400 {
		t.Fatalf("window bounds wrong: %+v .. %+v", ws[0], ws[3])
	}
	var ops uint64
	for _, w := range ws {
		ops += w.Ops
	}
	if ops != 24 {
		t.Fatalf("total ops = %d, want 24", ops)
	}
}

// TestSamplerFolds checks a run that outlives the window budget degrades
// to coarser windows without losing ops.
func TestSamplerFolds(t *testing.T) {
	s := NewSampler(1, 10, 4)
	s.Enroll(0, 0, 0)
	for c := uint64(0); c < 1000; c += 5 {
		s.Tick(0, c, 0)
	}
	ws := s.Windows()
	if len(ws) > 4 {
		t.Fatalf("windows = %d, want <= budget 4", len(ws))
	}
	if len(ws) < 2 {
		t.Fatalf("windows = %d, want >= 2", len(ws))
	}
	var ops uint64
	for _, w := range ws {
		ops += w.Ops
	}
	if ops != 200 {
		t.Fatalf("folding lost ops: %d, want 200", ops)
	}
	if ws[0].End-ws[0].Start < 10 {
		t.Fatal("interval did not coarsen")
	}
}

func TestSamplerTickAllocFree(t *testing.T) {
	s := NewSampler(1, 100, 64)
	s.Enroll(0, 0, 0)
	clock := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		clock += 7
		s.Tick(0, clock, 0)
	}); n != 0 {
		t.Fatalf("Tick: %v allocs, want 0", n)
	}
}

// TestSamplerMixedIntervals merges cores that folded different amounts.
func TestSamplerMixedIntervals(t *testing.T) {
	s := NewSampler(2, 10, 4)
	s.Enroll(0, 0, 0)
	s.Enroll(1, 0, 0)
	for c := uint64(0); c < 400; c += 4 {
		s.Tick(0, c, 0) // long run: folds
	}
	s.Tick(1, 5, 0) // short run: stays fine-grained until merge
	s.Tick(1, 15, 0)
	ws := s.Windows()
	var ops uint64
	for i, w := range ws {
		ops += w.Ops
		if w.End-w.Start != ws[0].End-ws[0].Start {
			t.Fatalf("window %d has different width", i)
		}
	}
	if ops != 102 {
		t.Fatalf("ops = %d, want 102", ops)
	}
}
