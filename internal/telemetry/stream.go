package telemetry

import "sync/atomic"

// Stream is the mid-run view: per-core time-resolved windows (ops, fails
// and a latency histogram each) that concurrent readers may snapshot WHILE
// the cores are writing. It exists because Core/Sampler are quiescence-only
// by contract — their plain fields are single-writer and merging them
// mid-run is a data race — which is fine for experiment sweeps but useless
// for a network service whose /metrics endpoint must report p99s during
// the run.
//
// The reader-writer protocol is a per-slot seqlock over a bounded ring of
// published windows:
//
//   - Each core accumulates the live window in writer-private plain fields
//     (never read by anyone else), so the per-op cost stays a histogram
//     observe plus two uncontended atomic adds for the cumulative totals.
//   - When the clock crosses a window boundary the writer publishes the
//     window into its ring: bump the slot's sequence to odd, store every
//     field with atomic stores, bump back to even. Publishing is the only
//     place the shared slots are written, and it is allocation-free.
//   - A reader copies a slot with atomic loads bracketed by two sequence
//     reads, retrying on a mismatch (a publish raced the copy) and giving
//     up on a slot after streamRetryLimit attempts. Every escaped snapshot
//     is therefore a consistent window — the torn-read stress test pins
//     exactly that — and because all shared accesses are atomic the
//     protocol is clean under the race detector, not just in theory.
//
// Cumulative per-core op/fail totals are plain atomic counters readable at
// any instant; they are monotonic, which the soak tests assert across
// scrapes. The quiescent Core/Sampler contract is untouched: a Stream is an
// additional sink, not a replacement, and attaching one keeps the hot path
// at 0 allocs/op (pinned by budget tests here and in internal/serve).
type Stream struct {
	every uint64
	depth int
	cores []streamCore
}

// streamRetryLimit bounds seqlock retries per slot before the reader skips
// it: a slot that stays odd means its writer is mid-publish (or parked by a
// test hook), and a metrics scrape must not spin on it.
const streamRetryLimit = 8

// StreamWindow is one consistent published window of one core (or, from
// ReadMergedWindows, of all cores folded together).
type StreamWindow struct {
	// Start/End bound the window in the writer's clock units (the serve
	// layer feeds host nanoseconds since server start; workload.Run feeds
	// the backend op clock).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Ops/Fails are the operations completed and validation/commit
	// failures burned in the window.
	Ops   uint64 `json:"ops"`
	Fails uint64 `json:"fails"`
	// Count/Sum/Max mirror the window latency histogram's aggregates
	// (Count == Ops whenever every op ticks exactly once — the torn-read
	// oracle relies on that).
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	// P50/P99 are quantiles of the window's latency histogram.
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// streamSlot is one published window. All fields are atomics so concurrent
// snapshot copies are race-clean; seq is the slot's seqlock (odd while a
// publish is in flight).
type streamSlot struct {
	seq        atomic.Uint64
	start, end atomic.Uint64
	ops, fails atomic.Uint64
	count, sum atomic.Uint64
	max, min   atomic.Uint64
	buckets    [histBuckets]atomic.Uint64
}

// streamCore is one core's streaming state: a writer-private live window
// plus the shared ring and cumulative totals.
type streamCore struct {
	// Writer-private accumulation; only the owning goroutine touches these.
	enrolled           bool
	winStart           uint64
	liveOps, liveFails uint64
	live               Histogram

	// Shared with readers.
	ops, fails atomic.Uint64 // cumulative, monotonic
	published  atomic.Uint64 // windows published so far (ring head)
	ring       []streamSlot

	// Cumulative latency histogram (count, sum, power-of-two buckets), all
	// monotonic atomics: the Prometheus le-bucket exposition reads these
	// mid-run, where the quiescence-only plain histograms would race.
	cumCount, cumSum atomic.Uint64
	cumBuckets       [histBuckets]atomic.Uint64

	_ [64]byte // keep adjacent cores' hot atomics off one line
}

// NewStream creates streaming telemetry for n cores with the given clock
// interval per window and a ring of depth published windows per core.
// every must be > 0; depth < 2 is raised to 2.
func NewStream(n int, every uint64, depth int) *Stream {
	if every == 0 {
		panic("telemetry: stream interval must be > 0")
	}
	if depth < 2 {
		depth = 2
	}
	s := &Stream{every: every, depth: depth, cores: make([]streamCore, n)}
	for i := range s.cores {
		s.cores[i].ring = make([]streamSlot, depth)
	}
	return s
}

// Every returns the window width in clock units.
func (s *Stream) Every() uint64 { return s.every }

// Depth returns the per-core ring capacity in windows.
func (s *Stream) Depth() int { return s.depth }

// NumCores returns the number of per-core streams.
func (s *Stream) NumCores() int { return len(s.cores) }

// Tick records one completed operation for core i: the clock at completion,
// the op's latency, and the failures it burned. It must only be called by
// core i's owning goroutine (or under the same lock serializing that
// core's ops). Allocation-free, including window publication.
func (s *Stream) Tick(i int, clock, latency, fails uint64) {
	c := &s.cores[i]
	if !c.enrolled {
		c.enrolled = true
		// Align the window origin to a multiple of the interval so every
		// core's windows share boundaries and merge by Start.
		c.winStart = clock - clock%s.every
	}
	for clock-c.winStart >= s.every {
		if c.liveOps == 0 && c.liveFails == 0 {
			// Fast-forward an idle gap: anything older than the ring can
			// hold would be overwritten unread, so publish at most depth
			// empty windows.
			gap := (clock - c.winStart) / s.every
			if gap > uint64(s.depth) {
				c.winStart += (gap - uint64(s.depth)) * s.every
			}
		}
		c.publish(s)
	}
	c.liveOps++
	c.liveFails += fails
	c.live.Observe(latency)
	c.ops.Add(1)
	if fails != 0 {
		c.fails.Add(fails)
	}
	c.cumCount.Add(1)
	c.cumSum.Add(latency)
	c.cumBuckets[bucketOf(latency)].Add(1)
}

// Flush publishes core i's live window even though its interval has not
// elapsed, so a final scrape after shutdown sees the run's tail. Writer-
// side: same ownership rule as Tick.
func (s *Stream) Flush(i int) {
	c := &s.cores[i]
	if !c.enrolled || (c.liveOps == 0 && c.liveFails == 0) {
		return
	}
	c.publish(s)
}

// publish moves the live window into the ring under the slot's seqlock.
func (c *streamCore) publish(s *Stream) {
	slot := &c.ring[int(c.published.Load()%uint64(s.depth))]
	slot.seq.Add(1) // odd: publish in flight
	slot.start.Store(c.winStart)
	slot.end.Store(c.winStart + s.every)
	slot.ops.Store(c.liveOps)
	slot.fails.Store(c.liveFails)
	slot.count.Store(c.live.count)
	slot.sum.Store(c.live.sum)
	slot.max.Store(c.live.max)
	slot.min.Store(c.live.Min())
	for b := range slot.buckets {
		slot.buckets[b].Store(c.live.buckets[b])
	}
	slot.seq.Add(1) // even: consistent
	c.published.Add(1)
	c.winStart += s.every
	c.liveOps, c.liveFails = 0, 0
	c.live.Reset()
}

// slotCopy is a reader's consistent copy of one slot.
type slotCopy struct {
	start, end, ops, fails uint64
	hist                   Histogram
}

// copySlot snapshots a slot under its seqlock. It reports whether a
// consistent copy was obtained within the retry budget and how many
// retries were burned.
func copySlot(slot *streamSlot, out *slotCopy) (ok bool, retries int) {
	for attempt := 0; attempt < streamRetryLimit; attempt++ {
		s1 := slot.seq.Load()
		if s1%2 != 0 {
			retries++
			continue
		}
		out.start = slot.start.Load()
		out.end = slot.end.Load()
		out.ops = slot.ops.Load()
		out.fails = slot.fails.Load()
		out.hist.count = slot.count.Load()
		out.hist.sum = slot.sum.Load()
		out.hist.max = slot.max.Load()
		out.hist.min = slot.min.Load()
		for b := range out.hist.buckets {
			out.hist.buckets[b] = slot.buckets[b].Load()
		}
		if slot.seq.Load() == s1 {
			return true, retries
		}
		retries++
	}
	return false, retries
}

// window renders a slot copy as a StreamWindow.
func (sc *slotCopy) window() StreamWindow {
	return StreamWindow{
		Start: sc.start,
		End:   sc.end,
		Ops:   sc.ops,
		Fails: sc.fails,
		Count: sc.hist.Count(),
		Sum:   sc.hist.Sum(),
		Max:   sc.hist.Max(),
		P50:   sc.hist.Quantile(0.50),
		P99:   sc.hist.Quantile(0.99),
	}
}

// ReadCore snapshots core i's published windows, oldest first, into
// buf[:0] (allocation-free when cap(buf) >= Depth()). It returns the
// windows and the seqlock retries burned; slots that stayed inconsistent
// past the retry budget are skipped, so every returned window is
// internally consistent. Safe to call from any goroutine at any time.
func (s *Stream) ReadCore(i int, buf []StreamWindow) ([]StreamWindow, int) {
	c := &s.cores[i]
	buf = buf[:0]
	retries := 0
	head := c.published.Load()
	lo := uint64(0)
	if head > uint64(s.depth) {
		lo = head - uint64(s.depth)
	}
	var sc slotCopy
	for w := lo; w < head; w++ {
		ok, r := copySlot(&c.ring[int(w%uint64(s.depth))], &sc)
		retries += r
		if ok {
			buf = append(buf, sc.window())
		}
	}
	return buf, retries
}

// CumulativeLatency sums the cores' cumulative latency histograms into
// buckets (power-of-two, index = bits.Len64(latency)) and returns the total
// count and sum. Every counter read is an atomic load of a monotonic
// counter, so repeated scrapes never see a bucket, the count, or the sum
// regress — exactly the contract a Prometheus counter histogram needs.
// Safe at any time; buckets must have NumBuckets entries.
func (s *Stream) CumulativeLatency(buckets *[NumBuckets]uint64) (count, sum uint64) {
	for i := range s.cores {
		c := &s.cores[i]
		count += c.cumCount.Load()
		sum += c.cumSum.Load()
		for b := range buckets {
			buckets[b] += c.cumBuckets[b].Load()
		}
	}
	return count, sum
}

// Totals returns the cumulative operation and failure counts over all
// cores. Each per-core counter is monotonic, so so is the sum — the soak
// tests assert it never regresses across scrapes. Safe at any time.
func (s *Stream) Totals() (ops, fails uint64) {
	for i := range s.cores {
		ops += s.cores[i].ops.Load()
		fails += s.cores[i].fails.Load()
	}
	return ops, fails
}

// ReadMergedWindows snapshots every core's ring and folds windows with the
// same Start together (cores align their window origins, so equal Start
// means the same clock span), merging the latency histograms bucket-wise
// before computing quantiles. Windows come back sorted by Start. This is
// the /metrics scrape path; unlike ReadCore it allocates.
func (s *Stream) ReadMergedWindows() ([]StreamWindow, int) {
	type agg struct {
		ops, fails uint64
		end        uint64
		hist       Histogram
	}
	merged := map[uint64]*agg{}
	retries := 0
	var sc slotCopy
	for i := range s.cores {
		c := &s.cores[i]
		head := c.published.Load()
		lo := uint64(0)
		if head > uint64(s.depth) {
			lo = head - uint64(s.depth)
		}
		for w := lo; w < head; w++ {
			ok, r := copySlot(&c.ring[int(w%uint64(s.depth))], &sc)
			retries += r
			if !ok {
				continue
			}
			a := merged[sc.start]
			if a == nil {
				a = &agg{end: sc.end}
				merged[sc.start] = a
			}
			a.ops += sc.ops
			a.fails += sc.fails
			a.hist.Merge(&sc.hist)
		}
	}
	out := make([]StreamWindow, 0, len(merged))
	for start, a := range merged {
		out = append(out, StreamWindow{
			Start: start,
			End:   a.end,
			Ops:   a.ops,
			Fails: a.fails,
			Count: a.hist.Count(),
			Sum:   a.hist.Sum(),
			Max:   a.hist.Max(),
			P50:   a.hist.Quantile(0.50),
			P99:   a.hist.Quantile(0.99),
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Start > out[j].Start; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, retries
}
