package telemetry

// Sampler is the time-resolved view: it splits a run into fixed-width
// windows of the backend clock (simulated cycles on the machine backend,
// memory-op ticks on vtags) and accumulates per-window deltas — ops
// completed and validation/commit failures — so a sweep cell reports a
// time series exposing warmup, contention collapse and elision-mode flips
// instead of one flat average.
//
// Recording follows the same single-writer discipline as Core: each
// simulated core ticks only its own window array (preallocated at
// construction, so the per-op path never allocates) and the arrays are
// merged at quiescence. When a run outlives the per-core window budget the
// core's interval doubles and its windows fold pairwise, so long runs
// degrade to coarser windows instead of dropping data; Windows() folds
// every core to the coarsest interval before summing.
type Sampler struct {
	every uint64 // requested (finest) interval
	maxW  int
	cores []coreSampler
}

// WindowDelta is one core's accumulation for one window.
type WindowDelta struct {
	Ops   uint64
	Fails uint64
}

type coreSampler struct {
	base      uint64 // clock at enrolment: window 0 starts here
	interval  uint64
	lastFails uint64
	windows   []WindowDelta // len grows to the highest touched index; cap fixed
}

// Window is one merged window of the run, in backend clock units since the
// earliest enrolment.
type Window struct {
	// Start/End are the window bounds in clock units relative to the
	// sampled phase's start (core enrolment).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Ops is the number of structure operations completed in the window.
	Ops uint64 `json:"ops"`
	// Fails is the number of validation/commit failures in the window — a
	// spike here with flat Ops is contention collapse.
	Fails uint64 `json:"fails"`
}

// NewSampler creates a sampler for n cores with the given clock interval
// per window and per-core window budget (folding doubles the interval when
// a run exceeds it). every must be > 0; maxWindows >= 2.
func NewSampler(n int, every uint64, maxWindows int) *Sampler {
	if every == 0 {
		panic("telemetry: sampler interval must be > 0")
	}
	if maxWindows < 2 {
		maxWindows = 2
	}
	s := &Sampler{every: every, maxW: maxWindows, cores: make([]coreSampler, n)}
	for i := range s.cores {
		s.cores[i] = coreSampler{
			interval: every,
			windows:  make([]WindowDelta, 0, maxWindows),
		}
	}
	return s
}

// Interval returns the requested (finest) window width.
func (s *Sampler) Interval() uint64 { return s.every }

// Enroll marks the start of core i's sampled phase: the current clock
// becomes its window-0 origin and the failure counter baseline.
func (s *Sampler) Enroll(i int, clock, fails uint64) {
	c := &s.cores[i]
	c.base = clock
	c.lastFails = fails
	c.windows = c.windows[:0]
	c.interval = s.every
}

// Tick records one completed operation for core i at the given clock, with
// the core's cumulative failure counter. Allocation-free: the window array
// was preallocated and only its length advances.
func (s *Sampler) Tick(i int, clock, fails uint64) {
	c := &s.cores[i]
	if clock < c.base {
		clock = c.base // clock regressions cannot happen; be safe anyway
	}
	idx := int((clock - c.base) / c.interval)
	for idx >= s.maxW {
		c.fold()
		idx = int((clock - c.base) / c.interval)
	}
	for len(c.windows) <= idx {
		// Extend into the preallocated capacity, zeroing the slot: a fold
		// may have truncated the slice over stale deltas.
		c.windows = append(c.windows[:len(c.windows):cap(c.windows)], WindowDelta{})
	}
	w := &c.windows[idx]
	w.Ops++
	w.Fails += fails - c.lastFails
	c.lastFails = fails
}

// fold halves the core's resolution: pairs of windows combine and the
// interval doubles, freeing half the budget for the run's continuation.
func (c *coreSampler) fold() {
	n := (len(c.windows) + 1) / 2
	for i := 0; i < n; i++ {
		w := c.windows[2*i]
		if 2*i+1 < len(c.windows) {
			w.Ops += c.windows[2*i+1].Ops
			w.Fails += c.windows[2*i+1].Fails
		}
		c.windows[i] = w
	}
	c.windows = c.windows[:n]
	c.interval *= 2
}

// Windows merges the per-core arrays into one run-level time series. Every
// core is folded to the coarsest interval any core reached, so window i of
// the result covers the same clock span on every core. Only call at
// quiescence.
func (s *Sampler) Windows() []Window {
	coarsest := s.every
	for i := range s.cores {
		if s.cores[i].interval > coarsest {
			coarsest = s.cores[i].interval
		}
	}
	var out []Window
	for i := range s.cores {
		c := &s.cores[i]
		for c.interval < coarsest && len(c.windows) > 0 {
			c.fold()
		}
		for wi, w := range c.windows {
			for len(out) <= wi {
				out = append(out, Window{
					Start: uint64(len(out)) * coarsest,
					End:   uint64(len(out)+1) * coarsest,
				})
			}
			out[wi].Ops += w.Ops
			out[wi].Fails += w.Fails
		}
	}
	return out
}
