package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceCollectorWriteJSON(t *testing.T) {
	c := NewTraceCollector(2)
	c.OpSpan(0, "Insert", 100, 250)
	c.OpSpan(1, "Contains", 120, 180)
	c.Add(TraceEvent{Name: "TagAdd", Core: 0, Target: -1, Line: 17, Cycle: 110})
	c.Add(TraceEvent{Name: "Invalidation", Core: 0, Target: 1, Line: 17, Cycle: 200})
	c.Add(TraceEvent{Name: "TagEvicted", Core: -1, Target: 1, Line: 9, Cycle: 0}) // ghost

	if c.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", c.Events())
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			ID   int     `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	// Monotonic ts per (pid, tid) track — what the CI validator enforces.
	last := map[[2]int]float64{}
	phs := map[string]int{}
	flows := map[int][]string{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "" {
			t.Fatalf("event %q has no phase", ev.Name)
		}
		phs[ev.Ph]++
		key := [2]int{ev.Pid, ev.Tid}
		if ev.Ts < last[key] {
			t.Fatalf("ts regressed on track %v: %v < %v", key, ev.Ts, last[key])
		}
		last[key] = ev.Ts
		if ev.Ph == "s" || ev.Ph == "f" {
			flows[ev.ID] = append(flows[ev.ID], ev.Ph)
		}
	}
	for _, want := range []string{"M", "X", "i", "s", "f"} {
		if phs[want] == 0 {
			t.Errorf("no %q events emitted", want)
		}
	}
	// Every flow id has a start before its finish.
	for id, seq := range flows {
		if len(seq) != 2 || seq[0] != "s" || seq[1] != "f" {
			t.Errorf("flow %d: sequence %v, want [s f]", id, seq)
		}
	}
}

func TestTraceCollectorGhostOverflow(t *testing.T) {
	c := NewTraceCollector(1)
	c.Add(TraceEvent{Name: "Invalidation", Core: -1, Target: 0, Line: 1, Cycle: 5})
	if len(c.overflow) != 1 {
		t.Fatal("ghost event not routed to the overflow buffer")
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
