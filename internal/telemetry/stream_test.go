package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// patLat/patFails derive an op's latency and failure count from the index
// of the window it lands in. Every op in window w carries exactly
// (patLat(w), patFails(w)), so any internally consistent window snapshot
// must satisfy Sum == Ops*patLat(w), Fails == Ops*patFails(w), Count ==
// Ops, Max == patLat(w). A torn read mixing two windows' fields breaks at
// least one of these — that is the oracle.
func patLat(widx uint64) uint64   { return widx*3 + 1 }
func patFails(widx uint64) uint64 { return widx % 5 }

func checkWindowPattern(t *testing.T, every uint64, win StreamWindow) {
	t.Helper()
	if win.End != win.Start+every {
		t.Fatalf("window [%d,%d) is not %d wide", win.Start, win.End, every)
	}
	if win.Start%every != 0 {
		t.Fatalf("window start %d not aligned to %d", win.Start, every)
	}
	widx := win.Start / every
	l, f := patLat(widx), patFails(widx)
	if win.Count != win.Ops {
		t.Fatalf("window %d: count %d != ops %d (torn read escaped)", widx, win.Count, win.Ops)
	}
	if win.Sum != win.Ops*l {
		t.Fatalf("window %d: sum %d != ops %d * lat %d (torn read escaped)", widx, win.Sum, win.Ops, l)
	}
	if win.Fails != win.Ops*f {
		t.Fatalf("window %d: fails %d != ops %d * %d (torn read escaped)", widx, win.Fails, win.Ops, f)
	}
	if win.Ops > 0 && win.Max != l {
		t.Fatalf("window %d: max %d != lat %d (torn read escaped)", widx, win.Max, l)
	}
}

func TestStreamWindows(t *testing.T) {
	const every = 1000
	s := NewStream(1, every, 8)
	// 10 ops per window across 3 full windows, patterned.
	for c := uint64(0); c < 3*every; c += every / 10 {
		widx := c / every
		s.Tick(0, c, patLat(widx), patFails(widx))
	}
	// Windows 0 and 1 are complete; window 2 is live until the clock
	// crosses its end.
	wins, retries := s.ReadCore(0, nil)
	if retries != 0 {
		t.Fatalf("unexpected seqlock retries on quiet stream: %d", retries)
	}
	if len(wins) != 2 {
		t.Fatalf("published windows = %d, want 2", len(wins))
	}
	for i, w := range wins {
		if w.Start != uint64(i)*every {
			t.Fatalf("window %d start = %d", i, w.Start)
		}
		if w.Ops != 10 {
			t.Fatalf("window %d ops = %d, want 10", i, w.Ops)
		}
		checkWindowPattern(t, every, w)
	}
	// Flush publishes the live tail.
	s.Flush(0)
	wins, _ = s.ReadCore(0, wins)
	if len(wins) != 3 {
		t.Fatalf("after flush, windows = %d, want 3", len(wins))
	}
	checkWindowPattern(t, every, wins[2])
	ops, fails := s.Totals()
	if ops != 30 {
		t.Fatalf("total ops = %d, want 30", ops)
	}
	wantFails := uint64(10 * (patFails(0) + patFails(1) + patFails(2)))
	if fails != wantFails {
		t.Fatalf("total fails = %d, want %d", fails, wantFails)
	}
}

func TestStreamUnalignedEnroll(t *testing.T) {
	const every = 1000
	s := NewStream(2, every, 8)
	// Core 0 starts mid-window, core 1 at a boundary: both must align
	// their windows to multiples of every so merging by Start is sound.
	s.Tick(0, 2345, patLat(2), patFails(2))
	s.Tick(1, 2000, patLat(2), patFails(2))
	for c := uint64(3000); c < 4000; c += 100 {
		s.Tick(0, c, patLat(3), patFails(3))
		s.Tick(1, c, patLat(3), patFails(3))
	}
	for i := 0; i < 2; i++ {
		wins, _ := s.ReadCore(i, nil)
		if len(wins) != 1 {
			t.Fatalf("core %d windows = %d, want 1", i, len(wins))
		}
		if wins[0].Start != 2000 {
			t.Fatalf("core %d window start = %d, want 2000", i, wins[0].Start)
		}
		checkWindowPattern(t, every, wins[0])
	}
}

func TestStreamIdleFastForward(t *testing.T) {
	const every, depth = 1000, 4
	s := NewStream(1, every, depth)
	s.Tick(0, 500, patLat(0), patFails(0))
	// Jump 100 windows ahead: the stream must not publish 100 empty
	// windows one by one — the ring only holds depth anyway.
	s.Tick(0, 100_500, patLat(100), patFails(100))
	wins, _ := s.ReadCore(0, nil)
	if len(wins) == 0 || len(wins) > depth {
		t.Fatalf("windows after idle gap = %d, want 1..%d", len(wins), depth)
	}
	// The op from window 0 must have been published before the gap was
	// skipped — the ring may since have overwritten it, but the totals
	// must not lose it.
	if ops, _ := s.Totals(); ops != 2 {
		t.Fatalf("totals ops = %d, want 2", ops)
	}
	// Newest published window precedes the live window 100.
	last := wins[len(wins)-1]
	if last.End > 100_000 {
		t.Fatalf("published window end %d overlaps live window", last.End)
	}
	s.Flush(0)
	wins, _ = s.ReadCore(0, wins)
	last = wins[len(wins)-1]
	if last.Start != 100_000 || last.Ops != 1 {
		t.Fatalf("flushed window = %+v, want start 100000 ops 1", last)
	}
}

func TestStreamRingOverwrite(t *testing.T) {
	const every, depth = 100, 4
	s := NewStream(1, every, depth)
	// Publish 20 windows, one op each.
	for w := uint64(0); w < 20; w++ {
		s.Tick(0, w*every, patLat(w), patFails(w))
	}
	wins, _ := s.ReadCore(0, nil)
	if len(wins) != depth {
		t.Fatalf("windows = %d, want ring depth %d", len(wins), depth)
	}
	for i, w := range wins {
		// Oldest-first: windows 15..18 (19 is live).
		want := uint64(15 + i)
		if w.Start/every != want {
			t.Fatalf("window %d start = %d, want window %d", i, w.Start, want)
		}
		checkWindowPattern(t, every, w)
	}
}

// TestStreamTornSlotSkipped pins the reader's bounded-retry contract: a
// slot whose writer parked mid-publish (sequence left odd) burns the
// retry budget and is skipped — never returned torn, and never spun on
// forever.
func TestStreamTornSlotSkipped(t *testing.T) {
	const every = 1000
	s := NewStream(1, every, 8)
	for c := uint64(0); c < 3*every; c += every / 4 {
		widx := c / every
		s.Tick(0, c, patLat(widx), patFails(widx))
	}
	wins, retries := s.ReadCore(0, nil)
	if len(wins) != 2 || retries != 0 {
		t.Fatalf("baseline: windows=%d retries=%d, want 2, 0", len(wins), retries)
	}

	s.BeginTornPublishForTest(0) // window 1's slot now looks mid-publish
	wins, retries = s.ReadCore(0, wins)
	if len(wins) != 1 {
		t.Fatalf("torn: windows = %d, want 1 (torn slot skipped)", len(wins))
	}
	if wins[0].Start != 0 {
		t.Fatalf("torn: surviving window start = %d, want 0", wins[0].Start)
	}
	if retries < StreamRetryLimit {
		t.Fatalf("torn: retries = %d, want >= %d", retries, StreamRetryLimit)
	}
	merged, mretries := s.ReadMergedWindows()
	if len(merged) != 1 || mretries < StreamRetryLimit {
		t.Fatalf("torn merged: windows=%d retries=%d", len(merged), mretries)
	}

	s.EndTornPublishForTest(0)
	wins, retries = s.ReadCore(0, wins)
	if len(wins) != 2 || retries != 0 {
		t.Fatalf("healed: windows=%d retries=%d, want 2, 0", len(wins), retries)
	}
	checkWindowPattern(t, every, wins[1])
}

// TestStreamConcurrentReaders is the -race stress for the streaming read
// path: cores write patterned windows flat out while readers snapshot
// them, and every escaped window must satisfy the pattern oracle exactly.
func TestStreamConcurrentReaders(t *testing.T) {
	const (
		cores   = 4
		readers = 4
		every   = 1000
		opsPerW = 8
		windows = 400
	)
	s := NewStream(cores, every, 16)
	var done atomic.Bool
	var wg sync.WaitGroup

	var sawWindows [readers]uint64
	var sawRetries [readers]uint64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]StreamWindow, 0, s.Depth())
			var lastOps uint64
			for !done.Load() {
				for i := 0; i < cores; i++ {
					var retries int
					buf, retries = s.ReadCore(i, buf)
					sawRetries[r] += uint64(retries)
					for _, w := range buf {
						checkWindowPattern(t, every, w)
						sawWindows[r]++
					}
				}
				merged, retries := s.ReadMergedWindows()
				sawRetries[r] += uint64(retries)
				for _, w := range merged {
					checkWindowPattern(t, every, w)
				}
				for i := 1; i < len(merged); i++ {
					if merged[i-1].Start >= merged[i].Start {
						t.Errorf("merged windows unsorted: %d then %d", merged[i-1].Start, merged[i].Start)
					}
				}
				ops, _ := s.Totals()
				if ops < lastOps {
					t.Errorf("totals regressed: %d after %d", ops, lastOps)
				}
				lastOps = ops
			}
		}(r)
	}

	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for c := uint64(0); c < windows*every; c += every / opsPerW {
				widx := c / every
				s.Tick(i, c, patLat(widx), patFails(widx))
			}
			s.Flush(i)
		}(i)
	}

	// Writers finish when the totals reach the full op count; then stop
	// the readers and wait everyone out.
	want := uint64(cores * windows * opsPerW)
	for {
		if ops, _ := s.Totals(); ops >= want {
			break
		}
		runtime.Gosched()
	}
	done.Store(true)
	wg.Wait()

	var windowsSeen uint64
	for r := 0; r < readers; r++ {
		windowsSeen += sawWindows[r]
	}
	if windowsSeen == 0 {
		t.Fatal("readers never observed a published window (vacuous stress)")
	}
	ops, fails := s.Totals()
	if want := uint64(cores * windows * opsPerW); ops != want {
		t.Fatalf("total ops = %d, want %d", ops, want)
	}
	var wantFails uint64
	for w := uint64(0); w < windows; w++ {
		wantFails += patFails(w) * opsPerW
	}
	wantFails *= cores
	if fails != wantFails {
		t.Fatalf("total fails = %d, want %d", fails, wantFails)
	}
	t.Logf("readers saw %d consistent windows, %d+%d+%d+%d seqlock retries",
		windowsSeen, sawRetries[0], sawRetries[1], sawRetries[2], sawRetries[3])
}

func TestStreamAllocFree(t *testing.T) {
	const every = 1000
	s := NewStream(1, every, 8)
	clock := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		widx := clock / every
		s.Tick(0, clock, patLat(widx), patFails(widx))
		clock += every / 4 // crosses a window boundary every 4th tick
	}); n != 0 {
		t.Fatalf("Stream.Tick allocates %.1f/op, want 0", n)
	}
	buf := make([]StreamWindow, 0, s.Depth())
	if n := testing.AllocsPerRun(200, func() {
		buf, _ = s.ReadCore(0, buf)
	}); n != 0 {
		t.Fatalf("Stream.ReadCore allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_, _ = s.Totals()
	}); n != 0 {
		t.Fatalf("Stream.Totals allocates %.1f/op, want 0", n)
	}
}
