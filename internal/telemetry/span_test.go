package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTailPolicyClassify(t *testing.T) {
	pol := TailPolicy{LatencyNS: 1000, Attempts: 3}
	cases := []struct {
		name string
		sp   Span
		want uint8
	}{
		{"fast-clean", Span{Start: 0, End: 500, NAttempts: 1}, 0},
		{"slow", Span{Start: 0, End: 1000, NAttempts: 1}, KeptLatency},
		{"retries", Span{Start: 0, End: 10, NAttempts: 3}, KeptRetries},
		{"overflow", Span{Start: 0, End: 10, NAttempts: 1, Overflows: 1}, KeptOverflow},
		{"error", Span{Start: 0, End: 10, Err: true}, KeptError},
		{"slow-error", Span{Start: 0, End: 2000, Err: true}, KeptLatency | KeptError},
	}
	for _, c := range cases {
		if got := pol.Classify(&c.sp); got != c.want {
			t.Errorf("%s: Classify = %#x, want %#x", c.name, got, c.want)
		}
	}
	// Disabled criteria never fire; overflow and error always keep.
	off := TailPolicy{}
	if got := off.Classify(&Span{Start: 0, End: 1 << 40, NAttempts: 100}); got != 0 {
		t.Errorf("disabled policy kept a span: %#x", got)
	}
	if got := off.Classify(&Span{Err: true}); got != KeptError {
		t.Errorf("error span not kept under disabled policy: %#x", got)
	}
}

// TestSpanRecorderLifecycle drives one request through the recorder using
// the same observer hook sequence the STM emits (abort, then commit) and
// checks the published span.
func TestSpanRecorderLifecycle(t *testing.T) {
	fr := NewFlightRecorder(1, 8)
	r := NewSpanRecorder(fr, 0, time.Now(), TailPolicy{Attempts: 2})

	r.Begin(42, 7, 100, 30, 20, 9999)
	r.TxAttemptStart()
	r.TxTagOverflow()
	r.TxAttemptEnd(false, true)
	r.TxAttemptStart()
	r.TxAttemptEnd(true, false)
	kept := r.End(5000, false)
	if !kept {
		t.Fatal("span with 2 attempts + overflow not kept under Attempts=2 policy")
	}

	spans := fr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("Snapshot returned %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.ID != 42 || sp.Op != 7 || sp.Worker != 0 {
		t.Fatalf("identity fields wrong: %+v", sp)
	}
	if sp.Start != 100 || sp.Decode != 30 || sp.Queue != 20 || sp.Tick != 9999 || sp.End != 5000 {
		t.Fatalf("phase stamps wrong: %+v", sp)
	}
	if sp.NAttempts != 2 || sp.Fails != 1 || sp.Overflows != 1 {
		t.Fatalf("attempt counters wrong: %+v", sp)
	}
	if sp.Attempts[0].Cause != AttemptTagAbort || !sp.Attempts[0].Overflow {
		t.Fatalf("attempt 0 = %+v, want tag abort with overflow", sp.Attempts[0])
	}
	if sp.Attempts[1].Cause != AttemptCommit || sp.Attempts[1].Overflow {
		t.Fatalf("attempt 1 = %+v, want clean commit", sp.Attempts[1])
	}
	if sp.Kept&KeptRetries == 0 || sp.Kept&KeptOverflow == 0 {
		t.Fatalf("Kept = %#x, want retries|overflow bits", sp.Kept)
	}
	if sp.Latency() != 4900 {
		t.Fatalf("Latency = %d, want 4900", sp.Latency())
	}

	// Hooks outside a request are ignored, not crashes (the engine's
	// populate path runs transactions before any request).
	r.TxAttemptStart()
	r.TxAttemptEnd(true, false)
	if got := fr.Snapshot(); len(got) != 1 {
		t.Fatalf("stray hooks published a span: %d", len(got))
	}
}

// TestSpanRecorderAttemptOverflowCap: more attempts than the per-span
// record capacity keeps counting without touching memory out of range.
func TestSpanRecorderAttemptOverflowCap(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	r := NewSpanRecorder(fr, 0, time.Now(), TailPolicy{})
	r.Begin(1, 1, 0, 0, 0, 0)
	const rounds = spanMaxAttempts + 5
	for i := 0; i < rounds-1; i++ {
		r.TxAttemptStart()
		r.TxAttemptEnd(false, false)
	}
	r.TxAttemptStart()
	r.TxAttemptEnd(true, false)
	r.End(10, false)
	sp := fr.Snapshot()[0]
	if sp.NAttempts != rounds {
		t.Fatalf("NAttempts = %d, want %d", sp.NAttempts, rounds)
	}
	if sp.Fails != rounds-1 {
		t.Fatalf("Fails = %d, want %d", sp.Fails, rounds-1)
	}
}

func TestFlightRingWraparoundAndTotals(t *testing.T) {
	const depth = 4
	fr := NewFlightRecorder(2, depth)
	r := NewSpanRecorder(fr, 1, time.Now(), TailPolicy{})
	const n = depth + 5
	for i := 0; i < n; i++ {
		r.Begin(uint64(1000+i), 1, uint64(i), 0, 0, 0)
		r.End(uint64(i)+1, false)
	}
	spans := fr.Snapshot()
	if len(spans) != depth {
		t.Fatalf("Snapshot returned %d spans, want ring depth %d", len(spans), depth)
	}
	for i, sp := range spans {
		want := uint64(1000 + n - depth + i)
		if sp.ID != want {
			t.Errorf("span %d: ID = %d, want %d (oldest-first)", i, sp.ID, want)
		}
		if sp.Worker != 1 {
			t.Errorf("span %d: worker = %d, want 1", i, sp.Worker)
		}
	}
	recorded, kept := fr.Totals()
	if recorded != n || kept != 0 {
		t.Fatalf("Totals = %d, %d; want %d, 0", recorded, kept, n)
	}
}

func TestFlightExemplar(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	r := NewSpanRecorder(fr, 0, time.Now(), TailPolicy{LatencyNS: 100})
	if _, _, ok := fr.Exemplar(0); ok {
		t.Fatal("exemplar before any kept span")
	}
	r.Begin(7, 1, 0, 0, 0, 0)
	r.End(50, false) // fast: not kept
	if _, _, ok := fr.Exemplar(0); ok {
		t.Fatal("unkept span became the exemplar")
	}
	r.Begin(8, 1, 0, 0, 0, 0)
	r.End(500, false) // slow: kept
	id, lat, ok := fr.Exemplar(0)
	if !ok || id != 8 || lat != 500 {
		t.Fatalf("Exemplar = %d, %d, %v; want 8, 500, true", id, lat, ok)
	}
	if _, kept := fr.Totals(); kept != 1 {
		t.Fatalf("kept total = %d, want 1", kept)
	}
}

// TestFlightConcurrentRecordSnapshot hammers one core's ring from its
// writer while snapshotting from another goroutine; under -race this pins
// the seqlock protocol, and every returned span must be internally
// consistent (ID == Start by construction).
func TestFlightConcurrentRecordSnapshot(t *testing.T) {
	fr := NewFlightRecorder(1, 8)
	r := NewSpanRecorder(fr, 0, time.Now(), TailPolicy{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Begin(i, 1, i, 0, 0, 0)
			r.TxAttemptStart()
			r.TxAttemptEnd(true, false)
			r.End(i+1, false)
		}
	}()
	for n := 0; n < 200; n++ {
		for _, sp := range fr.Snapshot() {
			if sp.ID != sp.Start {
				t.Errorf("torn span escaped the seqlock: ID=%d Start=%d", sp.ID, sp.Start)
			}
		}
		_, _, _ = fr.Exemplar(0)
	}
	close(stop)
	wg.Wait()
}

// traceShape parses a span trace and indexes it for structural asserts.
type traceShape struct {
	events []map[string]any
}

func parseTrace(t *testing.T, raw []byte) *traceShape {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return &traceShape{events: doc.TraceEvents}
}

func (s *traceShape) count(ph, cat string) int {
	n := 0
	for _, e := range s.events {
		if e["ph"] == ph && (cat == "" || e["cat"] == cat) {
			n++
		}
	}
	return n
}

func TestWriteSpanTrace(t *testing.T) {
	opName := func(op uint8) string {
		if op == 3 {
			return "PUT"
		}
		return "?"
	}
	spans := []Span{
		{
			ID: 1001, Op: 3, Worker: 0, Start: 100, End: 900,
			Decode: 10, Queue: 20, Tick: 5555,
			NAttempts: 2, Fails: 1, Kept: KeptRetries,
			Attempts: [spanMaxAttempts]AttemptRec{
				{Start: 130, End: 300, Cause: AttemptTagAbort},
				{Start: 310, End: 700, Cause: AttemptCommit},
			},
		},
		{ID: 2002, Op: 9, Worker: 1, Start: 200, End: 400, Err: true, Kept: KeptError},
	}
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, spans, opName, 2); err != nil {
		t.Fatalf("WriteSpanTrace: %v", err)
	}
	shape := parseTrace(t, buf.Bytes())

	// Every span is one async b/e pair in cat "req", matched by id.
	if b, e := shape.count("b", "req"), shape.count("e", "req"); b != 2 || e != 2 {
		t.Fatalf("b/e counts = %d/%d, want 2/2", b, e)
	}
	open := map[float64]string{}
	for _, ev := range shape.events {
		switch ev["ph"] {
		case "b":
			open[ev["id"].(float64)] = ev["name"].(string)
		case "e":
			name, ok := open[ev["id"].(float64)]
			if !ok {
				t.Fatalf("e without b: %v", ev)
			}
			if name != ev["name"] {
				t.Fatalf("b/e name mismatch: %q vs %q", name, ev["name"])
			}
			delete(open, ev["id"].(float64))
		}
	}
	if len(open) != 0 {
		t.Fatalf("unclosed b events: %v", open)
	}

	// Flow arrows pair s (serve pid) with f (machine pid) per id.
	if s, f := shape.count("s", "req"), shape.count("f", "req"); s != 2 || f != 2 {
		t.Fatalf("s/f counts = %d/%d, want 2/2", s, f)
	}
	for _, ev := range shape.events {
		if ev["ph"] == "s" && int(ev["pid"].(float64)) != spanPid {
			t.Errorf("flow start on pid %v, want %d", ev["pid"], spanPid)
		}
		if ev["ph"] == "f" && int(ev["pid"].(float64)) != tracePid {
			t.Errorf("flow finish on pid %v, want %d", ev["pid"], tracePid)
		}
	}

	// Both domains' tracks are named for both workers.
	names := map[string]bool{}
	for _, ev := range shape.events {
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			names[fmt.Sprintf("%v/%v", ev["pid"], args["name"])] = true
		}
	}
	for _, want := range []string{"2/worker 0", "2/worker 1", "1/core 0", "1/core 1"} {
		if !names[want] {
			t.Errorf("missing thread_name metadata %q (have %v)", want, names)
		}
	}

	// Per-(pid,tid) timestamps are monotonic in file order — the
	// tracecheck invariant.
	last := map[[2]int]float64{}
	for _, ev := range shape.events {
		if ev["ph"] == "M" {
			continue
		}
		key := [2]int{int(ev["pid"].(float64)), int(ev["tid"].(float64))}
		ts := ev["ts"].(float64)
		if prev, ok := last[key]; ok && ts < prev {
			t.Fatalf("track %v time went backwards: %v after %v", key, ts, prev)
		}
		last[key] = ts
	}

	// Attempt slices carry their causes; the errored span has no attempts
	// but still gets an encode slice.
	sawTagAbort, sawCommit := false, false
	for _, ev := range shape.events {
		if ev["ph"] == "X" {
			switch ev["name"] {
			case "attempt/tagabort":
				sawTagAbort = true
			case "attempt/commit":
				sawCommit = true
			}
		}
	}
	if !sawTagAbort || !sawCommit {
		t.Fatalf("attempt phase slices missing (tagabort=%v commit=%v)", sawTagAbort, sawCommit)
	}
}
