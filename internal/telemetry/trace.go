package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Perfetto export: the machine backend's Tracer event stream plus per-op
// begin/end spans, converted to the Chrome trace-event JSON format that
// ui.perfetto.dev (and chrome://tracing) load directly. Each simulated core
// is one track; structure operations are duration slices on their core's
// track; tag/validate events are instants; coherence messages (invalidation
// and remote tag eviction) are flow arrows from the sending core's track to
// the receiving core's.
//
// Collection is buffered per core — the emitting goroutine is always the
// core's own goroutine, so per-core buffers need no locking — and the
// export pass sorts, links and marshals. Tracing is an explicitly
// non-measured mode: collection allocates (growing buffers), unlike the
// histogram/sampler path.

// TraceEvent is one backend event in exporter-neutral form. Name is the
// backend's event-kind name (machine.EventKind.String()); Target >= 0
// marks a cross-core message.
type TraceEvent struct {
	Name   string
	Core   int
	Target int // receiving core, or -1
	Line   uint64
	Cycle  uint64
}

// opSpan is one structure operation's begin/end on a core's track.
type opSpan struct {
	name       string
	core       int
	start, end uint64
}

// TraceCollector buffers events and op spans for export. Create one with
// NewTraceCollector, install it as the backend's tracer (for the machine
// backend via machine.TraceTo), feed op spans from the workload driver,
// and WriteJSON at quiescence.
type TraceCollector struct {
	perCore [][]TraceEvent // single-writer: core i's goroutine appends to perCore[i]
	spans   [][]opSpan

	// mu guards the overflow buffers for agents outside the core set (the
	// ghost coherence agent reports core -1).
	mu       sync.Mutex
	overflow []TraceEvent
}

// NewTraceCollector creates a collector for n cores.
func NewTraceCollector(n int) *TraceCollector {
	return &TraceCollector{
		perCore: make([][]TraceEvent, n),
		spans:   make([][]opSpan, n),
	}
}

// Add records one backend event. Events with Core in [0, n) are buffered
// without locking (the emitter is that core's goroutine); others (the
// ghost agent's core -1) take the overflow mutex.
func (c *TraceCollector) Add(ev TraceEvent) {
	if ev.Core >= 0 && ev.Core < len(c.perCore) {
		c.perCore[ev.Core] = append(c.perCore[ev.Core], ev)
		return
	}
	c.mu.Lock()
	c.overflow = append(c.overflow, ev)
	c.mu.Unlock()
}

// OpSpan records one structure operation's duration on core's track, in
// backend clock units. Must be called from the goroutine driving core.
func (c *TraceCollector) OpSpan(core int, name string, start, end uint64) {
	if core < 0 || core >= len(c.spans) {
		return
	}
	if end < start {
		end = start
	}
	c.spans[core] = append(c.spans[core], opSpan{name: name, core: core, start: start, end: end})
}

// Events returns the number of buffered backend events.
func (c *TraceCollector) Events() int {
	n := len(c.overflow)
	for _, b := range c.perCore {
		n += len(b)
	}
	return n
}

// jsonEvent is one Chrome trace-event object. Field set per the trace
// event format spec; ts/dur are microseconds — we map one simulated cycle
// (or vtags tick) to one microsecond.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of a trace ({"traceEvents": [...]}),
// which Perfetto accepts and which leaves room for metadata.
type traceFile struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

const tracePid = 1

// tidFor maps a core id to its track: core i is tid i+1, the ghost agent
// (core -1) is tid 0.
func tidFor(core int) int { return core + 1 }

// WriteJSON converts the buffered events and spans to Chrome trace-event
// JSON and writes it. Events are globally sorted by timestamp (metadata
// first), so timestamps are monotonic on every track — the property the CI
// schema validator checks.
func (c *TraceCollector) WriteJSON(w io.Writer) error {
	var evs []jsonEvent

	// Track-name metadata so Perfetto labels each core.
	addMeta := func(tid int, name string) {
		evs = append(evs, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for i := range c.perCore {
		addMeta(tidFor(i), coreName(i))
	}
	if len(c.overflow) > 0 {
		addMeta(tidFor(-1), "ghost agent")
	}

	// Op spans as complete ("X") duration events.
	for core := range c.spans {
		for _, sp := range c.spans[core] {
			evs = append(evs, jsonEvent{
				Name: sp.name, Cat: "op", Ph: "X",
				Ts: sp.start, Dur: sp.end - sp.start,
				Pid: tracePid, Tid: tidFor(core),
			})
		}
	}

	// Backend events: instants everywhere; cross-core messages additionally
	// get a flow arrow from sender track to receiver track.
	flowID := 0
	emit := func(ev TraceEvent) {
		evs = append(evs, jsonEvent{
			Name: ev.Name, Cat: "coherence", Ph: "i",
			Ts: ev.Cycle, Pid: tracePid, Tid: tidFor(ev.Core),
			Args: map[string]any{"line": ev.Line},
		})
		if ev.Target >= 0 {
			flowID++
			evs = append(evs, jsonEvent{
				Name: ev.Name, Cat: "coherence", Ph: "s",
				Ts: ev.Cycle, Pid: tracePid, Tid: tidFor(ev.Core), ID: flowID,
			})
			evs = append(evs, jsonEvent{
				Name: ev.Name, Cat: "coherence", Ph: "f", BP: "e",
				Ts: ev.Cycle + 1, Pid: tracePid, Tid: tidFor(ev.Target), ID: flowID,
			})
		}
	}
	for core := range c.perCore {
		for _, ev := range c.perCore[core] {
			emit(ev)
		}
	}
	for _, ev := range c.overflow {
		emit(ev)
	}

	// Global timestamp sort (metadata events stay first at ts 0; the sort
	// is stable so same-ts events keep their emission order, which keeps a
	// flow start before its finish when both land on the same microsecond).
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Ph == "M", evs[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return evs[i].Ts < evs[j].Ts
	})

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

func coreName(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return "core " + string(digits[i])
	}
	return "core " + string(digits[i/10]) + string(digits[i%10])
}
