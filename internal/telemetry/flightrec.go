package telemetry

import "sync/atomic"

// FlightRecorder is the always-on black box for the served path: a
// lock-free per-core ring of the most recent request spans (tail-sampled
// ones marked), readable by any goroutine at any time. Workers publish
// every finished span; a post-mortem dump (SLO breach, checked-mode reclaim
// violation, SIGQUIT) snapshots the rings into a trace without stopping
// traffic.
//
// The protocol is the Stream's per-slot seqlock, reused wholesale: spans
// are packed into fixed arrays of atomic words, the writer brackets each
// publish with an odd/even sequence bump, and readers retry a torn copy.
// Publication is allocation-free (the serve allocs tests pin the whole
// span-record + flight-tick path at 0 allocs/op); only Snapshot allocates.
//
// Each core additionally exposes its most recent *tail-sampled* span as an
// exemplar (request/trace ID + latency), which the Prometheus exposition
// attaches to the matching latency bucket — the link that lets a scrape's
// p99 outlier be joined to its span in the dump.

// flightSlotWords is the packed span size: a fixed header plus two words
// per recorded attempt.
//
//	w0  ID
//	w1  Start
//	w2  End
//	w3  Decode
//	w4  Queue
//	w5  Tick
//	w6  Op | Err<<8 | Kept<<16 | Worker<<32
//	w7  Fails | Overflows<<32
//	w8  NAttempts
//	w9+2i  attempt i Start
//	w10+2i attempt i (End-Start)&^(3<<62) | Cause<<62-ish packing below
//
// Attempt durations are clipped to 2^56-1 ns (~2.3 years), leaving the top
// byte for the cause and overflow flag.
const flightSlotWords = 9 + 2*spanMaxAttempts

const attemptDurMask = (uint64(1) << 56) - 1

type flightSlot struct {
	seq   atomic.Uint64
	words [flightSlotWords]atomic.Uint64
}

type flightCore struct {
	published atomic.Uint64 // spans published so far (ring head); cumulative
	kept      atomic.Uint64 // tail-sampled spans published

	// Exemplar: the most recent tail-sampled span, seqlock-published.
	exSeq atomic.Uint64
	exID  atomic.Uint64
	exLat atomic.Uint64

	ring []flightSlot

	_ [64]byte // keep adjacent cores' hot atomics off one line
}

// FlightRecorder is created with NewFlightRecorder; see the package-level
// discussion above.
type FlightRecorder struct {
	depth int
	cores []flightCore
}

// NewFlightRecorder creates a recorder for n cores retaining depth spans
// per core (depth < 2 is raised to 2).
func NewFlightRecorder(n, depth int) *FlightRecorder {
	if depth < 2 {
		depth = 2
	}
	f := &FlightRecorder{depth: depth, cores: make([]flightCore, n)}
	for i := range f.cores {
		f.cores[i].ring = make([]flightSlot, depth)
	}
	return f
}

// Depth returns the per-core ring capacity in spans.
func (f *FlightRecorder) Depth() int { return f.depth }

// NumCores returns the number of per-core rings.
func (f *FlightRecorder) NumCores() int { return len(f.cores) }

// Record publishes sp into core i's ring. It must only be called by core
// i's owning goroutine (or under the lock serializing that core's
// requests). Allocation-free.
func (f *FlightRecorder) Record(i int, sp *Span) {
	c := &f.cores[i]
	slot := &c.ring[int(c.published.Load()%uint64(f.depth))]
	slot.seq.Add(1) // odd: publish in flight
	w := &slot.words
	w[0].Store(sp.ID)
	w[1].Store(sp.Start)
	w[2].Store(sp.End)
	w[3].Store(sp.Decode)
	w[4].Store(sp.Queue)
	w[5].Store(sp.Tick)
	flags := uint64(sp.Op) | uint64(b2u(sp.Err))<<8 | uint64(sp.Kept)<<16 | uint64(uint32(sp.Worker))<<32
	w[6].Store(flags)
	w[7].Store(uint64(sp.Fails) | uint64(sp.Overflows)<<32)
	w[8].Store(uint64(sp.NAttempts))
	n := int(sp.NAttempts)
	if n > spanMaxAttempts {
		n = spanMaxAttempts
	}
	for j := 0; j < n; j++ {
		a := &sp.Attempts[j]
		dur := a.End - a.Start
		if a.End < a.Start {
			dur = 0
		}
		if dur > attemptDurMask {
			dur = attemptDurMask
		}
		packed := dur | uint64(a.Cause)<<56 | uint64(b2u(a.Overflow))<<58
		w[9+2*j].Store(a.Start)
		w[10+2*j].Store(packed)
	}
	slot.seq.Add(1) // even: consistent
	c.published.Add(1)
	if sp.Kept != 0 {
		c.kept.Add(1)
		c.exSeq.Add(1)
		c.exID.Store(sp.ID)
		c.exLat.Store(sp.Latency())
		c.exSeq.Add(1)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// copyFlightSlot snapshots one slot under its seqlock into sp, reporting
// whether a consistent copy was obtained within the retry budget.
func copyFlightSlot(slot *flightSlot, sp *Span) bool {
	for attempt := 0; attempt < streamRetryLimit; attempt++ {
		s1 := slot.seq.Load()
		if s1%2 != 0 {
			continue
		}
		var w [flightSlotWords]uint64
		for k := range w {
			w[k] = slot.words[k].Load()
		}
		if slot.seq.Load() != s1 {
			continue
		}
		*sp = Span{
			ID: w[0], Start: w[1], End: w[2], Decode: w[3], Queue: w[4], Tick: w[5],
			Op: uint8(w[6]), Err: w[6]>>8&1 != 0, Kept: uint8(w[6] >> 16),
			Worker:    int32(uint32(w[6] >> 32)),
			Fails:     uint32(w[7]), Overflows: uint32(w[7] >> 32),
			NAttempts: uint32(w[8]),
		}
		n := int(sp.NAttempts)
		if n > spanMaxAttempts {
			n = spanMaxAttempts
		}
		for j := 0; j < n; j++ {
			packed := w[10+2*j]
			sp.Attempts[j] = AttemptRec{
				Start:    w[9+2*j],
				End:      w[9+2*j] + packed&attemptDurMask,
				Cause:    uint8(packed >> 56 & 3),
				Overflow: packed>>58&1 != 0,
			}
		}
		return true
	}
	return false
}

// Snapshot reads every core's retained spans, oldest first per core, cores
// concatenated in order. Safe from any goroutine mid-run; torn slots past
// the retry budget are skipped, so every returned span is internally
// consistent. The dump path — it allocates.
func (f *FlightRecorder) Snapshot() []Span {
	var out []Span
	var sp Span
	for i := range f.cores {
		c := &f.cores[i]
		head := c.published.Load()
		lo := uint64(0)
		if head > uint64(f.depth) {
			lo = head - uint64(f.depth)
		}
		for w := lo; w < head; w++ {
			if copyFlightSlot(&c.ring[int(w%uint64(f.depth))], &sp) {
				out = append(out, sp)
			}
		}
	}
	return out
}

// Exemplar returns core i's most recent tail-sampled span's request ID and
// latency, and whether the core has one. Safe at any time.
func (f *FlightRecorder) Exemplar(i int) (id, latencyNS uint64, ok bool) {
	c := &f.cores[i]
	for attempt := 0; attempt < streamRetryLimit; attempt++ {
		s1 := c.exSeq.Load()
		if s1 == 0 {
			return 0, 0, false
		}
		if s1%2 != 0 {
			continue
		}
		id, latencyNS = c.exID.Load(), c.exLat.Load()
		if c.exSeq.Load() == s1 {
			return id, latencyNS, true
		}
	}
	return 0, 0, false
}

// Totals returns the cumulative spans recorded and tail-sampled across all
// cores; both are monotonic. Safe at any time.
func (f *FlightRecorder) Totals() (recorded, kept uint64) {
	for i := range f.cores {
		recorded += f.cores[i].published.Load()
		kept += f.cores[i].kept.Load()
	}
	return recorded, kept
}
