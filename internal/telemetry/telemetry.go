package telemetry

// Core is one simulated core's telemetry: a set of histograms owned by the
// goroutine driving that core, written on the backend's own hot path
// (occupancy, streaks) and by the workload driver (per-op latency and
// retries). Like machine.CoreStats, plain fields are single-writer; merge
// at quiescence.
type Core struct {
	// OpLatency is per structure-operation latency: simulated cycles on
	// the machine backend, memory/tag-operation ticks on the vtags
	// emulation (which has no cost model — work per op is its analogue).
	OpLatency Histogram
	// OpRetries is validation/commit failures per structure operation — a
	// direct read on how many optimistic attempts each op burned.
	OpRetries Histogram
	// TagOccupancy is the tag-set size observed after each successful
	// AddTag line insertion, i.e. the distribution of how much of the
	// MaxTags budget traversals actually hold.
	TagOccupancy Histogram
	// ValidateStreak / VASStreak / IASStreak are the lengths of maximal
	// runs of consecutive failures of each primitive. A streak is observed
	// when it ends (a success after >= 1 failures) or at Flush; the sum of
	// each histogram therefore equals the backend's failure counter, an
	// invariant the accounting tests pin.
	ValidateStreak Histogram
	VASStreak      Histogram
	IASStreak      Histogram
	// RetireToFree is the reclamation pipeline's latency: backend clock
	// units (machine cycles / vtags ticks) between an object's retire and
	// the scan pass that freed it, observed on the retiring thread.
	RetireToFree Histogram
	// FreeListLines is free-list occupancy in lines, sampled after each
	// free — how much recycled capacity the pool is sitting on.
	FreeListLines Histogram

	valRun, vasRun, iasRun uint64 // open (unobserved) failure streaks
}

// NoteValidate records a Validate outcome, maintaining the failure streak.
func (c *Core) NoteValidate(ok bool) { noteStreak(&c.ValidateStreak, &c.valRun, ok) }

// NoteVAS records a VAS outcome.
func (c *Core) NoteVAS(ok bool) { noteStreak(&c.VASStreak, &c.vasRun, ok) }

// NoteIAS records an IAS outcome.
func (c *Core) NoteIAS(ok bool) { noteStreak(&c.IASStreak, &c.iasRun, ok) }

// noteStreak folds one outcome into a failure-streak histogram: failures
// extend the open run one at a time (each failure is observed as a streak
// of its current length only when the run closes), successes close it.
func noteStreak(h *Histogram, run *uint64, ok bool) {
	if !ok {
		*run++
		return
	}
	if *run > 0 {
		observeStreak(h, *run)
		*run = 0
	}
}

// observeStreak records a closed failure run as one observation of its
// length. With this encoding every individual failure contributes exactly 1
// to the histogram's sum, so sum(streaks) == backend failure counter.
func observeStreak(h *Histogram, n uint64) { h.Observe(n) }

// NoteTagOccupancy records the tag-set size after a successful tag insert.
func (c *Core) NoteTagOccupancy(n int) { c.TagOccupancy.Observe(uint64(n)) }

// NoteRetireToFree records one reclaimed object's retire-to-free latency
// in backend clock units.
func (c *Core) NoteRetireToFree(d uint64) { c.RetireToFree.Observe(d) }

// NoteFreeListLines records the free-list occupancy after a free.
func (c *Core) NoteFreeListLines(n uint64) { c.FreeListLines.Observe(n) }

// Flush closes any open failure streaks so that histogram sums match the
// backend failure counters. Call once, at quiescence, before reading.
func (c *Core) Flush() {
	if c.valRun > 0 {
		observeStreak(&c.ValidateStreak, c.valRun)
		c.valRun = 0
	}
	if c.vasRun > 0 {
		observeStreak(&c.VASStreak, c.vasRun)
		c.vasRun = 0
	}
	if c.iasRun > 0 {
		observeStreak(&c.IASStreak, c.iasRun)
		c.iasRun = 0
	}
}

// Merge folds o's histograms into c (open streaks are not transferred;
// Flush o first).
func (c *Core) Merge(o *Core) {
	c.OpLatency.Merge(&o.OpLatency)
	c.OpRetries.Merge(&o.OpRetries)
	c.TagOccupancy.Merge(&o.TagOccupancy)
	c.ValidateStreak.Merge(&o.ValidateStreak)
	c.VASStreak.Merge(&o.VASStreak)
	c.IASStreak.Merge(&o.IASStreak)
	c.RetireToFree.Merge(&o.RetireToFree)
	c.FreeListLines.Merge(&o.FreeListLines)
}

// Set is a fixed family of per-core telemetry structs, one per simulated
// core, sized at construction so the recording path never allocates.
type Set struct {
	cores []Core
}

// NewSet creates telemetry for n cores.
func NewSet(n int) *Set { return &Set{cores: make([]Core, n)} }

// NumCores returns the number of per-core structs.
func (s *Set) NumCores() int { return len(s.cores) }

// Core returns core i's telemetry. The returned struct must only be
// written by the goroutine driving core i.
func (s *Set) Core(i int) *Core { return &s.cores[i] }

// Flush closes open streaks on every core. Only call at quiescence.
func (s *Set) Flush() {
	for i := range s.cores {
		s.cores[i].Flush()
	}
}

// Merge returns the aggregate over all cores. Only call at quiescence
// (Flush first to fold open streaks in).
func (s *Set) Merge() *Core {
	var agg Core
	for i := range s.cores {
		agg.Merge(&s.cores[i])
	}
	return &agg
}
