package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Request-scoped tracing for the served path. A Span is one request's
// timeline — decode, queue (worker-mutex wait), the per-attempt STM run
// with abort causes, encode — stamped in host nanoseconds since the
// server's epoch and carrying the request ID assigned at accept time.
//
// Recording is alloc-free and always-on when armed: every request's span is
// built in a per-worker SpanRecorder (single-writer, like Core and the
// Stream's live window) and published into the FlightRecorder's per-core
// ring, the black box a post-mortem dump reads back. Tail-based sampling is
// the retention *marking*: a span that breached the latency threshold,
// exhausted its attempt budget, hit tag overflow, or errored gets a
// non-zero KeptMask, feeds the Prometheus exemplar for its worker, and is
// what the trace export highlights. Aggregates say *that* p99 spiked; the
// kept spans say *which* request, *which* retry loop, and — through the
// flow arrow into the backend core's track — *where* in the machine
// timeline to look.

// spanMaxAttempts bounds the per-span attempt records. A request that
// retries more than this keeps counting (NAttempts, Fails) but stops
// recording per-attempt timings — by then the span is tail-kept anyway
// (attempt-budget breach).
const spanMaxAttempts = 8

// Attempt causes: how one STM attempt of the request ended.
const (
	// AttemptCommit: the attempt committed.
	AttemptCommit = uint8(iota)
	// AttemptAbort: value-based validation failed (baseline NOrec conflict
	// detection, or the tagged fallback path).
	AttemptAbort
	// AttemptTagAbort: tag validation failed — a real conflict or a
	// spurious eviction invalidated a tagged read-set line.
	AttemptTagAbort
)

// KeptMask bits: why a span was tail-sampled.
const (
	// KeptLatency: end-to-end latency breached TailPolicy.LatencyNS.
	KeptLatency = uint8(1 << iota)
	// KeptRetries: the request burned TailPolicy.Attempts or more STM
	// attempts.
	KeptRetries
	// KeptOverflow: a tag-set overflow forced an attempt into value-based
	// mode.
	KeptOverflow
	// KeptError: the request answered with an error response.
	KeptError
)

// AttemptRec is one STM attempt's record inside a span.
type AttemptRec struct {
	Start, End uint64 // ns since epoch
	Cause      uint8  // AttemptCommit / AttemptAbort / AttemptTagAbort
	Overflow   bool   // the attempt dropped to value-based mode (tag overflow)
}

// Span is one request's record. All times are nanoseconds since the
// recorder's epoch (server start).
type Span struct {
	ID     uint64 // request id: conn id (assigned at accept) << 28 | per-conn seq
	Op     uint8  // wire op code (0 for a request that failed to parse)
	Worker int32
	Err    bool  // answered with an error response
	Kept   uint8 // KeptMask; 0 = recorded but not tail-sampled

	Start  uint64 // read complete (request fully received)
	End    uint64 // response encoded
	Decode uint64 // ParseRequest duration
	Queue  uint64 // worker-mutex wait (requests of other conns on this worker)
	Tick   uint64 // backend op-clock at execution start: the flow-arrow anchor

	Fails     uint32 // backend validation/commit failures burned
	Overflows uint32 // tag-set overflows hit
	NAttempts uint32 // STM attempts (may exceed len(Attempts))
	Attempts  [spanMaxAttempts]AttemptRec
}

// Latency returns the span's end-to-end latency.
func (sp *Span) Latency() uint64 { return sp.End - sp.Start }

// TailPolicy is the tail-based sampling decision: a finished span is marked
// kept when any armed criterion fires. Overflow and error always keep.
type TailPolicy struct {
	// LatencyNS keeps spans at least this slow (0 disables the criterion).
	LatencyNS uint64
	// Attempts keeps spans that burned at least this many STM attempts
	// (0 disables the criterion).
	Attempts uint32
}

// Classify returns the KeptMask for a finished span under this policy.
func (p TailPolicy) Classify(sp *Span) uint8 {
	var mask uint8
	if p.LatencyNS > 0 && sp.Latency() >= p.LatencyNS {
		mask |= KeptLatency
	}
	if p.Attempts > 0 && sp.NAttempts >= p.Attempts {
		mask |= KeptRetries
	}
	if sp.Overflows > 0 {
		mask |= KeptOverflow
	}
	if sp.Err {
		mask |= KeptError
	}
	return mask
}

// SpanRecorder builds one worker's request spans. It is single-writer: all
// methods must be called by the goroutine (or under the mutex) serializing
// that worker's requests. It implements the stm.TxObserver hook surface, so
// installing the recorder on a TM yields per-attempt records with causes.
// Recording is allocation-free; only construction allocates.
type SpanRecorder struct {
	epoch time.Time
	pol   TailPolicy
	fr    *FlightRecorder
	core  int

	cur    Span
	inReq  bool
	attOpen bool
}

// NewSpanRecorder creates the recorder for one worker/core. Finished spans
// are published into fr's ring for that core; epoch anchors the span clock
// (pass the server start time).
func NewSpanRecorder(fr *FlightRecorder, core int, epoch time.Time, pol TailPolicy) *SpanRecorder {
	return &SpanRecorder{epoch: epoch, pol: pol, fr: fr, core: core}
}

// now is the span clock: host nanoseconds since the epoch.
func (r *SpanRecorder) now() uint64 { return uint64(time.Since(r.epoch)) }

// Begin opens the span for one request. start is the read-complete stamp,
// decode/queue the phase durations already measured by the caller (decode
// happens outside the worker mutex), tick the backend op-clock at execution
// start.
func (r *SpanRecorder) Begin(id uint64, op uint8, start, decode, queue, tick uint64) {
	r.cur = Span{
		ID: id, Op: op, Worker: int32(r.core),
		Start: start, Decode: decode, Queue: queue, Tick: tick,
	}
	r.inReq = true
	r.attOpen = false
}

// TxAttemptStart marks one STM attempt beginning (stm.TxObserver hook).
func (r *SpanRecorder) TxAttemptStart() {
	if !r.inReq {
		return
	}
	if n := r.cur.NAttempts; n < spanMaxAttempts {
		r.cur.Attempts[n].Start = r.now()
	}
	r.attOpen = true
}

// TxAttemptEnd marks the attempt's outcome (stm.TxObserver hook).
func (r *SpanRecorder) TxAttemptEnd(committed, fromTags bool) {
	if !r.inReq || !r.attOpen {
		return
	}
	r.attOpen = false
	if n := r.cur.NAttempts; n < spanMaxAttempts {
		a := &r.cur.Attempts[n]
		a.End = r.now()
		switch {
		case committed:
			a.Cause = AttemptCommit
		case fromTags:
			a.Cause = AttemptTagAbort
		default:
			a.Cause = AttemptAbort
		}
	}
	r.cur.NAttempts++
	if !committed {
		r.cur.Fails++
	}
}

// TxTagOverflow marks a tag-set overflow inside the current attempt
// (stm.TxObserver hook): the attempt degraded to value-based validation.
func (r *SpanRecorder) TxTagOverflow() {
	if !r.inReq {
		return
	}
	r.cur.Overflows++
	if r.attOpen && r.cur.NAttempts < spanMaxAttempts {
		r.cur.Attempts[r.cur.NAttempts].Overflow = true
	}
}

// End closes the span at end (same clock as Begin's start), applies the
// tail policy, publishes the span into the flight recorder, and reports
// whether it was tail-sampled.
func (r *SpanRecorder) End(end uint64, errResp bool) (kept bool) {
	if !r.inReq {
		return false
	}
	r.inReq = false
	r.cur.End = end
	r.cur.Err = errResp
	r.cur.Kept = r.pol.Classify(&r.cur)
	if r.fr != nil {
		r.fr.Record(r.core, &r.cur)
	}
	return r.cur.Kept != 0
}

// Perfetto export of request spans. Request spans are async begin/end
// pairs (ph b/e, matched by cat+id — what bench/tracecheck pairs per
// request ID); phases and attempts are complete slices on the worker's
// track; and each span throws a flow arrow from its begin into the backend
// core's machine track at the span's op-clock anchor, so the request
// timeline and the PR 5 machine timeline interleave in one view.

// spanPid is the trace-event pid of the serve-domain tracks; machine-domain
// tracks keep tracePid, so the two time domains render as two processes.
const spanPid = 2

// WriteSpanTrace exports spans as Chrome trace-event JSON. opName renders a
// wire op code ("GET", "RESV", ...); workers is the serve worker count
// (names the tracks). Machine tracks for every worker's backend core are
// declared whether or not machine events are present, so flow arrows always
// resolve into a named track.
func WriteSpanTrace(w io.Writer, spans []Span, opName func(uint8) string, workers int) error {
	var evs []jsonEvent

	addMeta := func(pid, tid int, name string) {
		evs = append(evs, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for i := 0; i < workers; i++ {
		addMeta(spanPid, tidFor(i), fmt.Sprintf("worker %d", i))
		addMeta(tracePid, tidFor(i), fmt.Sprintf("core %d", i))
	}

	attemptName := func(a *AttemptRec) string {
		name := "attempt/abort"
		switch a.Cause {
		case AttemptCommit:
			name = "attempt/commit"
		case AttemptTagAbort:
			name = "attempt/tagabort"
		}
		if a.Overflow {
			name += "+overflow"
		}
		return name
	}

	flowID := 0
	for i := range spans {
		sp := &spans[i]
		tid := tidFor(int(sp.Worker))
		id := int(sp.ID)
		args := map[string]any{
			"req_id": sp.ID, "kept": sp.Kept, "fails": sp.Fails,
			"overflows": sp.Overflows, "attempts": sp.NAttempts, "err": sp.Err,
		}
		name := "REQ/" + opName(sp.Op)
		evs = append(evs,
			jsonEvent{Name: name, Cat: "req", Ph: "b", Ts: sp.Start, Pid: spanPid, Tid: tid, ID: id, Args: args},
			jsonEvent{Name: name, Cat: "req", Ph: "e", Ts: sp.End, Pid: spanPid, Tid: tid, ID: id},
		)

		// Phase slices: decode, queue, each attempt, then encode (the gap
		// between the last attempt's end — or the run start for non-STM ops
		// — and the response being on the wire).
		cursor := sp.Start
		if sp.Decode > 0 {
			evs = append(evs, jsonEvent{Name: "decode", Cat: "phase", Ph: "X",
				Ts: cursor, Dur: sp.Decode, Pid: spanPid, Tid: tid})
		}
		cursor += sp.Decode
		if sp.Queue > 0 {
			evs = append(evs, jsonEvent{Name: "queue", Cat: "phase", Ph: "X",
				Ts: cursor, Dur: sp.Queue, Pid: spanPid, Tid: tid})
		}
		cursor += sp.Queue
		runEnd := cursor
		n := int(sp.NAttempts)
		if n > spanMaxAttempts {
			n = spanMaxAttempts
		}
		for j := 0; j < n; j++ {
			a := &sp.Attempts[j]
			end := a.End
			if end < a.Start {
				end = a.Start
			}
			evs = append(evs, jsonEvent{Name: attemptName(a), Cat: "phase", Ph: "X",
				Ts: a.Start, Dur: end - a.Start, Pid: spanPid, Tid: tid})
			if end > runEnd {
				runEnd = end
			}
		}
		if sp.End > runEnd {
			evs = append(evs, jsonEvent{Name: "encode", Cat: "phase", Ph: "X",
				Ts: runEnd, Dur: sp.End - runEnd, Pid: spanPid, Tid: tid})
		}

		// Flow arrow into the machine track: begin on the request span,
		// finish at the backend op-clock anchor on the worker's core track
		// (plus an instant there, so the arrow lands on a visible event).
		flowID++
		evs = append(evs,
			jsonEvent{Name: name, Cat: "req", Ph: "s", Ts: sp.Start, Pid: spanPid, Tid: tid, ID: flowID},
			jsonEvent{Name: name, Cat: "req", Ph: "f", BP: "e", Ts: sp.Tick, Pid: tracePid, Tid: tid, ID: flowID},
			jsonEvent{Name: "req-anchor", Cat: "req", Ph: "i", Ts: sp.Tick, Pid: tracePid, Tid: tid,
				Args: map[string]any{"req_id": sp.ID}},
		)
	}

	// Global stable sort by ts, metadata first — per-track monotonicity is
	// what tracecheck verifies.
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Ph == "M", evs[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return evs[i].Ts < evs[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
