// Package vacation is a from-scratch Go port of the STAMP Vacation
// benchmark (Minh et al., IISWC 2008): an in-memory travel reservation
// system whose car, flight, room and customer tables are transactional
// red-black trees. The paper evaluates NOrec vs tagged NOrec on this
// workload (Figure 8, parameters -n4 -q60 -u90 -r16384 -t4096).
//
// Clients run three transaction types: MakeReservation (query n random
// items of each resource kind and reserve the best), DeleteCustomer (sum a
// customer's bill and remove them), and UpdateTables (add or remove
// resource capacity). All table and reservation-list accesses happen inside
// one STM transaction per client action, reproducing STAMP's transactional
// footprint.
package vacation

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/txmap"
)

// Resource kinds.
const (
	KindCar = iota
	KindFlight
	KindRoom
	numKinds
)

// NumKinds is the number of resource kinds (for request validation in
// serving layers).
const NumKinds = numKinds

// Reservation record layout (words): the value stored in a resource table.
const (
	rNumUsed  = 0
	rNumFree  = 1
	rNumTotal = 2
	rPrice    = 3
	rWords    = 4
)

// Customer record layout (words): the value stored in the customer table.
const (
	cListHead = 0 // head of the reservation list
	cWords    = 1
)

// Reservation-list node layout (words).
const (
	lKind  = 0
	lID    = 1
	lPrice = 2
	lNext  = 3
	lWords = 4
)

// Manager is the reservation system: three resource tables plus customers.
type Manager struct {
	mem       core.Memory
	tm        *stm.TM
	resources [numKinds]*txmap.Map
	customers *txmap.Map
}

// NewManager creates an empty reservation system using the given STM.
func NewManager(mem core.Memory, tm *stm.TM) *Manager {
	m := &Manager{mem: mem, tm: tm, customers: txmap.New(mem)}
	for k := 0; k < numKinds; k++ {
		m.resources[k] = txmap.New(mem)
	}
	return m
}

// TM returns the manager's STM instance.
func (m *Manager) TM() *stm.TM { return m.tm }

// AddResource adds num units of kind/id at the given price, creating the
// record if needed (manager_add{Car,Flight,Room}).
func (m *Manager) AddResource(tx *stm.Tx, th core.Thread, kind int, id, num, price uint64) {
	tbl := m.resources[kind]
	if rec, ok := tbl.Get(tx, id); ok {
		r := core.Addr(rec)
		tx.Write(r.Plus(rNumFree), tx.Read(r.Plus(rNumFree))+num)
		tx.Write(r.Plus(rNumTotal), tx.Read(r.Plus(rNumTotal))+num)
		tx.Write(r.Plus(rPrice), price)
		return
	}
	r := th.Alloc(rWords)
	tx.Write(r.Plus(rNumUsed), 0)
	tx.Write(r.Plus(rNumFree), num)
	tx.Write(r.Plus(rNumTotal), num)
	tx.Write(r.Plus(rPrice), price)
	tbl.Put(tx, id, uint64(r), th)
}

// DeleteResource removes num unreserved units of kind/id, dropping the
// record entirely when no units remain. It reports whether the removal was
// possible (enough free capacity).
func (m *Manager) DeleteResource(tx *stm.Tx, kind int, id, num uint64) bool {
	tbl := m.resources[kind]
	rec, ok := tbl.Get(tx, id)
	if !ok {
		return false
	}
	r := core.Addr(rec)
	free := tx.Read(r.Plus(rNumFree))
	total := tx.Read(r.Plus(rNumTotal))
	if free < num {
		return false
	}
	tx.Write(r.Plus(rNumFree), free-num)
	tx.Write(r.Plus(rNumTotal), total-num)
	if total-num == 0 {
		tbl.Delete(tx, id)
	}
	return true
}

// QueryPrice returns the price of kind/id if it exists and has free
// capacity, else ok=false (manager_query{Car,Flight,Room}Price).
func (m *Manager) QueryPrice(tx *stm.Tx, kind int, id uint64) (price uint64, ok bool) {
	rec, ok := m.resources[kind].Get(tx, id)
	if !ok {
		return 0, false
	}
	r := core.Addr(rec)
	if tx.Read(r.Plus(rNumFree)) == 0 {
		return 0, false
	}
	return tx.Read(r.Plus(rPrice)), true
}

// AddCustomer inserts the customer if absent, reporting whether it was
// added.
func (m *Manager) AddCustomer(tx *stm.Tx, th core.Thread, id uint64) bool {
	if _, ok := m.customers.Get(tx, id); ok {
		return false
	}
	c := th.Alloc(cWords)
	tx.Write(c.Plus(cListHead), 0)
	m.customers.Put(tx, id, uint64(c), th)
	return true
}

// Reserve books one unit of kind/id for the customer, prepending it to the
// customer's reservation list (manager_reserve{Car,Flight,Room}).
func (m *Manager) Reserve(tx *stm.Tx, th core.Thread, customerID uint64, kind int, id uint64) bool {
	_, ok := m.ReservePriced(tx, th, customerID, kind, id)
	return ok
}

// ReservePriced is Reserve returning the booked unit's price, so a serving
// layer can answer a reservation request with what it will cost without a
// second transaction.
func (m *Manager) ReservePriced(tx *stm.Tx, th core.Thread, customerID uint64, kind int, id uint64) (price uint64, ok bool) {
	cust, ok := m.customers.Get(tx, customerID)
	if !ok {
		return 0, false
	}
	rec, ok := m.resources[kind].Get(tx, id)
	if !ok {
		return 0, false
	}
	r := core.Addr(rec)
	free := tx.Read(r.Plus(rNumFree))
	if free == 0 {
		return 0, false
	}
	tx.Write(r.Plus(rNumFree), free-1)
	tx.Write(r.Plus(rNumUsed), tx.Read(r.Plus(rNumUsed))+1)

	c := core.Addr(cust)
	n := th.Alloc(lWords)
	price = tx.Read(r.Plus(rPrice))
	tx.Write(n.Plus(lKind), uint64(kind))
	tx.Write(n.Plus(lID), id)
	tx.Write(n.Plus(lPrice), price)
	tx.Write(n.Plus(lNext), tx.Read(c.Plus(cListHead)))
	tx.Write(c.Plus(cListHead), uint64(n))
	return price, true
}

// QueryCustomerBill sums the customer's reservation prices; ok=false when
// the customer does not exist.
func (m *Manager) QueryCustomerBill(tx *stm.Tx, id uint64) (bill uint64, ok bool) {
	cust, ok := m.customers.Get(tx, id)
	if !ok {
		return 0, false
	}
	n := core.Addr(tx.Read(core.Addr(cust).Plus(cListHead)))
	for !n.IsNil() {
		bill += tx.Read(n.Plus(lPrice))
		n = core.Addr(tx.Read(n.Plus(lNext)))
	}
	return bill, true
}

// DeleteCustomer cancels all of the customer's reservations (returning
// capacity to the tables) and removes the customer. It reports whether the
// customer existed.
func (m *Manager) DeleteCustomer(tx *stm.Tx, id uint64) bool {
	cust, ok := m.customers.Get(tx, id)
	if !ok {
		return false
	}
	n := core.Addr(tx.Read(core.Addr(cust).Plus(cListHead)))
	for !n.IsNil() {
		kind := int(tx.Read(n.Plus(lKind)))
		rid := tx.Read(n.Plus(lID))
		if rec, ok := m.resources[kind].Get(tx, rid); ok {
			r := core.Addr(rec)
			tx.Write(r.Plus(rNumFree), tx.Read(r.Plus(rNumFree))+1)
			tx.Write(r.Plus(rNumUsed), tx.Read(r.Plus(rNumUsed))-1)
		}
		n = core.Addr(tx.Read(n.Plus(lNext)))
	}
	m.customers.Delete(tx, id)
	return true
}

// CheckTables verifies conservation invariants while quiescent: for every
// resource, numUsed+numFree == numTotal, and the total used capacity equals
// the number of reservation-list entries across all customers. Returns
// false with a description on violation.
func (m *Manager) CheckTables(th core.Thread) (ok bool, detail string) {
	ok = true
	detail = ""
	m.tm.Run(th, func(tx *stm.Tx) {
		ok, detail = true, ""
		var usedTotal uint64
		for k := 0; k < numKinds; k++ {
			m.resources[k].ForEach(tx, func(id, rec uint64) {
				r := core.Addr(rec)
				used := tx.Read(r.Plus(rNumUsed))
				free := tx.Read(r.Plus(rNumFree))
				total := tx.Read(r.Plus(rNumTotal))
				if used+free != total {
					ok = false
					detail = "capacity leak"
				}
				usedTotal += used
			})
		}
		var listed uint64
		m.customers.ForEach(tx, func(id, cust uint64) {
			n := core.Addr(tx.Read(core.Addr(cust).Plus(cListHead)))
			for !n.IsNil() {
				listed++
				n = core.Addr(tx.Read(n.Plus(lNext)))
			}
		})
		if usedTotal != listed {
			ok = false
			detail = "used units do not match reservation lists"
		}
	})
	return ok, detail
}

// Params mirrors STAMP vacation's command line.
type Params struct {
	QueriesPerTx int // -n: queries per transaction
	PercentQuery int // -q: percentage of relations queried (query range)
	PercentUser  int // -u: percentage of user (reservation) transactions
	Relations    int // -r: table size
	Transactions int // -t: transactions per client
}

// PaperParams returns the configuration the paper reports (Figure 8):
// -n4 -q60 -u90 -r16384 -t4096.
func PaperParams() Params {
	return Params{QueriesPerTx: 4, PercentQuery: 60, PercentUser: 90, Relations: 16384, Transactions: 4096}
}

// runner executes one transaction body to commit; the default runner is
// m.tm.Run on the client's thread, and the serializability suite swaps in
// a recording runner (see RunTx).
type runner func(fn func(tx *stm.Tx))

// Populate fills the tables as STAMP does: every relation id in [1, r]
// gets an initial capacity and random price in each resource table, and
// every id becomes a customer.
func Populate(m *Manager, th core.Thread, p Params, seed int64) {
	populateWith(m, th, p, seed, func(fn func(tx *stm.Tx)) { m.tm.Run(th, fn) })
}

func populateWith(m *Manager, th core.Thread, p Params, seed int64, run runner) {
	rng := rand.New(rand.NewSource(seed))
	// One insert per transaction: populate transactions with huge read
	// sets would trigger NOrec's O(read set) validation on every read
	// (quadratic); STAMP likewise populates with small transactions.
	for id := 1; id <= p.Relations; id++ {
		for k := 0; k < numKinds; k++ {
			price := uint64(rng.Intn(5)*10 + 50)
			kind := k
			run(func(tx *stm.Tx) {
				m.AddResource(tx, th, kind, uint64(id), 100, price)
			})
		}
		run(func(tx *stm.Tx) {
			m.AddCustomer(tx, th, uint64(id))
		})
	}
}

// Client runs one STAMP vacation client: p.Transactions actions with the
// STAMP mix, deterministic in seed. It returns the number of transactions
// executed.
func Client(m *Manager, th core.Thread, p Params, seed int64) int {
	return clientWith(m, th, p, seed, func(fn func(tx *stm.Tx)) { m.tm.Run(th, fn) })
}

func clientWith(m *Manager, th core.Thread, p Params, seed int64, run runner) int {
	rng := rand.New(rand.NewSource(seed))
	queryRange := p.Relations * p.PercentQuery / 100
	if queryRange < 1 {
		queryRange = 1
	}
	for i := 0; i < p.Transactions; i++ {
		action := rng.Intn(100)
		switch {
		case action < p.PercentUser:
			makeReservation(m, th, rng, p, queryRange, run)
		case action%2 == 0:
			deleteCustomer(m, rng, queryRange, run)
		default:
			updateTables(m, th, rng, p, queryRange, run)
		}
	}
	return p.Transactions
}

func makeReservation(m *Manager, th core.Thread, rng *rand.Rand, p Params, queryRange int, run runner) {
	numQuery := rng.Intn(p.QueriesPerTx) + 1
	customerID := uint64(rng.Intn(queryRange) + 1)
	kinds := make([]int, numQuery)
	ids := make([]uint64, numQuery)
	for n := 0; n < numQuery; n++ {
		kinds[n] = rng.Intn(numKinds)
		ids[n] = uint64(rng.Intn(queryRange) + 1)
	}
	run(func(tx *stm.Tx) {
		var maxPrice [numKinds]uint64
		var maxID [numKinds]uint64
		for n := 0; n < numQuery; n++ {
			if price, ok := m.QueryPrice(tx, kinds[n], ids[n]); ok && price > maxPrice[kinds[n]] {
				maxPrice[kinds[n]] = price
				maxID[kinds[n]] = ids[n]
			}
		}
		added := false
		for k := 0; k < numKinds; k++ {
			if maxID[k] != 0 {
				if !added {
					m.AddCustomer(tx, th, customerID)
					added = true
				}
				m.Reserve(tx, th, customerID, k, maxID[k])
			}
		}
	})
}

func deleteCustomer(m *Manager, rng *rand.Rand, queryRange int, run runner) {
	customerID := uint64(rng.Intn(queryRange) + 1)
	run(func(tx *stm.Tx) {
		if _, ok := m.QueryCustomerBill(tx, customerID); ok {
			m.DeleteCustomer(tx, customerID)
		}
	})
}

func updateTables(m *Manager, th core.Thread, rng *rand.Rand, p Params, queryRange int, run runner) {
	numUpdate := rng.Intn(p.QueriesPerTx) + 1
	kinds := make([]int, numUpdate)
	ids := make([]uint64, numUpdate)
	adds := make([]bool, numUpdate)
	prices := make([]uint64, numUpdate)
	for n := 0; n < numUpdate; n++ {
		kinds[n] = rng.Intn(numKinds)
		ids[n] = uint64(rng.Intn(queryRange) + 1)
		adds[n] = rng.Intn(2) == 0
		prices[n] = uint64(rng.Intn(5)*10 + 50)
	}
	run(func(tx *stm.Tx) {
		for n := 0; n < numUpdate; n++ {
			if adds[n] {
				m.AddResource(tx, th, kinds[n], ids[n], 100, prices[n])
			} else {
				m.DeleteResource(tx, kinds[n], ids[n], 100)
			}
		}
	})
}
