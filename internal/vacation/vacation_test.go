package vacation

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/vtags"
)

func smallParams() Params {
	return Params{QueriesPerTx: 4, PercentQuery: 60, PercentUser: 90, Relations: 64, Transactions: 100}
}

func TestManagerBasics(t *testing.T) {
	mem := vtags.New(32<<20, 1)
	tm := stm.NewNOrec(mem)
	m := NewManager(mem, tm)
	th := mem.Thread(0)

	tm.Run(th, func(tx *stm.Tx) {
		m.AddResource(tx, th, KindCar, 1, 2, 75)
		m.AddCustomer(tx, th, 10)
	})
	tm.Run(th, func(tx *stm.Tx) {
		if price, ok := m.QueryPrice(tx, KindCar, 1); !ok || price != 75 {
			t.Errorf("QueryPrice = %d,%v", price, ok)
		}
		if _, ok := m.QueryPrice(tx, KindCar, 2); ok {
			t.Error("phantom resource")
		}
		if !m.Reserve(tx, th, 10, KindCar, 1) {
			t.Error("reserve failed")
		}
		if !m.Reserve(tx, th, 10, KindCar, 1) {
			t.Error("second reserve failed")
		}
		if m.Reserve(tx, th, 10, KindCar, 1) {
			t.Error("overbooked")
		}
	})
	tm.Run(th, func(tx *stm.Tx) {
		if bill, ok := m.QueryCustomerBill(tx, 10); !ok || bill != 150 {
			t.Errorf("bill = %d,%v want 150", bill, ok)
		}
	})
	tm.Run(th, func(tx *stm.Tx) {
		if !m.DeleteCustomer(tx, 10) {
			t.Error("delete customer failed")
		}
		if m.DeleteCustomer(tx, 10) {
			t.Error("double delete succeeded")
		}
	})
	// Capacity returned on customer deletion.
	tm.Run(th, func(tx *stm.Tx) {
		if price, ok := m.QueryPrice(tx, KindCar, 1); !ok || price != 75 {
			t.Errorf("capacity not restored: %d,%v", price, ok)
		}
	})
	if ok, detail := m.CheckTables(th); !ok {
		t.Fatalf("invariants: %s", detail)
	}
}

func TestDeleteResource(t *testing.T) {
	mem := vtags.New(32<<20, 1)
	tm := stm.NewNOrec(mem)
	m := NewManager(mem, tm)
	th := mem.Thread(0)
	tm.Run(th, func(tx *stm.Tx) {
		m.AddResource(tx, th, KindRoom, 5, 100, 60)
		if !m.DeleteResource(tx, KindRoom, 5, 40) {
			t.Error("partial delete failed")
		}
		if m.DeleteResource(tx, KindRoom, 5, 100) {
			t.Error("overdelete succeeded")
		}
		if !m.DeleteResource(tx, KindRoom, 5, 60) {
			t.Error("full delete failed")
		}
		if _, ok := m.QueryPrice(tx, KindRoom, 5); ok {
			t.Error("record survives zero capacity")
		}
	})
}

func TestPopulate(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	tm := stm.NewNOrec(mem)
	m := NewManager(mem, tm)
	th := mem.Thread(0)
	p := smallParams()
	Populate(m, th, p, 1)
	tm.Run(th, func(tx *stm.Tx) {
		for id := uint64(1); id <= uint64(p.Relations); id++ {
			for k := 0; k < numKinds; k++ {
				if price, ok := m.QueryPrice(tx, k, id); !ok || price < 50 || price > 90 {
					t.Fatalf("resource %d/%d: price %d ok=%v", k, id, price, ok)
				}
			}
		}
	})
	if ok, detail := m.CheckTables(th); !ok {
		t.Fatalf("invariants after populate: %s", detail)
	}
}

func TestClientSequential(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	tm := stm.NewNOrec(mem)
	m := NewManager(mem, tm)
	th := mem.Thread(0)
	p := smallParams()
	Populate(m, th, p, 1)
	n := Client(m, th, p, 2)
	if n != p.Transactions {
		t.Fatalf("ran %d transactions, want %d", n, p.Transactions)
	}
	if ok, detail := m.CheckTables(th); !ok {
		t.Fatalf("invariants after client: %s", detail)
	}
}

func TestClientsConcurrent(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func(core.Memory) *stm.TM
	}{{"NOrec", stm.NewNOrec}, {"Tagged", stm.NewTagged}} {
		t.Run(mk.name, func(t *testing.T) {
			const workers = 4
			mem := vtags.New(256<<20, workers)
			tm := mk.fn(mem)
			m := NewManager(mem, tm)
			p := smallParams()
			Populate(m, mem.Thread(0), p, 1)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					Client(m, mem.Thread(w), p, int64(100+w))
				}(w)
			}
			wg.Wait()
			if ok, detail := m.CheckTables(mem.Thread(0)); !ok {
				t.Fatalf("invariants after concurrent clients: %s", detail)
			}
		})
	}
}
