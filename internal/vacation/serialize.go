// Serializability recording and checking for the Vacation workload.
//
// Every client action is one STM transaction; RunTx brackets it with a
// history.OpTx event carrying the committed attempt's read and write sets
// at raw simulated addresses. The populating transactions are recorded
// too, so linearizability.SerializableMapModel can replay the whole
// history against a zero-initialized word map — exactly the simulated
// memory the STM ran over. A strictly serializable history plus intact
// table invariants is the workload-level correctness statement for NOrec
// and tagged NOrec alike.
package vacation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/stm"
)

// RunTx executes fn as one transaction of m's STM on th, recording the
// committed attempt into shard s as a history.OpTx event: read/write sets
// via TxRead/TxWrite, aborted-attempt count in Arg.
func RunTx(m *Manager, th core.Thread, s *history.Shard, fn func(tx *stm.Tx)) {
	idx := s.BeginTx()
	attempts := 0
	var last *stm.Tx
	m.tm.Run(th, func(tx *stm.Tx) {
		attempts++
		last = tx
		fn(tx)
	})
	// After Run returns, last still holds the committed attempt's
	// footprint (see stm.Tx.ReadSet).
	last.ReadSet(func(a core.Addr, v uint64) { s.TxRead(idx, uint64(a), v) })
	last.WriteSet(func(a core.Addr, v uint64) { s.TxWrite(idx, uint64(a), v) })
	s.SetArg(idx, uint64(attempts-1))
	s.End(idx, true, 0)
}

// RecordedPopulate is Populate with every transaction recorded into s.
func RecordedPopulate(m *Manager, th core.Thread, s *history.Shard, p Params, seed int64) {
	populateWith(m, th, p, seed, func(fn func(tx *stm.Tx)) { RunTx(m, th, s, fn) })
}

// RecordedClient is Client with every transaction recorded into s.
func RecordedClient(m *Manager, th core.Thread, s *history.Shard, p Params, seed int64) int {
	return clientWith(m, th, p, seed, func(fn func(tx *stm.Tx)) { RunTx(m, th, s, fn) })
}

// SerializeReport is the result of one RunSerializeSuite pass.
type SerializeReport struct {
	// Outcome is the strict-serializability verdict over all recorded
	// transactions (populate included).
	Outcome linearizability.SerializeOutcome
	// TablesOK/TablesDetail report the quiescent conservation invariants
	// (Manager.CheckTables).
	TablesOK     bool
	TablesDetail string
}

// Err returns nil when the pass was fully correct, else an error whose
// message embeds the printed counterexample or invariant violation.
func (r *SerializeReport) Err() error {
	if !r.Outcome.OK {
		return fmt.Errorf("vacation history: %s", r.Outcome.Explain())
	}
	if !r.TablesOK {
		return fmt.Errorf("vacation tables: %s", r.TablesDetail)
	}
	return nil
}

// initRecorder wraps a Memory during Manager construction so the tables'
// non-transactional initialization (txmap.New stores its NIL sentinel and
// root pointer with plain Stores) is captured and can be replayed as a
// synthetic first transaction — without it, the zero-initialized checker
// model would reject the very first root-pointer read.
type initRecorder struct {
	core.Memory
	writes []history.TxAccess
}

func (ir *initRecorder) Thread(id int) core.Thread {
	return &initThread{Thread: ir.Memory.Thread(id), ir: ir}
}

type initThread struct {
	core.Thread
	ir *initRecorder
}

func (t *initThread) Store(a core.Addr, v uint64) {
	t.ir.writes = append(t.ir.writes, history.TxAccess{Addr: uint64(a), Val: v})
	t.Thread.Store(a, v)
}

// NewRecordedManager builds a Manager whose construction-time plain
// stores (txmap.New writes NIL sentinels and root pointers outside any
// transaction) are captured and emitted into s as a synthetic first
// committed transaction. Any serializability check over transactions run
// against the returned manager needs that initial transaction — without
// it the checker's zero-initialized word map rejects the first root read.
// The given shard must real-time-precede all recorded client work (i.e.
// call this before any client starts, which construction order gives you
// for free).
func NewRecordedManager(mem core.Memory, tm *stm.TM, s *history.Shard) *Manager {
	ir := &initRecorder{Memory: mem}
	m := NewManager(ir, tm)
	idx := s.BeginTx()
	for _, w := range ir.writes {
		s.TxWrite(idx, w.Addr, w.Val)
	}
	s.End(idx, true, 0)
	return m
}

// RunSerializeSuite runs a recorded Vacation workload — a sequential
// populate followed by `workers` concurrent recorded clients — on the
// given memory and STM, then checks strict serializability of the
// transaction history and the table conservation invariants. It works on
// any core.Memory backend; threads exposing SetActive (the machine
// backend's lax clock sync) are enrolled for the measured region.
func RunSerializeSuite(mem core.Memory, tm *stm.TM, p Params, workers int, seed int64) SerializeReport {
	// Shard w records client w; the extra shard records the init tx and
	// populate (they run alone before the clients start, so their events
	// real-time-precede all client transactions and pin the initial table
	// state).
	rec := history.NewRecorder(workers+1, p.Relations*(numKinds+1)+p.Transactions)
	m := NewRecordedManager(mem, tm, rec.Shard(workers))
	RecordedPopulate(m, mem.Thread(0), rec.Shard(workers), p, seed)

	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			th := mem.Thread(w)
			if sa, ok := th.(interface{ SetActive(bool) }); ok {
				sa.SetActive(true)
				defer sa.SetActive(false)
			}
			RecordedClient(m, th, rec.Shard(w), p, seed*131+int64(w)+1)
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	var rep SerializeReport
	rep.TablesOK, rep.TablesDetail = m.CheckTables(mem.Thread(0))
	rep.Outcome = linearizability.SerializableMapModel{}.Check(rec)
	return rep
}
