package vacation

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/schedexplore"
	"repro/internal/stm"
	"repro/internal/vtags"
)

// suiteParams is a workload small enough that the serializability DFS
// stays trivial (populate is a forced real-time chain; only the client
// transactions overlap) yet contended enough to exercise retries.
func suiteParams() Params {
	return Params{QueriesPerTx: 2, PercentQuery: 100, PercentUser: 90, Relations: 4, Transactions: 4}
}

// TestSerializeSuiteBackends is the satellite acceptance test: the
// recorded Vacation workload is strictly serializable on both memory
// backends under both STM variants.
func TestSerializeSuiteBackends(t *testing.T) {
	const workers = 3
	backends := []struct {
		name string
		mk   func() core.Memory
	}{
		{"machine", func() core.Memory {
			cfg := machine.DefaultConfig(workers)
			cfg.MemBytes = 4 << 20
			cfg.MaxTags = 64
			return machine.New(cfg)
		}},
		{"vtags", func() core.Memory {
			return vtags.New(4<<20, workers, vtags.WithMaxTags(64))
		}},
	}
	variants := []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"norec", stm.NewNOrec},
		{"tagged", stm.NewTagged},
	}
	for _, b := range backends {
		for _, v := range variants {
			t.Run(b.name+"/"+v.name, func(t *testing.T) {
				mem := b.mk()
				rep := RunSerializeSuite(mem, v.mk(mem), suiteParams(), workers, 7)
				if err := rep.Err(); err != nil {
					t.Fatal(err)
				}
				if rep.Outcome.Txs < workers*suiteParams().Transactions {
					t.Fatalf("only %d committed txs recorded", rep.Outcome.Txs)
				}
			})
		}
	}
}

// tornSetup is the seeded-opacity-bug workload, run under the schedule
// explorer for a deterministic verdict: one writer restocks an existing
// resource record (a three-word update: numFree, numTotal, price) while a
// reader queries it. With FaultTornRead the tagged Read path skips the
// torn-read guard, so schedules interleaving the reader's two record
// loads with the writer's writeBack record a (new numFree, old price)
// observation that matches no serial state — the serializability checker
// must convict exactly those schedules.
func tornSetup(fault bool) func() schedexplore.Setup {
	return func() schedexplore.Setup {
		cfg := machine.DefaultConfig(2)
		cfg.MemBytes = 1 << 20
		cfg.MaxTags = 64
		m := machine.New(cfg)
		tm := stm.NewTagged(m)
		tm.FaultTornRead = fault
		ir := &initRecorder{Memory: m}
		mgr := NewManager(ir, tm)
		rec := history.NewRecorder(3, 8)
		init := rec.Shard(2).BeginTx()
		for _, w := range ir.writes {
			rec.Shard(2).TxWrite(init, w.Addr, w.Val)
		}
		rec.Shard(2).End(init, true, 0)
		th0 := m.Thread(0)
		RunTx(mgr, th0, rec.Shard(2), func(tx *stm.Tx) {
			mgr.AddResource(tx, th0, KindCar, 1, 100, 50)
		})
		return schedexplore.Setup{
			Machine: m,
			Workers: 2,
			Body: func(w int, th core.Thread) {
				if w == 0 {
					RunTx(mgr, th, rec.Shard(0), func(tx *stm.Tx) {
						mgr.AddResource(tx, th, KindCar, 1, 100, 90)
					})
					return
				}
				RunTx(mgr, th, rec.Shard(1), func(tx *stm.Tx) {
					mgr.QueryPrice(tx, KindCar, 1)
				})
			},
			Check: func() error {
				out := linearizability.SerializableMapModel{}.Check(rec)
				if !out.OK {
					return fmt.Errorf("vacation history: %s", out.Explain())
				}
				return nil
			},
		}
	}
}

// TestSerializeSuiteCatchesTornRead is the acceptance-criterion fault
// injection: with the opacity bug seeded into the tagged NOrec read path
// the suite must fail and print a counterexample; with the guard intact
// the identical schedules all pass.
func TestSerializeSuiteCatchesTornRead(t *testing.T) {
	cfg := schedexplore.Config{Mode: schedexplore.RandomWalk, Seed: 3, Executions: 400}
	res := schedexplore.Explore(tornSetup(true), cfg)
	if res.Failure == nil {
		t.Fatalf("seeded torn read never convicted in %d executions", res.Executions)
	}
	msg := res.Failure.Err.Error()
	if !strings.Contains(msg, "NOT strictly serializable") {
		t.Fatalf("unexpected conviction: %v", msg)
	}
	// The printed counterexample names the torn observation.
	if !strings.Contains(msg, "observed") {
		t.Fatalf("counterexample does not name the mismatching read:\n%s", msg)
	}
	t.Logf("torn-read counterexample:\n%s\nschedule:\n%s", msg, res.Failure.String())

	res = schedexplore.Explore(tornSetup(false), cfg)
	if res.Failure != nil {
		t.Fatalf("intact guard convicted: %v", res.Failure)
	}
}
