package cachemodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestGeometry(t *testing.T) {
	c := New(32<<10, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.CapacityLines() != 512 {
		t.Fatalf("32KB/8-way: sets=%d ways=%d cap=%d", c.Sets(), c.Ways(), c.CapacityLines())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ bytes, ways int }{
		{100, 8},     // not line multiple
		{3 << 10, 8}, // 48 lines / 8 = 6 sets, not power of two
		{1 << 10, 0}, // zero ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.bytes, tc.ways)
				}
			}()
			New(tc.bytes, tc.ways)
		}()
	}
}

func TestInsertLookup(t *testing.T) {
	c := New(1<<10, 2) // 16 lines, 8 sets, 2-way
	if c.Lookup(5) {
		t.Fatal("hit on empty cache")
	}
	if _, ev := c.Insert(5); ev {
		t.Fatal("eviction on empty set")
	}
	if !c.Lookup(5) || !c.Contains(5) {
		t.Fatal("miss after insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1<<10, 2) // 8 sets, 2-way
	// Lines 0, 8, 16 map to set 0.
	c.Insert(0)
	c.Insert(8)
	c.Lookup(0) // make 8 the LRU
	victim, ev := c.Insert(16)
	if !ev || victim != 8 {
		t.Fatalf("victim = %d (evicted=%v), want 8", victim, ev)
	}
	if !c.Contains(0) || !c.Contains(16) || c.Contains(8) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := New(1<<10, 2)
	c.Insert(0)
	c.Insert(8)
	c.Insert(0) // refresh 0; 8 becomes LRU
	victim, ev := c.Insert(16)
	if !ev || victim != 8 {
		t.Fatalf("victim = %d, want 8 after refresh", victim)
	}
}

func TestRemove(t *testing.T) {
	c := New(1<<10, 2)
	c.Insert(3)
	if !c.Remove(3) {
		t.Fatal("Remove of resident line reported false")
	}
	if c.Remove(3) {
		t.Fatal("Remove of absent line reported true")
	}
	if c.Contains(3) {
		t.Fatal("line still resident after Remove")
	}
	// The freed way is reused without eviction.
	c.Insert(11) // same set as 3; set now holds {11} with one free way
	if _, ev := c.Insert(3); ev {
		t.Fatal("unexpected eviction with a free way")
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	c := New(1<<10, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Insert(core.Line(rng.Intn(1000)))
		if n := c.ResidentLines(); n > c.CapacityLines() {
			t.Fatalf("resident %d > capacity %d", n, c.CapacityLines())
		}
	}
}

// Property: after Insert(l), l is resident; the victim (if any) maps to the
// same set and is no longer resident.
func TestInsertProperty(t *testing.T) {
	c := New(1<<12, 4) // 64 lines, 16 sets
	f := func(raw uint16) bool {
		l := core.Line(raw % 512)
		victim, ev := c.Insert(l)
		if !c.Contains(l) {
			return false
		}
		if ev {
			sameSet := uint64(victim)%16 == uint64(l)%16
			return sameSet && (victim == l || !c.Contains(victim))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set within capacity, touched round-robin, stops missing
	// after the first pass.
	c := New(32<<10, 8) // 512 lines
	for l := core.Line(0); l < 512; l++ {
		c.Insert(l)
	}
	for l := core.Line(0); l < 512; l++ {
		if !c.Lookup(l) {
			t.Fatalf("line %d missing though working set fits", l)
		}
	}
}
