// Package cachemodel implements a set-associative cache replacement model
// with LRU eviction. It models *presence only*: which lines are resident in
// a private cache level and which victim a fill displaces. Data and
// coherence authority live elsewhere (in the machine's directory), so a
// Cache is free of synchronization and must only be used by the goroutine
// that owns the simulated core.
package cachemodel

import (
	"fmt"

	"repro/internal/core"
)

// Cache is a set-associative cache presence model with LRU replacement.
type Cache struct {
	sets  [][]entry
	ways  int
	clock uint64
}

type entry struct {
	line  core.Line
	valid bool
	used  uint64
}

// New creates a cache model of totalBytes capacity with the given
// associativity. totalBytes must be a multiple of ways*core.LineSize and
// the resulting number of sets must be a power of two.
func New(totalBytes, ways int) *Cache {
	if ways <= 0 {
		panic("cachemodel: non-positive associativity")
	}
	linesTotal := totalBytes / core.LineSize
	if linesTotal*core.LineSize != totalBytes || linesTotal%ways != 0 {
		panic(fmt.Sprintf("cachemodel: capacity %dB not divisible into %d-way sets", totalBytes, ways))
	}
	nSets := linesTotal / ways
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cachemodel: number of sets %d is not a power of two", nSets))
	}
	sets := make([][]entry, nSets)
	backing := make([]entry, nSets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &Cache{sets: sets, ways: ways}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityLines returns the total number of lines the cache can hold.
func (c *Cache) CapacityLines() int { return len(c.sets) * c.ways }

func (c *Cache) set(l core.Line) []entry {
	return c.sets[uint64(l)&uint64(len(c.sets)-1)]
}

// Lookup reports whether line l is resident, updating its LRU position on a
// hit.
func (c *Cache) Lookup(l core.Line) bool {
	c.clock++
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].line == l {
			set[i].used = c.clock
			return true
		}
	}
	return false
}

// Contains reports whether line l is resident without touching LRU state.
func (c *Cache) Contains(l core.Line) bool {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].line == l {
			return true
		}
	}
	return false
}

// Insert makes line l resident. If the set is full, the least recently used
// entry is displaced and returned with evicted=true. Inserting a line that
// is already resident only refreshes its LRU position.
func (c *Cache) Insert(l core.Line) (victim core.Line, evicted bool) {
	c.clock++
	set := c.set(l)
	freeIdx, lruIdx := -1, 0
	for i := range set {
		if set[i].valid && set[i].line == l {
			set[i].used = c.clock
			return 0, false
		}
		if !set[i].valid {
			if freeIdx < 0 {
				freeIdx = i
			}
		} else if set[i].used < set[lruIdx].used || !set[lruIdx].valid {
			lruIdx = i
		}
	}
	if freeIdx >= 0 {
		set[freeIdx] = entry{line: l, valid: true, used: c.clock}
		return 0, false
	}
	victim = set[lruIdx].line
	set[lruIdx] = entry{line: l, valid: true, used: c.clock}
	return victim, true
}

// Remove invalidates line l if resident and reports whether it was.
func (c *Cache) Remove(l core.Line) bool {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].line == l {
			set[i].valid = false
			return true
		}
	}
	return false
}

// ResidentLines returns the number of currently resident lines (for tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}
