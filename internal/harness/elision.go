package harness

import (
	"fmt"
	"io"

	"repro/internal/abtree"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/workload"
)

// ElisionExperiment measures the fallback-path behaviour (Section 3): how
// often operations complete on the tagged fast path versus the software
// slow path as the L1 shrinks and spurious evictions rise.
type ElisionExperiment struct {
	Name    string
	Title   string
	Threads int
	// L1Lines sweeps the L1 capacity in cache lines.
	L1Lines      []int
	OpsPerThread int
	KeyRange     uint64
	Seed         int64
	// Workers bounds the host worker pool cells fan out over: 0 serial,
	// -1 one per host CPU (see parallel.go). Results are identical for
	// every setting.
	Workers int
}

// ElisionPoint is one measured cell.
type ElisionPoint struct {
	Structure   string
	L1Lines     int
	FastPct     float64 // operations committing on the fast path
	SpuriousPct float64 // validation failures per validation
	Mops        float64
}

// NewElisionExperiment returns the default sweep.
func NewElisionExperiment(quick bool) *ElisionExperiment {
	e := &ElisionExperiment{
		Name:         "elision",
		Title:        "Fallback trip rate vs L1 size (elided list & tree)",
		Threads:      4,
		L1Lines:      []int{8, 32, 128, 512},
		OpsPerThread: 300,
		KeyRange:     512,
		Seed:         42,
	}
	if quick {
		e.OpsPerThread = 120
		e.L1Lines = []int{8, 64, 512}
	}
	return e
}

// Run executes the sweep for both elided structures. Cells run on a pool
// of e.Workers host workers; the output is identical for any worker count.
func (e *ElisionExperiment) Run() []ElisionPoint {
	points := make([]ElisionPoint, 2*len(e.L1Lines))
	forEachCell(resolveWorkers(e.Workers), len(points), func(i int) {
		lines := e.L1Lines[i/2]
		cfg := machine.DefaultConfig(e.Threads)
		cfg.MemBytes = 256 << 20
		cfg.L1Bytes = lines * 64
		if lines < 8 {
			cfg.L1Ways = 1
		} else if lines < 64 {
			cfg.L1Ways = 2
		}
		m := machine.New(cfg)
		if i%2 == 0 {
			// Elided list (VAS fast / Harris slow).
			s := list.NewElided(m, 0)
			points[i] = e.runOne(m, "list", lines, s, func() (fast, slow uint64) {
				return s.FastCommits.Load(), s.SlowCommits.Load()
			})
		} else {
			// Elided (a,b)-tree (HoH fast / LLX-SCX slow).
			s := abtree.NewElided(m, TreeA, TreeB, 0)
			points[i] = e.runOne(m, "abtree", lines, s, func() (fast, slow uint64) {
				return s.FastCommits.Load(), s.SlowCommits.Load()
			})
		}
	})
	return points
}

func (e *ElisionExperiment) runOne(m *machine.Machine, name string, lines int,
	s intset.Set, counters func() (fast, slow uint64)) ElisionPoint {

	cfg := workload.Config{
		Threads: e.Threads, KeyRange: e.KeyRange, PrefillSize: int(e.KeyRange / 2),
		OpsPerThread: e.OpsPerThread, Mix: workload.Update3535, Seed: e.Seed,
	}
	workload.Prefill(m, s, cfg)
	before := m.Snapshot()
	counts := workload.Run(m, s, cfg)
	after := m.Snapshot()

	fast, slow := counters()
	p := ElisionPoint{Structure: name, L1Lines: lines}
	if fast+slow > 0 {
		p.FastPct = 100 * float64(fast) / float64(fast+slow)
	}
	if v := after.Validates - before.Validates; v > 0 {
		p.SpuriousPct = 100 * float64(after.ValidateFails-before.ValidateFails) / float64(v)
	}
	if cyc := after.MaxCycles - before.MaxCycles; cyc > 0 {
		p.Mops = float64(counts.Ops) / (float64(cyc) / m.Config().ClockHz) / 1e6
	}
	return p
}

// PrintElision writes the sweep as a table.
func PrintElision(w io.Writer, title string, points []ElisionPoint) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-10s %10s %12s %14s %10s\n", "structure", "L1 lines", "fast-path %", "validate-fail %", "Mops/s")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s %10d %12.2f %14.3f %10.3f\n",
			p.Structure, p.L1Lines, p.FastPct, p.SpuriousPct, p.Mops)
	}
}
