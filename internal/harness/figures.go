package harness

import (
	"repro/internal/abtree"
	"repro/internal/bst"
	"repro/internal/chromatic"
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/skiplist"
	"repro/internal/stm"
	"repro/internal/txset"
	"repro/internal/workload"
)

// Scale selects experiment sizing. Quick keeps unit-test and default bench
// runtimes small; Paper approaches the paper's setup (1-64 simulated
// cores). Absolute op counts are far below Graphite runs in either case —
// the simulator is functionally concurrent, so the per-op cost model, not
// run length, determines the reported rates.
type Scale struct {
	Threads      []int
	OpsPerThread int
	Trials       int
}

// QuickScale is small enough for CI.
func QuickScale() Scale {
	return Scale{Threads: []int{1, 2, 4, 8}, OpsPerThread: 300, Trials: 1}
}

// PaperScale sweeps the paper's 1-64 cores and averages over trials.
func PaperScale() Scale {
	return Scale{Threads: []int{1, 2, 4, 8, 16, 32, 64}, OpsPerThread: 600, Trials: 3}
}

// TreeAB are the (a,b)-tree parameters used by the tree experiments.
const (
	TreeA = 4
	TreeB = 8
)

// ListVariants returns the three list implementations of Figures 2/4/5.
func ListVariants() []SetVariant {
	return []SetVariant{
		{Name: "harris", Build: func(m core.Memory) intset.Set { return list.NewHarris(m) }},
		{Name: "vas", Build: func(m core.Memory) intset.Set { return list.NewVAS(m) }},
		{Name: "hoh", Build: func(m core.Memory) intset.Set { return list.NewHoH(m) }},
	}
}

// TreeVariants returns the two (a,b)-tree implementations of Figures 6/7.
func TreeVariants() []SetVariant {
	return []SetVariant{
		{Name: "llxscx", Build: func(m core.Memory) intset.Set { return abtree.NewLLX(m, TreeA, TreeB) }},
		{Name: "hoh-tag", Build: func(m core.Memory) intset.Set { return abtree.NewHoH(m, TreeA, TreeB) }},
	}
}

// BSTVariants returns the external BST implementations (extension
// experiment: the paper names BSTs among tagging's applications).
func BSTVariants() []SetVariant {
	return []SetVariant{
		{Name: "llxscx", Build: func(m core.Memory) intset.Set { return bst.NewLLX(m) }},
		{Name: "hoh-tag", Build: func(m core.Memory) intset.Set { return bst.NewHoH(m) }},
	}
}

// ChromaticVariants returns the chromatic tree implementations (the other
// balanced tree the paper names).
func ChromaticVariants() []SetVariant {
	return []SetVariant{
		{Name: "llxscx", Build: func(m core.Memory) intset.Set { return chromatic.NewLLX(m) }},
		{Name: "hoh-tag", Build: func(m core.Memory) intset.Set { return chromatic.NewHoH(m) }},
	}
}

// SkipVariants returns the skip list implementations (extension
// experiment).
func SkipVariants() []SetVariant {
	return []SetVariant{
		{Name: "cas", Build: func(m core.Memory) intset.Set { return skiplist.New(m) }},
		{Name: "vas", Build: func(m core.Memory) intset.Set { return skiplist.NewVAS(m) }},
	}
}

// listExperiment builds a list experiment with the paper's methodology:
// key range double the initial size, prefilled to half.
func listExperiment(name, title, figure string, mix workload.Mix, sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: name, Title: title, Figure: figure,
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     512,
		OpsPerThread: sc.OpsPerThread,
		Mix:          mix,
		Seed:         42,
		Variants:     ListVariants(),
		MemBytes:     64 << 20,
	}
}

func treeExperiment(name, title, figure string, mix workload.Mix, sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: name, Title: title, Figure: figure,
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     8192,
		OpsPerThread: sc.OpsPerThread * 2, // tree ops are O(log n): afford more
		Mix:          mix,
		Seed:         42,
		Variants:     TreeVariants(),
		MemBytes:     256 << 20,
	}
}

// Fig2 reproduces Figure 2: linked-list throughput vs threads at 35%
// inserts / 35% deletes (the throughput panel of Figure 4).
func Fig2(sc Scale) *SetExperiment {
	return listExperiment("fig2", "Linked list, 35% ins / 35% del (throughput)", "Figure 2", workload.Update3535, sc)
}

// Fig4 reproduces Figure 4: linked-list throughput, miss rate and energy
// at 35/35.
func Fig4(sc Scale) *SetExperiment {
	return listExperiment("fig4", "Linked list, 35% ins / 35% del", "Figure 4", workload.Update3535, sc)
}

// Fig5 reproduces Figure 5: linked list at 15% inserts / 15% deletes.
func Fig5(sc Scale) *SetExperiment {
	return listExperiment("fig5", "Linked list, 15% ins / 15% del", "Figure 5", workload.Update1515, sc)
}

// Fig6 reproduces Figure 6: (a,b)-tree at 35/35, LLX/SCX vs HoH tagging.
func Fig6(sc Scale) *SetExperiment {
	return treeExperiment("fig6", "(a,b)-tree, 35% ins / 35% del", "Figure 6", workload.Update3535, sc)
}

// Fig7 reproduces Figure 7: (a,b)-tree at 15/15.
func Fig7(sc Scale) *SetExperiment {
	return treeExperiment("fig7", "(a,b)-tree, 15% ins / 15% del", "Figure 7", workload.Update1515, sc)
}

// BSTExperiment is an extension experiment: the unbalanced external BST,
// LLX/SCX vs HoH tagging, at 35/35.
func BSTExperiment(sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: "bst", Title: "External BST, 35% ins / 35% del (extension)", Figure: "(extension)",
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     8192,
		OpsPerThread: sc.OpsPerThread * 2,
		Mix:          workload.Update3535,
		Seed:         42,
		Variants:     BSTVariants(),
		MemBytes:     256 << 20,
	}
}

// ChromaticExperiment compares the chromatic tree variants at 35/35 (the
// paper verified its generic transformation on the chromatic tree; it
// reports no separate figure).
func ChromaticExperiment(sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: "chromatic", Title: "Chromatic tree, 35% ins / 35% del (extension)", Figure: "(extension)",
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     8192,
		OpsPerThread: sc.OpsPerThread * 2,
		Mix:          workload.Update3535,
		Seed:         42,
		Variants:     ChromaticVariants(),
		MemBytes:     256 << 20,
	}
}

// StmSetExperiment compares general-purpose STM ordered sets (NOrec and
// tagged NOrec over a transactional red-black tree) against the
// purpose-built HoH-tagged (a,b)-tree — the usability/performance
// trade-off the paper's conclusions discuss.
func StmSetExperiment(sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: "stmset", Title: "STM RB-set vs HoH (a,b)-tree, 35% ins / 35% del (extension)", Figure: "(extension)",
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     2048,
		OpsPerThread: sc.OpsPerThread,
		Mix:          workload.Update3535,
		Seed:         42,
		Variants: []SetVariant{
			{Name: "norec-set", Build: func(m core.Memory) intset.Set { return txset.New(m, stm.NewNOrec(m)) }},
			{Name: "tagged-set", Build: func(m core.Memory) intset.Set { return txset.New(m, stm.NewTagged(m)) }},
			{Name: "hoh-tree", Build: func(m core.Memory) intset.Set { return abtree.NewHoH(m, TreeA, TreeB) }},
		},
		MemBytes: 256 << 20,
		Config: func(cores int) machine.Config {
			cfg := machine.DefaultConfig(cores)
			cfg.MemBytes = 256 << 20
			cfg.MaxTags = 128 // STM read sets span many lines
			return cfg
		},
	}
}

// reclaimSkipVariant builds the VAS skip list with a reclamation pool of
// the given policy attached (domain in checked mode, so any discipline
// violation fails loudly instead of corrupting the run).
func reclaimSkipVariant(name string, policy reclaim.Policy) SetVariant {
	return SetVariant{
		Name: name,
		BuildReclaimed: func(m core.Memory) (intset.Set, *reclaim.Pool) {
			d := reclaim.NewDomainFor(m)
			d.SetChecked(true)
			if sr, ok := m.(interface{ SetReclaim(*reclaim.Domain) }); ok {
				sr.SetReclaim(d)
			}
			s := skiplist.NewVAS(m)
			p := reclaim.NewPool(d, skiplist.NodeWords, policy)
			s.SetReclaim(p)
			return s, p
		},
	}
}

// ReclaimExperiment compares memory-reclamation policies on the VAS skip
// list: no reclamation (leak every unlinked node), the tag-conditioned
// immediate policy, and the epoch baseline. Beyond throughput/miss-rate,
// the reclaimed variants report retire-to-free latency and footprint
// (peak live lines, free-list size) — the metrics that separate the two
// policies.
func ReclaimExperiment(sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: "reclaim", Title: "Skip list reclamation: none vs immediate vs epoch (extension)", Figure: "(extension)",
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     4096,
		OpsPerThread: sc.OpsPerThread * 2,
		Mix:          workload.Update3535,
		Seed:         42,
		Variants: []SetVariant{
			{Name: "none", Build: func(m core.Memory) intset.Set { return skiplist.NewVAS(m) }},
			reclaimSkipVariant("immediate", reclaim.PolicyImmediate),
			reclaimSkipVariant("epoch", reclaim.PolicyEpoch),
		},
		MemBytes: 256 << 20,
	}
}

// SkipExperiment is the extension experiment: skip list CAS vs VAS at
// 35/35 (the paper claims applicability but reports no skip-list figure).
func SkipExperiment(sc Scale) *SetExperiment {
	return &SetExperiment{
		Name: "skip", Title: "Skip list, 35% ins / 35% del (extension)", Figure: "(extension)",
		Threads: sc.Threads, Trials: sc.Trials,
		KeyRange:     4096,
		OpsPerThread: sc.OpsPerThread * 2,
		Mix:          workload.Update3535,
		Seed:         42,
		Variants:     SkipVariants(),
		MemBytes:     256 << 20,
	}
}
