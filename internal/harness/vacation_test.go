package harness

import "testing"

// TestVacationVerifySerializable pins the experiment-level hook: the
// scaled-down recorded pass over both STM variants is strictly
// serializable with intact table invariants.
func TestVacationVerifySerializable(t *testing.T) {
	e := Fig8(true)
	if err := e.VerifySerializable(); err != nil {
		t.Fatal(err)
	}
}
