package harness

import (
	"testing"

	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/list"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TestWorkloadHistoryLinearizable runs the experiment workload generator
// itself — prefill plus the standard high-update mix — with history
// recording attached, on the machine backend, and checks the recorded
// history. This covers the exact op streams the figures measure, not just
// the dedicated stress harness's.
func TestWorkloadHistoryLinearizable(t *testing.T) {
	const threads = 4
	ops := 150
	if testing.Short() {
		ops = 50
	}
	cfg := machine.DefaultConfig(threads)
	cfg.MemBytes = 16 << 20
	mem := machine.New(cfg)
	s := list.NewVAS(mem)

	rec := history.NewRecorder(threads, ops+32)
	wcfg := workload.Config{
		Threads:      threads,
		KeyRange:     16,
		PrefillSize:  8,
		OpsPerThread: ops,
		Mix:          workload.Update3535,
		Seed:         3,
		History:      rec,
	}
	fill := workload.Prefill(mem, s, wcfg)
	if fill.TotalFill != wcfg.PrefillSize {
		t.Fatalf("prefilled %d keys, want %d", fill.TotalFill, wcfg.PrefillSize)
	}
	counts := workload.Run(mem, s, wcfg)
	if counts.Ops != uint64(threads*ops) {
		t.Fatalf("ran %d ops, want %d", counts.Ops, threads*ops)
	}

	events := rec.Events()
	if want := threads*ops + wcfg.PrefillSize; len(events) < want {
		t.Fatalf("recorded %d events, want at least %d", len(events), want)
	}
	out := linearizability.CheckSet(events)
	if out.Inconclusive {
		t.Fatalf("checker inconclusive after %d ops", out.Ops)
	}
	if !out.OK {
		t.Fatalf("workload history not linearizable:\n%s", out.Explain())
	}

	// The recorder must agree with the workload's own accounting.
	var ins, del, hits uint64
	for i := range events {
		e := &events[i]
		if e.Pending() {
			t.Fatalf("event %d still pending after Run returned", i)
		}
		if !e.OK {
			continue
		}
		switch e.Op {
		case history.OpInsert:
			ins++
		case history.OpDelete:
			del++
		case history.OpContains:
			hits++
		}
	}
	ins -= uint64(wcfg.PrefillSize) // prefill's successful inserts
	if ins != counts.Inserts || del != counts.Deletes || hits != counts.Hits {
		t.Fatalf("history counts (i=%d d=%d h=%d) disagree with workload counts (%d %d %d)",
			ins, del, hits, counts.Inserts, counts.Deletes, counts.Hits)
	}
}
