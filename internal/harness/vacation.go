package harness

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/vacation"
)

// VacationExperiment reproduces Figure 8: STAMP Vacation on NOrec vs
// tagged NOrec.
type VacationExperiment struct {
	Name    string
	Title   string
	Threads []int
	Trials  int
	Params  vacation.Params
	// MemBytes sizes the simulated space (transaction retries allocate).
	MemBytes int
	// Workers bounds the host worker pool cells fan out over: 0 serial,
	// -1 one per host CPU (see parallel.go). Results are identical for
	// every setting.
	Workers int
	// Verify makes Run execute VerifySerializable first and panic on a
	// violation: measured throughput of a non-serializable STM is
	// meaningless, so the failure is fatal rather than a warning.
	Verify bool
}

// VerifySerializable runs a scaled-down recorded pass of the workload on
// the machine backend for each STM variant and checks — via
// linearizability.SerializableMapModel — that the committed transactions
// admit a serial order consistent with real time, and that the tables
// conserve capacity. The returned error embeds the printed counterexample
// on violation. The pass is scaled down because the checker replays whole
// read/write-set histories; correctness of the protocol, not the
// parameter scale, is what is being certified.
func (e *VacationExperiment) VerifySerializable() error {
	p := e.Params
	if p.Relations > 8 {
		p.Relations = 8
	}
	if p.Transactions > 8 {
		p.Transactions = 8
	}
	const workers = 3
	for _, v := range []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"norec", stm.NewNOrec},
		{"tagged", stm.NewTagged},
	} {
		cfg := machine.DefaultConfig(workers)
		cfg.MemBytes = 16 << 20
		cfg.MaxTags = 256
		m := machine.New(cfg)
		rep := vacation.RunSerializeSuite(m, v.mk(m), p, workers, 1)
		if err := rep.Err(); err != nil {
			return fmt.Errorf("vacation/%s: %w", v.name, err)
		}
	}
	return nil
}

// VacationPoint is one measured (variant, threads) cell.
type VacationPoint struct {
	Variant string
	Threads int

	// ThroughputKtx is committed transactions per simulated millisecond
	// (thousands of transactions per simulated second).
	ThroughputKtx float64
	MissRatePct   float64
	EnergyPerTx   float64
	AbortsPerTx   float64
}

// Fig8 returns the Figure 8 experiment. When quick is true, the tables and
// transaction counts are scaled down from the paper's -r16384 -t4096 so the
// experiment finishes in seconds; the mix parameters (-n4 -q60 -u90) are
// identical either way.
func Fig8(quick bool) *VacationExperiment {
	p := vacation.PaperParams()
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	mem := 512 << 20
	if quick {
		p.Relations = 1024
		p.Transactions = 64
		threads = []int{1, 2, 4, 8}
		mem = 128 << 20
	} else {
		// Keep the paper's tables; bound per-client transactions so the
		// 64-core sweep stays tractable in a functional simulator.
		p.Transactions = 256
	}
	return &VacationExperiment{
		Verify: true,
		Name:   "fig8",
		Title: fmt.Sprintf("STAMP Vacation (-n%d -q%d -u%d -r%d -t%d), NOrec vs tagged",
			p.QueriesPerTx, p.PercentQuery, p.PercentUser, p.Relations, p.Transactions),
		Threads:  threads,
		Trials:   1,
		Params:   p,
		MemBytes: mem,
	}
}

// Run executes the experiment for both STM variants.
func (e *VacationExperiment) Run() []VacationPoint {
	if e.Verify {
		if err := e.VerifySerializable(); err != nil {
			panic(err)
		}
	}
	variants := []struct {
		name string
		mk   func(core.Memory) *stm.TM
	}{
		{"norec", stm.NewNOrec},
		{"tagged", stm.NewTagged},
	}
	trials := e.Trials
	if trials <= 0 {
		trials = 1
	}
	nt := len(e.Threads)
	raw := make([]VacationPoint, len(variants)*nt*trials)
	forEachCell(resolveWorkers(e.Workers), len(raw), func(i int) {
		trial := i % trials
		n := e.Threads[i/trials%nt]
		v := variants[i/(trials*nt)]
		raw[i] = e.runOne(v.mk, v.name, n, int64(trial))
	})
	points := make([]VacationPoint, 0, len(variants)*nt)
	for vi, v := range variants {
		for ni, n := range e.Threads {
			acc := VacationPoint{Variant: v.name, Threads: n}
			for trial := 0; trial < trials; trial++ {
				p := raw[(vi*nt+ni)*trials+trial]
				acc.ThroughputKtx += p.ThroughputKtx
				acc.MissRatePct += p.MissRatePct
				acc.EnergyPerTx += p.EnergyPerTx
				acc.AbortsPerTx += p.AbortsPerTx
			}
			f := float64(trials)
			acc.ThroughputKtx /= f
			acc.MissRatePct /= f
			acc.EnergyPerTx /= f
			acc.AbortsPerTx /= f
			points = append(points, acc)
		}
	}
	return points
}

func (e *VacationExperiment) runOne(mk func(core.Memory) *stm.TM, name string, threads int, trial int64) VacationPoint {
	cfg := machine.DefaultConfig(threads)
	cfg.MemBytes = e.MemBytes
	// Transactional read sets span tens of cache lines (red-black tree
	// paths across several tables); the STM experiment models a larger
	// Max_Tags so the tagged fast path covers typical transactions.
	cfg.MaxTags = 256
	m := machine.New(cfg)
	tm := mk(m)
	mgr := vacation.NewManager(m, tm)
	vacation.Populate(mgr, m.Thread(0), e.Params, 1+trial)

	m.BeginEpoch()
	before := m.Snapshot()
	abortsBefore := tm.Aborts.Load()
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	ready.Add(threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w).(*machine.Thread)
			th.SetActive(true)
			defer th.SetActive(false)
			ready.Done()
			<-start
			vacation.Client(mgr, th, e.Params, int64(1000+w)+trial*131)
		}(w)
	}
	ready.Wait()
	close(start)
	wg.Wait()
	after := m.Snapshot()

	tx := uint64(threads * e.Params.Transactions)
	cycles := after.MaxCycles - before.MaxCycles
	p := VacationPoint{Variant: name, Threads: threads}
	if cycles > 0 {
		simSeconds := float64(cycles) / cfg.ClockHz
		p.ThroughputKtx = float64(tx) / simSeconds / 1e3
	}
	if acc := after.Accesses() - before.Accesses(); acc > 0 {
		p.MissRatePct = 100 * float64(after.Misses()-before.Misses()) / float64(acc)
	}
	if tx > 0 {
		p.EnergyPerTx = (after.Energy - before.Energy) / float64(tx)
		p.AbortsPerTx = float64(tm.Aborts.Load()-abortsBefore) / float64(tx)
	}
	return p
}

// PrintVacation writes the Figure 8 table.
func PrintVacation(w io.Writer, title string, points []VacationPoint) {
	threadSet := map[int]bool{}
	var threads []int
	for _, p := range points {
		if !threadSet[p.Threads] {
			threadSet[p.Threads] = true
			threads = append(threads, p.Threads)
		}
	}
	idx := map[string]map[int]VacationPoint{}
	var variants []string
	for _, p := range points {
		if idx[p.Variant] == nil {
			idx[p.Variant] = map[int]VacationPoint{}
			variants = append(variants, p.Variant)
		}
		idx[p.Variant][p.Threads] = p
	}
	fmt.Fprintf(w, "== %s ==\n", title)
	metrics := []struct {
		name string
		get  func(VacationPoint) float64
	}{
		{"throughput (Ktx/s)", func(p VacationPoint) float64 { return p.ThroughputKtx }},
		{"L1 miss rate (%)", func(p VacationPoint) float64 { return p.MissRatePct }},
		{"energy/tx (units)", func(p VacationPoint) float64 { return p.EnergyPerTx }},
		{"aborts/tx", func(p VacationPoint) float64 { return p.AbortsPerTx }},
	}
	for _, met := range metrics {
		fmt.Fprintf(w, "-- %s --\n", met.name)
		fmt.Fprintf(w, "%-14s", "threads")
		for _, t := range threads {
			fmt.Fprintf(w, "%10d", t)
		}
		fmt.Fprintln(w)
		for _, v := range variants {
			fmt.Fprintf(w, "%-14s", v)
			for _, t := range threads {
				fmt.Fprintf(w, "%10.3f", met.get(idx[v][t]))
			}
			fmt.Fprintln(w)
		}
	}
}
