package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/vacation"
	"repro/internal/workload"
)

func tinyScale() Scale {
	return Scale{Threads: []int{1, 2}, OpsPerThread: 60, Trials: 1}
}

func TestListExperimentProducesPoints(t *testing.T) {
	e := Fig2(tinyScale())
	e.KeyRange = 64
	points := e.Run()
	if len(points) != 3*2 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	for _, p := range points {
		if p.ThroughputMops <= 0 {
			t.Fatalf("%s@%d: non-positive throughput", p.Variant, p.Threads)
		}
		if p.MissRatePct < 0 || p.MissRatePct > 100 {
			t.Fatalf("%s@%d: miss rate %f", p.Variant, p.Threads, p.MissRatePct)
		}
		if p.EnergyPerOp <= 0 {
			t.Fatalf("%s@%d: non-positive energy", p.Variant, p.Threads)
		}
	}
}

func TestTreeExperimentProducesPoints(t *testing.T) {
	e := Fig6(tinyScale())
	e.KeyRange = 256
	e.OpsPerThread = 80
	points := e.Run()
	if len(points) != 2*2 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.ThroughputMops <= 0 {
			t.Fatalf("%s@%d: non-positive throughput", p.Variant, p.Threads)
		}
	}
}

// TestReclaimExperimentProducesPoints: the reclamation experiment must
// report the footprint/latency metrics for the pooled variants only, and
// the pooled variants must actually recycle (non-zero free list or a peak
// below the leak-everything control would both do; we assert the direct
// signal, a positive peak-live-lines reading with telemetry quantiles).
func TestReclaimExperimentProducesPoints(t *testing.T) {
	e := ReclaimExperiment(tinyScale())
	e.KeyRange = 256
	e.OpsPerThread = 120
	e.Telemetry = true
	points := e.Run()
	if len(points) != 3*2 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	for _, p := range points {
		if p.ThroughputMops <= 0 {
			t.Fatalf("%s@%d: non-positive throughput", p.Variant, p.Threads)
		}
		switch p.Variant {
		case "none":
			if p.PeakLiveLines != 0 || p.RetireFreeP99 != 0 {
				t.Fatalf("control variant carries reclamation metrics: %+v", p)
			}
		default:
			if p.PeakLiveLines <= 0 {
				t.Fatalf("%s@%d: no footprint reading: %+v", p.Variant, p.Threads, p)
			}
			if p.RetireFreeP99 < p.RetireFreeP50 {
				t.Fatalf("%s@%d: inverted retire-free quantiles: %+v", p.Variant, p.Threads, p)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable(&buf, e.Title, points)
	for _, want := range []string{"retire-free p99", "peak live lines", "free-list lines"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("reclamation table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestPrintTable(t *testing.T) {
	points := []Point{
		{Variant: "a", Threads: 1, ThroughputMops: 1.5, MissRatePct: 10, EnergyPerOp: 100},
		{Variant: "a", Threads: 2, ThroughputMops: 2.5, MissRatePct: 11, EnergyPerOp: 101},
		{Variant: "b", Threads: 1, ThroughputMops: 0.5, MissRatePct: 12, EnergyPerOp: 102},
		{Variant: "b", Threads: 2, ThroughputMops: 0.6, MissRatePct: 13, EnergyPerOp: 103},
	}
	var buf bytes.Buffer
	PrintTable(&buf, "test", points)
	out := buf.String()
	for _, want := range []string{"throughput", "miss rate", "energy", "a", "b", "1.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedup(t *testing.T) {
	points := []Point{
		{Variant: "fast", Threads: 4, ThroughputMops: 3},
		{Variant: "slow", Threads: 4, ThroughputMops: 2},
	}
	if s := Speedup(points, "fast", "slow", 4); s < 1.49 || s > 1.51 {
		t.Fatalf("speedup = %f, want 1.5", s)
	}
	if s := Speedup(points, "fast", "missing", 4); s != 0 {
		t.Fatalf("missing baseline: %f", s)
	}
}

func TestVacationExperimentQuick(t *testing.T) {
	e := Fig8(true)
	e.Threads = []int{1, 2}
	e.Params.Relations = 128
	e.Params.Transactions = 16
	points := e.Run()
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.ThroughputKtx <= 0 {
			t.Fatalf("%s@%d: non-positive throughput", p.Variant, p.Threads)
		}
	}
	var buf bytes.Buffer
	PrintVacation(&buf, e.Title, points)
	if !strings.Contains(buf.String(), "aborts/tx") {
		t.Fatal("vacation table missing abort metric")
	}
}

func TestAllFigureDefinitionsConstruct(t *testing.T) {
	sc := QuickScale()
	for _, e := range []*SetExperiment{Fig2(sc), Fig4(sc), Fig5(sc), Fig6(sc), Fig7(sc), SkipExperiment(sc), ReclaimExperiment(sc)} {
		if e.Name == "" || e.Title == "" || len(e.Variants) < 2 || len(e.Threads) == 0 {
			t.Fatalf("experiment %q badly formed", e.Name)
		}
	}
	if e := Fig8(true); e.Params.PercentUser != 90 || e.Params.QueriesPerTx != 4 {
		t.Fatal("Fig8 parameters drifted from the paper")
	}
	if p := vacation.PaperParams(); p.Relations != 16384 || p.Transactions != 4096 {
		t.Fatal("paper parameters drifted")
	}
}

func TestDiffToPoint(t *testing.T) {
	before := machine.Stats{}
	after := machine.Stats{
		MaxCycles: 1_000_000, Loads: 1000, Stores: 100,
		L2Hits: 50, MemFills: 50, Energy: 5000,
		Validates: 100, ValidateFails: 10,
		VASAttempts: 40, VASFails: 4,
	}
	p := diffToPoint("x", 2, before, after, 500, 1e9)
	if p.ThroughputMops <= 0 || p.MissRatePct <= 0 || p.EnergyPerOp != 10 {
		t.Fatalf("point = %+v", p)
	}
	if p.ValidateFailPct != 10 || p.VASFailPct != 10 {
		t.Fatalf("failure percentages wrong: %+v", p)
	}
}

func TestWorkloadMixes(t *testing.T) {
	if workload.Update3535.InsertPct != 35 || workload.Update1515.DeletePct != 15 {
		t.Fatal("paper mixes drifted")
	}
}
