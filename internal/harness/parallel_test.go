package harness

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// Serial and parallel harness runs must be indistinguishable: workers only
// decide when a cell's private simulation runs, never how its result is
// aggregated. Single-simulated-thread cells are fully deterministic (no
// goroutine interleaving inside a cell), so the Points must match *bit for
// bit* across worker counts — any divergence means the parallel path
// changed evaluation order of the non-associative float averaging, or
// leaked state between cells.

func equivalenceExperiment(workers int, tel bool) *SetExperiment {
	e := Fig2(Scale{Threads: []int{1}, OpsPerThread: 60, Trials: 3})
	e.Workers = workers
	e.Telemetry = tel
	e.SampleEvery = 512
	return e
}

func TestParallelRunMatchesSerial(t *testing.T) {
	for _, tel := range []bool{false, true} {
		serial := equivalenceExperiment(0, tel).Run()
		for _, workers := range []int{2, 4, -1} {
			par := equivalenceExperiment(workers, tel).Run()
			if len(par) != len(serial) {
				t.Fatalf("workers=%d: %d points, serial produced %d", workers, len(par), len(serial))
			}
			for i := range serial {
				if !reflect.DeepEqual(par[i], serial[i]) {
					t.Errorf("telemetry=%v workers=%d point %d differs:\n  serial:   %+v\n  parallel: %+v",
						tel, workers, i, serial[i], par[i])
				}
			}
		}
	}
}

// TestParallelRunCellIndexing pins the slot arithmetic: with several
// variants, thread counts, and trials, every (variant, threads) pair must
// appear exactly once and in the serial iteration order.
func TestParallelRunCellIndexing(t *testing.T) {
	e := Fig2(Scale{Threads: []int{1, 2}, OpsPerThread: 30, Trials: 2})
	e.Workers = 4
	points := e.Run()
	if want := len(e.Variants) * len(e.Threads); len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	i := 0
	for _, v := range e.Variants {
		for _, n := range e.Threads {
			if points[i].Variant != v.Name || points[i].Threads != n {
				t.Errorf("point %d is (%s, %d), want (%s, %d)",
					i, points[i].Variant, points[i].Threads, v.Name, n)
			}
			i++
		}
	}
}

// TestForEachCellCoversAll exercises the pool helper directly: every index
// runs exactly once for degenerate and oversubscribed worker counts.
func TestForEachCellCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		const n = 23
		counts := make([]atomic.Int32, n)
		forEachCell(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestVacationParallelMatchesSerial covers the Figure 8 harness's parallel
// path with single-threaded cells.
func TestVacationParallelMatchesSerial(t *testing.T) {
	mk := func(workers int) *VacationExperiment {
		e := Fig8(true)
		e.Threads = []int{1}
		e.Trials = 2
		e.Params.Relations = 128
		e.Params.Transactions = 8
		e.Workers = workers
		return e
	}
	serial := mk(0).Run()
	par := mk(4).Run()
	if len(par) != len(serial) {
		t.Fatalf("%d points vs %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Errorf("point %d differs:\n  serial:   %+v\n  parallel: %+v", i, serial[i], par[i])
		}
	}
}
