package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTelemetryPopulatesPoints pins the end-to-end wiring: an experiment
// run with Telemetry on reports latency quantiles and at least two sampler
// windows per cell, and the windows' op totals account for the first
// trial's measured operations.
func TestTelemetryPopulatesPoints(t *testing.T) {
	e := Fig2(Scale{Threads: []int{1, 2}, OpsPerThread: 200, Trials: 2})
	e.Telemetry = true
	e.SampleEvery = 512
	points := e.Run()
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.OpLatP50 <= 0 || p.OpLatP99 <= 0 || p.OpLatMax == 0 {
			t.Errorf("%s @%d: latency quantiles not populated: %+v", p.Variant, p.Threads, p)
		}
		if p.OpLatP50 > p.OpLatP99 || p.OpLatP99 > float64(p.OpLatMax) {
			t.Errorf("%s @%d: quantiles not ordered: p50=%v p99=%v max=%v",
				p.Variant, p.Threads, p.OpLatP50, p.OpLatP99, p.OpLatMax)
		}
		if len(p.Windows) < 2 {
			t.Errorf("%s @%d: %d sampler windows, want >= 2", p.Variant, p.Threads, len(p.Windows))
		}
		var ops uint64
		for _, w := range p.Windows {
			ops += w.Ops
		}
		if want := uint64(p.Threads) * 200; ops != want {
			t.Errorf("%s @%d: windows account for %d ops, want %d", p.Variant, p.Threads, ops, want)
		}
	}
}

// TestTelemetryOffLeavesPointsBare pins the default: without Telemetry the
// new fields stay zero so existing BENCH JSON is byte-compatible.
func TestTelemetryOffLeavesPointsBare(t *testing.T) {
	e := Fig2(Scale{Threads: []int{1}, OpsPerThread: 50, Trials: 1})
	points := e.Run()
	for _, p := range points {
		if p.OpLatP50 != 0 || p.OpLatMax != 0 || p.Windows != nil {
			t.Fatalf("telemetry fields populated without Telemetry: %+v", p)
		}
	}
	data, err := json.Marshal(points[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("op_lat")) || bytes.Contains(data, []byte("windows")) {
		t.Fatalf("telemetry keys leaked into JSON: %s", data)
	}
}

// TestTraceCell checks the harness's Perfetto export produces valid
// trace-event JSON with spans and instants for a small cell.
func TestTraceCell(t *testing.T) {
	e := Fig2(Scale{Threads: []int{2}, OpsPerThread: 50, Trials: 1})
	var buf bytes.Buffer
	if err := e.TraceCell(e.Variants[0].Name, 2, &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("TraceCell output is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range out.TraceEvents {
		phases[ev.Ph]++
	}
	if phases["X"] == 0 {
		t.Error("no op spans in trace")
	}
	if phases["i"] == 0 {
		t.Error("no backend instants in trace")
	}
	if phases["M"] == 0 {
		t.Error("no track metadata in trace")
	}
	if err := e.TraceCell("no-such-variant", 2, &buf); err == nil {
		t.Error("TraceCell accepted an unknown variant")
	}
}
