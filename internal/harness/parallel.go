package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment cells — one (variant, thread count, trial) simulation each —
// share nothing: every cell builds its own Machine, prefills its own
// structure, and reduces to a Point. They are therefore embarrassingly
// parallel in *host* time, and on a many-CPU host the wall-clock of a
// figure is the longest cell rather than the sum of all cells.
//
// Determinism is preserved by construction: cells are computed into
// pre-assigned slots of a result slice (the slot index is a pure function
// of the cell's position in the serial iteration order) and all
// aggregation — including the floating-point trial averaging, which is not
// associative — happens serially afterwards, in exactly the order the
// serial path uses. Workers only decide *when* a cell runs, never how its
// result is combined, so workers=1 and workers=N produce bit-identical
// Points.

// forEachCell runs fn(i) for i in [0, n) on a bounded pool of workers.
// workers <= 1 (or n <= 1) degrades to a plain serial loop with no
// goroutines. workers is clamped to n.
func forEachCell(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DefaultWorkers is the worker count used when an experiment's Workers
// field is set to the sentinel -1 ("auto"): one worker per host CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// resolveWorkers maps an experiment's Workers field to a concrete pool
// size: 0 (zero value) means serial, -1 means DefaultWorkers, any other
// positive value is used as-is.
func resolveWorkers(w int) int {
	switch {
	case w < 0:
		return DefaultWorkers()
	case w == 0:
		return 1
	default:
		return w
	}
}
