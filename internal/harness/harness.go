// Package harness runs the paper's experiments (Section 6) on the machine
// simulator and reports the series each figure plots: throughput, L1 cache
// miss rate and energy versus thread count, for every data-structure
// variant, plus tag-specific telemetry (validation failures, spurious
// evictions).
package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// SetVariant names one data-structure implementation under test.
type SetVariant struct {
	Name  string
	Build func(mem core.Memory) intset.Set
	// BuildReclaimed, when non-nil, is used instead of Build and returns
	// the reclamation pool wired into the structure, so the harness can
	// attach pool telemetry and report footprint/reclamation metrics.
	BuildReclaimed func(mem core.Memory) (intset.Set, *reclaim.Pool)
}

// SetExperiment describes one figure's set-structure experiment.
type SetExperiment struct {
	Name    string // experiment id, e.g. "fig2"
	Title   string
	Figure  string // paper figure it reproduces
	Threads []int
	Trials  int

	KeyRange     uint64
	OpsPerThread int
	Mix          workload.Mix
	Seed         int64

	Variants []SetVariant
	// Config produces the machine configuration for a core count; nil
	// means machine.DefaultConfig with a memory size scaled to the run.
	Config func(cores int) machine.Config
	// MemBytes overrides the simulated memory size when Config is nil.
	MemBytes int

	// Workers bounds the host-level worker pool that experiment cells
	// (variant × thread count × trial simulations) fan out over: 0 runs
	// serially, -1 uses one worker per host CPU, any other value is the
	// pool size. Results are identical for every setting (see parallel.go).
	Workers int

	// Telemetry enables the per-op observability layer for the measured
	// phase of every cell: latency/retry histograms (reported as
	// p50/p99/max and retries per op) and the interval sampler's
	// time-series windows. Recording is allocation-free and preserves the
	// worker-count determinism of Run.
	Telemetry bool
	// SampleEvery is the sampler window width in simulated cycles; 0
	// means DefaultSampleEvery when Telemetry is on.
	SampleEvery uint64
}

// DefaultSampleEvery is the default sampler window width in simulated
// cycles. Small relative to any measured phase (even quick-scale cells run
// hundreds of thousands of cycles), so every cell reports at least two
// windows; long runs fold to coarser windows automatically.
const DefaultSampleEvery = 4096

// samplerWindowBudget bounds per-core sampler memory; runs longer than
// budget×interval fold pairwise to coarser windows.
const samplerWindowBudget = 64

// Point is one measured datum: a (variant, thread count) cell averaged
// over trials.
type Point struct {
	Variant string
	Threads int

	// ThroughputMops is completed operations per simulated microsecond
	// (i.e. millions of ops per simulated second at the configured clock).
	ThroughputMops float64
	// MissRatePct is the percentage of cache accesses missing L1.
	MissRatePct float64
	// EnergyPerOp is model energy units consumed per completed operation.
	EnergyPerOp float64

	// Tag telemetry.
	ValidateFailPct    float64 // failed validations / validations
	VASFailPct         float64 // failed VAS+IAS / attempts
	SpuriousPerMilOps  float64 // spurious tag evictions per million ops
	InvalidationsPerOp float64

	// Per-op telemetry, populated when the experiment runs with
	// Telemetry enabled (zero/absent otherwise). Latencies are in
	// simulated cycles; quantiles come from power-of-two-bucket
	// histograms, so they are exact to within one bucket.
	OpLatP50     float64 `json:"op_lat_p50,omitempty"`
	OpLatP99     float64 `json:"op_lat_p99,omitempty"`
	OpLatMax     uint64  `json:"op_lat_max,omitempty"`
	RetriesPerOp float64 `json:"retries_per_op,omitempty"`
	// Windows is the sampled time series of the cell's first trial
	// (per-trial series don't average meaningfully; the first trial is
	// deterministic for any worker count).
	Windows []telemetry.Window `json:"windows,omitempty"`

	// Reclamation metrics, populated only for variants built with
	// BuildReclaimed. Retire-to-free latencies (simulated cycles, from the
	// pool's histogram) additionally need Telemetry enabled.
	RetireFreeP50 float64 `json:"retire_free_p50,omitempty"`
	RetireFreeP99 float64 `json:"retire_free_p99,omitempty"`
	PeakLiveLines int64   `json:"peak_live_lines,omitempty"`
	FreelistLines int64   `json:"freelist_lines,omitempty"`
}

func (e *SetExperiment) config(cores int) machine.Config {
	if e.Config != nil {
		return e.Config(cores)
	}
	cfg := machine.DefaultConfig(cores)
	if e.MemBytes > 0 {
		cfg.MemBytes = e.MemBytes
	} else {
		cfg.MemBytes = 256 << 20
	}
	return cfg
}

// Run executes the experiment and returns one Point per (variant, thread
// count), ordered by variant then threads. Cells run on a pool of
// e.Workers host workers; the output is identical for any worker count.
func (e *SetExperiment) Run() []Point {
	trials := e.Trials
	if trials <= 0 {
		trials = 1
	}
	// Compute every (variant, threads, trial) cell into its slot, possibly
	// in parallel. Each cell owns a private Machine; no state is shared.
	nv, nt := len(e.Variants), len(e.Threads)
	raw := make([]Point, nv*nt*trials)
	forEachCell(resolveWorkers(e.Workers), len(raw), func(i int) {
		trial := i % trials
		n := e.Threads[i/trials%nt]
		v := e.Variants[i/(trials*nt)]
		raw[i] = e.runOne(v, n, e.Seed+int64(trial)*104729)
	})
	// Aggregate serially in the fixed cell order, so the non-associative
	// float averaging matches the serial path bit for bit.
	points := make([]Point, 0, nv*nt)
	for vi, v := range e.Variants {
		for ni, n := range e.Threads {
			acc := Point{Variant: v.Name, Threads: n}
			for trial := 0; trial < trials; trial++ {
				p := raw[(vi*nt+ni)*trials+trial]
				acc.ThroughputMops += p.ThroughputMops
				acc.MissRatePct += p.MissRatePct
				acc.EnergyPerOp += p.EnergyPerOp
				acc.ValidateFailPct += p.ValidateFailPct
				acc.VASFailPct += p.VASFailPct
				acc.SpuriousPerMilOps += p.SpuriousPerMilOps
				acc.InvalidationsPerOp += p.InvalidationsPerOp
				acc.OpLatP50 += p.OpLatP50
				acc.OpLatP99 += p.OpLatP99
				acc.RetriesPerOp += p.RetriesPerOp
				acc.RetireFreeP50 += p.RetireFreeP50
				acc.RetireFreeP99 += p.RetireFreeP99
				acc.FreelistLines += p.FreelistLines
				if p.OpLatMax > acc.OpLatMax {
					acc.OpLatMax = p.OpLatMax
				}
				if p.PeakLiveLines > acc.PeakLiveLines {
					acc.PeakLiveLines = p.PeakLiveLines
				}
				if trial == 0 {
					acc.Windows = p.Windows
				}
			}
			f := float64(trials)
			acc.ThroughputMops /= f
			acc.MissRatePct /= f
			acc.EnergyPerOp /= f
			acc.ValidateFailPct /= f
			acc.VASFailPct /= f
			acc.SpuriousPerMilOps /= f
			acc.InvalidationsPerOp /= f
			acc.OpLatP50 /= f
			acc.OpLatP99 /= f
			acc.RetriesPerOp /= f
			acc.RetireFreeP50 /= f
			acc.RetireFreeP99 /= f
			acc.FreelistLines /= int64(trials)
			points = append(points, acc)
		}
	}
	return points
}

// build constructs the variant's structure, preferring the reclamation-
// aware constructor when present.
func build(v *SetVariant, mem core.Memory) (intset.Set, *reclaim.Pool) {
	if v.BuildReclaimed != nil {
		return v.BuildReclaimed(mem)
	}
	return v.Build(mem), nil
}

func (e *SetExperiment) runOne(v SetVariant, threads int, seed int64) Point {
	m := machine.New(e.config(threads))
	s, pool := build(&v, m)
	cfg := workload.Config{
		Threads:      threads,
		KeyRange:     e.KeyRange,
		PrefillSize:  int(e.KeyRange / 2),
		OpsPerThread: e.OpsPerThread,
		Mix:          e.Mix,
		Seed:         seed,
	}
	workload.Prefill(m, s, cfg)
	// Telemetry covers only the timed phase: attach after prefill (the
	// machine is quiescent here).
	var set *telemetry.Set
	var sampler *telemetry.Sampler
	if e.Telemetry {
		set = telemetry.NewSet(threads)
		m.SetTelemetry(set)
		every := e.SampleEvery
		if every == 0 {
			every = DefaultSampleEvery
		}
		sampler = telemetry.NewSampler(threads, every, samplerWindowBudget)
		cfg.Telemetry = set
		cfg.Sampler = sampler
		if pool != nil {
			pool.SetTelemetry(set)
		}
	}
	// Measure only the timed phase: snapshot after prefill.
	before := m.Snapshot()
	counts := workload.Run(m, s, cfg)
	after := m.Snapshot()
	p := diffToPoint(v.Name, threads, before, after, counts.Ops, m.Config().ClockHz)
	if e.Telemetry {
		set.Flush()
		agg := set.Merge()
		p.OpLatP50 = agg.OpLatency.Quantile(0.5)
		p.OpLatP99 = agg.OpLatency.Quantile(0.99)
		p.OpLatMax = agg.OpLatency.Max()
		if n := agg.OpRetries.Count(); n > 0 {
			p.RetriesPerOp = float64(agg.OpRetries.Sum()) / float64(n)
		}
		p.Windows = sampler.Windows()
		if pool != nil && agg.RetireToFree.Count() > 0 {
			p.RetireFreeP50 = agg.RetireToFree.Quantile(0.5)
			p.RetireFreeP99 = agg.RetireToFree.Quantile(0.99)
		}
	}
	if pool != nil {
		st := pool.Stats()
		p.PeakLiveLines = st.HighWaterLines
		p.FreelistLines = st.FreeLines
	}
	return p
}

// TraceCell runs a single (variant, thread count) cell with the Perfetto
// collector attached — backend coherence/tag events plus per-op spans —
// and writes Chrome trace-event JSON to w. The prefill phase is not
// traced. Tracing allocates; use it for inspection, not measurement.
func (e *SetExperiment) TraceCell(variant string, threads int, w io.Writer) error {
	var v *SetVariant
	for i := range e.Variants {
		if e.Variants[i].Name == variant {
			v = &e.Variants[i]
		}
	}
	if v == nil {
		return fmt.Errorf("harness: experiment %s has no variant %q", e.Name, variant)
	}
	m := machine.New(e.config(threads))
	s, _ := build(v, m)
	cfg := workload.Config{
		Threads:      threads,
		KeyRange:     e.KeyRange,
		PrefillSize:  int(e.KeyRange / 2),
		OpsPerThread: e.OpsPerThread,
		Mix:          e.Mix,
		Seed:         e.Seed,
	}
	workload.Prefill(m, s, cfg)
	col := telemetry.NewTraceCollector(threads)
	m.SetTracer(machine.TraceTo(col))
	cfg.Trace = col
	workload.Run(m, s, cfg)
	m.SetTracer(nil)
	return col.WriteJSON(w)
}

func diffToPoint(name string, threads int, before, after machine.Stats, ops uint64, clockHz float64) Point {
	cycles := after.MaxCycles - before.MaxCycles
	accesses := after.Accesses() - before.Accesses()
	misses := after.Misses() - before.Misses()
	energy := after.Energy - before.Energy
	validates := after.Validates - before.Validates
	vfails := after.ValidateFails - before.ValidateFails
	attempts := (after.VASAttempts + after.IASAttempts) - (before.VASAttempts + before.IASAttempts)
	afails := (after.VASFails + after.IASFails) - (before.VASFails + before.IASFails)
	spurious := after.SpuriousEvictions - before.SpuriousEvictions
	invs := after.InvalidationsSent - before.InvalidationsSent

	p := Point{Variant: name, Threads: threads}
	if cycles > 0 {
		simSeconds := float64(cycles) / clockHz
		p.ThroughputMops = float64(ops) / simSeconds / 1e6
	}
	if accesses > 0 {
		p.MissRatePct = 100 * float64(misses) / float64(accesses)
	}
	if ops > 0 {
		p.EnergyPerOp = energy / float64(ops)
		p.SpuriousPerMilOps = 1e6 * float64(spurious) / float64(ops)
		p.InvalidationsPerOp = float64(invs) / float64(ops)
	}
	if validates > 0 {
		p.ValidateFailPct = 100 * float64(vfails) / float64(validates)
	}
	if attempts > 0 {
		p.VASFailPct = 100 * float64(afails) / float64(attempts)
	}
	return p
}

// PrintTable writes the points as the figure's table: one block per
// metric, thread counts as columns, variants as rows.
func PrintTable(w io.Writer, title string, points []Point) {
	threads := uniqueThreads(points)
	variants := uniqueVariants(points)
	idx := map[string]map[int]Point{}
	for _, p := range points {
		if idx[p.Variant] == nil {
			idx[p.Variant] = map[int]Point{}
		}
		idx[p.Variant][p.Threads] = p
	}
	fmt.Fprintf(w, "== %s ==\n", title)
	metrics := []struct {
		name string
		get  func(Point) float64
	}{
		{"throughput (Mops/s)", func(p Point) float64 { return p.ThroughputMops }},
		{"L1 miss rate (%)", func(p Point) float64 { return p.MissRatePct }},
		{"energy/op (units)", func(p Point) float64 { return p.EnergyPerOp }},
		{"validate fails (%)", func(p Point) float64 { return p.ValidateFailPct }},
		{"VAS/IAS fails (%)", func(p Point) float64 { return p.VASFailPct }},
		{"invalidations/op", func(p Point) float64 { return p.InvalidationsPerOp }},
	}
	// Per-op latency rows only when some point carries telemetry.
	for _, p := range points {
		if p.OpLatP99 > 0 {
			metrics = append(metrics,
				struct {
					name string
					get  func(Point) float64
				}{"op latency p50 (cyc)", func(p Point) float64 { return p.OpLatP50 }},
				struct {
					name string
					get  func(Point) float64
				}{"op latency p99 (cyc)", func(p Point) float64 { return p.OpLatP99 }},
				struct {
					name string
					get  func(Point) float64
				}{"retries/op", func(p Point) float64 { return p.RetriesPerOp }},
			)
			break
		}
	}
	// Reclamation rows only when some variant ran with a pool attached.
	for _, p := range points {
		if p.PeakLiveLines > 0 {
			metrics = append(metrics,
				struct {
					name string
					get  func(Point) float64
				}{"retire-free p50 (cyc)", func(p Point) float64 { return p.RetireFreeP50 }},
				struct {
					name string
					get  func(Point) float64
				}{"retire-free p99 (cyc)", func(p Point) float64 { return p.RetireFreeP99 }},
				struct {
					name string
					get  func(Point) float64
				}{"peak live lines", func(p Point) float64 { return float64(p.PeakLiveLines) }},
				struct {
					name string
					get  func(Point) float64
				}{"free-list lines", func(p Point) float64 { return float64(p.FreelistLines) }},
			)
			break
		}
	}
	for _, met := range metrics {
		fmt.Fprintf(w, "-- %s --\n", met.name)
		fmt.Fprintf(w, "%-14s", "threads")
		for _, t := range threads {
			fmt.Fprintf(w, "%10d", t)
		}
		fmt.Fprintln(w)
		for _, v := range variants {
			fmt.Fprintf(w, "%-14s", v)
			for _, t := range threads {
				fmt.Fprintf(w, "%10.3f", met.get(idx[v][t]))
			}
			fmt.Fprintln(w)
		}
	}
}

func uniqueThreads(points []Point) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range points {
		if !seen[p.Threads] {
			seen[p.Threads] = true
			out = append(out, p.Threads)
		}
	}
	sort.Ints(out)
	return out
}

func uniqueVariants(points []Point) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range points {
		if !seen[p.Variant] {
			seen[p.Variant] = true
			out = append(out, p.Variant)
		}
	}
	return out
}

// Speedup returns variant a's throughput relative to variant b at the
// given thread count (e.g. 1.4 = 40% faster), or 0 if missing data.
func Speedup(points []Point, a, b string, threads int) float64 {
	var ta, tb float64
	for _, p := range points {
		if p.Threads != threads {
			continue
		}
		if p.Variant == a {
			ta = p.ThroughputMops
		}
		if p.Variant == b {
			tb = p.ThroughputMops
		}
	}
	if tb == 0 {
		return 0
	}
	return ta / tb
}
