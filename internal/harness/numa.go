package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/vtags"
	"repro/internal/workload"
)

// NUMAExperiment sweeps the Figure 6/7 tree workload past the paper's
// 64-core ceiling: 64–512 simulated cores on a two-level topology
// (64-core sockets by default), LLX/SCX vs HoH tagging, on both the cycle
// simulator and the vtags software emulation. It answers the question the
// flat 64-core evaluation cannot — where the tagged/software crossover
// moves when cache-to-cache transfers start paying socket hops.
type NUMAExperiment struct {
	Name  string
	Title string

	Cores []int
	// SocketsFor maps a core count to a socket count on the machine
	// backend; nil means one socket per 64 cores (min 1). The vtags
	// emulation has no topology and always reports Sockets 0.
	SocketsFor func(cores int) int

	KeyRange     uint64
	OpsPerThread int
	Mix          workload.Mix
	Seed         int64
	// Dist is the key distribution for the measured phase; DistHotSet or
	// DistZipfian give the sweep its skewed-traffic variant.
	Dist workload.KeyDist

	// MemBytes sizes each cell's simulated memory.
	MemBytes int

	// Workers bounds the host worker pool cells fan out over, exactly as
	// in SetExperiment: 0 serial, -1 one per host CPU. Every field of the
	// result except HostSeconds is identical for any worker count.
	Workers int
}

// NUMASweep builds the standard sweep: the Fig 6 workload (35/35 tree) at
// 64/128/256 cores, plus 512 at full scale.
func NUMASweep(quick bool) *NUMAExperiment {
	e := &NUMAExperiment{
		Name:         "numa",
		Title:        "(a,b)-tree beyond the paper: 64-core sockets, 35% ins / 35% del",
		Cores:        []int{64, 128, 256},
		KeyRange:     8192,
		OpsPerThread: 60,
		Mix:          workload.Update3535,
		Seed:         42,
		MemBytes:     256 << 20,
	}
	if !quick {
		e.Cores = append(e.Cores, 512)
		e.OpsPerThread = 200
	}
	return e
}

func (e *NUMAExperiment) sockets(cores int) int {
	if e.SocketsFor != nil {
		return e.SocketsFor(cores)
	}
	if s := cores / 64; s > 1 {
		return s
	}
	return 1
}

// NUMAPoint is one cell of the sweep. Latencies are in backend clock
// units: simulated cycles on the machine, logical ticks on vtags. The
// simulated metrics (throughput, miss rate, hops) exist only on the
// machine backend; HostSeconds is the only host-dependent field.
type NUMAPoint struct {
	Backend string `json:"backend"`
	Variant string `json:"variant"`
	Cores   int    `json:"cores"`
	Sockets int    `json:"sockets,omitempty"`
	Dist    string `json:"dist"`

	ThroughputMops  float64 `json:"throughput_mops,omitempty"`
	MissRatePct     float64 `json:"miss_rate_pct,omitempty"`
	SocketHopsPerOp float64 `json:"socket_hops_per_op,omitempty"`

	OpLatP50    float64 `json:"op_lat_p50"`
	OpLatP99    float64 `json:"op_lat_p99"`
	HostSeconds float64 `json:"host_seconds"`
}

// Run executes the sweep and returns points ordered backend, then
// variant, then core count (machine first — the backend with the cost
// model the sweep is about).
func (e *NUMAExperiment) Run() []NUMAPoint {
	backends := []string{"machine", "vtags"}
	variants := TreeVariants()
	nc, nv := len(e.Cores), len(variants)
	raw := make([]NUMAPoint, len(backends)*nv*nc)
	forEachCell(resolveWorkers(e.Workers), len(raw), func(i int) {
		c := e.Cores[i%nc]
		v := variants[i/nc%nv]
		be := backends[i/(nc*nv)]
		raw[i] = e.runOne(be, v, c)
	})
	return raw
}

func (e *NUMAExperiment) runOne(backend string, v SetVariant, cores int) NUMAPoint {
	start := time.Now()
	p := NUMAPoint{Backend: backend, Variant: v.Name, Cores: cores, Dist: e.Dist.String()}
	var m core.Memory
	var mach *machine.Machine
	if backend == "machine" {
		p.Sockets = e.sockets(cores)
		cfg := machine.NUMAConfig(cores, p.Sockets)
		cfg.MemBytes = e.MemBytes
		mach = machine.New(cfg)
		m = mach
	} else {
		m = vtags.New(e.MemBytes, cores)
	}
	s, _ := build(&v, m)
	wcfg := workload.Config{
		Threads:      cores,
		KeyRange:     e.KeyRange,
		PrefillSize:  int(e.KeyRange / 2),
		OpsPerThread: e.OpsPerThread,
		Mix:          e.Mix,
		Seed:         e.Seed,
		Dist:         e.Dist,
	}
	workload.Prefill(m, s, wcfg)
	set := telemetry.NewSet(cores)
	if st, ok := m.(interface{ SetTelemetry(*telemetry.Set) }); ok {
		st.SetTelemetry(set)
	}
	wcfg.Telemetry = set
	var before machine.Stats
	if mach != nil {
		before = mach.Snapshot()
	}
	counts := workload.Run(m, s, wcfg)
	set.Flush()
	agg := set.Merge()
	p.OpLatP50 = agg.OpLatency.Quantile(0.5)
	p.OpLatP99 = agg.OpLatency.Quantile(0.99)
	if mach != nil {
		after := mach.Snapshot()
		d := diffToPoint(v.Name, cores, before, after, counts.Ops, mach.Config().ClockHz)
		p.ThroughputMops = d.ThroughputMops
		p.MissRatePct = d.MissRatePct
		if counts.Ops > 0 {
			p.SocketHopsPerOp = float64(after.SocketHops-before.SocketHops) / float64(counts.Ops)
		}
	}
	p.HostSeconds = time.Since(start).Seconds()
	return p
}

// PrintNUMA writes the sweep as one block per backend: core counts as
// columns, one row per (variant, metric).
func PrintNUMA(w io.Writer, title string, points []NUMAPoint) {
	fmt.Fprintf(w, "== %s ==\n", title)
	cores := []int{}
	seen := map[int]bool{}
	for _, p := range points {
		if !seen[p.Cores] {
			seen[p.Cores] = true
			cores = append(cores, p.Cores)
		}
	}
	idx := map[string]map[int]NUMAPoint{}
	var order []string
	for _, p := range points {
		k := p.Backend + "/" + p.Variant
		if idx[k] == nil {
			idx[k] = map[int]NUMAPoint{}
			order = append(order, k)
		}
		idx[k][p.Cores] = p
	}
	metrics := []struct {
		name string
		get  func(NUMAPoint) float64
		on   func(NUMAPoint) bool
	}{
		{"throughput (Mops/s)", func(p NUMAPoint) float64 { return p.ThroughputMops }, func(p NUMAPoint) bool { return p.Backend == "machine" }},
		{"L1 miss rate (%)", func(p NUMAPoint) float64 { return p.MissRatePct }, func(p NUMAPoint) bool { return p.Backend == "machine" }},
		{"socket hops/op", func(p NUMAPoint) float64 { return p.SocketHopsPerOp }, func(p NUMAPoint) bool { return p.Backend == "machine" }},
		{"op latency p99", func(p NUMAPoint) float64 { return p.OpLatP99 }, func(NUMAPoint) bool { return true }},
	}
	for _, met := range metrics {
		fmt.Fprintf(w, "-- %s --\n", met.name)
		fmt.Fprintf(w, "%-22s", "cores")
		for _, c := range cores {
			fmt.Fprintf(w, "%10d", c)
		}
		fmt.Fprintln(w)
		for _, k := range order {
			if !met.on(idx[k][cores[0]]) {
				continue
			}
			fmt.Fprintf(w, "%-22s", k)
			for _, c := range cores {
				fmt.Fprintf(w, "%10.3f", met.get(idx[k][c]))
			}
			fmt.Fprintln(w)
		}
	}
}
