package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestElisionExperiment(t *testing.T) {
	e := NewElisionExperiment(true)
	e.Threads = 2
	e.OpsPerThread = 60
	e.KeyRange = 64
	e.L1Lines = []int{8, 512}
	points := e.Run()
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byKey := map[string]ElisionPoint{}
	for _, p := range points {
		byKey[p.Structure+string(rune('0'+p.L1Lines/512))] = p
		if p.FastPct < 0 || p.FastPct > 100 {
			t.Fatalf("fast pct out of range: %+v", p)
		}
	}
	// A full-size L1 completes essentially everything on the fast path; an
	// 8-line L1 is smaller than the tree's 12-line tagging window, so its
	// fast path can hardly ever validate.
	if p := byKey["list1"]; p.FastPct < 95 {
		t.Fatalf("full L1 list fast-path pct = %f, want ~100", p.FastPct)
	}
	if p := byKey["abtree0"]; p.FastPct > 50 {
		t.Fatalf("8-line L1 tree fast-path pct = %f, want low", p.FastPct)
	}
	var buf bytes.Buffer
	PrintElision(&buf, e.Title, points)
	if !strings.Contains(buf.String(), "fast-path %") {
		t.Fatal("table header missing")
	}
}
