package txmap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/vtags"
)

// checkRB verifies red-black and BST invariants inside a transaction,
// returning the black height.
func (m *Map) checkRB(tx *stm.Tx) error {
	var walk func(n core.Addr, lo, hi uint64) (int, error)
	walk = func(n core.Addr, lo, hi uint64) (int, error) {
		if n == m.nil_ {
			return 1, nil
		}
		k := m.node(tx, n, nKey)
		if k < lo || k >= hi {
			return 0, fmt.Errorf("BST order violated at key %d", k)
		}
		c := m.color(tx, n)
		if c == red {
			if m.color(tx, m.left(tx, n)) == red || m.color(tx, m.right(tx, n)) == red {
				return 0, fmt.Errorf("red-red violation at key %d", k)
			}
		}
		lh, err := walk(m.left(tx, n), lo, k)
		if err != nil {
			return 0, err
		}
		rh, err := walk(m.right(tx, n), k+1, hi)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("black height mismatch at key %d: %d vs %d", k, lh, rh)
		}
		if c == black {
			lh++
		}
		return lh, nil
	}
	root := m.rootNode(tx)
	if root != m.nil_ && m.color(tx, root) != black {
		return fmt.Errorf("root is not black")
	}
	_, err := walk(root, 0, ^uint64(0))
	return err
}

func TestMapSequentialEquivalence(t *testing.T) {
	mem := vtags.New(32<<20, 1)
	tm := stm.NewNOrec(mem)
	m := New(mem)
	th := mem.Thread(0)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(200) + 1)
		v := uint64(rng.Intn(1000))
		switch rng.Intn(4) {
		case 0, 1:
			var fresh bool
			tm.Run(th, func(tx *stm.Tx) { fresh = m.Put(tx, k, v, th) })
			_, existed := ref[k]
			if fresh == existed {
				t.Fatalf("op %d: Put(%d) fresh=%v, existed=%v", i, k, fresh, existed)
			}
			ref[k] = v
		case 2:
			var ok bool
			tm.Run(th, func(tx *stm.Tx) { ok = m.Delete(tx, k) })
			_, existed := ref[k]
			if ok != existed {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, ok, existed)
			}
			delete(ref, k)
		default:
			var got uint64
			var ok bool
			tm.Run(th, func(tx *stm.Tx) { got, ok = m.Get(tx, k) })
			want, existed := ref[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, got, ok, want, existed)
			}
		}
		if i%250 == 0 {
			tm.Run(th, func(tx *stm.Tx) {
				if err := m.checkRB(tx); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			})
		}
	}
	tm.Run(th, func(tx *stm.Tx) {
		if err := m.checkRB(tx); err != nil {
			t.Fatal(err)
		}
		if m.Size(tx) != len(ref) {
			t.Fatalf("size %d, want %d", m.Size(tx), len(ref))
		}
		last := uint64(0)
		m.ForEach(tx, func(k, v uint64) {
			if k <= last && last != 0 {
				t.Fatalf("ForEach out of order at %d", k)
			}
			if ref[k] != v {
				t.Fatalf("ForEach value mismatch at %d", k)
			}
			last = k
		})
	})
}

func TestMapConcurrentDisjoint(t *testing.T) {
	const workers = 4
	mem := vtags.New(64<<20, workers)
	tm := stm.NewTagged(mem)
	m := New(mem)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			base := uint64(w * 1000)
			for i := 0; i < 150; i++ {
				k := base + uint64(i) + 1
				tm.Run(th, func(tx *stm.Tx) { m.Put(tx, k, k*2, th) })
			}
			for i := 0; i < 150; i += 2 {
				k := base + uint64(i) + 1
				tm.Run(th, func(tx *stm.Tx) { m.Delete(tx, k) })
			}
		}(w)
	}
	wg.Wait()
	th := mem.Thread(0)
	tm.Run(th, func(tx *stm.Tx) {
		if err := m.checkRB(tx); err != nil {
			t.Fatal(err)
		}
	})
	for w := 0; w < workers; w++ {
		base := uint64(w * 1000)
		for i := 0; i < 150; i++ {
			k := base + uint64(i) + 1
			var ok bool
			tm.Run(th, func(tx *stm.Tx) { _, ok = m.Get(tx, k) })
			if want := i%2 == 1; ok != want {
				t.Fatalf("key %d present=%v, want %v", k, ok, want)
			}
		}
	}
}

func TestMapConcurrentMixedContended(t *testing.T) {
	const workers = 4
	for _, mk := range []func(core.Memory) *stm.TM{stm.NewNOrec, stm.NewTagged} {
		mem := vtags.New(64<<20, workers)
		tm := mk(mem)
		m := New(mem)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := mem.Thread(w)
				rng := rand.New(rand.NewSource(int64(w + 5)))
				for i := 0; i < 200; i++ {
					k := uint64(rng.Intn(40) + 1)
					switch rng.Intn(3) {
					case 0:
						tm.Run(th, func(tx *stm.Tx) { m.Put(tx, k, uint64(w), th) })
					case 1:
						tm.Run(th, func(tx *stm.Tx) { m.Delete(tx, k) })
					default:
						tm.Run(th, func(tx *stm.Tx) { m.Get(tx, k) })
					}
				}
			}(w)
		}
		wg.Wait()
		th := mem.Thread(0)
		tm.Run(th, func(tx *stm.Tx) {
			if err := m.checkRB(tx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMapLargeAscendingStaysBalanced(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	tm := stm.NewNOrec(mem)
	m := New(mem)
	th := mem.Thread(0)
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		tm.Run(th, func(tx *stm.Tx) { m.Put(tx, k, k, th) })
	}
	// A red-black tree of n nodes has height <= 2*log2(n+1) ~ 22.
	tm.Run(th, func(tx *stm.Tx) {
		if err := m.checkRB(tx); err != nil {
			t.Fatal(err)
		}
		depth := 0
		n := m.rootNode(tx)
		for n != m.nil_ {
			depth++
			n = m.left(tx, n)
		}
		if depth > 25 {
			t.Fatalf("leftmost depth %d: tree unbalanced", depth)
		}
	})
}
