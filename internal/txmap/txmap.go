// Package txmap implements a transactional ordered map — a red-black tree
// whose every field access goes through an STM transaction — over simulated
// memory. It is the Go equivalent of STAMP's rbtree-backed MAP_T, the table
// substrate of the Vacation benchmark the paper evaluates NOrec on.
//
// The tree is a classic CLRS red-black tree with parent pointers and a
// shared NIL sentinel. Under NOrec this is faithful to STAMP: writers are
// serialized by the global sequence lock anyway, so sentinel writes during
// delete fixup cost no more than any other write.
package txmap

import (
	"repro/internal/core"
	"repro/internal/reclaim"
	"repro/internal/stm"
)

// Node layout (words).
const (
	nKey    = 0
	nVal    = 1
	nLeft   = 2
	nRight  = 3
	nParent = 4
	nColor  = 5
	nWords  = 6
)

// NodeWords is the reclamation pool object size for SetReclaim.
const NodeWords = nWords

const (
	red   uint64 = 0
	black uint64 = 1
)

// Map is a transactional ordered map from uint64 keys to uint64 values.
type Map struct {
	mem  core.Memory
	root core.Addr // one word holding the root node address
	nil_ core.Addr // shared NIL sentinel (black)
	pool *reclaim.Pool
}

// SetReclaim wires a reclamation pool (object size nWords): Put allocates
// nodes from it (freed back on abort, when the node was never published)
// and a committed Delete retires the unlinked node. The TM must have the
// pool's domain attached (stm.TM.SetReclaim) so attempts are bracketed.
// Only call while quiescent, before operations.
func (m *Map) SetReclaim(p *reclaim.Pool) { m.pool = p }

// New creates an empty map. The creating thread performs the (non-
// transactional) initialization.
func New(mem core.Memory) *Map {
	th := mem.Thread(0)
	m := &Map{mem: mem, root: mem.Alloc(1)}
	m.nil_ = th.Alloc(nWords)
	th.Store(m.nil_.Plus(nColor), black)
	th.Store(m.root, uint64(m.nil_))
	return m
}

func (m *Map) node(tx *stm.Tx, n core.Addr, f int) uint64   { return tx.Read(n.Plus(f)) }
func (m *Map) set(tx *stm.Tx, n core.Addr, f int, v uint64) { tx.Write(n.Plus(f), v) }

func (m *Map) left(tx *stm.Tx, n core.Addr) core.Addr   { return core.Addr(m.node(tx, n, nLeft)) }
func (m *Map) right(tx *stm.Tx, n core.Addr) core.Addr  { return core.Addr(m.node(tx, n, nRight)) }
func (m *Map) parent(tx *stm.Tx, n core.Addr) core.Addr { return core.Addr(m.node(tx, n, nParent)) }
func (m *Map) color(tx *stm.Tx, n core.Addr) uint64     { return m.node(tx, n, nColor) }
func (m *Map) rootNode(tx *stm.Tx) core.Addr            { return core.Addr(tx.Read(m.root)) }

// Get returns the value for key and whether it is present.
func (m *Map) Get(tx *stm.Tx, key uint64) (uint64, bool) {
	n := m.rootNode(tx)
	for n != m.nil_ {
		k := m.node(tx, n, nKey)
		switch {
		case key < k:
			n = m.left(tx, n)
		case key > k:
			n = m.right(tx, n)
		default:
			return m.node(tx, n, nVal), true
		}
	}
	return 0, false
}

// Put inserts key with value, or updates the value if present. It reports
// whether the key was newly inserted.
func (m *Map) Put(tx *stm.Tx, key, val uint64, th core.Thread) bool {
	y := m.nil_
	x := m.rootNode(tx)
	for x != m.nil_ {
		y = x
		k := m.node(tx, x, nKey)
		switch {
		case key < k:
			x = m.left(tx, x)
		case key > k:
			x = m.right(tx, x)
		default:
			m.set(tx, x, nVal, val)
			return false
		}
	}
	var z core.Addr
	if m.pool != nil {
		z = m.pool.Alloc(th)
		// Writes are buffered, so an aborted attempt never published z:
		// hand it straight back to the free list.
		tx.OnAbort(func() { m.pool.FreePrivate(th, z) })
	} else {
		z = th.Alloc(nWords)
	}
	// Fresh node: initialize through the transaction so an abort is
	// harmless (the node is simply garbage) and the commit publishes it.
	m.set(tx, z, nKey, key)
	m.set(tx, z, nVal, val)
	m.set(tx, z, nLeft, uint64(m.nil_))
	m.set(tx, z, nRight, uint64(m.nil_))
	m.set(tx, z, nParent, uint64(y))
	m.set(tx, z, nColor, red)
	if y == m.nil_ {
		tx.Write(m.root, uint64(z))
	} else if key < m.node(tx, y, nKey) {
		m.set(tx, y, nLeft, uint64(z))
	} else {
		m.set(tx, y, nRight, uint64(z))
	}
	m.insertFixup(tx, z)
	return true
}

func (m *Map) rotateLeft(tx *stm.Tx, x core.Addr) {
	y := m.right(tx, x)
	yl := m.left(tx, y)
	m.set(tx, x, nRight, uint64(yl))
	if yl != m.nil_ {
		m.set(tx, yl, nParent, uint64(x))
	}
	xp := m.parent(tx, x)
	m.set(tx, y, nParent, uint64(xp))
	if xp == m.nil_ {
		tx.Write(m.root, uint64(y))
	} else if x == m.left(tx, xp) {
		m.set(tx, xp, nLeft, uint64(y))
	} else {
		m.set(tx, xp, nRight, uint64(y))
	}
	m.set(tx, y, nLeft, uint64(x))
	m.set(tx, x, nParent, uint64(y))
}

func (m *Map) rotateRight(tx *stm.Tx, x core.Addr) {
	y := m.left(tx, x)
	yr := m.right(tx, y)
	m.set(tx, x, nLeft, uint64(yr))
	if yr != m.nil_ {
		m.set(tx, yr, nParent, uint64(x))
	}
	xp := m.parent(tx, x)
	m.set(tx, y, nParent, uint64(xp))
	if xp == m.nil_ {
		tx.Write(m.root, uint64(y))
	} else if x == m.right(tx, xp) {
		m.set(tx, xp, nRight, uint64(y))
	} else {
		m.set(tx, xp, nLeft, uint64(y))
	}
	m.set(tx, y, nRight, uint64(x))
	m.set(tx, x, nParent, uint64(y))
}

func (m *Map) insertFixup(tx *stm.Tx, z core.Addr) {
	for m.color(tx, m.parent(tx, z)) == red {
		zp := m.parent(tx, z)
		zpp := m.parent(tx, zp)
		if zp == m.left(tx, zpp) {
			y := m.right(tx, zpp)
			if m.color(tx, y) == red {
				m.set(tx, zp, nColor, black)
				m.set(tx, y, nColor, black)
				m.set(tx, zpp, nColor, red)
				z = zpp
			} else {
				if z == m.right(tx, zp) {
					z = zp
					m.rotateLeft(tx, z)
					zp = m.parent(tx, z)
					zpp = m.parent(tx, zp)
				}
				m.set(tx, zp, nColor, black)
				m.set(tx, zpp, nColor, red)
				m.rotateRight(tx, zpp)
			}
		} else {
			y := m.left(tx, zpp)
			if m.color(tx, y) == red {
				m.set(tx, zp, nColor, black)
				m.set(tx, y, nColor, black)
				m.set(tx, zpp, nColor, red)
				z = zpp
			} else {
				if z == m.left(tx, zp) {
					z = zp
					m.rotateRight(tx, z)
					zp = m.parent(tx, z)
					zpp = m.parent(tx, zp)
				}
				m.set(tx, zp, nColor, black)
				m.set(tx, zpp, nColor, red)
				m.rotateLeft(tx, zpp)
			}
		}
	}
	m.set(tx, m.rootNode(tx), nColor, black)
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(tx *stm.Tx, key uint64) bool {
	z := m.rootNode(tx)
	for z != m.nil_ {
		k := m.node(tx, z, nKey)
		switch {
		case key < k:
			z = m.left(tx, z)
		case key > k:
			z = m.right(tx, z)
		default:
			m.deleteNode(tx, z)
			if m.pool != nil {
				// The commit's writeBack unlinks z atomically under the
				// global sequence lock, making the committing deleter the
				// unique unlinker. Capture a branch-local copy of z: the
				// loop variable would otherwise be heap-allocated on every
				// call, including misses.
				th := tx.Thread()
				victim := z
				tx.OnCommit(func() { m.pool.Retire(th, victim) })
			}
			return true
		}
	}
	return false
}

func (m *Map) transplant(tx *stm.Tx, u, v core.Addr) {
	up := m.parent(tx, u)
	if up == m.nil_ {
		tx.Write(m.root, uint64(v))
	} else if u == m.left(tx, up) {
		m.set(tx, up, nLeft, uint64(v))
	} else {
		m.set(tx, up, nRight, uint64(v))
	}
	m.set(tx, v, nParent, uint64(up))
}

func (m *Map) minimum(tx *stm.Tx, n core.Addr) core.Addr {
	for {
		l := m.left(tx, n)
		if l == m.nil_ {
			return n
		}
		n = l
	}
}

func (m *Map) deleteNode(tx *stm.Tx, z core.Addr) {
	y := z
	yColor := m.color(tx, y)
	var x core.Addr
	if m.left(tx, z) == m.nil_ {
		x = m.right(tx, z)
		m.transplant(tx, z, x)
	} else if m.right(tx, z) == m.nil_ {
		x = m.left(tx, z)
		m.transplant(tx, z, x)
	} else {
		y = m.minimum(tx, m.right(tx, z))
		yColor = m.color(tx, y)
		x = m.right(tx, y)
		if m.parent(tx, y) == z {
			m.set(tx, x, nParent, uint64(y))
		} else {
			m.transplant(tx, y, x)
			zr := m.right(tx, z)
			m.set(tx, y, nRight, uint64(zr))
			m.set(tx, zr, nParent, uint64(y))
		}
		m.transplant(tx, z, y)
		zl := m.left(tx, z)
		m.set(tx, y, nLeft, uint64(zl))
		m.set(tx, zl, nParent, uint64(y))
		m.set(tx, y, nColor, m.color(tx, z))
	}
	if yColor == black {
		m.deleteFixup(tx, x)
	}
}

func (m *Map) deleteFixup(tx *stm.Tx, x core.Addr) {
	for x != m.rootNode(tx) && m.color(tx, x) == black {
		xp := m.parent(tx, x)
		if x == m.left(tx, xp) {
			w := m.right(tx, xp)
			if m.color(tx, w) == red {
				m.set(tx, w, nColor, black)
				m.set(tx, xp, nColor, red)
				m.rotateLeft(tx, xp)
				xp = m.parent(tx, x)
				w = m.right(tx, xp)
			}
			if m.color(tx, m.left(tx, w)) == black && m.color(tx, m.right(tx, w)) == black {
				m.set(tx, w, nColor, red)
				x = xp
			} else {
				if m.color(tx, m.right(tx, w)) == black {
					m.set(tx, m.left(tx, w), nColor, black)
					m.set(tx, w, nColor, red)
					m.rotateRight(tx, w)
					xp = m.parent(tx, x)
					w = m.right(tx, xp)
				}
				m.set(tx, w, nColor, m.color(tx, xp))
				m.set(tx, xp, nColor, black)
				m.set(tx, m.right(tx, w), nColor, black)
				m.rotateLeft(tx, xp)
				x = m.rootNode(tx)
			}
		} else {
			w := m.left(tx, xp)
			if m.color(tx, w) == red {
				m.set(tx, w, nColor, black)
				m.set(tx, xp, nColor, red)
				m.rotateRight(tx, xp)
				xp = m.parent(tx, x)
				w = m.left(tx, xp)
			}
			if m.color(tx, m.right(tx, w)) == black && m.color(tx, m.left(tx, w)) == black {
				m.set(tx, w, nColor, red)
				x = xp
			} else {
				if m.color(tx, m.left(tx, w)) == black {
					m.set(tx, m.right(tx, w), nColor, black)
					m.set(tx, w, nColor, red)
					m.rotateLeft(tx, w)
					xp = m.parent(tx, x)
					w = m.left(tx, xp)
				}
				m.set(tx, w, nColor, m.color(tx, xp))
				m.set(tx, xp, nColor, black)
				m.set(tx, m.left(tx, w), nColor, black)
				m.rotateRight(tx, xp)
				x = m.rootNode(tx)
			}
		}
	}
	m.set(tx, x, nColor, black)
}

// ForEach calls fn for every key/value pair in ascending order within the
// transaction.
func (m *Map) ForEach(tx *stm.Tx, fn func(key, val uint64)) {
	var walk func(n core.Addr)
	walk = func(n core.Addr) {
		if n == m.nil_ {
			return
		}
		walk(m.left(tx, n))
		fn(m.node(tx, n, nKey), m.node(tx, n, nVal))
		walk(m.right(tx, n))
	}
	walk(m.rootNode(tx))
}

// Size counts the entries within the transaction.
func (m *Map) Size(tx *stm.Tx) int {
	n := 0
	m.ForEach(tx, func(_, _ uint64) { n++ })
	return n
}
