package txmap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/schedfuzz"
	"repro/internal/stm"
	"repro/internal/vtags"
)

// mapSet drives the transactional red-black map directly through the
// set-history harness: Put/Delete/Get, one transaction per operation. This
// checks the tree rebalancing itself (rotations, fixup, sentinel writes)
// rather than the txset adapter layer.
type mapSet struct {
	tm *stm.TM
	m  *Map
}

func (s *mapSet) Insert(th core.Thread, key uint64) bool {
	var added bool
	s.tm.Run(th, func(tx *stm.Tx) { added = s.m.Put(tx, key, key+1, th) })
	return added
}

func (s *mapSet) Delete(th core.Thread, key uint64) bool {
	var removed bool
	s.tm.Run(th, func(tx *stm.Tx) { removed = s.m.Delete(tx, key) })
	return removed
}

func (s *mapSet) Contains(th core.Thread, key uint64) bool {
	var found bool
	s.tm.Run(th, func(tx *stm.Tx) { _, found = s.m.Get(tx, key) })
	return found
}

// TestLinearizableVTags checks the red-black tree under baseline and
// tagged NOrec with schedule fuzzing.
func TestLinearizableVTags(t *testing.T) {
	variants := []struct {
		name  string
		newTM func(core.Memory) *stm.TM
	}{
		{"norec", stm.NewNOrec},
		{"tagged", stm.NewTagged},
	}
	newMem := func(threads int) core.Memory { return vtags.New(16<<20, threads) }
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				fuzz := schedfuzz.Default(seed)
				build := func(m core.Memory) intset.Set { return &mapSet{tm: v.newTM(m), m: New(m)} }
				intset.CheckLinearizable(t, newMem, build, intset.LinearizeConfig{
					Threads:      4,
					OpsPerThread: intset.LinearizeOps(200),
					KeyRange:     16,
					Prefill:      8,
					Seed:         seed,
					Fuzz:         &fuzz,
				})
			}
		})
	}
}
