package abtree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
)

// HoHTree is the paper's hand-over-hand-tagged (a,b)-tree (Algorithms 3-5):
// searches tag a sliding window of the last three ancestors (untagging the
// great-grandparent as they descend), and every structural change is one
// invalidate-and-swap. The IAS validates the window, invalidates the
// replaced nodes at every other core (the transient marking that simulates
// SCX's finalizing), and swings a single child pointer.
//
// The window size of three follows the paper's observation that no
// (a,b)-tree operation atomically removes a chain of more than two nodes:
// for a node to be deleted, a pointer must change in its parent or
// grandparent, so a traversal holding valid tags on a node's two nearest
// tagged ancestors would have been invalidated by any such deletion.
type HoHTree struct {
	ly       layout
	mem      core.Memory
	sentinel core.Addr
	pool     *reclaim.Pool
}

var _ intset.Set = (*HoHTree)(nil)

// NewHoH creates an empty tree with parameters a, b (b >= 2a-1).
func NewHoH(mem core.Memory, a, b int) *HoHTree {
	ly := layout{a: a, b: b}
	ly.check()
	// The HoH window holds up to four nodes at once (gp, p, l and the next
	// node during extension; likewise gp, p and two siblings during
	// rebalancing). Below that budget the fast path can never validate.
	linesPerNode := (ly.nodeBytes() + core.LineSize - 1) / core.LineSize
	if need := 4 * linesPerNode; mem.MaxTags() < need {
		panic(fmt.Sprintf("abtree: MaxTags %d below the HoH tagging window (%d lines)", mem.MaxTags(), need))
	}
	th := mem.Thread(0)
	leaf := ly.writeNode(th, nodeData{leaf: true})
	sentinel := ly.writeNode(th, nodeData{ptrs: []core.Addr{leaf}})
	return &HoHTree{ly: ly, mem: mem, sentinel: sentinel}
}

// SetReclaim wires a reclamation pool (object size nodeWords). Every
// structural change replaces nodes through tag-validated IAS, and the IAS
// invalidates the whole tagged window at every other core, so the thread
// whose IAS detaches a node is its provably-unique retirer. Nodes built
// before the pool existed are adopted so their eventual replacement can
// retire them. Must not be combined with the Elided slow path: LLX/SCX
// helpers traverse finalized nodes without tag validation. Only call while
// quiescent, before operations.
// NodeWords returns the reclamation pool object size for SetReclaim
// (nodes of this tree's branching factor).
func (t *HoHTree) NodeWords() int { return t.ly.nodeWords() }

func (t *HoHTree) SetReclaim(p *reclaim.Pool) {
	t.pool = p
	// Adopt every current node except the sentinel (which is never
	// replaced, hence never retired).
	th := t.mem.Thread(0)
	_, _, kc := t.ly.readMeta(th, t.sentinel)
	for i := 0; i <= kc; i++ {
		t.adopt(th, core.Addr(th.Load(t.ly.ptrAddr(t.sentinel, i))))
	}
}

func (t *HoHTree) adopt(th core.Thread, n core.Addr) {
	t.pool.Adopt(n)
	leaf, _, kc := t.ly.readMeta(th, n)
	if leaf {
		return
	}
	for i := 0; i <= kc; i++ {
		t.adopt(th, core.Addr(th.Load(t.ly.ptrAddr(n, i))))
	}
}

func (t *HoHTree) enter(th core.Thread) {
	if t.pool != nil {
		t.pool.Enter(th)
	}
}

func (t *HoHTree) leave(th core.Thread) {
	if t.pool != nil {
		t.pool.Exit(th)
	}
}

// newNode writes a node through the pool when one is wired (recycled nodes
// are fully re-initialised up to the counts in the new meta word; stale
// words beyond them are never indexed), otherwise fresh from the arena.
func (t *HoHTree) newNode(th core.Thread, nd nodeData) core.Addr {
	if t.pool == nil {
		return t.ly.writeNode(th, nd)
	}
	return t.ly.writeNodeAt(th, t.pool.Alloc(th), nd)
}

// retireNode hands a node detached by this thread's IAS to the pool (no-op
// without one). Call after ClearTagSet.
func (t *HoHTree) retireNode(th core.Thread, n core.Addr) {
	if t.pool != nil {
		t.pool.Retire(th, n)
	}
}

// freeFresh returns never-published replacement nodes to the pool after a
// failed IAS (no-op without one).
func (t *HoHTree) freeFresh(th core.Thread, ns ...core.Addr) {
	if t.pool == nil {
		return
	}
	for _, n := range ns {
		if !n.IsNil() {
			t.pool.FreePrivate(th, n)
		}
	}
}

// locate is Algorithm 3's LOCATE: a hand-over-hand tagged descent. On
// return gp, p and l are tagged (gp may be NilAddr in shallow trees) and
// were all in the tree at the last successful validation; the caller must
// eventually ClearTagSet. idxP is p's slot in gp, idxL is l's slot in p.
func (t *HoHTree) locate(th core.Thread, key uint64) (gp, p, l core.Addr, idxP, idxL int) {
	gp, p, l, idxP, idxL, _ = t.locateBounded(th, key, -1)
	return gp, p, l, idxP, idxL
}

// locateBounded is locate with a restart budget: after budget failed
// validations it gives up (ok=false, tag set cleared) so a fallback path
// can take over — without a bound, a tagged descent whose window exceeds
// the L1 capacity restarts forever (tags are advisory; progress needs the
// slow path). budget < 0 means unbounded.
func (t *HoHTree) locateBounded(th core.Thread, key uint64, budget int) (gp, p, l core.Addr, idxP, idxL int, ok bool) {
	nb := t.ly.nodeBytes()
	for restarts := 0; budget < 0 || restarts <= budget; restarts++ {
		th.ClearTagSet()
		gp, p = core.NilAddr, core.NilAddr
		idxP, idxL = -1, -1
		l = t.sentinel
		th.AddTag(l, nb)
		if !th.Validate() {
			continue
		}
		restart := false
		for {
			leaf, _, kc := t.ly.readMeta(th, l)
			if leaf {
				return gp, p, l, idxP, idxL, true
			}
			keys := make([]uint64, kc)
			for i := range keys {
				keys[i] = th.Load(t.ly.keyAddr(l, i))
			}
			i := childIndex(keys, key)
			next := core.Addr(th.Load(t.ly.ptrAddr(l, i)))
			th.AddTag(next, nb)
			// Validate with the window extended: l was unchanged since the
			// last validation (when it was in the tree), so next — read
			// from l's pointer array after l was tagged — was l's child
			// then, hence in the tree. Only now may the oldest tag go.
			if !th.Validate() {
				restart = true
				break
			}
			if !gp.IsNil() {
				th.RemoveTag(gp, nb)
			}
			gp, idxP = p, idxL
			p, idxL = l, i
			l = next
		}
		if restart {
			continue
		}
	}
	th.ClearTagSet()
	return core.NilAddr, core.NilAddr, core.NilAddr, -1, -1, false
}

// Contains reports whether key is present, linearized at locate's last
// successful validation.
func (t *HoHTree) Contains(th core.Thread, key uint64) bool {
	t.enter(th)
	defer t.leave(th)
	_, _, l, _, _ := t.locate(th, key)
	_, _, kc := t.ly.readMeta(th, l)
	found := false
	for i := 0; i < kc; i++ {
		if th.Load(t.ly.keyAddr(l, i)) == key {
			found = true
			break
		}
	}
	th.ClearTagSet()
	return found
}

// Insert adds key, reporting whether it was absent (Algorithm 3).
func (t *HoHTree) Insert(th core.Thread, key uint64) bool {
	for {
		done, result, needCleanup := t.insertOnce(th, key, nil)
		if done {
			if needCleanup {
				t.cleanup(th, key)
			}
			return result
		}
	}
}

// insertOnce performs one tagged insert attempt. guard, if non-nil, runs
// after the window is tagged and may join extra lines (a fallback Mode
// line) to the commit's tag set; a false return fails the attempt.
// done=false means the attempt must be retried or abandoned to a slow
// path; needCleanup reports that the committed change created a balance
// violation the caller must clean up.
func (t *HoHTree) insertOnce(th core.Thread, key uint64, guard func() bool) (done, result, needCleanup bool) {
	t.enter(th)
	defer t.leave(th)
	p, l, idxL, ok := t.locateForUpdate(th, key, guard)
	if !ok {
		return false, false, false
	}
	ld := t.ly.readNode(th, l) // tagged: consistent if the IAS commits
	if leafContains(ld.keys, key) {
		th.ClearTagSet()
		return true, false, false
	}
	if guard != nil && !guard() {
		th.ClearTagSet()
		return false, false, false
	}
	var repl, splitL, splitR core.Addr
	overflow := len(ld.keys) >= t.ly.b
	if !overflow {
		repl = t.newNode(th, planLeafInsert(ld, key))
	} else {
		top, left, right := planLeafSplit(ld, key, p == t.sentinel)
		splitL = t.newNode(th, left)
		splitR = t.newNode(th, right)
		top.ptrs[0] = splitL
		top.ptrs[1] = splitR
		repl = t.newNode(th, top)
	}
	// IAS: validates {gp, p, l} (and any guard lines), invalidates them at
	// other cores (transiently marking the replaced leaf), swings p's
	// child slot.
	if th.IAS(t.ly.ptrAddr(p, idxL), uint64(repl)) {
		th.ClearTagSet()
		t.retireNode(th, l)
		return true, true, overflow
	}
	th.ClearTagSet()
	t.freeFresh(th, repl, splitL, splitR)
	return false, false, false
}

// Delete removes key, reporting whether it was present.
func (t *HoHTree) Delete(th core.Thread, key uint64) bool {
	for {
		done, result, needCleanup := t.deleteOnce(th, key, nil)
		if done {
			if needCleanup {
				t.cleanup(th, key)
			}
			return result
		}
	}
}

// deleteOnce performs one tagged delete attempt; see insertOnce for the
// guard contract.
func (t *HoHTree) deleteOnce(th core.Thread, key uint64, guard func() bool) (done, result, needCleanup bool) {
	t.enter(th)
	defer t.leave(th)
	p, l, idxL, ok := t.locateForUpdate(th, key, guard)
	if !ok {
		return false, false, false
	}
	ld := t.ly.readNode(th, l)
	if !leafContains(ld.keys, key) {
		th.ClearTagSet()
		return true, false, false
	}
	if guard != nil && !guard() {
		th.ClearTagSet()
		return false, false, false
	}
	nd := planLeafDelete(ld, key)
	repl := t.newNode(th, nd)
	if th.IAS(t.ly.ptrAddr(p, idxL), uint64(repl)) {
		th.ClearTagSet()
		t.retireNode(th, l)
		return true, true, len(nd.keys) < t.ly.a && p != t.sentinel
	}
	th.ClearTagSet()
	t.freeFresh(th, repl)
	return false, false, false
}

// locateRestartBudget bounds the tagged descent of a guarded (fallback-
// capable) attempt; unguarded operations search unboundedly, as in the
// paper's standalone algorithm.
const locateRestartBudget = 8

// locateForUpdate performs the descent for insertOnce/deleteOnce: bounded
// when a guard (fallback path) exists, unbounded otherwise.
func (t *HoHTree) locateForUpdate(th core.Thread, key uint64, guard func() bool) (p, l core.Addr, idxL int, ok bool) {
	budget := -1
	if guard != nil {
		budget = locateRestartBudget
	}
	_, p, l, _, idxL, ok = t.locateBounded(th, key, budget)
	return p, l, idxL, ok
}

// cleanup is Algorithm 5: repeatedly search toward key with a plain
// (untagged) descent, fixing the topmost violation found, until the path is
// clean. Fix steps tag the involved nodes only once they are needed
// (Algorithm 4); a fix that races with a concurrent restructure either
// fails its IAS or lands harmlessly on an already-unreachable node, and the
// violation is rediscovered by the next pass.
func (t *HoHTree) cleanup(th core.Thread, key uint64) {
	for {
		if t.cleanupPass(th, key, nil) {
			return
		}
	}
}

// cleanupPass walks the path to key; it returns true if the path was
// clean, false after attempting (successfully or not) to fix one
// violation. guard follows the insertOnce contract and is threaded into
// the fix steps' commits.
func (t *HoHTree) cleanupPass(th core.Thread, key uint64, guard func() bool) bool {
	t.enter(th)
	defer t.leave(th)
	gp, p := core.NilAddr, core.NilAddr
	l := t.sentinel
	idxP, idxL := -1, -1
	for {
		leaf, flagged, kc := t.ly.readMeta(th, l)
		if l != t.sentinel {
			if flagged {
				t.fixFlag(th, gp, p, l, idxP, idxL, guard)
				return false
			}
			deg := kc
			if !leaf {
				deg = kc + 1
			}
			if deg < t.ly.a {
				if p == t.sentinel {
					if !leaf && deg == 1 {
						t.fixRootAbsorb(th, p, l, guard)
						return false
					}
				} else {
					t.fixDegree(th, gp, p, l, idxP, idxL, guard)
					return false
				}
			}
		}
		if leaf {
			return true
		}
		keys := make([]uint64, kc)
		for i := range keys {
			keys[i] = th.Load(t.ly.keyAddr(l, i))
		}
		i := childIndex(keys, key)
		child := core.Addr(th.Load(t.ly.ptrAddr(l, i)))
		gp, idxP = p, idxL
		p, idxL = l, i
		l = child
	}
}

// tagAndCheckChild tags parent (if not yet tagged by the caller), then
// verifies parent's child slot still holds child. Reads happen after the
// tag, so if the check passes and the final IAS validates, the link held at
// commit time.
func (t *HoHTree) checkChild(th core.Thread, parent core.Addr, idx int, child core.Addr) bool {
	return core.Addr(th.Load(t.ly.ptrAddr(parent, idx))) == child
}

// fixFlag is the tagged version of RootUntag / AbsorbChild / PropagateFlag.
func (t *HoHTree) fixFlag(th core.Thread, gp, p, l core.Addr, idxP, idxL int, guard func() bool) {
	nb := t.ly.nodeBytes()
	defer th.ClearTagSet()
	if p == t.sentinel {
		// RootUntag.
		th.AddTag(p, nb)
		if !t.checkChild(th, p, 0, l) {
			return
		}
		th.AddTag(l, nb)
		ld := t.ly.readNode(th, l)
		if !ld.flagged || !th.Validate() {
			return
		}
		if guard != nil && !guard() {
			return
		}
		repl := t.newNode(th, planRootUntag(ld))
		if th.IAS(t.ly.ptrAddr(p, 0), uint64(repl)) {
			th.ClearTagSet()
			t.retireNode(th, l)
		} else {
			th.ClearTagSet()
			t.freeFresh(th, repl)
		}
		return
	}
	th.AddTag(gp, nb)
	if !t.checkChild(th, gp, idxP, p) {
		return
	}
	th.AddTag(p, nb)
	if !t.checkChild(th, p, idxL, l) {
		return
	}
	th.AddTag(l, nb)
	pd := t.ly.readNode(th, p)
	ld := t.ly.readNode(th, l)
	if !ld.flagged || idxL >= len(pd.ptrs) || pd.ptrs[idxL] != l || !th.Validate() {
		return
	}
	if guard != nil && !guard() {
		return
	}
	var repl, splitL, splitR core.Addr
	if pd.degree()-1+ld.degree() <= t.ly.b {
		nd := planAbsorbChild(pd, ld, idxL)
		assertDegree(t.ly, nd, "AbsorbChild")
		repl = t.newNode(th, nd)
	} else {
		top, left, right := planPropagateFlag(pd, ld, idxL, gp == t.sentinel)
		splitL = t.newNode(th, left)
		splitR = t.newNode(th, right)
		top.ptrs[0] = splitL
		top.ptrs[1] = splitR
		repl = t.newNode(th, top)
	}
	// Both shapes detach p and l (repl subsumes them under gp).
	if th.IAS(t.ly.ptrAddr(gp, idxP), uint64(repl)) {
		th.ClearTagSet()
		t.retireNode(th, p)
		t.retireNode(th, l)
	} else {
		th.ClearTagSet()
		t.freeFresh(th, repl, splitL, splitR)
	}
}

// fixRootAbsorb is the tagged RootAbsorb: an internal root with one child
// is replaced by that child.
func (t *HoHTree) fixRootAbsorb(th core.Thread, p, l core.Addr, guard func() bool) {
	nb := t.ly.nodeBytes()
	defer th.ClearTagSet()
	th.AddTag(p, nb)
	if !t.checkChild(th, p, 0, l) {
		return
	}
	th.AddTag(l, nb)
	ld := t.ly.readNode(th, l)
	if ld.leaf || ld.flagged || len(ld.ptrs) != 1 || !th.Validate() {
		return
	}
	if guard != nil && !guard() {
		return
	}
	// RootAbsorb creates no nodes: the root slot swings from l straight to
	// l's only child, detaching l.
	if th.IAS(t.ly.ptrAddr(p, 0), uint64(ld.ptrs[0])) {
		th.ClearTagSet()
		t.retireNode(th, l)
	}
}

// fixDegree is the tagged AbsorbSibling / Distribute (Algorithm 4). Nodes
// gp, p, l were found by the untagged cleanup search and are tagged only
// here; the explicit pointer re-checks after tagging plus the IAS
// validation give the same protection the LLX/SCX version gets from
// finalized-node detection.
func (t *HoHTree) fixDegree(th core.Thread, gp, p, l core.Addr, idxP, idxL int, guard func() bool) {
	nb := t.ly.nodeBytes()
	defer th.ClearTagSet()
	th.AddTag(gp, nb)
	if !t.checkChild(th, gp, idxP, p) {
		return
	}
	th.AddTag(p, nb)
	pd := t.ly.readNode(th, p)
	if idxL >= len(pd.ptrs) || pd.ptrs[idxL] != l || len(pd.ptrs) < 2 {
		return
	}
	si := idxL + 1
	if idxL > 0 {
		si = idxL - 1
	}
	s := pd.ptrs[si]
	_, sFlagged, _ := t.ly.readMeta(th, s)
	if sFlagged {
		// Clear our partial tag set before fixing the sibling's flag.
		th.ClearTagSet()
		t.fixFlag(th, gp, p, s, idxP, si, guard)
		return
	}
	leftIdx := idxL
	if si < idxL {
		leftIdx = si
	}
	left, right := pd.ptrs[leftIdx], pd.ptrs[leftIdx+1]
	th.AddTag(left, nb)
	th.AddTag(right, nb)
	leftD := t.ly.readNode(th, left)
	rightD := t.ly.readNode(th, right)
	if leftD.leaf != rightD.leaf || !th.Validate() {
		return
	}
	if guard != nil && !guard() {
		return
	}
	var repl, freshA, freshB core.Addr
	if leftD.degree()+rightD.degree() <= t.ly.b {
		pNew, merged := planAbsorbSibling(pd, leftD, rightD, leftIdx)
		assertDegree(t.ly, merged, "AbsorbSibling")
		freshA = t.newNode(th, merged)
		pNew.ptrs[leftIdx] = freshA
		repl = t.newNode(th, pNew)
	} else {
		pNew, nl, nr := planDistribute(pd, leftD, rightD, leftIdx)
		assertDegree(t.ly, nl, "Distribute")
		assertDegree(t.ly, nr, "Distribute")
		freshA = t.newNode(th, nl)
		freshB = t.newNode(th, nr)
		pNew.ptrs[leftIdx] = freshA
		pNew.ptrs[leftIdx+1] = freshB
		repl = t.newNode(th, pNew)
	}
	// Both shapes detach p and the two siblings (repl carries replacements).
	if th.IAS(t.ly.ptrAddr(gp, idxP), uint64(repl)) {
		th.ClearTagSet()
		t.retireNode(th, p)
		t.retireNode(th, left)
		t.retireNode(th, right)
	} else {
		th.ClearTagSet()
		t.freeFresh(th, repl, freshA, freshB)
	}
}

// Keys enumerates the set in order while quiescent.
func (t *HoHTree) Keys(th core.Thread) []uint64 {
	return collectKeys(th, t.ly, t.sentinel)
}

// Root returns the sentinel node address (for invariant checks).
func (t *HoHTree) Root() core.Addr { return t.sentinel }

// Layout returns the tree's (a,b) parameters (for invariant checks).
func (t *HoHTree) Layout() (a, b int) { return t.ly.a, t.ly.b }
