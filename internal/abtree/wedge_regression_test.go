package abtree

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/workload"
)

// scanMarkedReachable walks the (mostly) quiescent tree and reports
// reachable nodes whose LLX/SCX marked flag is set, with their live
// parents.
func scanMarkedReachable(th core.Thread, t *LLXTree) (bad, parents []core.Addr) {
	var walk func(n, parent core.Addr)
	walk = func(n, parent core.Addr) {
		if th.Load(n.Plus(fMarked)) != 0 {
			bad = append(bad, n)
			parents = append(parents, parent)
		}
		leaf, _, kc := t.ly.readMeta(th, n)
		if leaf {
			return
		}
		for i := 0; i <= kc; i++ {
			walk(core.Addr(th.Load(t.ly.ptrAddr(n, i))), n)
		}
	}
	walk(t.sentinel, core.NilAddr)
	return bad, parents
}

// describeNode prints a node's full diagnostic state.
func describeNode(th core.Thread, t *LLXTree, label string, n core.Addr) {
	leaf, flagged, kc := t.ly.readMeta(th, n)
	info := th.Load(n.Plus(fInfo))
	marked := th.Load(n.Plus(fMarked))
	fmt.Printf("  %s %#x leaf=%v flagged=%v keys=%d info=%#x marked=%d ptrs=[",
		label, uint64(n), leaf, flagged, kc, info, marked)
	if !leaf {
		for i := 0; i <= kc; i++ {
			fmt.Printf(" %#x", th.Load(t.ly.ptrAddr(n, i)))
		}
	}
	fmt.Printf(" ]\n")
	if info != 0 {
		d := core.Addr(info)
		fmt.Printf("    its desc %#x state=%d allFrozen=%d fld=%#x old=%#x new=%#x fldNow=%#x\n",
			info, th.Load(d.Plus(0)), th.Load(d.Plus(1)), th.Load(d.Plus(2)),
			th.Load(d.Plus(3)), th.Load(d.Plus(4)), th.Load(core.Addr(th.Load(d.Plus(2)))))
		numV := th.Load(d.Plus(5))
		for i := uint64(0); i < numV; i++ {
			rec := core.Addr(th.Load(d.Plus(6 + int(i)*3)))
			fmt.Printf("    dep[%d] rec=%#x exp=%#x fin=%d recInfo=%#x recMarked=%d\n",
				i, uint64(rec), th.Load(d.Plus(6+int(i)*3+1)), th.Load(d.Plus(6+int(i)*3+2)),
				th.Load(rec.Plus(fInfo)), th.Load(rec.Plus(fMarked)))
		}
	}
}

// TestLLXTreeNoWedgedFinalizedNodes is the regression test for the LLX
// stale-marked-read bug: without the second marked read in LLX, a
// finalizing SCX racing an LLX leaves a finalized node reachable through a
// live copy, permanently wedging every operation on its key range (all
// inserts/deletes spin in llxNode FINALIZED retries). The test runs the
// full-contention workload and then asserts both termination and that no
// finalized node is reachable.
func TestLLXTreeNoWedgedFinalizedNodes(t *testing.T) {
	const threads = 32
	cfg := machine.DefaultConfig(threads)
	cfg.MemBytes = 256 << 20
	m := machine.New(cfg)
	s := NewLLX(m, 4, 8)
	wl := workload.Config{
		Threads: threads, KeyRange: 8192, PrefillSize: 4096,
		OpsPerThread: 2400, Mix: workload.Update3535, Seed: 44,
	}
	workload.Prefill(m, s, wl)

	type state struct {
		ops  atomic.Int64
		op   atomic.Int64 // 0 none, 1 ins, 2 del, 3 has
		key  atomic.Uint64
		done atomic.Bool
	}
	states := make([]state, threads)
	m.BeginEpoch()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := m.Thread(w).(*machine.Thread)
			th.SetActive(true)
			defer th.SetActive(false)
			rng := rand.New(rand.NewSource(wl.Seed + int64(w)*7919 + 1))
			for i := 0; i < wl.OpsPerThread; i++ {
				k := intset.KeyMin + uint64(rng.Int63n(int64(wl.KeyRange)))
				op := rng.Intn(100)
				states[w].key.Store(k)
				switch {
				case op < 35:
					states[w].op.Store(1)
					s.Insert(th, k)
				case op < 70:
					states[w].op.Store(2)
					s.Delete(th, k)
				default:
					states[w].op.Store(3)
					s.Contains(th, k)
				}
				states[w].ops.Add(1)
			}
			states[w].done.Store(true)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		th := m.Thread(0)
		if bad, _ := scanMarkedReachable(th, s); len(bad) > 0 {
			t.Fatalf("%d finalized nodes still reachable", len(bad))
		}
		return
	case <-time.After(45 * time.Second):
	}
	opNames := []string{"-", "insert", "delete", "contains"}
	for w := 0; w < threads; w++ {
		if !states[w].done.Load() {
			fmt.Printf("worker %d STUCK at op#%d %s(%d)\n",
				w, states[w].ops.Load(), opNames[states[w].op.Load()], states[w].key.Load())
		}
	}
	// The stragglers churn; the rest of the tree is static. Scan for
	// finalized-but-reachable nodes (diagnostic only; races tolerated).
	th := m.Thread(0)
	bad, parents := scanMarkedReachable(th, s)
	fmt.Printf("marked-reachable nodes: %d\n", len(bad))
	for bi, n := range bad[:min(len(bad), 2)] {
		describeNode(th, s, "BAD", n)
		describeNode(th, s, "LIVE-PARENT", parents[bi])
	}
	for _, n := range bad[:0] {
		leaf, flagged, kc := s.ly.readMeta(th, n)
		info := th.Load(n.Plus(fInfo))
		fmt.Printf("  node %#x leaf=%v flagged=%v keys=%d info=%#x\n", uint64(n), leaf, flagged, kc, info)
		if info != 0 {
			d := core.Addr(info)
			state := th.Load(d.Plus(0))
			allFrozen := th.Load(d.Plus(1))
			fld := core.Addr(th.Load(d.Plus(2)))
			old := th.Load(d.Plus(3))
			newv := th.Load(d.Plus(4))
			numV := th.Load(d.Plus(5))
			fldNow := th.Load(fld)
			fmt.Printf("  desc %#x state=%d allFrozen=%d numV=%d fld=%#x old=%#x new=%#x fldNow=%#x swungp=%v\n",
				uint64(d), state, allFrozen, numV, uint64(fld), old, newv, fldNow, fldNow == newv)
			for i := uint64(0); i < numV; i++ {
				rec := core.Addr(th.Load(d.Plus(6 + int(i)*3)))
				exp := th.Load(d.Plus(6 + int(i)*3 + 1))
				fin := th.Load(d.Plus(6 + int(i)*3 + 2))
				recInfo := th.Load(rec.Plus(fInfo))
				recMarked := th.Load(rec.Plus(fMarked))
				fmt.Printf("    dep[%d] rec=%#x exp=%#x fin=%d recInfo=%#x recMarked=%d\n",
					i, uint64(rec), exp, fin, recInfo, recMarked)
			}
		}
	}
	t.Fatal("stall reproduced; diagnostics above")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
