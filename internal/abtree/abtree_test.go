package abtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

type ctor func(mem core.Memory, a, b int) intset.Set

var treeVariants = []struct {
	name string
	mk   ctor
}{
	{"LLX", func(m core.Memory, a, b int) intset.Set { return NewLLX(m, a, b) }},
	{"HoH", func(m core.Memory, a, b int) intset.Set { return NewHoH(m, a, b) }},
}

var treeBackends = []struct {
	name string
	mk   func(threads int) core.Memory
}{
	{"vtags", func(threads int) core.Memory { return vtags.New(64<<20, threads) }},
	{"machine", func(threads int) core.Memory {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 64 << 20
		return machine.New(cfg)
	}},
}

func forAllTrees(t *testing.T, threads, a, b int, f func(t *testing.T, mem core.Memory, s intset.Set)) {
	for _, bk := range treeBackends {
		for _, v := range treeVariants {
			t.Run(fmt.Sprintf("%s/%s/a%d_b%d", bk.name, v.name, a, b), func(t *testing.T) {
				mem := bk.mk(threads)
				f(t, mem, v.mk(mem, a, b))
			})
		}
	}
}

func checkTree(t *testing.T, th core.Thread, s intset.Set) {
	t.Helper()
	if c, ok := s.(checkable); ok {
		if err := CheckInvariants(th, c); err != nil {
			t.Fatalf("tree invariants: %v", err)
		}
	}
}

func TestTreeEmpty(t *testing.T) {
	forAllTrees(t, 1, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if s.Contains(th, 5) || s.Delete(th, 5) {
			t.Fatal("empty tree misbehaves")
		}
		checkTree(t, th, s)
	})
}

func TestTreeBasicOps(t *testing.T) {
	forAllTrees(t, 1, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if !s.Insert(th, 10) || s.Insert(th, 10) {
			t.Fatal("insert semantics")
		}
		if !s.Contains(th, 10) || s.Contains(th, 11) {
			t.Fatal("contains semantics")
		}
		if !s.Delete(th, 10) || s.Delete(th, 10) || s.Contains(th, 10) {
			t.Fatal("delete semantics")
		}
		checkTree(t, th, s)
	})
}

func TestTreeLeafSplitAndGrowth(t *testing.T) {
	forAllTrees(t, 1, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		// Enough ascending inserts to force many splits and height growth.
		for k := uint64(1); k <= 200; k++ {
			if !s.Insert(th, k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		for k := uint64(1); k <= 200; k++ {
			if !s.Contains(th, k) {
				t.Fatalf("key %d lost after splits", k)
			}
		}
		checkTree(t, th, s)
	})
}

func TestTreeShrinkToEmpty(t *testing.T) {
	forAllTrees(t, 1, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for k := uint64(1); k <= 150; k++ {
			s.Insert(th, k)
		}
		for k := uint64(1); k <= 150; k++ {
			if !s.Delete(th, k) {
				t.Fatalf("delete %d failed", k)
			}
			if s.Contains(th, k) {
				t.Fatalf("key %d survives deletion", k)
			}
		}
		checkTree(t, th, s)
		for k := uint64(1); k <= 150; k++ {
			if s.Contains(th, k) {
				t.Fatalf("key %d reappeared", k)
			}
		}
	})
}

func TestTreeDescendingAndInterleaved(t *testing.T) {
	forAllTrees(t, 1, 3, 5, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for k := uint64(200); k >= 1; k-- {
			s.Insert(th, k)
		}
		// Delete every other key to exercise merges/distributes.
		for k := uint64(2); k <= 200; k += 2 {
			if !s.Delete(th, k) {
				t.Fatalf("delete %d failed", k)
			}
		}
		for k := uint64(1); k <= 200; k++ {
			want := k%2 == 1
			if s.Contains(th, k) != want {
				t.Fatalf("key %d membership = %v, want %v", k, !want, want)
			}
		}
		checkTree(t, th, s)
	})
}

func TestTreeSequentialEquivalence(t *testing.T) {
	for _, ab := range [][2]int{{2, 4}, {2, 3}, {4, 8}} {
		forAllTrees(t, 1, ab[0], ab[1], func(t *testing.T, mem core.Memory, s intset.Set) {
			intset.CheckSequential(t, mem, s, 3000, 128, 99)
			checkTree(t, mem.Thread(0), s)
		})
	}
}

func TestTreeSequentialWideRange(t *testing.T) {
	forAllTrees(t, 1, 4, 8, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 2000, 1<<40, 5)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestTreeDisjointConcurrent(t *testing.T) {
	forAllTrees(t, 4, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 300)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestTreeMixedConcurrent(t *testing.T) {
	forAllTrees(t, 4, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 250, 48)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestTreeMixedConcurrentHighContention(t *testing.T) {
	forAllTrees(t, 4, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 200, 6)
		checkTree(t, mem.Thread(0), s)
	})
}

func TestTreeInvalidParamsPanics(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	for _, ab := range [][2]int{{1, 4}, {2, 2}, {3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("a=%d b=%d accepted", ab[0], ab[1])
				}
			}()
			NewHoH(mem, ab[0], ab[1])
		}()
	}
}

func TestTreeKeysEnumeration(t *testing.T) {
	forAllTrees(t, 1, 2, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		rng := rand.New(rand.NewSource(3))
		ref := intset.Reference{}
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(500) + 1)
			if rng.Intn(3) < 2 {
				s.Insert(th, k)
				ref.Insert(k)
			} else {
				s.Delete(th, k)
				ref.Delete(k)
			}
		}
		keys := s.(intset.Snapshotter).Keys(th)
		if len(keys) != len(ref) {
			t.Fatalf("enumeration has %d keys, want %d", len(keys), len(ref))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatal("enumeration not sorted")
			}
		}
		for _, k := range keys {
			if !ref[k] {
				t.Fatalf("enumerated ghost key %d", k)
			}
		}
	})
}

// TestHoHTreeUsesIAS pins that every HoH structural change goes through IAS
// and that searches produce tag traffic but no coherence writes.
func TestHoHTreeUsesIAS(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	s := NewHoH(m, 2, 4)
	th := m.Thread(0)
	for k := uint64(1); k <= 50; k++ {
		s.Insert(th, k)
	}
	snap := m.Snapshot()
	if snap.IASAttempts == 0 {
		t.Fatal("HoH tree performed no IAS")
	}
	if snap.TagAdds == 0 || snap.Validates == 0 {
		t.Fatal("HoH tree performed no tagging")
	}

	stores := snap.Stores
	casesBefore := snap.CASes
	for k := uint64(1); k <= 50; k++ {
		s.Contains(th, k)
	}
	snap2 := m.Snapshot()
	// Contains allocates nothing and writes nothing: reader does not write.
	if snap2.Stores != stores || snap2.CASes != casesBefore {
		t.Fatal("HoH search wrote to shared memory")
	}
}

// TestLLXTreeFinalizesNodes pins that replaced nodes are marked, so late
// SCXs on them fail.
func TestLLXTreeFinalizesNodes(t *testing.T) {
	mem := vtags.New(16<<20, 1)
	s := NewLLX(mem, 2, 4)
	th := mem.Thread(0)
	// The initial empty leaf is replaced by the first insert and must be
	// finalized.
	ly := layout{a: 2, b: 4}
	firstLeaf := core.Addr(th.Load(ly.ptrAddr(s.sentinel, 0)))
	s.Insert(th, 42)
	if th.Load(firstLeaf.Plus(fMarked)) == 0 {
		t.Fatal("replaced leaf was not finalized")
	}
}

// TestTreeInterVariantAgreement runs the same op sequence through both
// variants and compares every result.
func TestTreeInterVariantAgreement(t *testing.T) {
	memA := vtags.New(32<<20, 1)
	memB := vtags.New(32<<20, 1)
	llx := NewLLX(memA, 2, 4)
	hoh := NewHoH(memB, 2, 4)
	thA, thB := memA.Thread(0), memB.Thread(0)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(96) + 1)
		switch rng.Intn(3) {
		case 0:
			if llx.Insert(thA, k) != hoh.Insert(thB, k) {
				t.Fatalf("op %d: Insert(%d) diverged", i, k)
			}
		case 1:
			if llx.Delete(thA, k) != hoh.Delete(thB, k) {
				t.Fatalf("op %d: Delete(%d) diverged", i, k)
			}
		default:
			if llx.Contains(thA, k) != hoh.Contains(thB, k) {
				t.Fatalf("op %d: Contains(%d) diverged", i, k)
			}
		}
	}
	if err := CheckInvariants(thA, llx); err != nil {
		t.Fatalf("LLX invariants: %v", err)
	}
	if err := CheckInvariants(thB, hoh); err != nil {
		t.Fatalf("HoH invariants: %v", err)
	}
}
