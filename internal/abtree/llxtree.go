package abtree

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/llxscx"
)

// LLXTree is the (a,b)-tree synchronized with the LLX/SCX primitives of
// Brown et al. — the paper's software baseline (Section 5.1, "Using LLX and
// SCX"). Every structural change LLXes the involved nodes, builds fresh
// replacements, and commits with one SCX that finalizes the removed nodes.
type LLXTree struct {
	ly       layout
	mem      core.Memory
	mgr      *llxscx.Manager
	sentinel core.Addr
}

var _ intset.Set = (*LLXTree)(nil)

// NewLLX creates an empty tree with parameters a, b (b >= 2a-1).
func NewLLX(mem core.Memory, a, b int) *LLXTree {
	ly := layout{a: a, b: b}
	ly.check()
	th := mem.Thread(0)
	leaf := ly.writeNode(th, nodeData{leaf: true})
	sentinel := ly.writeNode(th, nodeData{ptrs: []core.Addr{leaf}})
	return &LLXTree{ly: ly, mem: mem, mgr: llxscx.New(mem), sentinel: sentinel}
}

// search descends from the sentinel to the leaf covering key, returning the
// last three nodes on the path and the child indices through which it
// passed (idxP = p's slot in gp, idxL = l's slot in p). gp is NilAddr when
// the leaf hangs directly off the sentinel.
func (t *LLXTree) search(th core.Thread, key uint64) (gp, p, l core.Addr, idxP, idxL int) {
	gp, p = core.NilAddr, core.NilAddr
	l = t.sentinel
	idxP, idxL = -1, -1
	for {
		leaf, _, kc := t.ly.readMeta(th, l)
		if leaf {
			return gp, p, l, idxP, idxL
		}
		keys := make([]uint64, kc)
		for i := range keys {
			keys[i] = th.Load(t.ly.keyAddr(l, i))
		}
		i := childIndex(keys, key)
		child := core.Addr(th.Load(t.ly.ptrAddr(l, i)))
		gp, idxP = p, idxL
		p, idxL = l, i
		l = child
	}
}

// llxNode performs LLX on n and, on success, returns its contents with
// child pointers drawn from the LLX snapshot (so they are mutually
// consistent as of the LLX).
func (t *LLXTree) llxNode(th core.Thread, n core.Addr) (info uint64, nd nodeData, ok bool) {
	snap := make([]uint64, t.ly.mutWords())
	info, st := t.mgr.LLX(th, n, t.ly.mutOff(), t.ly.mutWords(), snap)
	if st != llxscx.LLXSuccess {
		return 0, nodeData{}, false
	}
	leaf, flagged, kc := t.ly.readMeta(th, n)
	nd = nodeData{leaf: leaf, flagged: flagged, keys: make([]uint64, kc)}
	for i := range nd.keys {
		nd.keys[i] = th.Load(t.ly.keyAddr(n, i))
	}
	if !leaf {
		nd.ptrs = make([]core.Addr, kc+1)
		for i := range nd.ptrs {
			nd.ptrs[i] = core.Addr(snap[i])
		}
	}
	return info, nd, true
}

// Contains reports whether key is present. Searches run exactly as in a
// sequential (a,b)-tree — no synchronization (leaf contents are immutable).
func (t *LLXTree) Contains(th core.Thread, key uint64) bool {
	_, _, l, _, _ := t.search(th, key)
	_, _, kc := t.ly.readMeta(th, l)
	for i := 0; i < kc; i++ {
		if th.Load(t.ly.keyAddr(l, i)) == key {
			return true
		}
	}
	return false
}

// Insert adds key, reporting whether it was absent.
func (t *LLXTree) Insert(th core.Thread, key uint64) bool {
	for {
		_, p, l, _, _ := t.search(th, key)
		infoP, pd, ok := t.llxNode(th, p)
		if !ok {
			continue
		}
		li := indexOfChild(pd.ptrs, l)
		if li < 0 {
			continue
		}
		infoL, ld, ok := t.llxNode(th, l)
		if !ok {
			continue
		}
		if leafContains(ld.keys, key) {
			return false
		}
		var repl core.Addr
		overflow := len(ld.keys) >= t.ly.b
		if !overflow {
			repl = t.ly.writeNode(th, planLeafInsert(ld, key))
		} else {
			top, left, right := planLeafSplit(ld, key, p == t.sentinel)
			top.ptrs[0] = t.ly.writeNode(th, left)
			top.ptrs[1] = t.ly.writeNode(th, right)
			repl = t.ly.writeNode(th, top)
		}
		deps := []core.Addr{p, l}
		infos := []uint64{infoP, infoL}
		fin := []bool{false, true}
		if t.mgr.SCX(th, deps, infos, fin, t.ly.ptrAddr(p, li), uint64(l), uint64(repl)) {
			if overflow {
				t.cleanup(th, key)
			}
			return true
		}
	}
}

// Delete removes key, reporting whether it was present.
func (t *LLXTree) Delete(th core.Thread, key uint64) bool {
	for {
		_, p, l, _, _ := t.search(th, key)
		infoP, pd, ok := t.llxNode(th, p)
		if !ok {
			continue
		}
		li := indexOfChild(pd.ptrs, l)
		if li < 0 {
			continue
		}
		infoL, ld, ok := t.llxNode(th, l)
		if !ok {
			continue
		}
		if !leafContains(ld.keys, key) {
			return false
		}
		nd := planLeafDelete(ld, key)
		repl := t.ly.writeNode(th, nd)
		deps := []core.Addr{p, l}
		infos := []uint64{infoP, infoL}
		fin := []bool{false, true}
		if t.mgr.SCX(th, deps, infos, fin, t.ly.ptrAddr(p, li), uint64(l), uint64(repl)) {
			if len(nd.keys) < t.ly.a && p != t.sentinel {
				t.cleanup(th, key)
			}
			return true
		}
	}
}

// cleanup repeatedly searches toward key and fixes the topmost violation on
// the path, until the whole path is violation-free (Algorithm 5).
func (t *LLXTree) cleanup(th core.Thread, key uint64) {
	for {
		if t.cleanupPass(th, key) {
			return
		}
	}
}

// cleanupPass walks the path to key; it returns true if the path was clean,
// false after attempting (successfully or not) to fix one violation.
func (t *LLXTree) cleanupPass(th core.Thread, key uint64) bool {
	gp, p := core.NilAddr, core.NilAddr
	l := t.sentinel
	idxP, idxL := -1, -1
	for {
		leaf, flagged, kc := t.ly.readMeta(th, l)
		if l != t.sentinel {
			if flagged {
				t.fixFlag(th, gp, p, l, idxP, idxL)
				return false
			}
			deg := kc
			if !leaf {
				deg = kc + 1
			}
			if deg < t.ly.a {
				if p == t.sentinel {
					// Root degree rules: only an internal root with a
					// single child is a violation (RootAbsorb).
					if !leaf && deg == 1 {
						t.fixRootAbsorb(th, p, l)
						return false
					}
				} else {
					t.fixDegree(th, gp, p, l, idxP, idxL)
					return false
				}
			}
		}
		if leaf {
			return true
		}
		keys := make([]uint64, kc)
		for i := range keys {
			keys[i] = th.Load(t.ly.keyAddr(l, i))
		}
		i := childIndex(keys, key)
		child := core.Addr(th.Load(t.ly.ptrAddr(l, i)))
		gp, idxP = p, idxL
		p, idxL = l, i
		l = child
	}
}

// fixFlag removes a flag violation at l (child idxL of p, which is child
// idxP of gp): RootUntag, AbsorbChild or PropagateFlag.
func (t *LLXTree) fixFlag(th core.Thread, gp, p, l core.Addr, idxP, idxL int) {
	if p == t.sentinel {
		// RootUntag.
		infoP, pd, ok := t.llxNode(th, p)
		if !ok || indexOfChild(pd.ptrs, l) != 0 {
			return
		}
		infoL, ld, ok := t.llxNode(th, l)
		if !ok || !ld.flagged {
			return
		}
		repl := t.ly.writeNode(th, planRootUntag(ld))
		t.mgr.SCX(th, []core.Addr{p, l}, []uint64{infoP, infoL}, []bool{false, true},
			t.ly.ptrAddr(p, 0), uint64(l), uint64(repl))
		return
	}
	infoGP, gpd, ok := t.llxNode(th, gp)
	if !ok {
		return
	}
	pi := indexOfChild(gpd.ptrs, p)
	if pi < 0 {
		return
	}
	infoP, pd, ok := t.llxNode(th, p)
	if !ok {
		return
	}
	li := indexOfChild(pd.ptrs, l)
	if li < 0 {
		return
	}
	infoL, ld, ok := t.llxNode(th, l)
	if !ok || !ld.flagged {
		return
	}
	deps := []core.Addr{gp, p, l}
	infos := []uint64{infoGP, infoP, infoL}
	fin := []bool{false, true, true}
	var repl core.Addr
	if pd.degree()-1+ld.degree() <= t.ly.b {
		// AbsorbChild.
		nd := planAbsorbChild(pd, ld, li)
		assertDegree(t.ly, nd, "AbsorbChild")
		repl = t.ly.writeNode(th, nd)
	} else {
		// PropagateFlag.
		top, left, right := planPropagateFlag(pd, ld, li, gp == t.sentinel)
		top.ptrs[0] = t.ly.writeNode(th, left)
		top.ptrs[1] = t.ly.writeNode(th, right)
		repl = t.ly.writeNode(th, top)
	}
	t.mgr.SCX(th, deps, infos, fin, t.ly.ptrAddr(gp, pi), uint64(p), uint64(repl))
}

// fixRootAbsorb replaces an internal root having a single child with that
// child (RootAbsorb).
func (t *LLXTree) fixRootAbsorb(th core.Thread, p, l core.Addr) {
	infoP, pd, ok := t.llxNode(th, p)
	if !ok || indexOfChild(pd.ptrs, l) != 0 {
		return
	}
	infoL, ld, ok := t.llxNode(th, l)
	if !ok || ld.leaf || len(ld.ptrs) != 1 || ld.flagged {
		return
	}
	t.mgr.SCX(th, []core.Addr{p, l}, []uint64{infoP, infoL}, []bool{false, true},
		t.ly.ptrAddr(p, 0), uint64(l), uint64(ld.ptrs[0]))
}

// fixDegree removes a degree violation at l via AbsorbSibling or
// Distribute. If the chosen sibling carries a flag violation, that is fixed
// first so merged material never hides a flag.
func (t *LLXTree) fixDegree(th core.Thread, gp, p, l core.Addr, idxP, idxL int) {
	infoGP, gpd, ok := t.llxNode(th, gp)
	if !ok {
		return
	}
	pi := indexOfChild(gpd.ptrs, p)
	if pi < 0 {
		return
	}
	infoP, pd, ok := t.llxNode(th, p)
	if !ok {
		return
	}
	li := indexOfChild(pd.ptrs, l)
	if li < 0 || len(pd.ptrs) < 2 {
		return
	}
	// Pick the adjacent sibling; normalize to (left, right) children.
	si := li + 1
	if li > 0 {
		si = li - 1
	}
	s := pd.ptrs[si]
	_, sFlagged, _ := t.ly.readMeta(th, s)
	if sFlagged {
		t.fixFlag(th, gp, p, s, idxP, si)
		return
	}
	leftIdx := li
	if si < li {
		leftIdx = si
	}
	left, right := pd.ptrs[leftIdx], pd.ptrs[leftIdx+1]
	infoLeft, leftD, ok := t.llxNode(th, left)
	if !ok {
		return
	}
	infoRight, rightD, ok := t.llxNode(th, right)
	if !ok {
		return
	}
	deps := []core.Addr{gp, p, left, right}
	infos := []uint64{infoGP, infoP, infoLeft, infoRight}
	fin := []bool{false, true, true, true}
	var repl core.Addr
	if leftD.degree()+rightD.degree() <= t.ly.b {
		pNew, merged := planAbsorbSibling(pd, leftD, rightD, leftIdx)
		assertDegree(t.ly, merged, "AbsorbSibling")
		pNew.ptrs[leftIdx] = t.ly.writeNode(th, merged)
		repl = t.ly.writeNode(th, pNew)
	} else {
		pNew, nl, nr := planDistribute(pd, leftD, rightD, leftIdx)
		assertDegree(t.ly, nl, "Distribute")
		assertDegree(t.ly, nr, "Distribute")
		pNew.ptrs[leftIdx] = t.ly.writeNode(th, nl)
		pNew.ptrs[leftIdx+1] = t.ly.writeNode(th, nr)
		repl = t.ly.writeNode(th, pNew)
	}
	t.mgr.SCX(th, deps, infos, fin, t.ly.ptrAddr(gp, pi), uint64(p), uint64(repl))
}

// indexOfChild returns the slot of child in ptrs, or -1.
func indexOfChild(ptrs []core.Addr, child core.Addr) int {
	for i, p := range ptrs {
		if p == child {
			return i
		}
	}
	return -1
}

// Keys enumerates the set in order while quiescent.
func (t *LLXTree) Keys(th core.Thread) []uint64 {
	return collectKeys(th, t.ly, t.sentinel)
}

// Root returns the sentinel node address (for invariant checks).
func (t *LLXTree) Root() core.Addr { return t.sentinel }

// Layout returns the tree's (a,b) parameters (for invariant checks).
func (t *LLXTree) Layout() (a, b int) { return t.ly.a, t.ly.b }
