package abtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

func TestElidedTreeSequential(t *testing.T) {
	mem := vtags.New(64<<20, 1)
	s := NewElided(mem, 2, 4, 0)
	intset.CheckSequential(t, mem, s, 2500, 128, 31)
	if err := CheckInvariants(mem.Thread(0), s); err != nil {
		t.Fatal(err)
	}
}

func TestElidedTreeConcurrent(t *testing.T) {
	mem := vtags.New(128<<20, 4)
	s := NewElided(mem, 2, 4, 0)
	intset.CheckMixedConcurrent(t, mem, s, 4, 250, 48)
	if err := CheckInvariants(mem.Thread(0), s); err != nil {
		t.Fatal(err)
	}
}

func TestElidedTreeOnMachine(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 128 << 20
	m := machine.New(cfg)
	s := NewElided(m, 2, 4, 0)
	intset.CheckMixedConcurrent(t, m, s, 4, 150, 24)
	if err := CheckInvariants(m.Thread(0), s); err != nil {
		t.Fatal(err)
	}
	if s.FastCommits.Load() == 0 {
		t.Fatal("no update committed on the tagged fast path")
	}
}

// TestElidedTreeFallsBackUnderSpuriousFailure: with a pathologically small
// L1, tagged windows are spuriously evicted constantly; the LLX/SCX slow
// path must carry the operations, and the result must still be a valid
// tree.
func TestElidedTreeFallsBackUnderSpuriousFailure(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 64 << 20
	cfg.L1Bytes = 4 * core.LineSize // smaller than one tagging window
	cfg.L1Ways = 1
	m := machine.New(cfg)
	s := NewElided(m, 2, 4, 3)
	th := m.Thread(0)
	for k := uint64(1); k <= 120; k++ {
		if !s.Insert(th, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= 120; k += 3 {
		if !s.Delete(th, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= 120; k++ {
		want := k%3 != 1
		if s.Contains(th, k) != want {
			t.Fatalf("key %d: membership wrong", k)
		}
	}
	if s.SlowCommits.Load() == 0 {
		t.Fatal("expected slow-path commits under a 4-line L1")
	}
	if err := CheckInvariants(th, s); err != nil {
		t.Fatalf("tree invalid after mixed-path updates: %v", err)
	}
	if th.Load(s.ModeAddr()) != core.ModeFast {
		t.Fatal("slow count not drained")
	}
}

// TestElidedTreeSlowEntryAbortsFastCommit: a slow-path entry between a
// fast attempt's guard and its IAS must abort the IAS.
func TestElidedTreeSlowEntryAbortsFastCommit(t *testing.T) {
	mem := vtags.New(64<<20, 2)
	s := NewElided(mem, 2, 4, 0)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	s.Insert(t0, 10)

	// Hand-roll a fast insert attempt for t1 up to (but excluding) the IAS.
	_, p, _, _, idxL := s.hoh.locate(t1, 20)
	if !s.guard(t1)() {
		t.Fatal("guard failed in FAST mode")
	}
	// Slow entry lands before the commit.
	s.fb.EnterSlow(t0)
	repl := s.hoh.ly.writeNode(t1, nodeData{leaf: true, keys: []uint64{10, 20}})
	if t1.IAS(s.hoh.ly.ptrAddr(p, idxL), uint64(repl)) {
		t.Fatal("fast IAS committed despite in-flight slow operation")
	}
	t1.ClearTagSet()
	s.fb.ExitSlow(t0)
}

// TestElidedTreeBothPathsInterleaved drives a workload that forces a mix
// of fast and slow commits on the machine backend and verifies the final
// structure agrees with a reference, proving path compatibility.
func TestElidedTreeBothPathsInterleaved(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 128 << 20
	cfg.L1Bytes = 16 * core.LineSize // tight: frequent spurious failures
	cfg.L1Ways = 2
	m := machine.New(cfg)
	s := NewElided(m, 2, 4, 2)
	intset.CheckMixedConcurrent(t, m, s, 4, 120, 16)
	if s.FastCommits.Load() == 0 || s.SlowCommits.Load() == 0 {
		t.Skipf("want both paths; fast=%d slow=%d", s.FastCommits.Load(), s.SlowCommits.Load())
	}
	if err := CheckInvariants(m.Thread(0), s); err != nil {
		t.Fatal(err)
	}
}
