package abtree

import (
	"fmt"

	"repro/internal/core"
)

// collectKeys walks the tree from the sentinel while quiescent, returning
// all leaf keys in ascending order.
func collectKeys(th core.Thread, ly layout, sentinel core.Addr) []uint64 {
	var out []uint64
	var walk func(n core.Addr)
	walk = func(n core.Addr) {
		nd := ly.readNode(th, n)
		if nd.leaf {
			out = append(out, nd.keys...)
			return
		}
		for _, c := range nd.ptrs {
			walk(c)
		}
	}
	root := core.Addr(th.Load(ly.ptrAddr(sentinel, 0)))
	walk(root)
	return out
}

// checkable is satisfied by both tree variants.
type checkable interface {
	Root() core.Addr
	Layout() (a, b int)
}

// CheckInvariants validates the structural invariants of a quiescent tree:
//
//   - keys strictly sorted within and across leaves, and consistent with
//     router keys (every key in subtree i of a node lies in
//     [keys[i-1], keys[i]));
//   - no node exceeds degree b; no non-root node is below degree a
//     (violation-free, since all operations have completed their cleanup);
//   - no flagged nodes remain;
//   - all leaves are at the same depth.
//
// It returns an error describing the first violation found.
func CheckInvariants(th core.Thread, t checkable) error {
	a, b := t.Layout()
	ly := layout{a: a, b: b}
	sentinel := t.Root()
	root := core.Addr(th.Load(ly.ptrAddr(sentinel, 0)))

	leafDepth := -1
	var lastKey uint64
	haveLast := false

	var walk func(n core.Addr, depth int, lo, hi uint64, isRoot bool) error
	walk = func(n core.Addr, depth int, lo, hi uint64, isRoot bool) error {
		nd := ly.readNode(th, n)
		if nd.flagged {
			return fmt.Errorf("node %#x at depth %d is still flagged", uint64(n), depth)
		}
		deg := nd.degree()
		if deg > b {
			return fmt.Errorf("node %#x has degree %d > b=%d", uint64(n), deg, b)
		}
		if !isRoot && deg < a {
			return fmt.Errorf("node %#x has degree %d < a=%d", uint64(n), deg, a)
		}
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i-1] >= nd.keys[i] {
				return fmt.Errorf("node %#x keys not strictly sorted", uint64(n))
			}
		}
		for _, k := range nd.keys {
			if k < lo || k >= hi {
				return fmt.Errorf("node %#x key %d outside router range [%d, %d)", uint64(n), k, lo, hi)
			}
		}
		if nd.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaf %#x at depth %d, expected %d", uint64(n), depth, leafDepth)
			}
			for _, k := range nd.keys {
				if haveLast && k <= lastKey {
					return fmt.Errorf("global key order broken at %d", k)
				}
				lastKey, haveLast = k, true
			}
			return nil
		}
		for i, c := range nd.ptrs {
			clo, chi := lo, hi
			if i > 0 {
				clo = nd.keys[i-1]
			}
			if i < len(nd.keys) {
				chi = nd.keys[i]
			}
			if err := walk(c, depth+1, clo, chi, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0, 0, ^uint64(0), true)
}
