package abtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// genLeaf builds a sorted, duplicate-free leaf of n keys drawn from rng.
func genLeaf(rng *rand.Rand, n int) nodeData {
	seen := map[uint64]bool{}
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := uint64(rng.Intn(10000) + 1)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return nodeData{leaf: true, keys: keys}
}

// genInternal builds an internal node with n children and synthetic child
// addresses.
func genInternal(rng *rand.Rand, n int, base uint64) nodeData {
	nd := genLeaf(rng, n-1)
	nd.leaf = false
	nd.ptrs = make([]core.Addr, n)
	for i := range nd.ptrs {
		nd.ptrs[i] = core.Addr((base + uint64(i) + 1) * core.LineSize)
	}
	return nd
}

func sorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return false
		}
	}
	return true
}

func TestPlanLeafInsertProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := genLeaf(rng, int(sz%7)+1)
		key := uint64(rng.Intn(10000) + 20000) // guaranteed absent
		n := planLeafInsert(u, key)
		return n.leaf && len(n.keys) == len(u.keys)+1 && sorted(n.keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanLeafSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := rng.Intn(6) + 3 // b in [3, 8]
		u := genLeaf(rng, b)
		key := uint64(rng.Intn(10000) + 20000)
		top, left, right := planLeafSplit(u, key, false)
		if !top.flagged || top.leaf || len(top.keys) != 1 {
			return false
		}
		// Keys conserved and partitioned by the router.
		if len(left.keys)+len(right.keys) != b+1 {
			return false
		}
		if !sorted(left.keys) || !sorted(right.keys) {
			return false
		}
		if right.keys[0] != top.keys[0] {
			return false
		}
		for _, k := range left.keys {
			if k >= top.keys[0] {
				return false
			}
		}
		// Halves within one of each other (even split).
		d := len(left.keys) - len(right.keys)
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanLeafDeleteProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := genLeaf(rng, int(sz%6)+2)
		victim := u.keys[rng.Intn(len(u.keys))]
		n := planLeafDelete(u, victim)
		if len(n.keys) != len(u.keys)-1 || !sorted(n.keys) {
			return false
		}
		for _, k := range n.keys {
			if k == victim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpliceChildConservesMaterial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genInternal(rng, rng.Intn(4)+2, 100)
		l := genInternal(rng, rng.Intn(4)+2, 200)
		li := rng.Intn(len(p.ptrs))
		m := spliceChild(p, l, li)
		return len(m.ptrs) == len(p.ptrs)-1+len(l.ptrs) &&
			len(m.keys) == len(m.ptrs)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitInternalPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genInternal(rng, rng.Intn(8)+4, 300)
		left, right, router := splitInternal(m)
		if len(left.ptrs)+len(right.ptrs) != len(m.ptrs) {
			return false
		}
		if len(left.keys) != len(left.ptrs)-1 || len(right.keys) != len(right.ptrs)-1 {
			return false
		}
		for _, k := range left.keys {
			if k >= router {
				return false
			}
		}
		for _, k := range right.keys {
			if k <= router {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeSiblingsConserves(t *testing.T) {
	f := func(seed int64, leaf bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var left, right nodeData
		if leaf {
			left = genLeaf(rng, rng.Intn(3)+1)
			right = genLeaf(rng, rng.Intn(3)+1)
			// Shift right's keys above left's.
			for i := range right.keys {
				right.keys[i] += 20000
			}
		} else {
			left = genInternal(rng, rng.Intn(3)+2, 400)
			right = genInternal(rng, rng.Intn(3)+2, 500)
			for i := range right.keys {
				right.keys[i] += 20000
			}
		}
		// Parent with the two as children 0,1 and a router between them.
		p := nodeData{keys: []uint64{15000}, ptrs: []core.Addr{64, 128}}
		m := mergeSiblings(p, left, right, 0)
		if leaf {
			return m.leaf && len(m.keys) == len(left.keys)+len(right.keys) && sorted(m.keys)
		}
		return !m.leaf &&
			len(m.ptrs) == len(left.ptrs)+len(right.ptrs) &&
			len(m.keys) == len(left.keys)+len(right.keys)+1 &&
			sorted(m.keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanDistributeBalances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left := genLeaf(rng, rng.Intn(3)+1)
		right := genLeaf(rng, rng.Intn(5)+4)
		for i := range right.keys {
			right.keys[i] += 20000
		}
		p := nodeData{keys: []uint64{15000}, ptrs: []core.Addr{64, 128}}
		pNew, nl, nr := planDistribute(p, left, right, 0)
		total := len(left.keys) + len(right.keys)
		if len(nl.keys)+len(nr.keys) != total {
			return false
		}
		d := len(nl.keys) - len(nr.keys)
		if d < -1 || d > 1 {
			return false
		}
		// The router separates the new halves.
		if pNew.keys[0] != nr.keys[0] {
			return false
		}
		for _, k := range nl.keys {
			if k >= pNew.keys[0] {
				return false
			}
		}
		return sorted(nl.keys) && sorted(nr.keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanAbsorbSibling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	left := genLeaf(rng, 1)
	right := genLeaf(rng, 2)
	for i := range right.keys {
		right.keys[i] += 20000
	}
	p := nodeData{keys: []uint64{15000, 30000}, ptrs: []core.Addr{64, 128, 192}}
	pNew, merged := planAbsorbSibling(p, left, right, 0)
	if len(pNew.ptrs) != 2 || len(pNew.keys) != 1 {
		t.Fatalf("pNew shape: %d ptrs %d keys", len(pNew.ptrs), len(pNew.keys))
	}
	if pNew.keys[0] != 30000 {
		t.Fatalf("dropped wrong router: %v", pNew.keys)
	}
	if len(merged.keys) != 3 || !sorted(merged.keys) {
		t.Fatalf("merged = %v", merged.keys)
	}
	if pNew.ptrs[1] != 192 {
		t.Fatal("unrelated sibling pointer lost")
	}
}

func TestPlanRootUntag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := genInternal(rng, 3, 600)
	l.flagged = true
	n := planRootUntag(l)
	if n.flagged {
		t.Fatal("still flagged")
	}
	if len(n.keys) != len(l.keys) || len(n.ptrs) != len(l.ptrs) {
		t.Fatal("contents changed")
	}
	for i := range n.ptrs {
		if n.ptrs[i] != l.ptrs[i] {
			t.Fatal("children changed")
		}
	}
}
