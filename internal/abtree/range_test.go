package abtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

func TestRangeQueryBasic(t *testing.T) {
	mem := vtags.New(1<<20, 1, vtags.WithMaxTags(64))
	s := NewHoH(mem, 2, 4)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30, 40, 50, 60, 70} {
		s.Insert(th, k)
	}
	keys, ok := s.RangeQuery(th, 15, 55, 8)
	if !ok {
		t.Fatal("uncontended range query failed")
	}
	want := []uint64{20, 30, 40, 50}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if th.TagCount() != 0 {
		t.Fatal("range query leaked tags")
	}
}

func TestRangeQueryEdges(t *testing.T) {
	mem := vtags.New(1<<20, 1, vtags.WithMaxTags(64))
	s := NewHoH(mem, 2, 4)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30} {
		s.Insert(th, k)
	}
	if keys, ok := s.RangeQuery(th, 31, 99, 8); !ok || len(keys) != 0 {
		t.Fatalf("empty range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 50, 40, 8); !ok || len(keys) != 0 {
		t.Fatalf("inverted range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 10, 30, 8); !ok || len(keys) != 3 {
		t.Fatalf("inclusive bounds: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 1, ^uint64(0)-1, 8); !ok || len(keys) != 3 {
		t.Fatalf("full range: %v ok=%v", keys, ok)
	}
	// Pruning: a range covering one subtree must not tag the whole tree.
	for k := uint64(1); k <= 40; k++ {
		s.Insert(th, k)
	}
	keys, ok := s.RangeQuery(th, 7, 9, 8)
	if !ok || len(keys) != 3 {
		t.Fatalf("narrow range in a deep tree: %v ok=%v", keys, ok)
	}
}

func TestRangeQueryTagBudget(t *testing.T) {
	// MaxTags just above the HoH window (the NewHoH minimum): whole-tree
	// scans must overflow and report ok=false rather than spin.
	mem := vtags.New(1<<20, 1, vtags.WithMaxTags(8))
	s := NewHoH(mem, 2, 4)
	th := mem.Thread(0)
	for k := uint64(1); k <= 30; k++ {
		s.Insert(th, k)
	}
	if _, ok := s.RangeQuery(th, 1, 30, 4); ok {
		t.Fatal("range beyond tag budget reported atomic success")
	}
	if th.TagCount() != 0 {
		t.Fatal("failed range query leaked tags")
	}
}

// TestSnapshotLinearizable checks HoH-tree histories mixing point ops with
// atomic range scans and whole-set snapshots against the whole-set
// sequential model, under schedule fuzzing with forced spurious evictions.
func TestSnapshotLinearizable(t *testing.T) {
	newMem := func(threads int) core.Memory {
		// A whole-universe scan tags every node on the covered fringe; with
		// (2,4) nodes spanning 2 lines and 16 keys this stays well under 64.
		return vtags.New(16<<20, threads, vtags.WithMaxTags(64))
	}
	build := func(m core.Memory) intset.Set { return NewHoH(m, 2, 4) }
	for seed := int64(1); seed <= 2; seed++ {
		fuzz := schedfuzz.Default(seed)
		intset.CheckSnapshotLinearizable(t, newMem, build, intset.SnapshotConfig{
			Threads:      3,
			OpsPerThread: intset.LinearizeOps(90),
			KeyRange:     16,
			Prefill:      6,
			Seed:         seed,
			Fuzz:         &fuzz,
		})
	}
}
