package abtree

import "repro/internal/core"

// Outcomes of one tagged descent in RangeQuery.
const (
	rqOK = iota
	rqOverflow
	rqInvalid
)

// RangeQuery returns an atomic snapshot of the keys in [lo, hi]: a tagged
// depth-first descent into every subtree whose router interval intersects
// the range, keeping all visited nodes tagged, so the single final
// validation proves the whole fringe was simultaneously reachable. Any
// concurrent IAS replacing a visited node invalidates our tags and the
// attempt restarts; a replaced-but-unvisited sibling cannot affect the
// result because its subtree is disjoint from the range.
//
// ok is false when the covered subtrees exceed the tag budget or
// validation kept failing for maxTries attempts — callers then fall back
// to a non-atomic scan. Keys are returned in ascending order.
func (t *HoHTree) RangeQuery(th core.Thread, lo, hi uint64, maxTries int) (keys []uint64, ok bool) {
	if lo > hi {
		return nil, true
	}
	nb := t.ly.nodeBytes()
	for try := 0; try < maxTries; try++ {
		keys = keys[:0]
		th.ClearTagSet()
		var walk func(n core.Addr) int
		walk = func(n core.Addr) int {
			if !th.AddTag(n, nb) {
				return rqOverflow
			}
			// Validate with n joined to the window: n was read from a
			// still-tagged parent's pointer array, so success proves n was
			// that parent's child — reachable from the root — at this
			// instant.
			if !th.Validate() {
				return rqInvalid
			}
			leaf, _, kc := t.ly.readMeta(th, n)
			if leaf {
				for i := 0; i < kc; i++ {
					if k := th.Load(t.ly.keyAddr(n, i)); lo <= k && k <= hi {
						keys = append(keys, k)
					}
				}
				return rqOK
			}
			ks := make([]uint64, kc)
			for i := range ks {
				ks[i] = th.Load(t.ly.keyAddr(n, i))
			}
			for i := 0; i <= kc; i++ {
				// Child i covers [ks[i-1], ks[i]); skip subtrees disjoint
				// from [lo, hi]. The sentinel (kc == 0) always descends.
				if (i > 0 && ks[i-1] > hi) || (i < kc && ks[i] <= lo) {
					continue
				}
				child := core.Addr(th.Load(t.ly.ptrAddr(n, i)))
				if st := walk(child); st != rqOK {
					return st
				}
			}
			return rqOK
		}
		switch walk(t.sentinel) {
		case rqOverflow:
			th.ClearTagSet()
			return nil, false
		case rqInvalid:
			continue
		}
		// Leaves are visited left to right and store sorted keys, so the
		// collected snapshot is already in ascending order.
		if th.Validate() {
			th.ClearTagSet()
			return keys, true
		}
	}
	th.ClearTagSet()
	return nil, false
}
